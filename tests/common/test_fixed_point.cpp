#include "common/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace iw::fx {
namespace {

TEST(FixedPoint, RoundTripExactValues) {
  const QFormat q{13};
  EXPECT_EQ(to_fixed(1.0, q), 8192);
  EXPECT_DOUBLE_EQ(to_double(8192, q), 1.0);
  EXPECT_EQ(to_fixed(-0.5, q), -4096);
  EXPECT_EQ(to_fixed(0.0, q), 0);
}

TEST(FixedPoint, ConversionSaturates) {
  const QFormat q{13};
  EXPECT_EQ(to_fixed(1e9, q), std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(to_fixed(-1e9, q), std::numeric_limits<std::int32_t>::min());
}

TEST(FixedPoint, SatAddClamps) {
  const std::int32_t max = std::numeric_limits<std::int32_t>::max();
  const std::int32_t min = std::numeric_limits<std::int32_t>::min();
  EXPECT_EQ(sat_add(max, 1), max);
  EXPECT_EQ(sat_add(min, -1), min);
  EXPECT_EQ(sat_add(5, 7), 12);
  EXPECT_EQ(sat_sub(min, 1), min);
  EXPECT_EQ(sat_sub(max, -1), max);
}

TEST(FixedPoint, MulMatchesRealArithmetic) {
  const QFormat q{13};
  const std::int32_t a = to_fixed(1.5, q);
  const std::int32_t b = to_fixed(-2.25, q);
  EXPECT_NEAR(to_double(mul(a, b, q), q), -3.375, 2 * q.ulp());
}

TEST(FixedPoint, MacAccumulates64Bit) {
  std::int64_t acc = 0;
  const QFormat q{13};
  const std::int32_t x = to_fixed(100.0, q);
  for (int i = 0; i < 1000; ++i) acc = mac(acc, x, x);
  // 1000 * 100 * 100 in Q26 exceeds int32 but must survive in the accumulator.
  EXPECT_EQ(acc, 1000ll * x * x);
}

TEST(FixedPoint, ReduceAccRounds) {
  const QFormat q{4};  // scale 16
  // 3 * 5 = 15 in raw units => 15/16 = 0.9375, rounds to 1 raw unit.
  EXPECT_EQ(reduce_acc(15, q), 1);
  EXPECT_EQ(reduce_acc(7, q), 0);   // 7/16 rounds down
  EXPECT_EQ(reduce_acc(8, q), 1);   // exactly half rounds up
  EXPECT_EQ(reduce_acc(-15, q), -1);
}

TEST(FixedPoint, ClipSymmetric) {
  EXPECT_EQ(clip(100, 50), 50);
  EXPECT_EQ(clip(-100, 50), -50);
  EXPECT_EQ(clip(30, 50), 30);
}

class FixedPointFormats : public ::testing::TestWithParam<int> {};

TEST_P(FixedPointFormats, RoundTripErrorBoundedByHalfUlp) {
  const QFormat q{GetParam()};
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    const double back = to_double(to_fixed(v, q), q);
    EXPECT_NEAR(back, v, 0.5 * q.ulp() + 1e-12);
  }
}

TEST_P(FixedPointFormats, MulErrorBounded) {
  const QFormat q{GetParam()};
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(-4.0, 4.0);
    const double b = rng.uniform(-4.0, 4.0);
    const double got = to_double(mul(to_fixed(a, q), to_fixed(b, q), q), q);
    // One truncation plus two conversion roundings.
    EXPECT_NEAR(got, a * b, (2.0 + 8.0) * q.ulp());
  }
}

TEST_P(FixedPointFormats, ReduceAccMatchesMulChain) {
  const QFormat q{GetParam()};
  Rng rng(103);
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t acc = 0;
    double real = 0.0;
    for (int i = 0; i < 32; ++i) {
      const double a = rng.uniform(-1.0, 1.0);
      const double b = rng.uniform(-1.0, 1.0);
      acc = mac(acc, to_fixed(a, q), to_fixed(b, q));
      real += a * b;
    }
    EXPECT_NEAR(to_double(reduce_acc(acc, q), q), real, 40.0 * q.ulp());
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, FixedPointFormats, ::testing::Values(8, 10, 13, 16, 20));

}  // namespace
}  // namespace iw::fx
