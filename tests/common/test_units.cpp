#include "common/units.hpp"

#include <gtest/gtest.h>

namespace iw::units {
namespace {

TEST(Units, PowerConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(from_mw(10.8), 0.0108);
  EXPECT_DOUBLE_EQ(to_mw(from_mw(10.8)), 10.8);
  EXPECT_DOUBLE_EQ(from_uw(171.0), 171e-6);
  EXPECT_DOUBLE_EQ(to_uw(from_uw(171.0)), 171.0);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(from_uj(602.2), 602.2e-6);
  EXPECT_DOUBLE_EQ(to_uj(from_uj(602.2)), 602.2);
  EXPECT_DOUBLE_EQ(to_mj(from_mj(3.5)), 3.5);
}

TEST(Units, TimeAndFrequency) {
  EXPECT_DOUBLE_EQ(from_mhz(100.0), 100e6);
  EXPECT_DOUBLE_EQ(from_khz(400.0), 400e3);
  EXPECT_DOUBLE_EQ(from_us(50.0), 50e-6);
  EXPECT_DOUBLE_EQ(to_us(from_us(50.0)), 50.0);
  EXPECT_DOUBLE_EQ(hours_to_s(6.0), 21600.0);
  EXPECT_DOUBLE_EQ(s_to_hours(hours_to_s(6.0)), 6.0);
}

TEST(Units, EnergyOfConstantPower) {
  // The paper's acquisition energy: 201 uW for 3 s = 603 uJ.
  EXPECT_NEAR(to_uj(energy_j(from_uw(201.0), 3.0)), 603.0, 1e-9);
}

TEST(Units, ChargeConversions) {
  // 120 mAh = 432 C.
  EXPECT_DOUBLE_EQ(mah_to_coulombs(120.0), 432.0);
  EXPECT_DOUBLE_EQ(coulombs_to_mah(mah_to_coulombs(120.0)), 120.0);
}

}  // namespace
}  // namespace iw::units
