#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace iw {
namespace {

TEST(Stats, MeanOfConstants) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(Stats, MeanThrowsOnEmpty) {
  const std::vector<double> v;
  EXPECT_THROW(mean(v), Error);
}

TEST(Stats, VarianceKnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, VarianceOfSingleSampleIsZero) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
}

TEST(Stats, RmsKnownValue) {
  const std::vector<double> v{3.0, 4.0};
  EXPECT_NEAR(rms(v), std::sqrt(12.5), 1e-12);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{5.0, -2.0, 9.0, 1.0};
  EXPECT_DOUBLE_EQ(min_value(v), -2.0);
  EXPECT_DOUBLE_EQ(max_value(v), 9.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(Stats, PercentileValidatesP) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), Error);
  EXPECT_THROW(percentile(v, 101), Error);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  for (double x : v) stats.add(x);
  EXPECT_EQ(stats.count(), v.size());
  EXPECT_NEAR(stats.mean(), mean(v), 1e-12);
  EXPECT_NEAR(stats.variance(), variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

}  // namespace
}  // namespace iw
