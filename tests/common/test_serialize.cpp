#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace iw {
namespace {

TEST(Serialize, RoundTripsEveryFieldType) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.141592653589793);
  const std::uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof raw);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  std::uint8_t back[3] = {};
  r.bytes(back, sizeof back);
  EXPECT_EQ(back[0], 1);
  EXPECT_EQ(back[1], 2);
  EXPECT_EQ(back[2], 3);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, LittleEndianLayoutIsStable) {
  // The encoding is the file format — pin the exact bytes so a future
  // "cleanup" cannot silently break every checkpoint on disk.
  ByteWriter w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[1], 0x03);
  EXPECT_EQ(w.data()[2], 0x02);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serialize, F64IsBitExactForSpecialValues) {
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           1.0 + std::numeric_limits<double>::epsilon()};
  ByteWriter w;
  for (const double v : values) w.f64(v);
  ByteReader r(w.data());
  for (const double v : values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Serialize, ReaderRejectsTruncatedInput) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  r.u8();
  r.u8();
  EXPECT_THROW(r.u32(), Error);
}

TEST(Serialize, ReaderTracksOffsetAndSkips) {
  ByteWriter w;
  w.u64(1);
  w.u64(2);
  ByteReader r(w.data());
  EXPECT_EQ(r.offset(), 0u);
  r.skip(8);
  EXPECT_EQ(r.offset(), 8u);
  EXPECT_EQ(r.u64(), 2u);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.skip(1), Error);
}

TEST(Serialize, WriterClearResets) {
  ByteWriter w;
  w.u64(99);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  w.u8(5);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.data()[0], 5);
}

}  // namespace
}  // namespace iw
