#include "common/tanh_lut.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace iw::fx {
namespace {

TEST(TanhTable, ExactAtZero) {
  const TanhTable table(QFormat{13});
  EXPECT_EQ(table.eval(0), 0);
}

TEST(TanhTable, SaturatesOutsideRange) {
  const QFormat q{13};
  const TanhTable table(q);
  const std::int32_t far = to_fixed(100.0, q);
  EXPECT_EQ(table.eval(far), table.eval(table.range_fixed()));
  EXPECT_EQ(table.eval(-far), table.eval(-table.range_fixed()));
  EXPECT_NEAR(to_double(table.eval(far), q), 1.0, 2e-3);
  EXPECT_NEAR(to_double(table.eval(-far), q), -1.0, 2e-3);
}

TEST(TanhTable, RejectsBadSizes) {
  EXPECT_THROW(TanhTable(QFormat{13}, 2), Error);
  EXPECT_THROW(TanhTable(QFormat{13}, 20), Error);
  // Non-power-of-two range cannot be indexed with shifts.
  EXPECT_THROW(TanhTable(QFormat{13}, 9, 3.0), Error);
}

TEST(TanhTable, MonotonicNonDecreasing) {
  const QFormat q{13};
  const TanhTable table(q);
  std::int32_t prev = table.eval(-table.range_fixed() - 10);
  for (std::int32_t x = -table.range_fixed() - 5; x <= table.range_fixed() + 5;
       x += 37) {
    const std::int32_t y = table.eval(x);
    EXPECT_GE(y, prev) << "at x=" << x;
    prev = y;
  }
}

class TanhTableFormats : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TanhTableFormats, ApproximationErrorBounded) {
  const auto [frac_bits, log2_size] = GetParam();
  const QFormat q{frac_bits};
  const TanhTable table(q, log2_size);
  // Max error of linear interpolation over step h is h^2/8 * max|f''| plus
  // quantization; tanh'' is bounded by ~0.77. Beyond the table range the
  // output saturates at tanh(4), adding a 1 - tanh(4) tail error.
  const double h = 8.0 / static_cast<double>(1 << log2_size);
  const double bound =
      0.77 * h * h / 8.0 + 3.0 * q.ulp() + (1.0 - std::tanh(4.0));
  for (double x = -6.0; x <= 6.0; x += 0.0137) {
    EXPECT_NEAR(table.eval_real(x), std::tanh(x), bound) << "x=" << x;
  }
}

TEST_P(TanhTableFormats, OddSymmetryApproximate) {
  const auto [frac_bits, log2_size] = GetParam();
  const QFormat q{frac_bits};
  const TanhTable table(q, log2_size);
  for (double x = 0.0; x <= 4.0; x += 0.1) {
    EXPECT_NEAR(table.eval_real(x), -table.eval_real(-x), 4.0 * q.ulp()) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TanhTableFormats,
    ::testing::Combine(::testing::Values(10, 13, 16), ::testing::Values(8, 9, 10)));

}  // namespace
}  // namespace iw::fx
