#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace iw {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_int(7), 7u);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(23);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_int(5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(31);
  auto perm = rng.permutation(100);
  std::sort(perm.begin(), perm.end());
  for (std::size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
}

TEST(Rng, SubstreamDeterministicForSameId) {
  Rng parent(42);
  Rng a = parent.substream(7);
  Rng b = parent.substream(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SubstreamIndependentOfParentDrawOrder) {
  // Drawing from the parent must not shift its substreams: a worker that
  // consumed parent values yesterday still hands out the same per-device
  // streams today.
  Rng fresh(42);
  Rng used(42);
  for (int i = 0; i < 1000; ++i) used.next();
  Rng a = fresh.substream(3);
  Rng b = used.substream(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SubstreamsAreDecorrelated) {
  Rng parent(42);
  // Adjacent stream ids must not produce overlapping or correlated output.
  Rng a = parent.substream(0);
  Rng b = parent.substream(1);
  int differing = 0;
  RunningStats diff;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t va = a.next();
    const std::uint64_t vb = b.next();
    if (va != vb) ++differing;
    // Correlation proxy: XOR popcount should average ~32 of 64 bits.
    diff.add(static_cast<double>(std::popcount(va ^ vb)));
  }
  EXPECT_EQ(differing, 4096);
  EXPECT_NEAR(diff.mean(), 32.0, 1.0);
}

TEST(Rng, SubstreamDiffersFromParentStream) {
  Rng parent(42);
  Rng child = parent.substream(0);
  Rng parent_copy(42);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() != parent_copy.next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, SubstreamOfSubstreamIsStable) {
  Rng parent(9001);
  Rng a = parent.substream(5).substream(11);
  Rng b = parent.substream(5).substream(11);
  EXPECT_EQ(a.next(), b.next());
  // ... and differs from sibling nestings.
  Rng c = parent.substream(11).substream(5);
  Rng d = parent.substream(5).substream(12);
  Rng a2 = parent.substream(5).substream(11);
  a2.next();
  EXPECT_NE(a2.next(), c.next());
  EXPECT_NE(b.next(), d.next());
}

TEST(Rng, SeedAccessorReportsConstructionSeed) {
  Rng rng(1234);
  rng.next();
  EXPECT_EQ(rng.seed(), 1234u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(37);
  const auto perm = rng.permutation(100);
  int displaced = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) displaced += perm[i] != i;
  EXPECT_GT(displaced, 80);
}

TEST(Rng, SnapshotRestoreContinuesIdentically) {
  // A restored stream must produce the exact tail the original would have,
  // from any cut point — the longitudinal checkpoint contract.
  Rng rng(991);
  for (int warmup = 0; warmup < 37; ++warmup) rng.uniform();
  const RngSnapshot snap = rng.snapshot();
  Rng restored = Rng::from_snapshot(snap);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.next(), restored.next()) << "diverged at draw " << i;
  }
}

TEST(Rng, SnapshotCapturesBoxMullerCache) {
  // normal() caches its second Box-Muller variate; a snapshot taken between
  // the pair must restore the cached value bit-for-bit, or the restored
  // stream is offset by one normal draw.
  Rng rng(4242);
  rng.normal(0.0, 1.0);  // cache now holds the second variate
  const RngSnapshot snap = rng.snapshot();
  EXPECT_TRUE(snap.has_cached_normal);
  Rng restored = Rng::from_snapshot(snap);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(rng.normal(0.0, 1.0)),
              std::bit_cast<std::uint64_t>(restored.normal(0.0, 1.0)));
  }
}

TEST(Rng, SnapshotPreservesSeedAccessor) {
  Rng rng(77);
  rng.next();
  EXPECT_EQ(Rng::from_snapshot(rng.snapshot()).seed(), 77u);
}

}  // namespace
}  // namespace iw
