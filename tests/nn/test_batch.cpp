// Bit-exactness of the batch engines against the per-sample reference paths,
// across layer shapes (odd widths exercising the Q16 pad pair, single-neuron
// layers), batch sizes that cover partial tiles (1 and 513), and the paper's
// Network A/B presets.
#include "nn/batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "nn/presets.hpp"

namespace iw::nn {
namespace {

std::vector<std::vector<float>> random_rows(std::size_t n, std::size_t width,
                                            Rng& rng) {
  std::vector<std::vector<float>> rows(n);
  for (auto& row : rows) {
    row.resize(width);
    // Spill slightly outside [-1, 1] so the classify paths also exercise
    // input clamping.
    for (float& v : row) v = static_cast<float>(rng.uniform(-1.2, 1.2));
  }
  return rows;
}

std::vector<const float*> pointers(const std::vector<std::vector<float>>& rows) {
  std::vector<const float*> ptrs(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) ptrs[i] = rows[i].data();
  return ptrs;
}

/// Shapes from the issue checklist: odd n_in (Q16 pad pair), single-neuron
/// hidden and output layers, plus a plain even-width net.
const std::vector<std::vector<std::size_t>> kShapes = {
    {3, 2},           // odd input width -> Q16 input pad
    {5, 1, 4},        // single-neuron hidden layer (odd too)
    {4, 3, 1},        // single-neuron output
    {6, 8, 4},        // all even
    {7, 5, 3, 2},     // chain of odd widths
};

void expect_float_bit_exact(const Network& net, std::size_t n, std::uint64_t seed,
                            std::size_t tile) {
  Rng rng(seed);
  const auto rows = random_rows(n, net.num_inputs(), rng);
  FloatBatch batch(net, tile);

  std::vector<float> outputs(n * net.num_outputs());
  batch.infer(pointers(rows), outputs);
  std::vector<std::size_t> labels(n);
  batch.classify(pointers(rows), labels);

  // Packed-row entry point must agree with the scattered-row one.
  std::vector<float> packed(n * net.num_inputs());
  for (std::size_t s = 0; s < n; ++s) {
    std::copy(rows[s].begin(), rows[s].end(),
              packed.begin() + static_cast<std::ptrdiff_t>(s * net.num_inputs()));
  }
  std::vector<float> outputs_packed(outputs.size());
  batch.infer(packed, outputs_packed);
  EXPECT_EQ(outputs, outputs_packed);

  for (std::size_t s = 0; s < n; ++s) {
    const std::vector<float> ref = net.infer(rows[s]);
    for (std::size_t o = 0; o < ref.size(); ++o) {
      ASSERT_EQ(outputs[s * ref.size() + o], ref[o])
          << "sample " << s << " output " << o;
    }
    ASSERT_EQ(labels[s], net.classify(rows[s])) << "sample " << s;
  }
}

void expect_fixed_bit_exact(const Network& net, std::size_t n, std::uint64_t seed,
                            std::size_t tile) {
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  Rng rng(seed);
  const auto rows = random_rows(n, net.num_inputs(), rng);
  FixedBatch batch(qn, tile);

  std::vector<std::int32_t> packed(n * qn.num_inputs());
  for (std::size_t s = 0; s < n; ++s) {
    const auto q = qn.quantize_input(rows[s]);
    std::copy(q.begin(), q.end(),
              packed.begin() + static_cast<std::ptrdiff_t>(s * qn.num_inputs()));
  }
  std::vector<std::int32_t> outputs(n * qn.num_outputs());
  batch.infer_fixed(packed, outputs);
  std::vector<std::size_t> labels(n);
  batch.classify(pointers(rows), labels);

  for (std::size_t s = 0; s < n; ++s) {
    const std::vector<std::int32_t> ref = qn.infer_fixed(
        std::span<const std::int32_t>(packed.data() + s * qn.num_inputs(),
                                      qn.num_inputs()));
    for (std::size_t o = 0; o < ref.size(); ++o) {
      ASSERT_EQ(outputs[s * ref.size() + o], ref[o])
          << "sample " << s << " output " << o;
    }
    ASSERT_EQ(labels[s], qn.classify(rows[s])) << "sample " << s;
  }
}

void expect_fixed16_bit_exact(const Network& net, std::size_t n,
                              std::uint64_t seed, std::size_t tile) {
  const QuantizedNetwork16 qn = QuantizedNetwork16::from(net);
  Rng rng(seed);
  const auto rows = random_rows(n, net.num_inputs(), rng);
  Fixed16Batch batch(qn, tile);

  std::vector<std::int16_t> packed(n * qn.num_inputs());
  for (std::size_t s = 0; s < n; ++s) {
    const auto q = qn.quantize_input(rows[s]);
    std::copy(q.begin(), q.end(),
              packed.begin() + static_cast<std::ptrdiff_t>(s * qn.num_inputs()));
  }
  std::vector<std::int16_t> outputs(n * qn.num_outputs());
  batch.infer_fixed(packed, outputs);
  std::vector<std::size_t> labels(n);
  batch.classify(pointers(rows), labels);

  for (std::size_t s = 0; s < n; ++s) {
    const std::vector<std::int16_t> ref = qn.infer_fixed(
        std::span<const std::int16_t>(packed.data() + s * qn.num_inputs(),
                                      qn.num_inputs()));
    for (std::size_t o = 0; o < ref.size(); ++o) {
      ASSERT_EQ(outputs[s * ref.size() + o], ref[o])
          << "sample " << s << " output " << o;
    }
    ASSERT_EQ(labels[s], qn.classify(rows[s])) << "sample " << s;
  }
}

TEST(BatchFloat, BitExactAcrossShapesAndBatchSizes) {
  std::uint64_t seed = 100;
  for (const auto& shape : kShapes) {
    Rng rng(seed);
    const Network net = Network::create(shape, rng);
    for (const std::size_t n : {std::size_t{1}, std::size_t{513}}) {
      expect_float_bit_exact(net, n, seed + 1, kDefaultBatchTile);
    }
    ++seed;
  }
}

TEST(BatchFixed32, BitExactAcrossShapesAndBatchSizes) {
  std::uint64_t seed = 200;
  for (const auto& shape : kShapes) {
    Rng rng(seed);
    const Network net = Network::create(shape, rng);
    for (const std::size_t n : {std::size_t{1}, std::size_t{513}}) {
      expect_fixed_bit_exact(net, n, seed + 1, kDefaultBatchTile);
    }
    ++seed;
  }
}

TEST(BatchFixed16, BitExactAcrossShapesAndBatchSizes) {
  std::uint64_t seed = 300;
  for (const auto& shape : kShapes) {
    Rng rng(seed);
    const Network net = Network::create(shape, rng);
    for (const std::size_t n : {std::size_t{1}, std::size_t{513}}) {
      expect_fixed16_bit_exact(net, n, seed + 1, kDefaultBatchTile);
    }
    ++seed;
  }
}

TEST(Batch, OddTileSizesStayBitExact) {
  // Tiles that do not divide the batch exercise the partial-tile path on
  // every call; tile 1 degenerates to per-sample order.
  Rng rng(400);
  const Network net = Network::create({5, 9, 3}, rng);
  for (const std::size_t tile : {std::size_t{1}, std::size_t{3}, std::size_t{13}}) {
    expect_float_bit_exact(net, 29, 401, tile);
    expect_fixed_bit_exact(net, 29, 402, tile);
    expect_fixed16_bit_exact(net, 29, 403, tile);
  }
}

TEST(Batch, NetworkAPresetBitExact) {
  Rng rng(42);
  const Network net = make_network_a(rng);
  expect_float_bit_exact(net, 513, 43, kDefaultBatchTile);
  expect_fixed_bit_exact(net, 513, 44, kDefaultBatchTile);
  expect_fixed16_bit_exact(net, 513, 45, kDefaultBatchTile);
}

TEST(Batch, NetworkBPresetBitExact) {
  Rng rng(47);
  const Network net = make_network_b(rng);
  // Network B is ~81k weights; keep the sample count moderate but still
  // cover a partial final tile.
  expect_float_bit_exact(net, 27, 48, kDefaultBatchTile);
  expect_fixed_bit_exact(net, 27, 49, kDefaultBatchTile);
  expect_fixed16_bit_exact(net, 27, 50, kDefaultBatchTile);
}

TEST(Batch, RejectsMismatchedSpans) {
  Rng rng(500);
  const Network net = Network::create({4, 2}, rng);
  FloatBatch batch(net);
  std::vector<float> in(4 * 3 + 1);  // not a whole number of rows
  std::vector<float> out(2 * 3);
  EXPECT_THROW(batch.infer(std::span<const float>(in), std::span<float>(out)),
               Error);
  std::vector<float> in_ok(4 * 3);
  std::vector<float> out_bad(2 * 2);  // wrong batch size
  EXPECT_THROW(
      batch.infer(std::span<const float>(in_ok), std::span<float>(out_bad)),
      Error);
  EXPECT_THROW(FloatBatch(net, 0), Error);
  EXPECT_THROW(FloatBatch(net, kMaxBatchTile + 1), Error);
}

TEST(Batch, WorkspaceReuseAcrossCallsIsClean) {
  // Run a large batch, then a batch of one, then the large batch again: any
  // state leaking between calls would corrupt the repeat.
  Rng rng(600);
  const Network net = Network::create({5, 8, 3}, rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  FixedBatch batch(qn);
  Rng data_rng(601);
  const auto rows = random_rows(65, 5, data_rng);
  std::vector<std::size_t> first(65), again(65), single(1);
  batch.classify(pointers(rows), first);
  const std::vector<const float*> one{rows[7].data()};
  batch.classify(one, single);
  batch.classify(pointers(rows), again);
  EXPECT_EQ(first, again);
  EXPECT_EQ(single[0], first[7]);
}

TEST(ClassifyFixed, MatchesFloatDetourArgmax) {
  // The satellite fix: classify must pick the same class the old
  // quantize->infer->dequantize->argmax detour picked.
  Rng rng(700);
  const Network net = Network::create({5, 12, 3}, rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  const QuantizedNetwork16 q16 = QuantizedNetwork16::from(net);
  Rng data_rng(701);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> input(5);
    for (float& v : input) v = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    const std::vector<float> out = qn.infer(input);
    EXPECT_EQ(qn.classify(input), argmax(std::span<const float>(out)));
    EXPECT_EQ(qn.classify_fixed(qn.quantize_input(input)), qn.classify(input));
    const std::vector<float> out16 = q16.infer(input);
    EXPECT_EQ(q16.classify(input), argmax(std::span<const float>(out16)));
  }
}

TEST(Argmax, TiesResolveToLowestIndex) {
  const std::vector<std::int32_t> v{3, 7, 7, 1};
  EXPECT_EQ(argmax(std::span<const std::int32_t>(v)), 1u);
  const std::vector<float> single{2.5f};
  EXPECT_EQ(argmax(std::span<const float>(single)), 0u);
}

}  // namespace
}  // namespace iw::nn
