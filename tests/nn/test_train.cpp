#include "nn/train.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iw::nn {
namespace {

Dataset xor_dataset() {
  Dataset data;
  data.add({-1.0f, -1.0f}, {-1.0f});
  data.add({-1.0f, 1.0f}, {1.0f});
  data.add({1.0f, -1.0f}, {1.0f});
  data.add({1.0f, 1.0f}, {-1.0f});
  return data;
}

TEST(Train, XorConverges) {
  Rng rng(12345);
  Network net = Network::create({2, 6, 1}, rng);
  TrainConfig config;
  config.max_epochs = 2000;
  config.target_mse = 1e-3;
  const TrainResult result = train_rprop(net, xor_dataset(), config);
  EXPECT_LE(result.final_mse, 1e-3);
  EXPECT_LT(result.epochs, config.max_epochs);
  // Check the actual decision boundary.
  EXPECT_LT(net.infer(std::vector<float>{-1.0f, -1.0f})[0], 0.0f);
  EXPECT_GT(net.infer(std::vector<float>{-1.0f, 1.0f})[0], 0.0f);
  EXPECT_GT(net.infer(std::vector<float>{1.0f, -1.0f})[0], 0.0f);
  EXPECT_LT(net.infer(std::vector<float>{1.0f, 1.0f})[0], 0.0f);
}

TEST(Train, MseDecreasesOverTraining) {
  Rng rng(99);
  Network net = Network::create({2, 4, 1}, rng);
  TrainConfig config;
  config.max_epochs = 200;
  config.target_mse = 0.0;  // never stop early
  const TrainResult result = train_rprop(net, xor_dataset(), config);
  ASSERT_GE(result.mse_history.size(), 2u);
  EXPECT_LT(result.mse_history.back(), result.mse_history.front());
}

TEST(Train, EvaluateMseMatchesTrainReport) {
  Rng rng(7);
  Network net = Network::create({2, 4, 1}, rng);
  TrainConfig config;
  config.max_epochs = 50;
  config.target_mse = 0.0;
  const TrainResult result = train_rprop(net, xor_dataset(), config);
  // After the loop, one more forward pass must reproduce an MSE no worse than
  // the last reported epoch (the final update can only have been applied
  // after measuring).
  const double mse = evaluate_mse(net, xor_dataset());
  EXPECT_LT(mse, result.mse_history.front());
}

TEST(Train, AccuracyOnSeparableData) {
  // Two trivial classes: x > 0 -> class 1, x < 0 -> class 0.
  Dataset data;
  for (int i = 1; i <= 20; ++i) {
    data.add({static_cast<float>(i) / 20.0f}, Dataset::one_hot(1, 2));
    data.add({static_cast<float>(-i) / 20.0f}, Dataset::one_hot(0, 2));
  }
  Rng rng(21);
  Network net = Network::create({1, 4, 2}, rng);
  TrainConfig config;
  config.max_epochs = 300;
  train_rprop(net, data, config);
  EXPECT_GT(evaluate_accuracy(net, data), 0.95);
}

TEST(Train, OneHotEncoding) {
  const auto t = Dataset::one_hot(2, 3);
  EXPECT_EQ(t, (std::vector<float>{-1.0f, -1.0f, 1.0f}));
  EXPECT_THROW(Dataset::one_hot(3, 3), Error);
}

TEST(Train, DatasetAddValidatesWidths) {
  Dataset data;
  data.add({1.0f, 2.0f}, {1.0f});
  EXPECT_THROW(data.add({1.0f}, {1.0f}), Error);
  EXPECT_THROW(data.add({1.0f, 2.0f}, {1.0f, 2.0f}), Error);
}

TEST(Train, SplitPreservesAllSamples) {
  Dataset data;
  for (int i = 0; i < 100; ++i) {
    data.add({static_cast<float>(i)}, {static_cast<float>(i)});
  }
  Rng rng(5);
  const auto [train, test] = split(data, 0.25, rng);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
  double sum = 0.0;
  for (const auto& row : train.inputs) sum += row[0];
  for (const auto& row : test.inputs) sum += row[0];
  EXPECT_DOUBLE_EQ(sum, 99.0 * 100.0 / 2.0);
}

TEST(Train, EmptyDatasetRejected) {
  Rng rng(1);
  Network net = Network::create({2, 1}, rng);
  TrainConfig config;
  EXPECT_THROW(train_rprop(net, Dataset{}, config), Error);
  EXPECT_THROW(evaluate_mse(net, Dataset{}), Error);
  EXPECT_THROW(evaluate_accuracy(net, Dataset{}), Error);
}

TEST(Train, WidthMismatchRejected) {
  Rng rng(1);
  Network net = Network::create({2, 1}, rng);
  Dataset data;
  data.add({1.0f, 2.0f, 3.0f}, {1.0f});
  TrainConfig config;
  EXPECT_THROW(train_rprop(net, data, config), Error);
}

}  // namespace
}  // namespace iw::nn
