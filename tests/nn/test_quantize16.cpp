#include "nn/quantize16.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "nn/presets.hpp"

namespace iw::nn {
namespace {

TEST(Quantize16, FormatSelectionRespectsInt16) {
  Rng rng(1);
  Network net = Network::create({4, 4}, rng, Activation::kTanh, Activation::kTanh, 0.1f);
  net.layers()[0].weights[0] = 14.0f;  // needs |w| * 2^f < 32768 -> f <= 11
  EXPECT_LE(select_frac_bits16(net, 14), 11);
}

TEST(Quantize16, RowPaddingIsZero) {
  Rng rng(2);
  const Network net = Network::create({3, 2}, rng);  // odd n_in -> pad
  const QuantizedNetwork16 qn = QuantizedNetwork16::from(net);
  const QuantizedLayer16& layer = qn.layers()[0];
  EXPECT_EQ(layer.row_pairs, 2u);
  for (std::size_t o = 0; o < layer.n_out; ++o) {
    EXPECT_EQ(layer.weights[o * 4 + 3], 0);  // pad entry of each row
  }
}

TEST(Quantize16, RejectsNonTanh) {
  Rng rng(3);
  const Network net =
      Network::create({2, 1}, rng, Activation::kTanh, Activation::kLinear);
  EXPECT_THROW(QuantizedNetwork16::from(net), Error);
}

class Quantize16Agreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Quantize16Agreement, TracksFloatNetwork) {
  Rng rng(GetParam());
  const Network net = Network::create({5, 20, 20, 3}, rng);
  const QuantizedNetwork16 qn = QuantizedNetwork16::from(net);
  const double tol = 128.0 * qn.format().ulp() + 5e-3;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> input(5);
    for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto fref = net.infer(input);
    const auto fxd = qn.infer(input);
    ASSERT_EQ(fxd.size(), fref.size());
    for (std::size_t i = 0; i < fref.size(); ++i) {
      EXPECT_NEAR(fxd[i], fref[i], tol) << "seed " << GetParam();
    }
  }
}

TEST_P(Quantize16Agreement, MatchesWideQuantizationArgmax) {
  // 16-bit and 32-bit exports should almost always agree on the decision.
  Rng rng(GetParam() + 500);
  const Network net = Network::create({5, 16, 3}, rng);
  const QuantizedNetwork16 q16 = QuantizedNetwork16::from(net);
  int agree = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<float> input(5);
    for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto a = q16.infer(input);
    const std::size_t pick16 = static_cast<std::size_t>(
        std::max_element(a.begin(), a.end()) - a.begin());
    agree += pick16 == net.classify(input) ? 1 : 0;
  }
  EXPECT_GE(agree, 90);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Quantize16Agreement, ::testing::Values(7u, 77u, 777u));

TEST(Quantize16, NetworkAInference) {
  Rng rng(4);
  const Network net = make_network_a(rng);
  const QuantizedNetwork16 qn = QuantizedNetwork16::from(net);
  std::vector<float> input{0.2f, -0.4f, 0.6f, -0.8f, 0.1f};
  const auto out = qn.infer_fixed(qn.quantize_input(input));
  ASSERT_EQ(out.size(), 3u);
  const std::int16_t one = static_cast<std::int16_t>(1 << qn.frac_bits());
  for (std::int16_t v : out) EXPECT_LE(std::abs(v), one);
}

TEST(Quantize16, InputClamped) {
  Rng rng(5);
  const Network net = Network::create({2, 1}, rng);
  const QuantizedNetwork16 qn = QuantizedNetwork16::from(net);
  const auto fixed = qn.quantize_input(std::vector<float>{5.0f, -5.0f});
  EXPECT_EQ(fixed[0], static_cast<std::int16_t>(1 << qn.frac_bits()));
  EXPECT_EQ(fixed[1], static_cast<std::int16_t>(-(1 << qn.frac_bits())));
}

}  // namespace
}  // namespace iw::nn
