// SIMD tier parity for the packed 16-bit batch engine (DESIGN.md §15): every
// runnable tier must produce byte-identical Fixed16Batch outputs — the madd
// kernels are bit-exact with the scalar template by integer associativity,
// and this suite pins that across layer shapes (odd widths exercising the
// pad pair), batch sizes straddling the 16-lane tile boundary (partial tiles
// take the zero-lane path), and the paper's network presets.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "nn/batch.hpp"
#include "nn/presets.hpp"
#include "nn/quantize16.hpp"

namespace iw::nn {
namespace {

std::vector<simd::Tier> usable_tiers() {
  std::vector<simd::Tier> tiers;
  for (simd::Tier t :
       {simd::Tier::kArray, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::tier_usable(t)) tiers.push_back(t);
  }
  return tiers;
}

/// Restores the process-default dispatch however a test exits.
struct TierGuard {
  ~TierGuard() { simd::clear_override(); }
};

void expect_tier_parity(const Network& net, std::size_t n, std::uint64_t seed) {
  const QuantizedNetwork16 q16 = QuantizedNetwork16::from(net);
  const std::size_t width = net.num_inputs();
  const std::size_t n_out = net.num_outputs();
  Rng rng(seed);
  std::vector<std::int16_t> packed(n * width);
  std::vector<float> row(width);
  for (std::size_t s = 0; s < n; ++s) {
    for (float& v : row) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const std::vector<std::int16_t> q = q16.quantize_input(row);
    std::copy(q.begin(), q.end(), packed.begin() + s * width);
  }

  TierGuard guard;
  Fixed16Batch batch(q16);
  std::vector<std::int16_t> ref(n * n_out);
  std::vector<std::int16_t> got(n * n_out);
  simd::override_tier(simd::Tier::kOff);
  batch.infer_fixed(packed, ref);
  for (const simd::Tier tier : usable_tiers()) {
    simd::override_tier(tier);
    batch.infer_fixed(packed, got);
    EXPECT_EQ(ref, got) << "tier " << simd::tier_name(tier) << " n " << n
                        << " seed " << seed;
  }
}

// Batch sizes cover a lone partial tile (1), both sides of the 16-lane tile
// boundary (15/16/17), a multi-tile run with a partial tail (33), and a
// longer stream (100).
const std::vector<std::size_t> kBatchSizes = {1, 15, 16, 17, 33, 100};

TEST(BatchSimd, Fixed16TiersMatchScalarAcrossShapes) {
  const std::vector<std::vector<std::size_t>> shapes = {
      {3, 2},        // odd input width -> Q16 input pad
      {5, 1, 4},     // single-neuron hidden layer
      {4, 3, 1},     // single-neuron (odd) output
      {6, 8, 4},     // all even
      {7, 5, 3, 2},  // chain of odd widths
  };
  Rng rng(0x51b3d001ULL);
  for (const auto& shape : shapes) {
    const Network net = Network::create(shape, rng);
    for (const std::size_t n : kBatchSizes) {
      expect_tier_parity(net, n, 0x9000u + n);
    }
  }
}

TEST(BatchSimd, Fixed16TiersMatchScalarOnPresets) {
  Rng rng_a(42);
  const Network net_a = make_network_a(rng_a);
  expect_tier_parity(net_a, 64, 7001);
  Rng rng_b(47);
  const Network net_b = make_network_b(rng_b);
  expect_tier_parity(net_b, 64, 7002);
}

TEST(BatchSimd, OffOverrideMatchesProcessDefault) {
  // Whatever tier the environment selected for this process, forcing kOff
  // must not change a single output byte (the IW_SIMD=off contract).
  Rng rng(0x0ff0ULL);
  const Network net = Network::create({5, 9, 3}, rng);
  const QuantizedNetwork16 q16 = QuantizedNetwork16::from(net);
  const std::size_t width = net.num_inputs();
  Rng in_rng(123);
  std::vector<std::int16_t> packed(33 * width);
  std::vector<float> row(width);
  for (std::size_t s = 0; s < 33; ++s) {
    for (float& v : row) v = static_cast<float>(in_rng.uniform(-1.0, 1.0));
    const std::vector<std::int16_t> q = q16.quantize_input(row);
    std::copy(q.begin(), q.end(), packed.begin() + s * width);
  }
  Fixed16Batch batch(q16);
  std::vector<std::int16_t> by_default(33 * net.num_outputs());
  std::vector<std::int16_t> forced_off(33 * net.num_outputs());
  batch.infer_fixed(packed, by_default);
  TierGuard guard;
  simd::override_tier(simd::Tier::kOff);
  batch.infer_fixed(packed, forced_off);
  EXPECT_EQ(by_default, forced_off);
}

}  // namespace
}  // namespace iw::nn
