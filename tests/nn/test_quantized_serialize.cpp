#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

namespace iw::nn {
namespace {

TEST(QuantizedSerialize, LosslessRoundTrip) {
  Rng rng(1);
  const Network net = make_network_a(rng);
  const QuantizedNetwork original = QuantizedNetwork::from(net);
  std::stringstream ss;
  original.save(ss);
  const QuantizedNetwork loaded = QuantizedNetwork::load(ss);

  EXPECT_EQ(loaded.format().frac_bits, original.format().frac_bits);
  ASSERT_EQ(loaded.layers().size(), original.layers().size());
  for (std::size_t l = 0; l < loaded.layers().size(); ++l) {
    EXPECT_EQ(loaded.layers()[l].weights, original.layers()[l].weights);
  }
  // Integer weights: inference is bit-identical after the round trip.
  const std::vector<float> input{0.1f, -0.7f, 0.3f, 0.9f, -0.2f};
  EXPECT_EQ(loaded.infer_fixed(loaded.quantize_input(input)),
            original.infer_fixed(original.quantize_input(input)));
}

TEST(QuantizedSerialize, RejectsGarbage) {
  std::stringstream bad_magic("WRONG 13 9 1");
  EXPECT_THROW(QuantizedNetwork::load(bad_magic), Error);
  std::stringstream bad_frac("IWNNQ1\n99 9\n1\n2 1\n0 0 0\n");
  EXPECT_THROW(QuantizedNetwork::load(bad_frac), Error);
  std::stringstream bad_chain("IWNNQ1\n13 9\n2\n2 3\n0 0 0 0 0 0 0 0 0\n5 1\n0 0 0 0 0 0\n");
  EXPECT_THROW(QuantizedNetwork::load(bad_chain), Error);
}

}  // namespace
}  // namespace iw::nn
