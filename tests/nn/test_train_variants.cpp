// Tests for the SGD trainer and early stopping.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/train.hpp"

namespace iw::nn {
namespace {

Dataset xor_dataset() {
  Dataset data;
  data.add({-1.0f, -1.0f}, {-1.0f});
  data.add({-1.0f, 1.0f}, {1.0f});
  data.add({1.0f, -1.0f}, {1.0f});
  data.add({1.0f, 1.0f}, {-1.0f});
  return data;
}

/// A linearly separable 2-class feature cloud.
Dataset blobs(std::uint64_t seed, int per_class = 60) {
  Rng rng(seed);
  Dataset data;
  for (int i = 0; i < per_class; ++i) {
    data.add({static_cast<float>(rng.normal(0.5, 0.15)),
              static_cast<float>(rng.normal(0.5, 0.15))},
             Dataset::one_hot(0, 2));
    data.add({static_cast<float>(rng.normal(-0.5, 0.15)),
              static_cast<float>(rng.normal(-0.5, 0.15))},
             Dataset::one_hot(1, 2));
  }
  return data;
}

TEST(TrainSgd, SolvesXor) {
  Rng rng(31);
  Network net = Network::create({2, 8, 1}, rng);
  SgdConfig config;
  config.max_epochs = 3000;
  config.batch_size = 4;
  config.learning_rate = 0.1;
  const TrainResult result = train_sgd(net, xor_dataset(), config);
  EXPECT_LE(result.final_mse, 0.05);
  EXPECT_LT(net.infer(std::vector<float>{1.0f, 1.0f})[0], 0.0f);
  EXPECT_GT(net.infer(std::vector<float>{1.0f, -1.0f})[0], 0.0f);
}

TEST(TrainSgd, MseTrendsDown) {
  Rng rng(32);
  Network net = Network::create({2, 6, 2}, rng);
  SgdConfig config;
  config.max_epochs = 80;
  config.target_mse = 0.0;
  const TrainResult result = train_sgd(net, blobs(1), config);
  ASSERT_GE(result.mse_history.size(), 10u);
  EXPECT_LT(result.mse_history.back(), result.mse_history.front());
}

TEST(TrainSgd, BatchSizeOneWorks) {
  Rng rng(33);
  Network net = Network::create({2, 6, 2}, rng);
  SgdConfig config;
  config.max_epochs = 40;
  config.batch_size = 1;
  config.learning_rate = 0.02;
  const TrainResult result = train_sgd(net, blobs(2), config);
  EXPECT_GT(evaluate_accuracy(net, blobs(2)), 0.9);
  EXPECT_LE(result.epochs, 40u);
}

TEST(TrainSgd, Validation) {
  Rng rng(34);
  Network net = Network::create({2, 1}, rng);
  SgdConfig bad;
  bad.batch_size = 0;
  EXPECT_THROW(train_sgd(net, xor_dataset(), bad), Error);
  bad = SgdConfig{};
  bad.learning_rate = 0.0;
  EXPECT_THROW(train_sgd(net, xor_dataset(), bad), Error);
  bad = SgdConfig{};
  bad.momentum = 1.0;
  EXPECT_THROW(train_sgd(net, xor_dataset(), bad), Error);
  EXPECT_THROW(train_sgd(net, Dataset{}, SgdConfig{}), Error);
}

TEST(EarlyStopping, StopsBeforeMaxAndRestoresBest) {
  Rng rng(35);
  // Tiny training set + oversized network: overfits quickly, so validation
  // MSE bottoms out and patience fires long before max_epochs.
  Dataset train = blobs(3, 4);
  Dataset validation = blobs(4, 40);
  // Inject label noise into training to force divergence of train/val MSE.
  for (std::size_t i = 0; i < train.size(); i += 3) {
    for (float& t : train.targets[i]) t = -t;
  }
  Network net = Network::create({2, 32, 2}, rng);
  TrainConfig config;
  config.max_epochs = 2000;
  config.target_mse = 0.0;
  const TrainResult result =
      train_rprop_early_stopping(net, train, validation, config, 20);
  EXPECT_LT(result.epochs, 2000u);
  // The restored network must reproduce the reported best validation MSE.
  EXPECT_NEAR(evaluate_mse(net, validation), result.final_mse, 1e-9);
}

TEST(EarlyStopping, GeneralizesOnCleanData) {
  Rng rng(36);
  Network net = Network::create({2, 8, 2}, rng);
  TrainConfig config;
  config.max_epochs = 500;
  train_rprop_early_stopping(net, blobs(5), blobs(6), config, 25);
  EXPECT_GT(evaluate_accuracy(net, blobs(7)), 0.9);
}

TEST(EarlyStopping, Validation) {
  Rng rng(37);
  Network net = Network::create({2, 1}, rng);
  TrainConfig config;
  EXPECT_THROW(
      train_rprop_early_stopping(net, xor_dataset(), xor_dataset(), config, 0),
      Error);
  EXPECT_THROW(
      train_rprop_early_stopping(net, Dataset{}, xor_dataset(), config, 5), Error);
}

}  // namespace
}  // namespace iw::nn
