#include "nn/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "nn/presets.hpp"

namespace iw::nn {
namespace {

TEST(Quantize, FracBitsRespectsCap) {
  Rng rng(1);
  const Network net = make_network_a(rng);
  EXPECT_LE(select_frac_bits(net, 13), 13);
  EXPECT_LE(select_frac_bits(net, 10), 10);
}

TEST(Quantize, LargerWeightsForceCoarserFormat) {
  Rng rng(2);
  Network small = Network::create({4, 4}, rng, Activation::kTanh,
                                  Activation::kTanh, 0.1f);
  Network large = Network::create({4, 4}, rng, Activation::kTanh,
                                  Activation::kTanh, 0.1f);
  for (float& w : large.layers()[0].weights) w *= 200.0f;
  EXPECT_LT(select_frac_bits(large, 20), select_frac_bits(small, 20));
}

TEST(Quantize, RejectsNonTanhNetworks) {
  Rng rng(3);
  const Network net =
      Network::create({2, 2, 1}, rng, Activation::kTanh, Activation::kLinear);
  EXPECT_THROW(QuantizedNetwork::from(net), Error);
}

TEST(Quantize, InputClampedToUnitRange) {
  Rng rng(4);
  const Network net = make_network_a(rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  const std::vector<float> big{10.0f, -10.0f, 0.5f, 0.0f, 1.0f};
  const auto fixed = qn.quantize_input(big);
  const std::int32_t one = fx::to_fixed(1.0, qn.format());
  EXPECT_EQ(fixed[0], one);
  EXPECT_EQ(fixed[1], -one);
  EXPECT_EQ(fixed[4], one);
}

TEST(Quantize, WeightCountPreserved) {
  Rng rng(5);
  const Network net = make_network_a(rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  EXPECT_EQ(qn.num_weights(), net.num_weights());
  EXPECT_EQ(qn.num_inputs(), net.num_inputs());
  EXPECT_EQ(qn.num_outputs(), net.num_outputs());
}

class QuantizeAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantizeAgreement, FixedTracksFloatWithinQuantizationError) {
  Rng rng(GetParam());
  Network net = Network::create({5, 20, 20, 3}, rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  const double tol = 64.0 * qn.format().ulp() + 2e-3;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> input(5);
    for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const std::vector<float> fref = net.infer(input);
    const std::vector<float> fxd = qn.infer(input);
    ASSERT_EQ(fref.size(), fxd.size());
    for (std::size_t i = 0; i < fref.size(); ++i) {
      EXPECT_NEAR(fxd[i], fref[i], tol) << "seed " << GetParam() << " trial "
                                        << trial << " output " << i;
    }
  }
}

TEST_P(QuantizeAgreement, ClassificationUsuallyAgrees) {
  Rng rng(GetParam() + 1000);
  Network net = Network::create({5, 20, 20, 3}, rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  int agree = 0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<float> input(5);
    for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    agree += net.classify(input) == qn.classify(input) ? 1 : 0;
  }
  // Quantization can flip near-tie outputs, but not often.
  EXPECT_GE(agree, 95) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizeAgreement,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(Quantize, NetworkAFixedInferenceRunsCleanly) {
  Rng rng(6);
  const Network net = make_network_a(rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  const std::vector<float> input{0.1f, -0.3f, 0.8f, -0.9f, 0.2f};
  const auto out = qn.infer_fixed(qn.quantize_input(input));
  ASSERT_EQ(out.size(), 3u);
  const std::int32_t one = fx::to_fixed(1.0, qn.format());
  for (std::int32_t v : out) {
    EXPECT_LE(std::abs(v), one);  // tanh outputs bounded
  }
}

TEST(Quantize, NetworkBFixedInferenceRunsCleanly) {
  Rng rng(7);
  const Network net = make_network_b(rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  std::vector<float> input(100);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto out = qn.infer_fixed(qn.quantize_input(input));
  EXPECT_EQ(out.size(), 8u);
}

}  // namespace
}  // namespace iw::nn
