#include "nn/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "nn/presets.hpp"

namespace iw::nn {
namespace {

TEST(Network, NetworkACountsMatchPaper) {
  Rng rng(1);
  const Network net = make_network_a(rng);
  EXPECT_EQ(net.num_inputs(), 5u);
  EXPECT_EQ(net.num_outputs(), 3u);
  EXPECT_EQ(net.num_neurons(), 108u);   // paper: 108 neurons
  EXPECT_EQ(net.num_weights(), 3003u);  // paper: 3003 weights
  // Paper: estimated memory footprint 14 kB.
  EXPECT_NEAR(static_cast<double>(net.memory_footprint_bytes()) / 1024.0, 14.0, 0.8);
}

TEST(Network, NetworkBCountsMatchPaper) {
  Rng rng(2);
  const Network net = make_network_b(rng);
  EXPECT_EQ(net.num_inputs(), 100u);
  EXPECT_EQ(net.num_outputs(), 8u);
  EXPECT_EQ(net.num_layers(), 25u);      // 24 hidden + output
  EXPECT_EQ(net.num_neurons(), 1356u);   // paper: 1356 neurons
  EXPECT_EQ(net.num_weights(), 81032u);  // paper: 81032 weights
  EXPECT_NEAR(static_cast<double>(net.memory_footprint_bytes()) / 1024.0, 353.0, 20.0);
}

TEST(Network, TopologyBLayerWidths) {
  const auto sizes = topology_network_b();
  ASSERT_EQ(sizes.size(), 26u);
  EXPECT_EQ(sizes[1], 8u);
  EXPECT_EQ(sizes[2], 8u);
  EXPECT_EQ(sizes[3], 16u);
  EXPECT_EQ(sizes[23], 96u);
  EXPECT_EQ(sizes[24], 96u);
  EXPECT_EQ(sizes[25], 8u);
}

TEST(Network, InferMatchesHandComputation) {
  // 2-2-1 net with known weights: out = tanh(w*[h1,h2] + b).
  Rng rng(3);
  Network net = Network::create({2, 2, 1}, rng);
  // Hidden: h0 = tanh(0.5x0 - 0.25x1 + 0.1), h1 = tanh(x0 + x1).
  net.layers()[0].weights = {0.5f, -0.25f, 0.1f, 1.0f, 1.0f, 0.0f};
  // Output: y = tanh(2 h0 - h1 + 0.05).
  net.layers()[1].weights = {2.0f, -1.0f, 0.05f};
  const std::vector<float> input{0.3f, -0.6f};
  const double h0 = std::tanh(0.5 * 0.3 - 0.25 * -0.6 + 0.1);
  const double h1 = std::tanh(0.3 - 0.6);
  const double y = std::tanh(2 * h0 - h1 + 0.05);
  const std::vector<float> out = net.infer(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], y, 1e-6);
}

TEST(Network, LinearOutputActivation) {
  Rng rng(4);
  Network net = Network::create({1, 1}, rng, Activation::kTanh, Activation::kLinear);
  net.layers()[0].weights = {3.0f, -1.0f};
  EXPECT_NEAR(net.infer(std::vector<float>{2.0f})[0], 5.0f, 1e-6);
}

TEST(Network, ClassifyPicksArgmax) {
  Rng rng(5);
  Network net = Network::create({1, 3}, rng, Activation::kTanh, Activation::kLinear);
  net.layers()[0].weights = {0.0f, -1.0f,   // out0 = -1
                             0.0f, 2.0f,    // out1 = 2
                             0.0f, 0.5f};   // out2 = 0.5
  EXPECT_EQ(net.classify(std::vector<float>{0.0f}), 1u);
}

TEST(Network, ArgmaxTieBreaksToLowestIndex) {
  // Every classification path in the tree (float, fixed, batch, and the
  // fleet's true-label bucketing) shares this helper, so its tie-breaking —
  // first maximum wins, the std::max_element convention — is load-bearing.
  const std::vector<float> all_equal{0.5f, 0.5f, 0.5f};
  EXPECT_EQ(argmax(std::span<const float>(all_equal)), 0u);
  const std::vector<float> later_tie{0.1f, 0.7f, 0.7f};
  EXPECT_EQ(argmax(std::span<const float>(later_tie)), 1u);
  const std::vector<int> ints{2, 9, 9, 3};
  EXPECT_EQ(argmax(std::span<const int>(ints)), 1u);
  const std::vector<float> single{-1.0f};
  EXPECT_EQ(argmax(std::span<const float>(single)), 0u);
}

TEST(Network, InferRejectsWrongWidth) {
  Rng rng(6);
  const Network net = make_network_a(rng);
  EXPECT_THROW(net.infer(std::vector<float>{1.0f}), Error);
}

TEST(Network, CreateValidation) {
  Rng rng(7);
  EXPECT_THROW(Network::create({5}, rng), Error);
  EXPECT_THROW(Network::create({5, 0, 3}, rng), Error);
  EXPECT_THROW(Network::create({5, 3}, rng, Activation::kTanh, Activation::kTanh, 0.0f),
               Error);
}

TEST(Network, WeightStatistics) {
  Rng rng(8);
  Network net = Network::create({2, 2}, rng);
  net.layers()[0].weights = {1.0f, -3.0f, 0.5f, 2.0f, 0.25f, -0.5f};
  EXPECT_FLOAT_EQ(net.max_abs_weight(), 3.0f);
  EXPECT_FLOAT_EQ(net.max_row_abs_sum(), 4.5f);  // |1| + |-3| + |0.5|
}

TEST(Network, SaveLoadRoundTrip) {
  Rng rng(9);
  const Network net = Network::create({3, 4, 2}, rng);
  std::stringstream ss;
  net.save(ss);
  const Network loaded = Network::load(ss);
  ASSERT_EQ(loaded.num_layers(), net.num_layers());
  const std::vector<float> input{0.1f, -0.2f, 0.3f};
  const std::vector<float> a = net.infer(input);
  const std::vector<float> b = loaded.infer(input);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5);
}

TEST(Network, LoadRejectsGarbage) {
  std::stringstream ss("NOTMAGIC 3");
  EXPECT_THROW(Network::load(ss), Error);
}

TEST(Network, DeterministicCreationFromSeed) {
  Rng rng_a(42), rng_b(42);
  const Network a = make_network_a(rng_a);
  const Network b = make_network_a(rng_b);
  EXPECT_EQ(a.layers()[0].weights, b.layers()[0].weights);
}

}  // namespace
}  // namespace iw::nn
