#include "nn/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "nn/presets.hpp"

namespace iw::nn {
namespace {

TEST(Export, GeneratedSourceContainsExpectedSymbols) {
  Rng rng(1);
  const Network net = Network::create({3, 4, 2}, rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  std::ostringstream os;
  ExportOptions options;
  options.symbol_prefix = "stress";
  export_c_source(qn, options, os);
  const std::string code = os.str();
  EXPECT_NE(code.find("#define stress_FRAC_BITS"), std::string::npos);
  EXPECT_NE(code.find("stress_tanh_lut"), std::string::npos);
  EXPECT_NE(code.find("stress_w0"), std::string::npos);
  EXPECT_NE(code.find("stress_w1"), std::string::npos);
  EXPECT_NE(code.find("void stress_infer"), std::string::npos);
  EXPECT_EQ(code.find("stress_w2"), std::string::npos);  // only 2 layers
  EXPECT_EQ(code.find("int main"), std::string::npos);   // no test main by default
}

TEST(Export, RejectsEmptyPrefix) {
  Rng rng(2);
  const Network net = Network::create({2, 1}, rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);
  std::ostringstream os;
  ExportOptions options;
  options.symbol_prefix = "";
  EXPECT_THROW(export_c_source(qn, options, os), Error);
}

TEST(Export, GeneratedCodeCompilesAndMatchesHostReference) {
  // End-to-end: emit C, compile it with the system compiler, run it, and
  // compare the printed outputs against the bit-exact host reference.
  Rng rng(3);
  const Network net = Network::create({4, 8, 3}, rng);
  const QuantizedNetwork qn = QuantizedNetwork::from(net);

  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/iw_export_test.c";
  const std::string bin_path = dir + "/iw_export_test.bin";
  {
    std::ofstream out(c_path);
    ASSERT_TRUE(out.good());
    ExportOptions options;
    options.emit_test_main = true;
    export_c_source(qn, options, out);
  }
  const std::string compile = "cc -std=c11 -O1 -o " + bin_path + " " + c_path;
  if (std::system(compile.c_str()) != 0) {
    GTEST_SKIP() << "no C compiler available for the export round-trip";
  }
  // Run and capture the output lines.
  const std::string out_path = dir + "/iw_export_test.out";
  ASSERT_EQ(std::system((bin_path + " > " + out_path).c_str()), 0);
  std::ifstream result(out_path);
  std::vector<std::int32_t> got;
  std::int32_t v;
  while (result >> v) got.push_back(v);

  const std::vector<std::int32_t> zero_input(qn.num_inputs(), 0);
  EXPECT_EQ(got, qn.infer_fixed(zero_input));
  std::remove(c_path.c_str());
  std::remove(bin_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace iw::nn
