// The headline integration test: every quantitative claim of the paper in
// one place, asserted end to end against the full simulation stack. If this
// suite is green, the reproduction stands.
#include <gtest/gtest.h>

#include "core/app.hpp"
#include "core/comparison.hpp"
#include "core/sustainability.hpp"
#include "nn/presets.hpp"
#include "platform/device.hpp"

namespace iw {
namespace {

TEST(PaperReproduction, SectionIII_NetworkArchitectures) {
  Rng rng_a(1), rng_b(2);
  const nn::Network a = nn::make_network_a(rng_a);
  EXPECT_EQ(a.num_neurons(), 108u);
  EXPECT_EQ(a.num_weights(), 3003u);
  const nn::Network b = nn::make_network_b(rng_b);
  EXPECT_EQ(b.num_neurons(), 1356u);
  EXPECT_EQ(b.num_weights(), 81032u);
}

TEST(PaperReproduction, TableIII_And_TableIV) {
  Rng rng(1);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  Rng in_rng(2020);
  std::vector<float> input(5);
  for (float& v : input) v = static_cast<float>(in_rng.uniform(-1.0, 1.0));
  const core::NetworkComparison cmp =
      core::compare_targets("Network A", qn, qn.quantize_input(input));

  // Ordering of Table III.
  EXPECT_GT(cmp.rows[1].cycles, cmp.rows[0].cycles);  // IBEX > M4
  EXPECT_GT(cmp.rows[0].cycles, cmp.rows[2].cycles);  // M4 > 1x RI5CY
  EXPECT_GT(cmp.rows[2].cycles, cmp.rows[3].cycles);  // 1x > 8x RI5CY
  // Magnitudes of Table IV within 25% of the paper.
  EXPECT_NEAR(cmp.rows[0].energy_j * 1e6, 5.1, 5.1 * 0.25);
  EXPECT_NEAR(cmp.rows[1].energy_j * 1e6, 1.3, 1.3 * 0.25);
  EXPECT_NEAR(cmp.rows[2].energy_j * 1e6, 2.9, 2.9 * 0.25);
  EXPECT_NEAR(cmp.rows[3].energy_j * 1e6, 1.2, 1.2 * 0.25);
  // Speedups: 4.93x (8 cores vs M4) and 1.33x (1 core vs M4) in the paper.
  const double multi_speedup = static_cast<double>(cmp.rows[0].cycles) /
                               static_cast<double>(cmp.rows[3].cycles);
  EXPECT_GT(multi_speedup, 3.9);
  EXPECT_LT(multi_speedup, 6.2);
}

TEST(PaperReproduction, SectionIV_FloatVsFixed) {
  Rng rng(1);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  std::vector<float> input(5, 0.25f);
  const core::FloatFixedComparison cmp = core::compare_float_fixed_m4(net, qn, input);
  // Paper: 38478 float vs 30210 fixed cycles (1.27x).
  EXPECT_NEAR(static_cast<double>(cmp.float_cycles), 38478.0, 38478.0 * 0.15);
  EXPECT_GT(cmp.speedup(), 1.05);
  EXPECT_LT(cmp.speedup(), 1.6);
}

TEST(PaperReproduction, TablesI_II_Harvesting) {
  const hv::DualSourceHarvester dual = hv::DualSourceHarvester::calibrated();
  EXPECT_NEAR(dual.solar().net_intake_w(700.0) * 1e3, 0.9, 0.01);
  EXPECT_NEAR(dual.solar().net_intake_w(30000.0) * 1e3, 24.711, 0.25);
  EXPECT_NEAR(dual.teg().net_intake_w(32.0, 22.0, 0.0) * 1e6, 24.0, 0.5);
  EXPECT_NEAR(dual.teg().net_intake_w(30.0, 15.0, 0.0) * 1e6, 55.5, 6.0);
  EXPECT_NEAR(dual.teg().net_intake_w(30.0, 15.0, 42.0 / 3.6) * 1e6, 155.4, 3.0);
}

TEST(PaperReproduction, SectionIVA_SelfSustainability) {
  const core::SustainabilityReport report = core::paper_sustainability_scenario();
  EXPECT_NEAR(report.harvested_j_per_day, 21.44, 0.8);
  EXPECT_NEAR(report.energy_per_detection_j * 1e6, 602.2, 5.0);
  EXPECT_NEAR(report.detections_per_minute, 24.0, 1.5);

  // Closed loop: the battery must be energy-neutral at that rate.
  platform::DeviceConfig config;
  config.detection = platform::make_detection_cost({});
  config.detection_period_s = 60.0 / 24.0;
  config.initial_soc = 0.5;
  const platform::DaySimulationResult day = platform::simulate_day(
      config, hv::DualSourceHarvester::calibrated(), hv::paper_worst_case_day());
  EXPECT_EQ(day.detections_skipped, 0u);
  EXPECT_GE(day.final_soc, day.initial_soc - 1e-3);
}

TEST(PaperReproduction, EndToEndPipelineBitExactOnEveryTarget) {
  core::AppConfig config;
  config.dataset.subjects = 2;
  config.dataset.minutes_per_level = 4.0;
  config.training.max_epochs = 200;
  const core::StressDetectionApp app = core::StressDetectionApp::build(config);
  EXPECT_GT(app.float_test_accuracy(), 0.7);

  bio::RawFeatures window{};
  window[bio::kFeatRmssd] = 0.03;
  window[bio::kFeatSdsd] = 0.02;
  window[bio::kFeatNn50] = 3.0;
  window[bio::kFeatGsrl] = 1.2;
  window[bio::kFeatGsrh] = 0.3;
  const bio::StressLevel reference = app.classify_fixed(window);
  for (kernels::Target target :
       {kernels::Target::kCortexM4, kernels::Target::kIbex,
        kernels::Target::kRi5cySingle, kernels::Target::kRi5cyMulti}) {
    EXPECT_EQ(app.classify_on_target(window, target).level, reference)
        << kernels::target_name(target);
  }
}

}  // namespace
}  // namespace iw
