#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "harvest/converters.hpp"
#include "harvest/harvester.hpp"
#include "harvest/solar.hpp"
#include "harvest/teg.hpp"

namespace iw::hv {
namespace {

// ---------------------------------------------------------------- converters

TEST(Converters, EfficiencyCurveInterpolatesAndClamps) {
  const EfficiencyCurve curve({{1e-6, 0.4}, {1e-3, 0.8}});
  EXPECT_DOUBLE_EQ(curve.at(1e-7), 0.4);   // clamp below
  EXPECT_DOUBLE_EQ(curve.at(1e-2), 0.8);   // clamp above
  EXPECT_NEAR(curve.at(3.1623e-5), 0.6, 0.01);  // log-scale midpoint of 1e-6..1e-3
}

TEST(Converters, CurveValidation) {
  EXPECT_THROW(EfficiencyCurve({{1e-6, 0.4}}), Error);
  EXPECT_THROW(EfficiencyCurve({{1e-3, 0.4}, {1e-6, 0.8}}), Error);
  EXPECT_THROW(EfficiencyCurve({{1e-6, 0.0}, {1e-3, 0.8}}), Error);
}

TEST(Converters, OutputBelowMinInputIsZero) {
  const ConverterModel bq = bq25570();
  EXPECT_DOUBLE_EQ(bq.output_power_w(0.0), 0.0);
  EXPECT_DOUBLE_EQ(bq.output_power_w(bq.min_input_w / 2.0), 0.0);
}

TEST(Converters, OutputMonotoneAndLossy) {
  const ConverterModel bq = bq25570();
  double prev = 0.0;
  for (double p = 1e-6; p < 0.1; p *= 2.0) {
    const double out = bq.output_power_w(p);
    EXPECT_LT(out, p);        // no free energy
    EXPECT_GE(out, prev);     // monotone
    prev = out;
  }
}

TEST(Converters, Bq25505TunedForMicropower) {
  // At very low input the TEG-path converter must beat the solar-path one.
  EXPECT_GT(bq25505().output_power_w(20e-6), bq25570().output_power_w(20e-6));
}

// --------------------------------------------------------------------- solar

TEST(Solar, ReproducesTableI) {
  const SolarHarvester solar = SolarHarvester::calibrated();
  // Paper Table I: 0.9 mW @ 700 lx, 24.711 mW @ 30 klx.
  EXPECT_NEAR(units::to_mw(solar.net_intake_w(700.0)), 0.9, 0.01);
  EXPECT_NEAR(units::to_mw(solar.net_intake_w(30000.0)), 24.711, 0.25);
}

TEST(Solar, MonotoneInIlluminance) {
  const SolarHarvester solar = SolarHarvester::calibrated();
  double prev = -1.0;
  for (double lux = 0.0; lux <= 50000.0; lux += 500.0) {
    const double p = solar.net_intake_w(lux);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Solar, DarknessYieldsNothing) {
  const SolarHarvester solar = SolarHarvester::calibrated();
  EXPECT_DOUBLE_EQ(solar.net_intake_w(0.0), 0.0);
}

TEST(Solar, PanelPowerExceedsNetIntake) {
  const SolarHarvester solar = SolarHarvester::calibrated();
  for (double lux : {200.0, 700.0, 5000.0, 30000.0}) {
    EXPECT_GT(solar.panel_power_w(lux), solar.net_intake_w(lux)) << lux;
  }
}

TEST(Solar, IrradianceConversion) {
  const SolarHarvester solar = SolarHarvester::calibrated();
  EXPECT_NEAR(solar.irradiance_wm2(1200.0), 10.0, 1e-9);
  EXPECT_THROW(solar.irradiance_wm2(-1.0), Error);
}

TEST(Solar, InterpolatedOfficeLightPlausible) {
  // Between the calibration points the model should give a few mW at
  // bright-office/window illuminance.
  const SolarHarvester solar = SolarHarvester::calibrated();
  const double p_3klx = units::to_mw(solar.net_intake_w(3000.0));
  EXPECT_GT(p_3klx, 1.5);
  EXPECT_LT(p_3klx, 8.0);
}

// ----------------------------------------------------------------------- teg

TEST(Teg, ReproducesTableIICalibrationRows) {
  const TegHarvester teg = TegHarvester::calibrated();
  // Row 1: 22 C room, 32 C skin, no wind -> 24.0 uW.
  EXPECT_NEAR(units::to_uw(teg.net_intake_w(32.0, 22.0, 0.0)), 24.0, 0.5);
  // Row 3: 15 C room, 30 C skin, 42 km/h wind -> 155.4 uW.
  EXPECT_NEAR(units::to_uw(teg.net_intake_w(30.0, 15.0, 42.0 / 3.6)), 155.4, 3.0);
}

TEST(Teg, PredictsTableIIMiddleRow) {
  // Row 2 (15 C room, 30 C skin, no wind -> 55.5 uW) is NOT used for
  // calibration; the quadratic dT law must predict it.
  const TegHarvester teg = TegHarvester::calibrated();
  EXPECT_NEAR(units::to_uw(teg.net_intake_w(30.0, 15.0, 0.0)), 55.5, 6.0);
}

TEST(Teg, MonotoneInGradientAndWind) {
  const TegHarvester teg = TegHarvester::calibrated();
  EXPECT_GT(teg.net_intake_w(34.0, 22.0, 0.0), teg.net_intake_w(32.0, 22.0, 0.0));
  EXPECT_GT(teg.net_intake_w(32.0, 18.0, 0.0), teg.net_intake_w(32.0, 22.0, 0.0));
  EXPECT_GT(teg.net_intake_w(32.0, 22.0, 5.0), teg.net_intake_w(32.0, 22.0, 0.0));
}

TEST(Teg, NoGradientNoPower) {
  const TegHarvester teg = TegHarvester::calibrated();
  EXPECT_DOUBLE_EQ(teg.net_intake_w(22.0, 22.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(teg.net_intake_w(20.0, 25.0, 0.0), 0.0);  // inverted gradient
}

TEST(Teg, DeltaTAcrossModuleIsSmallFraction) {
  // Most of the skin-air gradient drops across contact + convection, which
  // is why wrist TEGs only harvest tens of microwatts.
  const TegHarvester teg = TegHarvester::calibrated();
  const double dt = teg.delta_t_teg_k(32.0, 22.0, 0.0);
  EXPECT_GT(dt, 0.05);
  EXPECT_LT(dt, 1.5);
}

TEST(Teg, WindIncreasesConvection) {
  const TegHarvester teg = TegHarvester::calibrated();
  EXPECT_GT(teg.h_w_per_m2k(11.67), teg.h_w_per_m2k(0.0));
  EXPECT_THROW(teg.h_w_per_m2k(-1.0), Error);
}

// ----------------------------------------------------------- dual source/day

TEST(Harvester, DualSourceAddsBothPaths) {
  const DualSourceHarvester dual = DualSourceHarvester::calibrated();
  Environment env;
  env.lux = 700.0;
  env.skin_c = 32.0;
  env.ambient_c = 22.0;
  EXPECT_NEAR(dual.intake_w(env),
              dual.solar_intake_w(env) + dual.teg_intake_w(env), 1e-12);
  EXPECT_GT(dual.teg_intake_w(env), 0.0);
}

TEST(Harvester, TegOnlyWhileWorn) {
  const DualSourceHarvester dual = DualSourceHarvester::calibrated();
  Environment env;
  env.worn = false;
  env.skin_c = 32.0;
  EXPECT_DOUBLE_EQ(dual.teg_intake_w(env), 0.0);
}

TEST(Harvester, PaperDayYields21J) {
  // Section IV-A: 6 h indoor light + worst-case TEG -> 21.44 J/day.
  const DualSourceHarvester dual = DualSourceHarvester::calibrated();
  const DayProfile day = paper_worst_case_day();
  EXPECT_NEAR(profile_duration_s(day), 86400.0, 1e-6);
  const double energy = harvested_energy_j(dual, day);
  EXPECT_NEAR(energy, 21.44, 0.6);
}

TEST(Harvester, ProfileValidation) {
  const DualSourceHarvester dual = DualSourceHarvester::calibrated();
  DayProfile bad{{-5.0, Environment{}}};
  EXPECT_THROW(profile_duration_s(bad), Error);
}

}  // namespace
}  // namespace iw::hv
