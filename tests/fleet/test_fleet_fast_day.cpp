// FleetConfig::fast_day must be invisible in the results: the aggregate
// FleetStats serialization (summary + full per-device outcome table, every
// double printed exactly) has to be byte-identical with the fast path on and
// off, at any thread count, with and without the shared classification app.
#include <gtest/gtest.h>

#include <string>

#include "fleet/fleet_engine.hpp"

namespace iw::fleet {
namespace {

FleetConfig mixed_fleet(int threads, bool fast_day) {
  FleetConfig config;
  config.num_devices = 48;  // covers all archetypes, policies and duty cycles
  config.fleet_seed = 2020;
  config.days = 2;
  config.threads = threads;
  config.chunk_size = 4;
  config.fast_day = fast_day;
  return config;
}

TEST(FleetFastDay, ByteIdenticalToEnginePathAcrossThreadCounts) {
  const std::string engine_path =
      FleetEngine(mixed_fleet(1, false)).run().stats.serialize();
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(engine_path,
              FleetEngine(mixed_fleet(threads, true)).run().stats.serialize())
        << "fast path diverged at " << threads << " threads";
    EXPECT_EQ(engine_path,
              FleetEngine(mixed_fleet(threads, false)).run().stats.serialize())
        << "engine path not thread-invariant at " << threads << " threads";
  }
}

TEST(FleetFastDay, ByteIdenticalWithSharedApp) {
  // Classification windows are drawn from the device RNG *after* the day
  // simulation, so a fast path that consumed different randomness or produced
  // different detection counts would shift every subsequent draw.
  core::AppConfig app_config;
  app_config.dataset.subjects = 2;
  app_config.dataset.minutes_per_level = 2.0;
  app_config.training.max_epochs = 40;
  const core::StressDetectionApp app = core::StressDetectionApp::build(app_config);

  FleetConfig fast = mixed_fleet(2, true);
  fast.num_devices = 16;
  fast.days = 1;
  fast.app = &app;
  FleetConfig engine_path = fast;
  engine_path.fast_day = false;

  const FleetResult fast_result = FleetEngine(fast).run();
  EXPECT_EQ(fast_result.stats.serialize(),
            FleetEngine(engine_path).run().stats.serialize());
  EXPECT_GT(fast_result.stats.summarize().classified, 0u);
}

TEST(FleetFastDay, ReportsDeviceDaysPerSec) {
  FleetConfig config = mixed_fleet(1, true);
  config.num_devices = 4;
  const FleetResult result = FleetEngine(config).run();
  EXPECT_DOUBLE_EQ(result.device_days_per_sec,
                   result.devices_per_sec * config.days);
  EXPECT_GT(result.device_days_per_sec, 0.0);
}

}  // namespace
}  // namespace iw::fleet
