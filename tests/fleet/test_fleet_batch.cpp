// Batched classification in the fleet must be invisible in the results: the
// batch engine is bit-exact with per-sample inference, so a fleet run with
// batching on must serialize byte-identically to one with it off — at any
// thread count, including with the per-worker shared workspace in play.
#include <gtest/gtest.h>

#include <string>

#include "fleet/device_instance.hpp"
#include "fleet/fleet_engine.hpp"

namespace iw::fleet {
namespace {

core::StressDetectionApp tiny_app() {
  // Same deliberately tiny app as the determinism suite: the point is the
  // classification plumbing, not model quality.
  core::AppConfig app_config;
  app_config.dataset.subjects = 2;
  app_config.dataset.minutes_per_level = 2.0;
  app_config.training.max_epochs = 40;
  return core::StressDetectionApp::build(app_config);
}

FleetConfig app_fleet(const core::StressDetectionApp& app, int threads) {
  FleetConfig config;
  config.num_devices = 16;
  config.fleet_seed = 2020;
  config.days = 1;
  config.threads = threads;
  config.chunk_size = 4;
  config.app = &app;
  return config;
}

TEST(FleetBatch, BatchedMatchesPerSampleByteForByte) {
  const core::StressDetectionApp app = tiny_app();

  FleetConfig batched = app_fleet(app, 2);
  FleetConfig per_sample = app_fleet(app, 2);
  per_sample.batched_classification = false;

  const FleetResult b = FleetEngine(batched).run();
  const FleetResult p = FleetEngine(per_sample).run();
  EXPECT_EQ(b.stats.serialize(), p.stats.serialize());
  EXPECT_GT(b.stats.summarize().classified, 0u);
}

TEST(FleetBatch, ThreadCountInvariantWithSharedWorkspace) {
  const core::StressDetectionApp app = tiny_app();
  const std::string at1 = FleetEngine(app_fleet(app, 1)).run().stats.serialize();
  const std::string at2 = FleetEngine(app_fleet(app, 2)).run().stats.serialize();
  const std::string at8 = FleetEngine(app_fleet(app, 8)).run().stats.serialize();
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

TEST(FleetBatch, DeviceWithOwnWorkspaceMatchesSharedAndPerSample) {
  const core::StressDetectionApp app = tiny_app();
  nn::FixedBatch shared(app.quantized());

  Scenario scenario = sample_scenario(2020, 3);
  scenario.days = 1;

  DeviceInstance with_shared(scenario, &app, &shared);
  with_shared.run();
  DeviceInstance lazy_own(scenario, &app);  // builds its own workspace
  lazy_own.run();
  DeviceInstance per_sample(scenario, &app);
  per_sample.set_batched_classification(false);
  per_sample.run();

  const DeviceOutcome& a = with_shared.outcome();
  const DeviceOutcome& b = lazy_own.outcome();
  const DeviceOutcome& c = per_sample.outcome();
  EXPECT_EQ(a.classified, b.classified);
  EXPECT_EQ(a.class_counts, b.class_counts);
  EXPECT_EQ(a.classified, c.classified);
  EXPECT_EQ(a.class_counts, c.class_counts);
  EXPECT_EQ(a.final_soc, b.final_soc);
  EXPECT_EQ(a.final_soc, c.final_soc);
}

}  // namespace
}  // namespace iw::fleet
