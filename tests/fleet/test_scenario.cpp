#include "fleet/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/units.hpp"

namespace iw::fleet {
namespace {

TEST(Scenario, SamplingIsDeterministic) {
  const Scenario a = sample_scenario(2020, 17);
  const Scenario b = sample_scenario(2020, 17);
  EXPECT_EQ(a.device_id, b.device_id);
  EXPECT_EQ(a.profile, b.profile);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.rng_seed, b.rng_seed);
  EXPECT_DOUBLE_EQ(a.lux_scale, b.lux_scale);
  EXPECT_DOUBLE_EQ(a.skin_c, b.skin_c);
  EXPECT_DOUBLE_EQ(a.initial_soc, b.initial_soc);
  EXPECT_DOUBLE_EQ(a.detection_period_s, b.detection_period_s);
}

TEST(Scenario, DistinctDevicesGetDistinctWorlds) {
  std::set<std::uint64_t> seeds;
  int profile_histogram[kNumWearerProfiles] = {};
  for (std::uint64_t id = 0; id < 200; ++id) {
    const Scenario s = sample_scenario(2020, id);
    EXPECT_EQ(s.device_id, id);
    seeds.insert(s.rng_seed);
    ++profile_histogram[static_cast<int>(s.profile)];
  }
  EXPECT_EQ(seeds.size(), 200u);  // no RNG seed collisions
  // Every archetype appears in a 200-device population.
  for (int count : profile_histogram) EXPECT_GT(count, 0);
}

TEST(Scenario, DifferentFleetSeedsGiveDifferentPopulations) {
  int differing = 0;
  for (std::uint64_t id = 0; id < 32; ++id) {
    if (sample_scenario(1, id).rng_seed != sample_scenario(2, id).rng_seed) {
      ++differing;
    }
  }
  EXPECT_EQ(differing, 32);
}

TEST(Scenario, SampledValuesAreWithinBounds) {
  for (std::uint64_t id = 0; id < 100; ++id) {
    const Scenario s = sample_scenario(99, id);
    EXPECT_GE(s.lux_scale, 0.3);
    EXPECT_LE(s.lux_scale, 3.5);
    EXPECT_GE(s.skin_c, 31.0);
    EXPECT_LE(s.skin_c, 33.5);
    EXPECT_GE(s.initial_soc, 0.25);
    EXPECT_LE(s.initial_soc, 0.85);
    EXPECT_GT(s.detection_period_s, 0.0);
    const double mix =
        s.stress_mix[0] + s.stress_mix[1] + s.stress_mix[2];
    EXPECT_NEAR(mix, 1.0, 1e-12);
  }
}

TEST(Scenario, EveryProfileBuildsAFullDay) {
  for (int p = 0; p < kNumWearerProfiles; ++p) {
    Scenario s;
    s.profile = static_cast<WearerProfile>(p);
    const hv::DayProfile day = build_day_profile(s);
    EXPECT_FALSE(day.empty());
    EXPECT_NEAR(hv::profile_duration_s(day), units::hours_to_s(24.0), 1e-6)
        << to_string(s.profile);
  }
}

TEST(Scenario, LuxScaleScalesTheProfile) {
  Scenario dim;
  dim.lux_scale = 0.5;
  Scenario bright = dim;
  bright.lux_scale = 2.0;
  const hv::DayProfile day_dim = build_day_profile(dim);
  const hv::DayProfile day_bright = build_day_profile(bright);
  ASSERT_EQ(day_dim.size(), day_bright.size());
  for (std::size_t i = 0; i < day_dim.size(); ++i) {
    EXPECT_NEAR(day_bright[i].env.lux, 4.0 * day_dim[i].env.lux, 1e-9);
  }
}

TEST(Scenario, MakePolicyCoversEveryKind) {
  for (int k = 0; k < kNumPolicyKinds; ++k) {
    Scenario s;
    s.policy = static_cast<PolicyKind>(k);
    const auto policy = make_policy(s);
    ASSERT_NE(policy, nullptr);
    platform::SchedulerState state;
    state.detection_energy_j = 600e-6;
    EXPECT_GT(policy->next_interval_s(state), 0.0) << to_string(s.policy);
  }
}

TEST(Scenario, ToStringNamesAreUnique) {
  std::set<std::string> names;
  for (int p = 0; p < kNumWearerProfiles; ++p) {
    names.insert(to_string(static_cast<WearerProfile>(p)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumWearerProfiles));
}

}  // namespace
}  // namespace iw::fleet
