// The fleet engine's hard invariant: for a fixed fleet seed, results are
// bit-identical no matter how many worker threads simulate the fleet.
#include <gtest/gtest.h>

#include <string>

#include "fleet/fleet_engine.hpp"

namespace iw::fleet {
namespace {

FleetConfig small_fleet(int threads) {
  FleetConfig config;
  config.num_devices = 48;
  config.fleet_seed = 2020;
  config.days = 2;
  config.threads = threads;
  config.chunk_size = 4;  // 12 chunks -> plenty of interleaving at 8 threads
  return config;
}

TEST(FleetDeterminism, ByteIdenticalAcrossThreadCounts) {
  const std::string at1 = FleetEngine(small_fleet(1)).run().stats.serialize();
  const std::string at2 = FleetEngine(small_fleet(2)).run().stats.serialize();
  const std::string at8 = FleetEngine(small_fleet(8)).run().stats.serialize();
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
}

TEST(FleetDeterminism, ChunkSizeDoesNotChangeResults) {
  FleetConfig coarse = small_fleet(4);
  coarse.chunk_size = 48;  // one chunk: zero parallel interleaving
  FleetConfig fine = small_fleet(4);
  fine.chunk_size = 1;  // maximal interleaving
  EXPECT_EQ(FleetEngine(coarse).run().stats.serialize(),
            FleetEngine(fine).run().stats.serialize());
}

TEST(FleetDeterminism, RerunIsBitIdentical) {
  const FleetConfig config = small_fleet(3);
  EXPECT_EQ(FleetEngine(config).run().stats.serialize(),
            FleetEngine(config).run().stats.serialize());
}

TEST(FleetDeterminism, DifferentSeedsProduceDifferentFleets) {
  FleetConfig a = small_fleet(2);
  FleetConfig b = small_fleet(2);
  b.fleet_seed = 2021;
  EXPECT_NE(FleetEngine(a).run().stats.serialize(),
            FleetEngine(b).run().stats.serialize());
}

TEST(FleetDeterminism, SharedAppClassificationIsThreadCountInvariant) {
  // A deliberately tiny app: the point is shared const access from many
  // workers, not model quality.
  core::AppConfig app_config;
  app_config.dataset.subjects = 2;
  app_config.dataset.minutes_per_level = 2.0;
  app_config.training.max_epochs = 40;
  const core::StressDetectionApp app = core::StressDetectionApp::build(app_config);

  FleetConfig config = small_fleet(1);
  config.num_devices = 16;
  config.days = 1;
  config.app = &app;
  const FleetResult serial = FleetEngine(config).run();
  config.threads = 8;
  const FleetResult threaded = FleetEngine(config).run();

  EXPECT_EQ(serial.stats.serialize(), threaded.stats.serialize());
  // The app actually classified windows.
  EXPECT_GT(serial.stats.summarize().classified, 0u);
}

// Regression pin for one small fleet: catches accidental changes to scenario
// sampling, the device simulation, or the stats reduction. If a PR changes
// these numbers *intentionally* (new scenario fields, different draw order),
// re-pin them and say so in the PR description.
TEST(FleetRegression, PinnedSmallFleetAggregates) {
  FleetConfig config;
  config.num_devices = 16;
  config.fleet_seed = 2020;
  config.days = 1;
  config.threads = 2;
  const FleetStats::Summary s = FleetEngine(config).run().stats.summarize();

  EXPECT_EQ(s.devices, 16u);
  EXPECT_EQ(s.detections_attempted, 28810u);
  EXPECT_EQ(s.detections_completed, 28810u);
  EXPECT_EQ(s.detections_skipped, 0u);
  EXPECT_NEAR(s.fraction_self_sustaining, 1.0, 1e-9);
  EXPECT_NEAR(s.final_soc.p50, 0.64778712066371169, 1e-9);
  EXPECT_NEAR(s.harvested_j, 1232.7915719894299, 1e-6);
}

}  // namespace
}  // namespace iw::fleet
