// Shard isolation: any contiguous sub-population simulated alone must be
// byte-identical to the same devices inside the full-population run. This is
// what Rng::substream buys — device i's scenario and every in-device draw
// depend only on (fleet_seed, i) — and it is the property that lets the
// longitudinal runner generate shards on demand instead of holding the
// population in memory.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/longitudinal/runner.hpp"

namespace iw::fleet {
namespace {

constexpr std::uint64_t kSeed = 31415;
constexpr int kDays = 4;

std::string rows_for_range(const FleetStats& stats, std::uint64_t begin,
                           std::uint64_t end) {
  FleetStats subset;
  for (const DeviceOutcome& o : stats.outcome_table()) {
    if (o.device_id >= begin && o.device_id < end) subset.add(o);
  }
  return subset.serialize();
}

TEST(LongitudinalShard, SubPopulationMatchesFullRunAcrossThreadCounts) {
  // Full population once, rows retained, as the reference.
  LongitudinalConfig full;
  full.num_devices = 240;
  full.fleet_seed = kSeed;
  full.days = kDays;
  full.shard_size = 48;
  full.threads = 2;
  full.record_outcomes = true;
  const FleetStats full_rows = LongitudinalRunner(full).run().outcomes;

  // Three sub-ranges: interior, head, and tail of the id space — each run in
  // isolation at 1/2/8 threads must reproduce its slice of the full run.
  struct Range {
    std::uint64_t first;
    std::uint64_t count;
  };
  for (const Range range : {Range{100, 60}, Range{0, 17}, Range{233, 7}}) {
    const std::string expected =
        rows_for_range(full_rows, range.first, range.first + range.count);
    for (int threads : {1, 2, 8}) {
      LongitudinalConfig sub;
      sub.num_devices = range.count;
      sub.first_device = range.first;
      sub.fleet_seed = kSeed;
      sub.days = kDays;
      sub.shard_size = 16;
      sub.threads = threads;
      sub.record_outcomes = true;
      EXPECT_EQ(expected,
                LongitudinalRunner(sub).run().outcomes.serialize())
          << "range [" << range.first << ", " << range.first + range.count
          << ") at " << threads << " threads";
    }
  }
}

TEST(LongitudinalShard, AggregatesOfDisjointShardsMergeToFullRun) {
  // Cut the population into uneven sub-runs, stream each into its own
  // aggregate, merge: byte-identical to the full run's aggregate. (The
  // runner does exactly this internally; this pins it end to end across
  // separate runner instances.)
  LongitudinalConfig full;
  full.num_devices = 150;
  full.fleet_seed = kSeed;
  full.days = kDays;
  full.shard_size = 64;
  const std::string expected = LongitudinalRunner(full).run().stats.serialize();

  const std::uint64_t cuts[] = {0, 13, 64, 149, 150};
  LongitudinalStats merged;
  for (std::size_t i = 0; i + 1 < std::size(cuts); ++i) {
    LongitudinalConfig sub;
    sub.num_devices = cuts[i + 1] - cuts[i];
    sub.first_device = cuts[i];
    sub.fleet_seed = kSeed;
    sub.days = kDays;
    sub.shard_size = 11;
    sub.threads = 2;
    merged.merge(LongitudinalRunner(sub).run().stats);
  }
  EXPECT_EQ(expected, merged.serialize());
}

}  // namespace
}  // namespace iw::fleet
