// Longitudinal fleet service: the checkpoint/resume and runner contracts.
//
// The headline property: cutting a multi-day run at any day boundary —
// in-memory (ShardSimulator::save_checkpoints/resume) or through a checkpoint
// file (LongitudinalRunner) — and continuing in a fresh simulator produces
// bit-identical results to never having stopped, across every archetype,
// policy variant, and battery edge state. Alongside it: the runner's
// aggregates are byte-identical across thread counts and shard sizes, and
// its per-device rows match the fleet engine oracle.
#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fleet/fleet_engine.hpp"
#include "fleet/longitudinal/runner.hpp"

namespace iw::fleet {
namespace {

// 5 archetypes x 4 policy variants (three policy kinds plus a second
// fixed-rate period), with initial SoCs covering empty, full, and mid-range
// batteries — so day-k checkpoint states include devices pinned at the
// battery rails.
std::vector<Scenario> matrix_scenarios(int days) {
  std::vector<Scenario> scenarios;
  const double socs[] = {0.0, 1.0, 0.5, 0.12};
  int i = 0;
  for (int p = 0; p < kNumWearerProfiles; ++p) {
    for (int v = 0; v < 4; ++v) {
      Scenario s = sample_scenario(/*fleet_seed=*/515, static_cast<std::uint64_t>(i));
      s.profile = static_cast<WearerProfile>(p);
      switch (v) {
        case 0:
          s.policy = PolicyKind::kFixedRate;
          s.detection_period_s = 300.0;
          break;
        case 1:
          s.policy = PolicyKind::kFixedRate;
          s.detection_period_s = 900.0;
          break;
        case 2:
          s.policy = PolicyKind::kSocProportional;
          break;
        default:
          s.policy = PolicyKind::kEnergyNeutral;
          break;
      }
      s.initial_soc = socs[(static_cast<std::size_t>(i)) % std::size(socs)];
      s.days = days;
      scenarios.push_back(s);
      ++i;
    }
  }
  return scenarios;
}

std::string rows_of(const ShardSimulator& sim) {
  FleetStats stats;
  for (const DeviceOutcome& o : sim.outcomes()) stats.add(o);
  return stats.serialize();
}

TEST(DeviceCheckpoint, RecordRoundTripIsByteStable) {
  Rng rng(31337);
  rng.normal(0.0, 1.0);  // populate the Box-Muller cache
  DeviceCheckpoint cp;
  cp.soc = 0x1.fffffffffffffp-1;  // just under 1.0
  cp.days_run = 17;
  cp.rng = rng.snapshot();
  cp.outcome.device_id = 0xFEEDFACEull;
  cp.outcome.profile = WearerProfile::kNightShift;
  cp.outcome.policy = PolicyKind::kEnergyNeutral;
  cp.outcome.days_run = 17;
  cp.outcome.detections_attempted = 12345;
  cp.outcome.detections_completed = 12000;
  cp.outcome.detections_skipped = 345;
  cp.outcome.harvested_j = 123.456789;
  cp.outcome.consumed_j = -0.0;
  cp.outcome.initial_soc = 0.0;
  cp.outcome.final_soc = 1.0;
  cp.outcome.min_soc = 1e-300;
  cp.outcome.detections_per_min = 0.25;
  cp.outcome.mean_intake_w = 3.5e-3;
  cp.outcome.self_sustaining = true;
  cp.outcome.class_counts = {7, 8, 9};
  cp.outcome.classified = 24;

  ByteWriter w;
  save_device_checkpoint(cp, w);
  EXPECT_EQ(w.size(), kDeviceCheckpointBytes);
  ByteReader r(w.data());
  const DeviceCheckpoint loaded = load_device_checkpoint(r);
  EXPECT_EQ(r.remaining(), 0u);
  ByteWriter w2;
  save_device_checkpoint(loaded, w2);
  EXPECT_EQ(w.data(), w2.data());
}

TEST(DeviceCheckpoint, LoadRejectsCorruptEnums) {
  DeviceCheckpoint cp;
  ByteWriter w;
  save_device_checkpoint(cp, w);
  std::vector<std::uint8_t> bytes = w.data();
  // Profile byte sits right after soc(8) + days(4) + rng(4*8+8+8+1) + id(8).
  bytes[8 + 4 + 49 + 8] = 0xFF;
  ByteReader r(bytes);
  EXPECT_THROW(load_device_checkpoint(r), Error);
}

TEST(ShardSimulator, CheckpointResumeBitIdenticalToUninterrupted) {
  // Save at day k, resume in a *fresh* simulator, run to the horizon:
  // per-device rows and streamed aggregates must both match the
  // uninterrupted run byte for byte — for every archetype x policy variant
  // and batteries starting (and checkpointing) at the rails.
  constexpr int kTotalDays = 6;
  const std::vector<Scenario> scenarios = matrix_scenarios(kTotalDays);

  ShardSimulator uninterrupted;
  LongitudinalStats full_stats(kTotalDays);
  uninterrupted.begin(scenarios);
  while (uninterrupted.step_day(&full_stats)) {
  }
  EXPECT_EQ(uninterrupted.day(), kTotalDays);
  const std::string expected_rows = rows_of(uninterrupted);
  const std::string expected_stats = full_stats.serialize();

  for (int k : {1, 3, 5}) {
    ShardSimulator first;
    LongitudinalStats stats_a(kTotalDays);
    first.begin(scenarios);
    for (int d = 0; d < k; ++d) first.step_day(&stats_a);
    ASSERT_EQ(first.day(), k);
    std::vector<DeviceCheckpoint> cps;
    first.save_checkpoints(cps);
    ASSERT_EQ(cps.size(), scenarios.size());

    ShardSimulator second;
    LongitudinalStats stats_b(kTotalDays);
    second.resume(scenarios, cps);
    EXPECT_EQ(second.day(), k);
    while (second.step_day(&stats_b)) {
    }
    EXPECT_EQ(expected_rows, rows_of(second)) << "split at day " << k;
    stats_a.merge(stats_b);
    EXPECT_EQ(expected_stats, stats_a.serialize()) << "split at day " << k;
  }
}

TEST(ShardSimulator, DoubleSplitMatchesToo) {
  // Two cuts (checkpoint chains): day 2 and day 4 of 6.
  constexpr int kTotalDays = 6;
  const std::vector<Scenario> scenarios = matrix_scenarios(kTotalDays);

  ShardSimulator uninterrupted;
  uninterrupted.begin(scenarios);
  while (uninterrupted.step_day()) {
  }
  const std::string expected = rows_of(uninterrupted);

  std::vector<DeviceCheckpoint> cps;
  ShardSimulator a;
  a.begin(scenarios);
  a.step_day();
  a.step_day();
  a.save_checkpoints(cps);
  ShardSimulator b;
  b.resume(scenarios, cps);
  b.step_day();
  b.step_day();
  b.save_checkpoints(cps);
  ShardSimulator c;
  c.resume(scenarios, cps);
  while (c.step_day()) {
  }
  EXPECT_EQ(expected, rows_of(c));
}

TEST(ShardSimulator, ResumeValidatesCheckpointsAgainstScenarios) {
  const std::vector<Scenario> scenarios = matrix_scenarios(3);
  ShardSimulator sim;
  sim.begin(scenarios);
  sim.step_day();
  std::vector<DeviceCheckpoint> cps;
  sim.save_checkpoints(cps);

  ShardSimulator fresh;
  std::vector<DeviceCheckpoint> wrong_count(cps.begin(), cps.end() - 1);
  EXPECT_THROW(fresh.resume(scenarios, wrong_count), Error);

  std::vector<DeviceCheckpoint> wrong_device = cps;
  wrong_device[0].outcome.device_id += 1;
  EXPECT_THROW(fresh.resume(scenarios, wrong_device), Error);

  std::vector<DeviceCheckpoint> wrong_seed = cps;
  wrong_seed[2].rng.seed ^= 1;
  EXPECT_THROW(fresh.resume(scenarios, wrong_seed), Error);

  std::vector<DeviceCheckpoint> torn = cps;
  torn[1].days_run += 1;  // lane ahead of the shard clock
  EXPECT_THROW(fresh.resume(scenarios, torn), Error);
}

TEST(ShardSimulator, CheckpointResumeWithClassificationApp) {
  // The app path consumes extra RNG draws (window picks) and folds labels
  // into the outcome; a mid-run cut must preserve both.
  core::AppConfig app_config;
  app_config.dataset.subjects = 2;
  app_config.dataset.minutes_per_level = 2.0;
  app_config.training.max_epochs = 40;
  const core::StressDetectionApp app = core::StressDetectionApp::build(app_config);

  std::vector<Scenario> scenarios;
  for (std::uint64_t id = 0; id < 12; ++id) {
    Scenario s = sample_scenario(2020, id);
    s.days = 4;
    scenarios.push_back(s);
  }

  ShardSimulator uninterrupted(&app);
  uninterrupted.begin(scenarios);
  while (uninterrupted.step_day()) {
  }
  const std::string expected = rows_of(uninterrupted);
  std::uint64_t classified = 0;
  for (const DeviceOutcome& o : uninterrupted.outcomes()) classified += o.classified;
  EXPECT_GT(classified, 0u);

  ShardSimulator first(&app);
  first.begin(scenarios);
  first.step_day();
  first.step_day();
  std::vector<DeviceCheckpoint> cps;
  first.save_checkpoints(cps);
  ShardSimulator second(&app);
  second.resume(scenarios, cps);
  while (second.step_day()) {
  }
  EXPECT_EQ(expected, rows_of(second));
}

TEST(LongitudinalRunner, MatchesFleetEngineOracle) {
  // Same population spec through the longitudinal runner (with row retention)
  // and the fleet engine's cohort path: per-device rows must agree byte for
  // byte — the longitudinal day loop is the same simulation, re-timed.
  LongitudinalConfig config;
  config.num_devices = 40;
  config.fleet_seed = 2020;
  config.days = 3;
  config.shard_size = 16;
  config.record_outcomes = true;
  const LongitudinalResult longitudinal = LongitudinalRunner(config).run();

  FleetConfig fleet;
  fleet.num_devices = 40;
  fleet.fleet_seed = 2020;
  fleet.days = 3;
  const FleetResult oracle = FleetEngine(fleet).run();

  EXPECT_EQ(oracle.stats.serialize(), longitudinal.outcomes.serialize());
  EXPECT_EQ(longitudinal.stats.day_counters(3).devices, 40u);
}

TEST(LongitudinalRunner, ByteIdenticalAcrossThreadsAndShardSizes) {
  LongitudinalConfig base;
  base.num_devices = 300;
  base.fleet_seed = 777;
  base.days = 4;
  base.shard_size = 64;
  base.threads = 1;
  const std::string reference = LongitudinalRunner(base).run().stats.serialize();

  struct Variant {
    int threads;
    std::size_t shard;
  };
  for (const Variant v : {Variant{2, 64}, Variant{8, 23}, Variant{2, 300},
                          Variant{8, 1}}) {
    LongitudinalConfig config = base;
    config.threads = v.threads;
    config.shard_size = v.shard;
    EXPECT_EQ(reference, LongitudinalRunner(config).run().stats.serialize())
        << "threads=" << v.threads << " shard=" << v.shard;
  }
}

TEST(LongitudinalRunner, CheckpointFileResumeBitIdentical) {
  LongitudinalConfig base;
  base.num_devices = 200;
  base.fleet_seed = 99;
  base.days = 6;
  base.shard_size = 32;
  base.threads = 2;
  base.record_outcomes = true;
  const LongitudinalResult full = LongitudinalRunner(base).run();
  const std::string expected_stats = full.stats.serialize();
  const std::string expected_rows = full.outcomes.serialize();

  const std::string ckpt = testing::TempDir() + "iw_long_resume.ckpt";
  LongitudinalConfig leg1 = base;
  leg1.record_outcomes = false;
  leg1.checkpoint_path = ckpt;
  leg1.checkpoint_day = 2;
  const LongitudinalResult partial = LongitudinalRunner(leg1).run();
  EXPECT_EQ(partial.end_day, 2);

  // Resume with a different thread count and shard size: both the streamed
  // aggregates (banked + new days) and the per-device rows must match the
  // uninterrupted run.
  LongitudinalConfig leg2 = base;
  leg2.resume_path = ckpt;
  leg2.threads = 4;
  leg2.shard_size = 17;
  const LongitudinalResult resumed = LongitudinalRunner(leg2).run();
  EXPECT_EQ(resumed.start_day, 2);
  EXPECT_EQ(resumed.end_day, 6);
  EXPECT_EQ(expected_stats, resumed.stats.serialize());
  EXPECT_EQ(expected_rows, resumed.outcomes.serialize());
  std::remove(ckpt.c_str());
}

TEST(LongitudinalRunner, CheckpointChainMatches) {
  // checkpoint@2 -> resume+checkpoint@4 -> resume to 6, vs one shot.
  LongitudinalConfig base;
  base.num_devices = 120;
  base.fleet_seed = 41;
  base.days = 6;
  base.shard_size = 50;
  base.threads = 2;
  const std::string expected = LongitudinalRunner(base).run().stats.serialize();

  const std::string ckpt_a = testing::TempDir() + "iw_long_chain_a.ckpt";
  const std::string ckpt_b = testing::TempDir() + "iw_long_chain_b.ckpt";
  LongitudinalConfig leg1 = base;
  leg1.checkpoint_path = ckpt_a;
  leg1.checkpoint_day = 2;
  LongitudinalRunner(leg1).run();
  LongitudinalConfig leg2 = base;
  leg2.resume_path = ckpt_a;
  leg2.checkpoint_path = ckpt_b;
  leg2.checkpoint_day = 4;
  leg2.threads = 1;
  LongitudinalRunner(leg2).run();
  LongitudinalConfig leg3 = base;
  leg3.resume_path = ckpt_b;
  leg3.threads = 4;
  EXPECT_EQ(expected, LongitudinalRunner(leg3).run().stats.serialize());
  std::remove(ckpt_a.c_str());
  std::remove(ckpt_b.c_str());
}

TEST(LongitudinalRunner, ResumeRejectsMismatchedPopulation) {
  LongitudinalConfig base;
  base.num_devices = 40;
  base.fleet_seed = 5;
  base.days = 4;
  base.shard_size = 16;
  const std::string ckpt = testing::TempDir() + "iw_long_reject.ckpt";
  LongitudinalConfig leg1 = base;
  leg1.checkpoint_path = ckpt;
  leg1.checkpoint_day = 2;
  LongitudinalRunner(leg1).run();

  LongitudinalConfig wrong_seed = base;
  wrong_seed.resume_path = ckpt;
  wrong_seed.fleet_seed = 6;
  EXPECT_THROW(LongitudinalRunner(wrong_seed).run(), Error);

  LongitudinalConfig wrong_pop = base;
  wrong_pop.resume_path = ckpt;
  wrong_pop.num_devices = 41;
  EXPECT_THROW(LongitudinalRunner(wrong_pop).run(), Error);

  LongitudinalConfig wrong_days = base;
  wrong_days.resume_path = ckpt;
  wrong_days.days = 5;
  EXPECT_THROW(LongitudinalRunner(wrong_days).run(), Error);

  LongitudinalConfig no_progress = base;
  no_progress.resume_path = ckpt;
  no_progress.checkpoint_path = ckpt + ".next";
  no_progress.checkpoint_day = 2;  // == resumed day: nothing to simulate
  EXPECT_THROW(LongitudinalRunner(no_progress).run(), Error);
  std::remove(ckpt.c_str());
}

TEST(LongitudinalRunner, ValidatesConfig) {
  LongitudinalConfig config;
  config.num_devices = 0;
  EXPECT_THROW(LongitudinalRunner{config}, Error);
  config = LongitudinalConfig{};
  config.checkpoint_day = 3;  // day without a path
  EXPECT_THROW(LongitudinalRunner{config}, Error);
  config = LongitudinalConfig{};
  config.checkpoint_path = "x.ckpt";
  config.checkpoint_day = 0;  // path without a day
  EXPECT_THROW(LongitudinalRunner{config}, Error);
  config = LongitudinalConfig{};
  config.checkpoint_path = "x.ckpt";
  config.checkpoint_day = 99;  // past the horizon
  config.days = 10;
  EXPECT_THROW(LongitudinalRunner{config}, Error);
}

}  // namespace
}  // namespace iw::fleet
