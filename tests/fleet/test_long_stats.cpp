// LongitudinalStats: the streamed aggregate under the longitudinal fleet.
// The load-bearing property is exact mergeability — any partition of the
// same device-days, merged in any order, yields byte-identical aggregates —
// plus byte-stable binary save/load (it rides inside checkpoint files).
#include "fleet/longitudinal/long_stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace iw::fleet {
namespace {

DeviceOutcome outcome_for(Rng& rng, std::uint64_t id) {
  DeviceOutcome o;
  o.device_id = id;
  o.profile = static_cast<WearerProfile>(rng.uniform_int(kNumWearerProfiles));
  o.policy = static_cast<PolicyKind>(rng.uniform_int(kNumPolicyKinds));
  o.detections_attempted = static_cast<std::uint64_t>(rng.uniform_int(500));
  o.detections_completed = o.detections_attempted / 2;
  o.detections_skipped = o.detections_attempted - o.detections_completed;
  o.harvested_j = rng.uniform(0.0, 40.0);
  o.consumed_j = rng.uniform(0.0, 40.0);
  o.final_soc = rng.uniform();
  o.self_sustaining = rng.bernoulli(0.7);
  o.classified = static_cast<std::uint64_t>(rng.uniform_int(8));
  return o;
}

TEST(LongitudinalStats, MergeIsOrderAndPartitionInvariant) {
  constexpr int kDays = 5;
  constexpr int kDevices = 400;
  Rng rng(123);
  std::vector<std::vector<DeviceOutcome>> by_day(kDays);
  for (int d = 0; d < kDays; ++d) {
    for (int i = 0; i < kDevices; ++i) {
      by_day[static_cast<std::size_t>(d)].push_back(
          outcome_for(rng, static_cast<std::uint64_t>(i)));
    }
  }

  // Reference: one aggregate, devices recorded in order.
  LongitudinalStats reference(kDays);
  for (int d = 0; d < kDays; ++d) {
    for (const DeviceOutcome& o : by_day[static_cast<std::size_t>(d)]) {
      reference.record_device_day(d + 1, o);
    }
  }
  const std::string expected = reference.serialize();

  // Partition devices into uneven shards, record shards independently, merge
  // in reversed order: must be byte-identical.
  const int splits[] = {0, 7, 50, 128, 301, kDevices};
  std::vector<LongitudinalStats> shards;
  for (std::size_t s = 0; s + 1 < std::size(splits); ++s) {
    LongitudinalStats shard(kDays);
    for (int d = 0; d < kDays; ++d) {
      for (int i = splits[s]; i < splits[s + 1]; ++i) {
        shard.record_device_day(d + 1,
                                by_day[static_cast<std::size_t>(d)]
                                      [static_cast<std::size_t>(i)]);
      }
    }
    shards.push_back(std::move(shard));
  }
  LongitudinalStats merged(kDays);
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) merged.merge(*it);
  EXPECT_EQ(expected, merged.serialize());

  // Merging into an empty shell adopts the shape.
  LongitudinalStats shell;
  for (const LongitudinalStats& shard : shards) shell.merge(shard);
  EXPECT_EQ(expected, shell.serialize());
}

TEST(LongitudinalStats, CountersAccumulateExactly) {
  LongitudinalStats stats(2, 8);
  DeviceOutcome o;
  o.profile = WearerProfile::kAthlete;
  o.detections_attempted = 10;
  o.detections_completed = 7;
  o.detections_skipped = 3;
  o.harvested_j = 1.5;
  o.consumed_j = 0.25;
  o.final_soc = 0.5;
  o.self_sustaining = true;
  stats.record_device_day(1, o);
  o.self_sustaining = false;
  stats.record_device_day(1, o);

  const auto c = stats.day_counters(1);
  EXPECT_EQ(c.devices, 2u);
  EXPECT_EQ(c.self_sustaining, 1u);
  EXPECT_EQ(c.detections_attempted, 20u);
  EXPECT_EQ(c.detections_completed, 14u);
  EXPECT_EQ(c.harvested_qj, 2 * LongitudinalStats::quantize_j(1.5));
  EXPECT_DOUBLE_EQ(LongitudinalStats::dequantize_j(c.harvested_qj), 3.0);
  EXPECT_DOUBLE_EQ(stats.fraction_self_sustaining(1), 0.5);
  EXPECT_EQ(stats.day_counters(2).devices, 0u);
  EXPECT_EQ(stats.day_counters(1, WearerProfile::kAthlete).devices, 2u);
  EXPECT_EQ(stats.day_counters(1, WearerProfile::kHomebody).devices, 0u);
}

TEST(LongitudinalStats, QuantilesReadTheHistogram) {
  LongitudinalStats stats(1, 10);  // bins of width 0.1, midpoints 0.05..0.95
  DeviceOutcome o;
  o.profile = WearerProfile::kOfficeWorker;
  // 200 devices at SoC ~0.15, 50 at ~0.95: p50 sits in the low bin, p99
  // (rank 246 of 250) in the top one.
  for (int i = 0; i < 200; ++i) {
    o.final_soc = 0.12;
    stats.record_device_day(1, o);
  }
  for (int i = 0; i < 50; ++i) {
    o.final_soc = 0.97;
    stats.record_device_day(1, o);
  }
  EXPECT_DOUBLE_EQ(stats.soc_quantile(1, 0.5), 0.15);
  EXPECT_DOUBLE_EQ(stats.soc_quantile(1, 0.99), 0.95);
  EXPECT_DOUBLE_EQ(stats.soc_quantile(1, 0.0), 0.15);
  EXPECT_DOUBLE_EQ(stats.soc_quantile(1, 1.0), 0.95);
  // Per-archetype view of an archetype with no devices: defined zero.
  EXPECT_DOUBLE_EQ(stats.soc_quantile(1, 0.5, WearerProfile::kHomebody), 0.0);
}

TEST(LongitudinalStats, EdgeSocsLandInEdgeBins) {
  LongitudinalStats stats(1, 4);
  DeviceOutcome o;
  o.profile = WearerProfile::kHomebody;
  // Carry-over SoC can sit an ulp outside [0, 1]; both belong in edge bins.
  for (double soc : {-1e-12, 0.0, 1.0, 1.0 + 1e-12}) {
    o.final_soc = soc;
    stats.record_device_day(1, o);
  }
  EXPECT_DOUBLE_EQ(stats.soc_quantile(1, 0.0), 0.125);   // bin 0 midpoint
  EXPECT_DOUBLE_EQ(stats.soc_quantile(1, 1.0), 0.875);   // top bin midpoint
}

TEST(LongitudinalStats, BinarySaveLoadRoundTripsBytes) {
  Rng rng(99);
  LongitudinalStats stats(3, 16);
  for (int d = 1; d <= 3; ++d) {
    for (int i = 0; i < 50; ++i) {
      stats.record_device_day(d, outcome_for(rng, static_cast<std::uint64_t>(i)));
    }
  }
  ByteWriter w;
  stats.save(w);
  ByteReader r(w.data());
  const LongitudinalStats loaded = LongitudinalStats::load(r);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(stats.serialize(), loaded.serialize());
  // And the reserialized bytes match too (save is a pure function of state).
  ByteWriter w2;
  loaded.save(w2);
  EXPECT_EQ(w.data(), w2.data());
}

TEST(LongitudinalStats, SaveSizeDependsOnlyOnShape) {
  Rng rng(7);
  LongitudinalStats empty(4, 32);
  LongitudinalStats full(4, 32);
  for (int d = 1; d <= 4; ++d) {
    for (int i = 0; i < 30; ++i) {
      full.record_device_day(d, outcome_for(rng, static_cast<std::uint64_t>(i)));
    }
  }
  ByteWriter we, wf;
  empty.save(we);
  full.save(wf);
  EXPECT_EQ(we.size(), wf.size());
}

TEST(LongitudinalStats, MergeRejectsShapeMismatch) {
  LongitudinalStats a(2, 8);
  LongitudinalStats b(3, 8);
  LongitudinalStats c(2, 16);
  EXPECT_THROW(a.merge(b), Error);
  EXPECT_THROW(a.merge(c), Error);
}

TEST(LongitudinalStats, LoadRejectsCorruptHeader) {
  LongitudinalStats stats(1, 4);
  ByteWriter w;
  stats.save(w);
  std::vector<std::uint8_t> bytes = w.data();
  bytes[0] ^= 0xFF;  // break the magic
  ByteReader r(bytes);
  EXPECT_THROW(LongitudinalStats::load(r), Error);
  // Truncated body.
  std::vector<std::uint8_t> cut(w.data().begin(), w.data().end() - 5);
  ByteReader rc(cut);
  EXPECT_THROW(LongitudinalStats::load(rc), Error);
}

}  // namespace
}  // namespace iw::fleet
