#include "fleet/fleet_stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace iw::fleet {
namespace {

DeviceOutcome outcome(std::uint64_t id, double final_soc, bool sustaining,
                      std::uint64_t completed = 100) {
  DeviceOutcome d;
  d.device_id = id;
  d.profile = static_cast<WearerProfile>(id % kNumWearerProfiles);
  d.policy = static_cast<PolicyKind>(id % kNumPolicyKinds);
  d.days_run = 1;
  d.detections_attempted = completed + 5;
  d.detections_completed = completed;
  d.detections_skipped = 5;
  d.harvested_j = 20.0 + static_cast<double>(id);
  d.consumed_j = 18.0;
  d.initial_soc = 0.5;
  d.final_soc = final_soc;
  d.min_soc = final_soc / 2.0;
  d.detections_per_min = static_cast<double>(completed) / 1440.0;
  d.mean_intake_w = d.harvested_j / 86400.0;
  d.self_sustaining = sustaining;
  d.class_counts = {completed / 2, completed / 4, completed / 4};
  d.classified = completed;
  return d;
}

TEST(FleetStats, EmptySummaryIsZero) {
  FleetStats stats;
  const FleetStats::Summary s = stats.summarize();
  EXPECT_EQ(s.devices, 0u);
  EXPECT_EQ(s.detections_completed, 0u);
  EXPECT_DOUBLE_EQ(s.fraction_self_sustaining, 0.0);
  EXPECT_DOUBLE_EQ(s.final_soc.p50, 0.0);
}

TEST(FleetStats, AggregatesTotalsAndFractions) {
  FleetStats stats;
  stats.add(outcome(0, 0.8, true));
  stats.add(outcome(1, 0.4, false));
  stats.add(outcome(2, 0.6, true));
  stats.add(outcome(3, 0.2, false));

  const FleetStats::Summary s = stats.summarize();
  EXPECT_EQ(s.devices, 4u);
  EXPECT_EQ(s.detections_completed, 400u);
  EXPECT_EQ(s.detections_skipped, 20u);
  EXPECT_DOUBLE_EQ(s.fraction_self_sustaining, 0.5);
  EXPECT_DOUBLE_EQ(s.final_soc.p50, 0.5);  // median of .2 .4 .6 .8
  EXPECT_EQ(s.class_counts[0], 200u);
  EXPECT_EQ(s.classified, 400u);
  // Profile histogram covers ids 0..3.
  EXPECT_EQ(s.per_profile[0], 1u);
  EXPECT_EQ(s.per_profile[3], 1u);
}

TEST(FleetStats, MergeMatchesSequentialAdds) {
  std::vector<DeviceOutcome> all;
  for (std::uint64_t id = 0; id < 12; ++id) {
    all.push_back(outcome(id, 0.1 + 0.05 * static_cast<double>(id), id % 3 == 0));
  }

  FleetStats sequential;
  for (const DeviceOutcome& d : all) sequential.add(d);

  FleetStats shard_a, shard_b, shard_c;
  for (std::uint64_t id = 0; id < 4; ++id) shard_a.add(all[id]);
  for (std::uint64_t id = 4; id < 9; ++id) shard_b.add(all[id]);
  for (std::uint64_t id = 9; id < 12; ++id) shard_c.add(all[id]);

  FleetStats merged;
  merged.merge(shard_a);
  merged.merge(shard_b);
  merged.merge(shard_c);

  EXPECT_EQ(merged.device_count(), sequential.device_count());
  EXPECT_EQ(merged.serialize(), sequential.serialize());
}

TEST(FleetStats, SerializeIsInsertionOrderInvariant) {
  // Shards may receive devices in any order; the canonical form may not care.
  FleetStats forward, backward;
  for (std::uint64_t id = 0; id < 8; ++id) {
    forward.add(outcome(id, 0.3 + 0.05 * static_cast<double>(id), false));
  }
  for (std::uint64_t id = 8; id-- > 0;) {
    backward.add(outcome(id, 0.3 + 0.05 * static_cast<double>(id), false));
  }
  EXPECT_EQ(forward.serialize(), backward.serialize());
}

TEST(FleetStats, OutcomeTableIsSortedByDeviceId) {
  FleetStats stats;
  stats.add(outcome(5, 0.5, false));
  stats.add(outcome(1, 0.5, false));
  stats.add(outcome(3, 0.5, false));
  const std::vector<DeviceOutcome> table = stats.outcome_table();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0].device_id, 1u);
  EXPECT_EQ(table[1].device_id, 3u);
  EXPECT_EQ(table[2].device_id, 5u);
}

TEST(FleetStats, PercentilesInterpolate) {
  FleetStats stats;
  for (std::uint64_t id = 0; id < 5; ++id) {
    stats.add(outcome(id, 0.1 * static_cast<double>(id + 1), false));
  }
  const FleetStats::Summary s = stats.summarize();
  // Values .1 .2 .3 .4 .5: p50 = .3, p25 = .2, p75 = .4.
  EXPECT_NEAR(s.final_soc.p50, 0.3, 1e-12);
  EXPECT_NEAR(s.final_soc.p25, 0.2, 1e-12);
  EXPECT_NEAR(s.final_soc.p75, 0.4, 1e-12);
  EXPECT_NEAR(s.final_soc.p5, 0.12, 1e-12);
  EXPECT_NEAR(s.final_soc.p95, 0.48, 1e-12);
}

}  // namespace
}  // namespace iw::fleet
