#include "fleet/fleet_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace iw::fleet {
namespace {

DeviceOutcome outcome(std::uint64_t id, double final_soc, bool sustaining,
                      std::uint64_t completed = 100) {
  DeviceOutcome d;
  d.device_id = id;
  d.profile = static_cast<WearerProfile>(id % kNumWearerProfiles);
  d.policy = static_cast<PolicyKind>(id % kNumPolicyKinds);
  d.days_run = 1;
  d.detections_attempted = completed + 5;
  d.detections_completed = completed;
  d.detections_skipped = 5;
  d.harvested_j = 20.0 + static_cast<double>(id);
  d.consumed_j = 18.0;
  d.initial_soc = 0.5;
  d.final_soc = final_soc;
  d.min_soc = final_soc / 2.0;
  d.detections_per_min = static_cast<double>(completed) / 1440.0;
  d.mean_intake_w = d.harvested_j / 86400.0;
  d.self_sustaining = sustaining;
  d.class_counts = {completed / 2, completed / 4, completed / 4};
  d.classified = completed;
  return d;
}

TEST(FleetStats, EmptySummaryIsZero) {
  FleetStats stats;
  const FleetStats::Summary s = stats.summarize();
  EXPECT_EQ(s.devices, 0u);
  EXPECT_EQ(s.detections_completed, 0u);
  EXPECT_DOUBLE_EQ(s.fraction_self_sustaining, 0.0);
  EXPECT_DOUBLE_EQ(s.final_soc.p50, 0.0);
}

TEST(FleetStats, AggregatesTotalsAndFractions) {
  FleetStats stats;
  stats.add(outcome(0, 0.8, true));
  stats.add(outcome(1, 0.4, false));
  stats.add(outcome(2, 0.6, true));
  stats.add(outcome(3, 0.2, false));

  const FleetStats::Summary s = stats.summarize();
  EXPECT_EQ(s.devices, 4u);
  EXPECT_EQ(s.detections_completed, 400u);
  EXPECT_EQ(s.detections_skipped, 20u);
  EXPECT_DOUBLE_EQ(s.fraction_self_sustaining, 0.5);
  EXPECT_DOUBLE_EQ(s.final_soc.p50, 0.5);  // median of .2 .4 .6 .8
  EXPECT_EQ(s.class_counts[0], 200u);
  EXPECT_EQ(s.classified, 400u);
  // Profile histogram covers ids 0..3.
  EXPECT_EQ(s.per_profile[0], 1u);
  EXPECT_EQ(s.per_profile[3], 1u);
}

TEST(FleetStats, MergeMatchesSequentialAdds) {
  std::vector<DeviceOutcome> all;
  for (std::uint64_t id = 0; id < 12; ++id) {
    all.push_back(outcome(id, 0.1 + 0.05 * static_cast<double>(id), id % 3 == 0));
  }

  FleetStats sequential;
  for (const DeviceOutcome& d : all) sequential.add(d);

  FleetStats shard_a, shard_b, shard_c;
  for (std::uint64_t id = 0; id < 4; ++id) shard_a.add(all[id]);
  for (std::uint64_t id = 4; id < 9; ++id) shard_b.add(all[id]);
  for (std::uint64_t id = 9; id < 12; ++id) shard_c.add(all[id]);

  FleetStats merged;
  merged.merge(shard_a);
  merged.merge(shard_b);
  merged.merge(shard_c);

  EXPECT_EQ(merged.device_count(), sequential.device_count());
  EXPECT_EQ(merged.serialize(), sequential.serialize());
}

TEST(FleetStats, SerializeIsInsertionOrderInvariant) {
  // Shards may receive devices in any order; the canonical form may not care.
  FleetStats forward, backward;
  for (std::uint64_t id = 0; id < 8; ++id) {
    forward.add(outcome(id, 0.3 + 0.05 * static_cast<double>(id), false));
  }
  for (std::uint64_t id = 8; id-- > 0;) {
    backward.add(outcome(id, 0.3 + 0.05 * static_cast<double>(id), false));
  }
  EXPECT_EQ(forward.serialize(), backward.serialize());
}

TEST(FleetStats, OutcomeTableIsSortedByDeviceId) {
  FleetStats stats;
  stats.add(outcome(5, 0.5, false));
  stats.add(outcome(1, 0.5, false));
  stats.add(outcome(3, 0.5, false));
  const std::vector<DeviceOutcome> table = stats.outcome_table();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table[0].device_id, 1u);
  EXPECT_EQ(table[1].device_id, 3u);
  EXPECT_EQ(table[2].device_id, 5u);
}

TEST(FleetStats, PercentilesInterpolate) {
  FleetStats stats;
  for (std::uint64_t id = 0; id < 5; ++id) {
    stats.add(outcome(id, 0.1 * static_cast<double>(id + 1), false));
  }
  const FleetStats::Summary s = stats.summarize();
  // Values .1 .2 .3 .4 .5: p50 = .3, p25 = .2, p75 = .4.
  EXPECT_NEAR(s.final_soc.p50, 0.3, 1e-12);
  EXPECT_NEAR(s.final_soc.p25, 0.2, 1e-12);
  EXPECT_NEAR(s.final_soc.p75, 0.4, 1e-12);
  EXPECT_NEAR(s.final_soc.p5, 0.12, 1e-12);
  EXPECT_NEAR(s.final_soc.p95, 0.48, 1e-12);
}

void expect_finite(const FleetStats::Percentiles& p) {
  EXPECT_TRUE(std::isfinite(p.p5));
  EXPECT_TRUE(std::isfinite(p.p25));
  EXPECT_TRUE(std::isfinite(p.p50));
  EXPECT_TRUE(std::isfinite(p.p75));
  EXPECT_TRUE(std::isfinite(p.p95));
}

TEST(FleetStats, EmptyFleetPercentilesAreNaNFree) {
  // An empty fleet (and empty shards merged into it) must not divide by a
  // zero device count anywhere: every percentile stays a finite zero.
  FleetStats stats;
  FleetStats empty_shard;
  stats.merge(empty_shard);
  stats.merge(FleetStats{});
  const FleetStats::Summary s = stats.summarize();
  EXPECT_EQ(s.devices, 0u);
  EXPECT_DOUBLE_EQ(s.fraction_self_sustaining, 0.0);
  expect_finite(s.final_soc);
  expect_finite(s.min_soc);
  expect_finite(s.detections_per_min);
  expect_finite(s.intake_uw);
  EXPECT_FALSE(stats.serialize().empty());
}

TEST(FleetStats, SingleDeviceCollapsesPercentiles) {
  // With one device every percentile of every metric is that device's value
  // (interpolation over a single sample must not index out of range).
  FleetStats stats;
  stats.add(outcome(7, 0.65, true, 50));
  const FleetStats::Summary s = stats.summarize();
  EXPECT_EQ(s.devices, 1u);
  EXPECT_DOUBLE_EQ(s.fraction_self_sustaining, 1.0);
  EXPECT_DOUBLE_EQ(s.final_soc.p5, 0.65);
  EXPECT_DOUBLE_EQ(s.final_soc.p50, 0.65);
  EXPECT_DOUBLE_EQ(s.final_soc.p95, 0.65);
  EXPECT_DOUBLE_EQ(s.min_soc.p25, 0.325);
  EXPECT_DOUBLE_EQ(s.min_soc.p75, 0.325);
  expect_finite(s.detections_per_min);
  expect_finite(s.intake_uw);
}

TEST(FleetStats, PercentilesNaNFreeUnderMergeOrderPermutations) {
  // Three shards (one of them empty) merged in every order: the summary must
  // be NaN-free and bit-identical regardless of merge order, because all
  // derived values come from the id-sorted outcome table.
  std::vector<DeviceOutcome> all;
  for (std::uint64_t id = 0; id < 7; ++id) {
    all.push_back(outcome(id, 0.15 + 0.1 * static_cast<double>(id), id % 2 == 0,
                          10 + id));
  }
  FleetStats shards[3];
  for (std::uint64_t id = 0; id < 3; ++id) shards[0].add(all[id]);
  for (std::uint64_t id = 3; id < 7; ++id) shards[1].add(all[id]);
  // shards[2] stays empty.

  std::array<int, 3> order{0, 1, 2};
  std::string reference;
  do {
    FleetStats merged;
    for (const int shard : order) merged.merge(shards[shard]);
    const FleetStats::Summary s = merged.summarize();
    EXPECT_EQ(s.devices, all.size());
    expect_finite(s.final_soc);
    expect_finite(s.min_soc);
    expect_finite(s.detections_per_min);
    expect_finite(s.intake_uw);
    const std::string serialized = merged.serialize();
    if (reference.empty()) {
      reference = serialized;
    } else {
      EXPECT_EQ(serialized, reference);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(FleetStats, RecordOutcomesOffMatchesCountersExactly) {
  // Retention off: counters must agree exactly with the table-derived
  // summary on every non-percentile field (integer totals and the
  // self-sustaining fraction are order-independent here; the double energy
  // sums accumulate in the same add order in both modes).
  FleetStats with_rows;
  FleetStats counters_only;
  counters_only.set_record_outcomes(false);
  for (std::uint64_t id = 0; id < 24; ++id) {
    const DeviceOutcome o = outcome(id, 0.1 + 0.03 * static_cast<double>(id),
                                    id % 3 != 0, 10 * id);
    with_rows.add(o);
    counters_only.add(o);
  }
  EXPECT_EQ(counters_only.device_count(), 24u);
  const FleetStats::Summary a = with_rows.summarize();
  const FleetStats::Summary b = counters_only.summarize();
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.detections_attempted, b.detections_attempted);
  EXPECT_EQ(a.detections_completed, b.detections_completed);
  EXPECT_EQ(a.detections_skipped, b.detections_skipped);
  EXPECT_EQ(a.classified, b.classified);
  EXPECT_EQ(a.class_counts, b.class_counts);
  EXPECT_EQ(a.per_profile, b.per_profile);
  EXPECT_EQ(a.per_policy, b.per_policy);
  EXPECT_DOUBLE_EQ(a.fraction_self_sustaining, b.fraction_self_sustaining);
  // Row-only outputs are flagged, not silently wrong.
  EXPECT_DOUBLE_EQ(b.final_soc.p50, 0.0);
  EXPECT_THROW(counters_only.outcome_table(), Error);
}

TEST(FleetStats, RecordOutcomesOnIsByteIdenticalToDefault) {
  FleetStats plain;
  FleetStats explicit_on;
  explicit_on.set_record_outcomes(true);
  for (std::uint64_t id = 0; id < 12; ++id) {
    plain.add(outcome(id, 0.5, true));
    explicit_on.add(outcome(id, 0.5, true));
  }
  EXPECT_EQ(plain.serialize(), explicit_on.serialize());
}

TEST(FleetStats, RecordOutcomesOffSerializesSummaryLineOnly) {
  FleetStats stats;
  stats.set_record_outcomes(false);
  stats.add(outcome(3, 0.7, true));
  const std::string s = stats.serialize();
  EXPECT_NE(s.find("fleet devices=1"), std::string::npos);
  EXPECT_EQ(s.find("dev 3"), std::string::npos);
}

TEST(FleetStats, RecordOutcomesModeGuards) {
  FleetStats stats;
  stats.add(outcome(0, 0.5, true));
  EXPECT_THROW(stats.set_record_outcomes(false), Error);  // too late

  FleetStats retaining;
  FleetStats row_free;
  row_free.set_record_outcomes(false);
  row_free.add(outcome(1, 0.5, true));
  EXPECT_THROW(retaining.merge(row_free), Error);  // rows are gone

  // The other direction is fine: a row-free aggregate folds a retaining
  // shard's counters and drops its rows.
  FleetStats sink;
  sink.set_record_outcomes(false);
  FleetStats shard;
  shard.add(outcome(2, 0.5, false));
  sink.merge(shard);
  sink.merge(row_free);
  EXPECT_EQ(sink.device_count(), 2u);
}

}  // namespace
}  // namespace iw::fleet
