// FleetConfig::cohort_day must be invisible in the results: the aggregate
// FleetStats serialization (summary + full per-device outcome table, every
// double printed exactly) has to be byte-identical between the cohort path,
// the per-device scalar fast path, and the discrete-event engine path — at
// any thread count, any chunk (= cohort) size, across multi-day runs with
// battery carry-over, and with the shared classification app batched across
// devices, per device, or absent.
#include <gtest/gtest.h>

#include <string>

#include "fleet/fleet_engine.hpp"

namespace iw::fleet {
namespace {

FleetConfig mixed_fleet(int threads, bool cohort_day, bool fast_day = true) {
  FleetConfig config;
  config.num_devices = 48;  // covers all archetypes, policies and duty cycles
  config.fleet_seed = 2020;
  config.days = 2;
  config.threads = threads;
  config.chunk_size = 4;
  config.fast_day = fast_day;
  config.cohort_day = cohort_day;
  return config;
}

core::StressDetectionApp tiny_app() {
  // Same deliberately tiny app as the other fleet suites: the point is the
  // classification plumbing, not model quality.
  core::AppConfig app_config;
  app_config.dataset.subjects = 2;
  app_config.dataset.minutes_per_level = 2.0;
  app_config.training.max_epochs = 40;
  return core::StressDetectionApp::build(app_config);
}

TEST(FleetCohort, ByteIdenticalToScalarPathsAcrossThreadCounts) {
  const std::string engine_path =
      FleetEngine(mixed_fleet(1, false, /*fast_day=*/false)).run().stats.serialize();
  const std::string fast_path =
      FleetEngine(mixed_fleet(1, false)).run().stats.serialize();
  EXPECT_EQ(engine_path, fast_path);
  for (int threads : {1, 2, 8}) {
    EXPECT_EQ(engine_path,
              FleetEngine(mixed_fleet(threads, true)).run().stats.serialize())
        << "cohort path diverged at " << threads << " threads";
  }
}

TEST(FleetCohort, ByteIdenticalAcrossCohortSizes) {
  // Chunk size is cohort size: a device's bits must not depend on who shares
  // its cohort — including cohorts that split archetypes unevenly (5, 48) or
  // degenerate to one device (1).
  const std::string reference =
      FleetEngine(mixed_fleet(1, false)).run().stats.serialize();
  for (std::size_t cohort : {std::size_t{1}, std::size_t{5}, std::size_t{16},
                             std::size_t{48}}) {
    FleetConfig config = mixed_fleet(2, true);
    config.chunk_size = cohort;
    EXPECT_EQ(reference, FleetEngine(config).run().stats.serialize())
        << "cohort size " << cohort;
  }
}

TEST(FleetCohort, MultiDayBatteryCarryOver) {
  // Day d+1 starts from day d's final SoC per device; seven days compound any
  // divergence in the carried state or the per-day RNG draw order.
  FleetConfig cohort = mixed_fleet(2, true);
  cohort.num_devices = 12;
  cohort.days = 7;
  FleetConfig scalar = cohort;
  scalar.cohort_day = false;
  EXPECT_EQ(FleetEngine(scalar).run().stats.serialize(),
            FleetEngine(cohort).run().stats.serialize());
}

TEST(FleetCohort, ByteIdenticalWithSharedAppBatchedAndPerSample) {
  // Cross-device batched inference, per-sample inference, and the per-device
  // loop must all agree — the cohort stages every device's windows for a day
  // into one batch, which must not change any label or any later RNG draw.
  const core::StressDetectionApp app = tiny_app();
  FleetConfig base = mixed_fleet(2, true);
  base.num_devices = 16;
  base.days = 2;
  base.app = &app;

  FleetConfig scalar = base;
  scalar.cohort_day = false;
  const std::string reference = FleetEngine(scalar).run().stats.serialize();

  const FleetResult batched = FleetEngine(base).run();
  EXPECT_EQ(reference, batched.stats.serialize());
  EXPECT_GT(batched.stats.summarize().classified, 0u);

  FleetConfig per_sample = base;
  per_sample.batched_classification = false;
  EXPECT_EQ(reference, FleetEngine(per_sample).run().stats.serialize());
}

TEST(FleetCohort, FastDayOffStillSelectsEngineOracle) {
  // cohort_day only applies on top of the fast path; fast_day=false must keep
  // selecting the engine path so existing oracle comparisons stay meaningful.
  FleetConfig config = mixed_fleet(1, true, /*fast_day=*/false);
  config.num_devices = 4;
  config.days = 1;
  const std::string engine_path = FleetEngine(config).run().stats.serialize();
  config.cohort_day = false;
  EXPECT_EQ(engine_path, FleetEngine(config).run().stats.serialize());
}

}  // namespace
}  // namespace iw::fleet
