#include "fleet/device_instance.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iw::fleet {
namespace {

Scenario quiet_scenario(std::uint64_t id = 0) {
  Scenario s = sample_scenario(7, id);
  s.days = 1;
  return s;
}

TEST(DeviceInstance, RunsOneDayAndReportsSaneOutcome) {
  DeviceInstance device(quiet_scenario());
  device.run();
  EXPECT_TRUE(device.done());
  const DeviceOutcome& out = device.outcome();
  EXPECT_EQ(out.days_run, 1);
  EXPECT_GT(out.detections_attempted, 0u);
  EXPECT_EQ(out.detections_attempted,
            out.detections_completed + out.detections_skipped);
  EXPECT_GE(out.harvested_j, 0.0);
  EXPECT_GT(out.consumed_j, 0.0);
  EXPECT_GE(out.final_soc, 0.0);
  EXPECT_LE(out.final_soc, 1.0);
  EXPECT_LE(out.min_soc, out.final_soc + 1e-12);
  EXPECT_GE(out.detections_per_min, 0.0);
  EXPECT_EQ(out.classified, 0u);  // no app attached
}

TEST(DeviceInstance, StepInterfaceCarriesBatteryAcrossDays) {
  Scenario s = quiet_scenario(3);
  s.days = 3;
  DeviceInstance device(s);
  int steps = 0;
  double prev_final = s.initial_soc;
  while (true) {
    const bool more = device.step_day();
    ++steps;
    // Each day starts where the previous one ended, so the cumulative min
    // cannot exceed the previous final by more than one harvest tick's charge.
    EXPECT_LE(device.outcome().min_soc, prev_final + 0.01);
    prev_final = device.outcome().final_soc;
    if (!more) break;
  }
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(device.outcome().days_run, 3);
  EXPECT_FALSE(device.step_day());  // further stepping is a no-op
  EXPECT_EQ(device.outcome().days_run, 3);
}

TEST(DeviceInstance, SameScenarioReproducesExactly) {
  Scenario s = quiet_scenario(11);
  s.days = 2;
  DeviceInstance a(s);
  DeviceInstance b(s);
  a.run();
  b.run();
  EXPECT_EQ(a.outcome().detections_completed, b.outcome().detections_completed);
  EXPECT_EQ(a.outcome().detections_skipped, b.outcome().detections_skipped);
  EXPECT_EQ(a.outcome().final_soc, b.outcome().final_soc);  // bit-exact
  EXPECT_EQ(a.outcome().min_soc, b.outcome().min_soc);
  EXPECT_EQ(a.outcome().harvested_j, b.outcome().harvested_j);
}

TEST(DeviceInstance, DistinctDevicesDiverge) {
  DeviceInstance a(quiet_scenario(1));
  DeviceInstance b(quiet_scenario(2));
  a.run();
  b.run();
  // Different wearers should not produce identical energy trajectories.
  EXPECT_NE(a.outcome().harvested_j, b.outcome().harvested_j);
}

TEST(DeviceInstance, RejectsZeroDayScenario) {
  Scenario s = quiet_scenario();
  s.days = 0;
  EXPECT_THROW(DeviceInstance{s}, Error);
}

}  // namespace
}  // namespace iw::fleet
