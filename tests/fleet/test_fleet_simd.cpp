// Fleet-level SIMD tier parity (DESIGN.md §15): a FleetEngine run must
// serialize to the same bytes at every dispatch tier and every thread count —
// the SIMD kernels sit inside the cohort day kernel and the batched
// classifier, both of which carry a bit-exactness contract, so the full
// FleetStats (per-device outcome rows included) is the sharpest observable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/simd.hpp"
#include "core/app.hpp"
#include "fleet/fleet_engine.hpp"

namespace iw::fleet {
namespace {

std::vector<simd::Tier> all_tiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kOff};
  for (simd::Tier t :
       {simd::Tier::kArray, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::tier_usable(t)) tiers.push_back(t);
  }
  return tiers;
}

struct TierGuard {
  ~TierGuard() { simd::clear_override(); }
};

TEST(FleetSimd, StatsByteIdenticalAcrossTiersAndThreads) {
  FleetConfig config;
  config.num_devices = 96;
  config.fleet_seed = 2020;
  config.days = 2;
  // Small chunks force several cohorts per run, including mixed-policy packs
  // at cohort boundaries.
  config.chunk_size = 32;

  TierGuard guard;
  simd::override_tier(simd::Tier::kOff);
  config.threads = 1;
  const std::string reference = FleetEngine(config).run().stats.serialize();
  for (const int threads : {1, 2, 8}) {
    config.threads = threads;
    for (const simd::Tier tier : all_tiers()) {
      simd::override_tier(tier);
      const std::string got = FleetEngine(config).run().stats.serialize();
      EXPECT_EQ(reference, got)
          << "threads " << threads << " tier " << simd::tier_name(tier);
    }
  }
}

TEST(FleetSimd, TiersAgreeWithSharedAppClassification) {
  // With a shared app the cohort day kernel feeds the batched Fixed16
  // classifier, so this run crosses both SIMD dispatch points.
  core::AppConfig app_config;
  app_config.dataset.subjects = 2;
  app_config.dataset.minutes_per_level = 2.0;
  app_config.training.max_epochs = 40;
  const core::StressDetectionApp app =
      core::StressDetectionApp::build(app_config);

  FleetConfig config;
  config.num_devices = 48;
  config.fleet_seed = 2020;
  config.days = 1;
  config.chunk_size = 16;
  config.threads = 1;
  config.app = &app;

  TierGuard guard;
  simd::override_tier(simd::Tier::kOff);
  const std::string reference = FleetEngine(config).run().stats.serialize();
  for (const simd::Tier tier : all_tiers()) {
    simd::override_tier(tier);
    const std::string got = FleetEngine(config).run().stats.serialize();
    EXPECT_EQ(reference, got) << "tier " << simd::tier_name(tier);
  }
}

}  // namespace
}  // namespace iw::fleet
