// Differential fuzz for the superblock trace engine: structured random
// programs (counted loops around random ALU/memory/branch bodies, plus
// RI5CY hardware loops) run twice on a Machine — traces on and traces off —
// and the full observable state must match bit for bit: cycles, instruction
// counts, penalty counters, every x register, the data region, the final pc
// and the per-opcode retire histogram. Loops are hot enough that the trace
// path genuinely engages (asserted in aggregate per profile).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "asmx/assembler.hpp"
#include "common/rng.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/machine.hpp"
#include "rvsim/profile_stats.hpp"
#include "rvsim/trace.hpp"

namespace iw::rv {
namespace {

constexpr std::uint32_t kDataBase = 0x8000;
constexpr std::uint32_t kDataWords = 64;

/// Scratch registers the random bodies may read/write freely.
const char* const kScratch[] = {"t0", "t1", "t2", "t3", "t4",
                                "a0", "a1", "a2", "a3", "a4"};
constexpr int kNumScratch = 10;

const char* pick_reg(Rng& rng) {
  return kScratch[rng.uniform_int(kNumScratch)];
}

/// One random body instruction. `mem` allows loads/stores (off inside
/// hardware loops, whose bodies the analyzer wants branch- and simple).
void emit_op(std::ostringstream& os, Rng& rng, bool mem) {
  const char* rd = pick_reg(rng);
  const char* rs1 = pick_reg(rng);
  const char* rs2 = pick_reg(rng);
  switch (rng.uniform_int(mem ? 14 : 10)) {
    case 0: os << "  add " << rd << ", " << rs1 << ", " << rs2 << "\n"; break;
    case 1: os << "  sub " << rd << ", " << rs1 << ", " << rs2 << "\n"; break;
    case 2: os << "  xor " << rd << ", " << rs1 << ", " << rs2 << "\n"; break;
    case 3: os << "  and " << rd << ", " << rs1 << ", " << rs2 << "\n"; break;
    case 4: os << "  or " << rd << ", " << rs1 << ", " << rs2 << "\n"; break;
    case 5: os << "  mul " << rd << ", " << rs1 << ", " << rs2 << "\n"; break;
    case 6:
      os << "  slli " << rd << ", " << rs1 << ", " << rng.uniform_int(31) << "\n";
      break;
    case 7:
      os << "  srai " << rd << ", " << rs1 << ", " << rng.uniform_int(31) << "\n";
      break;
    case 8:
      os << "  addi " << rd << ", " << rs1 << ", "
         << static_cast<int>(rng.uniform_int(2048)) - 1024 << "\n";
      break;
    case 9: os << "  sltu " << rd << ", " << rs1 << ", " << rs2 << "\n"; break;
    case 10:
      os << "  lw " << rd << ", " << 4 * rng.uniform_int(kDataWords) << "(s2)\n";
      break;
    case 11:
      os << "  sw " << rs1 << ", " << 4 * rng.uniform_int(kDataWords) << "(s2)\n";
      break;
    case 12:
      os << "  lbu " << rd << ", " << rng.uniform_int(4 * kDataWords) << "(s2)\n";
      break;
    case 13:
      os << "  sh " << rs1 << ", " << 2 * rng.uniform_int(2 * kDataWords)
         << "(s2)\n";
      break;
  }
}

/// A counted loop (or, when allowed, a hardware loop) hot enough to compile.
void emit_loop(std::ostringstream& os, Rng& rng, int index, bool hwloops) {
  const int trip = 16 + static_cast<int>(rng.uniform_int(33));  // 16..48
  if (hwloops && rng.bernoulli(0.3)) {
    const int body = 2 + static_cast<int>(rng.uniform_int(4));
    os << "  lp.setupi 0, " << trip << ", Lhwend" << index << "\n";
    for (int i = 0; i < body; ++i) emit_op(os, rng, false);
    os << "Lhwend" << index << ":\n";
    emit_op(os, rng, false);
    return;
  }
  os << "  li s1, " << trip << "\n";
  os << "Lloop" << index << ":\n";
  const int body = 2 + static_cast<int>(rng.uniform_int(7));
  for (int i = 0; i < body; ++i) {
    if (rng.bernoulli(0.2)) {
      // Forward skip over a short run: in-trace taken/untaken branches.
      os << "  " << (rng.bernoulli(0.5) ? "beq" : "bne") << " " << pick_reg(rng)
         << ", " << pick_reg(rng) << ", Lskip" << index << "_" << i << "\n";
      emit_op(os, rng, true);
      emit_op(os, rng, true);
      os << "Lskip" << index << "_" << i << ":\n";
    } else {
      emit_op(os, rng, true);
    }
  }
  os << "  addi s1, s1, -1\n";
  os << "  bne s1, zero, Lloop" << index << "\n";
}

std::string generate_program(Rng& rng, bool hwloops) {
  std::ostringstream os;
  os << "main:\n";
  os << "  li s2, " << kDataBase << "\n";
  for (int r = 0; r < kNumScratch; ++r) {
    os << "  li " << kScratch[r] << ", "
       << static_cast<std::int64_t>(rng.uniform_int(1u << 16)) - (1 << 15)
       << "\n";
  }
  const int loops = 1 + static_cast<int>(rng.uniform_int(3));
  for (int l = 0; l < loops; ++l) emit_loop(os, rng, l, hwloops);
  os << "  ecall\n";
  return os.str();
}

struct FullState {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t taken_branches = 0;
  std::uint64_t load_use_stalls = 0;
  std::uint32_t pc = 0;
  bool halted = false;
  std::array<std::uint32_t, 32> x{};
  std::vector<std::uint32_t> data;
  std::array<std::uint64_t, kOpCount> histogram{};
  std::uint64_t trace_instructions = 0;
};

FullState run_one(const asmx::Program& program, const TimingProfile& profile,
                  std::uint64_t data_seed, bool traces) {
  Machine machine(profile, 1u << 17);
  machine.set_trace_mode(traces);
  machine.load_program(std::span<const std::uint32_t>(program.words));
  Rng data_rng(data_seed);
  for (std::uint32_t w = 0; w < kDataWords; ++w) {
    machine.memory().store32(kDataBase + 4 * w,
                             static_cast<std::uint32_t>(data_rng()));
  }
  InstructionHistogram hist;
  machine.core().set_histogram(&hist);
  machine.run(program.symbol("main"), 2'000'000);

  FullState s;
  s.cycles = machine.core().cycles();
  s.instructions = machine.core().instructions();
  s.taken_branches = machine.core().taken_branches();
  s.load_use_stalls = machine.core().load_use_stalls();
  s.pc = machine.core().pc();
  s.halted = machine.core().halted();
  for (int r = 0; r < 32; ++r) s.x[static_cast<std::size_t>(r)] = machine.core().reg(r);
  for (std::uint32_t w = 0; w < kDataWords; ++w) {
    s.data.push_back(machine.memory().load32(kDataBase + 4 * w));
  }
  for (std::size_t op = 0; op < kOpCount; ++op) {
    s.histogram[op] = hist.count(static_cast<Op>(op));
  }
  s.trace_instructions = machine.core().trace_instructions();
  return s;
}

void expect_identical(const FullState& a, const FullState& b,
                      const std::string& context) {
  EXPECT_EQ(a.cycles, b.cycles) << context;
  EXPECT_EQ(a.instructions, b.instructions) << context;
  EXPECT_EQ(a.taken_branches, b.taken_branches) << context;
  EXPECT_EQ(a.load_use_stalls, b.load_use_stalls) << context;
  EXPECT_EQ(a.pc, b.pc) << context;
  EXPECT_EQ(a.halted, b.halted) << context;
  EXPECT_EQ(a.x, b.x) << context;
  EXPECT_EQ(a.data, b.data) << context;
  EXPECT_EQ(a.histogram, b.histogram) << context;
}

void fuzz_profile(const TimingProfile& profile, bool hwloops,
                  std::uint64_t seed_base) {
  analysis::install_load_verifier();
  std::uint64_t total_traced = 0;
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    Rng rng(seed);
    const std::string source = generate_program(rng, hwloops);
    asmx::Program program;
    ASSERT_NO_THROW(program = asmx::assemble(source))
        << "seed " << seed << "\n" << source;
    const std::string context =
        profile.name + " seed " + std::to_string(seed);
    FullState interp, traced;
    ASSERT_NO_THROW(interp = run_one(program, profile, seed, false)) << context;
    ASSERT_NO_THROW(traced = run_one(program, profile, seed, true)) << context;
    expect_identical(interp, traced, context);
    EXPECT_EQ(interp.trace_instructions, 0u) << context;
    total_traced += traced.trace_instructions;
  }
  // The fuzz is only meaningful if the trace path actually ran.
  EXPECT_GT(total_traced, 0u) << profile.name;
}

TEST(TraceFuzz, Ri5cy) { fuzz_profile(ri5cy(), true, 1000); }

TEST(TraceFuzz, CortexM4F) { fuzz_profile(cortex_m4f(), false, 2000); }

TEST(TraceFuzz, Ibex) { fuzz_profile(ibex(), false, 3000); }

}  // namespace
}  // namespace iw::rv
