// iw_rvsim_analysis: one test per diagnostic kind, CFG/cycle-bound
// properties, the reference-kernel matrix, and the Machine verify_on_load
// gate. The companion fuzz cross-check (analyzer verdict vs Core::step for
// random words) lives in test_decode_fuzz.cpp.
#include "rvsim/analysis/analysis.hpp"

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <string>

#include "asmx/assembler.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/feature_kernel.hpp"
#include "kernels/runner.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"
#include "rvsim/machine.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/timing.hpp"

namespace iw::rv::analysis {
namespace {

constexpr std::size_t kMem = 4096;

/// Assembles `src` at base 0 into a fresh image and analyzes it from `main`.
AnalysisReport analyze_asm(const std::string& src, const TimingProfile& profile,
                           const AnalyzeOptions& options = {}) {
  const asmx::Program p = asmx::assemble(src);
  Memory mem(kMem);
  mem.write_words(p.base, std::span<const std::uint32_t>(p.words));
  return analyze(mem, p.symbol("main"), profile, options);
}

const Diagnostic* find_diag(const AnalysisReport& r, DiagKind kind) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.kind == kind) return &d;
  }
  return nullptr;
}

bool has_error(const AnalysisReport& r, DiagKind kind) {
  const Diagnostic* d = find_diag(r, kind);
  return d != nullptr && d->severity == Severity::kError;
}

/// Runs the image on a Machine (no verify gate) and returns dynamic cycles.
std::uint64_t dynamic_cycles(const std::string& src, const TimingProfile& profile) {
  const asmx::Program p = asmx::assemble(src);
  Machine machine(profile, kMem);
  machine.load_program(std::span<const std::uint32_t>(p.words));
  return machine.run(p.symbol("main")).cycles;
}

// ---------------------------------------------------------------------------
// Clean programs.

TEST(Analysis, StraightLineProgramIsClean) {
  const std::string src = R"(
main:
    addi a0, zero, 3
    addi a1, zero, 4
    add  a2, a0, a1
    ecall
)";
  for (const TimingProfile& profile : {cortex_m4f(), ibex(), ri5cy()}) {
    const AnalysisReport r = analyze_asm(src, profile);
    EXPECT_TRUE(r.ok()) << profile.name << "\n" << r.to_text();
    EXPECT_EQ(r.words_analyzed, 4u) << profile.name;
    ASSERT_EQ(r.blocks.size(), 1u) << profile.name;
    EXPECT_TRUE(r.blocks[0].halts);
    const std::uint64_t dyn = dynamic_cycles(src, profile);
    EXPECT_GT(r.min_cycles, 0u);
    EXPECT_LE(r.min_cycles, dyn) << profile.name;
    EXPECT_NE(r.max_cycles, kUnboundedCycles) << profile.name;
    EXPECT_GE(r.max_cycles, dyn) << profile.name;
    EXPECT_EQ(r.stack_bytes, 0u) << profile.name;
  }
}

TEST(Analysis, BranchLoopBoundIsAtMostDynamic) {
  // 10-iteration countdown loop in plain RV32IM (valid on all profiles).
  const std::string src = R"(
main:
    addi t0, zero, 10
loop:
    addi t0, t0, -1
    bne  t0, zero, loop
    ecall
)";
  for (const TimingProfile& profile : {cortex_m4f(), ibex(), ri5cy()}) {
    const AnalysisReport r = analyze_asm(src, profile);
    EXPECT_TRUE(r.ok()) << profile.name << "\n" << r.to_text();
    // The floor must not charge the nine taken back edges: it is the
    // cheapest entry-to-halt path (one loop pass), so well below dynamic.
    // The ceiling recognizes the countdown pattern (`addi t0, t0, -1` is the
    // sole writer of the branch register, init proven 10) and charges all ten.
    const std::uint64_t dyn = dynamic_cycles(src, profile);
    EXPECT_GT(r.min_cycles, 0u);
    EXPECT_LE(r.min_cycles, dyn) << profile.name;
    EXPECT_NE(r.max_cycles, kUnboundedCycles) << profile.name;
    EXPECT_GE(r.max_cycles, dyn) << profile.name;
  }
}

TEST(Analysis, HwloopSurchargeCountsStaticIterations) {
  // lp.setupi with a static count of 8 and a two-instruction body: the bound
  // must include all eight guaranteed body iterations, and stay below the
  // dynamic count.
  const std::string src = R"(
main:
    lp.setupi 0, 8, loop_end
    addi a0, a0, 1
    addi a1, a1, 2
loop_end:
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(r.ok()) << r.to_text();
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_EQ(r.loops[0].static_count, 8u);
  EXPECT_EQ(r.loops[0].exact_count, 8u);
  EXPECT_TRUE(r.loops[0].well_formed);
  const std::uint64_t dyn = dynamic_cycles(src, ri5cy());
  EXPECT_GE(r.min_cycles, 16u);  // 8 iterations x 2 single-cycle ALU ops
  EXPECT_LE(r.min_cycles, dyn);
  EXPECT_NE(r.max_cycles, kUnboundedCycles);
  EXPECT_GE(r.max_cycles, dyn);
}

// ---------------------------------------------------------------------------
// One test per diagnostic kind.

TEST(Analysis, DiagIllegalWord) {
  const std::string src = R"(
main:
    addi a0, zero, 1
    .word 0xffffffff
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_FALSE(r.ok());
  const Diagnostic* d = find_diag(r, DiagKind::kIllegalWord);
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->pc, 4u);
  EXPECT_NE(d->message.find("0x00000004"), std::string::npos) << d->message;
}

TEST(Analysis, DiagUnsupportedInstructionCarriesPcAndDisassembly) {
  const std::string src = R"(
main:
    addi a0, zero, 5
    addi a1, zero, 3
    p.mac a2, a0, a1
    ecall
)";
  // Clean on RI5CY (Xpulp), a load-time diagnostic on IBEX.
  EXPECT_TRUE(analyze_asm(src, ri5cy()).ok());
  const AnalysisReport r = analyze_asm(src, ibex());
  EXPECT_FALSE(r.ok());
  const Diagnostic* d = find_diag(r, DiagKind::kUnsupportedInstruction);
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->pc, 8u);
  EXPECT_NE(d->message.find("ibex"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("pc=0x00000008"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("p.mac"), std::string::npos) << d->message;
}

TEST(Analysis, DiagTargetOutOfImage) {
  const std::string src = R"(
main:
    j main+8192
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kTargetOutOfImage)) << r.to_text();
}

TEST(Analysis, DiagTargetMisaligned) {
  const std::string src = R"(
main:
    j main+2
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kTargetMisaligned)) << r.to_text();
}

TEST(Analysis, DiagHwloopBadBounds) {
  // Zero-length body: end == start.
  const std::string src = R"(
main:
    lp.setupi 0, 4, body
body:
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kHwloopBadBounds)) << r.to_text();
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_FALSE(r.loops[0].well_formed);
}

TEST(Analysis, DiagHwloopTooDeep) {
  const std::string src = R"(
main:
    lp.setupi 0, 2, outer_end
    lp.setupi 1, 2, mid_end
    lp.setupi 0, 2, inner_end
    addi a0, a0, 1
inner_end:
    addi a1, a1, 1
mid_end:
    addi a2, a2, 1
outer_end:
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kHwloopTooDeep)) << r.to_text();
}

TEST(Analysis, DiagHwloopOverlapSameSlotReArm) {
  const std::string src = R"(
main:
    lp.setupi 0, 2, outer_end
    lp.setupi 0, 2, inner_end
    addi a0, a0, 1
inner_end:
    addi a1, a1, 1
outer_end:
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kHwloopOverlap)) << r.to_text();
}

TEST(Analysis, DiagHwloopBranchIn) {
  const std::string src = R"(
main:
    lp.setupi 0, 4, loop_end
body:
    addi a0, a0, 1
    addi a1, a1, 1
loop_end:
    beq  a0, a2, body
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kHwloopBranchIn)) << r.to_text();
}

TEST(Analysis, DiagHwloopBranchOut) {
  const std::string src = R"(
main:
    lp.setupi 0, 4, loop_end
    beq  a0, a1, escape
    addi a0, a0, 1
loop_end:
    addi a2, a2, 1
escape:
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kHwloopBranchOut)) << r.to_text();
}

TEST(Analysis, DiagHwloopBadLastInstruction) {
  // The outer body's last instruction is another lp.setupi (whose own body
  // lies entirely after the outer loop, so no overlap diagnostic interferes).
  const std::string src = R"(
main:
    lp.setupi 0, 4, outer_end
    addi a0, a0, 1
    lp.setupi 1, 2, inner_end
outer_end:
    addi a1, a1, 1
inner_end:
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kHwloopBadLastInstruction)) << r.to_text();
}

TEST(Analysis, DiagStaticAccessOutOfImage) {
  const std::string src = R"(
main:
    lui a0, 0x10
    lw  a1, 0(a0)
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kStaticAccessOutOfImage)) << r.to_text();
}

TEST(Analysis, DiagStaticAccessMisaligned) {
  const std::string src = R"(
main:
    addi a0, zero, 6
    lw   a1, 0(a0)
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(has_error(r, DiagKind::kStaticAccessMisaligned)) << r.to_text();
}

TEST(Analysis, DiagIndirectJumpIsNoteByDefault) {
  // A computed jump (`jr a0` = jalr x0, a0, 0) has a genuinely unknown
  // target: a note by default, an error under strict options, and a CFG
  // sink with an unbounded worst-case bound.
  const std::string src = R"(
main:
    jr a0
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  const Diagnostic* d = find_diag(r, DiagKind::kIndirectJump);
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_TRUE(r.ok()) << r.to_text();  // notes do not fail the report
  ASSERT_EQ(r.blocks.size(), 1u);
  EXPECT_TRUE(r.blocks[0].has_indirect);
  EXPECT_TRUE(r.blocks[0].successors.empty());
  EXPECT_EQ(r.max_cycles, kUnboundedCycles);

  AnalyzeOptions strict;
  strict.indirect_jump_is_error = true;
  const AnalysisReport rs = analyze_asm(src, ri5cy(), strict);
  EXPECT_TRUE(has_error(rs, DiagKind::kIndirectJump));
  EXPECT_FALSE(rs.ok());
}

TEST(Analysis, ReturnIsAFunctionSinkNotAnIndirectJump) {
  const std::string src = R"(
main:
    ret
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(r.ok()) << r.to_text();
  EXPECT_EQ(find_diag(r, DiagKind::kIndirectJump), nullptr) << r.to_text();
  ASSERT_EQ(r.blocks.size(), 1u);
  EXPECT_FALSE(r.blocks[0].has_indirect);
  EXPECT_TRUE(r.blocks[0].is_return);
  EXPECT_TRUE(r.blocks[0].successors.empty());
  // A bare return is a complete (trivial) function: finite bounds.
  EXPECT_NE(r.max_cycles, kUnboundedCycles);
  EXPECT_GE(r.max_cycles, r.min_cycles);
}

TEST(Analysis, DiagKindNamesAreStableAndUnique) {
  std::set<std::string> names;
  for (int k = 0; k <= static_cast<int>(DiagKind::kUnknownStackPointer); ++k) {
    const char* name = diag_kind_name(static_cast<DiagKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
  EXPECT_EQ(names.size(), 17u);
}

// ---------------------------------------------------------------------------
// Interprocedural WCET and stack-depth composition.

TEST(Analysis, CallCompositionSandwichesDynamicCycles) {
  // main calls a leaf helper twice; both bounds must compose the callee's
  // bounds into the caller and sandwich the dynamic count.
  const std::string src = R"(
main:
    addi a0, zero, 0
    call helper
    call helper
    ecall
helper:
    addi a0, a0, 1
    addi a0, a0, 2
    ret
)";
  for (const TimingProfile& profile : {cortex_m4f(), ibex(), ri5cy()}) {
    const AnalysisReport r = analyze_asm(src, profile);
    EXPECT_TRUE(r.ok()) << profile.name << "\n" << r.to_text();
    ASSERT_EQ(r.functions.size(), 2u) << profile.name;
    EXPECT_EQ(r.functions[0].entry, 0u);
    EXPECT_FALSE(r.functions[0].recursive);
    EXPECT_NE(r.functions[1].max_cycles, kUnboundedCycles) << profile.name;
    const std::uint64_t dyn = dynamic_cycles(src, profile);
    EXPECT_GT(r.min_cycles, 0u);
    EXPECT_LE(r.min_cycles, dyn) << profile.name;
    EXPECT_NE(r.max_cycles, kUnboundedCycles) << profile.name;
    EXPECT_GE(r.max_cycles, dyn) << profile.name;
    EXPECT_EQ(r.stack_bytes, 0u) << profile.name;
  }
}

TEST(Analysis, RecursionIsANoteWithUnboundedCeiling) {
  const std::string src = R"(
main:
    call rec
    ecall
rec:
    beq  a0, zero, done
    addi a0, a0, -1
    call rec
done:
    ret
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(r.ok()) << r.to_text();  // recursion is a note, not an error
  const Diagnostic* d = find_diag(r, DiagKind::kRecursiveCall);
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(r.max_cycles, kUnboundedCycles);
  EXPECT_EQ(r.stack_bytes, kUnboundedCycles);
  bool saw_recursive = false;
  for (const FunctionSummary& f : r.functions) {
    if (f.recursive) {
      saw_recursive = true;
      EXPECT_EQ(f.max_cycles, kUnboundedCycles);
      EXPECT_EQ(f.stack_bytes, kUnboundedCycles);
    }
  }
  EXPECT_TRUE(saw_recursive);
  // The floor stays sound and finite.
  EXPECT_GT(r.min_cycles, 0u);
}

TEST(Analysis, UnboundedLoopIsANoteWithUnboundedCeiling) {
  // The countdown pattern needs a statically-known initial value; a0 is
  // unknown at entry, so this loop has no static bound.
  const std::string src = R"(
main:
loop:
    addi a0, a0, -1
    bne  a0, zero, loop
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(r.ok()) << r.to_text();
  const Diagnostic* d = find_diag(r, DiagKind::kUnboundedLoop);
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(r.max_cycles, kUnboundedCycles);
  EXPECT_GT(r.min_cycles, 0u);
}

TEST(Analysis, LoopBoundAnnotationMakesCeilingFinite) {
  const std::string src = R"(
main:
loop:
    addi a0, a0, -1
    bne  a0, zero, loop
    ecall
)";
  AnalyzeOptions options;
  options.loop_bounds[0] = 10;  // keyed by the loop head pc
  const AnalysisReport r = analyze_asm(src, ri5cy(), options);
  EXPECT_TRUE(r.ok()) << r.to_text();
  EXPECT_EQ(find_diag(r, DiagKind::kUnboundedLoop), nullptr) << r.to_text();
  EXPECT_NE(r.max_cycles, kUnboundedCycles);
  EXPECT_GE(r.max_cycles, r.min_cycles);
  // Ten iterations of a two-instruction body: at least 20 cycles.
  EXPECT_GE(r.max_cycles, 20u);
}

TEST(Analysis, ShiftLoopPatternBoundsIterations) {
  // srli as the sole writer of the branch register halves it every pass, so
  // the loop runs at most 32 + 2 iterations even with an unknown input.
  const std::string src = R"(
main:
loop:
    srli a0, a0, 1
    bne  a0, zero, loop
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(r.ok()) << r.to_text();
  EXPECT_EQ(find_diag(r, DiagKind::kUnboundedLoop), nullptr) << r.to_text();
  const std::uint64_t dyn = dynamic_cycles(src, ri5cy());
  EXPECT_NE(r.max_cycles, kUnboundedCycles);
  EXPECT_GE(r.max_cycles, dyn);
  EXPECT_LE(r.min_cycles, dyn);
}

TEST(Analysis, LpSetupRegisterCountProvenByConstprop) {
  const std::string src = R"(
main:
    addi t0, zero, 5
    lp.setup 0, t0, loop_end
    addi a0, a0, 1
    addi a1, a1, 1
loop_end:
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(r.ok()) << r.to_text();
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_EQ(r.loops[0].static_count, 5u);
  EXPECT_EQ(r.loops[0].exact_count, 5u);
  const std::uint64_t dyn = dynamic_cycles(src, ri5cy());
  EXPECT_GE(r.min_cycles, 10u);  // 5 iterations x 2 single-cycle ALU ops
  EXPECT_LE(r.min_cycles, dyn);
  EXPECT_NE(r.max_cycles, kUnboundedCycles);
  EXPECT_GE(r.max_cycles, dyn);
}

TEST(Analysis, StackDepthComposesOverCalls) {
  const std::string src = R"(
main:
    addi sp, sp, -16
    sw   ra, 12(sp)
    call helper
    lw   ra, 12(sp)
    addi sp, sp, 16
    ret
helper:
    addi sp, sp, -32
    sw   s0, 28(sp)
    lw   s0, 28(sp)
    addi sp, sp, 32
    ret
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(r.ok()) << r.to_text();
  EXPECT_EQ(r.stack_bytes, 48u);  // 16 (main) + 32 (helper)
  ASSERT_EQ(r.functions.size(), 2u);
  EXPECT_EQ(r.functions[0].stack_bytes, 48u);
  EXPECT_EQ(r.functions[1].stack_bytes, 32u);
  EXPECT_NE(r.max_cycles, kUnboundedCycles);

  AnalyzeOptions tight;
  tight.stack_limit_bytes = 32;
  const AnalysisReport rt = analyze_asm(src, ri5cy(), tight);
  EXPECT_TRUE(has_error(rt, DiagKind::kStackOverflow)) << rt.to_text();
  EXPECT_FALSE(rt.ok());

  AnalyzeOptions roomy;
  roomy.stack_limit_bytes = 48;
  EXPECT_TRUE(analyze_asm(src, ri5cy(), roomy).ok());
}

TEST(Analysis, RebuiltStackPointerIsANote) {
  const std::string src = R"(
main:
    mv   sp, a0
    ret
)";
  const AnalysisReport r = analyze_asm(src, ri5cy());
  EXPECT_TRUE(r.ok()) << r.to_text();
  const Diagnostic* d = find_diag(r, DiagKind::kUnknownStackPointer);
  ASSERT_NE(d, nullptr) << r.to_text();
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(r.stack_bytes, kUnboundedCycles);
  // The cycle bounds are unaffected by an untracked stack pointer.
  EXPECT_NE(r.max_cycles, kUnboundedCycles);
}

// ---------------------------------------------------------------------------
// Report serialization.

TEST(Analysis, ReportSerializesToTextAndJson) {
  const std::string src = R"(
main:
    p.mac a2, a0, a1
    ecall
)";
  const AnalysisReport r = analyze_asm(src, ibex());
  const std::string text = r.to_text();
  EXPECT_NE(text.find("profile=ibex"), std::string::npos) << text;
  EXPECT_NE(text.find("unsupported-instruction"), std::string::npos) << text;
  const std::string json = r.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"profile\":\"ibex\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"unsupported-instruction\""), std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// Reference kernel matrix (the iw_lint --kernels contract).

TEST(Analysis, ReferenceKernelsAreCleanUnderIntendedProfile) {
  for (const kernels::KernelImage& img : kernels::reference_kernel_images()) {
    Memory mem(img.mem_bytes);
    mem.write_words(img.program.base,
                    std::span<const std::uint32_t>(img.program.words));
    const AnalysisReport r = analyze(mem, img.entry, img.profile);
    EXPECT_TRUE(r.ok()) << img.name << "\n" << r.to_text();
    EXPECT_GT(r.min_cycles, 0u) << img.name;
    EXPECT_GT(r.blocks.size(), 1u) << img.name;
  }
}

TEST(Analysis, XpulpKernelsAreRejectedUnderIbexWithAddressedDiagnostic) {
  const TimingProfile profile = ibex();
  int checked = 0;
  for (const kernels::KernelImage& img : kernels::reference_kernel_images()) {
    if (!img.expect_reject_on_ibex) continue;
    ++checked;
    Memory mem(img.mem_bytes);
    mem.write_words(img.program.base,
                    std::span<const std::uint32_t>(img.program.words));
    const AnalysisReport r = analyze(mem, img.entry, profile);
    ASSERT_FALSE(r.ok()) << img.name;
    const Diagnostic* d = find_diag(r, DiagKind::kUnsupportedInstruction);
    ASSERT_NE(d, nullptr) << img.name << "\n" << r.to_text();
    EXPECT_NE(d->message.find("ibex"), std::string::npos) << d->message;
    EXPECT_NE(d->message.find("pc=0x"), std::string::npos) << d->message;
  }
  EXPECT_GE(checked, 5);
}

// ---------------------------------------------------------------------------
// Static bound <= dynamic cycles on the Table-III kernels, via the runner
// (which arms the verify gate and records the analyzer's bound per run).

std::vector<float> random_input(std::size_t n, iw::Rng& rng) {
  std::vector<float> input(n);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return input;
}

/// floor <= dynamic <= ceiling, with a finite ceiling.
void expect_sandwich(const kernels::KernelRunResult& r, const std::string& label) {
  EXPECT_GT(r.static_min_cycles, 0u) << label;
  EXPECT_LE(r.static_min_cycles, r.cycles) << label;
  EXPECT_NE(r.static_max_cycles, kUnboundedCycles) << label;
  EXPECT_GE(r.static_max_cycles, r.cycles)
      << label << ": dynamic " << r.cycles << " exceeds static ceiling "
      << r.static_max_cycles;
  EXPECT_EQ(r.static_stack_bytes, 0u) << label;  // the kernels are stackless
}

TEST(Analysis, StaticBoundsSandwichDynamicOnTable3Kernels) {
  iw::Rng rng(7);
  const nn::Network net = nn::Network::create({4, 6, 2}, rng);
  const std::vector<float> in = random_input(4, rng);

  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(in);
  for (const kernels::Target target :
       {kernels::Target::kCortexM4, kernels::Target::kIbex,
        kernels::Target::kRi5cySingle, kernels::Target::kRi5cyMulti}) {
    expect_sandwich(kernels::run_fixed_mlp(qn, input, target),
                    kernels::target_name(target));
  }

  expect_sandwich(kernels::run_fixed_mlp_parallel(qn, input, 2), "parallel-2");

  const nn::QuantizedNetwork16 qn16 = nn::QuantizedNetwork16::from(net);
  const auto input16 = qn16.quantize_input(in);
  expect_sandwich(kernels::run_simd_mlp(qn16, input16), "simd");
  expect_sandwich(kernels::run_simd_mlp_parallel(qn16, input16, 4), "simd-parallel-4");

  expect_sandwich(kernels::run_float_mlp(net, in), "float-m4f");
}

TEST(Analysis, StaticBoundsSandwichDynamicOnFeatureKernels) {
  iw::Rng rng(11);
  std::vector<std::int32_t> rr(64);
  for (std::int32_t& v : rr) {
    v = 700 + static_cast<std::int32_t>(rng.uniform(0.0, 200.0));
  }
  const kernels::HrvKernelResult hrv = kernels::run_hrv_kernel(rr);
  EXPECT_GT(hrv.static_min_cycles, 0u);
  EXPECT_LE(hrv.static_min_cycles, hrv.cycles);
  EXPECT_NE(hrv.static_max_cycles, kUnboundedCycles);
  EXPECT_GE(hrv.static_max_cycles, hrv.cycles);
  EXPECT_EQ(hrv.static_stack_bytes, 0u);

  std::vector<std::int32_t> gsr(256);
  std::int32_t level = 2 << 8;
  for (std::int32_t& v : gsr) {
    level += static_cast<std::int32_t>(rng.uniform(-8.0, 10.0));
    v = level;
  }
  const kernels::GsrKernelResult g = kernels::run_gsr_kernel(gsr);
  EXPECT_GT(g.static_min_cycles, 0u);
  EXPECT_LE(g.static_min_cycles, g.cycles);
  EXPECT_NE(g.static_max_cycles, kUnboundedCycles);
  EXPECT_GE(g.static_max_cycles, g.cycles);
  EXPECT_EQ(g.static_stack_bytes, 0u);
}

// ---------------------------------------------------------------------------
// The Machine verify_on_load gate.

TEST(Analysis, VerifyOnLoadRejectsXpulpImageOnIbex) {
  install_load_verifier();
  const asmx::Program p = asmx::assemble(R"(
main:
    p.mac a2, a0, a1
    ecall
)");
  Machine machine(ibex(), kMem);
  machine.load_program(std::span<const std::uint32_t>(p.words));
  machine.set_verify_on_load(true);
  try {
    machine.run(p.symbol("main"));
    FAIL() << "verify_on_load should have rejected the image";
  } catch (const iw::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("verify_on_load"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unsupported-instruction"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pc=0x"), std::string::npos) << msg;
  }
}

TEST(Analysis, VerifyOnLoadPassesCleanImage) {
  install_load_verifier();
  const asmx::Program p = asmx::assemble(R"(
main:
    lp.setupi 0, 4, loop_end
    addi a0, a0, 1
loop_end:
    ecall
)");
  Machine machine(ri5cy(), kMem);
  machine.load_program(std::span<const std::uint32_t>(p.words));
  machine.set_verify_on_load(true);
  const RunResult r = machine.run(p.symbol("main"));
  EXPECT_GT(r.cycles, 0u);
}

TEST(Analysis, VerifyOrThrowSummarizesEveryError) {
  // Two unsupported ops on separately reachable paths (an unsupported word
  // truncates its own path, so they must not be consecutive).
  const asmx::Program p = asmx::assemble(R"(
main:
    beq  a0, a1, other
    p.mac a2, a0, a1
    ecall
other:
    pv.sdotsp.h a0, a1, a2
    ecall
)");
  Memory mem(kMem);
  mem.write_words(p.base, std::span<const std::uint32_t>(p.words));
  try {
    verify_or_throw(mem, p.symbol("main"), ibex());
    FAIL() << "expected verify_or_throw to reject";
  } catch (const iw::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("verify_on_load[ibex]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 static diagnostic"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace iw::rv::analysis
