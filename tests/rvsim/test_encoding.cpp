#include "rvsim/encoding.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace iw::rv {
namespace {

// Golden encodings cross-checked against the RISC-V ISA manual / GNU as.
TEST(Encoding, GoldenRv32iWords) {
  Decoded d;
  d.op = Op::kAddi; d.rd = 1; d.rs1 = 0; d.imm = 5;
  EXPECT_EQ(encode(d), 0x00500093u);

  d = Decoded{}; d.op = Op::kAdd; d.rd = 3; d.rs1 = 1; d.rs2 = 2;
  EXPECT_EQ(encode(d), 0x002081B3u);

  d = Decoded{}; d.op = Op::kLw; d.rd = 5; d.rs1 = 2; d.imm = 8;
  EXPECT_EQ(encode(d), 0x00812283u);

  d = Decoded{}; d.op = Op::kSw; d.rs2 = 5; d.rs1 = 2; d.imm = 12;
  EXPECT_EQ(encode(d), 0x00512623u);

  d = Decoded{}; d.op = Op::kBeq; d.rs1 = 1; d.rs2 = 2; d.imm = 8;
  EXPECT_EQ(encode(d), 0x00208463u);

  d = Decoded{}; d.op = Op::kJal; d.rd = 1; d.imm = 16;
  EXPECT_EQ(encode(d), 0x010000EFu);

  d = Decoded{}; d.op = Op::kLui; d.rd = 7; d.imm = 0x12345;
  EXPECT_EQ(encode(d), 0x123453B7u);

  d = Decoded{}; d.op = Op::kMul; d.rd = 5; d.rs1 = 6; d.rs2 = 7;
  EXPECT_EQ(encode(d), 0x027302B3u);

  d = Decoded{}; d.op = Op::kEcall;
  EXPECT_EQ(encode(d), 0x00000073u);
}

TEST(Encoding, NegativeImmediates) {
  Decoded d;
  d.op = Op::kAddi; d.rd = 1; d.rs1 = 1; d.imm = -1;
  EXPECT_EQ(encode(d), 0xFFF08093u);
  const Decoded back = decode(0xFFF08093u);
  EXPECT_EQ(back.imm, -1);

  d = Decoded{}; d.op = Op::kBne; d.rs1 = 3; d.rs2 = 4; d.imm = -8;
  EXPECT_EQ(decode(encode(d)).imm, -8);
}

TEST(Encoding, RejectsOutOfRangeImmediates) {
  Decoded d;
  d.op = Op::kAddi; d.imm = 5000;
  EXPECT_THROW(encode(d), Error);
  d.op = Op::kLw; d.imm = -3000;
  EXPECT_THROW(encode(d), Error);
  d = Decoded{}; d.op = Op::kBeq; d.imm = 3;  // odd offset
  EXPECT_THROW(encode(d), Error);
  d = Decoded{}; d.op = Op::kSlli; d.imm = 32;
  EXPECT_THROW(encode(d), Error);
}

TEST(Encoding, DecodeRejectsIllegalWords) {
  EXPECT_THROW(decode(0x00000000u), Error);
  EXPECT_THROW(decode(0xFFFFFFFFu), Error);
}

struct RoundTripCase {
  Op op;
  bool has_rd, has_rs1, has_rs2, has_rs3;
  std::int32_t imm_lo, imm_hi, imm_step;
};

class EncodingRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(EncodingRoundTrip, EncodeDecodeIdentity) {
  const RoundTripCase c = GetParam();
  iw::Rng rng(static_cast<std::uint64_t>(c.op) * 7919 + 17);
  for (int trial = 0; trial < 200; ++trial) {
    Decoded d;
    d.op = c.op;
    if (c.has_rd) d.rd = static_cast<std::uint8_t>(rng.uniform_int(32));
    if (c.has_rs1) d.rs1 = static_cast<std::uint8_t>(rng.uniform_int(32));
    if (c.has_rs2) d.rs2 = static_cast<std::uint8_t>(rng.uniform_int(32));
    if (c.has_rs3) d.rs3 = static_cast<std::uint8_t>(rng.uniform_int(32));
    if (c.imm_step != 0) {
      const std::int64_t span = (c.imm_hi - c.imm_lo) / c.imm_step;
      d.imm = c.imm_lo +
              c.imm_step * static_cast<std::int32_t>(rng.uniform_int(
                               static_cast<std::uint64_t>(span + 1)));
    }
    const Decoded back = decode(encode(d));
    EXPECT_EQ(back.op, d.op);
    if (c.has_rd) EXPECT_EQ(back.rd, d.rd);
    if (c.has_rs1) EXPECT_EQ(back.rs1, d.rs1);
    if (c.has_rs2) EXPECT_EQ(back.rs2, d.rs2);
    if (c.has_rs3) EXPECT_EQ(back.rs3, d.rs3);
    if (c.imm_step != 0) EXPECT_EQ(back.imm, d.imm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, EncodingRoundTrip,
    ::testing::Values(
        RoundTripCase{Op::kAddi, true, true, false, false, -2048, 2047, 1},
        RoundTripCase{Op::kXori, true, true, false, false, -2048, 2047, 1},
        RoundTripCase{Op::kSlli, true, true, false, false, 0, 31, 1},
        RoundTripCase{Op::kSrai, true, true, false, false, 0, 31, 1},
        RoundTripCase{Op::kAdd, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kSub, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kSra, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kMulh, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kRemu, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kLw, true, true, false, false, -2048, 2047, 1},
        RoundTripCase{Op::kLbu, true, true, false, false, -2048, 2047, 1},
        RoundTripCase{Op::kSw, false, true, true, false, -2048, 2047, 1},
        RoundTripCase{Op::kSh, false, true, true, false, -2048, 2047, 1},
        RoundTripCase{Op::kBeq, false, true, true, false, -4096, 4094, 2},
        RoundTripCase{Op::kBgeu, false, true, true, false, -4096, 4094, 2},
        RoundTripCase{Op::kJal, true, false, false, false, -4096, 4094, 2},
        RoundTripCase{Op::kJalr, true, true, false, false, -2048, 2047, 1},
        RoundTripCase{Op::kLui, true, false, false, false, 0, 0xFFFFF, 1},
        RoundTripCase{Op::kAuipc, true, false, false, false, 0, 0xFFFFF, 1},
        RoundTripCase{Op::kPLwPost, true, true, false, false, -2048, 2047, 1},
        RoundTripCase{Op::kPShPost, false, true, true, false, -2048, 2047, 1},
        RoundTripCase{Op::kPMac, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kPClip, true, true, false, false, 1, 31, 1},
        RoundTripCase{Op::kPAbs, true, true, false, false, 0, 0, 0},
        RoundTripCase{Op::kPMin, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kPMax, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kPExths, true, true, false, false, 0, 0, 0},
        RoundTripCase{Op::kPExtbs, true, true, false, false, 0, 0, 0},
        RoundTripCase{Op::kPvDotspH, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kPvSdotspH, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kFlw, true, true, false, false, -2048, 2047, 1},
        RoundTripCase{Op::kFsw, false, true, true, false, -2048, 2047, 1},
        RoundTripCase{Op::kFaddS, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kFmaddS, true, true, true, true, 0, 0, 0},
        RoundTripCase{Op::kFltS, true, true, true, false, 0, 0, 0},
        RoundTripCase{Op::kFcvtSW, true, true, false, false, 0, 0, 0},
        RoundTripCase{Op::kFmvXW, true, true, false, false, 0, 0, 0}));

TEST(Encoding, HwLoopRoundTrip) {
  Decoded d;
  d.op = Op::kLpSetupi;
  d.imm = 100;   // iterations
  d.imm2 = 12;   // end offset in words
  d.extra = 1;   // loop index
  Decoded back = decode(encode(d));
  EXPECT_EQ(back.op, Op::kLpSetupi);
  EXPECT_EQ(back.imm, 100);
  EXPECT_EQ(back.imm2, 12);
  EXPECT_EQ(back.extra, 1u);

  d = Decoded{};
  d.op = Op::kLpSetup;
  d.rs1 = 14;
  d.imm2 = 200;
  d.extra = 0;
  back = decode(encode(d));
  EXPECT_EQ(back.op, Op::kLpSetup);
  EXPECT_EQ(back.rs1, 14);
  EXPECT_EQ(back.imm2, 200);
  EXPECT_EQ(back.extra, 0u);
}

TEST(Encoding, CsrRoundTrip) {
  Decoded d;
  d.op = Op::kCsrrs;
  d.rd = 10;
  d.rs1 = 0;
  d.extra = kCsrMhartid;
  const Decoded back = decode(encode(d));
  EXPECT_EQ(back.op, Op::kCsrrs);
  EXPECT_EQ(back.extra, kCsrMhartid);
  EXPECT_EQ(back.rd, 10);
}

}  // namespace
}  // namespace iw::rv
