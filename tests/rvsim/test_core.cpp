#include "rvsim/core.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "asmx/assembler.hpp"
#include "common/error.hpp"
#include "rvsim/machine.hpp"

namespace iw::rv {
namespace {

/// Assembles and runs a program on the given profile; returns the machine for
/// register/memory inspection.
std::unique_ptr<Machine> run_program(const std::string& source,
                                     TimingProfile profile = ri5cy()) {
  auto machine = std::make_unique<Machine>(std::move(profile));
  const asmx::Program program = asmx::assemble(source);
  machine->load_program(program.words);
  machine->run(0);
  return machine;
}

std::int32_t a0(const std::unique_ptr<Machine>& m) {
  return static_cast<std::int32_t>(m->core().reg(10));
}

TEST(Core, BasicArithmetic) {
  const auto m = run_program(R"(
      li a0, 20
      li a1, 22
      add a0, a0, a1
      ecall
  )");
  EXPECT_EQ(a0(m), 42);
}

TEST(Core, BranchLoopSumsOneToTen) {
  const auto m = run_program(R"(
      li a0, 0
      li t0, 1
      li t1, 11
  loop:
      add a0, a0, t0
      addi t0, t0, 1
      bne t0, t1, loop
      ecall
  )");
  EXPECT_EQ(a0(m), 55);
}

TEST(Core, LoadStoreRoundTrip) {
  const auto m = run_program(R"(
      .equ BUF, 0x400
      li t0, BUF
      li t1, -123
      sw t1, 0(t0)
      lw a0, 0(t0)
      sh t1, 8(t0)
      lh a1, 8(t0)
      lhu a2, 8(t0)
      sb t1, 12(t0)
      lb a3, 12(t0)
      lbu a4, 12(t0)
      ecall
  )");
  auto& core = m->core();
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(10)), -123);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(11)), -123);
  EXPECT_EQ(core.reg(12), 0xFF85u);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(13)), -123);
  EXPECT_EQ(core.reg(14), 0x85u);
}

TEST(Core, ShiftAndCompare) {
  const auto m = run_program(R"(
      li t0, -16
      srai t1, t0, 2      # -4
      srli t2, t0, 28     # 0xF
      slt a0, t0, zero    # 1
      sltu a1, t0, zero   # 0 (unsigned -16 is huge)
      add a0, a0, t1
      add a0, a0, t2
      add a0, a0, a1
      ecall
  )");
  EXPECT_EQ(a0(m), 1 - 4 + 15 + 0);
}

TEST(Core, MulDivSemantics) {
  const auto m = run_program(R"(
      li t0, -7
      li t1, 3
      mul a0, t0, t1        # -21
      div a1, t0, t1        # -2 (toward zero)
      rem a2, t0, t1        # -1
      li t2, 0
      div a3, t0, t2        # div by zero -> -1
      rem a4, t0, t2        # rem by zero -> rs1
      ecall
  )");
  auto& core = m->core();
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(10)), -21);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(11)), -2);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(12)), -1);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(13)), -1);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(14)), -7);
}

TEST(Core, MulhVariants) {
  const auto m = run_program(R"(
      li t0, 0x40000000
      li t1, 8
      mulh a0, t0, t1       # (2^30 * 8) >> 32 = 2
      li t2, -1
      mulhu a1, t2, t2      # (2^32-1)^2 >> 32 = 0xFFFFFFFE
      ecall
  )");
  auto& core = m->core();
  EXPECT_EQ(core.reg(10), 2u);
  EXPECT_EQ(core.reg(11), 0xFFFFFFFEu);
}

TEST(Core, X0AlwaysZero) {
  const auto m = run_program(R"(
      li t0, 99
      add zero, t0, t0
      mv a0, zero
      ecall
  )");
  EXPECT_EQ(a0(m), 0);
}

TEST(Core, JalLinksReturnAddress) {
  const auto m = run_program(R"(
      li a0, 0
      call func
      addi a0, a0, 1
      ecall
  func:
      addi a0, a0, 10
      ret
  )");
  EXPECT_EQ(a0(m), 11);
}

TEST(Core, HardwareLoopRepeats) {
  const auto m = run_program(R"(
      li a0, 0
      lp.setupi 0, 25, loop_end
      addi a0, a0, 2
  loop_end:
      ecall
  )");
  EXPECT_EQ(a0(m), 50);
}

TEST(Core, HardwareLoopFromRegister) {
  const auto m = run_program(R"(
      li a0, 0
      li t0, 7
      lp.setup 0, t0, loop_end
      addi a0, a0, 3
      addi a0, a0, 1
  loop_end:
      ecall
  )");
  EXPECT_EQ(a0(m), 28);
}

TEST(Core, NestedHardwareLoops) {
  const auto m = run_program(R"(
      li a0, 0
      lp.setupi 1, 5, outer_end
      lp.setupi 0, 4, inner_end
      addi a0, a0, 1
  inner_end:
      addi a0, a0, 100
  outer_end:
      ecall
  )");
  // 5 outer iterations, each: 4 inner increments + 100.
  EXPECT_EQ(a0(m), 5 * (4 + 100));
}

TEST(Core, HardwareLoopZeroOverheadTiming) {
  // Same loop body executed via hwloop vs branch; hwloop must cost exactly
  // body_cycles * n after setup, the branch version pays the taken penalty.
  const std::string hw = R"(
      lp.setupi 0, 100, end
      addi a0, a0, 1
  end:
      ecall
  )";
  const std::string br = R"(
      li t0, 100
  loop:
      addi a0, a0, 1
      addi t0, t0, -1
      bnez t0, loop
      ecall
  )";
  Machine mh(ri5cy());
  const asmx::Program ph = asmx::assemble(hw);
  mh.load_program(ph.words);
  const RunResult rh = mh.run(0);
  Machine mb(ri5cy());
  const asmx::Program pb = asmx::assemble(br);
  mb.load_program(pb.words);
  const RunResult rb = mb.run(0);
  EXPECT_LT(rh.cycles, rb.cycles);
  // hwloop: setup(1) + 100*addi(1) + ecall(1) = 102.
  EXPECT_EQ(rh.cycles, 102u);
}

TEST(Core, PostIncrementLoadWalksArray) {
  const auto m = run_program(R"(
      .equ BUF, 0x400
      li t0, BUF
      li t1, 11
      sw t1, 0(t0)
      li t1, 22
      sw t1, 4(t0)
      li t1, 33
      sw t1, 8(t0)
      li a1, BUF
      li a0, 0
      p.lw t2, 4(a1!)
      add a0, a0, t2
      p.lw t2, 4(a1!)
      add a0, a0, t2
      p.lw t2, 4(a1!)
      add a0, a0, t2
      ecall
  )");
  EXPECT_EQ(a0(m), 66);
  // Base register advanced three words past BUF.
  EXPECT_EQ(m->core().reg(11), 0x400u + 12u);
}

TEST(Core, PostIncrementStore) {
  const auto m = run_program(R"(
      .equ BUF, 0x400
      li a1, BUF
      li t0, 7
      p.sw t0, 4(a1!)
      li t0, 9
      p.sw t0, 4(a1!)
      lw a0, BUF(zero)
      lw t1, BUF+4(zero)
      add a0, a0, t1
      ecall
  )");
  EXPECT_EQ(a0(m), 16);
}

TEST(Core, MacAccumulates) {
  const auto m = run_program(R"(
      li a0, 100
      li t0, 6
      li t1, 7
      p.mac a0, t0, t1
      p.mac a0, t0, t1
      ecall
  )");
  EXPECT_EQ(a0(m), 100 + 2 * 42);
}

TEST(Core, ClipSaturates) {
  const auto m = run_program(R"(
      li t0, 300
      p.clip a0, t0, 8      # clamp to [-128, 127]
      li t0, -300
      p.clip a1, t0, 8
      li t0, 50
      p.clip a2, t0, 8
      ecall
  )");
  auto& core = m->core();
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(10)), 127);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(11)), -128);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(12)), 50);
}

TEST(Core, SimdDotProduct) {
  // Pack (3, -2) and (10, 5): dot = 3*10 + (-2)*5 = 20.
  const auto m = run_program(R"(
      li t0, 0xFFFE0003      # hi=-2, lo=3
      li t1, 0x0005000A      # hi=5, lo=10
      li a0, 0
      pv.sdotsp.h a0, t0, t1
      pv.dotsp.h a1, t0, t1
      pv.sdotsp.h a0, t0, t1
      ecall
  )");
  auto& core = m->core();
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(10)), 40);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(11)), 20);
}

TEST(Core, CsrHartIdAndCycle) {
  const auto m = run_program(R"(
      csrr a0, mhartid
      nop
      nop
      csrr a1, mcycle
      ecall
  )");
  auto& core = m->core();
  EXPECT_EQ(core.reg(10), 0u);  // single-core machine is hart 0
  EXPECT_GE(core.reg(11), 3u);  // cycles at csrr time
}

TEST(Core, FloatArithmetic) {
  const auto m = run_program(R"(
      .equ BUF, 0x400
      li t0, BUF
      li t1, 0x3FC00000      # 1.5f
      sw t1, 0(t0)
      li t1, 0x40000000      # 2.0f
      sw t1, 4(t0)
      flw f0, 0(t0)
      flw f1, 4(t0)
      fmul.s f2, f0, f1      # 3.0
      fadd.s f2, f2, f1      # 5.0
      fmadd.s f3, f0, f1, f2 # 1.5*2 + 5 = 8.0
      fcvt.w.s a0, f3
      ecall
  )",
                                cortex_m4f());
  EXPECT_EQ(a0(m), 8);
}

TEST(Core, FloatCompareAndConvert) {
  const auto m = run_program(R"(
      li t0, 5
      fcvt.s.w f0, t0
      li t1, -3
      fcvt.s.w f1, t1
      flt.s a0, f1, f0       # 1
      fle.s a1, f0, f1       # 0
      feq.s a2, f0, f0       # 1
      fneg.s f2, f0
      fcvt.w.s a3, f2        # -5
      ecall
  )",
                                cortex_m4f());
  auto& core = m->core();
  EXPECT_EQ(core.reg(10), 1u);
  EXPECT_EQ(core.reg(11), 0u);
  EXPECT_EQ(core.reg(12), 1u);
  EXPECT_EQ(static_cast<std::int32_t>(core.reg(13)), -5);
}

TEST(Core, UnsupportedInstructionThrowsOnIbex) {
  Machine machine(ibex());
  const asmx::Program program = asmx::assemble(R"(
      li t0, 1
      li t1, 1
      p.mac a0, t0, t1
      ecall
  )");
  machine.load_program(program.words);
  EXPECT_THROW(machine.run(0), Error);
}

TEST(Core, LoadUseStallChargedOnRi5cy) {
  // Dependent use right after the load pays the stall; inserting an
  // independent instruction hides it.
  const std::string dependent = R"(
      lw t0, 0x100(zero)
      add a0, t0, t0
      ecall
  )";
  const std::string hidden = R"(
      lw t0, 0x100(zero)
      addi t1, zero, 0
      add a0, t0, t0
      ecall
  )";
  Machine md(ri5cy());
  md.load_program(asmx::assemble(dependent).words);
  const RunResult rd = md.run(0);
  Machine mh(ri5cy());
  mh.load_program(asmx::assemble(hidden).words);
  const RunResult rh = mh.run(0);
  // dependent: lw(1) + add(1+1 stall) + ecall(1) = 4
  // hidden:    lw(1) + addi(1) + add(1) + ecall(1) = 4
  EXPECT_EQ(rd.cycles, 4u);
  EXPECT_EQ(rh.cycles, 4u);
  EXPECT_EQ(rd.instructions + 1, rh.instructions);
}

TEST(Core, TakenBranchCostsMore) {
  const std::string taken = R"(
      li t0, 1
      bnez t0, skip
      nop
  skip:
      ecall
  )";
  const std::string not_taken = R"(
      li t0, 0
      bnez t0, skip
      nop
  skip:
      ecall
  )";
  Machine mt(ri5cy());
  mt.load_program(asmx::assemble(taken).words);
  const RunResult rt = mt.run(0);
  Machine mn(ri5cy());
  mn.load_program(asmx::assemble(not_taken).words);
  const RunResult rn = mn.run(0);
  // Taken skips the nop but pays the redirect penalty.
  EXPECT_EQ(rt.instructions + 1, rn.instructions);
  EXPECT_EQ(rt.cycles, rn.cycles - 1 + static_cast<std::uint64_t>(ri5cy().branch_taken_extra));
}

TEST(Core, BackToBackLoadsPipelineOnM4) {
  // Three consecutive loads on the M4 profile: 2 + 1 + 1 cycles.
  const std::string three_loads = R"(
      lw t0, 0x100(zero)
      lw t1, 0x104(zero)
      lw t2, 0x108(zero)
      ecall
  )";
  Machine m(cortex_m4f());
  m.load_program(asmx::assemble(three_loads).words);
  const RunResult r = m.run(0);
  EXPECT_EQ(r.cycles, 2u + 1u + 1u + 1u);  // + ecall
}

TEST(Core, StallCountersTrackPenalties) {
  // 10-iteration counted loop: 9 taken back-edges; one load-use pair.
  const auto m = run_program(R"(
      li t0, 10
  loop:
      addi t0, t0, -1
      bnez t0, loop
      lw t1, 0x400(zero)
      add a0, t1, t1
      ecall
  )");
  EXPECT_EQ(m->core().taken_branches(), 9u);
  EXPECT_EQ(m->core().load_use_stalls(), 1u);
}

TEST(Core, HaltedCoreRefusesToStep) {
  Machine m(ri5cy());
  m.load_program(asmx::assemble("ecall\n").words);
  m.run(0);
  EXPECT_TRUE(m.core().halted());
  EXPECT_THROW(m.core().step(), Error);
}

TEST(Core, RunawayProgramHitsBudget) {
  Machine m(ri5cy());
  m.load_program(asmx::assemble("loop: j loop\n").words);
  EXPECT_THROW(m.run(0, 10000), Error);
}

}  // namespace
}  // namespace iw::rv
