// Structured WCET fuzz: random-but-well-formed programs (countdown loops,
// hardware loops on Xpulp profiles, acyclic call chains with real 16-byte
// stack frames) are analyzed and then executed, and every case must satisfy
// the certification sandwich
//
//     0 < static floor <= dynamic cycles <= static ceiling (finite)
//
// plus an exact interprocedural stack-depth prediction. Seeds are fixed so
// the suite is deterministic; the generator is the adversary.
#include <cstdint>
#include <span>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "asmx/assembler.hpp"
#include "common/rng.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/machine.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/timing.hpp"

namespace iw::rv::analysis {
namespace {

constexpr std::size_t kMem = 4096;

struct GenProgram {
  std::string src;
  std::uint64_t expected_stack = 0;  // bytes: one 16-byte frame per chain level
  std::size_t functions = 0;         // main + helpers
};

/// Emits one function body feature. Loops keep their counter in t0 and are
/// always preceded (immediately) by the `li` that proves the bound; calls may
/// appear anywhere, including right before a loop's `li`.
void emit_feature(std::ostringstream& os, iw::Rng& rng, bool xpulp, int fn,
                  int feat, bool& used_hwloop) {
  const int kind = static_cast<int>(rng.uniform(0.0, xpulp ? 3.0 : 2.0));
  if (kind == 0) {
    const int n = 1 + static_cast<int>(rng.uniform(0.0, 3.0));
    for (int i = 0; i < n; ++i) {
      if (rng.uniform(0.0, 1.0) < 0.5) {
        os << "    addi a0, a0, " << (1 + static_cast<int>(rng.uniform(0.0, 7.0)))
           << "\n";
      } else {
        os << "    add  a1, a1, a0\n";
      }
    }
  } else if (kind == 1) {
    const int bound = 1 + static_cast<int>(rng.uniform(0.0, 7.0));
    const int body = static_cast<int>(rng.uniform(0.0, 2.0));
    os << "    addi t0, zero, " << bound << "\n";
    os << "cd_" << fn << "_" << feat << ":\n";
    for (int i = 0; i < body; ++i) os << "    addi a0, a0, 1\n";
    os << "    addi t0, t0, -1\n";
    os << "    bne  t0, zero, cd_" << fn << "_" << feat << "\n";
  } else {
    // One hardware loop per function keeps the two loop slots honest even
    // when features repeat.
    if (used_hwloop) {
      os << "    addi a0, a0, 1\n";
      return;
    }
    used_hwloop = true;
    const int count = 1 + static_cast<int>(rng.uniform(0.0, 7.0));
    os << "    lp.setupi 0, " << count << ", hw_" << fn << "_" << feat << "\n";
    os << "    addi a0, a0, 1\n";
    os << "    addi a1, a1, 2\n";
    os << "hw_" << fn << "_" << feat << ":\n";
  }
}

/// A random program shaped like real firmware: `main` plus a strict call
/// chain of helpers (f1 -> f2 -> ...), every function owning a 16-byte frame
/// and saving `ra` iff it calls further down.
GenProgram generate(iw::Rng& rng, bool xpulp) {
  const int helpers = static_cast<int>(rng.uniform(0.0, 3.0));  // 0..2
  std::ostringstream os;
  for (int fn = 0; fn <= helpers; ++fn) {
    const bool calls = fn < helpers;
    if (fn == 0) {
      os << "main:\n";
    } else {
      os << "helper" << fn << ":\n";
    }
    os << "    addi sp, sp, -16\n";
    if (calls) os << "    sw   ra, 12(sp)\n";
    const int features = 2 + static_cast<int>(rng.uniform(0.0, 2.0));
    const int call_count = calls ? 1 + static_cast<int>(rng.uniform(0.0, 2.0)) : 0;
    const int call_slot = calls ? static_cast<int>(rng.uniform(
                                      0.0, static_cast<double>(features)))
                                : -1;
    bool used_hwloop = false;
    for (int feat = 0; feat < features; ++feat) {
      if (feat == call_slot) {
        for (int c = 0; c < call_count; ++c) {
          os << "    call helper" << fn + 1 << "\n";
        }
      }
      emit_feature(os, rng, xpulp, fn, feat, used_hwloop);
    }
    if (calls) os << "    lw   ra, 12(sp)\n";
    os << "    addi sp, sp, 16\n";
    os << (fn == 0 ? "    ecall\n" : "    ret\n");
  }
  GenProgram g;
  g.src = os.str();
  g.expected_stack = 16u * static_cast<std::uint64_t>(helpers + 1);
  g.functions = static_cast<std::size_t>(helpers + 1);
  return g;
}

TEST(WcetFuzz, SandwichHoldsOnStructuredRandomPrograms) {
  const TimingProfile profiles[] = {cortex_m4f(), ibex(), ri5cy()};
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    for (const TimingProfile& profile : profiles) {
      const bool xpulp = profile.has_hwloop;
      iw::Rng rng(seed * 977u + (xpulp ? 7u : 0u));
      const GenProgram g = generate(rng, xpulp);
      SCOPED_TRACE("seed=" + std::to_string(seed) + " profile=" + profile.name +
                   "\n" + g.src);

      const asmx::Program p = asmx::assemble(g.src);
      Memory mem(kMem);
      mem.write_words(p.base, std::span<const std::uint32_t>(p.words));
      const AnalysisReport r = analyze(mem, p.symbol("main"), profile);
      ASSERT_TRUE(r.ok()) << r.to_text();
      EXPECT_EQ(r.functions.size(), g.functions);

      Machine machine(profile, kMem);
      machine.load_program(std::span<const std::uint32_t>(p.words), p.base);
      const std::uint64_t dyn = machine.run(p.symbol("main")).cycles;

      EXPECT_GT(r.min_cycles, 0u);
      EXPECT_LE(r.min_cycles, dyn);
      ASSERT_NE(r.max_cycles, kUnboundedCycles) << r.to_text();
      EXPECT_GE(r.max_cycles, dyn);
      EXPECT_EQ(r.stack_bytes, g.expected_stack) << r.to_text();
    }
  }
}

}  // namespace
}  // namespace iw::rv::analysis
