// Property tests: ISS instruction semantics vs a host-side golden model,
// over random and adversarial operand values.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "asmx/assembler.hpp"
#include "common/rng.hpp"
#include "rvsim/machine.hpp"

namespace iw::rv {
namespace {

using U = std::uint32_t;
using S = std::int32_t;

S s(U v) { return static_cast<S>(v); }
U u(S v) { return static_cast<U>(v); }

/// Executes `op a2, a0, a1` with the given operand values and returns a2.
U run_binary(const std::string& mnemonic, U a, U b) {
  static constexpr std::uint32_t kOperands = 0x400;
  const asmx::Program program = asmx::assemble(
      "lw a0, " + std::to_string(kOperands) + "(zero)\n" +
      "lw a1, " + std::to_string(kOperands + 4) + "(zero)\n" +
      mnemonic + " a2, a0, a1\n"
      "mv a0, a2\n"
      "ecall\n");
  Machine machine(ri5cy(), 1 << 16);
  machine.load_program(program.words);
  machine.memory().store32(kOperands, a);
  machine.memory().store32(kOperands + 4, b);
  machine.run(0);
  return machine.core().reg(10);
}

struct BinaryCase {
  const char* mnemonic;
  std::function<U(U, U)> golden;
};

class BinarySemantics : public ::testing::TestWithParam<BinaryCase> {};

std::vector<std::pair<U, U>> operand_corpus() {
  static const U interesting[] = {
      0u, 1u, 2u, 31u, 32u, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu,
      0xFFFFFFFEu, 0x55555555u, 0xAAAAAAAAu, 0x00010000u};
  std::vector<std::pair<U, U>> corpus;
  for (U a : interesting) {
    for (U b : interesting) corpus.emplace_back(a, b);
  }
  iw::Rng rng(12345);
  for (int i = 0; i < 150; ++i) {
    corpus.emplace_back(static_cast<U>(rng.next()), static_cast<U>(rng.next()));
  }
  return corpus;
}

TEST_P(BinarySemantics, MatchesGoldenModel) {
  const BinaryCase& test_case = GetParam();
  for (const auto& [a, b] : operand_corpus()) {
    EXPECT_EQ(run_binary(test_case.mnemonic, a, b), test_case.golden(a, b))
        << test_case.mnemonic << " a=0x" << std::hex << a << " b=0x" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AluAndMul, BinarySemantics,
    ::testing::Values(
        BinaryCase{"add", [](U a, U b) { return a + b; }},
        BinaryCase{"sub", [](U a, U b) { return a - b; }},
        BinaryCase{"sll", [](U a, U b) { return a << (b & 31); }},
        BinaryCase{"srl", [](U a, U b) { return a >> (b & 31); }},
        BinaryCase{"sra", [](U a, U b) { return u(s(a) >> (b & 31)); }},
        BinaryCase{"slt", [](U a, U b) { return U{s(a) < s(b) ? 1u : 0u}; }},
        BinaryCase{"sltu", [](U a, U b) { return U{a < b ? 1u : 0u}; }},
        BinaryCase{"xor", [](U a, U b) { return a ^ b; }},
        BinaryCase{"or", [](U a, U b) { return a | b; }},
        BinaryCase{"and", [](U a, U b) { return a & b; }},
        BinaryCase{"mul", [](U a, U b) { return a * b; }},
        BinaryCase{"mulh",
                   [](U a, U b) {
                     return static_cast<U>(
                         (static_cast<std::int64_t>(s(a)) * s(b)) >> 32);
                   }},
        BinaryCase{"mulhsu",
                   [](U a, U b) {
                     return static_cast<U>((static_cast<std::int64_t>(s(a)) *
                                            static_cast<std::uint64_t>(b)) >>
                                           32);
                   }},
        BinaryCase{"mulhu",
                   [](U a, U b) {
                     return static_cast<U>((static_cast<std::uint64_t>(a) * b) >> 32);
                   }},
        BinaryCase{"div",
                   [](U a, U b) {
                     if (b == 0) return ~0u;
                     if (s(a) == std::numeric_limits<S>::min() && s(b) == -1) return a;
                     return u(s(a) / s(b));
                   }},
        BinaryCase{"divu", [](U a, U b) { return b == 0 ? ~0u : a / b; }},
        BinaryCase{"rem",
                   [](U a, U b) {
                     if (b == 0) return a;
                     if (s(a) == std::numeric_limits<S>::min() && s(b) == -1) return 0u;
                     return u(s(a) % s(b));
                   }},
        BinaryCase{"remu", [](U a, U b) { return b == 0 ? a : a % b; }},
        BinaryCase{"p.min", [](U a, U b) { return s(a) < s(b) ? a : b; }},
        BinaryCase{"p.max", [](U a, U b) { return s(a) > s(b) ? a : b; }},
        BinaryCase{"pv.dotsp.h",
                   [](U a, U b) {
                     const S lo = static_cast<std::int16_t>(a & 0xFFFF) *
                                  static_cast<std::int16_t>(b & 0xFFFF);
                     const S hi = static_cast<std::int16_t>(a >> 16) *
                                  static_cast<std::int16_t>(b >> 16);
                     return u(lo + hi);
                   }}),
    [](const ::testing::TestParamInfo<BinaryCase>& info) {
      std::string name = info.param.mnemonic;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

/// Immediate-form ops against their register-form golden equivalents.
struct ImmCase {
  const char* mnemonic;
  std::function<U(U, S)> golden;
  S imm_lo, imm_hi;
};

class ImmediateSemantics : public ::testing::TestWithParam<ImmCase> {};

TEST_P(ImmediateSemantics, MatchesGoldenModel) {
  const ImmCase& test_case = GetParam();
  iw::Rng rng(777);
  static constexpr std::uint32_t kOperand = 0x400;
  for (int trial = 0; trial < 60; ++trial) {
    const U a = static_cast<U>(rng.next());
    const S imm =
        test_case.imm_lo +
        static_cast<S>(rng.uniform_int(
            static_cast<std::uint64_t>(test_case.imm_hi - test_case.imm_lo + 1)));
    const asmx::Program program = asmx::assemble(
        "lw a0, " + std::to_string(kOperand) + "(zero)\n" +
        test_case.mnemonic + " a0, a0, " + std::to_string(imm) + "\n"
        "ecall\n");
    Machine machine(ri5cy(), 1 << 16);
    machine.load_program(program.words);
    machine.memory().store32(kOperand, a);
    machine.run(0);
    EXPECT_EQ(machine.core().reg(10), test_case.golden(a, imm))
        << test_case.mnemonic << " a=0x" << std::hex << a << std::dec
        << " imm=" << imm;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ImmediateOps, ImmediateSemantics,
    ::testing::Values(
        ImmCase{"addi", [](U a, S i) { return a + u(i); }, -2048, 2047},
        ImmCase{"xori", [](U a, S i) { return a ^ u(i); }, -2048, 2047},
        ImmCase{"ori", [](U a, S i) { return a | u(i); }, -2048, 2047},
        ImmCase{"andi", [](U a, S i) { return a & u(i); }, -2048, 2047},
        ImmCase{"slti", [](U a, S i) { return U{s(a) < i ? 1u : 0u}; }, -2048, 2047},
        ImmCase{"sltiu", [](U a, S i) { return U{a < u(i) ? 1u : 0u}; }, -2048, 2047},
        ImmCase{"slli", [](U a, S i) { return a << i; }, 0, 31},
        ImmCase{"srli", [](U a, S i) { return a >> i; }, 0, 31},
        ImmCase{"srai", [](U a, S i) { return u(s(a) >> i); }, 0, 31},
        ImmCase{"p.clip",
                [](U a, S i) {
                  const S hi = (S{1} << (i - 1)) - 1;
                  const S lo = -(S{1} << (i - 1));
                  const S v = s(a);
                  return u(v < lo ? lo : (v > hi ? hi : v));
                },
                1, 31}),
    [](const ::testing::TestParamInfo<ImmCase>& info) {
      std::string name = info.param.mnemonic;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

/// Unary Xpulp ALU ops: `op a1, a0`.
struct UnaryCase {
  const char* mnemonic;
  std::function<U(U)> golden;
};

class UnarySemantics : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnarySemantics, MatchesGoldenModel) {
  const UnaryCase& test_case = GetParam();
  static constexpr std::uint32_t kOperand = 0x400;
  for (const auto& [a, b] : operand_corpus()) {
    (void)b;
    const asmx::Program program = asmx::assemble(
        "lw a0, " + std::to_string(kOperand) + "(zero)\n" +
        test_case.mnemonic + " a0, a0\n"
        "ecall\n");
    Machine machine(ri5cy(), 1 << 16);
    machine.load_program(program.words);
    machine.memory().store32(kOperand, a);
    machine.run(0);
    EXPECT_EQ(machine.core().reg(10), test_case.golden(a))
        << test_case.mnemonic << " a=0x" << std::hex << a;
  }
}

INSTANTIATE_TEST_SUITE_P(
    UnaryOps, UnarySemantics,
    ::testing::Values(
        UnaryCase{"p.abs", [](U a) { return s(a) < 0 ? U{0} - a : a; }},
        UnaryCase{"p.exths",
                  [](U a) { return u(static_cast<std::int16_t>(a & 0xFFFF)); }},
        UnaryCase{"p.extbs", [](U a) { return u(static_cast<std::int8_t>(a & 0xFF)); }}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      std::string name = info.param.mnemonic;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

/// Branch predicates: the branch must be taken exactly when the golden
/// predicate holds.
struct BranchCase {
  const char* mnemonic;
  std::function<bool(U, U)> taken;
};

class BranchSemantics : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchSemantics, TakenExactlyWhenPredicateHolds) {
  const BranchCase& test_case = GetParam();
  for (const auto& [a, b] : operand_corpus()) {
    static constexpr std::uint32_t kOperands = 0x400;
    const asmx::Program program = asmx::assemble(
        "lw a0, " + std::to_string(kOperands) + "(zero)\n" +
        "lw a1, " + std::to_string(kOperands + 4) + "(zero)\n" +
        std::string(test_case.mnemonic) + " a0, a1, taken\n"
        "li a0, 0\n"
        "ecall\n"
        "taken:\n"
        "li a0, 1\n"
        "ecall\n");
    Machine machine(ri5cy(), 1 << 16);
    machine.load_program(program.words);
    machine.memory().store32(kOperands, a);
    machine.memory().store32(kOperands + 4, b);
    machine.run(0);
    EXPECT_EQ(machine.core().reg(10), test_case.taken(a, b) ? 1u : 0u)
        << test_case.mnemonic << " a=0x" << std::hex << a << " b=0x" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Branches, BranchSemantics,
    ::testing::Values(BranchCase{"beq", [](U a, U b) { return a == b; }},
                      BranchCase{"bne", [](U a, U b) { return a != b; }},
                      BranchCase{"blt", [](U a, U b) { return s(a) < s(b); }},
                      BranchCase{"bge", [](U a, U b) { return s(a) >= s(b); }},
                      BranchCase{"bltu", [](U a, U b) { return a < b; }},
                      BranchCase{"bgeu", [](U a, U b) { return a >= b; }}),
    [](const ::testing::TestParamInfo<BranchCase>& info) {
      return info.param.mnemonic;
    });

}  // namespace
}  // namespace iw::rv
