// Cluster DMA engine: data correctness, wait semantics, transfer queueing,
// and the double-buffering overlap it exists for.
#include <gtest/gtest.h>

#include <string>

#include "asmx/assembler.hpp"
#include "common/error.hpp"
#include "rvsim/cluster.hpp"

namespace iw::rv {
namespace {

ClusterConfig one_core_config() {
  ClusterConfig cfg;
  cfg.num_cores = 1;
  cfg.mem_bytes = 1u << 20;
  return cfg;
}

// Common .equ prologue for the DMA register block.
const char* kDmaEqus = R"(
    .equ DMA_SRC, 0xFFD0
    .equ DMA_DST, 0xFFD4
    .equ DMA_LEN, 0xFFD8
    .equ DMA_TRIG, 0xFFDC
    .equ DMA_WAIT, 0xFFE0
)";

TEST(ClusterDma, CopiesDataL2ToTcdm) {
  Cluster cluster(ri5cy(), one_core_config());
  const asmx::Program program = asmx::assemble(std::string(kDmaEqus) + R"(
    li t0, DMA_SRC
    li t1, 0x4000          # source in L2
    sw t1, 0(t0)
    li t1, 0x80000         # destination in TCDM
    sw t1, 4(t0)           # DMA_DST
    li t1, 16
    sw t1, 8(t0)           # DMA_LEN (words)
    sw zero, 12(t0)        # trigger
    sw zero, 16(t0)        # wait for completion
    ecall
  )");
  cluster.load_program(program.words);
  for (std::uint32_t i = 0; i < 16; ++i) {
    cluster.memory().store32(0x4000 + 4 * i, 0xA0000000u + i);
  }
  const ClusterRunResult result = cluster.run(0);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(cluster.memory().load32(0x80000 + 4 * i), 0xA0000000u + i) << i;
  }
  EXPECT_EQ(result.dma_transfers, 1u);
  EXPECT_EQ(result.dma_words, 16u);
  EXPECT_GT(result.dma_wait_cycles, 0u);
}

TEST(ClusterDma, WaitCostMatchesTransferModel) {
  // A long transfer's wait time is startup + len / words_per_cycle minus the
  // few cycles the core spends between trigger and wait.
  Cluster cluster(ri5cy(), one_core_config());
  const asmx::Program program = asmx::assemble(std::string(kDmaEqus) + R"(
    li t0, DMA_SRC
    li t1, 0x4000
    sw t1, 0(t0)
    li t1, 0x80000
    sw t1, 4(t0)
    li t1, 1000
    sw t1, 8(t0)
    sw zero, 12(t0)
    sw zero, 16(t0)
    ecall
  )");
  cluster.load_program(program.words);
  const ClusterRunResult result = cluster.run(0);
  const std::uint64_t model =
      20 + 1000 / 2;  // dma_startup_cycles + len / words_per_cycle
  EXPECT_NEAR(static_cast<double>(result.dma_wait_cycles),
              static_cast<double>(model), 4.0);
}

TEST(ClusterDma, TransfersQueueBackToBack) {
  // Two triggers before the wait: completion time accumulates.
  Cluster cluster(ri5cy(), one_core_config());
  const asmx::Program program = asmx::assemble(std::string(kDmaEqus) + R"(
    li t0, DMA_SRC
    li t1, 0x4000
    sw t1, 0(t0)
    li t1, 0x80000
    sw t1, 4(t0)
    li t1, 600
    sw t1, 8(t0)
    sw zero, 12(t0)        # transfer 1
    li t1, 0x5000
    sw t1, 0(t0)
    li t1, 0x81000
    sw t1, 4(t0)
    sw zero, 12(t0)        # transfer 2 (same length)
    sw zero, 16(t0)
    ecall
  )");
  cluster.load_program(program.words);
  const ClusterRunResult result = cluster.run(0);
  EXPECT_EQ(result.dma_transfers, 2u);
  // Both transfers must be paid for: 2 * (20 + 300), minus the cycles the
  // core spent issuing the second descriptor.
  EXPECT_GT(result.dma_wait_cycles, 2u * 300u);
}

TEST(ClusterDma, DoubleBufferingOverlapsComputeWithTransfer) {
  // Process 4 tiles of 512 words. Blocking: wait for each tile before
  // processing it. Double-buffered: prefetch tile t+1 while summing tile t.
  const std::string blocking = std::string(kDmaEqus) + R"(
    .equ L2, 0x4000
    .equ TILE0, 0x80000
    li s0, 0               # tile index
    li s1, 4
    li a0, 0               # checksum
  tile_loop:
    li t0, DMA_SRC
    slli t1, s0, 11        # tile offset: 512 words = 2048 bytes
    li t2, L2
    add t2, t2, t1
    sw t2, 0(t0)
    li t2, TILE0
    sw t2, 4(t0)
    li t2, 512
    sw t2, 8(t0)
    sw zero, 12(t0)        # trigger
    sw zero, 16(t0)        # wait (blocking)
    li t3, TILE0
    lp.setupi 0, 512, sum_end
    p.lw t4, 4(t3!)
    add a0, a0, t4
  sum_end:
    addi s0, s0, 1
    bne s0, s1, tile_loop
    ecall
  )";
  const std::string overlapped = std::string(kDmaEqus) + R"(
    .equ L2, 0x4000
    .equ TILE0, 0x80000
    .equ TILE1, 0x81000
    # prefetch tile 0 into buffer 0
    li t0, DMA_SRC
    li t2, L2
    sw t2, 0(t0)
    li t2, TILE0
    sw t2, 4(t0)
    li t2, 512
    sw t2, 8(t0)
    sw zero, 12(t0)
    li s0, 0
    li s1, 4
    li a0, 0
    li s2, TILE0           # current buffer
    li s3, TILE1           # next buffer
  tile_loop:
    sw zero, 16(t0)        # wait for current tile
    # prefetch the next tile into the other buffer (if any)
    addi t1, s0, 1
    beq t1, s1, no_prefetch
    slli t1, t1, 11
    li t2, L2
    add t2, t2, t1
    sw t2, 0(t0)
    sw s3, 4(t0)
    li t2, 512
    sw t2, 8(t0)
    sw zero, 12(t0)
  no_prefetch:
    mv t3, s2
    lp.setupi 0, 512, sum_end
    p.lw t4, 4(t3!)
    add a0, a0, t4
  sum_end:
    mv t4, s2              # swap buffers
    mv s2, s3
    mv s3, t4
    addi s0, s0, 1
    bne s0, s1, tile_loop
    ecall
  )";

  Cluster block(ri5cy(), one_core_config());
  block.load_program(asmx::assemble(blocking).words);
  for (std::uint32_t i = 0; i < 4 * 512; ++i) {
    block.memory().store32(0x4000 + 4 * i, i * 3 + 1);
  }
  const ClusterRunResult rb = block.run(0);

  Cluster overlap(ri5cy(), one_core_config());
  overlap.load_program(asmx::assemble(overlapped).words);
  for (std::uint32_t i = 0; i < 4 * 512; ++i) {
    overlap.memory().store32(0x4000 + 4 * i, i * 3 + 1);
  }
  const ClusterRunResult ro = overlap.run(0);

  // Same checksum on both schedules.
  EXPECT_EQ(block.core(0).reg(10), overlap.core(0).reg(10));
  std::uint32_t expected = 0;
  for (std::uint32_t i = 0; i < 4 * 512; ++i) expected += i * 3 + 1;
  EXPECT_EQ(block.core(0).reg(10), expected);
  // Overlap hides most of the transfer latency behind compute.
  EXPECT_LT(ro.cycles + 500, rb.cycles);
  EXPECT_LT(ro.dma_wait_cycles, rb.dma_wait_cycles / 2);
}

TEST(ClusterDma, MisalignedTransferRejected) {
  Cluster cluster(ri5cy(), one_core_config());
  const asmx::Program program = asmx::assemble(std::string(kDmaEqus) + R"(
    li t0, DMA_SRC
    li t1, 0x4002          # misaligned source
    sw t1, 0(t0)
    li t1, 0x80000
    sw t1, 4(t0)
    li t1, 4
    sw t1, 8(t0)
    sw zero, 12(t0)
    ecall
  )");
  cluster.load_program(program.words);
  EXPECT_THROW(cluster.run(0), Error);
}

}  // namespace
}  // namespace iw::rv
