// Decoder fuzzing: for random 32-bit words, decode() either rejects the word
// or produces a Decoded whose re-encoding decodes to the same thing
// (idempotence after one canonicalization step). Also checks that every
// legal decode produces a printable disassembly.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "rvsim/encoding.hpp"

namespace iw::rv {
namespace {

bool equal(const Decoded& a, const Decoded& b) {
  return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 && a.rs2 == b.rs2 &&
         a.rs3 == b.rs3 && a.imm == b.imm && a.imm2 == b.imm2 && a.extra == b.extra;
}

TEST(DecodeFuzz, DecodeEncodeIdempotent) {
  iw::Rng rng(0xF00D);
  int decoded_count = 0;
  for (int trial = 0; trial < 200000; ++trial) {
    const std::uint32_t word = static_cast<std::uint32_t>(rng.next());
    Decoded d;
    try {
      d = decode(word);
    } catch (const Error&) {
      continue;  // illegal word: fine
    }
    ++decoded_count;
    std::uint32_t canonical = 0;
    try {
      canonical = encode(d);
    } catch (const Error& e) {
      FAIL() << "decoded word 0x" << std::hex << word
             << " cannot be re-encoded: " << e.what();
    }
    const Decoded d2 = decode(canonical);
    EXPECT_TRUE(equal(d, d2)) << "word 0x" << std::hex << word << " canonical 0x"
                              << canonical;
  }
  // A healthy fraction of random words hits legal encodings.
  EXPECT_GT(decoded_count, 1000);
}

TEST(DecodeFuzz, LegalDecodesDisassemble) {
  iw::Rng rng(0xBEEF);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint32_t word = static_cast<std::uint32_t>(rng.next());
    try {
      const Decoded d = decode(word);
      EXPECT_FALSE(to_string(d).empty());
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

}  // namespace
}  // namespace iw::rv
