// Decoder fuzzing: for random 32-bit words, decode() either rejects the word
// or produces a Decoded whose re-encoding decodes to the same thing
// (idempotence after one canonicalization step). Also checks that every
// legal decode produces a printable disassembly, and that the static
// analyzer's ISA verdict for a word agrees with what Core::step actually
// raises when executing it.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/core.hpp"
#include "rvsim/encoding.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/timing.hpp"

namespace iw::rv {
namespace {

bool equal(const Decoded& a, const Decoded& b) {
  return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 && a.rs2 == b.rs2 &&
         a.rs3 == b.rs3 && a.imm == b.imm && a.imm2 == b.imm2 && a.extra == b.extra;
}

TEST(DecodeFuzz, DecodeEncodeIdempotent) {
  iw::Rng rng(0xF00D);
  int decoded_count = 0;
  for (int trial = 0; trial < 200000; ++trial) {
    const std::uint32_t word = static_cast<std::uint32_t>(rng.next());
    Decoded d;
    try {
      d = decode(word);
    } catch (const Error&) {
      continue;  // illegal word: fine
    }
    ++decoded_count;
    std::uint32_t canonical = 0;
    try {
      canonical = encode(d);
    } catch (const Error& e) {
      FAIL() << "decoded word 0x" << std::hex << word
             << " cannot be re-encoded: " << e.what();
    }
    const Decoded d2 = decode(canonical);
    EXPECT_TRUE(equal(d, d2)) << "word 0x" << std::hex << word << " canonical 0x"
                              << canonical;
  }
  // A healthy fraction of random words hits legal encodings.
  EXPECT_GT(decoded_count, 1000);
}

TEST(DecodeFuzz, LegalDecodesDisassemble) {
  iw::Rng rng(0xBEEF);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint32_t word = static_cast<std::uint32_t>(rng.next());
    try {
      const Decoded d = decode(word);
      EXPECT_FALSE(to_string(d).empty());
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

// Analyzer/simulator agreement: for random words placed at the entry point,
// the analyzer's static ISA verdict (illegal-word or unsupported-instruction
// diagnostic at pc 0) must match whether Core::step throws the profile's
// decode/unsupported error when executing that word. Other diagnostic kinds
// (wild branch targets, statically-known bad accesses, hwloop shape) are
// excluded on both sides: a single step never reaches them, and runtime
// memory faults are not ISA verdicts.
TEST(DecodeFuzz, AnalyzerAgreesWithCoreOnIsaSupport) {
  Decoded halt{};
  halt.op = Op::kEcall;
  const std::uint32_t ecall_word = encode(halt);
  constexpr std::size_t kMem = 4096;

  iw::Rng rng(0xA11A);
  for (const TimingProfile& profile : {cortex_m4f(), ibex(), ri5cy()}) {
    Memory analyzer_mem(kMem);
    Memory core_mem(kMem);
    Core core(profile, core_mem);
    int isa_rejected = 0;
    int accepted = 0;
    for (int trial = 0; trial < 12000; ++trial) {
      const std::uint32_t word = static_cast<std::uint32_t>(rng.next());

      // Dynamic side: execute the word once with every register pointing at
      // a safe, aligned mid-image address so legal loads/stores succeed and
      // any throw is attributable to the fetch/decode path.
      core_mem.store32(0, word);
      core_mem.store32(4, ecall_word);
      core.reset(0, kMem / 2);
      for (int r = 1; r < 32; ++r) core.set_reg(r, kMem / 2);
      bool dynamic_reject = false;
      try {
        core.step();
      } catch (const Error& e) {
        const std::string msg = e.what();
        dynamic_reject =
            msg.find("unsupported instruction") != std::string::npos ||
            msg.find("decode: illegal instruction word") != std::string::npos;
      }

      // Static side: only ISA-kind error diagnostics for the word itself.
      analyzer_mem.store32(0, word);
      analyzer_mem.store32(4, ecall_word);
      const analysis::AnalysisReport report =
          analysis::analyze(analyzer_mem, 0, profile);
      bool static_reject = false;
      for (const analysis::Diagnostic& d : report.diagnostics) {
        if (d.pc != 0 || d.severity != analysis::Severity::kError) continue;
        if (d.kind == analysis::DiagKind::kIllegalWord ||
            d.kind == analysis::DiagKind::kUnsupportedInstruction) {
          static_reject = true;
        }
      }

      EXPECT_EQ(static_reject, dynamic_reject)
          << profile.name << " word 0x" << std::hex << word;
      if (dynamic_reject) {
        ++isa_rejected;
      } else {
        ++accepted;
      }
    }
    // The random stream must exercise both sides of the verdict.
    EXPECT_GT(isa_rejected, 100) << profile.name;
    EXPECT_GT(accepted, 100) << profile.name;
  }
}

}  // namespace
}  // namespace iw::rv
