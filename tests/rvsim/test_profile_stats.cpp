#include "rvsim/profile_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "asmx/assembler.hpp"
#include "rvsim/machine.hpp"

namespace iw::rv {
namespace {

TEST(InstructionHistogram, CountsAndClasses) {
  InstructionHistogram h;
  h.record(Op::kAdd);
  h.record(Op::kAdd);
  h.record(Op::kLw);
  h.record(Op::kMul);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(Op::kAdd), 2u);
  EXPECT_EQ(h.class_count(OpClass::kAlu), 2u);
  EXPECT_EQ(h.class_count(OpClass::kLoad), 1u);
  EXPECT_DOUBLE_EQ(h.class_fraction(OpClass::kMul), 0.25);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.class_fraction(OpClass::kAlu), 0.0);
}

TEST(InstructionHistogram, SortedByCount) {
  InstructionHistogram h;
  for (int i = 0; i < 5; ++i) h.record(Op::kLw);
  for (int i = 0; i < 3; ++i) h.record(Op::kAdd);
  h.record(Op::kMul);
  const auto sorted = h.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, Op::kLw);
  EXPECT_EQ(sorted[1].first, Op::kAdd);
  EXPECT_EQ(sorted[2].first, Op::kMul);
}

TEST(InstructionHistogram, AttachedToCoreSeesEveryInstruction) {
  Machine machine(ri5cy(), 1 << 16);
  machine.load_program(asmx::assemble(R"(
      li t0, 10
  loop:
      addi t0, t0, -1
      bnez t0, loop
      ecall
  )").words);
  InstructionHistogram h;
  machine.core().set_histogram(&h);
  const RunResult run = machine.run(0);
  EXPECT_EQ(h.total(), run.instructions);
  EXPECT_EQ(h.count(Op::kAddi), 11u);  // li + 10 decrements
  EXPECT_EQ(h.count(Op::kBne), 10u);
  EXPECT_EQ(h.count(Op::kEcall), 1u);
}

TEST(InstructionHistogram, ReportMentionsTopOpcodes) {
  InstructionHistogram h;
  for (int i = 0; i < 7; ++i) h.record(Op::kMul);
  std::ostringstream os;
  h.write_report(os);
  EXPECT_NE(os.str().find("mul"), std::string::npos);
  EXPECT_NE(os.str().find("7"), std::string::npos);
}

}  // namespace
}  // namespace iw::rv
