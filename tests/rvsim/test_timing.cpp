#include "rvsim/timing.hpp"

#include <gtest/gtest.h>

namespace iw::rv {
namespace {

TEST(Timing, ProfileNamesAndFrequencies) {
  EXPECT_EQ(cortex_m4f().name, "cortex-m4f");
  EXPECT_DOUBLE_EQ(cortex_m4f().freq_hz, 64e6);
  EXPECT_EQ(ibex().name, "ibex");
  EXPECT_DOUBLE_EQ(ibex().freq_hz, 100e6);
  EXPECT_EQ(ri5cy().name, "ri5cy");
  EXPECT_DOUBLE_EQ(ri5cy().freq_hz, 100e6);
}

TEST(Timing, IbexLacksAllExtensions) {
  const TimingProfile p = ibex();
  EXPECT_FALSE(p.supports(Op::kPMac));
  EXPECT_FALSE(p.supports(Op::kPAbs));
  EXPECT_FALSE(p.supports(Op::kPMin));
  EXPECT_FALSE(p.supports(Op::kPExths));
  EXPECT_FALSE(p.supports(Op::kPLwPost));
  EXPECT_FALSE(p.supports(Op::kLpSetupi));
  EXPECT_FALSE(p.supports(Op::kPvDotspH));
  EXPECT_FALSE(p.supports(Op::kFaddS));
  EXPECT_TRUE(p.supports(Op::kMul));
  EXPECT_TRUE(p.supports(Op::kLw));
}

TEST(Timing, CortexM4HasMacPostincFpuButNoHwloop) {
  const TimingProfile p = cortex_m4f();
  EXPECT_TRUE(p.supports(Op::kPMac));
  EXPECT_TRUE(p.supports(Op::kPLwPost));
  EXPECT_TRUE(p.supports(Op::kFmaddS));
  EXPECT_FALSE(p.supports(Op::kLpSetup));
  EXPECT_FALSE(p.supports(Op::kPvDotspH));
}

TEST(Timing, Ri5cySupportsFullExtensionSet) {
  const TimingProfile p = ri5cy();
  EXPECT_TRUE(p.supports(Op::kPMac));
  EXPECT_TRUE(p.supports(Op::kPLwPost));
  EXPECT_TRUE(p.supports(Op::kLpSetup));
  EXPECT_TRUE(p.supports(Op::kPvSdotspH));
  EXPECT_TRUE(p.supports(Op::kPClip));
  EXPECT_FALSE(p.supports(Op::kFaddS));  // Mr. Wolf cluster fixed-point focus
}

TEST(Timing, BaseCostUsesClassFields) {
  TimingProfile p;
  p.mul = 3;
  p.load = 2;
  p.div = 37;
  EXPECT_EQ(p.base_cost(op_class(Op::kMul)), 3);
  EXPECT_EQ(p.base_cost(op_class(Op::kLw)), 2);
  EXPECT_EQ(p.base_cost(op_class(Op::kDivu)), 37);
  EXPECT_EQ(p.base_cost(op_class(Op::kAdd)), 1);
}

TEST(Timing, IbexMultiplierSlowerThanRi5cy) {
  EXPECT_GT(ibex().mul, ri5cy().mul);
}

}  // namespace
}  // namespace iw::rv
