#include "rvsim/timing.hpp"

#include <gtest/gtest.h>

#include "asmx/assembler.hpp"
#include "rvsim/cluster.hpp"
#include "rvsim/machine.hpp"

namespace iw::rv {
namespace {

TEST(Timing, ProfileNamesAndFrequencies) {
  EXPECT_EQ(cortex_m4f().name, "cortex-m4f");
  EXPECT_DOUBLE_EQ(cortex_m4f().freq_hz, 64e6);
  EXPECT_EQ(ibex().name, "ibex");
  EXPECT_DOUBLE_EQ(ibex().freq_hz, 100e6);
  EXPECT_EQ(ri5cy().name, "ri5cy");
  EXPECT_DOUBLE_EQ(ri5cy().freq_hz, 100e6);
}

TEST(Timing, IbexLacksAllExtensions) {
  const TimingProfile p = ibex();
  EXPECT_FALSE(p.supports(Op::kPMac));
  EXPECT_FALSE(p.supports(Op::kPAbs));
  EXPECT_FALSE(p.supports(Op::kPMin));
  EXPECT_FALSE(p.supports(Op::kPExths));
  EXPECT_FALSE(p.supports(Op::kPLwPost));
  EXPECT_FALSE(p.supports(Op::kLpSetupi));
  EXPECT_FALSE(p.supports(Op::kPvDotspH));
  EXPECT_FALSE(p.supports(Op::kFaddS));
  EXPECT_TRUE(p.supports(Op::kMul));
  EXPECT_TRUE(p.supports(Op::kLw));
}

TEST(Timing, CortexM4HasMacPostincFpuButNoHwloop) {
  const TimingProfile p = cortex_m4f();
  EXPECT_TRUE(p.supports(Op::kPMac));
  EXPECT_TRUE(p.supports(Op::kPLwPost));
  EXPECT_TRUE(p.supports(Op::kFmaddS));
  EXPECT_FALSE(p.supports(Op::kLpSetup));
  EXPECT_FALSE(p.supports(Op::kPvDotspH));
}

TEST(Timing, Ri5cySupportsFullExtensionSet) {
  const TimingProfile p = ri5cy();
  EXPECT_TRUE(p.supports(Op::kPMac));
  EXPECT_TRUE(p.supports(Op::kPLwPost));
  EXPECT_TRUE(p.supports(Op::kLpSetup));
  EXPECT_TRUE(p.supports(Op::kPvSdotspH));
  EXPECT_TRUE(p.supports(Op::kPClip));
  EXPECT_FALSE(p.supports(Op::kFaddS));  // Mr. Wolf cluster fixed-point focus
}

TEST(Timing, BaseCostUsesClassFields) {
  TimingProfile p;
  p.mul = 3;
  p.load = 2;
  p.div = 37;
  EXPECT_EQ(p.base_cost(op_class(Op::kMul)), 3);
  EXPECT_EQ(p.base_cost(op_class(Op::kLw)), 2);
  EXPECT_EQ(p.base_cost(op_class(Op::kDivu)), 37);
  EXPECT_EQ(p.base_cost(op_class(Op::kAdd)), 1);
}

TEST(Timing, IbexMultiplierSlowerThanRi5cy) {
  EXPECT_GT(ibex().mul, ri5cy().mul);
}

// --- Golden cycle counts ---------------------------------------------------
// Exact counts for a deterministic RV32IM micro-program, captured from the
// straight-line interpreter before the pre-decoded instruction cache landed.
// The decode cache is a host-speed optimisation only: any drift in these
// numbers means the simulated timing model changed, which is a bug.
//
// The program exercises mul, div, taken/fall-through branches, a load-use
// dependency (stalls on RI5CY), back-to-back loads (pipelined on the M4),
// and — on the cluster — TCDM slots strided so pairs of harts share a bank.
constexpr const char* kGoldenProgram = R"(
    .equ BUF, 0x80100
    csrr t6, mhartid
    slli t6, t6, 4
    li   t0, 0            # accumulator
    li   t1, 40           # iterations
    li   t2, BUF
    add  t2, t2, t6       # per-hart slot, 4-word stride
    li   t3, 3
loop:
    mul  t4, t1, t3
    sw   t4, 0(t2)
    lw   t5, 0(t2)
    add  t0, t0, t5       # load-use dependency
    lw   a1, 0(t2)
    lw   a2, 0(t2)        # back-to-back loads
    add  a3, a1, a2
    addi t1, t1, -1
    bne  t1, zero, loop
    divu a0, t0, t3
    ecall
)";

struct GoldenCounts {
  TimingProfile profile;
  std::uint64_t cycles;
  std::uint64_t instructions;
  std::uint64_t load_use_stalls;
};

TEST(Timing, GoldenCountsSingleCore) {
  const asmx::Program program = asmx::assemble(kGoldenProgram);
  const GoldenCounts expected[] = {
      {cortex_m4f(), 535, 370, 0},
      {ibex(), 645, 370, 0},
      {ri5cy(), 601, 370, 80},
  };
  for (const GoldenCounts& e : expected) {
    Machine machine(e.profile);
    machine.load_program(program.words);
    const RunResult r = machine.run(0);
    EXPECT_EQ(r.cycles, e.cycles) << e.profile.name;
    EXPECT_EQ(r.instructions, e.instructions) << e.profile.name;
    EXPECT_EQ(machine.core().load_use_stalls(), e.load_use_stalls) << e.profile.name;
    EXPECT_EQ(machine.core().taken_branches(), 39u) << e.profile.name;
  }
}

TEST(Timing, GoldenCountsRi5cyCluster8) {
  const asmx::Program program = asmx::assemble(kGoldenProgram);
  Cluster cluster(ri5cy(), ClusterConfig{});
  cluster.load_program(program.words);
  const ClusterRunResult r = cluster.run(0);
  EXPECT_EQ(r.cycles, 604u);
  EXPECT_EQ(r.total_instructions, 2960u);
  EXPECT_EQ(r.bank_conflict_stalls, 16u);
  EXPECT_EQ(r.barrier_wait_cycles, 0u);
}

}  // namespace
}  // namespace iw::rv
