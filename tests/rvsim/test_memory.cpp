#include "rvsim/memory.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iw::rv {
namespace {

TEST(Memory, ReadBackWrites) {
  Memory mem(1024);
  mem.store32(0, 0xDEADBEEFu);
  EXPECT_EQ(mem.load32(0), 0xDEADBEEFu);
  mem.store16(8, 0x1234);
  EXPECT_EQ(mem.load16(8), 0x1234);
  mem.store8(3, 0xAB);
  EXPECT_EQ(mem.load8(3), 0xAB);
}

TEST(Memory, LittleEndianLayout) {
  Memory mem(16);
  mem.store32(0, 0x04030201u);
  EXPECT_EQ(mem.load8(0), 0x01);
  EXPECT_EQ(mem.load8(3), 0x04);
  EXPECT_EQ(mem.load16(2), 0x0403);
}

TEST(Memory, BoundsChecked) {
  Memory mem(64);
  EXPECT_THROW(mem.load32(64), Error);
  EXPECT_THROW(mem.store32(61, 0), Error);
  EXPECT_THROW(mem.load8(64), Error);
  EXPECT_NO_THROW(mem.load32(60));
}

TEST(Memory, AlignmentChecked) {
  Memory mem(64);
  EXPECT_THROW(mem.load32(2), Error);
  EXPECT_THROW(mem.load16(1), Error);
  EXPECT_THROW(mem.store32(5, 0), Error);
}

TEST(Memory, WordHelpersRoundTrip) {
  Memory mem(256);
  const std::vector<std::int32_t> values{-1, 0, 42, -100000};
  mem.write_words(16, values);
  EXPECT_EQ(mem.read_words_i32(16, 4), values);

  const std::vector<float> floats{1.5f, -2.25f, 0.0f};
  mem.write_words_f32(64, floats);
  EXPECT_EQ(mem.read_words_f32(64, 3), floats);
}

TEST(Memory, ZeroInitialized) {
  const Memory mem(128);
  for (std::uint32_t a = 0; a < 128; a += 4) EXPECT_EQ(mem.load32(a), 0u);
}

}  // namespace
}  // namespace iw::rv
