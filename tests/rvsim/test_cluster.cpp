#include "rvsim/cluster.hpp"

#include <gtest/gtest.h>

#include <string>

#include "asmx/assembler.hpp"
#include "common/error.hpp"

namespace iw::rv {
namespace {

ClusterConfig small_config(int cores = 8) {
  ClusterConfig cfg;
  cfg.num_cores = cores;
  cfg.mem_bytes = 1u << 20;
  return cfg;
}

TEST(Cluster, EachCoreSeesItsHartId) {
  Cluster cluster(ri5cy(), small_config());
  // Every core writes its hart id into slot[id] of an array in TCDM.
  const asmx::Program program = asmx::assemble(R"(
      .equ OUT, 0x80000
      csrr t0, mhartid
      slli t1, t0, 2
      li t2, OUT
      add t1, t1, t2
      sw t0, 0(t1)
      ecall
  )");
  cluster.load_program(program.words);
  const ClusterRunResult result = cluster.run(0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cluster.memory().load32(0x80000 + 4 * static_cast<std::uint32_t>(i)),
              static_cast<std::uint32_t>(i));
  }
  EXPECT_GT(result.cycles, 0u);
  EXPECT_EQ(result.per_core_cycles.size(), 8u);
}

TEST(Cluster, BarrierSynchronizesPhases) {
  Cluster cluster(ri5cy(), small_config());
  // Phase 1: core i writes (i+1)^2 to slot i. Barrier. Phase 2: core i reads
  // the slot of core (i+1) mod 8 and stores it into a second array. Without a
  // working barrier some reads would see zeros.
  const asmx::Program program = asmx::assemble(R"(
      .equ IN, 0x80000
      .equ OUT, 0x80100
      .equ BARRIER, 0xFFFC
      csrr t0, mhartid
      addi t1, t0, 1
      mul t2, t1, t1        # (id+1)^2
      slli t3, t0, 2
      li t4, IN
      add t3, t3, t4
      sw t2, 0(t3)
      li t5, BARRIER
      sw zero, 0(t5)        # barrier
      addi t1, t0, 1
      andi t1, t1, 7        # neighbour id
      slli t1, t1, 2
      li t4, IN
      add t1, t1, t4
      lw t2, 0(t1)
      slli t3, t0, 2
      li t4, OUT
      add t3, t3, t4
      sw t2, 0(t3)
      ecall
  )");
  cluster.load_program(program.words);
  cluster.run(0);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::uint32_t neighbour = (i + 1) % 8;
    EXPECT_EQ(cluster.memory().load32(0x80100 + 4 * i),
              (neighbour + 1) * (neighbour + 1))
        << "core " << i;
  }
}

TEST(Cluster, BarrierWaitCyclesAccounted) {
  Cluster cluster(ri5cy(), small_config());
  // Core 0 does extra work before the barrier; everyone else waits for it.
  const asmx::Program program = asmx::assemble(R"(
      .equ BARRIER, 0xFFFC
      csrr t0, mhartid
      bnez t0, barrier
      li t1, 200
  spin:
      addi t1, t1, -1
      bnez t1, spin
  barrier:
      li t5, BARRIER
      sw zero, 0(t5)
      ecall
  )");
  cluster.load_program(program.words);
  const ClusterRunResult result = cluster.run(0);
  EXPECT_GT(result.barrier_wait_cycles, 7u * 300u);
}

TEST(Cluster, SameBankContentionCostsMoreThanSpread) {
  const std::string same_addr = R"(
      .equ TCDM, 0x80000
      li t0, TCDM
      lp.setupi 0, 64, end
      lw t1, 0(t0)
  end:
      ecall
  )";
  // Each core reads its own word; 16 banks spread 8 cores conflict-free.
  const std::string spread = R"(
      .equ TCDM, 0x80000
      csrr t0, mhartid
      slli t0, t0, 2
      li t1, TCDM
      add t0, t0, t1
      lp.setupi 0, 64, end
      lw t1, 0(t0)
  end:
      ecall
  )";
  Cluster same(ri5cy(), small_config());
  same.load_program(asmx::assemble(same_addr).words);
  const ClusterRunResult rs = same.run(0);
  Cluster nice(ri5cy(), small_config());
  nice.load_program(asmx::assemble(spread).words);
  const ClusterRunResult rn = nice.run(0);
  EXPECT_GT(rs.bank_conflict_stalls, 0u);
  EXPECT_LT(rn.bank_conflict_stalls, rs.bank_conflict_stalls);
  EXPECT_GT(rs.cycles, rn.cycles);
}

TEST(Cluster, DeadlockDetectedWhenCoreHaltsBeforeBarrier) {
  Cluster cluster(ri5cy(), small_config());
  const asmx::Program program = asmx::assemble(R"(
      .equ BARRIER, 0xFFFC
      csrr t0, mhartid
      beqz t0, quit        # core 0 never reaches the barrier
      li t5, BARRIER
      sw zero, 0(t5)
  quit:
      ecall
  )");
  cluster.load_program(program.words);
  EXPECT_THROW(cluster.run(0), Error);
}

TEST(Cluster, SingleCoreClusterMatchesMachineSemantics) {
  Cluster cluster(ri5cy(), small_config(1));
  const asmx::Program program = asmx::assemble(R"(
      li a0, 0
      li t0, 1
      li t1, 101
  loop:
      add a0, a0, t0
      addi t0, t0, 1
      bne t0, t1, loop
      ecall
  )");
  cluster.load_program(program.words);
  cluster.run(0);
  EXPECT_EQ(cluster.core(0).reg(10), 5050u);
}

TEST(Cluster, ParallelWorkFinishesFasterThanSerial) {
  // Sum 4096 array elements: 8 cores with static partitioning vs 1 core.
  const std::string parallel = R"(
      .equ DATA, 0x80000
      .equ OUT, 0x84000
      csrr t0, mhartid
      li t1, 512           # elements per core
      mul t2, t0, t1
      slli t2, t2, 2
      li t3, DATA
      add t2, t2, t3       # this core's chunk
      li a0, 0
      lp.setup 0, t1, end
      p.lw t4, 4(t2!)
      add a0, a0, t4
  end:
      slli t5, t0, 2
      li t6, OUT
      add t5, t5, t6
      sw a0, 0(t5)
      ecall
  )";
  const std::string serial = R"(
      .equ DATA, 0x80000
      .equ OUT, 0x84000
      li t1, 4096
      li t2, DATA
      li a0, 0
      lp.setup 0, t1, end
      p.lw t4, 4(t2!)
      add a0, a0, t4
  end:
      li t6, OUT
      sw a0, 0(t6)
      ecall
  )";
  Cluster par(ri5cy(), small_config(8));
  par.load_program(asmx::assemble(parallel).words);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    par.memory().store32(0x80000 + 4 * i, i + 1);
  }
  const ClusterRunResult rp = par.run(0);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 8; ++i) total += par.memory().load32(0x84000 + 4 * i);
  EXPECT_EQ(total, 4096ull * 4097ull / 2ull);

  Cluster ser(ri5cy(), small_config(1));
  ser.load_program(asmx::assemble(serial).words);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    ser.memory().store32(0x80000 + 4 * i, i + 1);
  }
  const ClusterRunResult rs = ser.run(0);
  EXPECT_EQ(ser.memory().load32(0x84000), 4096u * 4097u / 2u);
  // Expect a healthy (though sub-linear) speedup.
  EXPECT_GT(rs.cycles, 4u * rp.cycles);
}

TEST(Cluster, ConfigValidation) {
  ClusterConfig bad = small_config();
  bad.num_cores = 0;
  EXPECT_THROW(Cluster(ri5cy(), bad), Error);
  bad = small_config();
  bad.barrier_addr = 0x2;  // misaligned
  EXPECT_THROW(Cluster(ri5cy(), bad), Error);
}

}  // namespace
}  // namespace iw::rv
