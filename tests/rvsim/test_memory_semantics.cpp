// Property tests for load/store semantics: sign/zero extension, width
// truncation, and alignment behaviour, against host golden models.
#include <gtest/gtest.h>

#include "asmx/assembler.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "rvsim/machine.hpp"

namespace iw::rv {
namespace {

/// Stores `value` with `store_op`, reloads it with `load_op`, returns a0.
std::uint32_t store_load(const std::string& store_op, const std::string& load_op,
                         std::uint32_t value) {
  const asmx::Program program = asmx::assemble(
      "lw t0, 0x400(zero)\n" +
      store_op + " t0, 0x500(zero)\n" +
      load_op + " a0, 0x500(zero)\n"
      "ecall\n");
  Machine machine(ri5cy(), 1 << 16);
  machine.load_program(program.words);
  machine.memory().store32(0x400, value);
  machine.run(0);
  return machine.core().reg(10);
}

TEST(MemorySemantics, ByteSignAndZeroExtension) {
  iw::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t byte = v & 0xFF;
    EXPECT_EQ(store_load("sb", "lbu", v), byte);
    EXPECT_EQ(store_load("sb", "lb", v),
              static_cast<std::uint32_t>(static_cast<std::int32_t>(
                  static_cast<std::int8_t>(byte))));
  }
}

TEST(MemorySemantics, HalfwordSignAndZeroExtension) {
  iw::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t half = v & 0xFFFF;
    EXPECT_EQ(store_load("sh", "lhu", v), half);
    EXPECT_EQ(store_load("sh", "lh", v),
              static_cast<std::uint32_t>(static_cast<std::int32_t>(
                  static_cast<std::int16_t>(half))));
  }
}

TEST(MemorySemantics, WordRoundTrip) {
  iw::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.next());
    EXPECT_EQ(store_load("sw", "lw", v), v);
  }
}

TEST(MemorySemantics, NarrowStoreLeavesNeighboursIntact) {
  const asmx::Program program = asmx::assemble(R"(
      li t0, 0x11223344
      sw t0, 0x500(zero)
      li t1, 0xAA
      sb t1, 0x501(zero)       # overwrite byte 1 only
      lw a0, 0x500(zero)
      ecall
  )");
  Machine machine(ri5cy(), 1 << 16);
  machine.load_program(program.words);
  machine.run(0);
  EXPECT_EQ(machine.core().reg(10), 0x1122AA44u);
}

TEST(MemorySemantics, MisalignedAccessFaults) {
  for (const char* op : {"lw a0, 0x501(zero)\n", "lh a0, 0x501(zero)\n",
                         "sw a0, 0x502(zero)\n"}) {
    Machine machine(ri5cy(), 1 << 16);
    machine.load_program(asmx::assemble(std::string(op) + "ecall\n").words);
    EXPECT_THROW(machine.run(0), Error) << op;
  }
}

TEST(MemorySemantics, OutOfBoundsFaults) {
  Machine machine(ri5cy(), 1 << 12);  // 4 kB memory
  machine.load_program(asmx::assemble(R"(
      li t0, 0x2000
      lw a0, 0(t0)
      ecall
  )").words);
  EXPECT_THROW(machine.run(0), Error);
}

TEST(MemorySemantics, PostIncrementUsesPreIncrementAddress) {
  // p.lw reads at the base address and bumps it afterwards; a second p.lw
  // must read the next word, and p.sh must honour the same convention.
  const asmx::Program program = asmx::assemble(R"(
      li t0, 0x500
      li t1, 7
      sw t1, 0x500(zero)
      li t1, 9
      sw t1, 0x504(zero)
      p.lw a0, 4(t0!)
      p.lw a1, 4(t0!)
      mv a2, t0
      ecall
  )");
  Machine machine(ri5cy(), 1 << 16);
  machine.load_program(program.words);
  machine.run(0);
  EXPECT_EQ(machine.core().reg(10), 7u);
  EXPECT_EQ(machine.core().reg(11), 9u);
  EXPECT_EQ(machine.core().reg(12), 0x508u);
}

}  // namespace
}  // namespace iw::rv
