// Decode-cache coherence: the pre-decoded instruction cache must observe
// every path that can rewrite code words (load_program, write_words,
// store32/write_block, simulated stores) and never serve a stale decode.
#include "rvsim/predecode.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "asmx/assembler.hpp"
#include "rvsim/cluster.hpp"
#include "rvsim/machine.hpp"

namespace iw::rv {
namespace {

constexpr std::uint32_t kOut = 0x1000;

asmx::Program store_const_program(int value) {
  return asmx::assemble("    li t0, " + std::to_string(value) +
                        "\n    li t1, " + std::to_string(kOut) +
                        "\n    sw t0, 0(t1)\n    ecall\n");
}

/// Index of the single word where the two variants differ.
std::size_t differing_word(const asmx::Program& a, const asmx::Program& b) {
  EXPECT_EQ(a.words.size(), b.words.size());
  std::size_t index = a.words.size();
  for (std::size_t i = 0; i < a.words.size(); ++i) {
    if (a.words[i] != b.words[i]) {
      EXPECT_EQ(index, a.words.size()) << "programs differ in more than one word";
      index = i;
    }
  }
  EXPECT_LT(index, a.words.size());
  return index;
}

TEST(Predecode, MachineReloadExecutesNewProgram) {
  Machine machine(ri5cy());
  machine.load_program(store_const_program(111).words);
  machine.run(0);
  ASSERT_EQ(machine.memory().load32(kOut), 111u);

  // Reloading over the already-decoded region must drop the cached decodes.
  machine.load_program(store_const_program(222).words);
  machine.run(0);
  EXPECT_EQ(machine.memory().load32(kOut), 222u);
}

TEST(Predecode, MachineWriteWordsPatchesOneInstruction) {
  const asmx::Program before = store_const_program(7);
  const asmx::Program after = store_const_program(19);
  const std::size_t patch = differing_word(before, after);

  Machine machine(ri5cy());
  machine.load_program(before.words);
  machine.run(0);
  ASSERT_EQ(machine.memory().load32(kOut), 7u);

  const std::uint32_t word = after.words[patch];
  machine.memory().write_words(static_cast<std::uint32_t>(4 * patch), {&word, 1});
  machine.run(0);
  EXPECT_EQ(machine.memory().load32(kOut), 19u);
}

TEST(Predecode, MachineStore32PatchesOneInstruction) {
  const asmx::Program before = store_const_program(3);
  const asmx::Program after = store_const_program(250);
  const std::size_t patch = differing_word(before, after);

  Machine machine(cortex_m4f());
  machine.load_program(before.words);
  machine.run(0);
  ASSERT_EQ(machine.memory().load32(kOut), 3u);

  machine.memory().store32(static_cast<std::uint32_t>(4 * patch), after.words[patch]);
  machine.run(0);
  EXPECT_EQ(machine.memory().load32(kOut), 250u);
}

TEST(Predecode, MachineWriteBlockPatchesProgram) {
  const asmx::Program before = store_const_program(8);
  const asmx::Program after = store_const_program(4097);

  Machine machine(ibex());
  machine.load_program(before.words);
  machine.run(0);
  ASSERT_EQ(machine.memory().load32(kOut), 8u);

  machine.memory().write_block(
      0, {reinterpret_cast<const std::uint8_t*>(after.words.data()), 4 * after.words.size()});
  machine.run(0);
  EXPECT_EQ(machine.memory().load32(kOut), 4097u);
}

TEST(Predecode, SelfModifyingStoreInvalidatesCachedDecode) {
  // Pass 1 executes `addi s0, s0, 1` at `patch` (which caches its decode),
  // then overwrites that word with `addi s0, s0, 100`. Pass 2 must execute
  // the rewritten instruction: s0 = 1 + 100. A stale cache would yield 2.
  const asmx::Program program = asmx::assemble(R"(
      .equ OUT, 0x1000
      li   s0, 0
      li   s1, 2            # two passes
      la   s2, patch
      la   s3, repl
      lw   s3, 0(s3)        # replacement instruction word
  loop:
  patch:
      addi s0, s0, 1
      sw   s3, 0(s2)        # rewrite `patch` for the next pass
      addi s1, s1, -1
      bne  s1, zero, loop
      li   t0, OUT
      sw   s0, 0(t0)
      ecall
  repl:
      addi s0, s0, 100      # data: never reached as code from here
  )");

  for (const TimingProfile& profile : {cortex_m4f(), ibex(), ri5cy()}) {
    Machine machine(profile);
    machine.load_program(program.words);
    machine.run(0);
    EXPECT_EQ(machine.memory().load32(0x1000), 101u) << profile.name;
  }
}

TEST(Predecode, ClusterReloadExecutesNewProgram) {
  ClusterConfig config;
  config.num_cores = 4;
  Cluster cluster(ri5cy(), config);

  // Every core writes `value` into its own TCDM slot.
  const auto per_hart_program = [](int value) {
    return asmx::assemble(R"(
        .equ OUT, 0x80000
        csrr t0, mhartid
        slli t1, t0, 2
        li   t2, OUT
        add  t1, t1, t2
        li   t3, )" + std::to_string(value) + R"(
        sw   t3, 0(t1)
        ecall
    )");
  };

  cluster.load_program(per_hart_program(33).words);
  cluster.run(0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(cluster.memory().load32(0x80000 + 4 * i), 33u);
  }

  // Every core's private decode cache must see the reload.
  cluster.load_program(per_hart_program(44).words);
  cluster.run(0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.memory().load32(0x80000 + 4 * i), 44u);
  }
}

TEST(Predecode, ClusterWriteWordsPatchesOneInstruction) {
  const asmx::Program before = store_const_program(5);
  const asmx::Program after = store_const_program(77);
  const std::size_t patch = differing_word(before, after);

  ClusterConfig config;
  config.num_cores = 2;
  Cluster cluster(ri5cy(), config);
  cluster.load_program(before.words);
  cluster.run(0);
  ASSERT_EQ(cluster.memory().load32(kOut), 5u);

  const std::uint32_t word = after.words[patch];
  cluster.memory().write_words(static_cast<std::uint32_t>(4 * patch), {&word, 1});
  cluster.run(0);
  EXPECT_EQ(cluster.memory().load32(kOut), 77u);
}

TEST(Predecode, StoresAboveTheDecodedRegionDoNotInvalidate) {
  // Behavioural guard for the observer fast path: data stores far above the
  // code must leave cached decodes usable (the program still runs, and the
  // cache entry for pc=0 stays decoded).
  Machine machine(ri5cy());
  const asmx::Program program = store_const_program(9);
  machine.load_program(program.words);
  machine.run(0);
  ASSERT_EQ(machine.memory().load32(kOut), 9u);

  for (std::uint32_t i = 0; i < 64; ++i) {
    machine.memory().store32(0x40000 + 4 * i, 0xdeadbeefu);
  }
  const RunResult again = machine.run(0);
  EXPECT_EQ(machine.memory().load32(kOut), 9u);
  EXPECT_GT(again.instructions, 0u);
}

TEST(Predecode, InvalidateAllForcesRedecode) {
  Machine machine(ri5cy());
  machine.load_program(store_const_program(12).words);
  machine.run(0);
  machine.core().decode_cache().invalidate_all();
  machine.run(0);
  EXPECT_EQ(machine.memory().load32(kOut), 12u);
}

}  // namespace
}  // namespace iw::rv
