// Superblock trace engine (rvsim/trace.hpp): behavioral tests for the parts
// the golden-count suites cannot pin — invalidation under self-modifying
// stores mid-run, hardware-loop re-arm inside a compiled trace, trace-table
// survival across Machine reset/reload, and budget exhaustion while a trace
// is executing. Every test's oracle is the pure interpreter: the same
// program with traces off must produce bit-identical cycles, instruction
// counts and architectural state.
#include "rvsim/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "asmx/assembler.hpp"
#include "common/error.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/machine.hpp"

namespace iw::rv {
namespace {

struct RunOutcome {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint32_t s0 = 0;
  std::uint64_t trace_instructions = 0;
  std::uint64_t compiled = 0;
  std::uint64_t invalidated = 0;
};

RunOutcome run_once(const asmx::Program& program, bool traces,
                    std::uint64_t budget = 10'000'000) {
  analysis::install_load_verifier();
  Machine machine(ri5cy());
  machine.set_trace_mode(traces);
  machine.load_program(std::span<const std::uint32_t>(program.words),
                       program.base);
  const RunResult r = machine.run(program.symbol("main"), budget);
  RunOutcome out;
  out.cycles = r.cycles;
  out.instructions = r.instructions;
  out.s0 = machine.core().reg(8);
  out.trace_instructions = machine.core().trace_instructions();
  if (machine.trace_space() != nullptr) {
    out.compiled = machine.trace_space()->stats().compiled;
    out.invalidated = machine.trace_space()->stats().invalidated;
  }
  return out;
}

TEST(Trace, HotLoopCompilesAndMatchesInterpreter) {
  const asmx::Program program = asmx::assemble(R"(
      main:
        li s0, 0
        li s1, 100
      loop:
        addi s0, s0, 3
        xori s0, s0, 5
        addi s1, s1, -1
        bne s1, zero, loop
        ecall
  )");
  const RunOutcome interp = run_once(program, false);
  const RunOutcome traced = run_once(program, true);
  EXPECT_EQ(interp.cycles, traced.cycles);
  EXPECT_EQ(interp.instructions, traced.instructions);
  EXPECT_EQ(interp.s0, traced.s0);
  EXPECT_GE(traced.compiled, 1u);
  EXPECT_GT(traced.trace_instructions, 0u);
  EXPECT_EQ(interp.trace_instructions, 0u);
}

TEST(Trace, SelfModifyingStoreInvalidatesMidRun) {
  // The loop body's first instruction (addi s0, s0, 1) is overwritten with
  // addi s0, s0, 2 by the loop itself at iteration 100 of 200 — after the
  // body's trace has long been hot and compiled. The store must invalidate
  // the trace at a record boundary and the remaining iterations must run the
  // new instruction.
  const std::uint32_t patch_word =
      asmx::assemble("addi s0, s0, 2").words.at(0);
  // DATA[0] holds the replacement encoding, DATA[1] the address to patch
  // (labels cannot appear as li immediates, so the host supplies it).
  const std::string source = R"(
      .equ DATA, 0x10000
      main:
        li s0, 0
        li s1, 200
        li s2, DATA
        lw s3, 4(s2)
        li s4, 100
      loop:
      patchme:
        addi s0, s0, 1
        bne s1, s4, skip
        lw t1, 0(s2)
        sw t1, 0(s3)
      skip:
        addi s1, s1, -1
        bne s1, zero, loop
        ecall
  )";
  const asmx::Program program = asmx::assemble(source);

  analysis::install_load_verifier();
  RunOutcome results[2];
  for (const bool traces : {false, true}) {
    Machine machine(ri5cy());
    machine.set_trace_mode(traces);
    machine.load_program(std::span<const std::uint32_t>(program.words),
                         program.base);
    machine.memory().store32(0x10000, patch_word);
    machine.memory().store32(0x10004, program.symbol("patchme"));
    const RunResult r = machine.run(program.symbol("main"));
    RunOutcome& out = results[traces ? 1 : 0];
    out.cycles = r.cycles;
    out.instructions = r.instructions;
    out.s0 = machine.core().reg(8);
    if (traces) {
      out.trace_instructions = machine.core().trace_instructions();
      out.compiled = machine.trace_space()->stats().compiled;
      out.invalidated = machine.trace_space()->stats().invalidated;
    }
  }
  // The patch lands mid-iteration at s1 == 100, after that iteration's addi
  // already ran as +1: iterations s1 = 200..100 add 1 (101 of them), the
  // remaining s1 = 99..1 add 2 (99 of them).
  EXPECT_EQ(results[0].cycles, results[1].cycles);
  EXPECT_EQ(results[0].instructions, results[1].instructions);
  EXPECT_EQ(results[0].s0, results[1].s0);
  EXPECT_EQ(results[1].s0, 101u * 1u + 99u * 2u);
  EXPECT_GE(results[1].compiled, 1u);
  EXPECT_GE(results[1].invalidated, 1u);
  EXPECT_GT(results[1].trace_instructions, 0u);
}

TEST(Trace, HwloopReArmsInsideTrace) {
  // The outer loop head goes hot, so the compiled trace contains lp.setupi
  // itself: every outer iteration re-arms hardware loop 0 from inside the
  // trace and the loop body's back edges execute under trace records flagged
  // kMaybeLoopEnd. The hwend label marks the first instruction after the
  // hardware-loop body (the three addis), which runs 8 times per outer trip.
  const asmx::Program program = asmx::assemble(R"(
      main:
        li s0, 0
        li s1, 40
      outer:
        lp.setupi 0, 8, hwend
        addi s0, s0, 1
        addi s0, s0, 1
        addi s0, s0, 1
      hwend:
        addi s0, s0, 1
        addi s1, s1, -1
        bne s1, zero, outer
        ecall
  )");
  const RunOutcome interp = run_once(program, false);
  const RunOutcome traced = run_once(program, true);
  EXPECT_EQ(interp.cycles, traced.cycles);
  EXPECT_EQ(interp.instructions, traced.instructions);
  EXPECT_EQ(interp.s0, traced.s0);
  EXPECT_EQ(traced.s0, 40u * (8u * 3u + 1u));
  EXPECT_GE(traced.compiled, 1u);
  EXPECT_GT(traced.trace_instructions, 0u);
}

TEST(Trace, TableSurvivesResetAndInvalidatesOnReload) {
  const asmx::Program prog_a = asmx::assemble(R"(
      main:
        li s0, 0
        li s1, 64
      loop:
        addi s0, s0, 7
        xori s0, s0, 21
        addi s1, s1, -1
        bne s1, zero, loop
        ecall
  )");
  const asmx::Program prog_b = asmx::assemble(R"(
      main:
        li s0, 0
        li s1, 32
      loop:
        slli t0, s1, 1
        add s0, s0, t0
        addi s1, s1, -1
        bne s1, zero, loop
        ecall
  )");
  analysis::install_load_verifier();

  Machine machine(ri5cy());
  machine.set_trace_mode(true);
  machine.load_program(std::span<const std::uint32_t>(prog_a.words));
  const RunResult first = machine.run(prog_a.symbol("main"));
  const std::uint64_t compiled_after_first =
      machine.trace_space()->stats().compiled;
  EXPECT_GE(compiled_after_first, 1u);

  // Re-run without reloading: Core::reset re-keys the cached analysis but
  // compiled traces survive and are reused, with identical results.
  const RunResult second = machine.run(prog_a.symbol("main"));
  EXPECT_EQ(first.cycles, second.cycles);
  EXPECT_EQ(first.instructions, second.instructions);
  EXPECT_EQ(machine.trace_space()->stats().compiled, compiled_after_first);
  EXPECT_EQ(machine.trace_space()->stats().invalidated, 0u);

  // Reloading a different image overwrites the watched code range: every
  // overlapped trace must die, and the new program must run (and trace)
  // exactly like a fresh interpreter machine.
  machine.load_program(std::span<const std::uint32_t>(prog_b.words));
  EXPECT_GE(machine.trace_space()->stats().invalidated, 1u);
  const RunResult reloaded = machine.run(prog_b.symbol("main"));
  EXPECT_EQ(machine.core().reg(8), 32u * 33u);  // 2 * sum(1..32)

  const RunOutcome fresh = run_once(prog_b, false);
  EXPECT_EQ(fresh.cycles, reloaded.cycles);
  EXPECT_EQ(fresh.instructions, reloaded.instructions);
  EXPECT_EQ(fresh.s0, machine.core().reg(8));
}

TEST(Trace, BudgetExhaustionInsideTraceMatchesInterpreter) {
  const asmx::Program program = asmx::assemble(R"(
      main:
        li s0, 0
        li s1, 100000
      loop:
        addi s0, s0, 1
        slli t0, s0, 1
        addi s1, s1, -1
        bne s1, zero, loop
        ecall
  )");
  analysis::install_load_verifier();
  constexpr std::uint64_t kBudget = 5000;  // trips deep inside the hot loop

  std::uint64_t cycles[2];
  std::uint64_t instructions[2];
  std::uint32_t s0[2];
  for (const bool traces : {false, true}) {
    Machine machine(ri5cy());
    machine.set_trace_mode(traces);
    machine.load_program(std::span<const std::uint32_t>(program.words));
    EXPECT_THROW(machine.run(program.symbol("main"), kBudget), iw::Error);
    cycles[traces ? 1 : 0] = machine.core().cycles();
    instructions[traces ? 1 : 0] = machine.core().instructions();
    s0[traces ? 1 : 0] = machine.core().reg(8);
    if (traces) {
      EXPECT_GT(machine.core().trace_instructions(), 0u);
    }
  }
  EXPECT_EQ(instructions[0], kBudget);
  EXPECT_EQ(instructions[1], kBudget);
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(s0[0], s0[1]);
}

}  // namespace
}  // namespace iw::rv
