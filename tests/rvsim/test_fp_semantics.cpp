// FPU instruction semantics vs host IEEE-754 single-precision arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "asmx/assembler.hpp"
#include "common/rng.hpp"
#include "rvsim/machine.hpp"

namespace iw::rv {
namespace {

std::uint32_t bits_of(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}

float float_of(std::uint32_t b) {
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

/// Runs `op f2, f0, f1` and returns the result's bit pattern.
std::uint32_t run_fp_binary(const std::string& mnemonic, float a, float b) {
  const asmx::Program program = asmx::assemble(
      "flw f0, 0x400(zero)\n"
      "flw f1, 0x404(zero)\n" +
      mnemonic + " f2, f0, f1\n"
      "fsw f2, 0x408(zero)\n"
      "ecall\n");
  Machine machine(cortex_m4f(), 1 << 16);
  machine.load_program(program.words);
  machine.memory().store32(0x400, bits_of(a));
  machine.memory().store32(0x404, bits_of(b));
  machine.run(0);
  return machine.memory().load32(0x408);
}

struct FpCase {
  const char* mnemonic;
  std::function<float(float, float)> golden;
};

class FpBinarySemantics : public ::testing::TestWithParam<FpCase> {};

TEST_P(FpBinarySemantics, MatchesHostIeee) {
  const FpCase& test_case = GetParam();
  iw::Rng rng(555);
  const float interesting[] = {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 1e-20f,
                               1e20f, 3.14159f, -2.71828f};
  for (float a : interesting) {
    for (float b : interesting) {
      if (test_case.golden(a, b) != test_case.golden(a, b)) continue;  // NaN
      EXPECT_EQ(run_fp_binary(test_case.mnemonic, a, b),
                bits_of(test_case.golden(a, b)))
          << test_case.mnemonic << " " << a << " " << b;
    }
  }
  for (int trial = 0; trial < 100; ++trial) {
    const float a = static_cast<float>(rng.uniform(-1e3, 1e3));
    const float b = static_cast<float>(rng.uniform(-1e3, 1e3));
    EXPECT_EQ(run_fp_binary(test_case.mnemonic, a, b), bits_of(test_case.golden(a, b)))
        << test_case.mnemonic << " " << a << " " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, FpBinarySemantics,
    ::testing::Values(FpCase{"fadd.s", [](float a, float b) { return a + b; }},
                      FpCase{"fsub.s", [](float a, float b) { return a - b; }},
                      FpCase{"fmul.s", [](float a, float b) { return a * b; }},
                      FpCase{"fdiv.s", [](float a, float b) { return a / b; }}),
    [](const ::testing::TestParamInfo<FpCase>& info) {
      std::string name = info.param.mnemonic;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(FpSemantics, FmaddMatchesHost) {
  iw::Rng rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    const float a = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float b = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float c = static_cast<float>(rng.uniform(-100.0, 100.0));
    const asmx::Program program = asmx::assemble(
        "flw f0, 0x400(zero)\n"
        "flw f1, 0x404(zero)\n"
        "flw f2, 0x408(zero)\n"
        "fmadd.s f3, f0, f1, f2\n"
        "fsw f3, 0x40C(zero)\n"
        "ecall\n");
    Machine machine(cortex_m4f(), 1 << 16);
    machine.load_program(program.words);
    machine.memory().store32(0x400, bits_of(a));
    machine.memory().store32(0x404, bits_of(b));
    machine.memory().store32(0x408, bits_of(c));
    machine.run(0);
    EXPECT_EQ(machine.memory().load32(0x40C), bits_of(a * b + c))
        << a << " " << b << " " << c;
  }
}

TEST(FpSemantics, ConvertRoundTrips) {
  iw::Rng rng(888);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int32_t v =
        static_cast<std::int32_t>(rng.uniform_int(2000001)) - 1000000;
    const asmx::Program program = asmx::assemble(
        "lw a0, 0x400(zero)\n"
        "fcvt.s.w f0, a0\n"
        "fcvt.w.s a1, f0\n"
        "ecall\n");
    Machine machine(cortex_m4f(), 1 << 16);
    machine.load_program(program.words);
    machine.memory().store32(0x400, static_cast<std::uint32_t>(v));
    machine.run(0);
    // Integers up to 2^24 are exact in single precision.
    EXPECT_EQ(static_cast<std::int32_t>(machine.core().reg(11)), v);
  }
}

TEST(FpSemantics, CompareOperators) {
  const auto compare = [](const char* op, float a, float b) {
    const asmx::Program program = asmx::assemble(
        "flw f0, 0x400(zero)\n"
        "flw f1, 0x404(zero)\n" +
        std::string(op) + " a0, f0, f1\n"
        "ecall\n");
    Machine machine(cortex_m4f(), 1 << 16);
    machine.load_program(program.words);
    machine.memory().store32(0x400, bits_of(a));
    machine.memory().store32(0x404, bits_of(b));
    machine.run(0);
    return machine.core().reg(10);
  };
  EXPECT_EQ(compare("flt.s", 1.0f, 2.0f), 1u);
  EXPECT_EQ(compare("flt.s", 2.0f, 1.0f), 0u);
  EXPECT_EQ(compare("fle.s", 2.0f, 2.0f), 1u);
  EXPECT_EQ(compare("feq.s", -0.0f, 0.0f), 1u);  // IEEE: -0 == +0
  EXPECT_EQ(compare("feq.s", 1.0f, 2.0f), 0u);
}

TEST(FpSemantics, SignInjection) {
  EXPECT_EQ(run_fp_binary("fsgnj.s", 3.0f, -1.0f), bits_of(-3.0f));
  EXPECT_EQ(run_fp_binary("fsgnj.s", -3.0f, 1.0f), bits_of(3.0f));
  EXPECT_EQ(run_fp_binary("fsgnjn.s", 3.0f, 1.0f), bits_of(-3.0f));
}

}  // namespace
}  // namespace iw::rv
