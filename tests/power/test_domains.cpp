#include "power/domains.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "power/processor_power.hpp"

namespace iw::pwr {
namespace {

TEST(PowerDomain, StartsOffAndWakeCostsEnergy) {
  PowerDomain domain(mr_wolf_cluster_domain());
  EXPECT_EQ(domain.state(), DomainState::kOff);
  EXPECT_DOUBLE_EQ(domain.consumed_j(), 0.0);
  const double latency = domain.set_state(DomainState::kActive);
  EXPECT_GT(latency, 0.0);
  EXPECT_GT(domain.consumed_j(), 0.0);
}

TEST(PowerDomain, NoWakeCostBetweenOnStates) {
  PowerDomain domain(mr_wolf_cluster_domain());
  domain.set_state(DomainState::kIdle);
  const double after_wake = domain.consumed_j();
  EXPECT_DOUBLE_EQ(domain.set_state(DomainState::kActive), 0.0);
  EXPECT_DOUBLE_EQ(domain.consumed_j(), after_wake);
}

TEST(PowerDomain, RunForChargesByState) {
  PowerDomain domain(mr_wolf_soc_domain());
  domain.run_for(1.0);  // off: free
  EXPECT_DOUBLE_EQ(domain.consumed_j(), 0.0);
  domain.set_state(DomainState::kIdle);
  const double wake = domain.consumed_j();
  domain.run_for(1.0);
  const double idle_j = domain.consumed_j() - wake;
  EXPECT_NEAR(idle_j, domain.params().idle_power_w, 1e-12);
  domain.set_state(DomainState::kActive);
  domain.run_for(1.0);
  EXPECT_NEAR(domain.consumed_j() - wake - idle_j, domain.params().active_power_w,
              1e-12);
}

TEST(PowerDomain, ParamsValidation) {
  PowerDomain::Params bad;
  bad.active_power_w = 1.0;
  bad.idle_power_w = 2.0;  // idle above active
  EXPECT_THROW(PowerDomain{bad}, Error);
}

TEST(DomainAwareEnergy, ReproducesTableIvInversion) {
  // Paper Table IV, Network A: IBEX alone (1.3 uJ) beats one cluster core
  // (2.9 uJ) even though IBEX needs almost twice the cycles, because the
  // cluster domain costs wake energy plus higher power.
  const DomainAwareRun ibex = domain_aware_energy(40661, 100e6, false, 0.0);
  const DomainAwareRun cluster = domain_aware_energy(
      22772, 100e6, true, mr_wolf_cluster_single().active_power_w);
  EXPECT_LT(ibex.total_j(), cluster.total_j());
  EXPECT_NEAR(ibex.total_j() * 1e6, 1.3, 0.1);
  EXPECT_NEAR(cluster.total_j() * 1e6, 2.9 + 0.4, 0.3);  // + modeled wake cost
  EXPECT_GT(cluster.cluster_wake_j, 0.0);
  EXPECT_DOUBLE_EQ(ibex.cluster_wake_j, 0.0);
}

TEST(DomainAwareEnergy, LongRunsAmortizeTheWakeCost) {
  // For Network B the cluster advantage survives the wake cost easily.
  const DomainAwareRun ibex = domain_aware_energy(955588, 100e6, false, 0.0);
  const DomainAwareRun multi = domain_aware_energy(
      108316, 100e6, true, mr_wolf_cluster_multi8().active_power_w);
  EXPECT_LT(multi.total_j(), ibex.total_j());
  const double wake_share = multi.cluster_wake_j / multi.total_j();
  EXPECT_LT(wake_share, 0.05);
}

TEST(DomainAwareEnergy, Validation) {
  EXPECT_THROW(domain_aware_energy(100, 0.0, false, 0.0), Error);
  EXPECT_THROW(domain_aware_energy(100, 100e6, true, 1e-6), Error);
}

}  // namespace
}  // namespace iw::pwr
