#include "power/dvfs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "power/processor_power.hpp"

namespace iw::pwr {
namespace {

TEST(Dvfs, CalibratedPowerAtPaperOperatingPoint) {
  const MrWolfDvfsModel model = MrWolfDvfsModel::calibrated_cluster();
  // 19.6 mW at 100 MHz (Table IV calibration / the paper's "20 mW").
  EXPECT_NEAR(model.power_w(100e6) * 1e3,
              mr_wolf_cluster_multi8().active_power_w * 1e3, 0.1);
}

TEST(Dvfs, VoltageFlatThenRising) {
  const MrWolfDvfsModel model = MrWolfDvfsModel::calibrated_cluster();
  EXPECT_DOUBLE_EQ(model.voltage_v(50e6), model.voltage_v(100e6));
  EXPECT_GT(model.voltage_v(200e6), model.voltage_v(100e6));
  EXPECT_NEAR(model.voltage_v(450e6), 1.1, 1e-9);
  EXPECT_THROW(model.voltage_v(500e6), Error);
}

TEST(Dvfs, MostEfficientPointNearHundredMegahertz) {
  // The paper: "the most energy-efficient point being at 100 MHz".
  const MrWolfDvfsModel model = MrWolfDvfsModel::calibrated_cluster();
  const double f_opt = model.most_efficient_frequency_hz();
  EXPECT_GE(f_opt, 80e6);
  EXPECT_LE(f_opt, 130e6);
}

TEST(Dvfs, EnergyPerCycleShape) {
  const MrWolfDvfsModel model = MrWolfDvfsModel::calibrated_cluster();
  const double at_opt = model.energy_per_cycle_j(100e6);
  // Low frequency: leakage dominates -> worse than the knee.
  EXPECT_GT(model.energy_per_cycle_j(25e6), at_opt);
  // Max frequency: V^2 penalty -> clearly worse than the knee.
  EXPECT_GT(model.energy_per_cycle_j(450e6), 1.3 * at_opt);
}

TEST(Dvfs, PowerMonotoneInFrequency) {
  const MrWolfDvfsModel model = MrWolfDvfsModel::calibrated_cluster();
  double prev = 0.0;
  for (double f = 20e6; f <= 450e6; f += 10e6) {
    const double p = model.power_w(f);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Dvfs, ParamValidation) {
  DvfsParams bad;
  bad.dynamic_coeff = 0.0;
  EXPECT_THROW(MrWolfDvfsModel{bad}, Error);
  bad = DvfsParams{};
  bad.dynamic_coeff = 1e-12;
  bad.v_max = 0.5;  // below the floor
  EXPECT_THROW(MrWolfDvfsModel{bad}, Error);
}

}  // namespace
}  // namespace iw::pwr
