#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "power/battery.hpp"
#include "power/fuel_gauge.hpp"
#include "power/processor_power.hpp"
#include "power/psu.hpp"

namespace iw::pwr {
namespace {

// ------------------------------------------------------------------- battery

TEST(Battery, InitialState) {
  const LipoBattery battery({}, 0.5);
  EXPECT_DOUBLE_EQ(battery.soc(), 0.5);
  EXPECT_DOUBLE_EQ(battery.charge_mah(), 60.0);
  EXPECT_NEAR(battery.voltage_v(), 3.7, 0.01);
}

TEST(Battery, ChargeIncreasesAndClamps) {
  LipoBattery battery({}, 0.99);
  battery.charge(1.0, 3600.0);  // way more than capacity
  EXPECT_TRUE(battery.full());
  EXPECT_DOUBLE_EQ(battery.soc(), 1.0);
}

TEST(Battery, DischargeDecreasesAndClamps) {
  LipoBattery battery({}, 0.01);
  const double delivered = battery.discharge(1.0, 3600.0);
  EXPECT_TRUE(battery.empty());
  // Only ~1% of 120 mAh could be delivered.
  EXPECT_LT(delivered, 0.02 * 120.0 * 3.6 * 4.2);
  EXPECT_GT(delivered, 0.0);
}

TEST(Battery, CoulombConservationRoundTrip) {
  LipoBattery::Params params;
  params.charge_efficiency = 1.0;  // ideal cell for the conservation check
  LipoBattery battery(params, 0.5);
  const double before = battery.charge_mah();
  battery.charge(0.01, 600.0);
  battery.discharge(0.01, 600.0);
  // OCV differs slightly between charge and discharge points, so allow a
  // small residual.
  EXPECT_NEAR(battery.charge_mah(), before, 0.02);
}

TEST(Battery, ChargeEfficiencyAppliesOnlyToCharging) {
  LipoBattery::Params params;
  params.charge_efficiency = 0.5;
  LipoBattery battery(params, 0.5);
  const double before = battery.charge_mah();
  battery.charge(0.0037, 3600.0);  // 1 mA-equivalent for 1 h at ~3.7 V
  EXPECT_NEAR(battery.charge_mah() - before, 0.5, 0.05);
}

TEST(Battery, VoltageMonotoneInSoc) {
  double prev = 0.0;
  for (double soc = 0.0; soc <= 1.0; soc += 0.05) {
    const LipoBattery battery({}, soc);
    EXPECT_GE(battery.voltage_v(), prev);
    prev = battery.voltage_v();
  }
}

TEST(Battery, StoredEnergyScalesWithSoc) {
  const LipoBattery half({}, 0.5);
  const LipoBattery full({}, 1.0);
  EXPECT_GT(full.stored_energy_j(), half.stored_energy_j());
  // 120 mAh at ~3.7 V is about 1600 J; full estimate must be in range.
  EXPECT_NEAR(full.full_energy_j(), 120.0 * 3.6 * 3.8, 150.0);
}

TEST(Battery, SelfDischarge) {
  LipoBattery battery({}, 0.5);
  battery.age(86400.0 * 10);  // 10 days
  EXPECT_LT(battery.soc(), 0.5);
  EXPECT_GT(battery.soc(), 0.49);
}

TEST(Battery, Validation) {
  EXPECT_THROW(LipoBattery({}, 1.5), Error);
  LipoBattery::Params bad;
  bad.capacity_mah = -1.0;
  EXPECT_THROW(LipoBattery(bad, 0.5), Error);
  LipoBattery battery({}, 0.5);
  EXPECT_THROW(battery.charge(-1.0, 1.0), Error);
  EXPECT_THROW(battery.discharge(1.0, -1.0), Error);
}

// ---------------------------------------------------------------- fuel gauge

TEST(FuelGauge, QuantizedReadings) {
  LipoBattery battery({}, 0.753);
  const Bq27441FuelGauge gauge(battery);
  EXPECT_EQ(gauge.state_of_charge_pct(), 75);
  EXPECT_EQ(gauge.remaining_capacity_mah(), 90);  // floor(0.753 * 120)
  EXPECT_GT(gauge.voltage_mv(), 3000);
  EXPECT_LT(gauge.voltage_mv(), 4300);
}

TEST(FuelGauge, AverageCurrentTracksDischarge) {
  LipoBattery battery({}, 0.8);
  Bq27441FuelGauge gauge(battery);
  battery.discharge(0.0037, 3600.0);  // ~1 mA for an hour
  double ma = 0.0;
  for (int i = 0; i < 20; ++i) ma = gauge.update_average_current_ma(3600.0);
  // Negative (discharging) on the first sample, decaying toward zero after.
  EXPECT_LT(ma, 0.5);
  EXPECT_THROW(gauge.update_average_current_ma(0.0), Error);
}

TEST(FuelGauge, QuiescentDrawSmall) {
  LipoBattery battery({}, 0.5);
  const Bq27441FuelGauge gauge(battery);
  EXPECT_LT(gauge.quiescent_power_w(), 50e-6);
  EXPECT_GT(gauge.quiescent_power_w(), 0.0);
}

// ----------------------------------------------------------- processor power

TEST(ProcessorPower, CalibratedAgainstPaperTableIV) {
  // Energy for the paper's own cycle counts must land on Table IV's values.
  EXPECT_NEAR(nordic_m4().energy_j(30210) * 1e6, 5.1, 0.2);
  EXPECT_NEAR(mr_wolf_ibex().energy_j(40661) * 1e6, 1.3, 0.1);
  EXPECT_NEAR(mr_wolf_cluster_single().energy_j(22772) * 1e6, 2.9, 0.15);
  EXPECT_NEAR(mr_wolf_cluster_multi8().energy_j(6126) * 1e6, 1.2, 0.05);
}

TEST(ProcessorPower, ParallelPowerNearPaperTwentyMilliwatt) {
  // Paper: "assuming Mr. Wolf consuming 20 mW in parallel execution".
  EXPECT_NEAR(mr_wolf_cluster_multi8().active_power_w * 1e3, 20.0, 1.0);
}

TEST(ProcessorPower, TimeFollowsFrequency) {
  EXPECT_NEAR(nordic_m4().time_s(64000000), 1.0, 1e-9);
  EXPECT_NEAR(mr_wolf_ibex().time_s(100000000), 1.0, 1e-9);
}

TEST(ProcessorPower, IbexIsTheLowPowerPoint) {
  EXPECT_LT(mr_wolf_ibex().active_power_w, nordic_m4().active_power_w);
  EXPECT_LT(mr_wolf_cluster_single().active_power_w,
            mr_wolf_cluster_multi8().active_power_w);
}

// ----------------------------------------------------------------------- psu

TEST(Ldo, EfficiencyIsVoltageRatioAtHighLoad) {
  LdoModel ldo;
  // At high load the quiescent term vanishes: eff -> vout/vin.
  EXPECT_NEAR(ldo.efficiency(0.1), 1.8 / 3.7, 0.01);
  EXPECT_DOUBLE_EQ(ldo.efficiency(0.0), 0.0);
}

TEST(Ldo, InputPowerIncludesQuiescent) {
  LdoModel ldo;
  EXPECT_GT(ldo.input_power_w(0.0), 0.0);
  EXPECT_GT(ldo.input_power_w(0.001), 0.001);
  EXPECT_THROW(ldo.input_power_w(-1.0), Error);
}

TEST(Ledger, AccumulatesPerComponent) {
  EnergyLedger ledger;
  ledger.add("ecg", 1e-6);
  ledger.add("ecg", 2e-6);
  ledger.add("mcu", 5e-6);
  EXPECT_NEAR(ledger.component_j("ecg"), 3e-6, 1e-12);
  EXPECT_NEAR(ledger.total_j(), 8e-6, 1e-12);
  EXPECT_DOUBLE_EQ(ledger.component_j("missing"), 0.0);
  EXPECT_THROW(ledger.add("x", -1.0), Error);
}

TEST(Ledger, ReportFormat) {
  EnergyLedger ledger;
  ledger.add("radio", 2e-6);
  std::ostringstream os;
  ledger.write_report(os);
  EXPECT_NE(os.str().find("radio"), std::string::npos);
  EXPECT_NE(os.str().find("total"), std::string::npos);
}

}  // namespace
}  // namespace iw::pwr
