#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace iw::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, EqualTimesRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleInUsesRelativeTime) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_in(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.schedule_at(10.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(5.0, [] {}), Error);
  EXPECT_THROW(engine.schedule_in(-1.0, [] {}), Error);
}

TEST(Engine, RunUntilStopsAndAdvancesTime) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(9.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, PeriodicRunsUntilFalse) {
  Engine engine;
  int ticks = 0;
  engine.schedule_every(1.0, [&] { return ++ticks < 4; });
  engine.run();
  EXPECT_EQ(ticks, 4);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  int fired = 0;
  const EventHandle handle = engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.cancel(handle);
  engine.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, CancelPeriodicStopsSeries) {
  Engine engine;
  int ticks = 0;
  const EventHandle handle = engine.schedule_every(1.0, [&] {
    ++ticks;
    return true;
  });
  engine.schedule_at(3.5, [&] { engine.cancel(handle); });
  engine.run_until(10.0);
  EXPECT_EQ(ticks, 3);
}

TEST(Engine, CancelInvalidHandleIsNoop) {
  Engine engine;
  engine.cancel(EventHandle{});
  engine.run();
  SUCCEED();
}

TEST(Engine, CountsExecutedEvents) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule_at(static_cast<double>(i), [] {});
  engine.run();
  EXPECT_EQ(engine.events_executed(), 7u);
}

TEST(Engine, StressTenThousandRandomEvents) {
  // Property: regardless of insertion order, events execute in time order
  // and none is lost.
  iw::Rng rng(4242);
  Engine engine;
  std::vector<double> fired;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double at = rng.uniform(0.0, 1000.0);
    engine.schedule_at(at, [&fired, &engine] { fired.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]) << i;
  }
  EXPECT_EQ(engine.events_executed(), static_cast<std::uint64_t>(n));
}

TEST(Engine, InterleavedPeriodicTasksKeepRelativeOrder) {
  // Two periodic tasks with the same period fire FIFO within a tick.
  Engine engine;
  std::vector<int> order;
  engine.schedule_every(1.0, [&] {
    order.push_back(1);
    return order.size() < 10;
  });
  engine.schedule_every(1.0, [&] {
    order.push_back(2);
    return order.size() < 10;
  });
  engine.run_until(4.0);
  ASSERT_GE(order.size(), 6u);
  for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
    EXPECT_EQ(order[i], 1);
    EXPECT_EQ(order[i + 1], 2);
  }
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) engine.schedule_in(1.0, recurse);
  };
  engine.schedule_in(1.0, recurse);
  engine.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

}  // namespace
}  // namespace iw::sim
