#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace iw::sim {
namespace {

TEST(Trace, RecordsAndSummarizes) {
  TraceRecorder trace;
  trace.record("power_w", 0.0, 1.0);
  trace.record("power_w", 1.0, 3.0);
  trace.record("power_w", 2.0, 2.0);
  const RunningStats stats = trace.summarize("power_w");
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
}

TEST(Trace, IntegrateTrapezoidal) {
  TraceRecorder trace;
  // Constant 2 W over 10 s -> 20 J.
  trace.record("p", 0.0, 2.0);
  trace.record("p", 10.0, 2.0);
  EXPECT_DOUBLE_EQ(trace.channel("p").integrate(), 20.0);
  // Ramp 0..4 over 2 s -> 4 J.
  TraceRecorder ramp;
  ramp.record("p", 0.0, 0.0);
  ramp.record("p", 2.0, 4.0);
  EXPECT_DOUBLE_EQ(ramp.channel("p").integrate(), 4.0);
}

TEST(Trace, IntegrateEmptyAndSingleAreZero) {
  TraceRecorder trace;
  trace.record("p", 1.0, 5.0);
  EXPECT_DOUBLE_EQ(trace.channel("p").integrate(), 0.0);
}

TEST(Trace, RejectsOutOfOrderSamples) {
  TraceRecorder trace;
  trace.record("p", 5.0, 1.0);
  EXPECT_THROW(trace.record("p", 4.0, 1.0), Error);
}

TEST(Trace, UnknownChannelThrows) {
  const TraceRecorder trace;
  EXPECT_THROW(trace.channel("missing"), Error);
  EXPECT_FALSE(trace.has_channel("missing"));
}

TEST(Trace, ChannelNamesSorted) {
  TraceRecorder trace;
  trace.record("b", 0.0, 0.0);
  trace.record("a", 0.0, 0.0);
  EXPECT_EQ(trace.channel_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(Trace, CsvOutputWellFormed) {
  TraceRecorder trace;
  trace.record("soc", 0.0, 0.5);
  trace.record("soc", 1.0, 0.6);
  std::ostringstream os;
  trace.write_csv(os);
  EXPECT_EQ(os.str(), "channel,time_s,value\nsoc,0,0.5\nsoc,1,0.6\n");
}

}  // namespace
}  // namespace iw::sim
