#include <gtest/gtest.h>

#include <cmath>

#include "bio/ecg.hpp"
#include "bio/hrv.hpp"
#include "bio/rpeak.hpp"
#include "common/error.hpp"

namespace iw::bio {
namespace {

TEST(RPeak, DetectsCleanBeats) {
  Rng rng(1);
  const std::vector<double> rr(20, 0.8);
  EcgSynthParams params;
  params.noise_mv = 0.005;
  const EcgSignal signal = synthesize_ecg(rr, params, rng);
  const auto peaks = detect_r_peaks(signal);
  ASSERT_EQ(peaks.size(), signal.beat_times_s.size());
  for (std::size_t i = 0; i < peaks.size(); ++i) {
    EXPECT_NEAR(peaks[i], signal.beat_times_s[i], 0.03) << "beat " << i;
  }
}

TEST(RPeak, RobustToRealisticNoise) {
  Rng rng(2);
  const auto rr = generate_rr_intervals(rr_params_for(StressLevel::kMedium), 60.0, rng);
  const EcgSignal signal = synthesize_ecg(rr, EcgSynthParams{}, rng);
  const auto peaks = detect_r_peaks(signal);
  // Allow a small miss/extra margin at the edges.
  EXPECT_NEAR(static_cast<double>(peaks.size()),
              static_cast<double>(signal.beat_times_s.size()), 2.0);
}

TEST(RPeak, RecoveredRrTracksGroundTruth) {
  Rng rng(3);
  const auto rr_truth =
      generate_rr_intervals(rr_params_for(StressLevel::kNone), 120.0, rng);
  const EcgSignal signal = synthesize_ecg(rr_truth, EcgSynthParams{}, rng);
  const auto rr_detected = rr_from_peaks(detect_r_peaks(signal));
  ASSERT_GT(rr_detected.size(), rr_truth.size() / 2);
  // HRV features computed from detected beats approximate the ground truth.
  EXPECT_NEAR(rmssd(rr_detected), rmssd(rr_truth), 0.02);
  EXPECT_NEAR(mean_heart_rate_bpm(rr_detected), mean_heart_rate_bpm(rr_truth), 3.0);
}

TEST(RPeak, SamplingRateInvariance) {
  // The detector must not fall apart when the sampling rate changes: white
  // measurement noise differentiates to fs-dependent power, which the
  // low-pass stage has to cancel. (Regression test for a real bug.)
  Rng rr_rng(11);
  const auto rr = generate_rr_intervals(rr_params_for(StressLevel::kMedium), 60.0, rr_rng);
  for (double fs : {64.0, 128.0, 256.0, 512.0}) {
    Rng noise_rng(7);
    EcgSynthParams params;
    params.fs_hz = fs;
    const EcgSignal signal = synthesize_ecg(rr, params, noise_rng);
    const auto peaks = detect_r_peaks(signal);
    EXPECT_NEAR(static_cast<double>(peaks.size()), static_cast<double>(rr.size()),
                2.0)
        << "fs=" << fs;
  }
}

TEST(RPeak, EmptyOrShortInputs) {
  EXPECT_TRUE(rr_from_peaks({}).empty());
  EXPECT_TRUE(rr_from_peaks({1.0}).empty());
  EcgSignal empty;
  EXPECT_THROW(detect_r_peaks(empty), Error);
}

TEST(Hrv, KnownSeriesValues) {
  // diffs: +0.05, -0.05, +0.12
  const std::vector<double> rr{0.80, 0.85, 0.80, 0.92};
  const double expected_rmssd =
      std::sqrt((0.05 * 0.05 + 0.05 * 0.05 + 0.12 * 0.12) / 3.0);
  EXPECT_NEAR(rmssd(rr), expected_rmssd, 1e-12);
  EXPECT_EQ(nn50(rr), 1);  // only the 0.12 difference exceeds 50 ms
  EXPECT_NEAR(pnn50(rr), 1.0 / 3.0, 1e-12);
  EXPECT_GT(sdsd(rr), 0.0);
}

TEST(Hrv, ConstantRrHasZeroVariability) {
  const std::vector<double> rr{0.8, 0.8, 0.8, 0.8};
  EXPECT_DOUBLE_EQ(rmssd(rr), 0.0);
  EXPECT_DOUBLE_EQ(sdsd(rr), 0.0);
  EXPECT_EQ(nn50(rr), 0);
  EXPECT_DOUBLE_EQ(mean_heart_rate_bpm(rr), 75.0);
}

TEST(Hrv, ShiftInvariance) {
  // Adding a constant to all intervals changes the mean HR but none of the
  // successive-difference features.
  const std::vector<double> base{0.8, 0.86, 0.79, 0.91, 0.84};
  std::vector<double> shifted = base;
  for (double& v : shifted) v += 0.1;
  EXPECT_NEAR(rmssd(base), rmssd(shifted), 1e-12);
  EXPECT_NEAR(sdsd(base), sdsd(shifted), 1e-12);
  EXPECT_EQ(nn50(base), nn50(shifted));
}

TEST(Hrv, DegenerateInputsAreSafe) {
  EXPECT_DOUBLE_EQ(rmssd(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(rmssd(std::vector<double>{0.8}), 0.0);
  EXPECT_DOUBLE_EQ(sdsd(std::vector<double>{0.8, 0.9}), 0.0);
  EXPECT_EQ(nn50(std::vector<double>{}), 0);
  EXPECT_THROW(mean_heart_rate_bpm(std::vector<double>{}), Error);
}

TEST(Hrv, SdsdRelatesToRmssdForZeroMeanDiffs) {
  // When successive differences have (near) zero mean, SDSD ~ RMSSD.
  const std::vector<double> rr{0.8, 0.85, 0.8, 0.85, 0.8, 0.85, 0.8};
  EXPECT_NEAR(sdsd(rr), rmssd(rr), 0.01);
}

}  // namespace
}  // namespace iw::bio
