#include <gtest/gtest.h>

#include <sstream>

#include "bio/dataset.hpp"
#include "bio/features.hpp"
#include "common/error.hpp"
#include "nn/network.hpp"
#include "nn/train.hpp"

namespace iw::bio {
namespace {

TEST(Features, ComputeFeaturesOrderMatchesPaper) {
  const std::vector<double> rr{0.80, 0.85, 0.80, 0.92};
  std::vector<GsrSlope> slopes;
  slopes.push_back({1.0, 2.0, 0.4});
  const RawFeatures f = compute_features(rr, slopes);
  EXPECT_GT(f[kFeatRmssd], 0.0);
  EXPECT_GT(f[kFeatSdsd], 0.0);
  EXPECT_DOUBLE_EQ(f[kFeatNn50], 1.0);
  EXPECT_DOUBLE_EQ(f[kFeatGsrl], 2.0);
  EXPECT_DOUBLE_EQ(f[kFeatGsrh], 0.4);
}

TEST(Features, WindowCountMatchesOverlap) {
  Rng rng(1);
  const double duration = 300.0;
  const auto rr = generate_rr_intervals(rr_params_for(StressLevel::kNone), duration, rng);
  const EcgSignal ecg = synthesize_ecg(rr, EcgSynthParams{}, rng);
  const GsrSignal gsr = synthesize_gsr(gsr_params_for(StressLevel::kNone), duration, rng);
  WindowConfig config;
  config.window_s = 60.0;
  config.overlap_fraction = 0.5;
  const auto windows = extract_windows(ecg, gsr, config);
  // 60 s windows at 30 s stride over ~300 s -> about 9 windows.
  EXPECT_GE(windows.size(), 7u);
  EXPECT_LE(windows.size(), 10u);
}

TEST(Features, NormalizerMapsIntoUnitRange) {
  std::vector<RawFeatures> samples;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    RawFeatures f{};
    for (double& v : f) v = rng.uniform(5.0, 10.0);
    samples.push_back(f);
  }
  const FeatureNormalizer norm = FeatureNormalizer::fit(samples);
  for (const RawFeatures& f : samples) {
    for (float v : norm.apply(f)) {
      EXPECT_GE(v, -1.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(Features, NormalizerClampsOutliers) {
  std::vector<RawFeatures> samples;
  for (int i = 0; i < 100; ++i) {
    RawFeatures f{};
    for (double& v : f) v = static_cast<double>(i);
    samples.push_back(f);
  }
  const FeatureNormalizer norm = FeatureNormalizer::fit(samples);
  RawFeatures huge{};
  for (double& v : huge) v = 1e9;
  for (float v : norm.apply(huge)) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Features, NormalizerHandlesConstantFeature) {
  std::vector<RawFeatures> samples(10);
  for (auto& f : samples) f.fill(3.0);
  const FeatureNormalizer norm = FeatureNormalizer::fit(samples);
  const auto mapped = norm.apply(samples[0]);
  for (float v : mapped) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Features, FitRejectsEmpty) {
  EXPECT_THROW(FeatureNormalizer::fit({}), Error);
}

TEST(Features, NormalizerSerializationRoundTrip) {
  std::vector<RawFeatures> samples;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    RawFeatures f{};
    for (double& v : f) v = rng.uniform(0.0, 10.0);
    samples.push_back(f);
  }
  const FeatureNormalizer original = FeatureNormalizer::fit(samples);
  std::stringstream ss;
  original.save(ss);
  const FeatureNormalizer loaded = FeatureNormalizer::load(ss);
  for (const RawFeatures& f : samples) {
    EXPECT_EQ(loaded.apply(f), original.apply(f));
  }
  std::stringstream bad("NOPE 1 2");
  EXPECT_THROW(FeatureNormalizer::load(bad), Error);
}

TEST(Dataset, BuildsBalancedLabeledWindows) {
  StressDatasetConfig config;
  config.subjects = 2;
  config.minutes_per_level = 4.0;
  const StressDataset ds = build_stress_dataset(config);
  ASSERT_GT(ds.windows.size(), 20u);
  EXPECT_EQ(ds.data.size(), ds.windows.size());
  int counts[3] = {0, 0, 0};
  for (const LabeledWindow& w : ds.windows) ++counts[static_cast<int>(w.level)];
  // Roughly balanced across the 3 levels.
  for (int c : counts) EXPECT_GT(c, static_cast<int>(ds.windows.size()) / 5);
}

TEST(Dataset, DeterministicForSeed) {
  StressDatasetConfig config;
  config.subjects = 1;
  config.minutes_per_level = 3.0;
  const StressDataset a = build_stress_dataset(config);
  const StressDataset b = build_stress_dataset(config);
  ASSERT_EQ(a.data.size(), b.data.size());
  EXPECT_EQ(a.data.inputs, b.data.inputs);
}

TEST(Dataset, FeaturesSeparateStressLevels) {
  // The core premise: a small MLP on the 5 features beats chance by a wide
  // margin, like the paper's stress classifier.
  StressDatasetConfig config;
  config.subjects = 3;
  config.minutes_per_level = 6.0;
  const StressDataset ds = build_stress_dataset(config);

  Rng rng(77);
  auto [train, test] = nn::split(ds.data, 0.3, rng);
  nn::Network net = nn::Network::create({5, 16, 3}, rng);
  nn::TrainConfig tc;
  tc.max_epochs = 400;
  tc.target_mse = 5e-3;
  nn::train_rprop(net, train, tc);
  const double accuracy = nn::evaluate_accuracy(net, test);
  EXPECT_GT(accuracy, 0.75) << "3-class chance is 0.33";
}

TEST(Dataset, ConfigValidation) {
  StressDatasetConfig config;
  config.subjects = 0;
  EXPECT_THROW(build_stress_dataset(config), Error);
  config.subjects = 1;
  config.minutes_per_level = 0.5;
  EXPECT_THROW(build_stress_dataset(config), Error);
  config.minutes_per_level = 4.0;
  config.level_separation = 0.0;
  EXPECT_THROW(build_stress_dataset(config), Error);
  config.level_separation = 1.5;
  EXPECT_THROW(build_stress_dataset(config), Error);
}

TEST(Dataset, LevelSeparationShrinksFeatureGap) {
  // With separation 1.0 the per-level RMSSD distributions sit far apart;
  // blending toward the medium preset must shrink the gap.
  const auto rmssd_gap = [](double separation) {
    StressDatasetConfig config;
    config.subjects = 2;
    config.minutes_per_level = 4.0;
    config.level_separation = separation;
    const StressDataset ds = build_stress_dataset(config);
    double calm = 0.0, stressed = 0.0;
    int calm_n = 0, stress_n = 0;
    for (const LabeledWindow& w : ds.windows) {
      if (w.level == StressLevel::kNone) {
        calm += w.raw[kFeatRmssd];
        ++calm_n;
      } else if (w.level == StressLevel::kHigh) {
        stressed += w.raw[kFeatRmssd];
        ++stress_n;
      }
    }
    return calm / calm_n - stressed / stress_n;
  };
  const double wide = rmssd_gap(1.0);
  const double narrow = rmssd_gap(0.3);
  EXPECT_GT(wide, 0.0);
  EXPECT_GT(narrow, 0.0);       // ordering preserved
  EXPECT_LT(narrow, 0.6 * wide);  // but clearly compressed
}

}  // namespace
}  // namespace iw::bio
