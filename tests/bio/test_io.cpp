#include "bio/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace iw::bio {
namespace {

TEST(BioIo, EcgRoundTrip) {
  Rng rng(1);
  const auto rr = generate_rr_intervals(rr_params_for(StressLevel::kNone), 10.0, rng);
  const EcgSignal original = synthesize_ecg(rr, EcgSynthParams{}, rng);
  std::stringstream ss;
  save_ecg_csv(ss, original);
  const EcgSignal loaded = load_ecg_csv(ss);
  EXPECT_NEAR(loaded.fs_hz, original.fs_hz, 0.01);
  ASSERT_EQ(loaded.samples.size(), original.samples.size());
  for (std::size_t i = 0; i < loaded.samples.size(); i += 37) {
    EXPECT_NEAR(loaded.samples[i], original.samples[i], 1e-4);
  }
}

TEST(BioIo, GsrRoundTrip) {
  Rng rng(2);
  const GsrSignal original = synthesize_gsr(gsr_params_for(StressLevel::kHigh), 20.0, rng);
  std::stringstream ss;
  save_gsr_csv(ss, original);
  const GsrSignal loaded = load_gsr_csv(ss);
  EXPECT_NEAR(loaded.fs_hz, original.fs_hz, 0.01);
  EXPECT_EQ(loaded.samples.size(), original.samples.size());
}

TEST(BioIo, HeaderAndFormat) {
  std::ostringstream os;
  write_signal_csv(os, 4.0, {1.0f, 2.0f}, "foo");
  EXPECT_EQ(os.str(), "time_s,foo\n0,1\n0.25,2\n");
}

TEST(BioIo, RejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW(read_signal_csv(empty), Error);
  std::istringstream no_header("0 1\n");
  EXPECT_THROW(read_signal_csv(no_header), Error);
  std::istringstream bad_row("time_s,v\n0,1\nnonsense\n");
  EXPECT_THROW(read_signal_csv(bad_row), Error);
  std::istringstream bad_number("time_s,v\n0,1\n0.5,abc\n");
  EXPECT_THROW(read_signal_csv(bad_number), Error);
  std::istringstream one_sample("time_s,v\n0,1\n");
  EXPECT_THROW(read_signal_csv(one_sample), Error);
}

TEST(BioIo, RejectsNonUniformTimeBase) {
  std::istringstream jitter("time_s,v\n0,1\n0.1,2\n0.6,3\n");
  EXPECT_THROW(read_signal_csv(jitter), Error);
}

TEST(BioIo, RecoversSampleRate) {
  std::istringstream csv("time_s,v\n0,1\n0.125,2\n0.25,3\n0.375,4\n");
  const CsvSignal signal = read_signal_csv(csv);
  EXPECT_NEAR(signal.fs_hz, 8.0, 1e-9);
  EXPECT_EQ(signal.samples.size(), 4u);
}

}  // namespace
}  // namespace iw::bio
