#include "bio/ecg.hpp"

#include <gtest/gtest.h>

#include "bio/hrv.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace iw::bio {
namespace {

TEST(Ecg, RrIntervalsCoverDuration) {
  Rng rng(1);
  const auto rr = generate_rr_intervals(rr_params_for(StressLevel::kNone), 120.0, rng);
  double total = 0.0;
  for (double v : rr) total += v;
  EXPECT_GE(total, 120.0);
  EXPECT_LT(total, 123.0);  // no more than one extra beat
}

TEST(Ecg, RrMeanTracksParameter) {
  Rng rng(2);
  RrProcessParams params;
  params.mean_rr_s = 0.75;
  const auto rr = generate_rr_intervals(params, 600.0, rng);
  EXPECT_NEAR(mean(rr), 0.75, 0.02);
}

TEST(Ecg, RrPhysiologicalClamp) {
  Rng rng(3);
  RrProcessParams params;
  params.mean_rr_s = 0.4;
  params.jitter_s = 0.5;  // extreme jitter to force clamping
  const auto rr = generate_rr_intervals(params, 120.0, rng);
  for (double v : rr) {
    EXPECT_GE(v, 0.3);
    EXPECT_LE(v, 2.0);
  }
}

TEST(Ecg, StressLowersRrVariability) {
  Rng rng_a(4), rng_b(4);
  const auto calm = generate_rr_intervals(rr_params_for(StressLevel::kNone), 300.0, rng_a);
  const auto stressed =
      generate_rr_intervals(rr_params_for(StressLevel::kHigh), 300.0, rng_b);
  EXPECT_GT(rmssd(calm), rmssd(stressed));
  EXPECT_GT(mean(calm), mean(stressed));  // stress raises heart rate
}

TEST(Ecg, StressLevelsAreOrderedInRmssd) {
  const auto measure = [](StressLevel level) {
    Rng rng(5);
    const auto rr = generate_rr_intervals(rr_params_for(level), 300.0, rng);
    return rmssd(rr);
  };
  const double none = measure(StressLevel::kNone);
  const double medium = measure(StressLevel::kMedium);
  const double high = measure(StressLevel::kHigh);
  EXPECT_GT(none, medium);
  EXPECT_GT(medium, high);
}

TEST(Ecg, SynthesizedWaveformShape) {
  Rng rng(6);
  const std::vector<double> rr{0.8, 0.8, 0.8, 0.8, 0.8};
  const EcgSignal signal = synthesize_ecg(rr, EcgSynthParams{}, rng);
  EXPECT_EQ(signal.beat_times_s.size(), rr.size());
  EXPECT_NEAR(signal.beat_times_s[1] - signal.beat_times_s[0], 0.8, 1e-9);
  // Peak amplitude near the QRS spike, well above noise.
  float peak = 0.0f;
  for (float v : signal.samples) peak = std::max(peak, v);
  EXPECT_GT(peak, 0.8f);
  EXPECT_LT(peak, 2.0f);
}

TEST(Ecg, SampleRateHonored) {
  Rng rng(7);
  const std::vector<double> rr{1.0, 1.0};
  EcgSynthParams params;
  params.fs_hz = 128.0;
  const EcgSignal signal = synthesize_ecg(rr, params, rng);
  // Duration = 0.5 lead-in + 2.0 beats + 0.5 tail = 3.0 s.
  EXPECT_NEAR(static_cast<double>(signal.samples.size()) / 128.0, 3.0, 0.05);
}

TEST(Ecg, InputValidation) {
  Rng rng(8);
  EXPECT_THROW(generate_rr_intervals(RrProcessParams{}, -1.0, rng), Error);
  RrProcessParams bad;
  bad.mean_rr_s = 5.0;
  EXPECT_THROW(generate_rr_intervals(bad, 10.0, rng), Error);
  EXPECT_THROW(synthesize_ecg({}, EcgSynthParams{}, rng), Error);
}

TEST(Ecg, DeterministicForSeed) {
  Rng a(9), b(9);
  const auto rr_a = generate_rr_intervals(rr_params_for(StressLevel::kMedium), 60.0, a);
  const auto rr_b = generate_rr_intervals(rr_params_for(StressLevel::kMedium), 60.0, b);
  EXPECT_EQ(rr_a, rr_b);
}

}  // namespace
}  // namespace iw::bio
