#include "bio/gsr.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iw::bio {
namespace {

TEST(Gsr, SynthesisBasics) {
  Rng rng(1);
  const GsrSignal signal = synthesize_gsr(gsr_params_for(StressLevel::kMedium), 60.0, rng);
  EXPECT_EQ(signal.samples.size(), static_cast<std::size_t>(60.0 * signal.fs_hz));
  for (float v : signal.samples) {
    EXPECT_GT(v, 0.0f);   // conductance is positive
    EXPECT_LT(v, 20.0f);  // and physiologically bounded
  }
}

TEST(Gsr, SlopeDetectionOnSyntheticRamp) {
  // Hand-built signal: flat 2.0, ramp to 2.5 over 2 s, flat decay-free.
  GsrSignal signal;
  signal.fs_hz = 32.0;
  for (int i = 0; i < 320; ++i) {
    double v = 2.0;
    const double t = i / 32.0;
    if (t >= 4.0 && t < 6.0) v = 2.0 + 0.25 * (t - 4.0);
    if (t >= 6.0) v = 2.5;
    signal.samples.push_back(static_cast<float>(v));
  }
  const auto slopes = detect_gsr_slopes(signal);
  ASSERT_EQ(slopes.size(), 1u);
  EXPECT_NEAR(slopes[0].onset_s, 4.0, 0.5);
  EXPECT_NEAR(slopes[0].height_us, 0.5, 0.06);
  EXPECT_NEAR(slopes[0].length_s, 2.0, 0.5);
}

TEST(Gsr, SmallRipplesIgnored) {
  GsrSignal signal;
  signal.fs_hz = 32.0;
  for (int i = 0; i < 320; ++i) {
    signal.samples.push_back(2.0f + 0.01f * static_cast<float>(i % 2));
  }
  EXPECT_TRUE(detect_gsr_slopes(signal).empty());
}

TEST(Gsr, StressIncreasesScrActivity) {
  const auto measure = [](StressLevel level) {
    Rng rng(7);
    const GsrSignal signal = synthesize_gsr(gsr_params_for(level), 300.0, rng);
    return detect_gsr_slopes(signal).size();
  };
  const auto none = measure(StressLevel::kNone);
  const auto high = measure(StressLevel::kHigh);
  EXPECT_GT(high, none);
}

TEST(Gsr, StressIncreasesSlopeHeight) {
  const auto measure = [](StressLevel level) {
    Rng rng(8);
    const GsrSignal signal = synthesize_gsr(gsr_params_for(level), 300.0, rng);
    return gsr_features(detect_gsr_slopes(signal)).mean_height_us;
  };
  EXPECT_GT(measure(StressLevel::kHigh), measure(StressLevel::kNone));
}

TEST(Gsr, FeaturesFromSlopes) {
  std::vector<GsrSlope> slopes;
  slopes.push_back({1.0, 2.0, 0.4});
  slopes.push_back({5.0, 1.0, 0.2});
  const GsrFeatures f = gsr_features(slopes);
  EXPECT_EQ(f.slope_count, 2);
  EXPECT_DOUBLE_EQ(f.mean_height_us, 0.3);
  EXPECT_DOUBLE_EQ(f.mean_length_s, 1.5);
}

TEST(Gsr, FeaturesOfEmptySlopeList) {
  const GsrFeatures f = gsr_features({});
  EXPECT_EQ(f.slope_count, 0);
  EXPECT_DOUBLE_EQ(f.mean_height_us, 0.0);
  EXPECT_DOUBLE_EQ(f.mean_length_s, 0.0);
}

TEST(Gsr, InputValidation) {
  Rng rng(9);
  EXPECT_THROW(synthesize_gsr(GsrSynthParams{}, 0.0, rng), Error);
  GsrSynthParams bad;
  bad.fs_hz = 1.0;
  EXPECT_THROW(synthesize_gsr(bad, 10.0, rng), Error);
}

TEST(Gsr, ShortSignalYieldsNoSlopes) {
  GsrSignal signal;
  signal.fs_hz = 32.0;
  signal.samples = {2.0f, 2.1f};
  EXPECT_TRUE(detect_gsr_slopes(signal).empty());
}

}  // namespace
}  // namespace iw::bio
