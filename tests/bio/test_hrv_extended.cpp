#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bio/ecg.hpp"
#include "bio/hrv.hpp"
#include "common/stats.hpp"

namespace iw::bio {
namespace {

TEST(HrvExtended, SdnnMatchesStddev) {
  const std::vector<double> rr{0.8, 0.85, 0.78, 0.9, 0.84};
  EXPECT_NEAR(sdnn(rr), stddev(rr), 1e-12);
  EXPECT_DOUBLE_EQ(sdnn(std::vector<double>{0.8}), 0.0);
}

TEST(HrvExtended, Pnn20KnownSeries) {
  // diffs: +0.03, -0.01, +0.05 -> 2 of 3 exceed 20 ms.
  const std::vector<double> rr{0.80, 0.83, 0.82, 0.87};
  EXPECT_NEAR(pnn20(rr), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(pnn20(std::vector<double>{0.8}), 0.0);
}

TEST(HrvExtended, Pnn20AtLeastPnn50) {
  Rng rng(1);
  const auto rr = generate_rr_intervals(rr_params_for(StressLevel::kMedium), 300.0, rng);
  EXPECT_GE(pnn20(rr), pnn50(rr));
}

TEST(HrvExtended, PoincareIdentities) {
  Rng rng(2);
  const auto rr = generate_rr_intervals(rr_params_for(StressLevel::kNone), 300.0, rng);
  const PoincareDescriptors p = poincare(rr);
  EXPECT_GT(p.sd1_s, 0.0);
  EXPECT_GT(p.sd2_s, 0.0);
  // SD1 relates to RMSSD: SD1 ~ RMSSD / sqrt(2) (up to sample-variance
  // normalization).
  EXPECT_NEAR(p.sd1_s, rmssd(rr) / std::sqrt(2.0), 0.15 * p.sd1_s + 1e-4);
  // RSA-dominated rest data has more long-term than short-term spread.
  EXPECT_GT(p.ratio, 1.0);
}

TEST(HrvExtended, PoincareDegenerate) {
  const PoincareDescriptors p = poincare(std::vector<double>{0.8, 0.8});
  EXPECT_DOUBLE_EQ(p.sd1_s, 0.0);
  EXPECT_DOUBLE_EQ(p.ratio, 0.0);
}

TEST(HrvExtended, TriangularIndexUniformVsConstant) {
  // All intervals in one bin -> index == 1; spread intervals -> larger.
  const std::vector<double> constant(64, 0.800);
  EXPECT_DOUBLE_EQ(triangular_index(constant), 1.0);
  std::vector<double> spread;
  for (int i = 0; i < 64; ++i) spread.push_back(0.7 + 0.2 * (i / 64.0));
  EXPECT_GT(triangular_index(spread), 5.0);
  EXPECT_DOUBLE_EQ(triangular_index(std::vector<double>{0.8}), 0.0);
}

TEST(HrvExtended, StressReducesExtendedMetricsToo) {
  const auto measure = [](StressLevel level) {
    Rng rng(3);
    return generate_rr_intervals(rr_params_for(level), 300.0, rng);
  };
  const auto calm = measure(StressLevel::kNone);
  const auto stressed = measure(StressLevel::kHigh);
  EXPECT_GT(sdnn(calm), sdnn(stressed));
  EXPECT_GT(pnn20(calm), pnn20(stressed));
  EXPECT_GT(poincare(calm).sd1_s, poincare(stressed).sd1_s);
}

}  // namespace
}  // namespace iw::bio
