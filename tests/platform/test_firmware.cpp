#include "platform/firmware.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iw::platform {
namespace {

TEST(Firmware, DefaultTableOrdering) {
  const ModePowerTable table = ModePowerTable::infiniwolf_defaults();
  const auto power = [&](FirmwareMode m) {
    return table.power_w[static_cast<std::size_t>(m)];
  };
  EXPECT_LT(power(FirmwareMode::kSleep), power(FirmwareMode::kDataAcquisition));
  EXPECT_LT(power(FirmwareMode::kDataAcquisition), power(FirmwareMode::kProcessing));
  // Streaming keeps the AFEs on AND the radio: the most expensive sustained
  // acquisition-class mode.
  EXPECT_GT(power(FirmwareMode::kRawStreaming), power(FirmwareMode::kDataAcquisition));
  // A transmit burst draws the radio's full active current.
  EXPECT_GT(power(FirmwareMode::kTransmit), power(FirmwareMode::kDataAcquisition));
}

TEST(Firmware, LegalTransitionGraph) {
  using M = FirmwareMode;
  EXPECT_TRUE(FirmwareStateMachine::transition_allowed(M::kSleep, M::kDataAcquisition));
  EXPECT_TRUE(FirmwareStateMachine::transition_allowed(M::kSleep, M::kRawStreaming));
  EXPECT_TRUE(FirmwareStateMachine::transition_allowed(M::kDataAcquisition, M::kProcessing));
  EXPECT_TRUE(FirmwareStateMachine::transition_allowed(M::kProcessing, M::kTransmit));
  EXPECT_TRUE(FirmwareStateMachine::transition_allowed(M::kTransmit, M::kSleep));
  // No shortcuts.
  EXPECT_FALSE(FirmwareStateMachine::transition_allowed(M::kSleep, M::kProcessing));
  EXPECT_FALSE(FirmwareStateMachine::transition_allowed(M::kSleep, M::kTransmit));
  EXPECT_FALSE(FirmwareStateMachine::transition_allowed(M::kRawStreaming, M::kProcessing));
  EXPECT_FALSE(FirmwareStateMachine::transition_allowed(M::kTransmit, M::kDataAcquisition));
}

TEST(Firmware, IllegalTransitionThrows) {
  FirmwareStateMachine fsm(ModePowerTable::infiniwolf_defaults());
  EXPECT_THROW(fsm.transition(FirmwareMode::kProcessing), Error);
  EXPECT_EQ(fsm.mode(), FirmwareMode::kSleep);  // unchanged after the throw
}

TEST(Firmware, EnergyAccountingPerMode) {
  ModePowerTable table{};
  table.power_w = {1.0, 2.0, 3.0, 4.0, 5.0};
  FirmwareStateMachine fsm(table);
  fsm.run_for(10.0);  // sleep
  fsm.transition(FirmwareMode::kDataAcquisition);
  fsm.run_for(3.0);
  EXPECT_DOUBLE_EQ(fsm.mode_energy_j(FirmwareMode::kSleep), 10.0);
  EXPECT_DOUBLE_EQ(fsm.mode_energy_j(FirmwareMode::kDataAcquisition), 6.0);
  EXPECT_DOUBLE_EQ(fsm.total_energy_j(), 16.0);
  EXPECT_DOUBLE_EQ(fsm.mode_time_s(FirmwareMode::kDataAcquisition), 3.0);
  EXPECT_DOUBLE_EQ(fsm.now_s(), 13.0);
}

TEST(Firmware, DetectionCycleNearPaperEnergy) {
  // One full detection cycle via the FSM should land near the paper's
  // ~602 uJ figure (the FSM adds small MCU overheads during acquisition).
  FirmwareStateMachine fsm(ModePowerTable::infiniwolf_defaults());
  const double energy = detection_cycle_energy_j(fsm);
  EXPECT_NEAR(energy * 1e6, 602.2, 80.0);
  EXPECT_EQ(fsm.mode(), FirmwareMode::kSleep);
  EXPECT_GT(fsm.mode_energy_j(FirmwareMode::kDataAcquisition),
            fsm.mode_energy_j(FirmwareMode::kProcessing));
}

TEST(Firmware, StreamingHourCostsFarMoreThanDutyCycledHour) {
  FirmwareStateMachine streaming(ModePowerTable::infiniwolf_defaults());
  streaming.transition(FirmwareMode::kRawStreaming);
  streaming.run_for(3600.0);

  FirmwareStateMachine duty(ModePowerTable::infiniwolf_defaults());
  // 60 detection cycles in the hour, sleeping in between.
  for (int i = 0; i < 60; ++i) {
    detection_cycle_energy_j(duty);
    duty.run_for(57.0);  // remainder of the minute asleep
  }
  EXPECT_GT(streaming.total_energy_j(), 10.0 * duty.total_energy_j());
}

TEST(Firmware, RunForValidatesDuration) {
  FirmwareStateMachine fsm(ModePowerTable::infiniwolf_defaults());
  EXPECT_THROW(fsm.run_for(-1.0), Error);
}

}  // namespace
}  // namespace iw::platform
