// SIMD tier parity for the cohort day kernel (DESIGN.md §15): every runnable
// tier must reproduce the scalar oracle bit for bit, lane by lane — across
// cohort sizes straddling every pack width (1, W-1, W, W+1 for W in {2, 4},
// plus 15/17/31/33 around the larger block sizes), across the policy mix
// that selects each drain mode (lockstep, vectorized rounds, scalar), and
// with register-ineligible lanes (trace recording) interleaved so the SIMD
// prefix/general-sweep split itself is exercised.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "fleet/scenario.hpp"
#include "platform/cohort_day.hpp"
#include "platform/detection_cost.hpp"
#include "platform/device.hpp"
#include "platform/fast_day.hpp"
#include "platform/scheduler.hpp"

namespace iw::platform {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

void expect_bit_identical(const DaySimulationResult& oracle,
                          const DaySimulationResult& cohort,
                          const std::string& context) {
  EXPECT_EQ(oracle.detections_attempted, cohort.detections_attempted) << context;
  EXPECT_EQ(oracle.detections_completed, cohort.detections_completed) << context;
  EXPECT_EQ(oracle.detections_skipped, cohort.detections_skipped) << context;
  EXPECT_EQ(bits(oracle.harvested_j), bits(cohort.harvested_j)) << context;
  EXPECT_EQ(bits(oracle.consumed_j), bits(cohort.consumed_j)) << context;
  EXPECT_EQ(bits(oracle.initial_soc), bits(cohort.initial_soc)) << context;
  EXPECT_EQ(bits(oracle.final_soc), bits(cohort.final_soc)) << context;
  EXPECT_EQ(bits(oracle.min_soc), bits(cohort.min_soc)) << context;
  const std::vector<std::string> channels = oracle.trace.channel_names();
  ASSERT_EQ(channels, cohort.trace.channel_names()) << context;
  for (const std::string& name : channels) {
    const sim::TraceChannel& a = oracle.trace.channel(name);
    const sim::TraceChannel& b = cohort.trace.channel(name);
    ASSERT_EQ(a.times.size(), b.times.size()) << context << " channel " << name;
    for (std::size_t i = 0; i < a.times.size(); ++i) {
      ASSERT_EQ(bits(a.times[i]), bits(b.times[i]))
          << context << " channel " << name << " sample " << i;
      ASSERT_EQ(bits(a.values[i]), bits(b.values[i]))
          << context << " channel " << name << " sample " << i;
    }
  }
}

struct Case {
  DeviceConfig config;
  hv::DayProfile profile;
  const DetectionPolicy* policy = nullptr;
  std::string context;
};

const hv::DualSourceHarvester& shared_harvester() {
  static const hv::DualSourceHarvester harvester =
      hv::DualSourceHarvester::calibrated();
  return harvester;
}

DaySimulationResult run_oracle(const Case& c) {
  return c.policy != nullptr
             ? simulate_day_fast_with_policy(c.config, shared_harvester(),
                                             c.profile, *c.policy)
             : simulate_day_fast(c.config, shared_harvester(), c.profile);
}

std::vector<simd::Tier> usable_tiers() {
  std::vector<simd::Tier> tiers;
  for (simd::Tier t :
       {simd::Tier::kArray, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::tier_usable(t)) tiers.push_back(t);
  }
  return tiers;
}

struct TierGuard {
  ~TierGuard() { simd::clear_override(); }
};

/// The fleet's own worlds with tracing OFF, so every lane is eligible for
/// the register ladder the SIMD tier accelerates. All four policy slots are
/// present: null (lockstep drain), the built-ins (vectorized rounds), and —
/// once sorted lanes cross a policy boundary mid-pack — the scalar drain.
std::vector<Case> eligible_case_pool(int lux_factors_per_archetype) {
  static const FixedRatePolicy fixed(60.0);
  static const SocProportionalPolicy soc_prop(0.5, 4.0);
  static const EnergyNeutralPolicy neutral;
  const std::vector<const DetectionPolicy*> policies{nullptr, &fixed, &soc_prop,
                                                     &neutral};
  std::vector<Case> cases;
  Rng rng(0x51c0407dULL);
  for (int p = 0; p < fleet::kNumWearerProfiles; ++p) {
    fleet::Scenario scenario = fleet::sample_scenario(2020, 300 + p);
    scenario.profile = static_cast<fleet::WearerProfile>(p);
    const hv::DayProfile base = fleet::build_day_profile(scenario);
    for (int f = 0; f < lux_factors_per_archetype; ++f) {
      const double lux_factor =
          std::exp(rng.normal(0.0, scenario.lux_sigma_day));
      for (std::size_t i = 0; i < policies.size(); ++i) {
        Case c;
        c.config.detection = make_detection_cost({});
        c.config.detection_period_s = scenario.detection_period_s;
        c.config.initial_soc = scenario.initial_soc;
        c.config.record_trace = false;
        c.profile = scale_profile_lux(base, lux_factor);
        c.policy = policies[i];
        c.context = "archetype " +
                    std::string(fleet::to_string(scenario.profile)) +
                    " policy " + std::to_string(i) + " lux " + std::to_string(f);
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

void run_cohorts(const std::vector<Case>& cases, std::size_t cohort_size,
                 std::vector<DaySimulationResult>& results) {
  CohortDayState cohort;
  std::vector<CohortMember> members;
  for (std::size_t begin = 0; begin < cases.size(); begin += cohort_size) {
    const std::size_t end = std::min(begin + cohort_size, cases.size());
    members.clear();
    for (std::size_t i = begin; i < end; ++i) {
      members.push_back(CohortMember{&cases[i].config, &shared_harvester(),
                                     &cases[i].profile, cases[i].policy,
                                     &results[i]});
    }
    cohort.run_day(members);
  }
}

TEST(CohortSimd, TiersMatchOracleAcrossPackBoundarySizes) {
  const std::vector<Case> cases = eligible_case_pool(2);  // 5 x 2 x 4 = 40
  std::vector<DaySimulationResult> oracle(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) oracle[i] = run_oracle(cases[i]);

  TierGuard guard;
  std::vector<DaySimulationResult> results(cases.size());
  for (const std::size_t size : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                 std::size_t{4}, std::size_t{5}, std::size_t{15},
                                 std::size_t{17}, std::size_t{31},
                                 std::size_t{33}}) {
    std::vector<simd::Tier> tiers = {simd::Tier::kOff};
    for (simd::Tier t : usable_tiers()) tiers.push_back(t);
    for (const simd::Tier tier : tiers) {
      simd::override_tier(tier);
      run_cohorts(cases, size, results);
      for (std::size_t i = 0; i < cases.size(); ++i) {
        expect_bit_identical(oracle[i], results[i],
                             cases[i].context + " cohort_size " +
                                 std::to_string(size) + " tier " +
                                 simd::tier_name(tier));
      }
    }
  }
}

TEST(CohortSimd, MixedEligibleAndIneligibleLanesInOneCohort) {
  // Alternate trace-recording (register-ineligible) and plain lanes so every
  // cohort splits between the SIMD prefix and the general sweep; the split
  // must not change either side's bits.
  std::vector<Case> cases = eligible_case_pool(1);  // 20 lanes
  for (std::size_t i = 0; i < cases.size(); i += 2) {
    cases[i].config.record_trace = true;
    cases[i].context += " traced";
  }
  std::vector<DaySimulationResult> oracle(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) oracle[i] = run_oracle(cases[i]);

  TierGuard guard;
  std::vector<DaySimulationResult> results(cases.size());
  std::vector<simd::Tier> tiers = {simd::Tier::kOff};
  for (simd::Tier t : usable_tiers()) tiers.push_back(t);
  for (const simd::Tier tier : tiers) {
    simd::override_tier(tier);
    run_cohorts(cases, cases.size(), results);  // one cohort holds them all
    for (std::size_t i = 0; i < cases.size(); ++i) {
      expect_bit_identical(oracle[i], results[i],
                           cases[i].context + " mixed tier " +
                               simd::tier_name(tier));
    }
  }
}

}  // namespace
}  // namespace iw::platform
