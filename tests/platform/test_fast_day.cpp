// The fast path's contract: simulate_day_fast[_with_policy] is bit-identical
// to the discrete-event engine path — same tick phase, same event order
// (including FIFO tie-breaking at coincident times), same accumulation order.
// This suite sweeps all 5 wearer archetypes x all policies x 32 seeded lux
// factors plus the structural edge cases, comparing every result field (and,
// with tracing on, every trace sample) byte for byte.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fleet/scenario.hpp"
#include "platform/detection_cost.hpp"
#include "platform/device.hpp"
#include "platform/fast_day.hpp"
#include "platform/scheduler.hpp"

namespace iw::platform {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

void expect_bit_identical(const DaySimulationResult& engine,
                          const DaySimulationResult& fast,
                          const std::string& context) {
  EXPECT_EQ(engine.detections_attempted, fast.detections_attempted) << context;
  EXPECT_EQ(engine.detections_completed, fast.detections_completed) << context;
  EXPECT_EQ(engine.detections_skipped, fast.detections_skipped) << context;
  EXPECT_EQ(bits(engine.harvested_j), bits(fast.harvested_j)) << context;
  EXPECT_EQ(bits(engine.consumed_j), bits(fast.consumed_j)) << context;
  EXPECT_EQ(bits(engine.initial_soc), bits(fast.initial_soc)) << context;
  EXPECT_EQ(bits(engine.final_soc), bits(fast.final_soc)) << context;
  EXPECT_EQ(bits(engine.min_soc), bits(fast.min_soc)) << context;

  const std::vector<std::string> channels = engine.trace.channel_names();
  ASSERT_EQ(channels, fast.trace.channel_names()) << context;
  for (const std::string& name : channels) {
    const sim::TraceChannel& a = engine.trace.channel(name);
    const sim::TraceChannel& b = fast.trace.channel(name);
    ASSERT_EQ(a.times.size(), b.times.size()) << context << " channel " << name;
    for (std::size_t i = 0; i < a.times.size(); ++i) {
      ASSERT_EQ(bits(a.times[i]), bits(b.times[i]))
          << context << " channel " << name << " sample " << i;
      ASSERT_EQ(bits(a.values[i]), bits(b.values[i]))
          << context << " channel " << name << " sample " << i;
    }
  }
}

/// Runs both paths on the same inputs and pins their equality.
void check_day(const DeviceConfig& config, const hv::DayProfile& profile,
               const DetectionPolicy* policy, const std::string& context) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  const DaySimulationResult engine =
      policy != nullptr ? simulate_day_with_policy(config, harvester, profile, *policy)
                        : simulate_day(config, harvester, profile);
  const DaySimulationResult fast =
      policy != nullptr
          ? simulate_day_fast_with_policy(config, harvester, profile, *policy)
          : simulate_day_fast(config, harvester, profile);
  expect_bit_identical(engine, fast, context);
}

TEST(FastDay, AllArchetypesAllPoliciesManyLuxFactors) {
  // The fleet's own worlds: every wearer archetype, under every scheduling
  // mode (engine periodic stream, plus each DetectionPolicy implementation),
  // across 32 seeded day-to-day lux factors. Tracing stays on so the event
  // times and order are compared sample by sample, not just the aggregates.
  Rng rng(0xfa57da1ULL);
  for (int p = 0; p < fleet::kNumWearerProfiles; ++p) {
    fleet::Scenario scenario = fleet::sample_scenario(2020, 100 + p);
    scenario.profile = static_cast<fleet::WearerProfile>(p);
    const hv::DayProfile base = fleet::build_day_profile(scenario);

    DeviceConfig config;
    config.detection = make_detection_cost({});
    config.detection_period_s = scenario.detection_period_s;
    config.initial_soc = scenario.initial_soc;
    config.record_trace = true;

    const FixedRatePolicy fixed(scenario.detection_period_s);
    const SocProportionalPolicy soc_prop(0.5, 4.0);
    const EnergyNeutralPolicy neutral;
    const std::vector<const DetectionPolicy*> policies{nullptr, &fixed, &soc_prop,
                                                       &neutral};

    for (int f = 0; f < 32; ++f) {
      const double lux_factor = std::exp(rng.normal(0.0, scenario.lux_sigma_day));
      const hv::DayProfile profile = scale_profile_lux(base, lux_factor);
      for (std::size_t i = 0; i < policies.size(); ++i) {
        check_day(config, profile, policies[i],
                  "archetype " + std::string(fleet::to_string(scenario.profile)) +
                      " policy " + std::to_string(i) + " lux " + std::to_string(f));
      }
    }
  }
}

TEST(FastDay, CoincidentEventTieBreaking) {
  // Detection period == harvest tick: the engine pops the harvest tick first
  // at every coincident time (it was scheduled first). Period 90 vs tick 60:
  // at t=180 the detection event was pushed earlier (t=90) than the harvest
  // event (t=120), so the detection fires first. Period 30: two detections
  // per tick, one coincident. All three orderings must replay exactly.
  hv::Environment lit;
  lit.lux = 900.0;
  const hv::DayProfile profile{{6.0 * 3600.0, lit}};
  for (double period : {60.0, 90.0, 30.0, 45.0}) {
    DeviceConfig config;
    config.detection = make_detection_cost({});
    config.detection_period_s = period;
    config.record_trace = true;
    check_day(config, profile, nullptr, "period " + std::to_string(period));
  }
}

TEST(FastDay, DetectionPeriodNotDividingDay) {
  hv::Environment dim;
  dim.lux = 200.0;
  const hv::DayProfile profile{{86400.0, dim}};
  for (double period : {97.0, 61.0, 86399.0, 86400.0, 100000.0}) {
    DeviceConfig config;
    config.detection = make_detection_cost({});
    config.detection_period_s = period;
    config.record_trace = true;
    check_day(config, profile, nullptr, "period " + std::to_string(period));
  }
}

TEST(FastDay, ZeroLengthSegments) {
  hv::Environment bright;
  bright.lux = 5000.0;
  hv::Environment dark;
  const hv::DayProfile profile{
      {0.0, bright}, {3600.0, dark}, {0.0, dark}, {1800.0, bright}, {0.0, bright}};
  DeviceConfig config;
  config.detection = make_detection_cost({});
  config.record_trace = true;
  check_day(config, profile, nullptr, "zero-length segments");
  const EnergyNeutralPolicy neutral;
  check_day(config, profile, &neutral, "zero-length segments + policy");
}

TEST(FastDay, BatteryPinnedAtEmpty) {
  hv::Environment dead;  // pitch black, not worn: zero intake
  dead.worn = false;
  const hv::DayProfile profile{{4.0 * 3600.0, dead}};
  DeviceConfig config;
  config.detection = make_detection_cost({});
  config.initial_soc = 0.0;
  config.record_trace = true;
  check_day(config, profile, nullptr, "empty battery");
  const SocProportionalPolicy soc_prop(0.5, 4.0);
  check_day(config, profile, &soc_prop, "empty battery + policy");
}

TEST(FastDay, BatteryPinnedAtFull) {
  hv::Environment blazing;
  blazing.lux = 60000.0;
  const hv::DayProfile profile{{4.0 * 3600.0, blazing}};
  DeviceConfig config;
  config.detection = make_detection_cost({});
  config.initial_soc = 1.0;
  config.detection_period_s = 300.0;
  config.record_trace = true;
  check_day(config, profile, nullptr, "full battery");
  const EnergyNeutralPolicy neutral;
  check_day(config, profile, &neutral, "full battery + policy");
}

TEST(FastDay, SleepDrainAndShortHorizons) {
  hv::Environment dim;
  dim.lux = 150.0;
  DeviceConfig config;
  config.detection = make_detection_cost({});
  config.sleep_power_w = 20e-6;
  config.record_trace = true;
  // Horizon shorter than the harvest tick (no tick ever fires), equal to one
  // tick, and a non-multiple of the tick.
  for (double seconds : {30.0, 60.0, 3601.0, 5430.5}) {
    const hv::DayProfile profile{{seconds, dim}};
    check_day(config, profile, nullptr, "horizon " + std::to_string(seconds));
  }
}

TEST(FastDay, PolicyIntervalOvershootingHorizonStopsStream) {
  // A policy that immediately pushes the next attempt past the horizon: the
  // engine never re-schedules, the fast path must retire the stream too.
  struct OneShotPolicy final : DetectionPolicy {
    std::string name() const override { return "one-shot"; }
    double next_interval_s(const SchedulerState&) const override { return 1e9; }
  };
  hv::Environment dim;
  dim.lux = 400.0;
  const hv::DayProfile profile{{7200.0, dim}};
  DeviceConfig config;
  config.detection = make_detection_cost({});
  config.record_trace = true;
  const OneShotPolicy policy;
  check_day(config, profile, &policy, "one-shot policy");
}

TEST(FastDay, TraceOffMatchesScalars) {
  // With tracing off (the fleet configuration) the scalar fields must still
  // agree bit for bit, and neither path should materialize any channel.
  fleet::Scenario scenario = fleet::sample_scenario(7, 3);
  const hv::DayProfile profile = fleet::build_day_profile(scenario);
  DeviceConfig config;
  config.detection = make_detection_cost({});
  config.detection_period_s = scenario.detection_period_s;
  config.initial_soc = scenario.initial_soc;
  check_day(config, profile, nullptr, "trace off");
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  EXPECT_TRUE(simulate_day_fast(config, harvester, profile).trace.channel_names().empty());
}

TEST(FastDay, RejectsBadConfigLikeEngine) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  const hv::DayProfile profile{{3600.0, hv::Environment{}}};
  DeviceConfig config;
  config.detection = make_detection_cost({});
  config.detection_period_s = 0.0;
  EXPECT_THROW(simulate_day_fast(config, harvester, profile), Error);
  config.detection_period_s = 60.0;
  config.harvest_tick_s = -1.0;
  EXPECT_THROW(simulate_day_fast(config, harvester, profile), Error);
  config.harvest_tick_s = 60.0;
  EXPECT_THROW(simulate_day_fast(config, harvester, hv::DayProfile{}), Error);
}

TEST(FastDay, ScaleProfileLuxIntoReusesBuffer) {
  fleet::Scenario scenario = fleet::sample_scenario(7, 5);
  const hv::DayProfile base = fleet::build_day_profile(scenario);
  hv::DayProfile scaled;
  scale_profile_lux_into(base, 2.0, scaled);
  const hv::EnvironmentSegment* data = scaled.data();
  ASSERT_EQ(scaled.size(), base.size());
  EXPECT_EQ(bits(scaled[1].env.lux), bits(base[1].env.lux * 2.0));
  // A second scaling of an equally long profile must not reallocate.
  scale_profile_lux_into(base, 0.5, scaled);
  EXPECT_EQ(scaled.data(), data);
  EXPECT_THROW(scale_profile_lux_into(base, -1.0, scaled), Error);
}

}  // namespace
}  // namespace iw::platform
