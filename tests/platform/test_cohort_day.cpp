// The cohort kernel's contract: CohortDayState::run_day is bit-identical,
// lane by lane, to the scalar fast path (and transitively to the
// discrete-event engine, which test_fast_day.cpp pins) on the same inputs —
// for any cohort size, any mix of configs/profiles/policies in one cohort,
// and regardless of what else shares the cohort or how warm its caches are.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fleet/scenario.hpp"
#include "platform/cohort_day.hpp"
#include "platform/detection_cost.hpp"
#include "platform/device.hpp"
#include "platform/fast_day.hpp"
#include "platform/scheduler.hpp"

namespace iw::platform {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

void expect_bit_identical(const DaySimulationResult& oracle,
                          const DaySimulationResult& cohort,
                          const std::string& context) {
  EXPECT_EQ(oracle.detections_attempted, cohort.detections_attempted) << context;
  EXPECT_EQ(oracle.detections_completed, cohort.detections_completed) << context;
  EXPECT_EQ(oracle.detections_skipped, cohort.detections_skipped) << context;
  EXPECT_EQ(bits(oracle.harvested_j), bits(cohort.harvested_j)) << context;
  EXPECT_EQ(bits(oracle.consumed_j), bits(cohort.consumed_j)) << context;
  EXPECT_EQ(bits(oracle.initial_soc), bits(cohort.initial_soc)) << context;
  EXPECT_EQ(bits(oracle.final_soc), bits(cohort.final_soc)) << context;
  EXPECT_EQ(bits(oracle.min_soc), bits(cohort.min_soc)) << context;

  const std::vector<std::string> channels = oracle.trace.channel_names();
  ASSERT_EQ(channels, cohort.trace.channel_names()) << context;
  for (const std::string& name : channels) {
    const sim::TraceChannel& a = oracle.trace.channel(name);
    const sim::TraceChannel& b = cohort.trace.channel(name);
    ASSERT_EQ(a.times.size(), b.times.size()) << context << " channel " << name;
    for (std::size_t i = 0; i < a.times.size(); ++i) {
      ASSERT_EQ(bits(a.times[i]), bits(b.times[i]))
          << context << " channel " << name << " sample " << i;
      ASSERT_EQ(bits(a.values[i]), bits(b.values[i]))
          << context << " channel " << name << " sample " << i;
    }
  }
}

/// One device-day the suite can both run through a cohort and replay through
/// the scalar oracle. Owns its inputs so member pointers stay valid.
struct Case {
  DeviceConfig config;
  hv::DayProfile profile;
  const DetectionPolicy* policy = nullptr;
  std::string context;
};

const hv::DualSourceHarvester& shared_harvester() {
  static const hv::DualSourceHarvester harvester =
      hv::DualSourceHarvester::calibrated();
  return harvester;
}

DaySimulationResult run_oracle(const Case& c) {
  return c.policy != nullptr
             ? simulate_day_fast_with_policy(c.config, shared_harvester(),
                                             c.profile, *c.policy)
             : simulate_day_fast(c.config, shared_harvester(), c.profile);
}

/// Runs `cases` through one CohortDayState in cohorts of `cohort_size` and
/// pins every lane against the scalar oracle.
void check_cohorts(const std::vector<Case>& cases, std::size_t cohort_size) {
  CohortDayState cohort;
  std::vector<DaySimulationResult> results(cases.size());
  std::vector<CohortMember> members;
  for (std::size_t begin = 0; begin < cases.size(); begin += cohort_size) {
    const std::size_t end = std::min(begin + cohort_size, cases.size());
    members.clear();
    for (std::size_t i = begin; i < end; ++i) {
      members.push_back(CohortMember{&cases[i].config, &shared_harvester(),
                                     &cases[i].profile, cases[i].policy,
                                     &results[i]});
    }
    cohort.run_day(members);
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expect_bit_identical(run_oracle(cases[i]), results[i],
                         cases[i].context + " cohort_size " +
                             std::to_string(cohort_size));
  }
}

std::vector<Case> fleet_case_pool(int lux_factors_per_archetype) {
  // The fleet's own worlds: every wearer archetype under every scheduling
  // mode, across seeded day-to-day lux factors. Tracing on so event times
  // and order are compared sample by sample.
  static const FixedRatePolicy fixed(60.0);
  static const SocProportionalPolicy soc_prop(0.5, 4.0);
  static const EnergyNeutralPolicy neutral;
  const std::vector<const DetectionPolicy*> policies{nullptr, &fixed, &soc_prop,
                                                     &neutral};
  std::vector<Case> cases;
  Rng rng(0xc0407da1ULL);
  for (int p = 0; p < fleet::kNumWearerProfiles; ++p) {
    fleet::Scenario scenario = fleet::sample_scenario(2020, 100 + p);
    scenario.profile = static_cast<fleet::WearerProfile>(p);
    const hv::DayProfile base = fleet::build_day_profile(scenario);
    for (int f = 0; f < lux_factors_per_archetype; ++f) {
      const double lux_factor = std::exp(rng.normal(0.0, scenario.lux_sigma_day));
      for (std::size_t i = 0; i < policies.size(); ++i) {
        Case c;
        c.config.detection = make_detection_cost({});
        c.config.detection_period_s = scenario.detection_period_s;
        c.config.initial_soc = scenario.initial_soc;
        c.config.record_trace = true;
        c.profile = scale_profile_lux(base, lux_factor);
        c.policy = policies[i];
        c.context = "archetype " + std::string(fleet::to_string(scenario.profile)) +
                    " policy " + std::to_string(i) + " lux " + std::to_string(f);
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

TEST(CohortDay, AllArchetypesAllPoliciesLuxSweepAcrossCohortSizes) {
  const std::vector<Case> cases = fleet_case_pool(4);  // 5 x 4 x 4 = 80 lanes
  // 1 (degenerate cohort), 2, a size that is neither a divisor of the pool
  // nor a multiple of any internal tile, and one larger than a fleet chunk.
  for (std::size_t cohort_size : {std::size_t{1}, std::size_t{2}, std::size_t{13},
                                  std::size_t{64}}) {
    check_cohorts(cases, cohort_size);
  }
}

TEST(CohortDay, HeterogeneousClocksAndShapesInOneCohort) {
  // Lanes with different harvest ticks, horizons and segment layouts land in
  // different clock groups / shape tables of the same run_day call.
  hv::Environment bright;
  bright.lux = 5000.0;
  hv::Environment dark;
  std::vector<Case> cases;
  const double ticks[] = {60.0, 30.0, 97.0};
  const double hours[] = {24.0, 6.0, 5.5};
  for (double tick : ticks) {
    for (double h : hours) {
      Case c;
      c.config.detection = make_detection_cost({});
      c.config.harvest_tick_s = tick;
      c.config.detection_period_s = 90.0;
      c.config.record_trace = true;
      c.profile = {{h * 1800.0, bright}, {h * 1800.0, dark}};
      c.context = "tick " + std::to_string(tick) + " hours " + std::to_string(h);
      cases.push_back(std::move(c));
    }
  }
  check_cohorts(cases, cases.size());  // one cohort holding all of them
}

TEST(CohortDay, ResultsIndependentOfCohortComposition) {
  // The same device-day must produce the same bits alone, first-in-cohort,
  // and last-in-cohort — lanes share caches, never state.
  const std::vector<Case> cases = fleet_case_pool(2);
  std::vector<DaySimulationResult> alone(cases.size());
  CohortDayState solo;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CohortMember m{&cases[i].config, &shared_harvester(), &cases[i].profile,
                         cases[i].policy, &alone[i]};
    solo.run_day({&m, 1});
  }
  std::vector<DaySimulationResult> grouped(cases.size());
  std::vector<CohortMember> members;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    members.push_back(CohortMember{&cases[i].config, &shared_harvester(),
                                   &cases[i].profile, cases[i].policy,
                                   &grouped[i]});
  }
  CohortDayState together;
  together.run_day(members);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expect_bit_identical(alone[i], grouped[i], cases[i].context + " composition");
  }
}

TEST(CohortDay, WarmCachesReplayIdentically) {
  // A second run_day on the same members must hit the shape and gate caches
  // (no growth) and reproduce the first run bit for bit.
  const std::vector<Case> cases = fleet_case_pool(1);
  std::vector<DaySimulationResult> first(cases.size());
  std::vector<DaySimulationResult> second(cases.size());
  CohortDayState cohort;
  std::vector<CohortMember> members;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    members.push_back(CohortMember{&cases[i].config, &shared_harvester(),
                                   &cases[i].profile, cases[i].policy, &first[i]});
  }
  cohort.run_day(members);
  const std::size_t shapes = cohort.shape_cache_size();
  const std::size_t gates = cohort.gate_cache_size();
  EXPECT_GE(shapes, 1u);
  EXPECT_EQ(gates, 1u);  // one battery spec + detection cost in the pool
  for (std::size_t i = 0; i < cases.size(); ++i) members[i].result = &second[i];
  cohort.run_day(members);
  EXPECT_EQ(cohort.shape_cache_size(), shapes);
  EXPECT_EQ(cohort.gate_cache_size(), gates);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expect_bit_identical(first[i], second[i], cases[i].context + " warm replay");
  }
}

TEST(CohortDay, StructuralEdgeCases) {
  // The fast-day suite's edge worlds, all sharing one cohort: zero-length
  // segments, batteries pinned empty and full, sleep drain with horizons
  // shorter than / equal to / astride the harvest tick, and a policy whose
  // first interval overshoots the horizon (stream retires immediately).
  static const SocProportionalPolicy soc_prop(0.5, 4.0);
  static const EnergyNeutralPolicy neutral;
  struct OneShotPolicy final : DetectionPolicy {
    std::string name() const override { return "one-shot"; }
    double next_interval_s(const SchedulerState&) const override { return 1e9; }
  };
  static const OneShotPolicy one_shot;

  hv::Environment bright;
  bright.lux = 5000.0;
  hv::Environment dark;
  hv::Environment dead;
  dead.worn = false;
  hv::Environment blazing;
  blazing.lux = 60000.0;
  hv::Environment dim;
  dim.lux = 150.0;

  std::vector<Case> cases;
  {
    Case c;
    c.config.detection = make_detection_cost({});
    c.config.record_trace = true;
    c.profile = {{0.0, bright}, {3600.0, dark}, {0.0, dark}, {1800.0, bright},
                 {0.0, bright}};
    c.context = "zero-length segments";
    cases.push_back(c);
    c.policy = &neutral;
    c.context += " + policy";
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.config.detection = make_detection_cost({});
    c.config.initial_soc = 0.0;
    c.config.record_trace = true;
    c.profile = {{4.0 * 3600.0, dead}};
    c.context = "empty battery";
    cases.push_back(c);
    c.policy = &soc_prop;
    c.context += " + policy";
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.config.detection = make_detection_cost({});
    c.config.initial_soc = 1.0;
    c.config.detection_period_s = 300.0;
    c.config.record_trace = true;
    c.profile = {{4.0 * 3600.0, blazing}};
    c.context = "full battery";
    cases.push_back(std::move(c));
  }
  for (double seconds : {30.0, 60.0, 3601.0, 5430.5}) {
    Case c;
    c.config.detection = make_detection_cost({});
    c.config.sleep_power_w = 20e-6;
    c.config.record_trace = true;
    c.profile = {{seconds, dim}};
    c.context = "horizon " + std::to_string(seconds);
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.config.detection = make_detection_cost({});
    c.config.record_trace = true;
    c.profile = {{7200.0, dim}};
    c.policy = &one_shot;
    c.context = "one-shot policy";
    cases.push_back(std::move(c));
  }
  check_cohorts(cases, cases.size());
  check_cohorts(cases, 3);
}

TEST(CohortDay, RejectsBadMembersLikeScalarPaths) {
  const hv::DayProfile profile{{3600.0, hv::Environment{}}};
  DeviceConfig config;
  config.detection = make_detection_cost({});
  DaySimulationResult result;
  CohortDayState cohort;

  CohortMember null_config{nullptr, &shared_harvester(), &profile, nullptr,
                           &result};
  EXPECT_THROW(cohort.run_day({&null_config, 1}), Error);

  config.detection_period_s = 0.0;
  CohortMember bad_period{&config, &shared_harvester(), &profile, nullptr,
                          &result};
  EXPECT_THROW(cohort.run_day({&bad_period, 1}), Error);

  config.detection_period_s = 60.0;
  config.harvest_tick_s = -1.0;
  CohortMember bad_tick{&config, &shared_harvester(), &profile, nullptr, &result};
  EXPECT_THROW(cohort.run_day({&bad_tick, 1}), Error);

  config.harvest_tick_s = 60.0;
  const hv::DayProfile empty;
  CohortMember empty_profile{&config, &shared_harvester(), &empty, nullptr,
                             &result};
  EXPECT_THROW(cohort.run_day({&empty_profile, 1}), Error);
}

TEST(CohortDay, TraceOffMatchesScalarsAndStaysEmpty) {
  fleet::Scenario scenario = fleet::sample_scenario(7, 3);
  const hv::DayProfile profile = fleet::build_day_profile(scenario);
  DeviceConfig config;
  config.detection = make_detection_cost({});
  config.detection_period_s = scenario.detection_period_s;
  config.initial_soc = scenario.initial_soc;
  DaySimulationResult result;
  CohortDayState cohort;
  const CohortMember m{&config, &shared_harvester(), &profile, nullptr, &result};
  cohort.run_day({&m, 1});
  expect_bit_identical(simulate_day_fast(config, shared_harvester(), profile),
                       result, "trace off");
  EXPECT_TRUE(result.trace.channel_names().empty());
}

}  // namespace
}  // namespace iw::platform
