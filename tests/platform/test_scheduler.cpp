#include "platform/scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "harvest/harvester.hpp"
#include "platform/device.hpp"

namespace iw::platform {
namespace {

SchedulerState state_with(double soc, double intake_w = 100e-6) {
  SchedulerState s;
  s.soc = soc;
  s.recent_intake_w = intake_w;
  s.detection_energy_j = 602e-6;
  return s;
}

TEST(FixedRatePolicy, ConstantInterval) {
  const FixedRatePolicy policy(30.0);
  EXPECT_DOUBLE_EQ(policy.next_interval_s(state_with(0.1)), 30.0);
  EXPECT_DOUBLE_EQ(policy.next_interval_s(state_with(0.9)), 30.0);
  EXPECT_THROW(FixedRatePolicy(0.0), Error);
}

TEST(SocProportionalPolicy, RateGrowsWithSoc) {
  const SocProportionalPolicy policy(1.0, 24.0);
  const double low = policy.next_interval_s(state_with(0.3));
  const double high = policy.next_interval_s(state_with(0.7));
  EXPECT_GT(low, high);  // higher SoC -> shorter interval
}

TEST(SocProportionalPolicy, SurvivalModeBelowLowWater) {
  const SocProportionalPolicy policy(1.0, 24.0, 0.15, 0.80);
  // Below the low-water mark: one tenth of the minimum rate.
  EXPECT_NEAR(policy.next_interval_s(state_with(0.10)), 600.0, 1e-9);
}

TEST(SocProportionalPolicy, SaturatesAtHighWater) {
  const SocProportionalPolicy policy(1.0, 24.0, 0.15, 0.80);
  EXPECT_NEAR(policy.next_interval_s(state_with(0.85)), 60.0 / 24.0, 1e-9);
  EXPECT_NEAR(policy.next_interval_s(state_with(1.0)), 60.0 / 24.0, 1e-9);
}

TEST(SocProportionalPolicy, Validation) {
  EXPECT_THROW(SocProportionalPolicy(0.0, 24.0), Error);
  EXPECT_THROW(SocProportionalPolicy(10.0, 5.0), Error);
  EXPECT_THROW(SocProportionalPolicy(1.0, 24.0, 0.8, 0.2), Error);
}

TEST(EnergyNeutralPolicy, RateTracksIntake) {
  const EnergyNeutralPolicy policy(1.0, 0.1, 120.0, 0.5);
  // 602 uJ per detection, 602 uW intake -> 1 detection/s = 60/min at SoC 0.5.
  const double interval = policy.next_interval_s(state_with(0.5, 602e-6));
  EXPECT_NEAR(interval, 1.0, 0.05);
  // A tenth of the intake -> a tenth of the rate.
  const double slow = policy.next_interval_s(state_with(0.5, 60.2e-6));
  EXPECT_NEAR(slow, 10.0, 0.5);
}

TEST(EnergyNeutralPolicy, SocCorrectionSpendsSurplus) {
  const EnergyNeutralPolicy policy(1.0, 0.1, 120.0, 0.5);
  const double above = policy.next_interval_s(state_with(0.8, 100e-6));
  const double below = policy.next_interval_s(state_with(0.2, 100e-6));
  EXPECT_LT(above, below);  // surplus -> detect more often
}

TEST(EnergyNeutralPolicy, ClampsToRateBounds) {
  const EnergyNeutralPolicy policy(0.9, 1.0, 24.0, 0.5);
  // Zero intake: clamped to the minimum rate (60 s / 1 per min).
  EXPECT_NEAR(policy.next_interval_s(state_with(0.5, 0.0)), 60.0, 1e-9);
  // Huge intake: clamped to the maximum rate.
  EXPECT_NEAR(policy.next_interval_s(state_with(0.5, 1.0)), 60.0 / 24.0, 1e-9);
}

TEST(EnergyNeutralPolicy, Validation) {
  EXPECT_THROW(EnergyNeutralPolicy(0.0), Error);
  EXPECT_THROW(EnergyNeutralPolicy(1.5), Error);
  const EnergyNeutralPolicy policy;
  SchedulerState bad = state_with(0.5);
  bad.detection_energy_j = 0.0;
  EXPECT_THROW(policy.next_interval_s(bad), Error);
}

// ---------------------------------------------------------- closed-loop runs

DeviceConfig harsh_config() {
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  config.detection_period_s = 5.0;
  config.initial_soc = 0.001;  // nearly empty battery
  return config;
}

hv::DayProfile dark_day() {
  hv::Environment env;  // no light, body heat only
  env.lux = 0.0;
  env.skin_c = 32.0;
  env.ambient_c = 22.0;
  return hv::DayProfile{{6.0 * 3600.0, env}};
}

TEST(AdaptiveScheduling, EnergyNeutralSurvivesWhereFixedRateStarves) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  const DeviceConfig config = harsh_config();

  // Aggressive fixed rate on a near-empty battery in the dark: detections
  // outpace the ~24 uW TEG intake and most attempts are skipped.
  const DaySimulationResult fixed = simulate_day(config, harvester, dark_day());
  EXPECT_GT(fixed.detections_skipped, 1000u);  // starves once the buffer is gone

  const EnergyNeutralPolicy policy(0.9, 0.1, 24.0, 0.3);
  const DaySimulationResult adaptive =
      simulate_day_with_policy(config, harvester, dark_day(), policy);
  // The adaptive schedule throttles to what the TEG provides: a far larger
  // fraction of its attempts succeed.
  const double fixed_yield = static_cast<double>(fixed.detections_completed) /
                             static_cast<double>(fixed.detections_attempted);
  const double adaptive_yield =
      static_cast<double>(adaptive.detections_completed) /
      static_cast<double>(adaptive.detections_attempted);
  EXPECT_GT(adaptive_yield, fixed_yield + 0.3);
  EXPECT_GE(adaptive.final_soc, 0.0);
}

TEST(AdaptiveScheduling, ExploitsAbundantEnergy) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  config.detection_period_s = 60.0;
  config.initial_soc = 0.8;
  config.record_trace = true;  // the assertion below reads the interval trace
  hv::Environment sunny;
  sunny.lux = 30000.0;
  const hv::DayProfile day{{2.0 * 3600.0, sunny}};

  const EnergyNeutralPolicy policy(0.9, 0.5, 60.0, 0.5);
  const DaySimulationResult adaptive =
      simulate_day_with_policy(config, harvester, day, policy);
  const DaySimulationResult fixed = simulate_day(config, harvester, day);
  // In full sun the adaptive policy detects far more often than 1/min.
  EXPECT_GT(adaptive.detections_completed, 3 * fixed.detections_completed);
  EXPECT_TRUE(adaptive.trace.has_channel("interval_s"));
}

TEST(AdaptiveScheduling, PolicyIntervalValidated) {
  struct BadPolicy final : DetectionPolicy {
    std::string name() const override { return "bad"; }
    double next_interval_s(const SchedulerState&) const override { return -1.0; }
  };
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  EXPECT_THROW(
      simulate_day_with_policy(config, harvester, dark_day(), BadPolicy{}),
      Error);
}

}  // namespace
}  // namespace iw::platform
