#include <gtest/gtest.h>

#include "common/error.hpp"
#include "harvest/harvester.hpp"
#include "platform/detection_cost.hpp"
#include "platform/device.hpp"
#include "power/battery.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace iw::platform {
namespace {

TEST(DetectionCost, PaperBreakdown) {
  // Section IV: acquisition ~600 uJ, features 1 uJ, best classification
  // 1.2 uJ -> total 602.2 uJ.
  DetectionCostParams params;
  const DetectionCost cost = make_detection_cost(params);
  EXPECT_NEAR(cost.acquisition_j * 1e6, 603.0, 1.0);
  EXPECT_NEAR(cost.feature_extraction_j * 1e6, 1.0, 0.05);
  EXPECT_NEAR(cost.classification_j * 1e6, 1.2, 0.05);
  EXPECT_NEAR(cost.total_j() * 1e6, 602.2, 4.0);
  EXPECT_NEAR(cost.duration_s, 3.0, 0.01);
}

TEST(DetectionCost, M4ClassificationCostsMore) {
  DetectionCostParams m4;
  m4.classification_cycles = 30210;  // paper Table III, Network A on M4
  m4.classification_processor = pwr::nordic_m4();
  DetectionCostParams multi;
  const double m4_j = make_detection_cost(m4).classification_j;
  const double multi_j = make_detection_cost(multi).classification_j;
  EXPECT_NEAR(m4_j * 1e6, 5.1, 0.2);  // paper Table IV
  EXPECT_GT(m4_j, multi_j);
}

TEST(DetectionCost, NotificationAddsBleEnergy) {
  DetectionCostParams params;
  params.notification_bytes = 4.0;
  const DetectionCost with = make_detection_cost(params);
  params.notification_bytes = 0.0;
  const DetectionCost without = make_detection_cost(params);
  EXPECT_GT(with.notification_j, 0.0);
  EXPECT_DOUBLE_EQ(without.notification_j, 0.0);
  EXPECT_GT(with.total_j(), without.total_j());
}

TEST(Device, EnvironmentLookupWalksSegments) {
  hv::DayProfile profile;
  hv::Environment a, b;
  a.lux = 100.0;
  b.lux = 900.0;
  profile.push_back({10.0, a});
  profile.push_back({20.0, b});
  EXPECT_DOUBLE_EQ(environment_at(profile, 5.0).lux, 100.0);
  EXPECT_DOUBLE_EQ(environment_at(profile, 15.0).lux, 900.0);
  EXPECT_DOUBLE_EQ(environment_at(profile, 35.0).lux, 100.0);  // wraps
  EXPECT_THROW(environment_at({}, 0.0), Error);
}

TEST(Device, DayAtPaperRateIsSustainable) {
  // One detection per minute costs ~0.87 J/day, far below the ~21 J/day
  // harvest: SoC must not decrease.
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  config.detection_period_s = 60.0;
  config.initial_soc = 0.5;
  const DaySimulationResult result =
      simulate_day(config, harvester, hv::paper_worst_case_day());
  EXPECT_EQ(result.detections_skipped, 0u);
  EXPECT_NEAR(static_cast<double>(result.detections_completed), 1440.0, 2.0);
  EXPECT_GE(result.final_soc, result.initial_soc);
  EXPECT_NEAR(result.harvested_j, 21.44, 1.2);
}

TEST(Device, OverAggressiveRateDrainsBattery) {
  // 40 detections/minute (~35 J/day) exceeds the ~21 J/day harvest: the
  // battery must end the day lower than it started.
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  config.detection_period_s = 1.5;
  config.initial_soc = 0.5;
  const DaySimulationResult result =
      simulate_day(config, harvester, hv::paper_worst_case_day());
  EXPECT_LT(result.final_soc, result.initial_soc);
  EXPECT_GT(result.consumed_j, result.harvested_j);
}

TEST(Device, EmptyBatterySkipsDetections) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  config.detection_period_s = 60.0;
  config.initial_soc = 0.0;
  // Pitch black, not worn: no intake at all.
  hv::Environment dead;
  dead.lux = 0.0;
  dead.worn = false;
  const hv::DayProfile profile{{3600.0, dead}};
  const DaySimulationResult result = simulate_day(config, harvester, profile);
  EXPECT_EQ(result.detections_completed, 0u);
  EXPECT_GT(result.detections_skipped, 0u);
}

TEST(Device, TraceChannelsRecorded) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  config.record_trace = true;
  const hv::DayProfile profile{{1800.0, hv::Environment{}}};
  const DaySimulationResult result = simulate_day(config, harvester, profile);
  EXPECT_TRUE(result.trace.has_channel("soc"));
  EXPECT_TRUE(result.trace.has_channel("intake_w"));
  EXPECT_TRUE(result.trace.has_channel("detection"));
}

TEST(Device, TraceOffByDefaultButMinSocStillTracked) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  const hv::DayProfile profile{{1800.0, hv::Environment{}}};
  const DaySimulationResult result = simulate_day(config, harvester, profile);
  EXPECT_FALSE(result.trace.has_channel("soc"));
  EXPECT_FALSE(result.trace.has_channel("intake_w"));
  EXPECT_FALSE(result.trace.has_channel("detection"));
  // The scalar SoC minimum replaces the trace summary for non-trace users.
  EXPECT_LE(result.min_soc, result.initial_soc);
  EXPECT_LE(result.min_soc, result.final_soc + 1e-12);
}

TEST(Device, ScaleProfileLux) {
  hv::DayProfile profile = hv::paper_worst_case_day();
  const hv::DayProfile doubled = scale_profile_lux(profile, 2.0);
  EXPECT_DOUBLE_EQ(doubled[0].env.lux, 2.0 * profile[0].env.lux);
  EXPECT_DOUBLE_EQ(doubled[1].env.lux, 0.0);  // dark stays dark
  EXPECT_THROW(scale_profile_lux(profile, -1.0), Error);
}

TEST(Device, MultiDayCarriesBatteryState) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  config.detection_period_s = 60.0;
  config.initial_soc = 0.4;
  Rng rng(1);
  const MultiDayResult result =
      simulate_days(config, harvester, hv::paper_worst_case_day(), 3, rng, 0.0);
  ASSERT_EQ(result.days.size(), 3u);
  // Day n starts where day n-1 ended.
  EXPECT_DOUBLE_EQ(result.days[1].initial_soc, result.days[0].final_soc);
  EXPECT_DOUBLE_EQ(result.days[2].initial_soc, result.days[1].final_soc);
  EXPECT_DOUBLE_EQ(result.final_soc, result.days[2].final_soc);
  EXPECT_EQ(result.total_detections, result.days[0].detections_completed +
                                         result.days[1].detections_completed +
                                         result.days[2].detections_completed);
  EXPECT_LE(result.min_soc, result.final_soc);
}

TEST(Device, MultiDayLuxVariationChangesHarvest) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection = make_detection_cost(DetectionCostParams{});
  Rng rng(2);
  const MultiDayResult varied =
      simulate_days(config, harvester, hv::paper_worst_case_day(), 5, rng, 0.8);
  double min_harvest = 1e9, max_harvest = 0.0;
  for (const auto& day : varied.days) {
    min_harvest = std::min(min_harvest, day.harvested_j);
    max_harvest = std::max(max_harvest, day.harvested_j);
  }
  EXPECT_GT(max_harvest, 1.3 * min_harvest);  // weather actually varies
  EXPECT_THROW(simulate_days(config, harvester, hv::paper_worst_case_day(), 0, rng),
               Error);
}

TEST(Device, ConfigValidation) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  DeviceConfig config;
  config.detection_period_s = 0.0;
  EXPECT_THROW(simulate_day(config, harvester, hv::paper_worst_case_day()), Error);
}

TEST(Device, DetectionGateMatchesExactEnergyEvaluation) {
  // The day kernel decides the attempt gate `stored_energy_j() >= need_j` by
  // comparing SoC against a once-per-day bisected window (DESIGN.md §10).
  // Pin its equivalence against an independent replay of the exact
  // per-attempt evaluation: a day with zero intake and no sleep drain
  // mutates the battery only through detections, so every gate decision and
  // discharge is reproducible outside the kernel. Initial SoCs sweep [0, 1]
  // and probe densely around the gate threshold, where the windowed and
  // exact decisions are most likely to disagree if the window were wrong.
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  hv::Environment off_wrist_dark;  // solar: 0 lux; TEG: not worn
  off_wrist_dark.lux = 0.0;
  off_wrist_dark.worn = false;
  const hv::DayProfile profile{{7200.0, off_wrist_dark}};  // 120 attempts

  DeviceConfig config;
  config.detection = make_detection_cost({});
  const double need_j = config.detection.total_j();

  // The threshold this test bisects independently of the kernel's window.
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const pwr::LipoBattery probe(config.battery, mid);
    (probe.stored_energy_j() >= need_j ? hi : lo) = mid;
  }

  std::vector<double> socs{0.0, 1.0};
  for (int i = 1; i < 32; ++i) socs.push_back(i / 32.0);
  for (double offset : {1e-9, 1e-7, 1e-6, 2e-6, 1e-5, 1e-3}) {
    socs.push_back(std::clamp(hi - offset, 0.0, 1.0));
    socs.push_back(std::clamp(hi + offset, 0.0, 1.0));
  }
  socs.push_back(hi);
  socs.push_back(lo);

  for (const double soc0 : socs) {
    config.initial_soc = soc0;
    const DaySimulationResult day = simulate_day(config, harvester, profile);

    pwr::LipoBattery battery(config.battery, soc0);
    std::uint64_t completed = 0, skipped = 0;
    for (int i = 0; i < 120; ++i) {
      bool done = false;
      if (battery.stored_energy_j() >= need_j && !battery.empty()) {
        const double power = need_j / config.detection.duration_s;
        const double got = battery.discharge(power, config.detection.duration_s);
        done = got >= 0.95 * need_j;
      }
      done ? ++completed : ++skipped;
    }
    EXPECT_EQ(day.detections_attempted, 120u) << "soc0 " << soc0;
    EXPECT_EQ(day.detections_completed, completed) << "soc0 " << soc0;
    EXPECT_EQ(day.detections_skipped, skipped) << "soc0 " << soc0;
    EXPECT_EQ(day.final_soc, battery.soc()) << "soc0 " << soc0;
  }
}

}  // namespace
}  // namespace iw::platform
