// Static energy certification of the paper's Network A classification:
// the interprocedural WCET certificate brackets the Table III dynamic
// reproductions, the certified energies bracket the Table IV operating
// points (1.2 uJ on the 8-core cluster, 5.1 uJ on the Cortex-M4), and
// make_detection_cost budgets at the certified ceiling when a certificate
// is supplied.
#include <cstdint>

#include <gtest/gtest.h>

#include "kernels/wcet.hpp"
#include "platform/detection_cost.hpp"
#include "power/processor_power.hpp"

namespace iw::platform {
namespace {

TEST(CertifiedCost, PaperCycleConstantMatchesTableIv) {
  // 61.26 us at 100 MHz: the published 8-core classification latency.
  EXPECT_EQ(kPaperClassificationCyclesMulti8, 6126u);
  const pwr::ProcessorPowerModel multi8 = pwr::mr_wolf_cluster_multi8();
  const double energy_j = multi8.energy_j(kPaperClassificationCyclesMulti8);
  EXPECT_NEAR(energy_j, 1.2e-6, 0.01e-6);
}

TEST(CertifiedCost, NetACertificateBracketsPaperAndDynamicCycles) {
  const kernels::NetACertificate cert = kernels::certify_net_a_multi8();
  // Sandwich around the reproduced dynamic run (pinned at 6131 by the
  // table3 regression; keep this assertion loose enough to survive timing
  // refinements without ever allowing an unsound certificate).
  EXPECT_GT(cert.floor_cycles, 0u);
  EXPECT_LE(cert.floor_cycles, cert.dynamic_cycles);
  EXPECT_GE(cert.ceiling_cycles, cert.dynamic_cycles);
  // The paper's published figure sits inside the certificate too, and the
  // dynamic reproduction lands within 0.5% of it.
  EXPECT_LE(cert.floor_cycles, kPaperClassificationCyclesMulti8);
  EXPECT_GE(cert.ceiling_cycles, kPaperClassificationCyclesMulti8);
  const double rel =
      static_cast<double>(cert.dynamic_cycles) /
          static_cast<double>(kPaperClassificationCyclesMulti8) -
      1.0;
  EXPECT_NEAR(rel, 0.0, 0.005);
}

TEST(CertifiedCost, CertifiedEnergiesBracketTableIvOperatingPoints) {
  // 8-core cluster: dynamic point is ~1.2 uJ; the certified floor/ceiling
  // energies must bracket it.
  const kernels::NetACertificate multi = kernels::certify_net_a_multi8();
  const double per_cycle_multi = pwr::mr_wolf_cluster_multi8().energy_per_cycle_j();
  const double floor_j = static_cast<double>(multi.floor_cycles) * per_cycle_multi;
  const double ceiling_j =
      static_cast<double>(multi.ceiling_cycles) * per_cycle_multi;
  EXPECT_LT(floor_j, 1.2e-6);
  EXPECT_GT(ceiling_j, 1.2e-6);

  // Cortex-M4 baseline: ~5.1 uJ at 64 MHz / 10.8 mW.
  const kernels::NetACertificate m4 = kernels::certify_net_a_m4();
  const double per_cycle_m4 = pwr::nordic_m4().energy_per_cycle_j();
  EXPECT_LT(static_cast<double>(m4.floor_cycles) * per_cycle_m4, 5.1e-6);
  EXPECT_GT(static_cast<double>(m4.ceiling_cycles) * per_cycle_m4, 5.1e-6);
}

TEST(CertifiedCost, DetectionCostBudgetsAtTheCertifiedCeiling) {
  DetectionCostParams point;  // no certificate: point estimate at 6126 cycles
  const DetectionCost baseline = make_detection_cost(point);

  const kernels::NetACertificate cert = kernels::certify_net_a_multi8();
  DetectionCostParams certified = point;
  certified.certificate.floor_cycles = cert.floor_cycles;
  certified.certificate.ceiling_cycles = cert.ceiling_cycles;
  ASSERT_TRUE(certified.certificate.valid());
  const DetectionCost bounded = make_detection_cost(certified);

  const double per_cycle = point.classification_processor.energy_per_cycle_j();
  EXPECT_DOUBLE_EQ(bounded.classification_j,
                   static_cast<double>(cert.ceiling_cycles) * per_cycle);
  // The ceiling exceeds the point estimate, so the certified budget is a
  // strict upper bound on the baseline; everything else is unchanged.
  EXPECT_GT(bounded.classification_j, baseline.classification_j);
  EXPECT_DOUBLE_EQ(bounded.acquisition_j, baseline.acquisition_j);
  EXPECT_DOUBLE_EQ(bounded.feature_extraction_j, baseline.feature_extraction_j);
  EXPECT_GE(bounded.duration_s, baseline.duration_s);
}

TEST(CertifiedCost, InvalidCertificateFallsBackToPointEstimate) {
  DetectionCostParams params;
  params.certificate.floor_cycles = 10;
  params.certificate.ceiling_cycles = 5;  // floor > ceiling: not a certificate
  EXPECT_FALSE(params.certificate.valid());
  const DetectionCost cost = make_detection_cost(params);
  const DetectionCost baseline = make_detection_cost(DetectionCostParams{});
  EXPECT_DOUBLE_EQ(cost.classification_j, baseline.classification_j);
}

}  // namespace
}  // namespace iw::platform
