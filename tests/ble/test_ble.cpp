#include "ble/ble.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iw::ble {
namespace {

TEST(Ble, EventEnergyGrowsWithPayload) {
  const BleLink link;
  const double empty = link.keepalive_event_energy_j();
  const double small = link.event_energy_j(20.0);
  const double large = link.event_energy_j(1000.0);
  EXPECT_GT(small, empty);
  EXPECT_GT(large, small);
}

TEST(Ble, EventEnergyOrderOfMagnitude) {
  // A keep-alive connection event on an nRF52 costs a handful of microjoules.
  const BleLink link;
  const double uj = link.keepalive_event_energy_j() * 1e6;
  EXPECT_GT(uj, 1.0);
  EXPECT_LT(uj, 30.0);
}

TEST(Ble, StreamingPowerGrowsWithRate) {
  const BleLink link;
  const double idle = link.idle_connection_power_w();
  const double slow = link.streaming_power_w(100.0);
  const double fast = link.streaming_power_w(10000.0);
  EXPECT_GT(slow, idle);
  EXPECT_GT(fast, slow);
}

TEST(Ble, RawBiosignalStreamCostsHundredsOfMicrowatts) {
  // The architecture argument: streaming the raw ECG + GSR (~832 B/s) costs
  // far more than the 1.2 uJ per local classification.
  const BleLink link;
  const double stream_w = link.streaming_power_w(832.0);
  EXPECT_GT(stream_w, 100e-6);
  EXPECT_LT(stream_w, 2e-3);
}

TEST(Ble, NotificationCheaperThanStreamingWindow) {
  const BleLink link;
  // One 4-byte classification result vs 3 s of raw data (2496 B).
  const double notify = link.notification_energy_j(4.0);
  const double stream = link.streaming_power_w(832.0) * 3.0;
  EXPECT_LT(notify, stream / 10.0);
}

TEST(Ble, LargePayloadSplitsIntoPdus) {
  const BleLink link;
  // 1000 bytes needs 5 PDUs of 244; energy must reflect the extra headers.
  const double one_pdu = link.event_energy_j(244.0);
  const double five_pdu = link.event_energy_j(1000.0);
  EXPECT_GT(five_pdu, 4.0 * (one_pdu - link.keepalive_event_energy_j()));
}

TEST(Ble, Validation) {
  const BleLink link;
  EXPECT_THROW(link.event_energy_j(-1.0), Error);
  EXPECT_THROW(link.streaming_power_w(-1.0), Error);
  BleRadioParams bad;
  bad.connection_interval_s = 0.0;
  EXPECT_THROW(BleLink{bad}, Error);
}

}  // namespace
}  // namespace iw::ble
