#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sensors/acquisition.hpp"
#include "sensors/afe.hpp"
#include "sensors/bus.hpp"

namespace iw::sensors {
namespace {

TEST(Afe, PaperPowerNumbers) {
  EXPECT_NEAR(max30001_ecg().active_power_w, 171e-6, 1e-9);  // paper: 171 uW
  EXPECT_NEAR(gsr_frontend().active_power_w, 30e-6, 1e-9);   // paper: 30 uW
}

TEST(Afe, PowerStates) {
  const SensorDevice ecg = max30001_ecg();
  EXPECT_DOUBLE_EQ(ecg.power_w(PowerState::kOff), 0.0);
  EXPECT_GT(ecg.power_w(PowerState::kActive), ecg.power_w(PowerState::kSleep));
}

TEST(Afe, AcquisitionEnergyScalesWithTime) {
  const SensorDevice ecg = max30001_ecg();
  EXPECT_NEAR(ecg.acquisition_energy_j(3.0), 3.0 * 171e-6, 1e-12);
  EXPECT_THROW(ecg.acquisition_energy_j(-1.0), Error);
}

TEST(Afe, DataRates) {
  EXPECT_DOUBLE_EQ(max30001_ecg().data_rate_bps(), 256.0 * 3.0);
  EXPECT_DOUBLE_EQ(gsr_frontend().data_rate_bps(), 32.0 * 2.0);
  EXPECT_GT(ics43434_microphone().data_rate_bps(), 40000.0);
}

TEST(Afe, RelativePowerOrdering) {
  // The biosignal front ends are the low-power path; IMU and mic cost more.
  EXPECT_LT(gsr_frontend().active_power_w, max30001_ecg().active_power_w);
  EXPECT_LT(max30001_ecg().active_power_w, icm20948_imu().active_power_w);
  EXPECT_LT(max30001_ecg().active_power_w, ics43434_microphone().active_power_w);
}

TEST(Acquisition, StressDetectionMatchesPaper) {
  const AcquisitionPlan plan = stress_detection_acquisition();
  // Paper: ECG 171 uW + GSR 30 uW over 3 s -> ~600 uJ ("needing 600 uJ").
  EXPECT_NEAR(plan.power_w(), 201e-6, 1e-9);
  EXPECT_NEAR(plan.energy_j() * 1e6, 603.0, 1.0);
  EXPECT_NEAR(plan.energy_j() * 1e6, 600.0, 5.0);  // paper's rounded value
}

TEST(Acquisition, BytesProduced) {
  const AcquisitionPlan plan = stress_detection_acquisition();
  // 3 s of ECG @ 256 Hz x 3 B + GSR @ 32 Hz x 2 B.
  EXPECT_NEAR(plan.bytes(), 3.0 * (256.0 * 3.0 + 32.0 * 2.0), 1e-9);
}

TEST(Bus, TransactionTimeComposition) {
  const BusConfig spi = spi_8mhz();
  const double t = transaction_time_s(spi, 16.0);
  EXPECT_NEAR(t, 2e-6 + 16.0 * 8.0 / 8e6, 1e-12);
  EXPECT_GT(transaction_time_s(i2c_400khz(), 16.0), t);  // I2C slower
}

TEST(Bus, EnergyProportionalToTime) {
  const BusConfig spi = spi_8mhz();
  EXPECT_NEAR(transaction_energy_j(spi, 16.0),
              transaction_time_s(spi, 16.0) * spi.active_power_w, 1e-15);
}

TEST(Bus, ThroughputBelowWireRate) {
  const BusConfig spi = spi_8mhz();
  EXPECT_LT(max_throughput_bps(spi, 32.0), 1e6);  // 8 Mbit = 1 MB/s ceiling
  EXPECT_GT(max_throughput_bps(spi, 1024.0), max_throughput_bps(spi, 8.0));
}

TEST(Bus, Validation) {
  EXPECT_THROW(transaction_time_s(spi_8mhz(), -1.0), Error);
  EXPECT_THROW(max_throughput_bps(spi_8mhz(), 0.0), Error);
}

}  // namespace
}  // namespace iw::sensors
