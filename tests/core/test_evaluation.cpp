#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace iw::core {
namespace {

bio::StressDataset small_dataset(int subjects) {
  bio::StressDatasetConfig config;
  config.subjects = subjects;
  config.minutes_per_level = 5.0;
  return bio::build_stress_dataset(config);
}

TEST(Loso, OneFoldPerSubject) {
  const bio::StressDataset ds = small_dataset(3);
  nn::TrainConfig training;
  training.max_epochs = 200;
  const LosoResult result = leave_one_subject_out(ds, training);
  ASSERT_EQ(result.folds.size(), 3u);
  for (const LosoFoldResult& fold : result.folds) {
    EXPECT_GT(fold.test_windows, 0u);
    EXPECT_GE(fold.accuracy, 0.0);
    EXPECT_LE(fold.accuracy, 1.0);
  }
}

TEST(Loso, GeneralizesAcrossSubjects) {
  // The core claim: the 5 features generalize to unseen subjects well above
  // the 3-class chance level of 0.33.
  const bio::StressDataset ds = small_dataset(4);
  nn::TrainConfig training;
  training.max_epochs = 300;
  training.target_mse = 5e-3;
  const LosoResult result = leave_one_subject_out(ds, training);
  EXPECT_GT(result.mean_accuracy, 0.6);
  EXPECT_GT(result.worst_accuracy, 0.4);
}

TEST(Loso, MeanIsAverageOfFolds) {
  const bio::StressDataset ds = small_dataset(3);
  nn::TrainConfig training;
  training.max_epochs = 100;
  const LosoResult result = leave_one_subject_out(ds, training);
  double sum = 0.0;
  for (const LosoFoldResult& fold : result.folds) sum += fold.accuracy;
  EXPECT_NEAR(result.mean_accuracy, sum / 3.0, 1e-12);
}

TEST(Loso, RequiresTwoSubjects) {
  const bio::StressDataset ds = small_dataset(1);
  nn::TrainConfig training;
  EXPECT_THROW(leave_one_subject_out(ds, training), Error);
  EXPECT_THROW(leave_one_subject_out(bio::StressDataset{}, training), Error);
}

}  // namespace
}  // namespace iw::core
