#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/app.hpp"
#include "core/comparison.hpp"
#include "core/sustainability.hpp"
#include "nn/presets.hpp"

namespace iw::core {
namespace {

AppConfig fast_app_config() {
  AppConfig config;
  config.dataset.subjects = 2;
  config.dataset.minutes_per_level = 5.0;
  config.training.max_epochs = 300;
  return config;
}

// The app build trains a network; share one instance across tests.
const StressDetectionApp& shared_app() {
  static const StressDetectionApp app = StressDetectionApp::build(fast_app_config());
  return app;
}

TEST(Comparison, PowerModelMapping) {
  EXPECT_EQ(power_model_for(kernels::Target::kCortexM4).name,
            pwr::nordic_m4().name);
  EXPECT_EQ(power_model_for(kernels::Target::kRi5cyMulti).name,
            pwr::mr_wolf_cluster_multi8().name);
}

TEST(Comparison, TableRowsOrderedLikePaper) {
  Rng rng(1);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  std::vector<float> input(5, 0.3f);
  const NetworkComparison cmp =
      compare_targets("Network A", qn, qn.quantize_input(input));
  ASSERT_EQ(cmp.rows.size(), 4u);
  // Cycles: IBEX > M4 > single RI5CY > multi RI5CY (Table III ordering).
  EXPECT_GT(cmp.rows[1].cycles, cmp.rows[0].cycles);
  EXPECT_GT(cmp.rows[0].cycles, cmp.rows[2].cycles);
  EXPECT_GT(cmp.rows[2].cycles, cmp.rows[3].cycles);
  // Energy: IBEX is the most efficient single-core option (Table IV shape).
  EXPECT_LT(cmp.rows[1].energy_j, cmp.rows[0].energy_j);
  EXPECT_LT(cmp.rows[3].energy_j, cmp.rows[0].energy_j);
  // Wall clock follows frequency: the 8-core cluster is fastest.
  for (const TargetResult& row : cmp.rows) {
    EXPECT_GT(row.time_s, 0.0);
    EXPECT_GT(row.energy_j, 0.0);
  }
}

TEST(Comparison, FloatFixedSpeedup) {
  Rng rng(2);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  std::vector<float> input(5, -0.2f);
  const FloatFixedComparison cmp = compare_float_fixed_m4(net, qn, input);
  // Paper: fixed point is ~1.3x faster than float on the M4F.
  EXPECT_GT(cmp.speedup(), 1.0);
  EXPECT_LT(cmp.speedup(), 2.0);
}

TEST(Sustainability, PaperScenarioReproduced) {
  const SustainabilityReport report = paper_sustainability_scenario();
  // Paper: 21.44 J/day and "up to 24 detections per minute".
  EXPECT_NEAR(report.harvested_j_per_day, 21.44, 1.0);
  EXPECT_NEAR(report.detections_per_minute, 24.0, 1.5);
  EXPECT_TRUE(report.sustainable_at(24.0 - 1.5));
  EXPECT_FALSE(report.sustainable_at(100.0));
  // Decomposition: ~19.4 J solar + ~2.1 J TEG.
  EXPECT_NEAR(report.solar_j_per_day, 19.44, 0.3);
  EXPECT_NEAR(report.teg_j_per_day, 2.07, 0.3);
}

TEST(Sustainability, ScalesInverselyWithDetectionCost) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  const hv::DayProfile day = hv::paper_worst_case_day();
  platform::DetectionCostParams cheap;
  platform::DetectionCostParams expensive;
  expensive.classification_cycles = 30210;
  expensive.classification_processor = pwr::nordic_m4();
  const auto cheap_report = analyze_sustainability(
      harvester, day, platform::make_detection_cost(cheap));
  const auto pricey_report = analyze_sustainability(
      harvester, day, platform::make_detection_cost(expensive));
  EXPECT_GT(cheap_report.detections_per_day, pricey_report.detections_per_day);
}

TEST(Sustainability, Validation) {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  platform::DetectionCost zero;
  EXPECT_THROW(analyze_sustainability(harvester, hv::paper_worst_case_day(), zero),
               Error);
}

TEST(App, TrainsToUsefulAccuracy) {
  const StressDetectionApp& app = shared_app();
  EXPECT_GT(app.float_test_accuracy(), 0.7);  // 3-class chance is 0.33
  // Quantization costs at most a few points of accuracy.
  EXPECT_GT(app.fixed_test_accuracy(), app.float_test_accuracy() - 0.1);
}

TEST(App, NetworkHasPaperTopology) {
  const StressDetectionApp& app = shared_app();
  EXPECT_EQ(app.network().num_neurons(), 108u);
  EXPECT_EQ(app.network().num_weights(), 3003u);
  EXPECT_EQ(app.quantized().num_outputs(), 3u);
}

TEST(App, HostAndFixedClassificationsAgreeMostly) {
  const StressDetectionApp& app = shared_app();
  bio::RawFeatures calm{};
  calm[bio::kFeatRmssd] = 0.05;
  calm[bio::kFeatSdsd] = 0.05;
  calm[bio::kFeatNn50] = 10.0;
  calm[bio::kFeatGsrl] = 1.5;
  calm[bio::kFeatGsrh] = 0.1;
  // Not asserting the label (depends on training), only pipeline agreement.
  EXPECT_EQ(app.classify_fixed(calm), app.classify_host(calm));
}

TEST(App, IssClassificationMatchesHostFixed) {
  const StressDetectionApp& app = shared_app();
  bio::RawFeatures sample{};
  sample[bio::kFeatRmssd] = 0.02;
  sample[bio::kFeatSdsd] = 0.015;
  sample[bio::kFeatNn50] = 1.0;
  sample[bio::kFeatGsrl] = 0.8;
  sample[bio::kFeatGsrh] = 0.5;
  for (kernels::Target target :
       {kernels::Target::kCortexM4, kernels::Target::kRi5cyMulti}) {
    const auto result = app.classify_on_target(sample, target);
    EXPECT_EQ(result.level, app.classify_fixed(sample));
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.energy_j, 0.0);
  }
}

TEST(App, TargetEnergiesMatchTableIvScale) {
  const StressDetectionApp& app = shared_app();
  bio::RawFeatures sample{};
  const auto m4 = app.classify_on_target(sample, kernels::Target::kCortexM4);
  const auto multi = app.classify_on_target(sample, kernels::Target::kRi5cyMulti);
  // Network A energies: ~5 uJ on the M4, ~1.2 uJ on the 8-core cluster.
  EXPECT_NEAR(m4.energy_j * 1e6, 5.1, 1.5);
  EXPECT_NEAR(multi.energy_j * 1e6, 1.2, 0.4);
}

}  // namespace
}  // namespace iw::core
