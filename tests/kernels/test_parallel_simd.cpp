#include <gtest/gtest.h>

#include "common/error.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize16.hpp"

namespace iw::kernels {
namespace {

std::vector<float> random_input(std::size_t n, iw::Rng& rng) {
  std::vector<float> input(n);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return input;
}

class ParallelSimd : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSimd, BitExactWithHostReference) {
  iw::Rng rng(21);
  const nn::Network net = nn::Network::create({6, 10, 4}, rng);
  const nn::QuantizedNetwork16 qn = nn::QuantizedNetwork16::from(net);
  const auto input = qn.quantize_input(random_input(6, rng));
  const auto expected = qn.infer_fixed(input);
  EXPECT_EQ(run_simd_mlp_parallel(qn, input, GetParam()).outputs_fixed16, expected)
      << GetParam() << " cores";
}

TEST_P(ParallelSimd, OddWidthsExercisePadPath) {
  iw::Rng rng(22);
  const nn::Network net = nn::Network::create({5, 7, 3}, rng);
  const nn::QuantizedNetwork16 qn = nn::QuantizedNetwork16::from(net);
  const auto input = qn.quantize_input(random_input(5, rng));
  EXPECT_EQ(run_simd_mlp_parallel(qn, input, GetParam()).outputs_fixed16,
            qn.infer_fixed(input))
      << GetParam() << " cores";
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, ParallelSimd, ::testing::Values(1, 2, 4, 8));

TEST(ParallelSimdPerf, NetworkABitExactAndFastest) {
  iw::Rng rng(23);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn32 = nn::QuantizedNetwork::from(net);
  const nn::QuantizedNetwork16 qn16 = nn::QuantizedNetwork16::from(net);
  const std::vector<float> input = random_input(5, rng);
  const auto fixed16 = qn16.quantize_input(input);

  const auto parallel_simd = run_simd_mlp_parallel(qn16, fixed16, 8);
  EXPECT_EQ(parallel_simd.outputs_fixed16, qn16.infer_fixed(fixed16));

  // The peak configuration beats both the scalar 8-core run and the
  // single-core SIMD run.
  const auto scalar_multi =
      run_fixed_mlp(qn32, qn32.quantize_input(input), Target::kRi5cyMulti);
  const auto simd_single = run_simd_mlp(qn16, fixed16);
  EXPECT_LT(parallel_simd.cycles, scalar_multi.cycles);
  EXPECT_LT(parallel_simd.cycles, simd_single.cycles);
}

TEST(ParallelSimdPerf, NetworkBScalesWell) {
  iw::Rng rng(24);
  const nn::Network net = nn::make_network_b(rng);
  const nn::QuantizedNetwork16 qn = nn::QuantizedNetwork16::from(net);
  std::vector<float> input = random_input(100, rng);
  const auto fixed = qn.quantize_input(input);

  const auto one = run_simd_mlp_parallel(qn, fixed, 1);
  const auto eight = run_simd_mlp_parallel(qn, fixed, 8);
  EXPECT_EQ(one.outputs_fixed16, eight.outputs_fixed16);
  const double speedup =
      static_cast<double>(one.cycles) / static_cast<double>(eight.cycles);
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 8.0);
}

TEST(ParallelSimdPerf, Validation) {
  iw::Rng rng(25);
  const nn::Network net = nn::Network::create({4, 2}, rng);
  const nn::QuantizedNetwork16 qn = nn::QuantizedNetwork16::from(net);
  const std::vector<std::int16_t> bad{1};
  EXPECT_THROW(run_simd_mlp_parallel(qn, bad, 8), Error);
  const auto input = qn.quantize_input(std::vector<float>{0.1f, 0.2f, 0.3f, 0.4f});
  EXPECT_THROW(run_simd_mlp_parallel(qn, input, 3), Error);  // not a power of two
}

}  // namespace
}  // namespace iw::kernels
