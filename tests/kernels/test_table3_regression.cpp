// Regression guard for the Table III reproduction: the simulated cycle and
// instruction counts for Networks A and B are pinned to the exact values
// recorded in EXPERIMENTS.md (which themselves sit within ~±17% of the
// paper). The interpreter is deterministic, so host-speed work (like the
// pre-decoded instruction cache) must not move these numbers at all;
// timing-model changes that do move them should be deliberate — update both
// this test and EXPERIMENTS.md when they are.
#include <gtest/gtest.h>

#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

namespace iw::kernels {
namespace {

struct Expected {
  Target target;
  std::uint64_t cycles;
  std::uint64_t instructions;
  double paper;
};

TEST(Table3Regression, NetworkACellsWithinTolerance) {
  iw::Rng rng(1);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  std::vector<float> input(5);
  iw::Rng in_rng(2020);
  for (float& v : input) v = static_cast<float>(in_rng.uniform(-1.0, 1.0));
  const auto fixed = qn.quantize_input(input);

  const Expected expected[] = {
      {Target::kCortexM4, 31912, 22493, 30210},
      {Target::kIbex, 40934, 28499, 40661},
      {Target::kRi5cySingle, 20001, 16589, 22772},
      {Target::kRi5cyMulti, 6131, 18506, 6126},
  };
  for (const Expected& e : expected) {
    const auto result = run_fixed_mlp(qn, fixed, e.target);
    // Bit-identical to the recorded reproduction...
    EXPECT_EQ(result.cycles, e.cycles) << target_name(e.target);
    EXPECT_EQ(result.instructions, e.instructions) << target_name(e.target);
    // ...and within 25% of the paper itself.
    EXPECT_NEAR(static_cast<double>(result.cycles), e.paper, 0.25 * e.paper)
        << target_name(e.target);
  }
}

TEST(Table3Regression, NetworkBCellsWithinTolerance) {
  iw::Rng rng(2);
  const nn::Network net = nn::make_network_b(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  std::vector<float> input(100);
  iw::Rng in_rng(2020);
  for (float& v : input) v = static_cast<float>(in_rng.uniform(-1.0, 1.0));
  const auto fixed = qn.quantize_input(input);

  const Expected expected[] = {
      {Target::kCortexM4, 833110, 584992, 902763},
      {Target::kIbex, 1076307, 747056, 955588},
      {Target::kRi5cySingle, 510236, 424183, 519354},
      {Target::kRi5cyMulti, 90015, 439969, 108316},
  };
  for (const Expected& e : expected) {
    const auto result = run_fixed_mlp(qn, fixed, e.target);
    EXPECT_EQ(result.cycles, e.cycles) << target_name(e.target);
    EXPECT_EQ(result.instructions, e.instructions) << target_name(e.target);
    EXPECT_NEAR(static_cast<double>(result.cycles), e.paper, 0.25 * e.paper)
        << target_name(e.target);
  }
}

}  // namespace
}  // namespace iw::kernels
