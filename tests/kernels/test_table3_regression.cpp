// Regression guard for the Table III reproduction: the simulated cycle
// counts for Networks A and B must stay within a few percent of the values
// recorded in EXPERIMENTS.md (which themselves sit within ~±17% of the
// paper). Timing-model changes that move these numbers materially should be
// deliberate — update both this test and EXPERIMENTS.md when they are.
#include <gtest/gtest.h>

#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

namespace iw::kernels {
namespace {

struct Expected {
  Target target;
  double cycles;
  double paper;
};

TEST(Table3Regression, NetworkACellsWithinTolerance) {
  iw::Rng rng(1);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  std::vector<float> input(5);
  iw::Rng in_rng(2020);
  for (float& v : input) v = static_cast<float>(in_rng.uniform(-1.0, 1.0));
  const auto fixed = qn.quantize_input(input);

  const Expected expected[] = {
      {Target::kCortexM4, 31912, 30210},
      {Target::kIbex, 40934, 40661},
      {Target::kRi5cySingle, 20001, 22772},
      {Target::kRi5cyMulti, 6131, 6126},
  };
  for (const Expected& e : expected) {
    const auto result = run_fixed_mlp(qn, fixed, e.target);
    // Within 3% of the recorded reproduction value...
    EXPECT_NEAR(static_cast<double>(result.cycles), e.cycles, 0.03 * e.cycles)
        << target_name(e.target);
    // ...and within 25% of the paper itself.
    EXPECT_NEAR(static_cast<double>(result.cycles), e.paper, 0.25 * e.paper)
        << target_name(e.target);
  }
}

TEST(Table3Regression, NetworkBCellsWithinTolerance) {
  iw::Rng rng(2);
  const nn::Network net = nn::make_network_b(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  std::vector<float> input(100);
  iw::Rng in_rng(2020);
  for (float& v : input) v = static_cast<float>(in_rng.uniform(-1.0, 1.0));
  const auto fixed = qn.quantize_input(input);

  const Expected expected[] = {
      {Target::kCortexM4, 833110, 902763},
      {Target::kIbex, 1076307, 955588},
      {Target::kRi5cySingle, 510236, 519354},
      {Target::kRi5cyMulti, 90015, 108316},
  };
  for (const Expected& e : expected) {
    const auto result = run_fixed_mlp(qn, fixed, e.target);
    EXPECT_NEAR(static_cast<double>(result.cycles), e.cycles, 0.03 * e.cycles)
        << target_name(e.target);
    EXPECT_NEAR(static_cast<double>(result.cycles), e.paper, 0.25 * e.paper)
        << target_name(e.target);
  }
}

}  // namespace
}  // namespace iw::kernels
