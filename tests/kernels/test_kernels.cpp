#include "kernels/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <iostream>

#include "common/error.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

namespace iw::kernels {
namespace {

std::vector<float> random_input(std::size_t n, iw::Rng& rng) {
  std::vector<float> input(n);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return input;
}

class FixedKernelBitExact : public ::testing::TestWithParam<Target> {};

TEST_P(FixedKernelBitExact, TinyNetworkMatchesHostReference) {
  iw::Rng rng(101);
  const nn::Network net = nn::Network::create({3, 4, 2}, rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  for (int trial = 0; trial < 5; ++trial) {
    const auto input = qn.quantize_input(random_input(3, rng));
    const auto expected = qn.infer_fixed(input);
    const KernelRunResult run = run_fixed_mlp(qn, input, GetParam());
    EXPECT_EQ(run.outputs_fixed, expected) << target_name(GetParam());
  }
}

TEST_P(FixedKernelBitExact, NetworkAMatchesHostReference) {
  iw::Rng rng(202);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(random_input(5, rng));
  const auto expected = qn.infer_fixed(input);
  const KernelRunResult run = run_fixed_mlp(qn, input, GetParam());
  EXPECT_EQ(run.outputs_fixed, expected) << target_name(GetParam());
}

TEST_P(FixedKernelBitExact, CyclesAreDeterministic) {
  iw::Rng rng(303);
  const nn::Network net = nn::Network::create({4, 8, 3}, rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(random_input(4, rng));
  const KernelRunResult a = run_fixed_mlp(qn, input, GetParam());
  const KernelRunResult b = run_fixed_mlp(qn, input, GetParam());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
}

INSTANTIATE_TEST_SUITE_P(Targets, FixedKernelBitExact,
                         ::testing::Values(Target::kCortexM4, Target::kIbex,
                                           Target::kRi5cySingle,
                                           Target::kRi5cyMulti),
                         [](const ::testing::TestParamInfo<Target>& info) {
                           switch (info.param) {
                             case Target::kCortexM4: return "CortexM4";
                             case Target::kIbex: return "Ibex";
                             case Target::kRi5cySingle: return "Ri5cySingle";
                             case Target::kRi5cyMulti: return "Ri5cyMulti";
                           }
                           return "Unknown";
                         });

TEST(Kernels, NetworkACycleOrderingMatchesPaper) {
  iw::Rng rng(42);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(random_input(5, rng));

  const std::uint64_t m4 = run_fixed_mlp(qn, input, Target::kCortexM4).cycles;
  const std::uint64_t ibex = run_fixed_mlp(qn, input, Target::kIbex).cycles;
  const std::uint64_t single = run_fixed_mlp(qn, input, Target::kRi5cySingle).cycles;
  const std::uint64_t multi = run_fixed_mlp(qn, input, Target::kRi5cyMulti).cycles;

  std::cout << "[ cycles ] Network A: M4=" << m4 << " IBEX=" << ibex
            << " RI5CY=" << single << " 8xRI5CY=" << multi << "\n";

  // Paper's ordering (Table III): IBEX > M4 > single RI5CY > multi RI5CY.
  EXPECT_GT(ibex, m4);
  EXPECT_GT(m4, single);
  EXPECT_GT(single, multi);
  // Parallel speedup is sub-linear but real (paper: 3.7x vs single RI5CY).
  const double speedup = static_cast<double>(single) / static_cast<double>(multi);
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 8.0);
}

TEST(Kernels, MultiCoreReportsContentionDiagnostics) {
  iw::Rng rng(7);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(random_input(5, rng));
  const KernelRunResult run = run_fixed_mlp(qn, input, Target::kRi5cyMulti);
  // With 8 cores streaming the same activation vector there must be some
  // TCDM bank contention, and the last layer (3 neurons) forces idle waits.
  EXPECT_GT(run.bank_conflict_stalls, 0u);
  EXPECT_GT(run.barrier_wait_cycles, 0u);
}

TEST(Kernels, FloatKernelMatchesHostFloat) {
  iw::Rng rng(55);
  const nn::Network net = nn::Network::create({3, 6, 2}, rng);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<float> input = random_input(3, rng);
    const std::vector<float> expected = net.infer(input);
    const KernelRunResult run = run_float_mlp(net, input);
    ASSERT_EQ(run.outputs_float.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      // The kernel's exp-based tanh is a float approximation of std::tanh.
      EXPECT_NEAR(run.outputs_float[i], expected[i], 5e-4) << "trial " << trial;
    }
  }
}

TEST(Kernels, FloatSlowerThanFixedOnM4) {
  // Paper, Section IV: Network A float (FPU) 38478 cycles vs fixed 30210,
  // i.e. the fixed-point version is ~1.3x faster.
  iw::Rng rng(66);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const std::vector<float> input = random_input(5, rng);

  const std::uint64_t fixed_cycles =
      run_fixed_mlp(qn, qn.quantize_input(input), Target::kCortexM4).cycles;
  const std::uint64_t float_cycles = run_float_mlp(net, input).cycles;
  std::cout << "[ cycles ] Network A on M4: float=" << float_cycles
            << " fixed=" << fixed_cycles << "\n";
  EXPECT_GT(float_cycles, fixed_cycles);
  const double ratio =
      static_cast<double>(float_cycles) / static_cast<double>(fixed_cycles);
  EXPECT_LT(ratio, 2.0);  // same order of magnitude, like the paper's 1.27x
}

TEST(Kernels, InputWidthValidated) {
  iw::Rng rng(77);
  const nn::Network net = nn::Network::create({3, 2}, rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const std::vector<std::int32_t> bad{1, 2};
  EXPECT_THROW(run_fixed_mlp(qn, bad, Target::kIbex), Error);
  const std::vector<float> badf{1.0f};
  EXPECT_THROW(run_float_mlp(net, badf), Error);
}

TEST(Kernels, SingleNeuronNetworkWorks) {
  iw::Rng rng(88);
  const nn::Network net = nn::Network::create({1, 1}, rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(std::vector<float>{0.5f});
  const auto expected = qn.infer_fixed(input);
  for (Target t : {Target::kCortexM4, Target::kIbex, Target::kRi5cySingle,
                   Target::kRi5cyMulti}) {
    EXPECT_EQ(run_fixed_mlp(qn, input, t).outputs_fixed, expected)
        << target_name(t);
  }
}

}  // namespace
}  // namespace iw::kernels
