// Golden-shape snapshot for the machine-readable lint surfaces that CI and
// downstream tooling parse:
//
//   * the per-image AnalysisReport JSON emitted by `iw_lint --kernels --json`
//     (one report per kernel x profile cell), and
//   * the certification table emitted by `iw_lint --wcet --json`.
//
// Values (cycle counts, block layouts) are allowed to drift as the analyzer
// tightens; the KEY SET and nesting are the contract. A key rename or removal
// must fail here before it breaks a consumer.
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/runner.hpp"
#include "kernels/wcet.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/memory.hpp"

namespace iw::kernels {
namespace {

/// Asserts `needle` occurs in `hay` at or after `from` and returns the index
/// just past the match, so callers can pin key ORDER as well as presence.
std::size_t expect_after(const std::string& hay, std::size_t from,
                         const std::string& needle) {
  const std::size_t at = hay.find(needle, from);
  EXPECT_NE(at, std::string::npos) << "missing '" << needle << "' after index "
                                   << from << " in:\n" << hay;
  return at == std::string::npos ? from : at + needle.size();
}

TEST(LintGolden, AnalysisReportJsonShapeIsStable) {
  const std::vector<KernelImage> images = reference_kernel_images();
  ASSERT_FALSE(images.empty());
  for (const KernelImage& image : images) {
    rv::Memory mem(image.mem_bytes);
    mem.write_words(image.program.base,
                    std::span<const std::uint32_t>(image.program.words));
    const rv::analysis::AnalysisReport report = rv::analysis::analyze(
        mem, image.entry, image.profile, image.analyze_options);
    const std::string js = report.to_json();
    SCOPED_TRACE(image.name);

    std::size_t at = 0;
    for (const char* key :
         {"{\"profile\":", "\"entry\":", "\"words_analyzed\":", "\"min_cycles\":",
          "\"max_cycles\":", "\"stack_bytes\":", "\"ok\":", "\"errors\":",
          "\"blocks\":[", "\"hwloops\":[", "\"functions\":[",
          "\"diagnostics\":["}) {
      at = expect_after(js, at, key);
    }
    // Every kernel has at least one block and one recovered function, so the
    // nested shapes are exercised too.
    std::size_t block = expect_after(js, 0, "\"blocks\":[{");
    for (const char* key : {"\"start\":", "\"end\":", "\"min_cycles\":",
                            "\"max_cycles\":", "\"halts\":", "\"indirect\":",
                            "\"successors\":["}) {
      block = expect_after(js, block, key);
    }
    std::size_t fn = expect_after(js, 0, "\"functions\":[{");
    for (const char* key : {"\"entry\":", "\"min_cycles\":", "\"max_cycles\":",
                            "\"stack_bytes\":", "\"recursive\":"}) {
      fn = expect_after(js, fn, key);
    }
  }
}

TEST(LintGolden, WcetTableJsonShapeIsStable) {
  const std::vector<WcetRow> rows = certified_kernel_rows();
  ASSERT_EQ(rows.size(), 9u);  // 7 MLP flavors + HRV + GSR
  const std::string js = wcet_table_json(rows);

  std::size_t at = expect_after(js, 0, "{\"rows\":[");
  for (const WcetRow& row : rows) {
    at = expect_after(js, at, "{\"kernel\":\"" + row.name + "\"");
    at = expect_after(js, at, "\"profile\":\"" + row.profile_name + "\"");
    for (const char* key : {"\"floor_cycles\":", "\"dynamic_cycles\":",
                            "\"ceiling_cycles\":", "\"stack_bytes\":",
                            "\"sound\":"}) {
      at = expect_after(js, at, key);
    }
  }
  expect_after(js, at, "\"all_sound\":");
  EXPECT_TRUE(all_sound(rows)) << js;
}

}  // namespace
}  // namespace iw::kernels
