#include <gtest/gtest.h>

#include "common/error.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"

namespace iw::kernels {
namespace {

std::vector<float> random_input(std::size_t n, iw::Rng& rng) {
  std::vector<float> input(n);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return input;
}

TEST(SimdKernel, BitExactWithHostReferenceTinyNet) {
  iw::Rng rng(11);
  const nn::Network net = nn::Network::create({4, 6, 2}, rng);
  const nn::QuantizedNetwork16 qn = nn::QuantizedNetwork16::from(net);
  for (int trial = 0; trial < 5; ++trial) {
    const auto input = qn.quantize_input(random_input(4, rng));
    const auto expected = qn.infer_fixed(input);
    const KernelRunResult run = run_simd_mlp(qn, input);
    EXPECT_EQ(run.outputs_fixed16, expected) << "trial " << trial;
  }
}

TEST(SimdKernel, BitExactWithOddWidths) {
  // Odd input count and odd hidden width exercise the pad path.
  iw::Rng rng(12);
  const nn::Network net = nn::Network::create({5, 7, 3}, rng);
  const nn::QuantizedNetwork16 qn = nn::QuantizedNetwork16::from(net);
  const auto input = qn.quantize_input(random_input(5, rng));
  EXPECT_EQ(run_simd_mlp(qn, input).outputs_fixed16, qn.infer_fixed(input));
}

TEST(SimdKernel, BitExactOnNetworkA) {
  iw::Rng rng(13);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork16 qn = nn::QuantizedNetwork16::from(net);
  const auto input = qn.quantize_input(random_input(5, rng));
  EXPECT_EQ(run_simd_mlp(qn, input).outputs_fixed16, qn.infer_fixed(input));
}

TEST(SimdKernel, FasterThanScalarRi5cy) {
  iw::Rng rng(14);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn32 = nn::QuantizedNetwork::from(net);
  const nn::QuantizedNetwork16 qn16 = nn::QuantizedNetwork16::from(net);
  const std::vector<float> input = random_input(5, rng);

  const std::uint64_t scalar =
      run_fixed_mlp(qn32, qn32.quantize_input(input), Target::kRi5cySingle).cycles;
  const std::uint64_t simd = run_simd_mlp(qn16, qn16.quantize_input(input)).cycles;
  // Two MACs per cycle plus fewer loads: expect a healthy speedup.
  EXPECT_LT(simd, scalar);
  const double speedup = static_cast<double>(scalar) / static_cast<double>(simd);
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 4.0);
}

TEST(SimdKernel, DecisionMatchesScalarPath) {
  iw::Rng rng(15);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn32 = nn::QuantizedNetwork::from(net);
  const nn::QuantizedNetwork16 qn16 = nn::QuantizedNetwork16::from(net);
  int agree = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<float> input = random_input(5, rng);
    const auto out32 =
        run_fixed_mlp(qn32, qn32.quantize_input(input), Target::kRi5cySingle)
            .outputs_fixed;
    const auto out16 = run_simd_mlp(qn16, qn16.quantize_input(input)).outputs_fixed16;
    const std::size_t pick32 = static_cast<std::size_t>(
        std::max_element(out32.begin(), out32.end()) - out32.begin());
    const std::size_t pick16 = static_cast<std::size_t>(
        std::max_element(out16.begin(), out16.end()) - out16.begin());
    agree += pick32 == pick16 ? 1 : 0;
  }
  EXPECT_GE(agree, 18);
}

TEST(SimdKernel, InputWidthValidated) {
  iw::Rng rng(16);
  const nn::Network net = nn::Network::create({4, 2}, rng);
  const nn::QuantizedNetwork16 qn = nn::QuantizedNetwork16::from(net);
  const std::vector<std::int16_t> bad{1, 2};
  EXPECT_THROW(run_simd_mlp(qn, bad), Error);
}

}  // namespace
}  // namespace iw::kernels
