#include "kernels/feature_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bio/ecg.hpp"
#include "bio/hrv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace iw::kernels {
namespace {

std::vector<std::int32_t> random_rr_ms(std::size_t n, iw::Rng& rng) {
  std::vector<std::int32_t> rr(n);
  for (auto& v : rr) v = static_cast<std::int32_t>(600 + rng.uniform_int(600));
  return rr;
}

TEST(FeatureKernel, BitExactWithHostReference) {
  iw::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto rr = random_rr_ms(5 + rng.uniform_int(100), rng);
    const HrvKernelResult run = run_hrv_kernel(rr);
    const HrvFixedValues golden = hrv_fixed_reference(rr);
    EXPECT_EQ(run.values.rmssd_q4_ms, golden.rmssd_q4_ms) << "trial " << trial;
    EXPECT_EQ(run.values.sdsd_q4_ms, golden.sdsd_q4_ms) << "trial " << trial;
    EXPECT_EQ(run.values.nn50, golden.nn50) << "trial " << trial;
  }
}

TEST(FeatureKernel, Nn50MatchesFloatDefinition) {
  iw::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    // Multiples of 3 keep every difference away from the exact 50 ms
    // boundary, where the float conversion (x/1000.0) is ambiguous.
    std::vector<std::int32_t> rr(40);
    for (auto& v : rr) v = static_cast<std::int32_t>(600 + 3 * rng.uniform_int(200));
    std::vector<double> rr_s(rr.size());
    for (std::size_t i = 0; i < rr.size(); ++i) rr_s[i] = rr[i] / 1000.0;
    EXPECT_EQ(run_hrv_kernel(rr).values.nn50, bio::nn50(rr_s));
  }
}

TEST(FeatureKernel, RmssdTracksFloatDefinition) {
  iw::Rng rng(3);
  const auto rr = random_rr_ms(80, rng);
  std::vector<double> rr_s(rr.size());
  for (std::size_t i = 0; i < rr.size(); ++i) rr_s[i] = rr[i] / 1000.0;
  const double rmssd_ms = bio::rmssd(rr_s) * 1000.0;
  const double kernel_ms = run_hrv_kernel(rr).values.rmssd_q4_ms / 16.0;
  // Integer mean + floor sqrt cost at most ~1 ms here.
  EXPECT_NEAR(kernel_ms, rmssd_ms, 1.0);
}

TEST(FeatureKernel, SdsdTracksFloatDefinition) {
  iw::Rng rng(4);
  const auto rr = random_rr_ms(80, rng);
  std::vector<double> rr_s(rr.size());
  for (std::size_t i = 0; i < rr.size(); ++i) rr_s[i] = rr[i] / 1000.0;
  const double sdsd_ms = bio::sdsd(rr_s) * 1000.0;
  const double kernel_ms = run_hrv_kernel(rr).values.sdsd_q4_ms / 16.0;
  // The kernel uses the population variance (1/m); for m=79 the difference
  // from the sample variance plus integer truncation stays within ~2 ms.
  EXPECT_NEAR(kernel_ms, sdsd_ms, 2.0);
}

TEST(FeatureKernel, ConstantSeriesGivesZeros) {
  const std::vector<std::int32_t> rr(20, 800);
  const HrvKernelResult run = run_hrv_kernel(rr);
  EXPECT_EQ(run.values.rmssd_q4_ms, 0);
  EXPECT_EQ(run.values.sdsd_q4_ms, 0);
  EXPECT_EQ(run.values.nn50, 0);
}

TEST(FeatureKernel, KnownSmallSeries) {
  // diffs: +50, -50, +120 -> nn50 = 1 (strictly greater than 50).
  const std::vector<std::int32_t> rr{800, 850, 800, 920};
  const HrvKernelResult run = run_hrv_kernel(rr);
  EXPECT_EQ(run.values.nn50, 1);
  const double expected_rmssd =
      std::sqrt((50.0 * 50.0 + 50.0 * 50.0 + 120.0 * 120.0) / 3.0);
  EXPECT_NEAR(run.values.rmssd_q4_ms / 16.0, expected_rmssd, 1.0);
}

TEST(FeatureKernel, FitsThePaperTimeBudget) {
  // Paper: the full feature extraction takes 50 us on the cluster. The
  // HRV part over a 60 s window (~75 beats) must fit comfortably.
  iw::Rng rng(5);
  const auto rr = random_rr_ms(75, rng);
  const HrvKernelResult run = run_hrv_kernel(rr);
  EXPECT_LT(run.time_s(), 50e-6);
  EXPECT_GT(run.cycles, 100u);  // sanity: it did real work
}

TEST(FeatureKernel, Validation) {
  EXPECT_THROW(run_hrv_kernel(std::vector<std::int32_t>{800}), Error);
  EXPECT_THROW(hrv_fixed_reference(std::vector<std::int32_t>{800}), Error);
  EXPECT_THROW(run_hrv_kernel(std::vector<std::int32_t>{800, -5}), Error);
  EXPECT_THROW(run_hrv_kernel(std::vector<std::int32_t>(3000, 800)), Error);
}

TEST(FeatureKernel, CyclesScaleLinearlyWithBeats) {
  iw::Rng rng(6);
  const auto short_rr = random_rr_ms(20, rng);
  const auto long_rr = random_rr_ms(200, rng);
  const std::uint64_t short_cycles = run_hrv_kernel(short_rr).cycles;
  const std::uint64_t long_cycles = run_hrv_kernel(long_rr).cycles;
  const double per_beat = static_cast<double>(long_cycles - short_cycles) / 180.0;
  EXPECT_GT(per_beat, 5.0);
  EXPECT_LT(per_beat, 20.0);
}

}  // namespace
}  // namespace iw::kernels
