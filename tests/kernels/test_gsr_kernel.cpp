#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bio/gsr.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/feature_kernel.hpp"

namespace iw::kernels {
namespace {

std::vector<std::int32_t> to_q8(const std::vector<float>& samples) {
  std::vector<std::int32_t> out;
  out.reserve(samples.size());
  for (float v : samples) {
    out.push_back(static_cast<std::int32_t>(std::lround(v * 256.0f)));
  }
  return out;
}

TEST(GsrKernel, BitExactWithHostReference) {
  iw::Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const bio::GsrSignal signal = bio::synthesize_gsr(
        bio::gsr_params_for(bio::StressLevel::kMedium), 30.0, rng);
    const auto q8 = to_q8(signal.samples);
    const GsrKernelResult run = run_gsr_kernel(q8);
    const GsrFixedValues golden = gsr_fixed_reference(q8, 13, 1);
    EXPECT_EQ(run.values.slope_count, golden.slope_count) << trial;
    EXPECT_EQ(run.values.total_height_q8, golden.total_height_q8) << trial;
    EXPECT_EQ(run.values.total_length_samples, golden.total_length_samples) << trial;
  }
}

TEST(GsrKernel, DetectsSyntheticRamp) {
  // Flat 2.0 uS, one clean rise of 0.5 uS over 2 s at 32 Hz, flat after.
  std::vector<std::int32_t> q8;
  for (int i = 0; i < 320; ++i) {
    double v = 2.0;
    const double t = i / 32.0;
    if (t >= 4.0 && t < 6.0) v = 2.0 + 0.25 * (t - 4.0);
    if (t >= 6.0) v = 2.5;
    q8.push_back(static_cast<std::int32_t>(std::lround(v * 256.0)));
  }
  const GsrKernelResult run = run_gsr_kernel(q8);
  ASSERT_EQ(run.values.slope_count, 1);
  EXPECT_NEAR(run.values.total_height_q8 / 256.0, 0.5, 0.08);
  EXPECT_NEAR(run.values.total_length_samples / 32.0, 2.0, 0.5);
}

TEST(GsrKernel, FlatSignalYieldsNothing) {
  const std::vector<std::int32_t> q8(200, 512);  // constant 2.0 uS
  const GsrKernelResult run = run_gsr_kernel(q8);
  EXPECT_EQ(run.values.slope_count, 0);
  EXPECT_EQ(run.values.total_height_q8, 0);
}

TEST(GsrKernel, StressRaisesSlopeActivity) {
  const auto activity = [](bio::StressLevel level) {
    iw::Rng rng(7);
    const bio::GsrSignal signal =
        bio::synthesize_gsr(bio::gsr_params_for(level), 120.0, rng);
    return run_gsr_kernel(to_q8(signal.samples)).values.slope_count;
  };
  EXPECT_GT(activity(bio::StressLevel::kHigh), activity(bio::StressLevel::kNone));
}

TEST(GsrKernel, RiseOpenAtStreamEndIsClosed) {
  // Monotone rise to the very end must still be counted.
  std::vector<std::int32_t> q8;
  for (int i = 0; i < 100; ++i) q8.push_back(512 + 4 * i);
  const GsrKernelResult run = run_gsr_kernel(q8);
  EXPECT_EQ(run.values.slope_count, 1);
  EXPECT_GT(run.values.total_height_q8, 300);
}

TEST(GsrKernel, ProcessingCostPerSample) {
  iw::Rng rng(9);
  const bio::GsrSignal signal = bio::synthesize_gsr(
      bio::gsr_params_for(bio::StressLevel::kMedium), 60.0, rng);
  const auto q8 = to_q8(signal.samples);
  const GsrKernelResult run = run_gsr_kernel(q8);
  const double per_sample =
      static_cast<double>(run.cycles) / static_cast<double>(q8.size());
  // Tight integer scan: around a dozen cycles per sample. Running it
  // incrementally during the 3 s acquisition makes its latency invisible.
  EXPECT_LT(per_sample, 20.0);
  EXPECT_GT(per_sample, 5.0);
}

TEST(GsrKernel, Validation) {
  const std::vector<std::int32_t> tiny(3, 512);
  EXPECT_THROW(run_gsr_kernel(tiny), Error);
  EXPECT_THROW(gsr_fixed_reference(tiny, 13, 1), Error);
  const std::vector<std::int32_t> negative(100, -1);
  EXPECT_THROW(run_gsr_kernel(negative), Error);
}

}  // namespace
}  // namespace iw::kernels
