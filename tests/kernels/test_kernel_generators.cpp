// Properties of the kernel source generators: every flavor assembles, fits
// the memory layout, respects its target's instruction budget, and the
// cluster runs are deterministic.
#include <gtest/gtest.h>

#include "asmx/assembler.hpp"
#include "rvsim/encoding.hpp"
#include "common/error.hpp"
#include "kernels/kernel_source.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"

namespace iw::kernels {
namespace {

FixedKernelParams tiny_params() {
  FixedKernelParams p;
  p.frac_bits = 13;
  p.range_fixed = 4 << 13;
  p.step_shift = 7;
  p.step_mask = 127;
  p.n_layers = 2;
  return p;
}

const std::string kTable =
    "    .word 4, 6, 0x21000, 0xC0000, 0xC2000\n"
    "    .word 6, 2, 0x21078, 0xC2000, 0xC0000\n";

TEST(KernelGenerators, AllFlavorsAssemble) {
  for (Flavor flavor : {Flavor::kGeneric, Flavor::kM4, Flavor::kRi5cy}) {
    const std::string source = fixed_kernel_source(flavor, tiny_params(), kTable);
    const asmx::Program program = asmx::assemble(source);
    EXPECT_GT(program.words.size(), 10u);
    EXPECT_LT(program.words.size(), 200u);  // kernels stay small
    EXPECT_NO_THROW(program.symbol("main"));
    EXPECT_NO_THROW(program.symbol("layer_table"));
  }
  EXPECT_NO_THROW(asmx::assemble(parallel_kernel_source(tiny_params(), kTable)));
  EXPECT_NO_THROW(asmx::assemble(simd_kernel_source(tiny_params(), kTable)));
  EXPECT_NO_THROW(asmx::assemble(parallel_simd_kernel_source(tiny_params(), kTable)));
  EXPECT_NO_THROW(asmx::assemble(float_kernel_source(2, kTable)));
}

TEST(KernelGenerators, FlavorsUseOnlySupportedInstructions) {
  // The generic kernel must run on IBEX; the M4 kernel must NOT require
  // hardware loops; the RI5CY kernel needs the full extension set.
  const auto decode_all = [](const std::string& source) {
    const asmx::Program program = asmx::assemble(source);
    std::vector<rv::Decoded> out;
    for (std::uint32_t w : program.words) {
      try {
        out.push_back(rv::decode(w));
      } catch (const Error&) {
        // data words
      }
    }
    return out;
  };
  const rv::TimingProfile ibex = rv::ibex();
  for (const rv::Decoded& d :
       decode_all(fixed_kernel_source(Flavor::kGeneric, tiny_params(), kTable))) {
    EXPECT_TRUE(ibex.supports(d.op)) << rv::mnemonic(d.op);
  }
  const rv::TimingProfile m4 = rv::cortex_m4f();
  for (const rv::Decoded& d :
       decode_all(fixed_kernel_source(Flavor::kM4, tiny_params(), kTable))) {
    EXPECT_TRUE(m4.supports(d.op)) << rv::mnemonic(d.op);
  }
}

TEST(KernelGenerators, ParallelRejectsBadCoreCounts) {
  FixedKernelParams p = tiny_params();
  p.num_cores = 3;
  EXPECT_THROW(parallel_kernel_source(p, kTable), Error);
  EXPECT_THROW(parallel_simd_kernel_source(p, kTable), Error);
  p.num_cores = 16;
  EXPECT_THROW(parallel_kernel_source(p, kTable), Error);
}

TEST(KernelGenerators, HeaderValidation) {
  FixedKernelParams bad = tiny_params();
  bad.n_layers = 0;
  EXPECT_THROW(fixed_kernel_source(Flavor::kRi5cy, bad, kTable), Error);
  bad = tiny_params();
  bad.range_fixed = 0;
  EXPECT_THROW(fixed_kernel_source(Flavor::kRi5cy, bad, kTable), Error);
  EXPECT_THROW(float_kernel_source(0, kTable), Error);
}

TEST(KernelGenerators, ClusterRunsAreDeterministic) {
  iw::Rng rng(5);
  const nn::Network net = nn::Network::create({5, 9, 3}, rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  std::vector<float> input(5, 0.4f);
  const auto fixed = qn.quantize_input(input);
  const auto a = run_fixed_mlp(qn, fixed, Target::kRi5cyMulti);
  const auto b = run_fixed_mlp(qn, fixed, Target::kRi5cyMulti);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.bank_conflict_stalls, b.bank_conflict_stalls);
  EXPECT_EQ(a.barrier_wait_cycles, b.barrier_wait_cycles);
  EXPECT_EQ(a.outputs_fixed, b.outputs_fixed);

  const nn::QuantizedNetwork16 qn16 = nn::QuantizedNetwork16::from(net);
  const auto s16 = qn16.quantize_input(input);
  EXPECT_EQ(run_simd_mlp_parallel(qn16, s16, 8).cycles,
            run_simd_mlp_parallel(qn16, s16, 8).cycles);
}

TEST(KernelGenerators, HistogramAccountsForAllInstructions) {
  iw::Rng rng(6);
  const nn::Network net = nn::Network::create({4, 6, 2}, rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(std::vector<float>{0.1f, 0.2f, 0.3f, 0.4f});
  for (Target t : {Target::kCortexM4, Target::kIbex, Target::kRi5cySingle,
                   Target::kRi5cyMulti}) {
    const auto run = run_fixed_mlp(qn, input, t);
    EXPECT_EQ(run.histogram.total(), run.instructions) << target_name(t);
  }
}

}  // namespace
}  // namespace iw::kernels
