#include <gtest/gtest.h>

#include "asmx/assembler.hpp"

namespace iw::asmx {
namespace {

TEST(Disassembler, ListsInstructionsWithAddresses) {
  const Program p = assemble(R"(
  main:
      addi a0, zero, 5
      add a1, a0, a0
  done:
      ecall
  )");
  const std::string listing = disassemble_listing(p.words, p.base, p.symbols);
  EXPECT_NE(listing.find("main:"), std::string::npos);
  EXPECT_NE(listing.find("done:"), std::string::npos);
  EXPECT_NE(listing.find("addi"), std::string::npos);
  EXPECT_NE(listing.find("ecall"), std::string::npos);
  EXPECT_NE(listing.find("00000000"), std::string::npos);  // first address
  EXPECT_NE(listing.find("00000008"), std::string::npos);  // ecall address
}

TEST(Disassembler, DataWordsFallBack) {
  const Program p = assemble(".word 0, 4294967295\n");
  const std::string listing = disassemble_listing(p.words);
  // Both words are illegal encodings and must print as .word.
  EXPECT_NE(listing.find(".word 0"), std::string::npos);
  EXPECT_NE(listing.find(".word 4294967295"), std::string::npos);
}

TEST(Disassembler, RoundTripOnKernelStyleCode) {
  const Program p = assemble(R"(
      lp.setupi 0, 16, end
      p.lw t0, 4(a0!)
      mul t1, t0, t0
      srai t1, t1, 13
      add a1, a1, t1
  end:
      p.clip a1, a1, 16
      ecall
  )");
  const std::string listing = disassemble_listing(p.words, p.base, p.symbols);
  EXPECT_NE(listing.find("lp.setupi"), std::string::npos);
  EXPECT_NE(listing.find("p.lw"), std::string::npos);
  EXPECT_NE(listing.find("p.clip"), std::string::npos);
  EXPECT_NE(listing.find("end:"), std::string::npos);
}

TEST(Disassembler, BaseAddressRespected) {
  const Program p = assemble("nop\n", 0x1000);
  const std::string listing = disassemble_listing(p.words, p.base, p.symbols);
  EXPECT_NE(listing.find("00001000"), std::string::npos);
}

}  // namespace
}  // namespace iw::asmx
