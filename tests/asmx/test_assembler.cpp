#include "asmx/assembler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "rvsim/encoding.hpp"

namespace iw::asmx {
namespace {

using rv::Op;

TEST(Assembler, EncodesSimpleInstructions) {
  const Program p = assemble(R"(
      addi x1, x0, 5
      add x3, x1, x2
      ecall
  )");
  ASSERT_EQ(p.words.size(), 3u);
  EXPECT_EQ(p.words[0], 0x00500093u);
  EXPECT_EQ(p.words[1], 0x002081B3u);
  EXPECT_EQ(p.words[2], 0x00000073u);
}

TEST(Assembler, AbiRegisterNames) {
  const Program p = assemble("add a0, sp, t0\n");
  const rv::Decoded d = rv::decode(p.words[0]);
  EXPECT_EQ(d.rd, 10);
  EXPECT_EQ(d.rs1, 2);
  EXPECT_EQ(d.rs2, 5);
}

TEST(Assembler, ForwardAndBackwardBranches) {
  const Program p = assemble(R"(
  top:
      beq a0, a1, done
      j top
  done:
      ecall
  )");
  const rv::Decoded fwd = rv::decode(p.words[0]);
  EXPECT_EQ(fwd.op, Op::kBeq);
  EXPECT_EQ(fwd.imm, 8);
  const rv::Decoded back = rv::decode(p.words[1]);
  EXPECT_EQ(back.op, Op::kJal);
  EXPECT_EQ(back.imm, -4);
}

TEST(Assembler, LiSmallUsesOneInstruction) {
  const Program p = assemble("li a0, 100\necall\n");
  EXPECT_EQ(p.words.size(), 2u);
  EXPECT_EQ(rv::decode(p.words[0]).op, Op::kAddi);
}

TEST(Assembler, LiLargeUsesLuiAddi) {
  const Program p = assemble("li a0, 0x12345678\necall\n");
  ASSERT_EQ(p.words.size(), 3u);
  EXPECT_EQ(rv::decode(p.words[0]).op, Op::kLui);
  EXPECT_EQ(rv::decode(p.words[1]).op, Op::kAddi);
}

TEST(Assembler, LiNegativeLarge) {
  const Program p = assemble("li a0, -100000\necall\n");
  ASSERT_EQ(p.words.size(), 3u);
  // lui + addi reconstruction must produce exactly -100000; verified in the
  // core tests; here check both halves decode.
  EXPECT_EQ(rv::decode(p.words[0]).op, Op::kLui);
  EXPECT_EQ(rv::decode(p.words[1]).op, Op::kAddi);
}

TEST(Assembler, LaResolvesForwardLabel) {
  const Program p = assemble(R"(
      la a0, data
      ecall
  data:
      .word 42
  )");
  ASSERT_EQ(p.words.size(), 4u);
  EXPECT_EQ(p.symbol("data"), 12u);
  EXPECT_EQ(p.words[3], 42u);
}

TEST(Assembler, EquConstantsAndExpressions) {
  const Program p = assemble(R"(
      .equ BASE, 0x400
      .equ SLOT, 4
      lw a0, BASE+SLOT*2(zero)
  )");
  EXPECT_EQ(rv::decode(p.words[0]).imm, 0x408);
}

TEST(Assembler, WordDirectiveWithExpressions) {
  const Program p = assemble(R"(
      .equ N, 3
      .word 1, N*N, 0x10, -1
  )");
  ASSERT_EQ(p.words.size(), 4u);
  EXPECT_EQ(p.words[1], 9u);
  EXPECT_EQ(p.words[3], 0xFFFFFFFFu);
}

TEST(Assembler, SpaceAndAlign) {
  const Program p = assemble(R"(
      nop
      .space 8
      .align 16
  data:
      .word 7
  )");
  EXPECT_EQ(p.symbol("data"), 16u);
  EXPECT_EQ(p.words[4], 7u);
}

TEST(Assembler, MultipleLabelsOnOneLine) {
  const Program p = assemble("a: b: c: nop\n");
  EXPECT_EQ(p.symbol("a"), 0u);
  EXPECT_EQ(p.symbol("b"), 0u);
  EXPECT_EQ(p.symbol("c"), 0u);
}

TEST(Assembler, CommentsIgnored) {
  const Program p = assemble(R"(
      nop        # hash comment
      nop        // slash comment
      nop        ; semicolon comment
  )");
  EXPECT_EQ(p.words.size(), 3u);
}

TEST(Assembler, BaseAddressOffsetsLabels) {
  const Program p = assemble("start: nop\n", 0x1000);
  EXPECT_EQ(p.symbol("start"), 0x1000u);
  EXPECT_EQ(p.base, 0x1000u);
  EXPECT_EQ(p.end_address(), 0x1004u);
}

TEST(Assembler, PostIncrementSyntaxEnforced) {
  EXPECT_THROW(assemble("p.lw a0, 4(a1)\n"), Error);
  EXPECT_THROW(assemble("lw a0, 4(a1!)\n"), Error);
  EXPECT_NO_THROW(assemble("p.lw a0, 4(a1!)\n"));
  EXPECT_NO_THROW(assemble("p.sw a0, 4(a1!)\n"));
}

TEST(Assembler, HardwareLoopOffsets) {
  const Program p = assemble(R"(
      lp.setupi 0, 10, end
      nop
      nop
  end:
      ecall
  )");
  const rv::Decoded d = rv::decode(p.words[0]);
  EXPECT_EQ(d.op, Op::kLpSetupi);
  EXPECT_EQ(d.imm, 10);
  EXPECT_EQ(d.imm2, 3);
}

TEST(Assembler, HardwareLoopRejectsBackwardEnd) {
  EXPECT_THROW(assemble(R"(
  end:
      nop
      lp.setupi 0, 10, end
  )"),
               Error);
}

TEST(Assembler, FloatRegisterOperands) {
  const Program p = assemble("fmadd.s f1, f2, f3, f4\n");
  const rv::Decoded d = rv::decode(p.words[0]);
  EXPECT_EQ(d.op, Op::kFmaddS);
  EXPECT_EQ(d.rd, 1);
  EXPECT_EQ(d.rs1, 2);
  EXPECT_EQ(d.rs2, 3);
  EXPECT_EQ(d.rs3, 4);
}

TEST(Assembler, FloatIntRegisterDomainChecked) {
  EXPECT_THROW(assemble("fadd.s f0, a0, f1\n"), Error);
  EXPECT_THROW(assemble("add a0, f1, a2\n"), Error);
  EXPECT_THROW(assemble("fcvt.w.s f0, f1\n"), Error);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nnop\nbogus a0, a1\n");
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Assembler, RejectsUnknownMnemonic) {
  EXPECT_THROW(assemble("frobnicate a0\n"), Error);
}

TEST(Assembler, RejectsRedefinedSymbol) {
  EXPECT_THROW(assemble("a: nop\na: nop\n"), Error);
  EXPECT_THROW(assemble(".equ a, 1\n.equ a, 2\n"), Error);
}

TEST(Assembler, RejectsUndefinedSymbol) {
  EXPECT_THROW(assemble("lw a0, missing(zero)\n"), Error);
}

TEST(Assembler, RejectsSymbolShadowingRegister) {
  EXPECT_THROW(assemble("a0: nop\n"), Error);
  EXPECT_THROW(assemble(".equ t0, 5\n"), Error);
}

TEST(Assembler, RejectsWrongOperandCount) {
  EXPECT_THROW(assemble("add a0, a1\n"), Error);
  EXPECT_THROW(assemble("lw a0\n"), Error);
  EXPECT_THROW(assemble("ecall a0\n"), Error);
}

TEST(Assembler, PseudoInstructionsExpand) {
  const Program p = assemble(R"(
      nop
      mv a0, a1
      not a2, a3
      neg a4, a5
      beqz a0, 0x20
      bnez a0, 0x20
      bgt a0, a1, 0x20
      ret
  )");
  EXPECT_EQ(rv::decode(p.words[0]).op, Op::kAddi);
  EXPECT_EQ(rv::decode(p.words[1]).op, Op::kAddi);
  EXPECT_EQ(rv::decode(p.words[2]).op, Op::kXori);
  EXPECT_EQ(rv::decode(p.words[3]).op, Op::kSub);
  EXPECT_EQ(rv::decode(p.words[4]).op, Op::kBeq);
  EXPECT_EQ(rv::decode(p.words[5]).op, Op::kBne);
  const rv::Decoded bgt = rv::decode(p.words[6]);
  EXPECT_EQ(bgt.op, Op::kBlt);
  EXPECT_EQ(bgt.rs1, 11);  // operands swapped
  EXPECT_EQ(bgt.rs2, 10);
  EXPECT_EQ(rv::decode(p.words[7]).op, Op::kJalr);
}

TEST(Assembler, CsrNamesRecognized) {
  const Program p = assemble("csrr a0, mhartid\ncsrr a1, mcycle\n");
  EXPECT_EQ(rv::decode(p.words[0]).extra, rv::kCsrMhartid);
  EXPECT_EQ(rv::decode(p.words[1]).extra, rv::kCsrMcycle);
}

TEST(Assembler, SymbolLookupThrowsOnUnknown) {
  const Program p = assemble("nop\n");
  EXPECT_THROW(p.symbol("nope"), Error);
}

}  // namespace
}  // namespace iw::asmx
