// Pre-decoded instruction cache for the rvsim interpreter.
//
// Decoding a code word and deriving its timing data (op class, per-profile
// base cost, support flag, load-use read set) is pure per (word, profile), so
// it is done once per code word and memoized in a DecodedEx record. Core::step
// then becomes an array-indexed dispatch: fetch pc -> cached record ->
// execute, with no decode(), no op_class()/base_cost()/supports() switches,
// and no string construction on the success path.
//
// Coherence: the cache registers itself as a Memory write observer over the
// byte range it has decoded so far. Any store that overlaps that range —
// scalar stores from simulated code, load_program/write_words/write_block
// from the host side, DMA copies — invalidates exactly the overlapped
// records, so reloaded or self-modifying programs re-decode on next fetch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rvsim/isa.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/timing.hpp"

namespace iw::rv {

/// The unsupported-instruction error text, e.g.
/// "ibex: unsupported instruction at pc=0x00000040: p.lw t0, 4(a1!)".
/// Shared by the dynamic path (DecodeCache::raise_unsupported) and the static
/// analyzer so both report a faulting word identically.
std::string unsupported_instruction_message(const std::string& profile_name,
                                            std::uint32_t pc, const Decoded& d);

/// One pre-decoded instruction: the Decoded fields fused with everything the
/// per-step hot path would otherwise recompute.
struct DecodedEx {
  Decoded d;
  OpClass cls = OpClass::kAlu;
  /// DecodeCache::kEmpty / kOk / kUnsupported.
  std::uint8_t status = 0;
  bool is_load = false;
  std::int16_t base_cost = 0;
  /// load_nonpipelined_extra when is_load, else 0 (applied when the previous
  /// instruction was also a load).
  std::int16_t load_seq_extra = 0;
  /// Unified dest register id (x: 0..31, f: 32..63) a dependent successor
  /// would stall on, or -1 when this instruction cannot create a load-use
  /// hazard under the cache's profile.
  std::int16_t load_dest = -1;
  /// Unified register ids read by the instruction (-1 = unused slot).
  std::int16_t reads[3] = {-1, -1, -1};
};

class DecodeCache final : public Memory::WriteObserver {
 public:
  enum Status : std::uint8_t { kEmpty = 0, kOk = 1, kUnsupported = 2 };

  /// `profile` and `memory` must outlive the cache (Core guarantees this by
  /// owning the cache next to its profile).
  DecodeCache(const TimingProfile& profile, Memory& memory);
  ~DecodeCache() override;

  DecodeCache(const DecodeCache&) = delete;
  DecodeCache& operator=(const DecodeCache&) = delete;

  /// Returns the record for the instruction at `pc`, decoding it on first
  /// fetch. Raises the same errors a fetch + decode() would (out-of-bounds or
  /// misaligned pc, illegal instruction). kUnsupported records are returned
  /// to the caller, which raises via raise_unsupported() so the success path
  /// never builds an error message.
  const DecodedEx& entry(std::uint32_t pc) {
    const std::uint32_t idx = pc >> 2;
    if ((pc & 3u) != 0 || idx >= max_words_) fetch_fault(pc);
    if (idx >= entries_.size()) grow(idx);
    DecodedEx& e = entries_[idx];
    if (e.status == kEmpty) fill(e, pc);
    return e;
  }

  /// Non-throwing variant for speculative probes (the trace compiler walking
  /// past the hot head): returns nullptr instead of raising on a misaligned,
  /// out-of-bounds, or illegal word. The returned pointer is invalidated by
  /// the next entry()/try_entry() call (the backing vector may grow).
  const DecodedEx* try_entry(std::uint32_t pc);

  /// Throws the profile's unsupported-instruction error for `e`, naming the
  /// faulting pc and disassembled instruction.
  [[noreturn]] void raise_unsupported(const DecodedEx& e, std::uint32_t pc) const;

  /// Drops every cached record (they re-decode lazily).
  void invalidate_all();

  /// Memory::WriteObserver: invalidates the records overlapping the store.
  void on_write(std::uint32_t addr, std::uint32_t len) override;

 private:
  [[noreturn]] void fetch_fault(std::uint32_t pc) const;
  void grow(std::uint32_t idx);
  void fill(DecodedEx& e, std::uint32_t pc);

  const TimingProfile& profile_;
  Memory& mem_;
  ResolvedProfile costs_;
  std::uint32_t max_words_;
  std::vector<DecodedEx> entries_;
};

}  // namespace iw::rv
