// Instruction-set definition for the InfiniWolf core simulator.
//
// The simulated ISA is RV32IM plus a subset of the F extension and a set of
// Xpulp-style DSP extensions modeled on the RI5CY core used in Mr. Wolf:
//
//  * hardware loops (two nesting levels, zero loop overhead),
//  * post-increment loads and stores,
//  * multiply-accumulate (p.mac),
//  * fixed-point clip (p.clip),
//  * packed 16-bit SIMD dot products (pv.dotsp.h / pv.sdotsp.h).
//
// Base RV32IM/F instructions use the standard RISC-V encodings. The
// extensions are encoded in the RISC-V custom opcode space (custom-0 = 0x0B,
// custom-1 = 0x2B) with project-defined field layouts documented next to the
// encoder; they are not binary-compatible with real Xpulp silicon, but the
// semantics and cost model mirror it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace iw::rv {

enum class Op : std::uint8_t {
  kIllegal,
  // RV32I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kEcall, kCsrrw, kCsrrs,
  // RV32M
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // F subset
  kFlw, kFsw,
  kFaddS, kFsubS, kFmulS, kFdivS, kFmaddS,
  kFsgnjS, kFsgnjnS,
  kFcvtSW, kFcvtWS, kFmvXW, kFmvWX,
  kFeqS, kFltS, kFleS,
  // Xpulp-style extensions
  kPLbPost, kPLhPost, kPLwPost,   // p.lb/p.lh/p.lw rd, imm(rs1!)
  kPSbPost, kPShPost, kPSwPost,   // p.sb/p.sh/p.sw rs2, imm(rs1!)
  kPMac,                          // p.mac rd, rs1, rs2 : rd += rs1*rs2
  kPClip,                         // p.clip rd, rs1, imm : clamp to +/-(2^(imm-1)-1)
  kPAbs,                          // p.abs rd, rs1 : absolute value
  kPMin,                          // p.min rd, rs1, rs2 : signed minimum
  kPMax,                          // p.max rd, rs1, rs2 : signed maximum
  kPExths,                        // p.exths rd, rs1 : sign-extend halfword
  kPExtbs,                        // p.extbs rd, rs1 : sign-extend byte
  kPvDotspH,                      // pv.dotsp.h rd, rs1, rs2 : 2x16b dot product
  kPvSdotspH,                     // pv.sdotsp.h rd, rs1, rs2 : rd += dot product
  kLpSetup,                       // lp.setup  L, rs1, end : count from register
  kLpSetupi,                      // lp.setupi L, imm, end : immediate count
};

/// Number of opcodes (kLpSetupi is the last enumerator). Sizes the Op-indexed
/// tables used by the predecoder and the instruction histogram.
inline constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kLpSetupi) + 1;

/// Decoded instruction. `imm` carries the sign-extended immediate; `extra`
/// carries the CSR number (CSR ops) or the hardware-loop index (lp.*);
/// `imm2` carries the hardware-loop end offset in words (lp.* only: for
/// lp.setup `imm` is unused and the count comes from rs1, for lp.setupi
/// `imm` is the iteration count).
struct Decoded {
  Op op = Op::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t rs3 = 0;
  std::int32_t imm = 0;
  std::int32_t imm2 = 0;
  std::uint32_t extra = 0;
};

/// Instruction classes used by the timing model.
enum class OpClass : std::uint8_t {
  kAlu, kMul, kDiv, kLoad, kStore, kBranch, kJump, kCsr, kSystem,
  kFpuAlu, kFpuMul, kFpuMadd, kFpuDiv, kFpuCvt, kFpuMove, kFpuCmp,
  kHwloop, kSimd, kMac,
};

/// Maps each opcode to its timing class.
OpClass op_class(Op op);

/// True for instructions that are part of the Xpulp-style extension set
/// (illegal on cores whose timing profile does not enable them).
bool is_xpulp(Op op);
/// True for F-extension instructions.
bool is_fp(Op op);

/// True when the instruction writes the *integer* register named by rd.
/// False for branches, stores, ecall, float-destination ops (flw, float
/// arithmetic, fcvt.s.w, fmv.w.x — their rd names an f-reg), post-increment
/// stores (they update rs1, not rd), and the hardware-loop setups. Used by
/// the static analyzer to track writes to sp and loop counters exactly.
bool writes_int_rd(Op op);

/// Mnemonic for an opcode (e.g. "p.lw" for kPLwPost).
std::string mnemonic(Op op);

/// Human-readable disassembly of a decoded instruction.
std::string to_string(const Decoded& d);

/// "pc=0x00000040: p.lw t0, 4(a1!)" — the address + disassembly fragment
/// shared by the dynamic (DecodeCache) and static (analysis) diagnostics so
/// both paths report a faulting instruction identically.
std::string describe_instruction(std::uint32_t pc, const Decoded& d);

/// Integer register ABI names: x0..x31 <-> zero, ra, sp, ...
std::string reg_name(std::uint8_t reg);
/// Parses a register name ("x5", "t0", "a2", "f3", ...). Returns -1 if not a
/// register. For float registers adds 32 to the index.
int parse_reg(const std::string& token);

/// CSR numbers understood by the simulator.
inline constexpr std::uint32_t kCsrMhartid = 0xF14;
inline constexpr std::uint32_t kCsrMcycle = 0xB00;

}  // namespace iw::rv
