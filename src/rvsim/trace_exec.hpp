// Direct-threaded trace executor (definition of Core::run_trace).
//
// Included by the translation units that drive cores (core.cpp, machine.cpp,
// cluster.cpp) so each driver gets its own fully inlined instantiation. The
// Env parameter is the driver contract:
//
//   bool pre(const TraceOp& t)     — called before each record (which it may
//                                    inspect, e.g. for memory-access flags);
//                                    false stops the run *before* executing
//                                    it (cursor parked, resumable).
//   bool post(int cycles,          — called after each record with its cycle
//             bool mem_valid,        cost and data-memory access (for TCDM
//             bool mem_is_store,     bank arbitration); false stops the run
//             std::uint32_t addr)    after this record.
//
// Equivalence to the interpreter is maintained record by record: every
// architectural update (registers, memory, pc, hardware loops) and every
// counter (cycles, instructions, taken branches, load-use stalls, histogram)
// is applied in the same order with the same values as Core::step, so a
// memory fault, an env stop, or a trace invalidation at any record boundary
// leaves state indistinguishable from having interpreted every instruction.
#pragma once

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "rvsim/core.hpp"
#include "rvsim/trace.hpp"

namespace iw::rv {

namespace trace_detail {

inline std::int32_t s(std::uint32_t v) { return static_cast<std::int32_t>(v); }
inline std::uint32_t u(std::int32_t v) { return static_cast<std::uint32_t>(v); }

inline std::uint32_t float_bits(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}

inline float bits_float(std::uint32_t b) {
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

/// fcvt.w.s semantics shared with the interpreter: NaN and overflow clamp to
/// the integer limits, otherwise truncate toward zero.
inline std::int32_t fcvt_w_s(float f) {
  if (std::isnan(f)) return std::numeric_limits<std::int32_t>::max();
  if (f >= 2147483648.0f) return std::numeric_limits<std::int32_t>::max();
  if (f <= -2147483904.0f) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(f);  // truncation toward zero
}

}  // namespace trace_detail

template <class Env>
void Core::run_trace(Env& env) {
  using trace_detail::bits_float;
  using trace_detail::fcvt_w_s;
  using trace_detail::float_bits;
  using trace_detail::s;
  using trace_detail::u;

  const Trace& tr = *trace_;
  const TraceOp* const ops = tr.ops.data();
  const std::uint32_t n = static_cast<std::uint32_t>(tr.ops.size());
  std::uint32_t i = trace_cursor_;
  bool dyn = trace_dyn_;

  try {
    for (;;) {
      if (!tr.valid) {
        // A store invalidated this trace: detach, re-fetch through the
        // (also invalidated) decode cache via the interpreter.
        trace_.reset();
        return;
      }
      const TraceOp& t = ops[i];
      if (!env.pre(t)) {
        trace_cursor_ = i;
        trace_dyn_ = dyn;
        return;
      }

      int cycles;
      if (dyn) {
        // Record entered via a control transfer: the sequential predecessor
        // is unknown statically, so recompute the stalls from live state
        // (exactly the interpreter's computation).
        cycles = t.base_cost;
        if (pending_load_reg_ >= 0) {
          for (const std::int16_t r : t.reads) {
            if (r == pending_load_reg_) {
              cycles += profile_.load_use_stall;
              ++load_use_stalls_;
              break;
            }
          }
        }
        if (prev_was_load_) cycles += t.load_seq_extra;
        dyn = false;
      } else {
        cycles = t.seq_cost;
        load_use_stalls_ += t.seq_stall;
      }

      std::uint32_t next_pc = pc_ + 4;
      bool transfer = false;
      bool m_valid = false;
      bool m_store = false;
      std::uint32_t m_addr = 0;
      const std::uint32_t rs1 = x_[t.rs1];
      const std::uint32_t rs2 = x_[t.rs2];

      switch (t.op) {
        case Op::kLui: write_x(t.rd, t.aux); break;
        case Op::kAuipc: write_x(t.rd, t.aux); break;
        case Op::kJal:
          write_x(t.rd, pc_ + 4);
          next_pc = t.aux;
          transfer = true;
          break;
        case Op::kBeq:
        case Op::kBne:
        case Op::kBlt:
        case Op::kBge:
        case Op::kBltu:
        case Op::kBgeu: {
          bool taken = false;
          switch (t.op) {
            case Op::kBeq: taken = rs1 == rs2; break;
            case Op::kBne: taken = rs1 != rs2; break;
            case Op::kBlt: taken = s(rs1) < s(rs2); break;
            case Op::kBge: taken = s(rs1) >= s(rs2); break;
            case Op::kBltu: taken = rs1 < rs2; break;
            default: taken = rs1 >= rs2; break;  // kBgeu
          }
          if (taken) {
            next_pc = t.aux;
            cycles += profile_.branch_taken_extra;
            ++taken_branches_;
            transfer = true;
          }
          break;
        }
        case Op::kLb: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_addr = a;
          write_x(t.rd, u(static_cast<std::int8_t>(mem_.load8(a))));
          break;
        }
        case Op::kLh: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_addr = a;
          write_x(t.rd, u(static_cast<std::int16_t>(mem_.load16(a))));
          break;
        }
        case Op::kLw: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_addr = a;
          write_x(t.rd, mem_.load32(a));
          break;
        }
        case Op::kLbu: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_addr = a;
          write_x(t.rd, mem_.load8(a));
          break;
        }
        case Op::kLhu: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_addr = a;
          write_x(t.rd, mem_.load16(a));
          break;
        }
        case Op::kSb: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_store = true;
          m_addr = a;
          mem_.store8(a, static_cast<std::uint8_t>(rs2));
          break;
        }
        case Op::kSh: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_store = true;
          m_addr = a;
          mem_.store16(a, static_cast<std::uint16_t>(rs2));
          break;
        }
        case Op::kSw: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_store = true;
          m_addr = a;
          mem_.store32(a, rs2);
          break;
        }
        // Post-increment accesses: pre-increment address, then bump the base
        // (base bump last, so rd == rs1 resolves exactly like the
        // interpreter: the bump wins).
        case Op::kPLbPost:
          m_valid = true;
          m_addr = rs1;
          write_x(t.rd, u(static_cast<std::int8_t>(mem_.load8(rs1))));
          write_x(t.rs1, rs1 + u(t.imm));
          break;
        case Op::kPLhPost:
          m_valid = true;
          m_addr = rs1;
          write_x(t.rd, u(static_cast<std::int16_t>(mem_.load16(rs1))));
          write_x(t.rs1, rs1 + u(t.imm));
          break;
        case Op::kPLwPost:
          m_valid = true;
          m_addr = rs1;
          write_x(t.rd, mem_.load32(rs1));
          write_x(t.rs1, rs1 + u(t.imm));
          break;
        case Op::kPSbPost:
          m_valid = true;
          m_store = true;
          m_addr = rs1;
          mem_.store8(rs1, static_cast<std::uint8_t>(rs2));
          write_x(t.rs1, rs1 + u(t.imm));
          break;
        case Op::kPShPost:
          m_valid = true;
          m_store = true;
          m_addr = rs1;
          mem_.store16(rs1, static_cast<std::uint16_t>(rs2));
          write_x(t.rs1, rs1 + u(t.imm));
          break;
        case Op::kPSwPost:
          m_valid = true;
          m_store = true;
          m_addr = rs1;
          mem_.store32(rs1, rs2);
          write_x(t.rs1, rs1 + u(t.imm));
          break;
        case Op::kAddi: write_x(t.rd, rs1 + u(t.imm)); break;
        case Op::kSlti: write_x(t.rd, s(rs1) < t.imm ? 1 : 0); break;
        case Op::kSltiu: write_x(t.rd, rs1 < u(t.imm) ? 1 : 0); break;
        case Op::kXori: write_x(t.rd, rs1 ^ u(t.imm)); break;
        case Op::kOri: write_x(t.rd, rs1 | u(t.imm)); break;
        case Op::kAndi: write_x(t.rd, rs1 & u(t.imm)); break;
        case Op::kSlli: write_x(t.rd, rs1 << (t.imm & 31)); break;
        case Op::kSrli: write_x(t.rd, rs1 >> (t.imm & 31)); break;
        case Op::kSrai: write_x(t.rd, u(s(rs1) >> (t.imm & 31))); break;
        case Op::kAdd: write_x(t.rd, rs1 + rs2); break;
        case Op::kSub: write_x(t.rd, rs1 - rs2); break;
        case Op::kSll: write_x(t.rd, rs1 << (rs2 & 31)); break;
        case Op::kSlt: write_x(t.rd, s(rs1) < s(rs2) ? 1 : 0); break;
        case Op::kSltu: write_x(t.rd, rs1 < rs2 ? 1 : 0); break;
        case Op::kXor: write_x(t.rd, rs1 ^ rs2); break;
        case Op::kSrl: write_x(t.rd, rs1 >> (rs2 & 31)); break;
        case Op::kSra: write_x(t.rd, u(s(rs1) >> (rs2 & 31))); break;
        case Op::kOr: write_x(t.rd, rs1 | rs2); break;
        case Op::kAnd: write_x(t.rd, rs1 & rs2); break;
        case Op::kMul: write_x(t.rd, rs1 * rs2); break;
        case Op::kMulh:
          write_x(t.rd, static_cast<std::uint32_t>(
                            (static_cast<std::int64_t>(s(rs1)) * s(rs2)) >> 32));
          break;
        case Op::kMulhsu:
          write_x(t.rd,
                  static_cast<std::uint32_t>(
                      (static_cast<std::int64_t>(s(rs1)) *
                       static_cast<std::uint64_t>(rs2)) >>
                      32));
          break;
        case Op::kMulhu:
          write_x(t.rd, static_cast<std::uint32_t>(
                            (static_cast<std::uint64_t>(rs1) * rs2) >> 32));
          break;
        case Op::kDiv:
          if (rs2 == 0) write_x(t.rd, ~0u);
          else if (s(rs1) == std::numeric_limits<std::int32_t>::min() && s(rs2) == -1)
            write_x(t.rd, rs1);
          else write_x(t.rd, u(s(rs1) / s(rs2)));
          break;
        case Op::kDivu: write_x(t.rd, rs2 == 0 ? ~0u : rs1 / rs2); break;
        case Op::kRem:
          if (rs2 == 0) write_x(t.rd, rs1);
          else if (s(rs1) == std::numeric_limits<std::int32_t>::min() && s(rs2) == -1)
            write_x(t.rd, 0);
          else write_x(t.rd, u(s(rs1) % s(rs2)));
          break;
        case Op::kRemu: write_x(t.rd, rs2 == 0 ? rs1 : rs1 % rs2); break;
        case Op::kCsrrw:
        case Op::kCsrrs: {
          std::uint32_t value = 0;
          if (t.aux == kCsrMhartid) value = hart_id_;
          else if (t.aux == kCsrMcycle) value = static_cast<std::uint32_t>(cycles_);
          write_x(t.rd, value);
          break;
        }
        case Op::kPMac: write_x(t.rd, x_[t.rd] + rs1 * rs2); break;
        case Op::kPClip: {
          const std::int32_t hi = s(t.aux);
          const std::int32_t lo = -hi - 1;
          const std::int32_t v = s(rs1);
          write_x(t.rd, u(v < lo ? lo : (v > hi ? hi : v)));
          break;
        }
        case Op::kPAbs:
          write_x(t.rd, s(rs1) < 0 ? static_cast<std::uint32_t>(0) - rs1 : rs1);
          break;
        case Op::kPMin: write_x(t.rd, s(rs1) < s(rs2) ? rs1 : rs2); break;
        case Op::kPMax: write_x(t.rd, s(rs1) > s(rs2) ? rs1 : rs2); break;
        case Op::kPExths: write_x(t.rd, u(static_cast<std::int16_t>(rs1 & 0xFFFF))); break;
        case Op::kPExtbs: write_x(t.rd, u(static_cast<std::int8_t>(rs1 & 0xFF))); break;
        case Op::kPvDotspH:
        case Op::kPvSdotspH: {
          const std::int32_t lo = static_cast<std::int16_t>(rs1 & 0xFFFF) *
                                  static_cast<std::int16_t>(rs2 & 0xFFFF);
          const std::int32_t hi = static_cast<std::int16_t>(rs1 >> 16) *
                                  static_cast<std::int16_t>(rs2 >> 16);
          const std::int32_t acc = (t.op == Op::kPvSdotspH) ? s(x_[t.rd]) : 0;
          write_x(t.rd, u(acc + lo + hi));
          break;
        }
        case Op::kLpSetup: {
          HwLoop& loop = loops_[t.rs3];
          loop.start = pc_ + 4;
          loop.end = t.aux;
          loop.count = rs1 == 0 ? 1 : rs1;
          break;
        }
        case Op::kLpSetupi: {
          HwLoop& loop = loops_[t.rs3];
          loop.start = pc_ + 4;
          loop.end = t.aux;
          loop.count = u(t.imm);
          break;
        }
        case Op::kFlw: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_addr = a;
          f_[t.rd] = bits_float(mem_.load32(a));
          break;
        }
        case Op::kFsw: {
          const std::uint32_t a = rs1 + u(t.imm);
          m_valid = true;
          m_store = true;
          m_addr = a;
          mem_.store32(a, float_bits(f_[t.rs2]));
          break;
        }
        case Op::kFaddS: f_[t.rd] = f_[t.rs1] + f_[t.rs2]; break;
        case Op::kFsubS: f_[t.rd] = f_[t.rs1] - f_[t.rs2]; break;
        case Op::kFmulS: f_[t.rd] = f_[t.rs1] * f_[t.rs2]; break;
        case Op::kFdivS: f_[t.rd] = f_[t.rs1] / f_[t.rs2]; break;
        case Op::kFmaddS: f_[t.rd] = f_[t.rs1] * f_[t.rs2] + f_[t.rs3]; break;
        case Op::kFsgnjS:
          f_[t.rd] = bits_float((float_bits(f_[t.rs1]) & 0x7FFFFFFF) |
                                (float_bits(f_[t.rs2]) & 0x80000000));
          break;
        case Op::kFsgnjnS:
          f_[t.rd] = bits_float((float_bits(f_[t.rs1]) & 0x7FFFFFFF) |
                                (~float_bits(f_[t.rs2]) & 0x80000000));
          break;
        case Op::kFcvtSW: f_[t.rd] = static_cast<float>(s(rs1)); break;
        case Op::kFcvtWS: write_x(t.rd, u(fcvt_w_s(f_[t.rs1]))); break;
        case Op::kFmvXW: write_x(t.rd, float_bits(f_[t.rs1])); break;
        case Op::kFmvWX: f_[t.rd] = bits_float(rs1); break;
        case Op::kFeqS: write_x(t.rd, f_[t.rs1] == f_[t.rs2] ? 1 : 0); break;
        case Op::kFltS: write_x(t.rd, f_[t.rs1] < f_[t.rs2] ? 1 : 0); break;
        case Op::kFleS: write_x(t.rd, f_[t.rs1] <= f_[t.rs2] ? 1 : 0); break;
        default:
          // ecall/jalr/illegal never compile into traces.
          fail("Core::run_trace: uncompilable op in trace");
      }

      // Hardware loops: the interpreter scans every post-execute next_pc.
      // Sequential records provably not at an armed loop end (no
      // kMaybeLoopEnd flag, guaranteed by the compile-time flags plus the
      // attach-time guard) skip the scan.
      if (transfer) {
        hwloop_advance(next_pc);
      } else if ((t.flags & TraceOp::kMaybeLoopEnd) != 0) {
        hwloop_advance(next_pc);
        transfer = next_pc != pc_ + 4;
      }

      pending_load_reg_ = t.load_dest;
      prev_was_load_ = (t.flags & TraceOp::kIsLoad) != 0;
      pc_ = next_pc;
      cycles_ += static_cast<std::uint64_t>(cycles);
      ++instructions_;
      ++trace_instructions_;
      if (histogram_ != nullptr) histogram_->record(t.op);

      const bool cont = env.post(cycles, m_valid, m_store, m_addr);

      if (!transfer) {
        if (++i == n) {
          // Fell off the trace end onto the sequential successor.
          trace_.reset();
          return;
        }
      } else {
        const std::uint32_t off = next_pc - tr.start;
        if (off < 4u * n && (off & 3u) == 0) {
          // In-trace transfer (taken branch / hwloop back edge): re-enter
          // dynamically at the landing record.
          i = off >> 2;
          dyn = true;
        } else {
          // Exit edge. Chain: the target may head another compiled trace.
          trace_.reset();
          if (tspace_ != nullptr) maybe_attach(next_pc);
          return;
        }
      }
      if (!cont) {
        trace_cursor_ = i;
        trace_dyn_ = dyn;
        return;
      }
    }
  } catch (...) {
    // Memory fault mid-record: all state was updated in interpreter order
    // before the throw, so parking the cursor on the faulting record (with
    // dynamic re-entry, which recomputes the same stalls) makes a resumed
    // core bit-identical to an interpreted one.
    trace_cursor_ = i;
    trace_dyn_ = true;
    throw;
  }
}

}  // namespace iw::rv
