#include "rvsim/predecode.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "rvsim/encoding.hpp"

namespace iw::rv {

namespace {

/// Unified register ids (x: 0..31, f: 32..63) the instruction reads that can
/// participate in a load-use hazard; -1 marks unused slots. Reads of x0 are
/// recorded as -1 outright: a load into x0 never creates a hazard, so the
/// step loop needs no `!= 0` exclusion.
void collect_reads(const Decoded& d, std::int16_t out[3]) {
  std::int16_t r[3] = {-1, -1, -1};
  switch (d.op) {
    // I-type integer ops and loads: rs1 only.
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
    case Op::kSrai: case Op::kPClip: case Op::kJalr:
    case Op::kPAbs: case Op::kPExths: case Op::kPExtbs:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
    case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost:
    case Op::kFlw: case Op::kCsrrw: case Op::kCsrrs:
    case Op::kFcvtSW: case Op::kFmvWX:
      r[0] = d.rs1;
      break;
    // Stores read the address register and the (int) data register.
    case Op::kSb: case Op::kSh: case Op::kSw:
    case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
      r[0] = d.rs1;
      r[1] = d.rs2;
      break;
    case Op::kFsw:
      r[0] = d.rs1;
      r[1] = static_cast<std::int16_t>(32 + d.rs2);
      break;
    // R-type integer ops, branches.
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt: case Op::kSltu:
    case Op::kXor: case Op::kSrl: case Op::kSra: case Op::kOr: case Op::kAnd:
    case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
    case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
    case Op::kPvDotspH: case Op::kPMin: case Op::kPMax:
      r[0] = d.rs1;
      r[1] = d.rs2;
      break;
    case Op::kPMac: case Op::kPvSdotspH:
      r[0] = d.rs1;
      r[1] = d.rs2;
      r[2] = d.rd;  // accumulator is read
      break;
    case Op::kFaddS: case Op::kFsubS: case Op::kFmulS: case Op::kFdivS:
    case Op::kFsgnjS: case Op::kFsgnjnS:
    case Op::kFeqS: case Op::kFltS: case Op::kFleS:
      r[0] = static_cast<std::int16_t>(32 + d.rs1);
      r[1] = static_cast<std::int16_t>(32 + d.rs2);
      break;
    case Op::kFmaddS:
      r[0] = static_cast<std::int16_t>(32 + d.rs1);
      r[1] = static_cast<std::int16_t>(32 + d.rs2);
      r[2] = static_cast<std::int16_t>(32 + d.rs3);
      break;
    case Op::kFcvtWS: case Op::kFmvXW:
      r[0] = static_cast<std::int16_t>(32 + d.rs1);
      break;
    case Op::kLpSetup:
      r[0] = d.rs1;
      break;
    default:
      break;
  }
  for (int k = 0; k < 3; ++k) out[k] = r[k] == 0 ? std::int16_t{-1} : r[k];
}

}  // namespace

std::string unsupported_instruction_message(const std::string& profile_name,
                                            std::uint32_t pc, const Decoded& d) {
  return profile_name + ": unsupported instruction at " + describe_instruction(pc, d);
}

DecodeCache::DecodeCache(const TimingProfile& profile, Memory& memory)
    : profile_(profile),
      mem_(memory),
      costs_(resolve(profile)),
      max_words_(static_cast<std::uint32_t>(memory.size() / 4)) {
  mem_.add_write_observer(this, 0, 0);
}

DecodeCache::~DecodeCache() { mem_.remove_write_observer(this); }

const DecodedEx* DecodeCache::try_entry(std::uint32_t pc) {
  const std::uint32_t idx = pc >> 2;
  if ((pc & 3u) != 0 || idx >= max_words_) return nullptr;
  if (idx >= entries_.size()) grow(idx);
  DecodedEx& e = entries_[idx];
  if (e.status == kEmpty) {
    try {
      fill(e, pc);
    } catch (...) {
      return nullptr;  // illegal word: leave the record empty
    }
  }
  return &e;
}

void DecodeCache::raise_unsupported(const DecodedEx& e, std::uint32_t pc) const {
  fail(unsupported_instruction_message(profile_.name, pc, e.d));
}

void DecodeCache::invalidate_all() {
  for (DecodedEx& e : entries_) e.status = kEmpty;
}

void DecodeCache::on_write(std::uint32_t addr, std::uint32_t len) {
  const std::uint64_t first = addr >> 2;
  const std::uint64_t last = (static_cast<std::uint64_t>(addr) + len + 3) >> 2;
  const std::uint64_t end = std::min<std::uint64_t>(last, entries_.size());
  for (std::uint64_t i = first; i < end; ++i) {
    entries_[static_cast<std::size_t>(i)].status = kEmpty;
  }
}

void DecodeCache::fetch_fault(std::uint32_t pc) const {
  // Reproduce the exact fetch error (bounds checked before alignment).
  mem_.load32(pc);
  fail("DecodeCache: unreachable fetch fault");
}

void DecodeCache::grow(std::uint32_t idx) {
  const std::size_t want = static_cast<std::size_t>(idx) + 1;
  std::size_t target = std::max({want, entries_.size() * 2, std::size_t{256}});
  target = std::min(target, static_cast<std::size_t>(max_words_));
  entries_.resize(target);
  mem_.set_observed_range(this, 0, static_cast<std::uint32_t>(4 * entries_.size()));
}

void DecodeCache::fill(DecodedEx& e, std::uint32_t pc) {
  const Decoded d = decode(mem_.load32(pc));  // throws on illegal words
  const std::size_t op = static_cast<std::size_t>(d.op);
  e.d = d;
  if (!costs_.supported[op]) {
    e.status = kUnsupported;
    return;
  }
  e.cls = op_class(d.op);
  e.base_cost = costs_.base_cost[op];
  e.is_load = e.cls == OpClass::kLoad;
  e.load_seq_extra =
      e.is_load ? static_cast<std::int16_t>(profile_.load_nonpipelined_extra) : std::int16_t{0};
  if (e.is_load && profile_.load_use_stall > 0) {
    const std::int16_t dest = is_fp(d.op) ? static_cast<std::int16_t>(32 + d.rd)
                                          : static_cast<std::int16_t>(d.rd);
    // A load into x0 never stalls a successor.
    e.load_dest = dest == 0 ? std::int16_t{-1} : dest;
  } else {
    e.load_dest = -1;
  }
  collect_reads(d, e.reads);
  e.status = kOk;
}

}  // namespace iw::rv
