// Binary encoding and decoding of the simulated ISA.
//
// Base RV32IM/F instructions use the standard RISC-V formats (R/I/S/B/U/J and
// R4 for fmadd). Extension encodings live in the custom opcode space:
//
//   custom-0 (0x0B), I-type:
//     funct3 000/001/010 : p.lb / p.lh / p.lw rd, imm(rs1!)  (post-increment)
//     funct3 011         : p.clip rd, rs1, imm               (imm = bit width)
//   custom-1 (0x2B):
//     funct3 000/001/010 : p.sb / p.sh / p.sw rs2, imm(rs1!) (S-type)
//     funct3 100         : lp.setup  L, rs1, end   L = rd bit 0,
//                          end offset in words = imm[11:0] at [31:20]
//     funct3 101 / 110   : lp.setupi 0/1, count, end
//                          count = [31:20], end offset words = {rs1, rd} (10 bits)
//   OP (0x33):
//     funct7 0x21 funct3 000 : p.mac rd, rs1, rs2
//     funct7 0x22 funct3 000 : pv.dotsp.h
//     funct7 0x22 funct3 001 : pv.sdotsp.h
#pragma once

#include <cstdint>

#include "rvsim/isa.hpp"

namespace iw::rv {

/// Encodes a decoded instruction into a 32-bit word. Throws iw::Error on
/// out-of-range immediates.
std::uint32_t encode(const Decoded& d);

/// Decodes a 32-bit word. Throws iw::Error on illegal instructions.
Decoded decode(std::uint32_t word);

}  // namespace iw::rv
