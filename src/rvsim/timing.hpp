// Cycle-cost profiles for the three execution targets the paper compares.
//
// The simulator is cycle-approximate: every instruction has a base cost from
// its class, plus data-dependent penalties (taken branches, load-use stalls,
// TCDM bank conflicts in the cluster). The per-class costs below are set from
// published microarchitecture documentation and then trimmed so the MLP
// kernels land near the paper's Table III cycle counts; EXPERIMENTS.md
// records the residual error.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "rvsim/isa.hpp"

namespace iw::rv {

struct TimingProfile {
  std::string name;
  double freq_hz = 100e6;

  int alu = 1;
  int mul = 1;
  int div = 8;
  int load = 1;
  int store = 1;
  /// Extra cycles when a dependent instruction immediately follows a load.
  int load_use_stall = 0;
  /// Extra cycles for back-to-back loads beyond the first (models cores that
  /// do not pipeline consecutive memory accesses).
  int load_nonpipelined_extra = 0;
  int branch = 1;
  /// Extra cycles when a branch is taken (pipeline refill).
  int branch_taken_extra = 2;
  int jump = 2;
  int csr = 1;
  int system = 1;
  int fpu_alu = 1;
  int fpu_mul = 1;
  int fpu_madd = 3;
  int fpu_div = 14;
  int fpu_cvt = 1;
  int fpu_move = 1;
  int fpu_cmp = 1;
  int hwloop_setup = 1;
  int simd = 1;
  int mac = 1;

  bool has_hwloop = false;
  bool has_postinc = false;
  bool has_mac = false;
  bool has_simd = false;
  bool has_fpu = false;

  /// Base cost for an instruction of the given class.
  int base_cost(OpClass cls) const;
  /// True when the profile can legally execute the opcode.
  bool supports(Op op) const;
};

/// Per-opcode cost and support tables resolved from a profile. Built once per
/// decode cache so the per-instruction hot path never re-derives
/// op_class() -> base_cost() -> supports() per step.
struct ResolvedProfile {
  std::array<std::int16_t, kOpCount> base_cost{};
  std::array<bool, kOpCount> supported{};
};
ResolvedProfile resolve(const TimingProfile& profile);

/// ARM Cortex-M4F-class profile (Nordic nRF52832 @ 64 MHz). Scalar core with
/// single-cycle MAC (MLA), post-indexed addressing, pipelined back-to-back
/// loads, FPU; no hardware loops.
TimingProfile cortex_m4f();

/// IBEX-class profile (Mr. Wolf fabric controller @ 100 MHz). Small RV32IM
/// core: multi-cycle multiplier, 2-cycle loads, no DSP extensions, no FPU.
TimingProfile ibex();

/// RI5CY-class profile (Mr. Wolf cluster core @ 100 MHz). RV32IM + Xpulp:
/// hardware loops, post-increment addressing, MAC, SIMD; single-cycle TCDM
/// loads with a load-use stall.
TimingProfile ri5cy();

}  // namespace iw::rv
