#include "rvsim/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "rvsim/verify_hook.hpp"

namespace iw::rv {

namespace {

/// Min-heap of (local time, core index) over the runnable cores. top() is the
/// core with the smallest local time, ties broken toward the lowest index —
/// the same deterministic order the previous O(num_cores) scan produced, at
/// O(log n) per schedule step. Every kRunning core is in the heap exactly
/// once; halted and barrier-parked cores are simply absent.
class ReadyHeap {
 public:
  explicit ReadyHeap(int capacity) { slots_.reserve(static_cast<std::size_t>(capacity)); }

  bool empty() const { return slots_.empty(); }

  void push(std::uint64_t time, int core) {
    slots_.emplace_back(time, core);
    std::push_heap(slots_.begin(), slots_.end(), kLater);
  }

  std::pair<std::uint64_t, int> pop() {
    std::pop_heap(slots_.begin(), slots_.end(), kLater);
    const std::pair<std::uint64_t, int> top = slots_.back();
    slots_.pop_back();
    return top;
  }

 private:
  // std::push_heap keeps the *largest* element on top, so order by "later".
  static constexpr auto kLater = [](const std::pair<std::uint64_t, int>& a,
                                    const std::pair<std::uint64_t, int>& b) {
    return a > b;
  };
  std::vector<std::pair<std::uint64_t, int>> slots_;
};

}  // namespace

Cluster::Cluster(TimingProfile profile, ClusterConfig config)
    : config_(config), mem_(config.mem_bytes) {
  ensure(config_.num_cores >= 1 && config_.num_cores <= 32, "Cluster: core count");
  ensure(config_.num_banks >= 1, "Cluster: bank count");
  ensure((config_.barrier_addr & 3) == 0, "Cluster: barrier address alignment");
  cores_.reserve(static_cast<std::size_t>(config_.num_cores));
  for (int i = 0; i < config_.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(profile, mem_, static_cast<std::uint32_t>(i)));
  }
}

Core& Cluster::core(int index) {
  ensure(index >= 0 && index < config_.num_cores, "Cluster::core index");
  return *cores_[static_cast<std::size_t>(index)];
}

void Cluster::load_program(std::span<const std::uint32_t> words, std::uint32_t base) {
  mem_.write_words(base, words);
}

ClusterRunResult Cluster::run(std::uint32_t entry, std::uint64_t max_instructions) {
  if (verify_on_load_) {
    run_program_verifier(mem_, entry, cores_.front()->profile());
  }
  const int n = config_.num_cores;
  std::vector<CoreState> state(static_cast<std::size_t>(n), CoreState::kRunning);
  std::vector<std::uint64_t> time(static_cast<std::size_t>(n), 0);
  // Per-bank time at which the bank becomes free again.
  std::vector<std::uint64_t> bank_free(static_cast<std::size_t>(config_.num_banks), 0);

  ReadyHeap ready(n);
  for (int i = 0; i < n; ++i) {
    const std::uint32_t sp = static_cast<std::uint32_t>(mem_.size()) -
                             static_cast<std::uint32_t>(i) * config_.stack_bytes;
    cores_[static_cast<std::size_t>(i)]->reset(entry, sp & ~15u);
    ready.push(0, i);
  }

  ClusterRunResult result;
  std::uint64_t executed = 0;
  std::uint64_t dma_done_at = 0;  // cycle at which the DMA queue drains
  int halted_cores = 0;
  int parked_cores = 0;  // cores waiting at the barrier

  while (halted_cores < n) {
    if (ready.empty()) {
      // No core can run but not all halted: every live core is parked at the
      // barrier waiting for a halted core -> deadlock.
      fail("Cluster::run: barrier deadlock (a core halted before the barrier)");
    }
    const int pick = ready.pop().second;

    Core& core = *cores_[static_cast<std::size_t>(pick)];
    const std::size_t p = static_cast<std::size_t>(pick);
    if (++executed > max_instructions) {
      fail("Cluster::run: instruction budget exhausted (runaway program?)");
    }

    const Core::StepResult step = core.step();
    std::uint64_t cost = static_cast<std::uint64_t>(step.cycles);

    if (step.access.valid && in_tcdm(step.access.addr)) {
      const std::uint32_t word_index = (step.access.addr - config_.tcdm_base) >> 2;
      const std::size_t bank = word_index % static_cast<std::uint32_t>(config_.num_banks);
      const std::uint64_t request_at = time[p];
      const std::uint64_t served_at = std::max(bank_free[bank], request_at);
      const std::uint64_t stall = served_at - request_at;
      bank_free[bank] = served_at + 1;
      if (stall > 0) {
        core.add_stall(stall);
        result.bank_conflict_stalls += stall;
        cost += stall;
      }
    }
    time[p] += cost;

    // DMA engine: trigger and wait are stores to the mapped registers.
    if (step.access.valid && step.access.is_store &&
        step.access.addr == config_.dma_base + 12) {
      const std::uint32_t src = mem_.load32(config_.dma_base);
      const std::uint32_t dst = mem_.load32(config_.dma_base + 4);
      const std::uint32_t len = mem_.load32(config_.dma_base + 8);
      ensure((src & 3) == 0 && (dst & 3) == 0, "Cluster DMA: misaligned transfer");
      // Data moves now; the completion *time* is enforced by WAIT below.
      for (std::uint32_t w = 0; w < len; ++w) {
        mem_.store32(dst + 4 * w, mem_.load32(src + 4 * w));
      }
      const std::uint64_t busy =
          static_cast<std::uint64_t>(config_.dma_startup_cycles) +
          (len + static_cast<std::uint32_t>(config_.dma_words_per_cycle) - 1) /
              static_cast<std::uint32_t>(config_.dma_words_per_cycle);
      dma_done_at = std::max(dma_done_at, time[p]) + busy;
      ++result.dma_transfers;
      result.dma_words += len;
    } else if (step.access.valid && step.access.is_store &&
               step.access.addr == config_.dma_base + 16) {
      if (time[p] < dma_done_at) {
        const std::uint64_t wait = dma_done_at - time[p];
        core.add_stall(wait);
        result.dma_wait_cycles += wait;
        time[p] = dma_done_at;
      }
    }

    if (step.halted) {
      state[p] = CoreState::kHalted;
      ++halted_cores;
    } else if (step.access.valid && step.access.is_store &&
               step.access.addr == config_.barrier_addr) {
      state[p] = CoreState::kAtBarrier;
      ++parked_cores;
      // Release when every non-halted core has arrived.
      if (parked_cores + halted_cores == n) {
        std::uint64_t release_at = 0;
        for (int i = 0; i < n; ++i) {
          if (state[static_cast<std::size_t>(i)] == CoreState::kAtBarrier) {
            release_at = std::max(release_at, time[static_cast<std::size_t>(i)]);
          }
        }
        release_at += static_cast<std::uint64_t>(config_.barrier_wakeup_cycles);
        for (int i = 0; i < n; ++i) {
          const std::size_t q = static_cast<std::size_t>(i);
          if (state[q] == CoreState::kAtBarrier) {
            const std::uint64_t wait = release_at - time[q];
            cores_[q]->add_stall(wait);
            result.barrier_wait_cycles += wait;
            time[q] = release_at;
            state[q] = CoreState::kRunning;
            ready.push(release_at, i);
          }
        }
        parked_cores = 0;
      }
    } else {
      ready.push(time[p], pick);
    }
  }

  result.per_core_cycles.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t q = static_cast<std::size_t>(i);
    result.per_core_cycles[q] = cores_[q]->cycles();
    result.cycles = std::max(result.cycles, cores_[q]->cycles());
    result.total_instructions += cores_[q]->instructions();
  }
  return result;
}

}  // namespace iw::rv
