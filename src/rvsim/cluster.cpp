#include "rvsim/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "rvsim/trace_exec.hpp"
#include "rvsim/verify_hook.hpp"

namespace iw::rv {

namespace {

/// Min-heap of (local time, core index) over the runnable cores. top() is the
/// core with the smallest local time, ties broken toward the lowest index —
/// the same deterministic order the previous O(num_cores) scan produced, at
/// O(log n) per schedule step. Every kRunning core is in the heap exactly
/// once; halted and barrier-parked cores are simply absent.
///
/// Entries are packed as (time << kCoreBits) | core, so the lexicographic
/// (time, index) order is plain integer order and the scheduler's hottest
/// operation — push_pop, one fused sift-down — moves single registers. The
/// packing is exact while time < 2^58, far beyond any simulated run.
class ReadyHeap {
 public:
  static constexpr unsigned kCoreBits = 6;  // num_cores <= 32 < 2^6
  static constexpr std::uint64_t kCoreMask = (1u << kCoreBits) - 1;

  static std::uint64_t pack(std::uint64_t time, int core) {
    return (time << kCoreBits) | static_cast<std::uint64_t>(core);
  }
  static std::uint64_t entry_time(std::uint64_t e) { return e >> kCoreBits; }
  static int entry_core(std::uint64_t e) { return static_cast<int>(e & kCoreMask); }

  explicit ReadyHeap(int capacity) { slots_.reserve(static_cast<std::size_t>(capacity)); }

  bool empty() const { return slots_.empty(); }

  void push(std::uint64_t time, int core) {
    slots_.push_back(pack(time, core));
    std::size_t i = slots_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (slots_[parent] <= slots_[i]) break;
      std::swap(slots_[parent], slots_[i]);
      i = parent;
    }
  }

  std::uint64_t pop() {
    const std::uint64_t top = slots_.front();
    slots_.front() = slots_.back();
    slots_.pop_back();
    if (!slots_.empty()) sift_down();
    return top;
  }

  /// Re-queues one entry and extracts the new minimum in one sift-down: the
  /// per-instruction schedule step of a lockstep cluster.
  std::uint64_t push_pop(std::uint64_t time, int core) {
    const std::uint64_t entry = pack(time, core);
    if (slots_.empty() || entry < slots_.front()) return entry;
    const std::uint64_t top = slots_.front();
    slots_.front() = entry;
    sift_down();
    return top;
  }

  /// Smallest packed (time, index) without removing it. Valid when !empty().
  std::uint64_t peek() const { return slots_.front(); }

 private:
  void sift_down() {
    const std::size_t n = slots_.size();
    const std::uint64_t value = slots_[0];
    std::size_t i = 0;
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && slots_[child + 1] < slots_[child]) ++child;
      if (value <= slots_[child]) break;
      slots_[i] = slots_[child];
      i = child;
    }
    slots_[i] = value;
  }

  std::vector<std::uint64_t> slots_;
};

/// Trace-execution env for the cluster scheduler: per record it applies TCDM
/// bank arbitration and advances the core's local time. Every record that
/// touches memory (and thus the shared image, the banks, DMA or the barrier)
/// executes only while the core is the lexicographically smallest
/// (time, index) among runnables — exactly the one-instruction-at-a-time
/// schedule. Once the window closes, the core may still *run ahead* through
/// records that touch no memory at all: those update nothing but its private
/// registers and counters, so executing them early commutes with every
/// operation another core can canonically interleave in between. The env is
/// built once per core per run; the driver refreshes only the per-burst
/// fields before each resume.
struct ClusterTraceEnv {
  /// Bounds run-ahead past the burst window (and with it the span over which
  /// a racing cross-core code store could, in principle, be observed late;
  /// see DESIGN.md §14 on the self-modifying-code contract).
  static constexpr std::uint32_t kAheadCap = 64;

  Core& core;
  std::uint64_t& my_time;
  std::uint64_t* bank_free;
  std::uint64_t& bank_conflict_stalls;
  std::uint64_t& executed;
  std::uint64_t max_instructions;
  std::uint32_t tcdm_base;
  std::uint32_t tcdm_size;
  std::uint32_t num_banks;
  std::uint32_t bank_mask;  // num_banks - 1 when a power of two, else 0
  std::uint32_t dma_base;
  std::uint32_t barrier_addr;
  std::uint32_t special_lo;   // min(dma trigger, dma wait, barrier) address
  std::uint32_t special_len;  // max special address - special_lo
  int self;

  // Per-burst state, refreshed by the driver before each run_trace call.
  std::uint64_t limit = 0;  // packed (limit_time, limit_index), see ReadyHeap
  std::uint32_t ahead = 0;      // records executed past the window so far
  std::uint32_t ahead_cap = 0;  // 0 disables run-ahead (image not clean)
  bool budget_stop = false;
  bool special = false;  // a store hit a DMA register or the barrier
  std::uint32_t special_addr = 0;

  bool pre(const TraceOp& t) {
    if (ahead != 0 &&
        (t.flags & (TraceOp::kIsLoad | TraceOp::kIsStore)) != 0) {
      // Out of the burst window: memory-touching records wait until this
      // core is the canonical minimum again.
      return false;
    }
    if (executed == max_instructions) {
      // Let the interpreted path raise the budget error with the exact
      // counter state the one-at-a-time loop would have.
      budget_stop = true;
      return false;
    }
    ++executed;
    return true;
  }

  bool post(int cycles, bool mem_valid, bool mem_is_store, std::uint32_t addr) {
    std::uint64_t cost = static_cast<std::uint64_t>(cycles);
    if (mem_valid && (addr - tcdm_base) < tcdm_size) {
      const std::uint32_t word_index = (addr - tcdm_base) >> 2;
      const std::size_t bank =
          bank_mask != 0 ? (word_index & bank_mask) : (word_index % num_banks);
      const std::uint64_t served_at = std::max(bank_free[bank], my_time);
      const std::uint64_t stall = served_at - my_time;
      bank_free[bank] = served_at + 1;
      if (stall > 0) {
        core.add_stall(stall);
        bank_conflict_stalls += stall;
        cost += stall;
      }
    }
    my_time += cost;
    if (mem_is_store && addr - special_lo <= special_len &&
        (addr == dma_base + 12 || addr == dma_base + 16 || addr == barrier_addr)) {
      special = true;
      special_addr = addr;
      return false;
    }
    if (ReadyHeap::pack(my_time, self) < limit) return true;
    return ++ahead <= ahead_cap;
  }
};

}  // namespace

Cluster::Cluster(TimingProfile profile, ClusterConfig config)
    : config_(config), mem_(config.mem_bytes) {
  ensure(config_.num_cores >= 1 && config_.num_cores <= 32, "Cluster: core count");
  ensure(config_.num_banks >= 1, "Cluster: bank count");
  ensure((config_.barrier_addr & 3) == 0, "Cluster: barrier address alignment");
  cores_.reserve(static_cast<std::size_t>(config_.num_cores));
  for (int i = 0; i < config_.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(profile, mem_, static_cast<std::uint32_t>(i)));
  }
  if (default_trace_mode()) set_trace_mode(true);
}

void Cluster::set_trace_mode(bool enabled) {
  if (enabled == (tspace_ != nullptr)) return;
  if (enabled) {
    tspace_ = std::make_unique<TraceSpace>(mem_, cores_.front()->profile());
    for (auto& core : cores_) core->set_trace_space(tspace_.get());
  } else {
    for (auto& core : cores_) core->set_trace_space(nullptr);
    tspace_.reset();
  }
}

Core& Cluster::core(int index) {
  ensure(index >= 0 && index < config_.num_cores, "Cluster::core index");
  return *cores_[static_cast<std::size_t>(index)];
}

void Cluster::load_program(std::span<const std::uint32_t> words, std::uint32_t base) {
  mem_.write_words(base, words);
}

ClusterRunResult Cluster::run(std::uint32_t entry, std::uint64_t max_instructions) {
  if (verify_on_load_) {
    run_program_verifier(mem_, entry, cores_.front()->profile());
  }
  const int n = config_.num_cores;
  std::vector<CoreState> state(static_cast<std::size_t>(n), CoreState::kRunning);
  std::vector<std::uint64_t> time(static_cast<std::size_t>(n), 0);
  // Per-bank time at which the bank becomes free again.
  std::vector<std::uint64_t> bank_free(static_cast<std::size_t>(config_.num_banks), 0);
  const std::uint32_t banks = static_cast<std::uint32_t>(config_.num_banks);
  const std::uint32_t bank_mask = (banks & (banks - 1)) == 0 ? banks - 1 : 0;

  ReadyHeap ready(n);
  for (int i = 0; i < n; ++i) {
    const std::uint32_t sp = static_cast<std::uint32_t>(mem_.size()) -
                             static_cast<std::uint32_t>(i) * config_.stack_bytes;
    cores_[static_cast<std::size_t>(i)]->reset(entry, sp & ~15u);
    ready.push(0, i);
  }

  ClusterRunResult result;
  std::uint64_t executed = 0;
  std::uint64_t dma_done_at = 0;  // cycle at which the DMA queue drains
  int halted_cores = 0;
  int parked_cores = 0;  // cores waiting at the barrier

  /// DMA-register / barrier store handling, shared by the interpreted path
  /// and the trace path. Returns true when the core parked at the barrier
  /// (it must not be re-queued; the release loop pushes it).
  const auto handle_special_store = [&](int pick, std::uint32_t addr) -> bool {
    const std::size_t p = static_cast<std::size_t>(pick);
    Core& core = *cores_[p];
    // DMA engine: trigger and wait are stores to the mapped registers.
    if (addr == config_.dma_base + 12) {
      const std::uint32_t src = mem_.load32(config_.dma_base);
      const std::uint32_t dst = mem_.load32(config_.dma_base + 4);
      const std::uint32_t len = mem_.load32(config_.dma_base + 8);
      ensure((src & 3) == 0 && (dst & 3) == 0, "Cluster DMA: misaligned transfer");
      // Data moves now; the completion *time* is enforced by WAIT below.
      for (std::uint32_t w = 0; w < len; ++w) {
        mem_.store32(dst + 4 * w, mem_.load32(src + 4 * w));
      }
      const std::uint64_t busy =
          static_cast<std::uint64_t>(config_.dma_startup_cycles) +
          (len + static_cast<std::uint32_t>(config_.dma_words_per_cycle) - 1) /
              static_cast<std::uint32_t>(config_.dma_words_per_cycle);
      dma_done_at = std::max(dma_done_at, time[p]) + busy;
      ++result.dma_transfers;
      result.dma_words += len;
    } else if (addr == config_.dma_base + 16) {
      if (time[p] < dma_done_at) {
        const std::uint64_t wait = dma_done_at - time[p];
        core.add_stall(wait);
        result.dma_wait_cycles += wait;
        time[p] = dma_done_at;
      }
    }
    if (addr != config_.barrier_addr) return false;

    state[p] = CoreState::kAtBarrier;
    ++parked_cores;
    // Release when every non-halted core has arrived.
    if (parked_cores + halted_cores == n) {
      std::uint64_t release_at = 0;
      for (int i = 0; i < n; ++i) {
        if (state[static_cast<std::size_t>(i)] == CoreState::kAtBarrier) {
          release_at = std::max(release_at, time[static_cast<std::size_t>(i)]);
        }
      }
      release_at += static_cast<std::uint64_t>(config_.barrier_wakeup_cycles);
      for (int i = 0; i < n; ++i) {
        const std::size_t q = static_cast<std::size_t>(i);
        if (state[q] == CoreState::kAtBarrier) {
          const std::uint64_t wait = release_at - time[q];
          cores_[q]->add_stall(wait);
          result.barrier_wait_cycles += wait;
          time[q] = release_at;
          state[q] = CoreState::kRunning;
          ready.push(release_at, i);
        }
      }
      parked_cores = 0;
    }
    return true;
  };

  // One env per core, built once: the hot resume path refreshes only the
  // per-burst fields.
  std::vector<ClusterTraceEnv> envs;
  envs.reserve(static_cast<std::size_t>(n));
  const std::uint32_t special_lo =
      std::min(config_.dma_base + 12, config_.barrier_addr);
  const std::uint32_t special_len =
      std::max(config_.dma_base + 16, config_.barrier_addr) - special_lo;
  for (int i = 0; i < n; ++i) {
    const std::size_t q = static_cast<std::size_t>(i);
    envs.push_back(ClusterTraceEnv{*cores_[q], time[q], bank_free.data(),
                                   result.bank_conflict_stalls, executed,
                                   max_instructions, config_.tcdm_base,
                                   config_.tcdm_size, banks, bank_mask,
                                   config_.dma_base, config_.barrier_addr,
                                   special_lo, special_len, i});
  }

  bool have_next = false;
  std::uint64_t next = 0;
  while (halted_cores < n) {
    if (!have_next) {
      if (ready.empty()) {
        // No core can run but not all halted: every live core is parked at
        // the barrier waiting for a halted core -> deadlock.
        fail("Cluster::run: barrier deadlock (a core halted before the barrier)");
      }
      next = ready.pop();
    }
    have_next = false;
    const int pick = ReadyHeap::entry_core(next);
    const std::size_t p = static_cast<std::size_t>(pick);
    Core& core = *cores_[p];

    // Burst window: `pick` may keep executing while it stays the strictly
    // smallest (time, index) against the best other runnable core. The heap
    // is untouched during the burst, so the executed interleaving is exactly
    // the one the one-instruction-at-a-time scheduler would produce
    // (memory-touching work; see ClusterTraceEnv for the private-register
    // run-ahead past the window).
    const std::uint64_t limit =
        ready.empty() ? std::numeric_limits<std::uint64_t>::max() : ready.peek();
    const auto within_burst = [&] { return ReadyHeap::pack(time[p], pick) < limit; };

    ClusterTraceEnv& env = envs[p];
    env.limit = limit;
    env.ahead = 0;
    env.ahead_cap =
        tspace_ != nullptr && tspace_->clean() ? ClusterTraceEnv::kAheadCap : 0;
    env.budget_stop = false;

    bool requeue = true;
    bool force_interp = false;
    for (;;) {
      if (!force_interp && core.trace_active()) {
        env.special = false;
        core.run_trace(env);
        if (env.special) {
          if (handle_special_store(pick, env.special_addr)) {
            requeue = false;
            break;
          }
          if (within_burst()) continue;
          break;
        }
        if (env.budget_stop) {
          force_interp = true;  // the interpreted path raises the budget error
          continue;
        }
        if (core.trace_active()) break;  // parked: the burst window closed
        // Trace exited (fell off / uncovered target): fall back to the
        // interpreter — or a chained trace — while still inside the window.
        if (!within_burst()) break;
        continue;
      }

      // Interpreted instruction (also the error-raising path).
      if (++executed > max_instructions) {
        fail("Cluster::run: instruction budget exhausted (runaway program?)");
      }
      const Core::StepResult step = core.step();
      std::uint64_t cost = static_cast<std::uint64_t>(step.cycles);

      if (step.access.valid && in_tcdm(step.access.addr)) {
        const std::uint32_t word_index = (step.access.addr - config_.tcdm_base) >> 2;
        const std::size_t bank =
            bank_mask != 0 ? (word_index & bank_mask) : (word_index % banks);
        const std::uint64_t request_at = time[p];
        const std::uint64_t served_at = std::max(bank_free[bank], request_at);
        const std::uint64_t stall = served_at - request_at;
        bank_free[bank] = served_at + 1;
        if (stall > 0) {
          core.add_stall(stall);
          result.bank_conflict_stalls += stall;
          cost += stall;
        }
      }
      time[p] += cost;

      if (step.halted) {
        state[p] = CoreState::kHalted;
        ++halted_cores;
        requeue = false;
        break;
      }
      if (step.access.valid && step.access.is_store &&
          handle_special_store(pick, step.access.addr)) {
        requeue = false;
        break;
      }
      force_interp = false;
      if (!within_burst()) break;
    }

    if (requeue) {
      next = ready.push_pop(time[p], pick);
      have_next = true;
    }
  }

  result.per_core_cycles.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t q = static_cast<std::size_t>(i);
    result.per_core_cycles[q] = cores_[q]->cycles();
    result.cycles = std::max(result.cycles, cores_[q]->cycles());
    result.total_instructions += cores_[q]->instructions();
  }
  return result;
}

}  // namespace iw::rv
