#include "rvsim/verify_hook.hpp"

#include <atomic>

#include "common/error.hpp"

namespace iw::rv {

namespace {
std::atomic<ProgramVerifier> g_verifier{nullptr};
}  // namespace

void set_program_verifier(ProgramVerifier verifier) {
  g_verifier.store(verifier, std::memory_order_release);
}

ProgramVerifier program_verifier() {
  return g_verifier.load(std::memory_order_acquire);
}

void run_program_verifier(Memory& mem, std::uint32_t entry,
                          const TimingProfile& profile) {
  const ProgramVerifier verifier = program_verifier();
  if (verifier == nullptr) {
    fail("verify_on_load: no program verifier installed (link iw_rvsim_analysis "
         "and call analysis::install_load_verifier())");
  }
  verifier(mem, entry, profile);
}

}  // namespace iw::rv
