// Superblock trace compiler for the rvsim interpreter.
//
// When a control-transfer target gets hot, the contiguous run of certified
// instructions starting there is compiled into a *trace*: an array of
// pre-resolved TraceOp records whose per-record cost is folded at compile
// time (base cost + the load-use stall and back-to-back-load extra that are
// statically implied by the sequential predecessor). Core then executes
// records straight out of the array — no per-step decode-cache probe, no
// read-set scan, no hardware-loop sweep on records that provably cannot sit
// at an armed loop end — while staying bit-identical to the interpreter:
// cycles, instruction counts, penalty counters, registers, memory and
// exception state all match step() exactly (the Table-III exact-golden tests
// and the trace differential fuzz are the gate).
//
// Eligibility and fallback: a trace only covers instructions inside blocks
// the static analyzer recovered on a diagnostic-free image (the analyzer is
// reached through the CodeAnalyzer hook below, mirroring verify_hook.hpp so
// iw_rvsim does not depend on iw_rvsim_analysis). Traces end before ecall,
// jalr (indirect target), and any word the profile cannot execute; executing
// cores fall back to the interpreter there. Taken branches whose target lies
// inside the trace continue in-trace (with dynamic stall recomputation at
// the landing record); all other transfers exit.
//
// Invalidation: the TraceSpace observes memory writes over the analyzed code
// range. Any overlapping store — from simulated code, DMA, or host-side
// reloads — marks overlapped traces invalid (executing cores detach at the
// next record boundary and re-execute through the interpreter), resets the
// hotness state for overwritten heads, and drops the cached analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "rvsim/isa.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/predecode.hpp"
#include "rvsim/timing.hpp"

namespace iw::rv {

/// One pre-resolved trace record (32 bytes). Costs are folded for the
/// *sequential* entry from the previous record; records entered via a
/// control transfer (trace attach, in-trace taken branch, hardware-loop back
/// edge) recompute the dynamic penalties from the raw fields instead.
struct TraceOp {
  enum Flags : std::uint8_t {
    kIsLoad = 1,       // load class (updates prev_was_load_)
    kIsStore = 2,      // store class (may invalidate traces)
    kMaybeLoopEnd = 4, // sequential next pc can be an armed hwloop end
  };

  Op op = Op::kIllegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t rs3 = 0;  // fmadd rs3, or the hardware-loop index for lp.*
  std::uint8_t flags = 0;
  /// 1 when the folded sequential cost includes a load-use stall (the
  /// load_use_stalls_ counter must advance with it), else 0.
  std::uint8_t seq_stall = 0;
  std::uint8_t pad = 0;
  std::int16_t base_cost = 0;
  /// base_cost + statically-implied load-use stall + back-to-back-load extra
  /// when entered sequentially from the previous record.
  std::int16_t seq_cost = 0;
  std::int16_t load_seq_extra = 0;
  std::int16_t load_dest = -1;
  std::int16_t reads[3] = {-1, -1, -1};
  std::int16_t pad2 = 0;
  std::int32_t imm = 0;
  /// Pre-resolved pc-dependent constant: lui/auipc result, jal/branch target,
  /// hwloop end address, p.clip upper bound, or the CSR number.
  std::uint32_t aux = 0;
};

/// A compiled superblock: the contiguous certified range [start, end) as
/// ready-to-execute records. `valid` flips to false when any overlapping
/// memory write lands; executing cores detach at the next record boundary.
struct Trace {
  std::uint32_t start = 0;
  std::uint32_t end = 0;  // exclusive
  bool valid = true;
  std::vector<TraceOp> ops;
};

/// What the trace compiler needs from the static analyzer: the certified
/// code ranges, every statically-known hardware-loop end address (for the
/// kMaybeLoopEnd flags), and whether the image analyzed clean.
struct CodeCertificate {
  bool ok = false;
  /// Merged, sorted, disjoint [start, end) byte ranges of analyzed blocks.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  /// Hardware-loop end addresses (the back-edge pcs) visible to the analyzer.
  std::vector<std::uint32_t> loop_ends;
};

/// Analyzer hook in the style of verify_hook.hpp: iw_rvsim_analysis installs
/// an adapter (see analysis::install_load_verifier), keeping the dependency
/// edge pointing from the analysis library into the simulator core.
using CodeAnalyzer = CodeCertificate (*)(Memory& mem, std::uint32_t entry,
                                         const TimingProfile& profile);
void set_code_analyzer(CodeAnalyzer analyzer);
CodeAnalyzer code_analyzer();

/// Process-wide default for whether new Machine/Cluster instances execute
/// through traces (true). The bench's interp-vs-trace axis flips this.
void set_default_trace_mode(bool enabled);
bool default_trace_mode();

/// Per-memory trace store shared by every core executing the same image (a
/// Cluster's cores share one; a Machine owns one). Tracks hotness of
/// control-transfer targets, compiles traces on threshold, serves the
/// pc -> trace table, and invalidates on overlapping writes. Single-threaded
/// like the rest of the simulator.
class TraceSpace final : public Memory::WriteObserver {
 public:
  /// Transfers to a pc before its trace compiles (must allow a few warm-up
  /// iterations so compile cost only hits loops that repay it).
  static constexpr std::uint32_t kHotThreshold = 8;
  static constexpr std::uint32_t kMinTraceOps = 4;
  static constexpr std::uint32_t kMaxTraceOps = 4096;

  /// `memory` and `profile` must outlive the space.
  TraceSpace(Memory& memory, const TimingProfile& profile);
  ~TraceSpace() override;

  TraceSpace(const TraceSpace&) = delete;
  TraceSpace& operator=(const TraceSpace&) = delete;

  /// Called on Core::reset: traces survive (they are entry-independent), but
  /// the cached analysis is keyed by entry and re-derived on demand.
  void set_entry(std::uint32_t entry);

  /// Hot-path hook for a control transfer to `pc`: returns the compiled
  /// trace headed there, or bumps the hotness counter (compiling on
  /// threshold through `cache`) and returns nullptr.
  const std::shared_ptr<Trace>* lookup(std::uint32_t pc, DecodeCache& cache);

  /// Memory::WriteObserver: invalidates overlapped traces and hotness state.
  void on_write(std::uint32_t addr, std::uint32_t len) override;

  /// Drops every compiled trace and hotness counter.
  void invalidate_all();

  struct Stats {
    std::uint64_t compiled = 0;
    std::uint64_t invalidated = 0;
    std::uint64_t declined = 0;  // heads marked never-compile
  };
  const Stats& stats() const { return stats_; }

  /// Sticky: false once any store has landed in the observed code window
  /// (self-modifying code). The cluster scheduler only lets a core run ahead
  /// of the canonical interleave on private-register records while the image
  /// is clean, so code that rewrites itself keeps strict (time, index) order.
  bool clean() const { return clean_; }

  /// Live traces, sorted by start address (iw_lint --traces).
  std::vector<const Trace*> traces() const;

 private:
  static constexpr std::uint32_t kSlotCount = 1024;  // power of two
  static constexpr std::uint32_t kNever = 0xFFFF'FFFF;

  struct Slot {
    std::uint32_t pc = 0;
    std::uint32_t count = 0;
    std::shared_ptr<Trace> trace;
  };

  Slot& slot(std::uint32_t pc) { return slots_[(pc >> 2) & (kSlotCount - 1)]; }
  bool ensure_certificate();
  std::shared_ptr<Trace> compile(std::uint32_t pc, DecodeCache& cache);
  void watch_at_least(std::uint32_t hi);

  Memory& mem_;
  const TimingProfile& profile_;
  std::uint32_t entry_ = 0;
  bool have_entry_ = false;
  bool cert_valid_ = false;
  CodeCertificate cert_;
  std::vector<Slot> slots_;
  std::uint32_t watch_hi_ = 0;
  bool clean_ = true;
  Stats stats_;
};

}  // namespace iw::rv
