// Single-core machine: memory + one core + run loop.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "rvsim/core.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/trace.hpp"

namespace iw::rv {

struct RunResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

/// Convenience wrapper used for the single-core execution targets
/// (Cortex-M4-class, IBEX, single RI5CY).
class Machine {
 public:
  explicit Machine(TimingProfile profile, std::size_t mem_bytes = 1u << 20);

  // The core holds a reference to this machine's memory: not movable.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }
  Core& core() { return core_; }

  /// Copies an encoded program into memory at `base`.
  void load_program(std::span<const std::uint32_t> words, std::uint32_t base = 0);

  /// Opt-in static verification gate: when enabled, run() statically analyzes
  /// the loaded image from the entry point before executing anything and
  /// throws iw::Error on any diagnostic (unsupported instructions, malformed
  /// hardware loops, bad jump targets, ...). Requires the iw_rvsim_analysis
  /// verifier to be installed (see rvsim/verify_hook.hpp).
  void set_verify_on_load(bool enabled) { verify_on_load_ = enabled; }
  bool verify_on_load() const { return verify_on_load_; }

  /// Enables or disables superblock trace execution (default: the process
  /// default, see set_default_trace_mode). Results are bit-identical either
  /// way; off forces the pure interpreter (the bench's baseline axis).
  void set_trace_mode(bool enabled);
  bool trace_mode() const { return core_.trace_space() != nullptr; }
  /// The machine's trace store, or nullptr when trace mode is off.
  TraceSpace* trace_space() { return tspace_.get(); }

  /// Resets the core and runs from `entry` until ecall. Throws if the
  /// instruction budget is exhausted (runaway program).
  RunResult run(std::uint32_t entry, std::uint64_t max_instructions = 200'000'000);

 private:
  Memory mem_;
  Core core_;
  std::unique_ptr<TraceSpace> tspace_;
  bool verify_on_load_ = false;
};

}  // namespace iw::rv
