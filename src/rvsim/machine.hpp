// Single-core machine: memory + one core + run loop.
#pragma once

#include <cstdint>
#include <span>

#include "rvsim/core.hpp"
#include "rvsim/memory.hpp"

namespace iw::rv {

struct RunResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

/// Convenience wrapper used for the single-core execution targets
/// (Cortex-M4-class, IBEX, single RI5CY).
class Machine {
 public:
  explicit Machine(TimingProfile profile, std::size_t mem_bytes = 1u << 20);

  // The core holds a reference to this machine's memory: not movable.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }
  Core& core() { return core_; }

  /// Copies an encoded program into memory at `base`.
  void load_program(std::span<const std::uint32_t> words, std::uint32_t base = 0);

  /// Resets the core and runs from `entry` until ecall. Throws if the
  /// instruction budget is exhausted (runaway program).
  RunResult run(std::uint32_t entry, std::uint64_t max_instructions = 200'000'000);

 private:
  Memory mem_;
  Core core_;
};

}  // namespace iw::rv
