// Static analysis of rvsim program images (`iw_lint`'s engine).
//
// Every ISA-legality, loop-nesting, and jump-target error in a kernel used to
// surface only *dynamically*, when Core::step happened to execute the
// offending word. This analyzer makes the same classes of error a load-time
// diagnostic: it consumes a loaded Memory image plus an entry point through
// the existing DecodeCache/predecode layer and produces a structured
// AnalysisReport with
//
//  * the recovered control-flow graph (basic blocks; direct branches, jumps,
//    hardware-loop back edges and fallthroughs; indirect jumps conservatively
//    flagged and treated as CFG sinks),
//  * per-profile ISA lint: every reachable word is checked against the
//    TimingProfile's resolved support table, so e.g. an Xpulp op in an
//    IBEX-profile image is reported with its address and disassembly using
//    the exact message the dynamic path would throw,
//  * hardware-loop well-formedness (<= 2 nesting levels, end > start, proper
//    nesting, no branch into/out of a loop body, no lp.setup* as the last
//    body instruction),
//  * branch/jump target validity (in-image, word-aligned),
//  * out-of-image or misaligned memory accesses whose address is statically
//    known (block-local constant propagation over lui/auipc/addi/add chains),
//  * per-basic-block guaranteed cycle costs and a whole-program static cycle
//    lower bound (see below), asserted <= the dynamic count in tests.
//
// Cycle-bound semantics: a block's `min_cycles` sums the per-profile base
// costs plus only those dynamic penalties that are *guaranteed* to occur
// (intra-block load-use stalls on a proven dependency; back-to-back-load
// extras when positive and proven, pessimistically applied to every load when
// negative, as on the Cortex-M4F where pipelined loads get a discount). Taken
// -branch refill penalties, bank conflicts and barrier waits are excluded —
// they only ever add cycles. The whole-program bound is the cheapest
// entry-to-halt path through the CFG, with well-formed hardware loops whose
// iteration count is a static immediate (lp.setupi) charged
// (count - 1) * (cheapest body iteration) on their setup block, innermost
// first. Every component is a lower bound on what any execution pays, so the
// total is too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rvsim/isa.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/timing.hpp"
#include "rvsim/trace.hpp"

namespace iw::rv::analysis {

using iw::rv::CodeCertificate;

/// Diagnostic catalogue. Every kind is an error except kIndirectJump, which
/// is a note by default (the analyzer cannot follow the jump, so downstream
/// code is simply not analyzed) and upgradable via AnalyzeOptions.
enum class DiagKind : std::uint8_t {
  kIllegalWord,            // reachable word does not decode
  kUnsupportedInstruction, // decodes, but the profile cannot execute it
  kTargetOutOfImage,       // branch/jump/fallthrough leaves the image
  kTargetMisaligned,       // branch/jump target not word-aligned
  kHwloopBadBounds,        // end <= start, or body extends past the image
  kHwloopTooDeep,          // more than two nesting levels
  kHwloopOverlap,          // partial overlap / same loop index re-armed / shared end
  kHwloopBranchIn,         // branch from outside into a loop body
  kHwloopBranchOut,        // branch from a loop body to outside
  kHwloopBadLastInstruction, // lp.setup* as the last body instruction
  kStaticAccessOutOfImage, // statically-known data address out of image
  kStaticAccessMisaligned, // statically-known data address misaligned
  kIndirectJump,           // jalr: target unknown, CFG truncated here
};

enum class Severity : std::uint8_t { kError, kNote };

/// Stable lower-case identifier for a diagnostic kind ("illegal-word", ...).
const char* diag_kind_name(DiagKind kind);

struct Diagnostic {
  DiagKind kind = DiagKind::kIllegalWord;
  Severity severity = Severity::kError;
  std::uint32_t pc = 0;
  std::string message;  // includes the pc and disassembly where available
};

struct BasicBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;  // exclusive
  /// Successor block start addresses (fallthrough, branch targets, hwloop
  /// back edges). Empty for halting / indirect / dead-end blocks.
  std::vector<std::uint32_t> successors;
  /// Guaranteed cycles for one execution of the block (plus any hardware-loop
  /// surcharge attached to a contained lp.setupi, see file comment).
  std::uint64_t min_cycles = 0;
  bool halts = false;         // contains ecall
  bool has_indirect = false;  // ends in jalr
};

struct HwLoopRegion {
  std::uint32_t setup_pc = 0;
  std::uint32_t start = 0;  // first body instruction (setup_pc + 4)
  std::uint32_t end = 0;    // exclusive body end (the hwloop back-edge pc)
  int index = 0;            // hardware loop slot (0 or 1)
  /// Guaranteed iteration count: the lp.setupi immediate (clamped to >= 1,
  /// matching Core), or 1 for lp.setup (register count, >= 1 at runtime).
  std::uint32_t static_count = 1;
  bool well_formed = true;
};

struct AnalysisReport {
  std::string profile_name;
  std::uint32_t entry = 0;
  std::size_t words_analyzed = 0;  // reachable instruction words
  std::vector<BasicBlock> blocks;  // sorted by start address
  std::vector<HwLoopRegion> loops; // sorted by setup pc
  std::vector<Diagnostic> diagnostics;
  /// Whole-program static cycle lower bound from entry to the cheapest halt
  /// (or CFG sink). Always <= the dynamic cycle count of any core run from
  /// `entry` on a diagnostic-free image.
  std::uint64_t min_cycles = 0;

  std::size_t error_count() const;
  /// True when no error-severity diagnostics were produced.
  bool ok() const { return error_count() == 0; }

  /// Human-readable report (diagnostics, CFG summary, cycle bound).
  std::string to_text() const;
  /// Machine-readable report (stable keys; one object, no trailing newline).
  std::string to_json() const;
};

struct AnalyzeOptions {
  /// Report jalr as an error instead of a note.
  bool indirect_jump_is_error = false;
  /// Safety cap on reachable instruction words.
  std::size_t max_words = 1u << 20;
};

/// Statically analyzes the program in `mem` reachable from `entry` under
/// `profile`. `mem` is taken non-const because the decode cache registers a
/// (removed-on-exit) write observer; the image itself is not modified.
AnalysisReport analyze(Memory& mem, std::uint32_t entry,
                       const TimingProfile& profile,
                       const AnalyzeOptions& options = {});

/// Runs analyze() and throws iw::Error summarizing every error diagnostic if
/// the report is not ok(). The Machine/Cluster verify_on_load gate.
void verify_or_throw(Memory& mem, std::uint32_t entry,
                     const TimingProfile& profile);

/// Trace-compiler adapter: analyzes from `entry` and condenses the report
/// into the CodeCertificate the superblock compiler consumes (merged code
/// ranges + statically known hardware-loop end pcs). Not-ok on any error
/// diagnostic or analysis failure, which disables trace compilation for the
/// image. Installed as the rv::set_code_analyzer hook by
/// install_load_verifier().
CodeCertificate certify(Memory& mem, std::uint32_t entry,
                        const TimingProfile& profile);

/// Installs verify_or_throw as the global rv::Machine / rv::Cluster
/// verify_on_load hook and certify() as the trace-compiler analyzer hook
/// (idempotent).
void install_load_verifier();

}  // namespace iw::rv::analysis
