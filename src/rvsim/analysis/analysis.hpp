// Static analysis of rvsim program images (`iw_lint`'s engine).
//
// Every ISA-legality, loop-nesting, and jump-target error in a kernel used to
// surface only *dynamically*, when Core::step happened to execute the
// offending word. This analyzer makes the same classes of error a load-time
// diagnostic: it consumes a loaded Memory image plus an entry point through
// the existing DecodeCache/predecode layer and produces a structured
// AnalysisReport with
//
//  * the recovered control-flow graph (basic blocks; direct branches, jumps,
//    hardware-loop back edges and fallthroughs; indirect jumps conservatively
//    flagged and treated as CFG sinks),
//  * an interprocedural call graph: `jal` with a link register is a call
//    whose fallthrough is the continuation, `jalr x0, ra, 0` is a return
//    (a function sink, not an unknown indirect), and recursion is detected
//    and reported (recursive functions get unbounded worst-case bounds),
//  * per-profile ISA lint: every reachable word is checked against the
//    TimingProfile's resolved support table, so e.g. an Xpulp op in an
//    IBEX-profile image is reported with its address and disassembly using
//    the exact message the dynamic path would throw,
//  * hardware-loop well-formedness (<= 2 nesting levels, end > start, proper
//    nesting, no branch into/out of a loop body, no lp.setup* as the last
//    body instruction),
//  * branch/jump target validity (in-image, word-aligned),
//  * out-of-image or misaligned memory accesses whose address is statically
//    known (block-local constant propagation over lui/auipc/addi/add chains),
//  * per-basic-block guaranteed cycle costs and a whole-program static cycle
//    lower bound (see below), asserted <= the dynamic count in tests,
//  * per-basic-block worst-case cycle costs and a whole-program static cycle
//    upper bound (WCET), asserted >= the dynamic count in tests,
//  * a static maximum stack depth per function, composed over the call
//    graph, with statically-provable overflow reported as an error.
//
// Cycle-bound semantics (floor): a block's `min_cycles` sums the per-profile
// base costs plus only those dynamic penalties that are *guaranteed* to occur
// (intra-block load-use stalls on a proven dependency; back-to-back-load
// extras when positive and proven, pessimistically applied to every load when
// negative, as on the Cortex-M4F where pipelined loads get a discount). Taken
// -branch refill penalties, bank conflicts and barrier waits are excluded —
// they only ever add cycles. The whole-program bound is the cheapest
// entry-to-halt path through the CFG (call blocks charge the callee's own
// floor), with well-formed hardware loops whose iteration count is statically
// known (an lp.setupi immediate, or an lp.setup count register proven by the
// block-local constprop) charged (count - 1) * (cheapest body iteration) on
// their setup block, innermost first. Every component is a lower bound on
// what any execution pays, so the total is too.
//
// Cycle-bound semantics (ceiling / WCET): a block's `max_cycles` is the
// max-penalty dual — every load pessimistically pays the load-use stall of
// its dependent successor and any positive back-to-back extra, every
// conditional branch pays the taken-branch penalty, and under a cluster
// analysis (AnalyzeOptions::cluster_cores > 1) every memory access pays the
// worst bank-conflict stall (cores - 1; the arbiter serves one conflicting
// access per cycle) and every store pays the barrier wakeup latency. The
// whole-program bound is the *longest* entry-to-sink path over the
// back-edge-free CFG, with every loop charged (bound - 1) extra copies of
// its longest single iteration, innermost first, and composed bottom-up over
// the call graph. Loop bounds come from lp.setupi immediates, constprop-known
// lp.setup counts, a monotone-counter pattern match (a countdown `addi`/
// `srli` that is the sole writer of the branch register), or trusted
// flow-fact annotations (AnalyzeOptions::loop_bounds). A loop with no bound,
// an unknown indirect jump, or recursion makes the bound kUnboundedCycles —
// still sound, never silently finite. For cluster images the bound assumes
// the SPMD model the kernels use (every core runs the same image from the
// same entry; barriers release at the latest arrival plus the wakeup
// latency) and does not model DMA (the reference kernels do not use it).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rvsim/isa.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/timing.hpp"
#include "rvsim/trace.hpp"

namespace iw::rv::analysis {

using iw::rv::CodeCertificate;

/// Sentinel for "no finite static bound" (unbounded loop, recursion, unknown
/// indirect control flow, or an unknowable stack pointer).
inline constexpr std::uint64_t kUnboundedCycles = ~std::uint64_t{0};

/// Diagnostic catalogue. Every kind is an error except the notes:
/// kIndirectJump (upgradable via AnalyzeOptions), kRecursiveCall,
/// kUnboundedLoop and kUnknownStackPointer, which only widen the static
/// bounds to kUnboundedCycles instead of failing the report.
enum class DiagKind : std::uint8_t {
  kIllegalWord,            // reachable word does not decode
  kUnsupportedInstruction, // decodes, but the profile cannot execute it
  kTargetOutOfImage,       // branch/jump/fallthrough leaves the image
  kTargetMisaligned,       // branch/jump target not word-aligned
  kHwloopBadBounds,        // end <= start, or body extends past the image
  kHwloopTooDeep,          // more than two nesting levels
  kHwloopOverlap,          // partial overlap / same loop index re-armed / shared end
  kHwloopBranchIn,         // branch from outside into a loop body
  kHwloopBranchOut,        // branch from a loop body to outside
  kHwloopBadLastInstruction, // lp.setup* as the last body instruction
  kStaticAccessOutOfImage, // statically-known data address out of image
  kStaticAccessMisaligned, // statically-known data address misaligned
  kIndirectJump,           // jalr: target unknown, CFG truncated here
  kRecursiveCall,          // function can re-enter itself: WCET/stack unbounded
  kUnboundedLoop,          // no static iteration bound for this loop
  kStackOverflow,          // provable max stack depth exceeds the stack limit
  kUnknownStackPointer,    // sp escapes the tracked adjustment idioms
};

enum class Severity : std::uint8_t { kError, kNote };

/// Stable lower-case identifier for a diagnostic kind ("illegal-word", ...).
const char* diag_kind_name(DiagKind kind);

struct Diagnostic {
  DiagKind kind = DiagKind::kIllegalWord;
  Severity severity = Severity::kError;
  std::uint32_t pc = 0;
  std::string message;  // includes the pc and disassembly where available
};

struct BasicBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;  // exclusive
  /// Successor block start addresses (fallthrough, branch targets, hwloop
  /// back edges; a call block's successor is its continuation). Empty for
  /// halting / returning / indirect / dead-end blocks.
  std::vector<std::uint32_t> successors;
  /// Guaranteed cycles for one execution of the block (plus any hardware-loop
  /// surcharge attached to a contained lp.setup*, see file comment).
  std::uint64_t min_cycles = 0;
  /// Worst-case cycles for one execution of the block (max-penalty dual;
  /// loop surcharges are applied during per-function composition, not here).
  std::uint64_t max_cycles = 0;
  bool halts = false;         // contains ecall
  bool has_indirect = false;  // ends in a non-return jalr
  bool is_return = false;     // ends in `jalr x0, ra, 0` (function sink)
  bool has_call = false;      // ends in `jal` with a link register
  std::uint32_t call_target = 0;  // valid when has_call
};

struct HwLoopRegion {
  std::uint32_t setup_pc = 0;
  std::uint32_t start = 0;  // first body instruction (setup_pc + 4)
  std::uint32_t end = 0;    // exclusive body end (the hwloop back-edge pc)
  int index = 0;            // hardware loop slot (0 or 1)
  /// Guaranteed iteration count: the lp.setupi immediate (clamped to >= 1,
  /// matching Core), a constprop-proven lp.setup register count, or 1.
  std::uint32_t static_count = 1;
  /// Exact iteration count when statically known (lp.setupi immediate or a
  /// constprop-proven lp.setup count), else 0 (unknown: the WCET pass falls
  /// back to AnalyzeOptions::loop_bounds annotations).
  std::uint32_t exact_count = 0;
  bool well_formed = true;
};

/// Per-function summary of the interprocedural composition.
struct FunctionSummary {
  std::uint32_t entry = 0;
  std::uint64_t min_cycles = 0;
  /// Worst-case cycles from entry to any return/halt, callees included.
  std::uint64_t max_cycles = kUnboundedCycles;
  /// Maximum stack depth in bytes, callees included (kUnboundedCycles when
  /// the stack pointer escapes the tracked idioms or the function recurses).
  std::uint64_t stack_bytes = 0;
  bool recursive = false;
};

struct AnalysisReport {
  std::string profile_name;
  std::uint32_t entry = 0;
  std::size_t words_analyzed = 0;  // reachable instruction words
  std::vector<BasicBlock> blocks;  // sorted by start address
  std::vector<HwLoopRegion> loops; // sorted by setup pc
  std::vector<FunctionSummary> functions;  // sorted by entry address
  std::vector<Diagnostic> diagnostics;
  /// Whole-program static cycle lower bound from entry to the cheapest halt
  /// (or CFG sink). Always <= the dynamic cycle count of any core run from
  /// `entry` on a diagnostic-free image.
  std::uint64_t min_cycles = 0;
  /// Whole-program static cycle upper bound (WCET) from entry until the
  /// entry function halts or returns, or kUnboundedCycles when no sound
  /// finite bound exists. Always >= the dynamic cycle count of any core run
  /// from `entry` on a diagnostic-free image that halts.
  std::uint64_t max_cycles = kUnboundedCycles;
  /// Static maximum stack depth of the entry function in bytes, callees
  /// included (kUnboundedCycles when unknown).
  std::uint64_t stack_bytes = 0;

  std::size_t error_count() const;
  /// True when no error-severity diagnostics were produced.
  bool ok() const { return error_count() == 0; }

  /// Human-readable report (diagnostics, CFG summary, cycle bounds).
  std::string to_text() const;
  /// Machine-readable report (stable keys; one object, no trailing newline).
  std::string to_json() const;
};

struct AnalyzeOptions {
  /// Report jalr as an error instead of a note.
  bool indirect_jump_is_error = false;
  /// Safety cap on reachable instruction words.
  std::size_t max_words = 1u << 20;
  /// Trusted flow facts: maximum iteration count per loop, keyed by the loop
  /// head pc, the tail branch pc, or (hardware loops) the setup pc or end pc.
  /// Only ever used for the upper bound — the floor stays annotation-free.
  std::map<std::uint32_t, std::uint64_t> loop_bounds;
  /// Cluster pessimism for the WCET: when > 1, every memory access is
  /// charged the worst bank-conflict stall (cluster_cores - 1) and every
  /// store the barrier wakeup latency.
  int cluster_cores = 1;
  int barrier_wakeup_cycles = 6;
  /// When > 0, a provable entry-function stack depth above this limit is a
  /// kStackOverflow error.
  std::uint64_t stack_limit_bytes = 0;
};

/// Statically analyzes the program in `mem` reachable from `entry` under
/// `profile`. `mem` is taken non-const because the decode cache registers a
/// (removed-on-exit) write observer; the image itself is not modified.
AnalysisReport analyze(Memory& mem, std::uint32_t entry,
                       const TimingProfile& profile,
                       const AnalyzeOptions& options = {});

/// Runs analyze() and throws iw::Error summarizing every error diagnostic if
/// the report is not ok(). The Machine/Cluster verify_on_load gate.
void verify_or_throw(Memory& mem, std::uint32_t entry,
                     const TimingProfile& profile);

/// Trace-compiler adapter: analyzes from `entry` and condenses the report
/// into the CodeCertificate the superblock compiler consumes (merged code
/// ranges + statically known hardware-loop end pcs). Not-ok on any error
/// diagnostic or analysis failure, which disables trace compilation for the
/// image. Installed as the rv::set_code_analyzer hook by
/// install_load_verifier().
CodeCertificate certify(Memory& mem, std::uint32_t entry,
                        const TimingProfile& profile);

/// Installs verify_or_throw as the global rv::Machine / rv::Cluster
/// verify_on_load hook and certify() as the trace-compiler analyzer hook
/// (idempotent).
void install_load_verifier();

}  // namespace iw::rv::analysis
