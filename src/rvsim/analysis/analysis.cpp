#include "rvsim/analysis/analysis.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <iomanip>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "rvsim/predecode.hpp"
#include "rvsim/trace.hpp"
#include "rvsim/verify_hook.hpp"

namespace iw::rv::analysis {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

std::string hex32(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(8) << std::setfill('0') << v;
  return os.str();
}

/// Per-instruction record kept for every reachable word. A thinned DecodedEx
/// plus an explicit illegal state (DecodeCache throws instead of caching
/// those, but the analyzer must keep going to report the rest of the image).
struct Instr {
  enum Status : std::uint8_t { kOk, kUnsupported, kIllegal };
  Decoded d;
  Status status = kOk;
  std::int16_t base_cost = 0;
  bool is_load = false;
  std::int16_t load_seq_extra = 0;
  std::int16_t load_dest = -1;
  std::int16_t reads[3] = {-1, -1, -1};
};

bool is_cond_branch(Op op) {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBge: case Op::kBltu: case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

bool is_hwloop_setup(Op op) { return op == Op::kLpSetup || op == Op::kLpSetupi; }

/// Static control-flow successors of one instruction, before hardware-loop
/// back edges are layered on. `terminates` means the instruction ends its
/// basic block even when the next word is not a leader.
struct Flow {
  std::uint32_t targets[2] = {0, 0};
  int count = 0;
  bool terminates = false;
  bool halts = false;
  bool indirect = false;
};

Flow flow_of(std::uint32_t pc, const Instr& in) {
  Flow f;
  if (in.status != Instr::kOk) {
    f.terminates = true;  // execution faults here
    return f;
  }
  if (is_cond_branch(in.d.op)) {
    f.targets[f.count++] = pc + 4u;
    f.targets[f.count++] = pc + static_cast<std::uint32_t>(in.d.imm);
    f.terminates = true;
  } else if (in.d.op == Op::kJal) {
    f.targets[f.count++] = pc + static_cast<std::uint32_t>(in.d.imm);
    f.terminates = true;
  } else if (in.d.op == Op::kJalr) {
    f.terminates = true;
    f.indirect = true;
  } else if (in.d.op == Op::kEcall) {
    f.terminates = true;
    f.halts = true;
  } else {
    f.targets[f.count++] = pc + 4u;
  }
  return f;
}

/// Memory footprint of one instruction when its address is statically known:
/// access size in bytes (0 = no plain data access we check).
std::uint32_t access_size(Op op) {
  switch (op) {
    case Op::kLw: case Op::kSw: case Op::kFlw: case Op::kFsw:
    case Op::kPLwPost: case Op::kPSwPost:
      return 4;
    case Op::kLh: case Op::kLhu: case Op::kSh:
    case Op::kPLhPost: case Op::kPShPost:
      return 2;
    case Op::kLb: case Op::kLbu: case Op::kSb:
    case Op::kPLbPost: case Op::kPSbPost:
      return 1;
    default:
      return 0;
  }
}

bool is_postinc(Op op) {
  switch (op) {
    case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost:
    case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
      return true;
    default:
      return false;
  }
}

/// Block-local constant propagation state: which integer registers hold a
/// statically known value. x0 is always known to be zero.
struct ConstState {
  std::uint32_t value[32] = {};
  std::uint32_t known = 1;  // bit i -> x[i] known; bit 0 (x0) always set

  bool is_known(std::uint8_t r) const { return (known >> r) & 1u; }
  void set(std::uint8_t r, std::uint32_t v) {
    if (r == 0) return;
    value[r] = v;
    known |= (1u << r);
  }
  void kill(std::uint8_t r) {
    if (r == 0) return;
    known &= ~(1u << r);
  }
};

struct Analyzer {
  Memory& mem;
  const TimingProfile& profile;
  const AnalyzeOptions& options;
  AnalysisReport report;

  std::map<std::uint32_t, Instr> instrs;  // reachable pc -> record
  std::vector<HwLoopRegion> regions;

  Analyzer(Memory& m, std::uint32_t entry, const TimingProfile& p,
           const AnalyzeOptions& o)
      : mem(m), profile(p), options(o) {
    report.profile_name = profile.name;
    report.entry = entry;
  }

  void diag(DiagKind kind, Severity sev, std::uint32_t pc, std::string message) {
    report.diagnostics.push_back(Diagnostic{kind, sev, pc, std::move(message)});
  }

  bool target_ok(std::uint32_t from, std::uint32_t target, const char* what) {
    if ((target & 3u) != 0) {
      diag(DiagKind::kTargetMisaligned, Severity::kError, from,
           "pc=" + hex32(from) + ": " + what + " target " + hex32(target) +
               " is not word-aligned");
      return false;
    }
    if (static_cast<std::uint64_t>(target) + 4 > mem.size()) {
      diag(DiagKind::kTargetOutOfImage, Severity::kError, from,
           "pc=" + hex32(from) + ": " + what + " target " + hex32(target) +
               " is outside the " + std::to_string(mem.size()) + "-byte image");
      return false;
    }
    return true;
  }

  // --- pass 1: reachability + per-instruction lint -----------------------

  void scan(std::uint32_t entry) {
    if (!target_ok(entry, entry, "entry")) return;

    // A scratch DecodeCache gives us exactly the interpreter's view of every
    // word (decode + per-profile support/cost tables) without re-deriving it.
    DecodeCache cache(profile, mem);

    std::deque<std::uint32_t> worklist{entry};
    std::set<std::uint32_t> queued{entry};
    while (!worklist.empty()) {
      const std::uint32_t pc = worklist.front();
      worklist.pop_front();
      if (instrs.size() >= options.max_words) {
        fail("analysis: reachable code exceeds max_words");
      }

      Instr in;
      bool decoded = true;
      try {
        const DecodedEx& e = cache.entry(pc);
        in.d = e.d;
        if (e.status == DecodeCache::kUnsupported) {
          in.status = Instr::kUnsupported;
          diag(DiagKind::kUnsupportedInstruction, Severity::kError, pc,
               unsupported_instruction_message(profile.name, pc, e.d));
        } else {
          in.base_cost = e.base_cost;
          in.is_load = e.is_load;
          in.load_seq_extra = e.load_seq_extra;
          in.load_dest = e.load_dest;
          for (int k = 0; k < 3; ++k) in.reads[k] = e.reads[k];
        }
      } catch (const Error& err) {
        decoded = false;
        in.status = Instr::kIllegal;
        diag(DiagKind::kIllegalWord, Severity::kError, pc,
             "pc=" + hex32(pc) + ": illegal instruction word " +
                 hex32(mem.load32(pc)) + " (" + err.what() + ")");
      }

      if (decoded && in.status == Instr::kOk && is_hwloop_setup(in.d.op)) {
        HwLoopRegion r;
        r.setup_pc = pc;
        r.start = pc + 4u;
        r.end = pc + static_cast<std::uint32_t>(in.d.imm2) * 4u;
        r.index = static_cast<int>(in.d.extra & 1u);
        r.static_count =
            (in.d.op == Op::kLpSetupi && in.d.imm > 1)
                ? static_cast<std::uint32_t>(in.d.imm)
                : 1u;  // lp.setup counts from a register: >= 1, else unknown
        regions.push_back(r);
      }

      if (decoded && in.status == Instr::kOk && in.d.op == Op::kJalr) {
        diag(DiagKind::kIndirectJump,
             options.indirect_jump_is_error ? Severity::kError : Severity::kNote,
             pc,
             "pc=" + hex32(pc) + ": indirect jump (" + to_string(in.d) +
                 "); control flow past this point is not analyzed");
      }

      const Flow f = flow_of(pc, in);
      for (int k = 0; k < f.count; ++k) {
        const std::uint32_t t = f.targets[k];
        const char* what = f.terminates && !is_cond_branch(in.d.op) ? "jump"
                           : (t == pc + 4u ? "fallthrough" : "branch");
        if (!target_ok(pc, t, what)) continue;
        if (queued.insert(t).second) worklist.push_back(t);
      }

      instrs.emplace(pc, in);
    }
    report.words_analyzed = instrs.size();
  }

  // --- pass 2: hardware-loop well-formedness ----------------------------

  void check_hwloops() {
    // Bounds first; everything else only applies to regions with sane bounds.
    for (HwLoopRegion& r : regions) {
      if (r.end <= r.start || static_cast<std::uint64_t>(r.end) > mem.size()) {
        r.well_formed = false;
        diag(DiagKind::kHwloopBadBounds, Severity::kError, r.setup_pc,
             "pc=" + hex32(r.setup_pc) + ": hardware loop body [" +
                 hex32(r.start) + ", " + hex32(r.end) +
                 ") is empty, inverted, or outside the image");
      }
    }

    // Pairwise structure: partial overlap, same-slot nesting, depth.
    for (std::size_t i = 0; i < regions.size(); ++i) {
      HwLoopRegion& a = regions[i];
      if (!a.well_formed) continue;
      int enclosing = 0;
      for (std::size_t j = 0; j < regions.size(); ++j) {
        if (i == j) continue;
        const HwLoopRegion& b = regions[j];
        if (!b.well_formed) continue;
        const bool a_in_b = b.start <= a.start && a.end <= b.end;
        const bool b_in_a = a.start <= b.start && b.end <= a.end;
        const bool disjoint = a.end <= b.start || b.end <= a.start;
        if (!a_in_b && !b_in_a && !disjoint && i < j) {
          a.well_formed = false;
          diag(DiagKind::kHwloopOverlap, Severity::kError, a.setup_pc,
               "pc=" + hex32(a.setup_pc) + ": hardware loop body [" +
                   hex32(a.start) + ", " + hex32(a.end) +
                   ") partially overlaps the loop at pc=" + hex32(b.setup_pc));
        }
        if (a_in_b && !b_in_a && a.index == b.index) {
          a.well_formed = false;
          diag(DiagKind::kHwloopOverlap, Severity::kError, a.setup_pc,
               "pc=" + hex32(a.setup_pc) + ": nested hardware loop re-arms slot " +
                   std::to_string(a.index) + " already used by the loop at pc=" +
                   hex32(b.setup_pc));
        }
        if (a_in_b && !b_in_a) ++enclosing;
      }
      if (enclosing >= 2) {
        a.well_formed = false;
        diag(DiagKind::kHwloopTooDeep, Severity::kError, a.setup_pc,
             "pc=" + hex32(a.setup_pc) + ": hardware loop nested " +
                 std::to_string(enclosing + 1) +
                 " deep (the core has two loop slots)");
      }
    }

    // Last body instruction must not be another lp.setup*.
    for (HwLoopRegion& r : regions) {
      if (!r.well_formed) continue;
      const auto it = instrs.find(r.end - 4u);
      if (it != instrs.end() && it->second.status == Instr::kOk &&
          is_hwloop_setup(it->second.d.op)) {
        r.well_formed = false;
        diag(DiagKind::kHwloopBadLastInstruction, Severity::kError, r.end - 4u,
             "pc=" + hex32(r.end - 4u) + ": " + mnemonic(it->second.d.op) +
                 " is the last instruction of the hardware loop at pc=" +
                 hex32(r.setup_pc));
      }
    }

    // No branch into or out of a loop body. A branch to the body's end
    // address from inside acts as a "continue" (the back edge fires there)
    // and is allowed.
    for (const auto& [pc, in] : instrs) {
      if (in.status != Instr::kOk) continue;
      if (!is_cond_branch(in.d.op) && in.d.op != Op::kJal) continue;
      const std::uint32_t t = pc + static_cast<std::uint32_t>(in.d.imm);
      for (HwLoopRegion& r : regions) {
        if (r.end <= r.start) continue;  // bounds already diagnosed
        const bool from_inside = pc >= r.start && pc < r.end;
        const bool to_inside = t >= r.start && t < r.end;
        if (from_inside && !to_inside && t != r.end) {
          r.well_formed = false;
          diag(DiagKind::kHwloopBranchOut, Severity::kError, pc,
               "pc=" + hex32(pc) + ": " + mnemonic(in.d.op) + " to " + hex32(t) +
                   " leaves the hardware loop body of pc=" + hex32(r.setup_pc));
        } else if (!from_inside && to_inside) {
          r.well_formed = false;
          diag(DiagKind::kHwloopBranchIn, Severity::kError, pc,
               "pc=" + hex32(pc) + ": " + mnemonic(in.d.op) + " to " + hex32(t) +
                   " jumps into the hardware loop body of pc=" + hex32(r.setup_pc));
        }
      }
    }

    std::sort(regions.begin(), regions.end(),
              [](const HwLoopRegion& a, const HwLoopRegion& b) {
                return a.setup_pc < b.setup_pc;
              });
    report.loops = regions;
  }

  // --- pass 3: basic blocks ---------------------------------------------

  /// Successors of the instruction at `pc` with hardware-loop back edges
  /// layered on: any edge that lands on a loop's end address may instead take
  /// the back edge to the loop start.
  std::vector<std::uint32_t> successors_of(std::uint32_t pc, const Instr& in) const {
    const Flow f = flow_of(pc, in);
    std::vector<std::uint32_t> out;
    for (int k = 0; k < f.count; ++k) {
      const std::uint32_t t = f.targets[k];
      if (instrs.count(t) == 0) continue;  // invalid target, already diagnosed
      if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
      for (const HwLoopRegion& r : regions) {
        if (t == r.end && instrs.count(r.start) != 0 &&
            std::find(out.begin(), out.end(), r.start) == out.end()) {
          out.push_back(r.start);
        }
      }
    }
    return out;
  }

  void build_blocks() {
    if (instrs.empty()) return;
    std::set<std::uint32_t> leaders;
    leaders.insert(report.entry);
    for (const auto& [pc, in] : instrs) {
      const Flow f = flow_of(pc, in);
      if (f.terminates) {
        for (int k = 0; k < f.count; ++k) leaders.insert(f.targets[k]);
        leaders.insert(pc + 4u);
      }
    }
    for (const HwLoopRegion& r : regions) {
      leaders.insert(r.start);
      leaders.insert(r.end);
    }

    BasicBlock current;
    bool open = false;
    std::uint32_t prev_pc = 0;
    const auto close = [&](std::uint32_t end_pc) {
      current.end = end_pc + 4u;
      const auto it = instrs.find(end_pc);
      current.successors = successors_of(end_pc, it->second);
      const Flow f = flow_of(end_pc, it->second);
      current.halts = f.halts;
      current.has_indirect = f.indirect;
      report.blocks.push_back(current);
      open = false;
    };
    for (const auto& [pc, in] : instrs) {
      if (open && (pc != prev_pc + 4u || leaders.count(pc) != 0)) close(prev_pc);
      if (!open) {
        current = BasicBlock{};
        current.start = pc;
        open = true;
      }
      const Flow f = flow_of(pc, in);
      prev_pc = pc;
      if (f.terminates) close(pc);
    }
    if (open) close(prev_pc);
  }

  // --- pass 4: static data-access lint + per-block cycle floor ----------

  void analyze_blocks() {
    for (BasicBlock& block : report.blocks) {
      ConstState consts;
      std::int64_t total = 0;
      std::int16_t prev_load_dest = -1;
      bool prev_is_load = false;
      for (std::uint32_t pc = block.start; pc < block.end; pc += 4u) {
        const Instr& in = instrs.at(pc);
        if (in.status != Instr::kOk) break;  // faults here; no further cost

        // Guaranteed-cycle floor. Only penalties that *must* occur count:
        // a load-use stall on a proven in-block dependency, and the
        // back-to-back-load extra (for every load when it is a discount,
        // only on proven consecutive loads when it is a penalty). Taken
        // branches, bank conflicts and barrier waits are excluded.
        std::int64_t c = in.base_cost;
        if (prev_load_dest >= 0) {
          for (const std::int16_t r : in.reads) {
            if (r == prev_load_dest) {
              c += profile.load_use_stall;
              break;
            }
          }
        }
        if (in.is_load && in.load_seq_extra < 0) {
          c += in.load_seq_extra;
        } else if (prev_is_load && in.load_seq_extra > 0) {
          c += in.load_seq_extra;
        }
        total += c < 0 ? 0 : c;
        prev_load_dest = in.load_dest;
        prev_is_load = in.is_load;

        lint_access(pc, in, consts);
        step_consts(pc, in, consts);
      }
      block.min_cycles = total < 0 ? 0u : static_cast<std::uint64_t>(total);
    }
  }

  void lint_access(std::uint32_t pc, const Instr& in, const ConstState& consts) {
    const std::uint32_t size = access_size(in.d.op);
    if (size == 0 || !consts.is_known(in.d.rs1)) return;
    const std::uint32_t addr =
        is_postinc(in.d.op)
            ? consts.value[in.d.rs1]
            : consts.value[in.d.rs1] + static_cast<std::uint32_t>(in.d.imm);
    if (static_cast<std::uint64_t>(addr) + size > mem.size()) {
      diag(DiagKind::kStaticAccessOutOfImage, Severity::kError, pc,
           "pc=" + hex32(pc) + ": " + to_string(in.d) + " accesses " +
               hex32(addr) + ", outside the " + std::to_string(mem.size()) +
               "-byte image");
    } else if (addr % size != 0) {
      diag(DiagKind::kStaticAccessMisaligned, Severity::kError, pc,
           "pc=" + hex32(pc) + ": " + to_string(in.d) + " accesses " +
               hex32(addr) + ", misaligned for a " + std::to_string(size) +
               "-byte access");
    }
  }

  /// Transfer function of the block-local constant propagation: tracks
  /// lui/auipc/addi/add chains (the address-materialization idiom, incl.
  /// the assembler's la/li expansions) and post-increment base updates;
  /// every other integer destination becomes unknown.
  void step_consts(std::uint32_t pc, const Instr& in, ConstState& consts) {
    const Decoded& d = in.d;
    switch (d.op) {
      case Op::kLui:
        consts.set(d.rd, static_cast<std::uint32_t>(d.imm) << 12);
        break;
      case Op::kAuipc:
        consts.set(d.rd, pc + (static_cast<std::uint32_t>(d.imm) << 12));
        break;
      case Op::kAddi:
        if (consts.is_known(d.rs1)) {
          consts.set(d.rd, consts.value[d.rs1] + static_cast<std::uint32_t>(d.imm));
        } else {
          consts.kill(d.rd);
        }
        break;
      case Op::kAdd:
        if (consts.is_known(d.rs1) && consts.is_known(d.rs2)) {
          consts.set(d.rd, consts.value[d.rs1] + consts.value[d.rs2]);
        } else {
          consts.kill(d.rd);
        }
        break;
      case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost: {
        consts.kill(d.rd);  // loaded value unknown
        if (consts.is_known(d.rs1)) {
          consts.set(d.rs1, consts.value[d.rs1] + static_cast<std::uint32_t>(d.imm));
        }
        break;
      }
      case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
        if (consts.is_known(d.rs1)) {
          consts.set(d.rs1, consts.value[d.rs1] + static_cast<std::uint32_t>(d.imm));
        }
        break;
      // No integer destination: nothing to kill.
      case Op::kSb: case Op::kSh: case Op::kSw: case Op::kFsw:
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
      case Op::kEcall: case Op::kLpSetup: case Op::kLpSetupi:
        break;
      default:
        // Conservative: kills x[rd] even for ops whose rd names an f-reg.
        consts.kill(d.rd);
        break;
    }
  }

  // --- pass 5: whole-program static cycle lower bound -------------------

  std::size_t block_index_of(std::uint32_t pc) const {
    // Blocks are sorted by start; find the one containing pc.
    std::size_t lo = 0, hi = report.blocks.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (report.blocks[mid].end <= pc) lo = mid + 1;
      else hi = mid;
    }
    return lo;
  }

  /// Cheapest sum of block costs along any path from `from` to a block in
  /// `accept` (inclusive of both endpoint blocks), restricted to blocks whose
  /// start lies in [lo, hi) — kInf when unreachable. hi == 0 means no
  /// restriction.
  std::uint64_t cheapest(std::uint32_t from, const std::set<std::uint32_t>& accept,
                         std::uint32_t lo, std::uint32_t hi) const {
    std::map<std::uint32_t, std::uint64_t> dist;
    using Item = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    const std::size_t start_idx = block_index_of(from);
    if (start_idx >= report.blocks.size() ||
        report.blocks[start_idx].start != from) {
      return kInf;
    }
    dist[from] = report.blocks[start_idx].min_cycles;
    heap.emplace(dist[from], from);
    std::uint64_t best = kInf;
    while (!heap.empty()) {
      const auto [d, at] = heap.top();
      heap.pop();
      if (d != dist.at(at)) continue;
      if (accept.count(at) != 0) {
        best = std::min(best, d);
        continue;
      }
      const BasicBlock& b = report.blocks[block_index_of(at)];
      for (const std::uint32_t succ : b.successors) {
        if (hi != 0 && (succ < lo || succ >= hi)) continue;
        const std::size_t si = block_index_of(succ);
        if (si >= report.blocks.size() || report.blocks[si].start != succ) continue;
        const std::uint64_t nd = d + report.blocks[si].min_cycles;
        const auto it = dist.find(succ);
        if (it == dist.end() || nd < it->second) {
          dist[succ] = nd;
          heap.emplace(nd, succ);
        }
      }
    }
    return best;
  }

  void compute_bound() {
    if (report.blocks.empty()) return;

    // Hardware-loop surcharge, innermost first: a well-formed loop whose
    // iteration count is a static immediate is guaranteed to run its body
    // `count` times, so charge (count - 1) extra copies of the cheapest
    // single iteration onto the block holding the setup instruction. Inner
    // surcharges land before outer iteration costs are measured, so nested
    // static counts multiply as they do dynamically.
    std::vector<std::size_t> order(regions.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return regions[a].end - regions[a].start < regions[b].end - regions[b].start;
    });
    for (const std::size_t i : order) {
      const HwLoopRegion& r = regions[i];
      if (!r.well_formed || r.static_count <= 1) continue;
      if (!body_is_clean(r)) continue;
      // One iteration: from the body's first block to any block that can take
      // the back edge (its successor set includes the loop start).
      std::set<std::uint32_t> accept;
      for (const BasicBlock& b : report.blocks) {
        if (b.start < r.start || b.start >= r.end) continue;
        if (std::find(b.successors.begin(), b.successors.end(), r.start) !=
            b.successors.end()) {
          accept.insert(b.start);
        }
      }
      if (accept.empty()) continue;
      const std::uint64_t iter = cheapest(r.start, accept, r.start, r.end);
      if (iter == kInf) continue;
      const std::size_t setup_idx = block_index_of(r.setup_pc);
      report.blocks[setup_idx].min_cycles +=
          static_cast<std::uint64_t>(r.static_count - 1u) * iter;
    }

    // Whole program: cheapest path from the entry block to any sink (a halt,
    // an indirect jump, or a fault). A program with no reachable sink never
    // halts; any finite bound is then vacuously sound, so keep the cheapest
    // path to anywhere.
    std::set<std::uint32_t> sinks;
    std::uint64_t floor_any = kInf;
    for (const BasicBlock& b : report.blocks) {
      if (b.successors.empty()) sinks.insert(b.start);
    }
    if (!sinks.empty()) {
      floor_any = cheapest(report.entry, sinks, 0, 0);
    }
    if (floor_any == kInf) {
      // No sink reachable: the cheapest single path through the entry block
      // is still a valid floor.
      const std::size_t ei = block_index_of(report.entry);
      floor_any = (ei < report.blocks.size() &&
                   report.blocks[ei].start == report.entry)
                      ? report.blocks[ei].min_cycles
                      : 0;
    }
    report.min_cycles = floor_any == kInf ? 0 : floor_any;
  }

  bool body_is_clean(const HwLoopRegion& r) const {
    for (std::uint32_t pc = r.start; pc < r.end; pc += 4u) {
      const auto it = instrs.find(pc);
      if (it == instrs.end()) continue;  // dead space inside the body
      if (it->second.status != Instr::kOk) return false;
      if (it->second.d.op == Op::kEcall || it->second.d.op == Op::kJalr) return false;
    }
    return true;
  }

  AnalysisReport run(std::uint32_t entry) {
    scan(entry);
    check_hwloops();
    build_blocks();
    analyze_blocks();
    compute_bound();
    std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.pc < b.pc;
                     });
    return std::move(report);
  }
};

void json_escape(std::ostringstream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(ch) << std::dec;
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

const char* diag_kind_name(DiagKind kind) {
  switch (kind) {
    case DiagKind::kIllegalWord: return "illegal-word";
    case DiagKind::kUnsupportedInstruction: return "unsupported-instruction";
    case DiagKind::kTargetOutOfImage: return "target-out-of-image";
    case DiagKind::kTargetMisaligned: return "target-misaligned";
    case DiagKind::kHwloopBadBounds: return "hwloop-bad-bounds";
    case DiagKind::kHwloopTooDeep: return "hwloop-too-deep";
    case DiagKind::kHwloopOverlap: return "hwloop-overlap";
    case DiagKind::kHwloopBranchIn: return "hwloop-branch-in";
    case DiagKind::kHwloopBranchOut: return "hwloop-branch-out";
    case DiagKind::kHwloopBadLastInstruction: return "hwloop-bad-last-instruction";
    case DiagKind::kStaticAccessOutOfImage: return "static-access-out-of-image";
    case DiagKind::kStaticAccessMisaligned: return "static-access-misaligned";
    case DiagKind::kIndirectJump: return "indirect-jump";
  }
  return "unknown";
}

std::size_t AnalysisReport::error_count() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string AnalysisReport::to_text() const {
  std::ostringstream os;
  os << "iw_lint: profile=" << profile_name << " entry=" << hex32(entry)
     << " words=" << words_analyzed << " blocks=" << blocks.size()
     << " hwloops=" << loops.size() << " min_cycles=" << min_cycles << "\n";
  for (const Diagnostic& d : diagnostics) {
    os << (d.severity == Severity::kError ? "error" : "note") << " ["
       << diag_kind_name(d.kind) << "] " << d.message << "\n";
  }
  const std::size_t errors = error_count();
  if (errors == 0) {
    os << "ok: no errors\n";
  } else {
    os << errors << " error(s)\n";
  }
  return os.str();
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\"profile\":\"";
  json_escape(os, profile_name);
  os << "\",\"entry\":" << entry << ",\"words_analyzed\":" << words_analyzed
     << ",\"min_cycles\":" << min_cycles << ",\"ok\":" << (ok() ? "true" : "false")
     << ",\"errors\":" << error_count() << ",\"blocks\":[";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BasicBlock& b = blocks[i];
    if (i != 0) os << ",";
    os << "{\"start\":" << b.start << ",\"end\":" << b.end
       << ",\"min_cycles\":" << b.min_cycles << ",\"halts\":"
       << (b.halts ? "true" : "false") << ",\"indirect\":"
       << (b.has_indirect ? "true" : "false") << ",\"successors\":[";
    for (std::size_t k = 0; k < b.successors.size(); ++k) {
      if (k != 0) os << ",";
      os << b.successors[k];
    }
    os << "]}";
  }
  os << "],\"hwloops\":[";
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const HwLoopRegion& r = loops[i];
    if (i != 0) os << ",";
    os << "{\"setup_pc\":" << r.setup_pc << ",\"start\":" << r.start
       << ",\"end\":" << r.end << ",\"index\":" << r.index
       << ",\"static_count\":" << r.static_count << ",\"well_formed\":"
       << (r.well_formed ? "true" : "false") << "}";
  }
  os << "],\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i != 0) os << ",";
    os << "{\"kind\":\"" << diag_kind_name(d.kind) << "\",\"severity\":\""
       << (d.severity == Severity::kError ? "error" : "note")
       << "\",\"pc\":" << d.pc << ",\"message\":\"";
    json_escape(os, d.message);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

AnalysisReport analyze(Memory& mem, std::uint32_t entry,
                       const TimingProfile& profile,
                       const AnalyzeOptions& options) {
  Analyzer analyzer(mem, entry, profile, options);
  return analyzer.run(entry);
}

void verify_or_throw(Memory& mem, std::uint32_t entry,
                     const TimingProfile& profile) {
  const AnalysisReport report = analyze(mem, entry, profile);
  if (report.ok()) return;
  std::ostringstream os;
  os << "verify_on_load[" << profile.name << "]: " << report.error_count()
     << " static diagnostic(s):";
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::kError) continue;
    os << "\n  [" << diag_kind_name(d.kind) << "] " << d.message;
  }
  fail(os.str());
}

CodeCertificate certify(Memory& mem, std::uint32_t entry,
                        const TimingProfile& profile) {
  CodeCertificate cert;
  try {
    const AnalysisReport report = analyze(mem, entry, profile);
    cert.ok = report.ok();
    if (!cert.ok) return cert;
    // Merge the (sorted) blocks into disjoint code ranges; adjacent blocks
    // fuse so a superblock can run straight-line across block boundaries.
    for (const BasicBlock& b : report.blocks) {
      if (!cert.ranges.empty() && b.start <= cert.ranges.back().second) {
        if (b.end > cert.ranges.back().second) cert.ranges.back().second = b.end;
      } else {
        cert.ranges.emplace_back(b.start, b.end);
      }
    }
    for (const HwLoopRegion& r : report.loops) cert.loop_ends.push_back(r.end);
  } catch (...) {
    cert = CodeCertificate{};  // analysis failure: nothing is certified
  }
  return cert;
}

void install_load_verifier() {
  set_program_verifier(&verify_or_throw);
  set_code_analyzer(&certify);
}

}  // namespace iw::rv::analysis
