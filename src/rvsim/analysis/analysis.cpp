#include "rvsim/analysis/analysis.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <functional>
#include <iomanip>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "rvsim/predecode.hpp"
#include "rvsim/trace.hpp"
#include "rvsim/verify_hook.hpp"

namespace iw::rv::analysis {

namespace {

constexpr std::uint64_t kInf = kUnboundedCycles;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  if (a == kInf || b == kInf) return kInf;
  return (a > kInf - b) ? kInf : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kInf || b == kInf) return kInf;
  return (a > kInf / b) ? kInf : a * b;
}

std::string hex32(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(8) << std::setfill('0') << v;
  return os.str();
}

/// Per-instruction record kept for every reachable word. A thinned DecodedEx
/// plus an explicit illegal state (DecodeCache throws instead of caching
/// those, but the analyzer must keep going to report the rest of the image).
struct Instr {
  enum Status : std::uint8_t { kOk, kUnsupported, kIllegal };
  Decoded d;
  Status status = kOk;
  std::int16_t base_cost = 0;
  bool is_load = false;
  std::int16_t load_seq_extra = 0;
  std::int16_t load_dest = -1;
  std::int16_t reads[3] = {-1, -1, -1};
};

bool is_cond_branch(Op op) {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBge: case Op::kBltu: case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

bool is_hwloop_setup(Op op) { return op == Op::kLpSetup || op == Op::kLpSetupi; }

bool is_store(Op op) {
  switch (op) {
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kFsw:
    case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
      return true;
    default:
      return false;
  }
}

/// Static control-flow successors of one instruction, before hardware-loop
/// back edges are layered on. `terminates` means the instruction ends its
/// basic block even when the next word is not a leader. A `jal` with a link
/// register is a call: its CFG successor is the continuation (pc + 4) and the
/// callee entry is reported separately. `jalr x0, ra, 0` is a return — a
/// function sink, not an unknown indirect jump.
struct Flow {
  std::uint32_t targets[2] = {0, 0};
  int count = 0;
  bool terminates = false;
  bool halts = false;
  bool indirect = false;
  bool call = false;
  bool is_return = false;
  std::uint32_t call_target = 0;
};

Flow flow_of(std::uint32_t pc, const Instr& in) {
  Flow f;
  if (in.status != Instr::kOk) {
    f.terminates = true;  // execution faults here
    return f;
  }
  if (is_cond_branch(in.d.op)) {
    f.targets[f.count++] = pc + 4u;
    f.targets[f.count++] = pc + static_cast<std::uint32_t>(in.d.imm);
    f.terminates = true;
  } else if (in.d.op == Op::kJal) {
    if (in.d.rd != 0) {
      f.call = true;
      f.call_target = pc + static_cast<std::uint32_t>(in.d.imm);
      f.targets[f.count++] = pc + 4u;  // continuation after the callee returns
    } else {
      f.targets[f.count++] = pc + static_cast<std::uint32_t>(in.d.imm);
    }
    f.terminates = true;
  } else if (in.d.op == Op::kJalr) {
    f.terminates = true;
    if (in.d.rd == 0 && in.d.rs1 == 1 && in.d.imm == 0) {
      f.is_return = true;  // `ret`: sink of the enclosing function
    } else {
      f.indirect = true;  // genuinely unknown target
    }
  } else if (in.d.op == Op::kEcall) {
    f.terminates = true;
    f.halts = true;
  } else {
    f.targets[f.count++] = pc + 4u;
  }
  return f;
}

/// Memory footprint of one instruction when its address is statically known:
/// access size in bytes (0 = no plain data access we check).
std::uint32_t access_size(Op op) {
  switch (op) {
    case Op::kLw: case Op::kSw: case Op::kFlw: case Op::kFsw:
    case Op::kPLwPost: case Op::kPSwPost:
      return 4;
    case Op::kLh: case Op::kLhu: case Op::kSh:
    case Op::kPLhPost: case Op::kPShPost:
      return 2;
    case Op::kLb: case Op::kLbu: case Op::kSb:
    case Op::kPLbPost: case Op::kPSbPost:
      return 1;
    default:
      return 0;
  }
}

bool is_postinc(Op op) {
  switch (op) {
    case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost:
    case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
      return true;
    default:
      return false;
  }
}

/// Block-local constant propagation state: which integer registers hold a
/// statically known value. x0 is always known to be zero.
struct ConstState {
  std::uint32_t value[32] = {};
  std::uint32_t known = 1;  // bit i -> x[i] known; bit 0 (x0) always set

  bool is_known(std::uint8_t r) const { return (known >> r) & 1u; }
  void set(std::uint8_t r, std::uint32_t v) {
    if (r == 0) return;
    value[r] = v;
    known |= (1u << r);
  }
  void kill(std::uint8_t r) {
    if (r == 0) return;
    known &= ~(1u << r);
  }
};

/// A function recovered from the call graph: the blocks reachable from its
/// entry through plain CFG edges (calls do not cross into callees).
struct FuncInfo {
  std::uint32_t entry = 0;
  std::set<std::uint32_t> blocks;          // block start addresses
  std::vector<std::uint32_t> callees;      // deduplicated valid call targets
  bool has_indirect = false;
  bool recursive = false;
  std::uint64_t min = 0;
  std::uint64_t max = kInf;
  std::uint64_t stack = 0;
};

struct Analyzer {
  Memory& mem;
  const TimingProfile& profile;
  const AnalyzeOptions& options;
  AnalysisReport report;

  std::map<std::uint32_t, Instr> instrs;  // reachable pc -> record
  std::vector<HwLoopRegion> regions;
  std::map<std::uint32_t, ConstState> exit_consts;  // block start -> exit state
  std::map<std::uint32_t, FuncInfo> funcs;          // entry -> function
  std::set<std::uint32_t> done;                     // composed functions
  std::set<std::uint32_t> unbounded_noted;          // loop pcs already noted
  std::set<std::uint32_t> stack_noted;              // pcs already noted

  Analyzer(Memory& m, std::uint32_t entry, const TimingProfile& p,
           const AnalyzeOptions& o)
      : mem(m), profile(p), options(o) {
    report.profile_name = profile.name;
    report.entry = entry;
  }

  void diag(DiagKind kind, Severity sev, std::uint32_t pc, std::string message) {
    report.diagnostics.push_back(Diagnostic{kind, sev, pc, std::move(message)});
  }

  bool target_ok(std::uint32_t from, std::uint32_t target, const char* what) {
    if ((target & 3u) != 0) {
      diag(DiagKind::kTargetMisaligned, Severity::kError, from,
           "pc=" + hex32(from) + ": " + what + " target " + hex32(target) +
               " is not word-aligned");
      return false;
    }
    if (static_cast<std::uint64_t>(target) + 4 > mem.size()) {
      diag(DiagKind::kTargetOutOfImage, Severity::kError, from,
           "pc=" + hex32(from) + ": " + what + " target " + hex32(target) +
               " is outside the " + std::to_string(mem.size()) + "-byte image");
      return false;
    }
    return true;
  }

  // --- pass 1: reachability + per-instruction lint -----------------------

  void scan(std::uint32_t entry) {
    if (!target_ok(entry, entry, "entry")) return;

    // A scratch DecodeCache gives us exactly the interpreter's view of every
    // word (decode + per-profile support/cost tables) without re-deriving it.
    DecodeCache cache(profile, mem);

    std::deque<std::uint32_t> worklist{entry};
    std::set<std::uint32_t> queued{entry};
    while (!worklist.empty()) {
      const std::uint32_t pc = worklist.front();
      worklist.pop_front();
      if (instrs.size() >= options.max_words) {
        fail("analysis: reachable code exceeds max_words");
      }

      Instr in;
      bool decoded = true;
      try {
        const DecodedEx& e = cache.entry(pc);
        in.d = e.d;
        if (e.status == DecodeCache::kUnsupported) {
          in.status = Instr::kUnsupported;
          diag(DiagKind::kUnsupportedInstruction, Severity::kError, pc,
               unsupported_instruction_message(profile.name, pc, e.d));
        } else {
          in.base_cost = e.base_cost;
          in.is_load = e.is_load;
          in.load_seq_extra = e.load_seq_extra;
          in.load_dest = e.load_dest;
          for (int k = 0; k < 3; ++k) in.reads[k] = e.reads[k];
        }
      } catch (const Error& err) {
        decoded = false;
        in.status = Instr::kIllegal;
        diag(DiagKind::kIllegalWord, Severity::kError, pc,
             "pc=" + hex32(pc) + ": illegal instruction word " +
                 hex32(mem.load32(pc)) + " (" + err.what() + ")");
      }

      if (decoded && in.status == Instr::kOk && is_hwloop_setup(in.d.op)) {
        HwLoopRegion r;
        r.setup_pc = pc;
        r.start = pc + 4u;
        r.end = pc + static_cast<std::uint32_t>(in.d.imm2) * 4u;
        r.index = static_cast<int>(in.d.extra & 1u);
        r.static_count =
            (in.d.op == Op::kLpSetupi && in.d.imm > 1)
                ? static_cast<std::uint32_t>(in.d.imm)
                : 1u;  // lp.setup counts from a register: >= 1, else unknown
        // lp.setupi is exact (an immediate count of 0 never arms the loop, so
        // the body still runs once — matching Core). lp.setup may still be
        // proven exact by the block-local constprop in analyze_blocks.
        if (in.d.op == Op::kLpSetupi) {
          r.exact_count = in.d.imm > 1 ? static_cast<std::uint32_t>(in.d.imm) : 1u;
        }
        regions.push_back(r);
      }

      const Flow f = flow_of(pc, in);

      if (decoded && in.status == Instr::kOk && f.indirect) {
        diag(DiagKind::kIndirectJump,
             options.indirect_jump_is_error ? Severity::kError : Severity::kNote,
             pc,
             "pc=" + hex32(pc) + ": indirect jump (" + to_string(in.d) +
                 "); control flow past this point is not analyzed");
      }

      if (f.call && target_ok(pc, f.call_target, "call")) {
        if (queued.insert(f.call_target).second) worklist.push_back(f.call_target);
      }
      for (int k = 0; k < f.count; ++k) {
        const std::uint32_t t = f.targets[k];
        const char* what;
        if (is_cond_branch(in.d.op)) {
          what = (t == pc + 4u) ? "fallthrough" : "branch";
        } else if (f.call || !f.terminates) {
          what = "fallthrough";
        } else {
          what = "jump";
        }
        if (!target_ok(pc, t, what)) continue;
        if (queued.insert(t).second) worklist.push_back(t);
      }

      instrs.emplace(pc, in);
    }
    report.words_analyzed = instrs.size();
  }

  // --- pass 2: hardware-loop well-formedness ----------------------------

  void check_hwloops() {
    // Bounds first; everything else only applies to regions with sane bounds.
    for (HwLoopRegion& r : regions) {
      if (r.end <= r.start || static_cast<std::uint64_t>(r.end) > mem.size()) {
        r.well_formed = false;
        diag(DiagKind::kHwloopBadBounds, Severity::kError, r.setup_pc,
             "pc=" + hex32(r.setup_pc) + ": hardware loop body [" +
                 hex32(r.start) + ", " + hex32(r.end) +
                 ") is empty, inverted, or outside the image");
      }
    }

    // Pairwise structure: partial overlap, same-slot nesting, depth.
    for (std::size_t i = 0; i < regions.size(); ++i) {
      HwLoopRegion& a = regions[i];
      if (!a.well_formed) continue;
      int enclosing = 0;
      for (std::size_t j = 0; j < regions.size(); ++j) {
        if (i == j) continue;
        const HwLoopRegion& b = regions[j];
        if (!b.well_formed) continue;
        const bool a_in_b = b.start <= a.start && a.end <= b.end;
        const bool b_in_a = a.start <= b.start && b.end <= a.end;
        const bool disjoint = a.end <= b.start || b.end <= a.start;
        if (!a_in_b && !b_in_a && !disjoint && i < j) {
          a.well_formed = false;
          diag(DiagKind::kHwloopOverlap, Severity::kError, a.setup_pc,
               "pc=" + hex32(a.setup_pc) + ": hardware loop body [" +
                   hex32(a.start) + ", " + hex32(a.end) +
                   ") partially overlaps the loop at pc=" + hex32(b.setup_pc));
        }
        if (a_in_b && !b_in_a && a.index == b.index) {
          a.well_formed = false;
          diag(DiagKind::kHwloopOverlap, Severity::kError, a.setup_pc,
               "pc=" + hex32(a.setup_pc) + ": nested hardware loop re-arms slot " +
                   std::to_string(a.index) + " already used by the loop at pc=" +
                   hex32(b.setup_pc));
        }
        if (a_in_b && !b_in_a) ++enclosing;
      }
      if (enclosing >= 2) {
        a.well_formed = false;
        diag(DiagKind::kHwloopTooDeep, Severity::kError, a.setup_pc,
             "pc=" + hex32(a.setup_pc) + ": hardware loop nested " +
                 std::to_string(enclosing + 1) +
                 " deep (the core has two loop slots)");
      }
    }

    // Last body instruction must not be another lp.setup*.
    for (HwLoopRegion& r : regions) {
      if (!r.well_formed) continue;
      const auto it = instrs.find(r.end - 4u);
      if (it != instrs.end() && it->second.status == Instr::kOk &&
          is_hwloop_setup(it->second.d.op)) {
        r.well_formed = false;
        diag(DiagKind::kHwloopBadLastInstruction, Severity::kError, r.end - 4u,
             "pc=" + hex32(r.end - 4u) + ": " + mnemonic(it->second.d.op) +
                 " is the last instruction of the hardware loop at pc=" +
                 hex32(r.setup_pc));
      }
    }

    // No branch into or out of a loop body. A branch to the body's end
    // address from inside acts as a "continue" (the back edge fires there)
    // and is allowed. `jal` covers both plain jumps and calls: a call from a
    // body to an outside function is just as incompatible with the hardware
    // loop state as a jump.
    for (const auto& [pc, in] : instrs) {
      if (in.status != Instr::kOk) continue;
      if (!is_cond_branch(in.d.op) && in.d.op != Op::kJal) continue;
      const std::uint32_t t = pc + static_cast<std::uint32_t>(in.d.imm);
      for (HwLoopRegion& r : regions) {
        if (r.end <= r.start) continue;  // bounds already diagnosed
        const bool from_inside = pc >= r.start && pc < r.end;
        const bool to_inside = t >= r.start && t < r.end;
        if (from_inside && !to_inside && t != r.end) {
          r.well_formed = false;
          diag(DiagKind::kHwloopBranchOut, Severity::kError, pc,
               "pc=" + hex32(pc) + ": " + mnemonic(in.d.op) + " to " + hex32(t) +
                   " leaves the hardware loop body of pc=" + hex32(r.setup_pc));
        } else if (!from_inside && to_inside) {
          r.well_formed = false;
          diag(DiagKind::kHwloopBranchIn, Severity::kError, pc,
               "pc=" + hex32(pc) + ": " + mnemonic(in.d.op) + " to " + hex32(t) +
                   " jumps into the hardware loop body of pc=" + hex32(r.setup_pc));
        }
      }
    }

    std::sort(regions.begin(), regions.end(),
              [](const HwLoopRegion& a, const HwLoopRegion& b) {
                return a.setup_pc < b.setup_pc;
              });
  }

  // --- pass 3: basic blocks ---------------------------------------------

  /// Successors of the instruction at `pc` with hardware-loop back edges
  /// layered on: any edge that lands on a loop's end address may instead take
  /// the back edge to the loop start.
  std::vector<std::uint32_t> successors_of(std::uint32_t pc, const Instr& in) const {
    const Flow f = flow_of(pc, in);
    std::vector<std::uint32_t> out;
    for (int k = 0; k < f.count; ++k) {
      const std::uint32_t t = f.targets[k];
      if (instrs.count(t) == 0) continue;  // invalid target, already diagnosed
      if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
      for (const HwLoopRegion& r : regions) {
        if (t == r.end && instrs.count(r.start) != 0 &&
            std::find(out.begin(), out.end(), r.start) == out.end()) {
          out.push_back(r.start);
        }
      }
    }
    return out;
  }

  void build_blocks() {
    if (instrs.empty()) return;
    std::set<std::uint32_t> leaders;
    leaders.insert(report.entry);
    for (const auto& [pc, in] : instrs) {
      const Flow f = flow_of(pc, in);
      if (f.terminates) {
        for (int k = 0; k < f.count; ++k) leaders.insert(f.targets[k]);
        leaders.insert(pc + 4u);
      }
      if (f.call && instrs.count(f.call_target) != 0) {
        leaders.insert(f.call_target);
      }
    }
    for (const HwLoopRegion& r : regions) {
      leaders.insert(r.start);
      leaders.insert(r.end);
    }

    BasicBlock current;
    bool open = false;
    std::uint32_t prev_pc = 0;
    const auto close = [&](std::uint32_t end_pc) {
      current.end = end_pc + 4u;
      const auto it = instrs.find(end_pc);
      current.successors = successors_of(end_pc, it->second);
      const Flow f = flow_of(end_pc, it->second);
      current.halts = f.halts;
      current.has_indirect = f.indirect;
      current.is_return = f.is_return;
      current.has_call = f.call;
      current.call_target = f.call_target;
      report.blocks.push_back(current);
      open = false;
    };
    for (const auto& [pc, in] : instrs) {
      if (open && (pc != prev_pc + 4u || leaders.count(pc) != 0)) close(prev_pc);
      if (!open) {
        current = BasicBlock{};
        current.start = pc;
        open = true;
      }
      const Flow f = flow_of(pc, in);
      prev_pc = pc;
      if (f.terminates) close(pc);
    }
    if (open) close(prev_pc);
  }

  // --- pass 4: static data-access lint + per-block cycle bounds ---------

  void analyze_blocks() {
    for (BasicBlock& block : report.blocks) {
      ConstState consts;
      std::int64_t total = 0;
      std::int64_t total_max = 0;
      std::int16_t prev_load_dest = -1;
      bool prev_is_load = false;
      for (std::uint32_t pc = block.start; pc < block.end; pc += 4u) {
        const Instr& in = instrs.at(pc);
        if (in.status != Instr::kOk) break;  // faults here; no further cost

        // Guaranteed-cycle floor. Only penalties that *must* occur count:
        // a load-use stall on a proven in-block dependency, and the
        // back-to-back-load extra (for every load when it is a discount,
        // only on proven consecutive loads when it is a penalty). Taken
        // branches, bank conflicts and barrier waits are excluded.
        std::int64_t c = in.base_cost;
        if (prev_load_dest >= 0) {
          for (const std::int16_t r : in.reads) {
            if (r == prev_load_dest) {
              c += profile.load_use_stall;
              break;
            }
          }
        }
        if (in.is_load && in.load_seq_extra < 0) {
          c += in.load_seq_extra;
        } else if (prev_is_load && in.load_seq_extra > 0) {
          c += in.load_seq_extra;
        }
        total += c < 0 ? 0 : c;

        // Worst-case ceiling: the max-penalty dual. Every load pays the
        // load-use stall its dependent successor might incur (the pending
        // destination only lives one instruction, so one stall per load
        // bounds it) and any positive back-to-back extra; the sequential-
        // load *discount* is assumed never to apply. Conditional branches
        // pay the taken penalty. Under a cluster analysis every memory
        // access pays the worst bank-conflict stall (the arbiter serves one
        // conflicting access per cycle, so cores - 1 bounds it) and every
        // store the barrier wakeup latency (a barrier releases at the
        // latest arrival — itself covered by this bound on the common SPMD
        // image — plus the wakeup; charging it on the store closes the
        // induction). DMA is not modeled; the reference kernels do not use
        // it.
        std::int64_t cm = in.base_cost;
        if (in.is_load) cm += profile.load_use_stall;
        if (in.load_seq_extra > 0) cm += in.load_seq_extra;
        if (is_cond_branch(in.d.op)) cm += profile.branch_taken_extra;
        if (options.cluster_cores > 1) {
          if (access_size(in.d.op) != 0) cm += options.cluster_cores - 1;
          if (is_store(in.d.op)) cm += options.barrier_wakeup_cycles;
        }
        total_max += cm < 0 ? 0 : cm;

        prev_load_dest = in.load_dest;
        prev_is_load = in.is_load;

        // An lp.setup whose count register is statically known is exact:
        // Core arms the loop with max(count, 1) iterations. This tightens
        // both the guaranteed floor and the worst-case ceiling.
        if (in.d.op == Op::kLpSetup && consts.is_known(in.d.rs1)) {
          const std::uint32_t v = consts.value[in.d.rs1];
          for (HwLoopRegion& r : regions) {
            if (r.setup_pc != pc) continue;
            r.exact_count = v == 0 ? 1u : v;
            r.static_count = r.exact_count;
          }
        }

        lint_access(pc, in, consts);
        step_consts(pc, in, consts);
      }
      block.min_cycles = total < 0 ? 0u : static_cast<std::uint64_t>(total);
      block.max_cycles = total_max < 0 ? 0u : static_cast<std::uint64_t>(total_max);
      exit_consts.emplace(block.start, consts);
    }
  }

  void lint_access(std::uint32_t pc, const Instr& in, const ConstState& consts) {
    const std::uint32_t size = access_size(in.d.op);
    if (size == 0 || !consts.is_known(in.d.rs1)) return;
    const std::uint32_t addr =
        is_postinc(in.d.op)
            ? consts.value[in.d.rs1]
            : consts.value[in.d.rs1] + static_cast<std::uint32_t>(in.d.imm);
    if (static_cast<std::uint64_t>(addr) + size > mem.size()) {
      diag(DiagKind::kStaticAccessOutOfImage, Severity::kError, pc,
           "pc=" + hex32(pc) + ": " + to_string(in.d) + " accesses " +
               hex32(addr) + ", outside the " + std::to_string(mem.size()) +
               "-byte image");
    } else if (addr % size != 0) {
      diag(DiagKind::kStaticAccessMisaligned, Severity::kError, pc,
           "pc=" + hex32(pc) + ": " + to_string(in.d) + " accesses " +
               hex32(addr) + ", misaligned for a " + std::to_string(size) +
               "-byte access");
    }
  }

  /// Transfer function of the block-local constant propagation: tracks
  /// lui/auipc/addi/add chains (the address-materialization idiom, incl.
  /// the assembler's la/li expansions) and post-increment base updates;
  /// every other integer destination becomes unknown.
  void step_consts(std::uint32_t pc, const Instr& in, ConstState& consts) {
    const Decoded& d = in.d;
    switch (d.op) {
      case Op::kLui:
        consts.set(d.rd, static_cast<std::uint32_t>(d.imm) << 12);
        break;
      case Op::kAuipc:
        consts.set(d.rd, pc + (static_cast<std::uint32_t>(d.imm) << 12));
        break;
      case Op::kAddi:
        if (consts.is_known(d.rs1)) {
          consts.set(d.rd, consts.value[d.rs1] + static_cast<std::uint32_t>(d.imm));
        } else {
          consts.kill(d.rd);
        }
        break;
      case Op::kAdd:
        if (consts.is_known(d.rs1) && consts.is_known(d.rs2)) {
          consts.set(d.rd, consts.value[d.rs1] + consts.value[d.rs2]);
        } else {
          consts.kill(d.rd);
        }
        break;
      case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost: {
        consts.kill(d.rd);  // loaded value unknown
        if (consts.is_known(d.rs1)) {
          consts.set(d.rs1, consts.value[d.rs1] + static_cast<std::uint32_t>(d.imm));
        }
        break;
      }
      case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
        if (consts.is_known(d.rs1)) {
          consts.set(d.rs1, consts.value[d.rs1] + static_cast<std::uint32_t>(d.imm));
        }
        break;
      // No integer destination: nothing to kill.
      case Op::kSb: case Op::kSh: case Op::kSw: case Op::kFsw:
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
      case Op::kEcall: case Op::kLpSetup: case Op::kLpSetupi:
        break;
      default:
        // Anything else that writes an integer destination makes it unknown;
        // float-destination ops (flw, fmv.w.x, float arithmetic) leave the
        // integer file untouched even though their rd field aliases an x-reg
        // index.
        if (writes_int_rd(d.op)) consts.kill(d.rd);
        break;
    }
  }

  // --- block lookup helpers ---------------------------------------------

  std::size_t block_index_of(std::uint32_t pc) const {
    // Blocks are sorted by start; find the one containing pc.
    std::size_t lo = 0, hi = report.blocks.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (report.blocks[mid].end <= pc) lo = mid + 1;
      else hi = mid;
    }
    return lo;
  }

  /// Block whose start address is exactly `pc`, or nullptr.
  const BasicBlock* block_at(std::uint32_t pc) const {
    const std::size_t i = block_index_of(pc);
    if (i < report.blocks.size() && report.blocks[i].start == pc) {
      return &report.blocks[i];
    }
    return nullptr;
  }

  /// Block whose [start, end) range contains `pc`, or nullptr.
  const BasicBlock* block_containing(std::uint32_t pc) const {
    const std::size_t i = block_index_of(pc);
    if (i < report.blocks.size() && report.blocks[i].start <= pc &&
        pc < report.blocks[i].end) {
      return &report.blocks[i];
    }
    return nullptr;
  }

  // --- path extremes over the block graph -------------------------------

  /// Cheapest sum of block costs along any path from `from` to a block in
  /// `accept` (inclusive of both endpoint blocks), restricted to blocks whose
  /// start lies in [lo, hi) — kInf when unreachable. hi == 0 means no
  /// restriction. `filter`, when non-null, restricts traversal to that block
  /// set; `cost` supplies per-block costs (defaults to BasicBlock::min_cycles
  /// at every call site that passes it).
  std::uint64_t cheapest(std::uint32_t from, const std::set<std::uint32_t>& accept,
                         std::uint32_t lo, std::uint32_t hi,
                         const std::set<std::uint32_t>* filter,
                         const std::function<std::uint64_t(std::uint32_t)>& cost) const {
    std::map<std::uint32_t, std::uint64_t> dist;
    using Item = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    if (block_at(from) == nullptr) return kInf;
    dist[from] = cost(from);
    heap.emplace(dist[from], from);
    std::uint64_t best = kInf;
    while (!heap.empty()) {
      const auto [d, at] = heap.top();
      heap.pop();
      if (d != dist.at(at)) continue;
      if (accept.count(at) != 0) {
        best = std::min(best, d);
        continue;
      }
      const BasicBlock& b = report.blocks[block_index_of(at)];
      for (const std::uint32_t succ : b.successors) {
        if (hi != 0 && (succ < lo || succ >= hi)) continue;
        if (filter != nullptr && filter->count(succ) == 0) continue;
        if (block_at(succ) == nullptr) continue;
        const std::uint64_t nd = sat_add(d, cost(succ));
        const auto it = dist.find(succ);
        if (it == dist.end() || nd < it->second) {
          dist[succ] = nd;
          heap.emplace(nd, succ);
        }
      }
    }
    return best;
  }

  /// Longest-path distances (cost-inclusive at both endpoints) from `from`
  /// over *forward* edges only (successor start > block start — loop back
  /// edges are excluded, making the graph a DAG that address order
  /// topologically sorts). Same [lo, hi) / filter semantics as cheapest().
  std::map<std::uint32_t, std::uint64_t> longest(
      std::uint32_t from, std::uint32_t lo, std::uint32_t hi,
      const std::set<std::uint32_t>* filter,
      const std::function<std::uint64_t(std::uint32_t)>& cost) const {
    std::map<std::uint32_t, std::uint64_t> dist;
    if (block_at(from) == nullptr) return dist;
    dist[from] = cost(from);
    for (std::size_t i = block_index_of(from); i < report.blocks.size(); ++i) {
      const BasicBlock& b = report.blocks[i];
      const auto it = dist.find(b.start);
      if (it == dist.end()) continue;
      const std::uint64_t d = it->second;
      for (const std::uint32_t succ : b.successors) {
        if (succ <= b.start) continue;  // back edge: handled via loop bounds
        if (hi != 0 && (succ < lo || succ >= hi)) continue;
        if (filter != nullptr && filter->count(succ) == 0) continue;
        if (block_at(succ) == nullptr) continue;
        const std::uint64_t nd = sat_add(d, cost(succ));
        const auto [dit, inserted] = dist.emplace(succ, nd);
        if (!inserted && nd > dit->second) dit->second = nd;
      }
    }
    return dist;
  }

  bool body_is_clean(const HwLoopRegion& r) const {
    for (std::uint32_t pc = r.start; pc < r.end; pc += 4u) {
      const auto it = instrs.find(pc);
      if (it == instrs.end()) continue;  // dead space inside the body
      if (it->second.status != Instr::kOk) return false;
      if (it->second.d.op == Op::kEcall || it->second.d.op == Op::kJalr) return false;
    }
    return true;
  }

  // --- pass 5: function discovery + call graph --------------------------

  void discover_functions() {
    std::set<std::uint32_t> entries;
    if (block_at(report.entry) != nullptr) entries.insert(report.entry);
    for (const BasicBlock& b : report.blocks) {
      if (b.has_call && block_at(b.call_target) != nullptr) {
        entries.insert(b.call_target);
      }
    }
    for (const std::uint32_t e : entries) {
      FuncInfo f;
      f.entry = e;
      std::deque<std::uint32_t> work{e};
      f.blocks.insert(e);
      std::set<std::uint32_t> callees;
      while (!work.empty()) {
        const std::uint32_t s = work.front();
        work.pop_front();
        const BasicBlock& b = *block_at(s);
        if (b.has_indirect) f.has_indirect = true;
        if (b.has_call && block_at(b.call_target) != nullptr) {
          callees.insert(b.call_target);
        }
        for (const std::uint32_t succ : b.successors) {
          if (block_at(succ) == nullptr) continue;
          if (f.blocks.insert(succ).second) work.push_back(succ);
        }
      }
      f.callees.assign(callees.begin(), callees.end());
      funcs.emplace(e, std::move(f));
    }
  }

  /// Iterative Tarjan SCC over the call graph. SCCs pop in reverse
  /// topological order (callees before callers), which is exactly the
  /// bottom-up composition order; each popped component is composed
  /// immediately. Components of size > 1 and self-calling functions are
  /// recursive: unbounded worst-case cycles and stack.
  void compose_functions() {
    std::map<std::uint32_t, int> index, low;
    std::vector<std::uint32_t> stack;
    std::set<std::uint32_t> on_stack;
    int next = 0;

    struct Frame {
      std::uint32_t v;
      std::size_t child;
    };
    for (const auto& [root, unused] : funcs) {
      (void)unused;
      if (index.count(root) != 0) continue;
      std::vector<Frame> frames;
      frames.push_back(Frame{root, 0});
      index[root] = low[root] = next++;
      stack.push_back(root);
      on_stack.insert(root);
      while (!frames.empty()) {
        Frame& fr = frames.back();
        FuncInfo& fi = funcs.at(fr.v);
        if (fr.child < fi.callees.size()) {
          const std::uint32_t w = fi.callees[fr.child++];
          if (funcs.count(w) == 0) continue;
          if (index.count(w) == 0) {
            index[w] = low[w] = next++;
            stack.push_back(w);
            on_stack.insert(w);
            frames.push_back(Frame{w, 0});
          } else if (on_stack.count(w) != 0) {
            low[fr.v] = std::min(low[fr.v], index[w]);
          }
        } else {
          if (low[fr.v] == index[fr.v]) {
            std::vector<std::uint32_t> comp;
            for (;;) {
              const std::uint32_t w = stack.back();
              stack.pop_back();
              on_stack.erase(w);
              comp.push_back(w);
              if (w == fr.v) break;
            }
            compose_component(comp);
          }
          const std::uint32_t v = fr.v;
          frames.pop_back();
          if (!frames.empty()) {
            low[frames.back().v] = std::min(low[frames.back().v], low[v]);
          }
        }
      }
    }
  }

  void compose_component(const std::vector<std::uint32_t>& comp) {
    bool recursive = comp.size() > 1;
    if (!recursive) {
      const FuncInfo& f = funcs.at(comp.front());
      recursive = std::find(f.callees.begin(), f.callees.end(), f.entry) !=
                  f.callees.end();
    }
    for (const std::uint32_t v : comp) {
      FuncInfo& f = funcs.at(v);
      f.recursive = recursive;
      if (recursive) {
        diag(DiagKind::kRecursiveCall, Severity::kNote, v,
             "pc=" + hex32(v) +
                 ": function is recursive; worst-case cycle and stack bounds "
                 "are unbounded");
      }
    }
    for (const std::uint32_t v : comp) compose_function(funcs.at(v));
    for (const std::uint32_t v : comp) done.insert(v);
  }

  std::uint64_t callee_min(std::uint32_t t) const {
    const auto it = funcs.find(t);
    // Unknown or in-cycle callees contribute 0 — still a valid lower bound.
    return (it != funcs.end() && done.count(t) != 0) ? it->second.min : 0;
  }
  std::uint64_t callee_max(std::uint32_t t) const {
    const auto it = funcs.find(t);
    return (it != funcs.end() && done.count(t) != 0) ? it->second.max : kInf;
  }
  std::uint64_t callee_stack(std::uint32_t t) const {
    const auto it = funcs.find(t);
    return (it != funcs.end() && done.count(t) != 0) ? it->second.stack : kInf;
  }

  void compose_function(FuncInfo& f) {
    compute_function_min(f);
    f.max = compute_function_max(f);
    f.stack = compute_function_stack(f);
  }

  void compute_function_min(FuncInfo& f) {
    const auto min_cost = [&](std::uint32_t s) -> std::uint64_t {
      const BasicBlock& b = *block_at(s);
      std::uint64_t c = b.min_cycles;
      if (b.has_call) c = sat_add(c, callee_min(b.call_target));
      return c;
    };
    std::set<std::uint32_t> sinks;
    for (const std::uint32_t s : f.blocks) {
      if (block_at(s)->successors.empty()) sinks.insert(s);
    }
    std::uint64_t m = kInf;
    if (!sinks.empty()) m = cheapest(f.entry, sinks, 0, 0, &f.blocks, min_cost);
    if (m == kInf) {
      // No sink reachable (the function never returns or halts): the cost of
      // the entry block alone is still a valid floor.
      m = min_cost(f.entry);
    }
    f.min = m == kInf ? 0 : m;
  }

  void note_unbounded_loop(std::uint32_t pc) {
    if (!unbounded_noted.insert(pc).second) return;
    diag(DiagKind::kUnboundedLoop, Severity::kNote, pc,
         "pc=" + hex32(pc) +
             ": no static iteration bound for this loop; the worst-case "
             "cycle bound is unbounded");
  }

  /// Trusted flow-fact lookup: 0 when absent, else the annotated maximum
  /// iteration count clamped to >= 1 (a loop whose body executes at all
  /// executes it once).
  std::uint64_t annotation_at(std::uint32_t key_a, std::uint32_t key_b) const {
    auto it = options.loop_bounds.find(key_a);
    if (it == options.loop_bounds.end()) it = options.loop_bounds.find(key_b);
    if (it == options.loop_bounds.end()) return 0;
    return it->second == 0 ? 1 : it->second;
  }

  std::uint64_t hwloop_max_count(const HwLoopRegion& r) const {
    if (r.exact_count > 0) return r.exact_count;
    const std::uint64_t ann = annotation_at(r.setup_pc, r.end);
    return ann != 0 ? ann : kInf;
  }

  /// Maximum iteration count of a backward-branch loop with head block
  /// `head` and back-edge (tail) block `tail`, or kInf. Sources, in order:
  /// a trusted annotation (keyed by the head pc or the tail branch pc), then
  /// the monotone-counter pattern — the tail ends in `bne r, x0, head`
  /// (either operand zero), `r` has exactly one writer in the loop interval,
  /// that writer sits in the tail block (so it runs on every back edge), no
  /// call or indirect jump can clobber `r` inside the loop, and the writer
  /// is either a countdown `addi r, r, -k` whose initial value is proven by
  /// the unique outside predecessor's block-local constants (k must divide
  /// it — no wraparound), or a shift `srli r, r, k` (32 bits drain in at
  /// most 32/k + 2 body executions regardless of the initial value).
  std::uint64_t branch_loop_bound(const FuncInfo& f, std::uint32_t head,
                                  const BasicBlock& tail) const {
    const std::uint64_t ann = annotation_at(head, tail.end - 4u);
    if (ann != 0) return ann;

    const auto tit = instrs.find(tail.end - 4u);
    if (tit == instrs.end() || tit->second.status != Instr::kOk) return kInf;
    const Decoded& br = tit->second.d;
    if (br.op != Op::kBne) return kInf;
    if (tail.end - 4u + static_cast<std::uint32_t>(br.imm) != head) return kInf;
    std::uint8_t reg;
    if (br.rs2 == 0 && br.rs1 != 0) reg = br.rs1;
    else if (br.rs1 == 0 && br.rs2 != 0) reg = br.rs2;
    else return kInf;

    const Instr* writer = nullptr;
    std::uint32_t writer_pc = 0;
    for (std::uint32_t pc = head; pc < tail.end; pc += 4u) {
      const auto it = instrs.find(pc);
      if (it == instrs.end()) continue;  // dead space in the interval
      const Instr& in = it->second;
      if (in.status != Instr::kOk) return kInf;
      if (in.d.op == Op::kJalr) return kInf;
      if (in.d.op == Op::kJal && in.d.rd != 0) return kInf;  // call clobbers?
      const bool writes = (writes_int_rd(in.d.op) && in.d.rd == reg) ||
                          (is_postinc(in.d.op) && in.d.rs1 == reg);
      if (!writes) continue;
      if (writer != nullptr) return kInf;  // not a sole writer
      writer = &in;
      writer_pc = pc;
    }
    if (writer == nullptr) return kInf;
    if (writer_pc < tail.start || writer_pc >= tail.end) return kInf;

    const Decoded& w = writer->d;
    if (w.op == Op::kSrli && w.rd == reg && w.rs1 == reg) {
      const std::uint32_t k = static_cast<std::uint32_t>(w.imm) & 31u;
      if (k == 0) return kInf;
      return 32u / k + 2u;
    }
    if (w.op != Op::kAddi || w.rd != reg || w.rs1 != reg || w.imm >= 0) {
      return kInf;
    }
    const std::uint32_t k =
        static_cast<std::uint32_t>(-static_cast<std::int64_t>(w.imm));
    // Initial counter value: the unique predecessor outside the interval
    // must prove it block-locally.
    const BasicBlock* pred = nullptr;
    for (const std::uint32_t s : f.blocks) {
      if (s >= head && s < tail.end) continue;  // inside the loop
      const BasicBlock* pb = block_at(s);
      if (pb == nullptr) continue;
      if (std::find(pb->successors.begin(), pb->successors.end(), head) ==
          pb->successors.end()) {
        continue;
      }
      if (pred != nullptr) return kInf;  // multiple outside entries
      pred = pb;
    }
    if (pred == nullptr) return kInf;
    // A predecessor that ends in a call hands control to the callee before
    // the loop head; the callee may clobber the counter, so the caller's
    // exit constants cannot vouch for the initial value.
    if (pred->has_call) return kInf;
    const auto ec = exit_consts.find(pred->start);
    if (ec == exit_consts.end() || !ec->second.is_known(reg)) return kInf;
    const std::uint32_t v = ec->second.value[reg];
    if (v == 0 || v % k != 0) return kInf;
    return v / k;
  }

  // --- pass 6: per-function WCET ----------------------------------------

  std::uint64_t compute_function_max(FuncInfo& f) {
    if (f.recursive) return kInf;
    if (f.has_indirect) return kInf;  // unknown continuation somewhere inside

    std::map<std::uint32_t, std::uint64_t> extra;  // loop surcharges
    const auto max_cost = [&](std::uint32_t s) -> std::uint64_t {
      const BasicBlock& b = *block_at(s);
      std::uint64_t c = b.max_cycles;
      if (b.has_call) c = sat_add(c, callee_max(b.call_target));
      const auto it = extra.find(s);
      if (it != extra.end()) c = sat_add(c, it->second);
      return c;
    };

    // Collect loops: every back edge inside the function, classified as a
    // hardware loop (edge into a well-formed region's start from its last
    // block) or a backward-branch loop.
    struct LoopRec {
      std::uint32_t lo, hi;    // interval of block starts the loop spans
      std::uint32_t tail;      // block taking the back edge
      std::uint32_t charge;    // block the surcharge lands on
      std::uint64_t count;     // max body executions, or kInf
    };
    std::vector<LoopRec> loops;
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
    for (const std::uint32_t s : f.blocks) {
      const BasicBlock& b = *block_at(s);
      for (const std::uint32_t succ : b.successors) {
        if (succ > b.start) continue;  // forward edge
        if (f.blocks.count(succ) == 0) continue;
        LoopRec L{};
        const HwLoopRegion* hw = nullptr;
        for (const HwLoopRegion& r : regions) {
          if (r.well_formed && r.start == succ && r.end == b.end) {
            hw = &r;
            break;
          }
        }
        if (hw != nullptr && body_is_clean(*hw)) {
          L.lo = hw->start;
          L.hi = hw->end;
          L.tail = b.start;
          L.count = hwloop_max_count(*hw);
          const BasicBlock* sb = block_containing(hw->setup_pc);
          if (sb != nullptr && f.blocks.count(sb->start) != 0) {
            L.charge = sb->start;
          } else {
            L.charge = succ;
            L.count = kInf;  // setup unreachable within this function
          }
        } else if (hw != nullptr) {
          L.lo = hw->start;
          L.hi = hw->end;
          L.tail = b.start;
          L.charge = succ;
          L.count = kInf;  // dirty body: no static bound
        } else {
          L.lo = succ;
          L.hi = b.end;
          L.tail = b.start;
          L.charge = succ;
          L.count = branch_loop_bound(f, succ, b);
        }
        if (seen.insert({L.lo, L.hi, L.tail}).second) loops.push_back(L);
      }
    }

    // Partially overlapping intervals break the innermost-first charge
    // order; both become unbounded (conservative, and diagnosed).
    for (std::size_t i = 0; i < loops.size(); ++i) {
      for (std::size_t j = i + 1; j < loops.size(); ++j) {
        LoopRec& a = loops[i];
        LoopRec& b = loops[j];
        const bool nested = (a.lo <= b.lo && b.hi <= a.hi) ||
                            (b.lo <= a.lo && a.hi <= b.hi);
        const bool disjoint = a.hi <= b.lo || b.hi <= a.lo;
        if (!nested && !disjoint) a.count = b.count = kInf;
      }
    }

    std::sort(loops.begin(), loops.end(), [](const LoopRec& a, const LoopRec& b) {
      if (a.hi - a.lo != b.hi - b.lo) return a.hi - a.lo < b.hi - b.lo;
      return std::tie(a.lo, a.tail) < std::tie(b.lo, b.tail);
    });

    bool unbounded = false;
    for (const LoopRec& L : loops) {
      if (L.count == kInf) {
        note_unbounded_loop(L.lo);
        unbounded = true;
        continue;
      }
      if (L.count <= 1) continue;
      // Longest single iteration: head to back-edge block within the loop
      // interval. Inner surcharges are already in `extra`, so nested bounds
      // multiply as they do dynamically.
      const auto dist = longest(L.lo, L.lo, L.hi, &f.blocks, max_cost);
      const auto it = dist.find(L.tail);
      const std::uint64_t iter = it == dist.end() ? kInf : it->second;
      if (iter == kInf) {
        note_unbounded_loop(L.lo);
        unbounded = true;
        continue;
      }
      extra[L.charge] = sat_add(extra[L.charge], sat_mul(L.count - 1, iter));
    }
    if (unbounded) return kInf;

    const auto dist = longest(f.entry, 0, 0, &f.blocks, max_cost);
    std::uint64_t worst = 0;
    for (const auto& [s, d] : dist) {
      (void)s;
      worst = std::max(worst, d);
    }
    return worst;
  }

  // --- pass 7: per-function stack depth ---------------------------------

  void note_unknown_stack(std::uint32_t pc, const std::string& why) {
    if (!stack_noted.insert(pc).second) return;
    diag(DiagKind::kUnknownStackPointer, Severity::kNote, pc,
         "pc=" + hex32(pc) + ": " + why + "; the static stack bound is unknown");
  }

  /// Dataflow over the function's blocks: depth = (entry sp) - sp, tracked
  /// through `addi sp, sp, imm` and post-increment base updates on sp. Any
  /// other write to x2, a join with mismatched depths, a negative depth
  /// (popping above the entry frame), or an unbalanced return makes the
  /// bound unknown — composition at call sites assumes callees restore sp.
  std::uint64_t compute_function_stack(FuncInfo& f) {
    if (f.recursive) return kInf;
    std::map<std::uint32_t, std::int64_t> depth_in;
    std::deque<std::uint32_t> work{f.entry};
    depth_in[f.entry] = 0;
    std::uint64_t max_depth = 0;
    bool unknown = false;
    while (!work.empty() && !unknown) {
      const std::uint32_t s = work.front();
      work.pop_front();
      const BasicBlock& b = *block_at(s);
      std::int64_t depth = depth_in.at(s);
      for (std::uint32_t pc = b.start; pc < b.end && !unknown; pc += 4u) {
        const Instr& in = instrs.at(pc);
        if (in.status != Instr::kOk) break;
        const Decoded& d = in.d;
        bool adjusted = false;
        if (d.op == Op::kAddi && d.rd == 2) {
          if (d.rs1 != 2) {
            note_unknown_stack(pc, "sp is rebuilt from another register");
            unknown = true;
            break;
          }
          depth -= d.imm;
          adjusted = true;
        } else if (writes_int_rd(d.op) && d.rd == 2) {
          note_unknown_stack(pc, "sp is written by " + std::string(mnemonic(d.op)));
          unknown = true;
          break;
        } else if (is_postinc(d.op) && d.rs1 == 2) {
          depth -= d.imm;
          adjusted = true;
        }
        if (adjusted) {
          if (depth < 0) {
            note_unknown_stack(pc, "sp rises above the function entry frame");
            unknown = true;
            break;
          }
          max_depth = std::max(max_depth, static_cast<std::uint64_t>(depth));
        }
      }
      if (unknown) break;
      if (b.is_return && depth != 0) {
        note_unknown_stack(b.end - 4u, "function returns with an unbalanced sp");
        unknown = true;
        break;
      }
      if (b.has_call) {
        const std::uint64_t cs = callee_stack(b.call_target);
        if (cs == kInf) {
          note_unknown_stack(b.end - 4u, "callee stack depth is unknown");
          unknown = true;
          break;
        }
        max_depth = std::max(
            max_depth, sat_add(static_cast<std::uint64_t>(depth), cs));
      }
      for (const std::uint32_t succ : b.successors) {
        if (f.blocks.count(succ) == 0 || block_at(succ) == nullptr) continue;
        const auto [it, inserted] = depth_in.emplace(succ, depth);
        if (inserted) {
          work.push_back(succ);
        } else if (it->second != depth) {
          note_unknown_stack(succ, "stack depth differs across paths");
          unknown = true;
          break;
        }
      }
    }
    return unknown ? kInf : max_depth;
  }

  // --- pass 8: whole-program bounds -------------------------------------

  void compute_bound() {
    if (report.blocks.empty()) return;

    // Hardware-loop floor surcharge, innermost first: a well-formed loop
    // whose iteration count is statically exact is guaranteed to run its
    // body `count` times, so charge (count - 1) extra copies of the cheapest
    // single iteration onto the block holding the setup instruction. Inner
    // surcharges land before outer iteration costs are measured, so nested
    // static counts multiply as they do dynamically.
    const auto min_cost = [&](std::uint32_t s) -> std::uint64_t {
      return block_at(s)->min_cycles;
    };
    std::vector<std::size_t> order(regions.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return regions[a].end - regions[a].start < regions[b].end - regions[b].start;
    });
    for (const std::size_t i : order) {
      const HwLoopRegion& r = regions[i];
      if (!r.well_formed || r.static_count <= 1) continue;
      if (!body_is_clean(r)) continue;
      // One iteration: from the body's first block to any block that can take
      // the back edge (its successor set includes the loop start).
      std::set<std::uint32_t> accept;
      for (const BasicBlock& b : report.blocks) {
        if (b.start < r.start || b.start >= r.end) continue;
        if (std::find(b.successors.begin(), b.successors.end(), r.start) !=
            b.successors.end()) {
          accept.insert(b.start);
        }
      }
      if (accept.empty()) continue;
      const std::uint64_t iter =
          cheapest(r.start, accept, r.start, r.end, nullptr, min_cost);
      if (iter == kInf) continue;
      const std::size_t setup_idx = block_index_of(r.setup_pc);
      report.blocks[setup_idx].min_cycles +=
          static_cast<std::uint64_t>(r.static_count - 1u) * iter;
    }

    discover_functions();
    compose_functions();

    const auto it = funcs.find(report.entry);
    if (it != funcs.end()) {
      report.min_cycles = it->second.min;
      report.max_cycles = it->second.max;
      report.stack_bytes = it->second.stack;
      if (options.stack_limit_bytes > 0 && it->second.stack != kInf &&
          it->second.stack > options.stack_limit_bytes) {
        diag(DiagKind::kStackOverflow, Severity::kError, report.entry,
             "pc=" + hex32(report.entry) + ": provable stack depth " +
                 std::to_string(it->second.stack) + " bytes exceeds the " +
                 std::to_string(options.stack_limit_bytes) + "-byte limit");
      }
    }
    for (const auto& [entry, f] : funcs) {
      (void)entry;
      FunctionSummary s;
      s.entry = f.entry;
      s.min_cycles = f.min;
      s.max_cycles = f.max;
      s.stack_bytes = f.stack;
      s.recursive = f.recursive;
      report.functions.push_back(s);
    }
  }

  AnalysisReport run(std::uint32_t entry) {
    scan(entry);
    check_hwloops();
    build_blocks();
    analyze_blocks();
    compute_bound();
    report.loops = regions;  // after analyze_blocks' exact-count upgrades
    std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.pc < b.pc;
                     });
    return std::move(report);
  }
};

void json_escape(std::ostringstream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(ch) << std::dec;
        } else {
          os << ch;
        }
    }
  }
}

void json_u64_or_null(std::ostringstream& os, std::uint64_t v) {
  if (v == kInf) {
    os << "null";
  } else {
    os << v;
  }
}

}  // namespace

const char* diag_kind_name(DiagKind kind) {
  switch (kind) {
    case DiagKind::kIllegalWord: return "illegal-word";
    case DiagKind::kUnsupportedInstruction: return "unsupported-instruction";
    case DiagKind::kTargetOutOfImage: return "target-out-of-image";
    case DiagKind::kTargetMisaligned: return "target-misaligned";
    case DiagKind::kHwloopBadBounds: return "hwloop-bad-bounds";
    case DiagKind::kHwloopTooDeep: return "hwloop-too-deep";
    case DiagKind::kHwloopOverlap: return "hwloop-overlap";
    case DiagKind::kHwloopBranchIn: return "hwloop-branch-in";
    case DiagKind::kHwloopBranchOut: return "hwloop-branch-out";
    case DiagKind::kHwloopBadLastInstruction: return "hwloop-bad-last-instruction";
    case DiagKind::kStaticAccessOutOfImage: return "static-access-out-of-image";
    case DiagKind::kStaticAccessMisaligned: return "static-access-misaligned";
    case DiagKind::kIndirectJump: return "indirect-jump";
    case DiagKind::kRecursiveCall: return "recursive-call";
    case DiagKind::kUnboundedLoop: return "unbounded-loop";
    case DiagKind::kStackOverflow: return "stack-overflow";
    case DiagKind::kUnknownStackPointer: return "unknown-stack-pointer";
  }
  return "unknown";
}

std::size_t AnalysisReport::error_count() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string AnalysisReport::to_text() const {
  std::ostringstream os;
  os << "iw_lint: profile=" << profile_name << " entry=" << hex32(entry)
     << " words=" << words_analyzed << " blocks=" << blocks.size()
     << " hwloops=" << loops.size() << " min_cycles=" << min_cycles
     << " max_cycles=";
  if (max_cycles == kUnboundedCycles) {
    os << "unbounded";
  } else {
    os << max_cycles;
  }
  os << " stack_bytes=";
  if (stack_bytes == kUnboundedCycles) {
    os << "unknown";
  } else {
    os << stack_bytes;
  }
  os << "\n";
  for (const Diagnostic& d : diagnostics) {
    os << (d.severity == Severity::kError ? "error" : "note") << " ["
       << diag_kind_name(d.kind) << "] " << d.message << "\n";
  }
  const std::size_t errors = error_count();
  if (errors == 0) {
    os << "ok: no errors\n";
  } else {
    os << errors << " error(s)\n";
  }
  return os.str();
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\"profile\":\"";
  json_escape(os, profile_name);
  os << "\",\"entry\":" << entry << ",\"words_analyzed\":" << words_analyzed
     << ",\"min_cycles\":" << min_cycles << ",\"max_cycles\":";
  json_u64_or_null(os, max_cycles);
  os << ",\"stack_bytes\":";
  json_u64_or_null(os, stack_bytes);
  os << ",\"ok\":" << (ok() ? "true" : "false")
     << ",\"errors\":" << error_count() << ",\"blocks\":[";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BasicBlock& b = blocks[i];
    if (i != 0) os << ",";
    os << "{\"start\":" << b.start << ",\"end\":" << b.end
       << ",\"min_cycles\":" << b.min_cycles
       << ",\"max_cycles\":" << b.max_cycles << ",\"halts\":"
       << (b.halts ? "true" : "false") << ",\"indirect\":"
       << (b.has_indirect ? "true" : "false") << ",\"successors\":[";
    for (std::size_t k = 0; k < b.successors.size(); ++k) {
      if (k != 0) os << ",";
      os << b.successors[k];
    }
    os << "]}";
  }
  os << "],\"hwloops\":[";
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const HwLoopRegion& r = loops[i];
    if (i != 0) os << ",";
    os << "{\"setup_pc\":" << r.setup_pc << ",\"start\":" << r.start
       << ",\"end\":" << r.end << ",\"index\":" << r.index
       << ",\"static_count\":" << r.static_count
       << ",\"exact_count\":" << r.exact_count << ",\"well_formed\":"
       << (r.well_formed ? "true" : "false") << "}";
  }
  os << "],\"functions\":[";
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionSummary& f = functions[i];
    if (i != 0) os << ",";
    os << "{\"entry\":" << f.entry << ",\"min_cycles\":" << f.min_cycles
       << ",\"max_cycles\":";
    json_u64_or_null(os, f.max_cycles);
    os << ",\"stack_bytes\":";
    json_u64_or_null(os, f.stack_bytes);
    os << ",\"recursive\":" << (f.recursive ? "true" : "false") << "}";
  }
  os << "],\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i != 0) os << ",";
    os << "{\"kind\":\"" << diag_kind_name(d.kind) << "\",\"severity\":\""
       << (d.severity == Severity::kError ? "error" : "note")
       << "\",\"pc\":" << d.pc << ",\"message\":\"";
    json_escape(os, d.message);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

AnalysisReport analyze(Memory& mem, std::uint32_t entry,
                       const TimingProfile& profile,
                       const AnalyzeOptions& options) {
  Analyzer analyzer(mem, entry, profile, options);
  return analyzer.run(entry);
}

void verify_or_throw(Memory& mem, std::uint32_t entry,
                     const TimingProfile& profile) {
  const AnalysisReport report = analyze(mem, entry, profile);
  if (report.ok()) return;
  std::ostringstream os;
  os << "verify_on_load[" << profile.name << "]: " << report.error_count()
     << " static diagnostic(s):";
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::kError) continue;
    os << "\n  [" << diag_kind_name(d.kind) << "] " << d.message;
  }
  fail(os.str());
}

CodeCertificate certify(Memory& mem, std::uint32_t entry,
                        const TimingProfile& profile) {
  CodeCertificate cert;
  try {
    const AnalysisReport report = analyze(mem, entry, profile);
    cert.ok = report.ok();
    if (!cert.ok) return cert;
    // Merge the (sorted) blocks into disjoint code ranges; adjacent blocks
    // fuse so a superblock can run straight-line across block boundaries.
    for (const BasicBlock& b : report.blocks) {
      if (!cert.ranges.empty() && b.start <= cert.ranges.back().second) {
        if (b.end > cert.ranges.back().second) cert.ranges.back().second = b.end;
      } else {
        cert.ranges.emplace_back(b.start, b.end);
      }
    }
    for (const HwLoopRegion& r : report.loops) cert.loop_ends.push_back(r.end);
  } catch (...) {
    cert = CodeCertificate{};  // analysis failure: nothing is certified
  }
  return cert;
}

void install_load_verifier() {
  set_program_verifier(&verify_or_throw);
  set_code_analyzer(&certify);
}

}  // namespace iw::rv::analysis
