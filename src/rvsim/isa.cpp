#include "rvsim/isa.hpp"

#include <array>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace iw::rv {

OpClass op_class(Op op) {
  switch (op) {
    case Op::kLui: case Op::kAuipc:
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli: case Op::kSrai:
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt: case Op::kSltu:
    case Op::kXor: case Op::kSrl: case Op::kSra: case Op::kOr: case Op::kAnd:
    case Op::kPClip:
    case Op::kPAbs: case Op::kPMin: case Op::kPMax:
    case Op::kPExths: case Op::kPExtbs:
      return OpClass::kAlu;
    case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
      return OpClass::kMul;
    case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
      return OpClass::kDiv;
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
    case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost:
    case Op::kFlw:
      return OpClass::kLoad;
    case Op::kSb: case Op::kSh: case Op::kSw:
    case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
    case Op::kFsw:
      return OpClass::kStore;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return OpClass::kBranch;
    case Op::kJal: case Op::kJalr:
      return OpClass::kJump;
    case Op::kCsrrw: case Op::kCsrrs:
      return OpClass::kCsr;
    case Op::kEcall:
      return OpClass::kSystem;
    case Op::kFaddS: case Op::kFsubS:
      return OpClass::kFpuAlu;
    case Op::kFmulS:
      return OpClass::kFpuMul;
    case Op::kFmaddS:
      return OpClass::kFpuMadd;
    case Op::kFdivS:
      return OpClass::kFpuDiv;
    case Op::kFcvtSW: case Op::kFcvtWS:
      return OpClass::kFpuCvt;
    case Op::kFsgnjS: case Op::kFsgnjnS: case Op::kFmvXW: case Op::kFmvWX:
      return OpClass::kFpuMove;
    case Op::kFeqS: case Op::kFltS: case Op::kFleS:
      return OpClass::kFpuCmp;
    case Op::kLpSetup: case Op::kLpSetupi:
      return OpClass::kHwloop;
    case Op::kPvDotspH: case Op::kPvSdotspH:
      return OpClass::kSimd;
    case Op::kPMac:
      return OpClass::kMac;
    case Op::kIllegal:
      break;
  }
  fail("op_class: illegal opcode");
}

bool is_xpulp(Op op) {
  switch (op) {
    case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost:
    case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
    case Op::kPMac: case Op::kPClip:
    case Op::kPAbs: case Op::kPMin: case Op::kPMax:
    case Op::kPExths: case Op::kPExtbs:
    case Op::kPvDotspH: case Op::kPvSdotspH:
    case Op::kLpSetup: case Op::kLpSetupi:
      return true;
    default:
      return false;
  }
}

bool is_fp(Op op) {
  switch (op) {
    case Op::kFlw: case Op::kFsw:
    case Op::kFaddS: case Op::kFsubS: case Op::kFmulS: case Op::kFdivS:
    case Op::kFmaddS: case Op::kFsgnjS: case Op::kFsgnjnS:
    case Op::kFcvtSW: case Op::kFcvtWS: case Op::kFmvXW: case Op::kFmvWX:
    case Op::kFeqS: case Op::kFltS: case Op::kFleS:
      return true;
    default:
      return false;
  }
}

bool writes_int_rd(Op op) {
  switch (op) {
    case Op::kLui: case Op::kAuipc: case Op::kJal: case Op::kJalr:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
    case Op::kSrai:
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt:
    case Op::kSltu: case Op::kXor: case Op::kSrl: case Op::kSra:
    case Op::kOr: case Op::kAnd:
    case Op::kCsrrw: case Op::kCsrrs:
    case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
    case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
    case Op::kFcvtWS: case Op::kFmvXW:
    case Op::kFeqS: case Op::kFltS: case Op::kFleS:
    case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost:
    case Op::kPMac: case Op::kPClip: case Op::kPAbs: case Op::kPMin:
    case Op::kPMax: case Op::kPExths: case Op::kPExtbs:
    case Op::kPvDotspH: case Op::kPvSdotspH:
      return true;
    default:
      return false;
  }
}

std::string mnemonic(Op op) {
  switch (op) {
    case Op::kIllegal: return "illegal";
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kEcall: return "ecall";
    case Op::kCsrrw: return "csrrw";
    case Op::kCsrrs: return "csrrs";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kMulhsu: return "mulhsu";
    case Op::kMulhu: return "mulhu";
    case Op::kDiv: return "div";
    case Op::kDivu: return "divu";
    case Op::kRem: return "rem";
    case Op::kRemu: return "remu";
    case Op::kFlw: return "flw";
    case Op::kFsw: return "fsw";
    case Op::kFaddS: return "fadd.s";
    case Op::kFsubS: return "fsub.s";
    case Op::kFmulS: return "fmul.s";
    case Op::kFdivS: return "fdiv.s";
    case Op::kFmaddS: return "fmadd.s";
    case Op::kFsgnjS: return "fsgnj.s";
    case Op::kFsgnjnS: return "fsgnjn.s";
    case Op::kFcvtSW: return "fcvt.s.w";
    case Op::kFcvtWS: return "fcvt.w.s";
    case Op::kFmvXW: return "fmv.x.w";
    case Op::kFmvWX: return "fmv.w.x";
    case Op::kFeqS: return "feq.s";
    case Op::kFltS: return "flt.s";
    case Op::kFleS: return "fle.s";
    case Op::kPLbPost: return "p.lb";
    case Op::kPLhPost: return "p.lh";
    case Op::kPLwPost: return "p.lw";
    case Op::kPSbPost: return "p.sb";
    case Op::kPShPost: return "p.sh";
    case Op::kPSwPost: return "p.sw";
    case Op::kPMac: return "p.mac";
    case Op::kPClip: return "p.clip";
    case Op::kPAbs: return "p.abs";
    case Op::kPMin: return "p.min";
    case Op::kPMax: return "p.max";
    case Op::kPExths: return "p.exths";
    case Op::kPExtbs: return "p.extbs";
    case Op::kPvDotspH: return "pv.dotsp.h";
    case Op::kPvSdotspH: return "pv.sdotsp.h";
    case Op::kLpSetup: return "lp.setup";
    case Op::kLpSetupi: return "lp.setupi";
  }
  return "?";
}

namespace {
constexpr std::array<const char*, 32> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
}  // namespace

std::string reg_name(std::uint8_t reg) {
  if (reg < 32) return kAbiNames[reg];
  // Built with += (not operator+) to sidestep GCC 12's spurious -Wrestrict
  // on "literal" + std::to_string(...) under -O2 (GCC PR105651).
  std::string name = "f";
  name += std::to_string(reg - 32);
  return name;
}

int parse_reg(const std::string& token) {
  if (token.size() < 2) return -1;
  if (token[0] == 'x' || token[0] == 'f') {
    bool numeric = true;
    for (std::size_t i = 1; i < token.size(); ++i) {
      if (token[i] < '0' || token[i] > '9') { numeric = false; break; }
    }
    if (numeric) {
      const int idx = std::stoi(token.substr(1));
      if (idx < 0 || idx > 31) return -1;
      return token[0] == 'x' ? idx : idx + 32;
    }
  }
  if (token == "fp") return 8;
  for (int i = 0; i < 32; ++i) {
    if (token == kAbiNames[i]) return i;
  }
  return -1;
}

std::string describe_instruction(std::uint32_t pc, const Decoded& d) {
  std::ostringstream os;
  os << "pc=0x" << std::hex << std::setw(8) << std::setfill('0') << pc << ": "
     << to_string(d);
  return os.str();
}

std::string to_string(const Decoded& d) {
  std::ostringstream os;
  os << mnemonic(d.op);
  switch (op_class(d.op)) {
    case OpClass::kLoad:
      os << ' ' << reg_name(is_fp(d.op) ? d.rd + 32 : d.rd) << ", " << d.imm << '('
         << reg_name(d.rs1) << (is_xpulp(d.op) ? "!)" : ")");
      break;
    case OpClass::kStore:
      os << ' ' << reg_name(is_fp(d.op) ? d.rs2 + 32 : d.rs2) << ", " << d.imm << '('
         << reg_name(d.rs1) << (is_xpulp(d.op) ? "!)" : ")");
      break;
    case OpClass::kBranch:
      os << ' ' << reg_name(d.rs1) << ", " << reg_name(d.rs2) << ", " << d.imm;
      break;
    case OpClass::kHwloop:
      os << ' ' << d.extra << ", "
         << (d.op == Op::kLpSetup ? reg_name(d.rs1) : std::to_string(d.imm)) << ", ...";
      break;
    default:
      os << ' ' << reg_name(d.rd) << ", " << reg_name(d.rs1) << ", "
         << reg_name(d.rs2) << " imm=" << d.imm;
      break;
  }
  return os.str();
}

}  // namespace iw::rv
