// Pre-run program-verification hook.
//
// Machine and Cluster offer an opt-in `verify_on_load` gate that statically
// checks the loaded program image before the first instruction executes. The
// checker itself lives in the iw_rvsim_analysis library (which depends on
// iw_rvsim), so the gate is wired through this process-global hook: the
// analysis library installs its verifier once
// (analysis::install_load_verifier()), and a Machine/Cluster with the gate
// enabled calls it at run() time. Running with the gate enabled but no
// verifier installed is a hard error, never a silent skip.
#pragma once

#include <cstdint>

#include "rvsim/memory.hpp"
#include "rvsim/timing.hpp"

namespace iw::rv {

/// Verifies the program in `mem` reachable from `entry` under `profile`;
/// throws iw::Error on any diagnostic.
using ProgramVerifier = void (*)(Memory& mem, std::uint32_t entry,
                                 const TimingProfile& profile);

/// Installs the process-global verifier (thread-safe, last writer wins;
/// nullptr uninstalls).
void set_program_verifier(ProgramVerifier verifier);

/// The installed verifier, or nullptr.
ProgramVerifier program_verifier();

/// Runs the installed verifier; throws if none is installed.
void run_program_verifier(Memory& mem, std::uint32_t entry,
                          const TimingProfile& profile);

}  // namespace iw::rv
