// Instruction-mix statistics for simulated runs.
//
// An InstructionHistogram accumulates per-opcode retire counts; attach one
// to a Core and it sees every instruction the core executes. The kernel
// benches use this to explain cycle differences between targets (e.g. the
// IBEX kernel retires ~2x the loop-control instructions of the RI5CY one).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rvsim/isa.hpp"

namespace iw::rv {

class InstructionHistogram {
 public:
  void record(Op op) { ++counts_[static_cast<std::size_t>(op)]; }

  std::uint64_t count(Op op) const { return counts_[static_cast<std::size_t>(op)]; }
  std::uint64_t total() const;
  /// Sum over all opcodes of one timing class.
  std::uint64_t class_count(OpClass cls) const;
  /// Fraction of retired instructions in a class (0 when empty).
  double class_fraction(OpClass cls) const;

  /// Opcodes sorted by descending count (zero-count entries omitted).
  std::vector<std::pair<Op, std::uint64_t>> sorted() const;

  /// Human-readable mix report (top `max_rows` opcodes + class summary).
  void write_report(std::ostream& os, std::size_t max_rows = 12) const;

  void clear() { counts_.fill(0); }

 private:
  std::array<std::uint64_t, kOpCount> counts_{};  // indexed by Op
};

}  // namespace iw::rv
