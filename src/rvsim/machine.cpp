#include "rvsim/machine.hpp"

#include "common/error.hpp"
#include "rvsim/trace_exec.hpp"
#include "rvsim/verify_hook.hpp"

namespace iw::rv {

namespace {

/// Env for the bulk run loop: no per-record bookkeeping beyond the
/// instruction budget, so trace records execute back to back.
struct MachineRunEnv {
  std::uint64_t budget;

  bool pre(const TraceOp&) {
    if (budget == 0) return false;
    --budget;
    return true;
  }
  bool post(int, bool, bool, std::uint32_t) { return true; }
};

}  // namespace

Machine::Machine(TimingProfile profile, std::size_t mem_bytes)
    : mem_(mem_bytes), core_(std::move(profile), mem_) {
  if (default_trace_mode()) set_trace_mode(true);
}

void Machine::set_trace_mode(bool enabled) {
  if (enabled == (tspace_ != nullptr)) return;
  if (enabled) {
    tspace_ = std::make_unique<TraceSpace>(mem_, core_.profile());
    core_.set_trace_space(tspace_.get());
  } else {
    core_.set_trace_space(nullptr);
    tspace_.reset();
  }
}

void Machine::load_program(std::span<const std::uint32_t> words, std::uint32_t base) {
  mem_.write_words(base, words);
}

RunResult Machine::run(std::uint32_t entry, std::uint64_t max_instructions) {
  if (verify_on_load_) run_program_verifier(mem_, entry, core_.profile());
  const std::uint32_t sp = static_cast<std::uint32_t>(mem_.size()) & ~15u;
  core_.reset(entry, sp);
  std::uint64_t budget = max_instructions;
  while (!core_.halted()) {
    if (budget == 0) {
      fail("Machine::run: instruction budget exhausted (runaway program?)");
    }
    if (core_.trace_active()) {
      MachineRunEnv env{budget};
      core_.run_trace(env);
      budget = env.budget;
    } else {
      --budget;
      core_.step();
    }
  }
  return RunResult{core_.cycles(), core_.instructions()};
}

}  // namespace iw::rv
