#include "rvsim/machine.hpp"

#include "common/error.hpp"
#include "rvsim/verify_hook.hpp"

namespace iw::rv {

Machine::Machine(TimingProfile profile, std::size_t mem_bytes)
    : mem_(mem_bytes), core_(std::move(profile), mem_) {}

void Machine::load_program(std::span<const std::uint32_t> words, std::uint32_t base) {
  mem_.write_words(base, words);
}

RunResult Machine::run(std::uint32_t entry, std::uint64_t max_instructions) {
  if (verify_on_load_) run_program_verifier(mem_, entry, core_.profile());
  const std::uint32_t sp = static_cast<std::uint32_t>(mem_.size()) & ~15u;
  core_.reset(entry, sp);
  std::uint64_t budget = max_instructions;
  bool halted = false;
  while (!halted) {
    if (budget == 0) {
      fail("Machine::run: instruction budget exhausted (runaway program?)");
    }
    --budget;
    halted = core_.step().halted;
  }
  return RunResult{core_.cycles(), core_.instructions()};
}

}  // namespace iw::rv
