// Single-hart executor with cycle-approximate timing.
#pragma once

#include <cstdint>
#include <memory>

#include "rvsim/isa.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/predecode.hpp"
#include "rvsim/profile_stats.hpp"
#include "rvsim/timing.hpp"

namespace iw::rv {

struct Trace;
class TraceSpace;

/// Executes instructions against a Memory and accumulates a cycle count
/// according to a TimingProfile. The cluster wraps several cores and adds
/// inter-core penalties (bank conflicts, barrier waits) via add_stall().
///
/// Each core owns a DecodeCache: instructions are decoded (and their timing
/// data resolved against the profile) once per code word, so step() is an
/// array-indexed dispatch. The cache observes memory writes, which keeps it
/// coherent across program reloads and self-modifying stores.
class Core {
 public:
  /// Description of the data-memory access performed by the last step, used
  /// by the cluster for TCDM bank arbitration.
  struct MemAccess {
    bool valid = false;
    bool is_store = false;
    std::uint32_t addr = 0;
  };

  struct StepResult {
    int cycles = 0;
    MemAccess access;
    bool halted = false;
  };

  Core(TimingProfile profile, Memory& memory, std::uint32_t hart_id = 0);
  ~Core();

  // The decode cache registers itself with the memory: not copyable.
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Resets architectural state and the cycle/instruction counters.
  void reset(std::uint32_t pc, std::uint32_t sp);

  /// Executes one instruction. Throws iw::Error on illegal instructions or
  /// instructions the profile does not support. When a compiled trace is
  /// attached, the instruction executes from its trace record (bit-identical
  /// to the interpreter path).
  StepResult step();

  /// Attaches the shared superblock trace store (nullptr = pure interpreter,
  /// the default). Not owned; must outlive the core.
  void set_trace_space(TraceSpace* tspace);
  TraceSpace* trace_space() const { return tspace_; }
  /// True when the next instruction will execute from a compiled trace.
  bool trace_active() const { return trace_ != nullptr; }
  /// How many of instructions() were executed from trace records.
  std::uint64_t trace_instructions() const { return trace_instructions_; }

  /// Runs the attached trace until the driver Env stops it, the program
  /// leaves the trace, or the trace is invalidated. Defined in
  /// trace_exec.hpp; Env is one of the Machine/Cluster/step drivers.
  template <class Env>
  void run_trace(Env& env);

  /// Folds externally computed stall cycles (bank conflicts, barriers) into
  /// this core's cycle counter.
  void add_stall(std::uint64_t cycles) { cycles_ += cycles; }

  /// Attaches an instruction-mix histogram (nullptr detaches). Not owned.
  void set_histogram(InstructionHistogram* histogram) { histogram_ = histogram; }

  bool halted() const { return halted_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t instructions() const { return instructions_; }
  /// Dynamic-penalty counters (help explain cycle totals).
  std::uint64_t taken_branches() const { return taken_branches_; }
  std::uint64_t load_use_stalls() const { return load_use_stalls_; }
  std::uint32_t pc() const { return pc_; }
  std::uint32_t hart_id() const { return hart_id_; }
  const TimingProfile& profile() const { return profile_; }
  DecodeCache& decode_cache() { return cache_; }

  std::uint32_t reg(int index) const;
  void set_reg(int index, std::uint32_t value);
  float freg(int index) const;
  void set_freg(int index, float value);

 private:
  struct HwLoop {
    std::uint32_t start = 0;
    std::uint32_t end = 0;
    std::uint32_t count = 0;
  };

  int execute(const Decoded& d, std::uint32_t& next_pc, MemAccess& access);

  /// Hardware-loop back edge: redirects `next_pc` when it hits an armed loop
  /// end (inner loop first), decrementing or retiring the loop. Shared by
  /// the interpreter epilogue and the trace executor.
  void hwloop_advance(std::uint32_t& next_pc) {
    for (auto& loop : loops_) {
      if (loop.count > 0 && next_pc == loop.end) {
        if (loop.count > 1) {
          --loop.count;
          next_pc = loop.start;
        } else {
          loop.count = 0;
        }
        break;
      }
    }
  }

  /// Control-transfer hook: consults the trace table for `target` (bumping
  /// its hotness) and attaches the trace when one exists and the armed-loop
  /// guard admits it.
  void maybe_attach(std::uint32_t target);

  /// Register write on the execute path: decode() guarantees rd < 32, so
  /// only the x0 sink needs handling.
  void write_x(std::uint8_t reg, std::uint32_t value) {
    if (reg != 0) x_[reg] = value;
  }

  TimingProfile profile_;
  Memory& mem_;
  std::uint32_t hart_id_;
  DecodeCache cache_;

  std::uint32_t x_[32] = {};
  float f_[32] = {};
  std::uint32_t pc_ = 0;
  HwLoop loops_[2];
  bool halted_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  int pending_load_reg_ = -1;
  bool prev_was_load_ = false;
  std::uint64_t taken_branches_ = 0;
  std::uint64_t load_use_stalls_ = 0;
  InstructionHistogram* histogram_ = nullptr;

  // Superblock trace execution state. `trace_` is the attached trace (next
  // instruction executes from `trace_cursor_`); `trace_dyn_` marks that the
  // cursor record was entered via a control transfer, so its stall cycles
  // must be recomputed from live state instead of the folded constants.
  TraceSpace* tspace_ = nullptr;
  std::shared_ptr<const Trace> trace_;
  std::uint32_t trace_cursor_ = 0;
  bool trace_dyn_ = true;
  std::uint64_t trace_instructions_ = 0;
};

}  // namespace iw::rv
