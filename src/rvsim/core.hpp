// Single-hart executor with cycle-approximate timing.
#pragma once

#include <cstdint>

#include "rvsim/isa.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/predecode.hpp"
#include "rvsim/profile_stats.hpp"
#include "rvsim/timing.hpp"

namespace iw::rv {

/// Executes instructions against a Memory and accumulates a cycle count
/// according to a TimingProfile. The cluster wraps several cores and adds
/// inter-core penalties (bank conflicts, barrier waits) via add_stall().
///
/// Each core owns a DecodeCache: instructions are decoded (and their timing
/// data resolved against the profile) once per code word, so step() is an
/// array-indexed dispatch. The cache observes memory writes, which keeps it
/// coherent across program reloads and self-modifying stores.
class Core {
 public:
  /// Description of the data-memory access performed by the last step, used
  /// by the cluster for TCDM bank arbitration.
  struct MemAccess {
    bool valid = false;
    bool is_store = false;
    std::uint32_t addr = 0;
  };

  struct StepResult {
    int cycles = 0;
    MemAccess access;
    bool halted = false;
  };

  Core(TimingProfile profile, Memory& memory, std::uint32_t hart_id = 0);

  // The decode cache registers itself with the memory: not copyable.
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Resets architectural state and the cycle/instruction counters.
  void reset(std::uint32_t pc, std::uint32_t sp);

  /// Executes one instruction. Throws iw::Error on illegal instructions or
  /// instructions the profile does not support.
  StepResult step();

  /// Folds externally computed stall cycles (bank conflicts, barriers) into
  /// this core's cycle counter.
  void add_stall(std::uint64_t cycles) { cycles_ += cycles; }

  /// Attaches an instruction-mix histogram (nullptr detaches). Not owned.
  void set_histogram(InstructionHistogram* histogram) { histogram_ = histogram; }

  bool halted() const { return halted_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t instructions() const { return instructions_; }
  /// Dynamic-penalty counters (help explain cycle totals).
  std::uint64_t taken_branches() const { return taken_branches_; }
  std::uint64_t load_use_stalls() const { return load_use_stalls_; }
  std::uint32_t pc() const { return pc_; }
  std::uint32_t hart_id() const { return hart_id_; }
  const TimingProfile& profile() const { return profile_; }
  DecodeCache& decode_cache() { return cache_; }

  std::uint32_t reg(int index) const;
  void set_reg(int index, std::uint32_t value);
  float freg(int index) const;
  void set_freg(int index, float value);

 private:
  struct HwLoop {
    std::uint32_t start = 0;
    std::uint32_t end = 0;
    std::uint32_t count = 0;
  };

  int execute(const Decoded& d, std::uint32_t& next_pc, MemAccess& access);

  /// Register write on the execute path: decode() guarantees rd < 32, so
  /// only the x0 sink needs handling.
  void write_x(std::uint8_t reg, std::uint32_t value) {
    if (reg != 0) x_[reg] = value;
  }

  TimingProfile profile_;
  Memory& mem_;
  std::uint32_t hart_id_;
  DecodeCache cache_;

  std::uint32_t x_[32] = {};
  float f_[32] = {};
  std::uint32_t pc_ = 0;
  HwLoop loops_[2];
  bool halted_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  int pending_load_reg_ = -1;
  bool prev_was_load_ = false;
  std::uint64_t taken_branches_ = 0;
  std::uint64_t load_use_stalls_ = 0;
  InstructionHistogram* histogram_ = nullptr;
};

}  // namespace iw::rv
