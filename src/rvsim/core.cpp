#include "rvsim/core.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "rvsim/encoding.hpp"
#include "rvsim/trace_exec.hpp"

namespace iw::rv {

using trace_detail::bits_float;
using trace_detail::fcvt_w_s;
using trace_detail::float_bits;
using trace_detail::s;
using trace_detail::u;

namespace {

/// Env for the public single-instruction step(): executes exactly one trace
/// record and captures its StepResult.
struct SingleStepEnv {
  Core::StepResult result;
  bool executed = false;

  bool pre(const TraceOp&) { return true; }
  bool post(int cycles, bool mem_valid, bool mem_is_store, std::uint32_t addr) {
    result.cycles = cycles;
    result.access.valid = mem_valid;
    result.access.is_store = mem_is_store;
    result.access.addr = addr;
    result.halted = false;  // traces never contain ecall
    executed = true;
    return false;
  }
};

}  // namespace

Core::Core(TimingProfile profile, Memory& memory, std::uint32_t hart_id)
    : profile_(std::move(profile)),
      mem_(memory),
      hart_id_(hart_id),
      cache_(profile_, memory) {}

Core::~Core() = default;

void Core::set_trace_space(TraceSpace* tspace) {
  tspace_ = tspace;
  if (tspace_ == nullptr) trace_.reset();
}

void Core::maybe_attach(std::uint32_t target) {
  const std::shared_ptr<Trace>* found = tspace_->lookup(target, cache_);
  if (found == nullptr) return;
  const Trace& tr = **found;
  // Armed-loop guard: if a live hardware loop ends inside the trace at a
  // record the compiler did not flag (the arming was invisible to the
  // analysis and to this trace), executing sequentially through that record
  // would skip the back edge — stay interpreted instead.
  const std::uint32_t len = 4u * static_cast<std::uint32_t>(tr.ops.size());
  for (const HwLoop& loop : loops_) {
    if (loop.count == 0) continue;
    const std::uint32_t off = loop.end - tr.start;  // wraps when end < start
    if (off >= 4u && off <= len &&
        (tr.ops[(off >> 2) - 1].flags & TraceOp::kMaybeLoopEnd) == 0) {
      return;
    }
  }
  trace_ = *found;
  trace_cursor_ = 0;
  trace_dyn_ = true;
}

void Core::reset(std::uint32_t pc, std::uint32_t sp) {
  for (auto& r : x_) r = 0;
  for (auto& r : f_) r = 0.0f;
  x_[2] = sp;
  pc_ = pc;
  loops_[0] = loops_[1] = HwLoop{};
  halted_ = false;
  cycles_ = 0;
  instructions_ = 0;
  pending_load_reg_ = -1;
  prev_was_load_ = false;
  taken_branches_ = 0;
  load_use_stalls_ = 0;
  trace_.reset();
  trace_cursor_ = 0;
  trace_dyn_ = true;
  trace_instructions_ = 0;
  if (tspace_ != nullptr) tspace_->set_entry(pc);
}

std::uint32_t Core::reg(int index) const {
  ensure(index >= 0 && index < 32, "Core::reg index");
  return x_[index];
}

void Core::set_reg(int index, std::uint32_t value) {
  ensure(index >= 0 && index < 32, "Core::set_reg index");
  if (index != 0) x_[index] = value;
}

float Core::freg(int index) const {
  ensure(index >= 0 && index < 32, "Core::freg index");
  return f_[index];
}

void Core::set_freg(int index, float value) {
  ensure(index >= 0 && index < 32, "Core::set_freg index");
  f_[index] = value;
}

Core::StepResult Core::step() {
  if (halted_) fail("Core::step on halted core");
  if (trace_ != nullptr) {
    SingleStepEnv env;
    run_trace(env);
    if (env.executed) return env.result;
    // The trace was invalidated before executing anything: interpret.
  }
  const DecodedEx& e = cache_.entry(pc_);
  if (e.status != DecodeCache::kOk) cache_.raise_unsupported(e, pc_);

  int cycles = e.base_cost;

  // Load-use stall: the previous instruction loaded a register this one reads.
  if (pending_load_reg_ >= 0) {
    for (const std::int16_t r : e.reads) {
      if (r == pending_load_reg_) {
        cycles += profile_.load_use_stall;
        ++load_use_stalls_;
        break;
      }
    }
  }
  // Back-to-back memory-access pipelining (Cortex-M style): load_seq_extra is
  // nonzero only for loads.
  if (prev_was_load_) cycles += e.load_seq_extra;

  const std::uint32_t seq_pc = pc_ + 4;
  std::uint32_t next_pc = seq_pc;
  MemAccess access;
  cycles += execute(e.d, next_pc, access);

  // Hardware-loop handling: zero-overhead back edge. Inner loop (0) first.
  hwloop_advance(next_pc);

  pending_load_reg_ = e.load_dest;
  prev_was_load_ = e.is_load;

  pc_ = next_pc;
  cycles_ += static_cast<std::uint64_t>(cycles);
  ++instructions_;
  if (histogram_ != nullptr) histogram_->record(e.d.op);

  // Control transfers feed the trace table: hot targets compile and attach.
  if (tspace_ != nullptr && next_pc != seq_pc && !halted_) maybe_attach(next_pc);

  StepResult result;
  result.cycles = cycles;
  result.access = access;
  result.halted = halted_;
  return result;
}

int Core::execute(const Decoded& d, std::uint32_t& next_pc, MemAccess& access) {
  int extra = 0;
  const auto rd_write = [this, &d](std::uint32_t v) { write_x(d.rd, v); };
  const std::uint32_t rs1 = x_[d.rs1];
  const std::uint32_t rs2 = x_[d.rs2];

  const auto mem_read = [&](std::uint32_t addr) {
    access.valid = true;
    access.is_store = false;
    access.addr = addr;
  };
  const auto mem_write = [&](std::uint32_t addr) {
    access.valid = true;
    access.is_store = true;
    access.addr = addr;
  };
  const auto branch = [&](bool taken) {
    if (taken) {
      next_pc = pc_ + u(d.imm);
      extra += profile_.branch_taken_extra;
      ++taken_branches_;
    }
  };

  switch (d.op) {
    case Op::kLui: rd_write(u(d.imm) << 12); break;
    case Op::kAuipc: rd_write(pc_ + (u(d.imm) << 12)); break;
    case Op::kJal:
      rd_write(pc_ + 4);
      next_pc = pc_ + u(d.imm);
      break;
    case Op::kJalr:
      rd_write(pc_ + 4);
      next_pc = (rs1 + u(d.imm)) & ~1u;
      break;
    case Op::kBeq: branch(rs1 == rs2); break;
    case Op::kBne: branch(rs1 != rs2); break;
    case Op::kBlt: branch(s(rs1) < s(rs2)); break;
    case Op::kBge: branch(s(rs1) >= s(rs2)); break;
    case Op::kBltu: branch(rs1 < rs2); break;
    case Op::kBgeu: branch(rs1 >= rs2); break;
    case Op::kLb: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_read(a);
      rd_write(u(static_cast<std::int8_t>(mem_.load8(a))));
      break;
    }
    case Op::kLh: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_read(a);
      rd_write(u(static_cast<std::int16_t>(mem_.load16(a))));
      break;
    }
    case Op::kLw: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_read(a);
      rd_write(mem_.load32(a));
      break;
    }
    case Op::kLbu: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_read(a);
      rd_write(mem_.load8(a));
      break;
    }
    case Op::kLhu: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_read(a);
      rd_write(mem_.load16(a));
      break;
    }
    case Op::kSb: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_write(a);
      mem_.store8(a, static_cast<std::uint8_t>(rs2));
      break;
    }
    case Op::kSh: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_write(a);
      mem_.store16(a, static_cast<std::uint16_t>(rs2));
      break;
    }
    case Op::kSw: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_write(a);
      mem_.store32(a, rs2);
      break;
    }
    // Post-increment accesses use the *pre-increment* address and then bump
    // the base register by the immediate.
    case Op::kPLbPost: {
      mem_read(rs1);
      rd_write(u(static_cast<std::int8_t>(mem_.load8(rs1))));
      write_x(d.rs1, rs1 + u(d.imm));
      break;
    }
    case Op::kPLhPost: {
      mem_read(rs1);
      rd_write(u(static_cast<std::int16_t>(mem_.load16(rs1))));
      write_x(d.rs1, rs1 + u(d.imm));
      break;
    }
    case Op::kPLwPost: {
      mem_read(rs1);
      rd_write(mem_.load32(rs1));
      write_x(d.rs1, rs1 + u(d.imm));
      break;
    }
    case Op::kPSbPost:
      mem_write(rs1);
      mem_.store8(rs1, static_cast<std::uint8_t>(rs2));
      write_x(d.rs1, rs1 + u(d.imm));
      break;
    case Op::kPShPost:
      mem_write(rs1);
      mem_.store16(rs1, static_cast<std::uint16_t>(rs2));
      write_x(d.rs1, rs1 + u(d.imm));
      break;
    case Op::kPSwPost:
      mem_write(rs1);
      mem_.store32(rs1, rs2);
      write_x(d.rs1, rs1 + u(d.imm));
      break;
    case Op::kAddi: rd_write(rs1 + u(d.imm)); break;
    case Op::kSlti: rd_write(s(rs1) < d.imm ? 1 : 0); break;
    case Op::kSltiu: rd_write(rs1 < u(d.imm) ? 1 : 0); break;
    case Op::kXori: rd_write(rs1 ^ u(d.imm)); break;
    case Op::kOri: rd_write(rs1 | u(d.imm)); break;
    case Op::kAndi: rd_write(rs1 & u(d.imm)); break;
    case Op::kSlli: rd_write(rs1 << (d.imm & 31)); break;
    case Op::kSrli: rd_write(rs1 >> (d.imm & 31)); break;
    case Op::kSrai: rd_write(u(s(rs1) >> (d.imm & 31))); break;
    case Op::kAdd: rd_write(rs1 + rs2); break;
    case Op::kSub: rd_write(rs1 - rs2); break;
    case Op::kSll: rd_write(rs1 << (rs2 & 31)); break;
    case Op::kSlt: rd_write(s(rs1) < s(rs2) ? 1 : 0); break;
    case Op::kSltu: rd_write(rs1 < rs2 ? 1 : 0); break;
    case Op::kXor: rd_write(rs1 ^ rs2); break;
    case Op::kSrl: rd_write(rs1 >> (rs2 & 31)); break;
    case Op::kSra: rd_write(u(s(rs1) >> (rs2 & 31))); break;
    case Op::kOr: rd_write(rs1 | rs2); break;
    case Op::kAnd: rd_write(rs1 & rs2); break;
    case Op::kMul: rd_write(rs1 * rs2); break;
    case Op::kMulh:
      rd_write(static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(s(rs1)) * s(rs2)) >> 32));
      break;
    case Op::kMulhsu:
      rd_write(static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(s(rs1)) * static_cast<std::uint64_t>(rs2)) >> 32));
      break;
    case Op::kMulhu:
      rd_write(static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(rs1) * rs2) >> 32));
      break;
    case Op::kDiv:
      if (rs2 == 0) rd_write(~0u);
      else if (s(rs1) == std::numeric_limits<std::int32_t>::min() && s(rs2) == -1) rd_write(rs1);
      else rd_write(u(s(rs1) / s(rs2)));
      break;
    case Op::kDivu: rd_write(rs2 == 0 ? ~0u : rs1 / rs2); break;
    case Op::kRem:
      if (rs2 == 0) rd_write(rs1);
      else if (s(rs1) == std::numeric_limits<std::int32_t>::min() && s(rs2) == -1) rd_write(0);
      else rd_write(u(s(rs1) % s(rs2)));
      break;
    case Op::kRemu: rd_write(rs2 == 0 ? rs1 : rs1 % rs2); break;
    case Op::kEcall: halted_ = true; break;
    case Op::kCsrrw: case Op::kCsrrs: {
      std::uint32_t value = 0;
      if (d.extra == kCsrMhartid) value = hart_id_;
      else if (d.extra == kCsrMcycle) value = static_cast<std::uint32_t>(cycles_);
      rd_write(value);
      break;
    }
    case Op::kPMac:
      rd_write(x_[d.rd] + rs1 * rs2);
      break;
    case Op::kPClip: {
      const std::int32_t hi = (std::int32_t{1} << (d.imm - 1)) - 1;
      const std::int32_t lo = -(std::int32_t{1} << (d.imm - 1));
      const std::int32_t v = s(rs1);
      rd_write(u(v < lo ? lo : (v > hi ? hi : v)));
      break;
    }
    case Op::kPAbs: rd_write(s(rs1) < 0 ? static_cast<std::uint32_t>(0) - rs1 : rs1); break;
    case Op::kPMin: rd_write(s(rs1) < s(rs2) ? rs1 : rs2); break;
    case Op::kPMax: rd_write(s(rs1) > s(rs2) ? rs1 : rs2); break;
    case Op::kPExths: rd_write(u(static_cast<std::int16_t>(rs1 & 0xFFFF))); break;
    case Op::kPExtbs: rd_write(u(static_cast<std::int8_t>(rs1 & 0xFF))); break;
    case Op::kPvDotspH: case Op::kPvSdotspH: {
      const std::int32_t lo = static_cast<std::int16_t>(rs1 & 0xFFFF) *
                              static_cast<std::int16_t>(rs2 & 0xFFFF);
      const std::int32_t hi = static_cast<std::int16_t>(rs1 >> 16) *
                              static_cast<std::int16_t>(rs2 >> 16);
      const std::int32_t acc = (d.op == Op::kPvSdotspH) ? s(x_[d.rd]) : 0;
      rd_write(u(acc + lo + hi));
      break;
    }
    case Op::kLpSetup: {
      HwLoop& loop = loops_[d.extra & 1];
      loop.start = pc_ + 4;
      loop.end = pc_ + 4 * static_cast<std::uint32_t>(d.imm2);
      loop.count = rs1 == 0 ? 1 : rs1;
      break;
    }
    case Op::kLpSetupi: {
      HwLoop& loop = loops_[d.extra & 1];
      loop.start = pc_ + 4;
      loop.end = pc_ + 4 * static_cast<std::uint32_t>(d.imm2);
      loop.count = static_cast<std::uint32_t>(d.imm);
      break;
    }
    case Op::kFlw: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_read(a);
      f_[d.rd] = bits_float(mem_.load32(a));
      break;
    }
    case Op::kFsw: {
      const std::uint32_t a = rs1 + u(d.imm);
      mem_write(a);
      mem_.store32(a, float_bits(f_[d.rs2]));
      break;
    }
    case Op::kFaddS: f_[d.rd] = f_[d.rs1] + f_[d.rs2]; break;
    case Op::kFsubS: f_[d.rd] = f_[d.rs1] - f_[d.rs2]; break;
    case Op::kFmulS: f_[d.rd] = f_[d.rs1] * f_[d.rs2]; break;
    case Op::kFdivS: f_[d.rd] = f_[d.rs1] / f_[d.rs2]; break;
    case Op::kFmaddS: f_[d.rd] = f_[d.rs1] * f_[d.rs2] + f_[d.rs3]; break;
    case Op::kFsgnjS:
      f_[d.rd] = bits_float((float_bits(f_[d.rs1]) & 0x7FFFFFFF) |
                            (float_bits(f_[d.rs2]) & 0x80000000));
      break;
    case Op::kFsgnjnS:
      f_[d.rd] = bits_float((float_bits(f_[d.rs1]) & 0x7FFFFFFF) |
                            (~float_bits(f_[d.rs2]) & 0x80000000));
      break;
    case Op::kFcvtSW: f_[d.rd] = static_cast<float>(s(rs1)); break;
    case Op::kFcvtWS: rd_write(u(fcvt_w_s(f_[d.rs1]))); break;
    case Op::kFmvXW: rd_write(float_bits(f_[d.rs1])); break;
    case Op::kFmvWX: f_[d.rd] = bits_float(rs1); break;
    case Op::kFeqS: rd_write(f_[d.rs1] == f_[d.rs2] ? 1 : 0); break;
    case Op::kFltS: rd_write(f_[d.rs1] < f_[d.rs2] ? 1 : 0); break;
    case Op::kFleS: rd_write(f_[d.rs1] <= f_[d.rs2] ? 1 : 0); break;
    case Op::kIllegal: fail("Core::execute: illegal instruction");
  }
  return extra;
}

}  // namespace iw::rv
