#include "rvsim/memory.hpp"

#include <cstring>

#include "common/error.hpp"

namespace iw::rv {

Memory::Memory(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

void Memory::check(std::uint32_t addr, std::uint32_t size) const {
  ensure(static_cast<std::uint64_t>(addr) + size <= bytes_.size(),
         "Memory access out of bounds");
  ensure(addr % size == 0, "Misaligned memory access");
}

std::uint8_t Memory::load8(std::uint32_t addr) const {
  check(addr, 1);
  return bytes_[addr];
}

std::uint16_t Memory::load16(std::uint32_t addr) const {
  check(addr, 2);
  std::uint16_t v;
  std::memcpy(&v, bytes_.data() + addr, 2);
  return v;
}

std::uint32_t Memory::load32(std::uint32_t addr) const {
  check(addr, 4);
  std::uint32_t v;
  std::memcpy(&v, bytes_.data() + addr, 4);
  return v;
}

void Memory::store8(std::uint32_t addr, std::uint8_t value) {
  check(addr, 1);
  bytes_[addr] = value;
}

void Memory::store16(std::uint32_t addr, std::uint16_t value) {
  check(addr, 2);
  std::memcpy(bytes_.data() + addr, &value, 2);
}

void Memory::store32(std::uint32_t addr, std::uint32_t value) {
  check(addr, 4);
  std::memcpy(bytes_.data() + addr, &value, 4);
}

void Memory::write_block(std::uint32_t addr, std::span<const std::uint8_t> data) {
  ensure(static_cast<std::uint64_t>(addr) + data.size() <= bytes_.size(),
         "Memory::write_block out of bounds");
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

void Memory::write_words(std::uint32_t addr, std::span<const std::uint32_t> words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    store32(addr + static_cast<std::uint32_t>(4 * i), words[i]);
  }
}

void Memory::write_words(std::uint32_t addr, std::span<const std::int32_t> words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    store32(addr + static_cast<std::uint32_t>(4 * i), static_cast<std::uint32_t>(words[i]));
  }
}

std::vector<std::int32_t> Memory::read_words_i32(std::uint32_t addr, std::size_t count) const {
  std::vector<std::int32_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::int32_t>(load32(addr + static_cast<std::uint32_t>(4 * i)));
  }
  return out;
}

std::vector<float> Memory::read_words_f32(std::uint32_t addr, std::size_t count) const {
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t bits = load32(addr + static_cast<std::uint32_t>(4 * i));
    float f;
    std::memcpy(&f, &bits, 4);
    out[i] = f;
  }
  return out;
}

void Memory::write_words_f32(std::uint32_t addr, std::span<const float> words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &words[i], 4);
    store32(addr + static_cast<std::uint32_t>(4 * i), bits);
  }
}

}  // namespace iw::rv
