#include "rvsim/memory.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace iw::rv {

Memory::Memory(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

void Memory::write_block(std::uint32_t addr, std::span<const std::uint8_t> data) {
  ensure(static_cast<std::uint64_t>(addr) + data.size() <= bytes_.size(),
         "Memory::write_block out of bounds");
  if (data.empty()) return;
  std::memcpy(bytes_.data() + addr, data.data(), data.size());
  notify_write(addr, static_cast<std::uint32_t>(data.size()));
}

void Memory::write_words(std::uint32_t addr, std::span<const std::uint32_t> words) {
  check_words(addr, words.size());
  if (words.empty()) return;
  std::memcpy(bytes_.data() + addr, words.data(), 4 * words.size());
  notify_write(addr, static_cast<std::uint32_t>(4 * words.size()));
}

void Memory::write_words(std::uint32_t addr, std::span<const std::int32_t> words) {
  check_words(addr, words.size());
  if (words.empty()) return;
  std::memcpy(bytes_.data() + addr, words.data(), 4 * words.size());
  notify_write(addr, static_cast<std::uint32_t>(4 * words.size()));
}

std::vector<std::int32_t> Memory::read_words_i32(std::uint32_t addr, std::size_t count) const {
  check_words(addr, count);
  std::vector<std::int32_t> out(count);
  if (count > 0) std::memcpy(out.data(), bytes_.data() + addr, 4 * count);
  return out;
}

std::vector<float> Memory::read_words_f32(std::uint32_t addr, std::size_t count) const {
  check_words(addr, count);
  std::vector<float> out(count);
  if (count > 0) std::memcpy(out.data(), bytes_.data() + addr, 4 * count);
  return out;
}

void Memory::write_words_f32(std::uint32_t addr, std::span<const float> words) {
  check_words(addr, words.size());
  if (words.empty()) return;
  std::memcpy(bytes_.data() + addr, words.data(), 4 * words.size());
  notify_write(addr, static_cast<std::uint32_t>(4 * words.size()));
}

void Memory::add_write_observer(WriteObserver* observer, std::uint32_t lo,
                                std::uint32_t hi) {
  ensure(observer != nullptr, "Memory::add_write_observer: null observer");
  watches_.push_back(Watch{observer, lo, hi});
  watch_hi_ = std::max(watch_hi_, hi);
}

void Memory::remove_write_observer(WriteObserver* observer) {
  std::erase_if(watches_, [observer](const Watch& w) { return w.observer == observer; });
  watch_hi_ = 0;
  for (const Watch& w : watches_) watch_hi_ = std::max(watch_hi_, w.hi);
}

void Memory::set_observed_range(WriteObserver* observer, std::uint32_t lo,
                                std::uint32_t hi) {
  watch_hi_ = 0;
  for (Watch& w : watches_) {
    if (w.observer == observer) {
      w.lo = lo;
      w.hi = hi;
    }
    watch_hi_ = std::max(watch_hi_, w.hi);
  }
}

void Memory::dispatch_write(std::uint32_t addr, std::uint32_t len) {
  for (const Watch& w : watches_) {
    if (addr < w.hi && addr + len > w.lo) w.observer->on_write(addr, len);
  }
}

}  // namespace iw::rv
