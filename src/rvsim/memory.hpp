// Byte-addressable simulated memory with bounds checking.
//
// The scalar load/store accessors are inlined here because they sit on the
// interpreter's per-instruction hot path. Stores additionally notify
// registered write observers (the decode caches) when they overlap a watched
// range, which costs a single compare on the common no-overlap path.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace iw::rv {

class Memory {
 public:
  /// Gets told about every store overlapping its watched range; used by the
  /// decode cache to invalidate stale pre-decoded instructions.
  class WriteObserver {
   public:
    virtual ~WriteObserver() = default;
    /// `addr`/`len` describe the byte range just written.
    virtual void on_write(std::uint32_t addr, std::uint32_t len) = 0;
  };

  explicit Memory(std::size_t size_bytes);

  std::size_t size() const { return bytes_.size(); }

  std::uint8_t load8(std::uint32_t addr) const {
    check(addr, 1);
    return bytes_[addr];
  }
  std::uint16_t load16(std::uint32_t addr) const {
    check(addr, 2);
    std::uint16_t v;
    std::memcpy(&v, bytes_.data() + addr, 2);
    return v;
  }
  std::uint32_t load32(std::uint32_t addr) const {
    check(addr, 4);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + addr, 4);
    return v;
  }
  void store8(std::uint32_t addr, std::uint8_t value) {
    check(addr, 1);
    bytes_[addr] = value;
    notify_write(addr, 1);
  }
  void store16(std::uint32_t addr, std::uint16_t value) {
    check(addr, 2);
    std::memcpy(bytes_.data() + addr, &value, 2);
    notify_write(addr, 2);
  }
  void store32(std::uint32_t addr, std::uint32_t value) {
    check(addr, 4);
    std::memcpy(bytes_.data() + addr, &value, 4);
    notify_write(addr, 4);
  }

  /// Bulk copies used by loaders and kernel runners: one range check plus a
  /// single block copy instead of a checked store per word.
  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data);
  void write_words(std::uint32_t addr, std::span<const std::uint32_t> words);
  void write_words(std::uint32_t addr, std::span<const std::int32_t> words);
  std::vector<std::int32_t> read_words_i32(std::uint32_t addr, std::size_t count) const;
  std::vector<float> read_words_f32(std::uint32_t addr, std::size_t count) const;
  void write_words_f32(std::uint32_t addr, std::span<const float> words);

  /// Registers `observer` for stores overlapping `[lo, hi)`. The observer is
  /// not owned and must outlive the registration.
  void add_write_observer(WriteObserver* observer, std::uint32_t lo, std::uint32_t hi);
  void remove_write_observer(WriteObserver* observer);
  /// Replaces the watched range of an already registered observer.
  void set_observed_range(WriteObserver* observer, std::uint32_t lo, std::uint32_t hi);

 private:
  struct Watch {
    WriteObserver* observer;
    std::uint32_t lo;
    std::uint32_t hi;
  };

  void check(std::uint32_t addr, std::uint32_t size) const {
    if (static_cast<std::uint64_t>(addr) + size > bytes_.size()) {
      fail("Memory access out of bounds");
    }
    if (addr % size != 0) fail("Misaligned memory access");
  }
  /// Word-aligned variant for the bulk word accessors.
  void check_words(std::uint32_t addr, std::size_t count) const {
    if (static_cast<std::uint64_t>(addr) + 4 * static_cast<std::uint64_t>(count) >
        bytes_.size()) {
      fail("Memory access out of bounds");
    }
    if (addr % 4 != 0) fail("Misaligned memory access");
  }
  void notify_write(std::uint32_t addr, std::uint32_t len) {
    // watch_hi_ is 0 when nothing is observed, so this is one compare on the
    // store fast path.
    if (addr < watch_hi_) dispatch_write(addr, len);
  }
  void dispatch_write(std::uint32_t addr, std::uint32_t len);

  std::vector<std::uint8_t> bytes_;
  std::vector<Watch> watches_;
  std::uint32_t watch_hi_ = 0;  // max over watches_[i].hi
};

}  // namespace iw::rv
