// Byte-addressable simulated memory with bounds checking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace iw::rv {

class Memory {
 public:
  explicit Memory(std::size_t size_bytes);

  std::size_t size() const { return bytes_.size(); }

  std::uint8_t load8(std::uint32_t addr) const;
  std::uint16_t load16(std::uint32_t addr) const;
  std::uint32_t load32(std::uint32_t addr) const;
  void store8(std::uint32_t addr, std::uint8_t value);
  void store16(std::uint32_t addr, std::uint16_t value);
  void store32(std::uint32_t addr, std::uint32_t value);

  /// Bulk copies used by loaders and kernel runners.
  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data);
  void write_words(std::uint32_t addr, std::span<const std::uint32_t> words);
  void write_words(std::uint32_t addr, std::span<const std::int32_t> words);
  std::vector<std::int32_t> read_words_i32(std::uint32_t addr, std::size_t count) const;
  std::vector<float> read_words_f32(std::uint32_t addr, std::size_t count) const;
  void write_words_f32(std::uint32_t addr, std::span<const float> words);

 private:
  void check(std::uint32_t addr, std::uint32_t size) const;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace iw::rv
