#include "rvsim/encoding.hpp"

#include "common/error.hpp"

namespace iw::rv {

namespace {

constexpr std::uint32_t kOpLoad = 0x03;
constexpr std::uint32_t kOpLoadFp = 0x07;
constexpr std::uint32_t kOpCustom0 = 0x0B;
constexpr std::uint32_t kOpImm = 0x13;
constexpr std::uint32_t kOpAuipc = 0x17;
constexpr std::uint32_t kOpStore = 0x23;
constexpr std::uint32_t kOpStoreFp = 0x27;
constexpr std::uint32_t kOpCustom1 = 0x2B;
constexpr std::uint32_t kOpOp = 0x33;
constexpr std::uint32_t kOpLui = 0x37;
constexpr std::uint32_t kOpMadd = 0x43;
constexpr std::uint32_t kOpFp = 0x53;
constexpr std::uint32_t kOpBranch = 0x63;
constexpr std::uint32_t kOpJalr = 0x67;
constexpr std::uint32_t kOpJal = 0x6F;
constexpr std::uint32_t kOpSystem = 0x73;

void check_range(std::int64_t v, std::int64_t lo, std::int64_t hi, const char* what) {
  if (v < lo || v > hi) fail(std::string("encode: immediate out of range for ") + what);
}

std::uint32_t r_type(std::uint32_t f7, std::uint8_t rs2, std::uint8_t rs1,
                     std::uint32_t f3, std::uint8_t rd, std::uint32_t opcode) {
  return (f7 << 25) | (std::uint32_t{rs2} << 20) | (std::uint32_t{rs1} << 15) |
         (f3 << 12) | (std::uint32_t{rd} << 7) | opcode;
}

std::uint32_t i_type(std::int32_t imm, std::uint8_t rs1, std::uint32_t f3,
                     std::uint8_t rd, std::uint32_t opcode, const char* what) {
  check_range(imm, -2048, 2047, what);
  return ((static_cast<std::uint32_t>(imm) & 0xFFF) << 20) |
         (std::uint32_t{rs1} << 15) | (f3 << 12) | (std::uint32_t{rd} << 7) | opcode;
}

std::uint32_t s_type(std::int32_t imm, std::uint8_t rs2, std::uint8_t rs1,
                     std::uint32_t f3, std::uint32_t opcode, const char* what) {
  check_range(imm, -2048, 2047, what);
  const std::uint32_t u = static_cast<std::uint32_t>(imm) & 0xFFF;
  return ((u >> 5) << 25) | (std::uint32_t{rs2} << 20) | (std::uint32_t{rs1} << 15) |
         (f3 << 12) | ((u & 0x1F) << 7) | opcode;
}

std::uint32_t b_type(std::int32_t imm, std::uint8_t rs2, std::uint8_t rs1,
                     std::uint32_t f3, const char* what) {
  check_range(imm, -4096, 4094, what);
  if (imm & 1) fail("encode: branch offset must be even");
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3F) << 25) |
         (std::uint32_t{rs2} << 20) | (std::uint32_t{rs1} << 15) | (f3 << 12) |
         (((u >> 1) & 0xF) << 8) | (((u >> 11) & 1) << 7) | kOpBranch;
}

std::uint32_t u_type(std::int32_t imm, std::uint8_t rd, std::uint32_t opcode) {
  // imm is the upper-20-bit payload (already shifted right by 12).
  return (static_cast<std::uint32_t>(imm) << 12) | (std::uint32_t{rd} << 7) | opcode;
}

std::uint32_t j_type(std::int32_t imm, std::uint8_t rd) {
  check_range(imm, -(1 << 20), (1 << 20) - 2, "jal");
  if (imm & 1) fail("encode: jal offset must be even");
  const std::uint32_t u = static_cast<std::uint32_t>(imm);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3FF) << 21) |
         (((u >> 11) & 1) << 20) | (((u >> 12) & 0xFF) << 12) |
         (std::uint32_t{rd} << 7) | kOpJal;
}

std::uint32_t fp_op(std::uint32_t f7, const Decoded& d, std::uint32_t f3 = 0) {
  return r_type(f7, d.rs2, d.rs1, f3, d.rd, kOpFp);
}

}  // namespace

std::uint32_t encode(const Decoded& d) {
  switch (d.op) {
    case Op::kLui: return u_type(d.imm, d.rd, kOpLui);
    case Op::kAuipc: return u_type(d.imm, d.rd, kOpAuipc);
    case Op::kJal: return j_type(d.imm, d.rd);
    case Op::kJalr: return i_type(d.imm, d.rs1, 0, d.rd, kOpJalr, "jalr");
    case Op::kBeq: return b_type(d.imm, d.rs2, d.rs1, 0, "beq");
    case Op::kBne: return b_type(d.imm, d.rs2, d.rs1, 1, "bne");
    case Op::kBlt: return b_type(d.imm, d.rs2, d.rs1, 4, "blt");
    case Op::kBge: return b_type(d.imm, d.rs2, d.rs1, 5, "bge");
    case Op::kBltu: return b_type(d.imm, d.rs2, d.rs1, 6, "bltu");
    case Op::kBgeu: return b_type(d.imm, d.rs2, d.rs1, 7, "bgeu");
    case Op::kLb: return i_type(d.imm, d.rs1, 0, d.rd, kOpLoad, "lb");
    case Op::kLh: return i_type(d.imm, d.rs1, 1, d.rd, kOpLoad, "lh");
    case Op::kLw: return i_type(d.imm, d.rs1, 2, d.rd, kOpLoad, "lw");
    case Op::kLbu: return i_type(d.imm, d.rs1, 4, d.rd, kOpLoad, "lbu");
    case Op::kLhu: return i_type(d.imm, d.rs1, 5, d.rd, kOpLoad, "lhu");
    case Op::kSb: return s_type(d.imm, d.rs2, d.rs1, 0, kOpStore, "sb");
    case Op::kSh: return s_type(d.imm, d.rs2, d.rs1, 1, kOpStore, "sh");
    case Op::kSw: return s_type(d.imm, d.rs2, d.rs1, 2, kOpStore, "sw");
    case Op::kAddi: return i_type(d.imm, d.rs1, 0, d.rd, kOpImm, "addi");
    case Op::kSlti: return i_type(d.imm, d.rs1, 2, d.rd, kOpImm, "slti");
    case Op::kSltiu: return i_type(d.imm, d.rs1, 3, d.rd, kOpImm, "sltiu");
    case Op::kXori: return i_type(d.imm, d.rs1, 4, d.rd, kOpImm, "xori");
    case Op::kOri: return i_type(d.imm, d.rs1, 6, d.rd, kOpImm, "ori");
    case Op::kAndi: return i_type(d.imm, d.rs1, 7, d.rd, kOpImm, "andi");
    case Op::kSlli:
      check_range(d.imm, 0, 31, "slli");
      return r_type(0x00, static_cast<std::uint8_t>(d.imm), d.rs1, 1, d.rd, kOpImm);
    case Op::kSrli:
      check_range(d.imm, 0, 31, "srli");
      return r_type(0x00, static_cast<std::uint8_t>(d.imm), d.rs1, 5, d.rd, kOpImm);
    case Op::kSrai:
      check_range(d.imm, 0, 31, "srai");
      return r_type(0x20, static_cast<std::uint8_t>(d.imm), d.rs1, 5, d.rd, kOpImm);
    case Op::kAdd: return r_type(0x00, d.rs2, d.rs1, 0, d.rd, kOpOp);
    case Op::kSub: return r_type(0x20, d.rs2, d.rs1, 0, d.rd, kOpOp);
    case Op::kSll: return r_type(0x00, d.rs2, d.rs1, 1, d.rd, kOpOp);
    case Op::kSlt: return r_type(0x00, d.rs2, d.rs1, 2, d.rd, kOpOp);
    case Op::kSltu: return r_type(0x00, d.rs2, d.rs1, 3, d.rd, kOpOp);
    case Op::kXor: return r_type(0x00, d.rs2, d.rs1, 4, d.rd, kOpOp);
    case Op::kSrl: return r_type(0x00, d.rs2, d.rs1, 5, d.rd, kOpOp);
    case Op::kSra: return r_type(0x20, d.rs2, d.rs1, 5, d.rd, kOpOp);
    case Op::kOr: return r_type(0x00, d.rs2, d.rs1, 6, d.rd, kOpOp);
    case Op::kAnd: return r_type(0x00, d.rs2, d.rs1, 7, d.rd, kOpOp);
    case Op::kMul: return r_type(0x01, d.rs2, d.rs1, 0, d.rd, kOpOp);
    case Op::kMulh: return r_type(0x01, d.rs2, d.rs1, 1, d.rd, kOpOp);
    case Op::kMulhsu: return r_type(0x01, d.rs2, d.rs1, 2, d.rd, kOpOp);
    case Op::kMulhu: return r_type(0x01, d.rs2, d.rs1, 3, d.rd, kOpOp);
    case Op::kDiv: return r_type(0x01, d.rs2, d.rs1, 4, d.rd, kOpOp);
    case Op::kDivu: return r_type(0x01, d.rs2, d.rs1, 5, d.rd, kOpOp);
    case Op::kRem: return r_type(0x01, d.rs2, d.rs1, 6, d.rd, kOpOp);
    case Op::kRemu: return r_type(0x01, d.rs2, d.rs1, 7, d.rd, kOpOp);
    case Op::kEcall: return kOpSystem;
    case Op::kCsrrw:
      return ((d.extra & 0xFFF) << 20) | (std::uint32_t{d.rs1} << 15) | (1u << 12) |
             (std::uint32_t{d.rd} << 7) | kOpSystem;
    case Op::kCsrrs:
      return ((d.extra & 0xFFF) << 20) | (std::uint32_t{d.rs1} << 15) | (2u << 12) |
             (std::uint32_t{d.rd} << 7) | kOpSystem;
    case Op::kFlw: return i_type(d.imm, d.rs1, 2, d.rd, kOpLoadFp, "flw");
    case Op::kFsw: return s_type(d.imm, d.rs2, d.rs1, 2, kOpStoreFp, "fsw");
    case Op::kFaddS: return fp_op(0x00, d);
    case Op::kFsubS: return fp_op(0x04, d);
    case Op::kFmulS: return fp_op(0x08, d);
    case Op::kFdivS: return fp_op(0x0C, d);
    case Op::kFsgnjS: return fp_op(0x10, d, 0);
    case Op::kFsgnjnS: return fp_op(0x10, d, 1);
    case Op::kFmaddS:
      return (std::uint32_t{d.rs3} << 27) | (std::uint32_t{d.rs2} << 20) |
             (std::uint32_t{d.rs1} << 15) | (std::uint32_t{d.rd} << 7) | kOpMadd;
    case Op::kFcvtSW: return r_type(0x68, 0, d.rs1, 0, d.rd, kOpFp);
    case Op::kFcvtWS: return r_type(0x60, 0, d.rs1, 0, d.rd, kOpFp);
    case Op::kFmvXW: return r_type(0x70, 0, d.rs1, 0, d.rd, kOpFp);
    case Op::kFmvWX: return r_type(0x78, 0, d.rs1, 0, d.rd, kOpFp);
    case Op::kFeqS: return fp_op(0x50, d, 2);
    case Op::kFltS: return fp_op(0x50, d, 1);
    case Op::kFleS: return fp_op(0x50, d, 0);
    case Op::kPLbPost: return i_type(d.imm, d.rs1, 0, d.rd, kOpCustom0, "p.lb");
    case Op::kPLhPost: return i_type(d.imm, d.rs1, 1, d.rd, kOpCustom0, "p.lh");
    case Op::kPLwPost: return i_type(d.imm, d.rs1, 2, d.rd, kOpCustom0, "p.lw");
    case Op::kPClip:
      check_range(d.imm, 1, 31, "p.clip");
      return i_type(d.imm, d.rs1, 3, d.rd, kOpCustom0, "p.clip");
    // Xpulp ALU ops share custom-0 funct3=100, discriminated by funct7.
    case Op::kPAbs: return r_type(0x00, 0, d.rs1, 4, d.rd, kOpCustom0);
    case Op::kPMin: return r_type(0x01, d.rs2, d.rs1, 4, d.rd, kOpCustom0);
    case Op::kPMax: return r_type(0x02, d.rs2, d.rs1, 4, d.rd, kOpCustom0);
    case Op::kPExths: return r_type(0x03, 0, d.rs1, 4, d.rd, kOpCustom0);
    case Op::kPExtbs: return r_type(0x04, 0, d.rs1, 4, d.rd, kOpCustom0);
    case Op::kPSbPost: return s_type(d.imm, d.rs2, d.rs1, 0, kOpCustom1, "p.sb");
    case Op::kPShPost: return s_type(d.imm, d.rs2, d.rs1, 1, kOpCustom1, "p.sh");
    case Op::kPSwPost: return s_type(d.imm, d.rs2, d.rs1, 2, kOpCustom1, "p.sw");
    case Op::kPMac: return r_type(0x21, d.rs2, d.rs1, 0, d.rd, kOpOp);
    case Op::kPvDotspH: return r_type(0x22, d.rs2, d.rs1, 0, d.rd, kOpOp);
    case Op::kPvSdotspH: return r_type(0x22, d.rs2, d.rs1, 1, d.rd, kOpOp);
    case Op::kLpSetup: {
      check_range(d.imm2, 1, 4095, "lp.setup end offset");
      const std::uint32_t loop = d.extra & 1;
      return (static_cast<std::uint32_t>(d.imm2) << 20) | (std::uint32_t{d.rs1} << 15) |
             (4u << 12) | (loop << 7) | kOpCustom1;
    }
    case Op::kLpSetupi: {
      check_range(d.imm, 1, 4095, "lp.setupi count");
      check_range(d.imm2, 1, 1023, "lp.setupi end offset");
      const std::uint32_t f3 = (d.extra & 1) ? 6u : 5u;
      const std::uint32_t off = static_cast<std::uint32_t>(d.imm2);
      return (static_cast<std::uint32_t>(d.imm) << 20) | (((off >> 5) & 0x1F) << 15) |
             (f3 << 12) | ((off & 0x1F) << 7) | kOpCustom1;
    }
    case Op::kIllegal: break;
  }
  fail("encode: illegal opcode");
}

namespace {

std::int32_t sext(std::uint32_t value, int bits) {
  const std::uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1);
  std::uint32_t v = value & mask;
  if (v & (1u << (bits - 1))) v |= ~mask;
  return static_cast<std::int32_t>(v);
}

}  // namespace

Decoded decode(std::uint32_t w) {
  Decoded d;
  const std::uint32_t opcode = w & 0x7F;
  d.rd = static_cast<std::uint8_t>((w >> 7) & 0x1F);
  const std::uint32_t f3 = (w >> 12) & 0x7;
  d.rs1 = static_cast<std::uint8_t>((w >> 15) & 0x1F);
  d.rs2 = static_cast<std::uint8_t>((w >> 20) & 0x1F);
  const std::uint32_t f7 = (w >> 25) & 0x7F;
  const std::int32_t imm_i = sext(w >> 20, 12);
  const std::int32_t imm_s = sext(((w >> 25) << 5) | ((w >> 7) & 0x1F), 12);

  switch (opcode) {
    case kOpLui: d.op = Op::kLui; d.imm = static_cast<std::int32_t>(w >> 12); return d;
    case kOpAuipc: d.op = Op::kAuipc; d.imm = static_cast<std::int32_t>(w >> 12); return d;
    case kOpJal: {
      d.op = Op::kJal;
      const std::uint32_t u = ((w >> 31) << 20) | (((w >> 12) & 0xFF) << 12) |
                              (((w >> 20) & 1) << 11) | (((w >> 21) & 0x3FF) << 1);
      d.imm = sext(u, 21);
      return d;
    }
    case kOpJalr:
      if (f3 != 0) break;
      d.op = Op::kJalr; d.imm = imm_i; return d;
    case kOpBranch: {
      static constexpr Op kBranchOps[8] = {Op::kBeq, Op::kBne, Op::kIllegal, Op::kIllegal,
                                           Op::kBlt, Op::kBge, Op::kBltu, Op::kBgeu};
      d.op = kBranchOps[f3];
      if (d.op == Op::kIllegal) break;
      const std::uint32_t u = ((w >> 31) << 12) | (((w >> 7) & 1) << 11) |
                              (((w >> 25) & 0x3F) << 5) | (((w >> 8) & 0xF) << 1);
      d.imm = sext(u, 13);
      return d;
    }
    case kOpLoad: {
      static constexpr Op kLoadOps[8] = {Op::kLb, Op::kLh, Op::kLw, Op::kIllegal,
                                         Op::kLbu, Op::kLhu, Op::kIllegal, Op::kIllegal};
      d.op = kLoadOps[f3];
      if (d.op == Op::kIllegal) break;
      d.imm = imm_i;
      return d;
    }
    case kOpStore: {
      static constexpr Op kStoreOps[3] = {Op::kSb, Op::kSh, Op::kSw};
      if (f3 > 2) break;
      d.op = kStoreOps[f3];
      d.imm = imm_s;
      return d;
    }
    case kOpImm: {
      switch (f3) {
        case 0: d.op = Op::kAddi; d.imm = imm_i; return d;
        case 1:
          if (f7 != 0) break;
          d.op = Op::kSlli; d.imm = static_cast<std::int32_t>(d.rs2); return d;
        case 2: d.op = Op::kSlti; d.imm = imm_i; return d;
        case 3: d.op = Op::kSltiu; d.imm = imm_i; return d;
        case 4: d.op = Op::kXori; d.imm = imm_i; return d;
        case 5:
          if (f7 == 0x00) { d.op = Op::kSrli; d.imm = static_cast<std::int32_t>(d.rs2); return d; }
          if (f7 == 0x20) { d.op = Op::kSrai; d.imm = static_cast<std::int32_t>(d.rs2); return d; }
          break;
        case 6: d.op = Op::kOri; d.imm = imm_i; return d;
        case 7: d.op = Op::kAndi; d.imm = imm_i; return d;
      }
      break;
    }
    case kOpOp: {
      if (f7 == 0x00 || f7 == 0x20) {
        static constexpr Op kBase0[8] = {Op::kAdd, Op::kSll, Op::kSlt, Op::kSltu,
                                         Op::kXor, Op::kSrl, Op::kOr, Op::kAnd};
        if (f7 == 0x20) {
          if (f3 == 0) { d.op = Op::kSub; return d; }
          if (f3 == 5) { d.op = Op::kSra; return d; }
          break;
        }
        d.op = kBase0[f3];
        return d;
      }
      if (f7 == 0x01) {
        static constexpr Op kMulOps[8] = {Op::kMul, Op::kMulh, Op::kMulhsu, Op::kMulhu,
                                          Op::kDiv, Op::kDivu, Op::kRem, Op::kRemu};
        d.op = kMulOps[f3];
        return d;
      }
      if (f7 == 0x21 && f3 == 0) { d.op = Op::kPMac; return d; }
      if (f7 == 0x22 && f3 == 0) { d.op = Op::kPvDotspH; return d; }
      if (f7 == 0x22 && f3 == 1) { d.op = Op::kPvSdotspH; return d; }
      break;
    }
    case kOpSystem: {
      if (f3 == 0 && (w >> 7) == 0) { d.op = Op::kEcall; return d; }
      if (f3 == 1) { d.op = Op::kCsrrw; d.extra = w >> 20; return d; }
      if (f3 == 2) { d.op = Op::kCsrrs; d.extra = w >> 20; return d; }
      break;
    }
    case kOpLoadFp:
      if (f3 != 2) break;
      d.op = Op::kFlw; d.imm = imm_i; return d;
    case kOpStoreFp:
      if (f3 != 2) break;
      d.op = Op::kFsw; d.imm = imm_s; return d;
    case kOpMadd:
      if (((w >> 25) & 0x3) != 0) break;
      d.op = Op::kFmaddS;
      d.rs3 = static_cast<std::uint8_t>(w >> 27);
      return d;
    case kOpFp: {
      switch (f7) {
        case 0x00: d.op = Op::kFaddS; return d;
        case 0x04: d.op = Op::kFsubS; return d;
        case 0x08: d.op = Op::kFmulS; return d;
        case 0x0C: d.op = Op::kFdivS; return d;
        case 0x10:
          if (f3 == 0) { d.op = Op::kFsgnjS; return d; }
          if (f3 == 1) { d.op = Op::kFsgnjnS; return d; }
          break;
        case 0x50:
          if (f3 == 2) { d.op = Op::kFeqS; return d; }
          if (f3 == 1) { d.op = Op::kFltS; return d; }
          if (f3 == 0) { d.op = Op::kFleS; return d; }
          break;
        // Unary FP ops: the rs2 field selects the variant; only variant 0
        // (32-bit signed) is implemented, and rm must be the canonical 0.
        case 0x60:
          if (d.rs2 != 0 || f3 != 0) break;
          d.op = Op::kFcvtWS; return d;
        case 0x68:
          if (d.rs2 != 0 || f3 != 0) break;
          d.op = Op::kFcvtSW; return d;
        case 0x70:
          if (d.rs2 != 0 || f3 != 0) break;
          d.op = Op::kFmvXW; return d;
        case 0x78:
          if (d.rs2 != 0 || f3 != 0) break;
          d.op = Op::kFmvWX; return d;
      }
      break;
    }
    case kOpCustom0: {
      if (f3 <= 3) {
        static constexpr Op kC0Ops[4] = {Op::kPLbPost, Op::kPLhPost, Op::kPLwPost,
                                         Op::kPClip};
        d.op = kC0Ops[f3];
        d.imm = imm_i;
        // p.clip's immediate is a bit width; anything else is illegal (and
        // would imply a negative shift in the executor).
        if (d.op == Op::kPClip && (d.imm < 1 || d.imm > 31)) break;
        return d;
      }
      if (f3 == 4) {
        switch (f7) {
          // Unary ops require the canonical zero rs2 field.
          case 0x00:
            if (d.rs2 != 0) break;
            d.op = Op::kPAbs; return d;
          case 0x01: d.op = Op::kPMin; return d;
          case 0x02: d.op = Op::kPMax; return d;
          case 0x03:
            if (d.rs2 != 0) break;
            d.op = Op::kPExths; return d;
          case 0x04:
            if (d.rs2 != 0) break;
            d.op = Op::kPExtbs; return d;
        }
      }
      break;
    }
    case kOpCustom1: {
      if (f3 <= 2) {
        static constexpr Op kC1Stores[3] = {Op::kPSbPost, Op::kPShPost, Op::kPSwPost};
        d.op = kC1Stores[f3];
        d.imm = imm_s;
        return d;
      }
      if (f3 == 4) {
        d.op = Op::kLpSetup;
        d.extra = d.rd & 1;
        d.imm2 = static_cast<std::int32_t>(w >> 20);
        d.rd = 0;
        return d;
      }
      if (f3 == 5 || f3 == 6) {
        d.op = Op::kLpSetupi;
        d.extra = (f3 == 6) ? 1 : 0;
        d.imm = static_cast<std::int32_t>(w >> 20);
        d.imm2 = static_cast<std::int32_t>((std::uint32_t{d.rs1} << 5) | d.rd);
        d.rd = 0;
        d.rs1 = 0;
        return d;
      }
      break;
    }
    default:
      break;
  }
  fail("decode: illegal instruction word");
}

}  // namespace iw::rv
