// Multi-core cluster model: N cores sharing a banked TCDM, with a hardware
// barrier, in the style of the Mr. Wolf / PULP cluster.
//
// Scheduling is event-driven: at every step the core with the smallest local
// time executes one instruction (ties broken by core index), which keeps the
// interleaving deterministic and memory effects consistent with simulated
// time. The runnable set is kept in a (time, index) min-heap with incremental
// halt/barrier counters, so each schedule step costs O(log n) instead of two
// O(n) scans. TCDM accesses are arbitrated per word-interleaved bank: a bank serves
// one access per cycle and later requests stall until the bank is free.
// A store to `barrier_addr` parks the core until all live cores arrive; all
// are then released together after `barrier_wakeup_cycles`.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rvsim/core.hpp"
#include "rvsim/machine.hpp"
#include "rvsim/memory.hpp"

namespace iw::rv {

struct ClusterConfig {
  int num_cores = 8;
  std::size_t mem_bytes = 1u << 20;
  /// TCDM region subject to bank arbitration (word-interleaved).
  std::uint32_t tcdm_base = 0x0008'0000;
  std::uint32_t tcdm_size = 0x0008'0000;
  int num_banks = 16;
  /// Word address (inside memory) acting as the hardware barrier trigger.
  std::uint32_t barrier_addr = 0x0000'FFFC;
  int barrier_wakeup_cycles = 6;
  /// Per-core stack size carved from the top of memory.
  std::uint32_t stack_bytes = 0x4000;

  // --- cluster DMA (L2 <-> TCDM streaming, Mr. Wolf style) ---------------
  // Six memory-mapped words starting at dma_base:
  //   +0  SRC   byte address (word aligned)
  //   +4  DST   byte address (word aligned)
  //   +8  LEN   length in words
  //   +12 TRIGGER: a store starts the transfer with the current SRC/DST/LEN
  //   +16 WAIT:    a store parks the core until the DMA queue drains
  // Data movement is applied immediately at trigger time; the *timing* is
  // enforced by WAIT: the engine finishes startup + len/words_per_cycle
  // cycles after the trigger (transfers queue back to back).
  std::uint32_t dma_base = 0x0000'FFD0;
  int dma_startup_cycles = 20;
  int dma_words_per_cycle = 2;  // 64-bit AXI-class transfer port
};

struct ClusterRunResult {
  /// Wall-clock cycles of the parallel section (max over cores).
  std::uint64_t cycles = 0;
  std::uint64_t total_instructions = 0;
  std::uint64_t bank_conflict_stalls = 0;
  std::uint64_t barrier_wait_cycles = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_words = 0;
  std::uint64_t dma_wait_cycles = 0;
  std::vector<std::uint64_t> per_core_cycles;
};

class Cluster {
 public:
  Cluster(TimingProfile profile, ClusterConfig config);

  // Cores hold references to this cluster's memory: not movable.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Memory& memory() { return mem_; }
  const ClusterConfig& config() const { return config_; }
  Core& core(int index);

  void load_program(std::span<const std::uint32_t> words, std::uint32_t base = 0);

  /// Opt-in static verification gate (see Machine::set_verify_on_load): run()
  /// analyzes the image from the entry point under the cluster's timing
  /// profile before any core steps, and throws on any diagnostic.
  void set_verify_on_load(bool enabled) { verify_on_load_ = enabled; }
  bool verify_on_load() const { return verify_on_load_; }

  /// Enables or disables superblock trace execution on all cores (default:
  /// the process default, see set_default_trace_mode). The cores share one
  /// TraceSpace — they execute the same image under the same profile, and
  /// hart-dependent state (mhartid, hardware loops) lives in the core, not
  /// in the compiled records. Results are bit-identical either way.
  void set_trace_mode(bool enabled);
  bool trace_mode() const { return tspace_ != nullptr; }
  /// The cluster's shared trace store, or nullptr when trace mode is off.
  TraceSpace* trace_space() { return tspace_.get(); }

  /// Starts all cores at `entry` and runs until every core executed ecall.
  /// Each core sees its hart id in CSR mhartid.
  ClusterRunResult run(std::uint32_t entry, std::uint64_t max_instructions = 500'000'000);

 private:
  enum class CoreState { kRunning, kAtBarrier, kHalted };

  bool in_tcdm(std::uint32_t addr) const {
    return addr >= config_.tcdm_base && addr < config_.tcdm_base + config_.tcdm_size;
  }

  ClusterConfig config_;
  Memory mem_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::unique_ptr<TraceSpace> tspace_;
  bool verify_on_load_ = false;
};

}  // namespace iw::rv
