#include "rvsim/trace.hpp"

#include <algorithm>
#include <atomic>

namespace iw::rv {

namespace {

// Process-wide hooks/toggles, atomic so concurrent fleet workers creating
// Machines on different threads read them race-free (they are set once,
// before simulation starts, like the verifier hook).
std::atomic<CodeAnalyzer> g_code_analyzer{nullptr};
std::atomic<bool> g_default_trace_mode{true};

std::uint32_t u32(std::int32_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

void set_code_analyzer(CodeAnalyzer analyzer) {
  g_code_analyzer.store(analyzer, std::memory_order_release);
}

CodeAnalyzer code_analyzer() {
  return g_code_analyzer.load(std::memory_order_acquire);
}

void set_default_trace_mode(bool enabled) {
  g_default_trace_mode.store(enabled, std::memory_order_release);
}

bool default_trace_mode() {
  return g_default_trace_mode.load(std::memory_order_acquire);
}

TraceSpace::TraceSpace(Memory& memory, const TimingProfile& profile)
    : mem_(memory), profile_(profile), slots_(kSlotCount) {}

TraceSpace::~TraceSpace() {
  if (watch_hi_ != 0) mem_.remove_write_observer(this);
}

void TraceSpace::watch_at_least(std::uint32_t hi) {
  if (hi <= watch_hi_) return;
  if (watch_hi_ == 0) {
    mem_.add_write_observer(this, 0, hi);
  } else {
    mem_.set_observed_range(this, 0, hi);
  }
  watch_hi_ = hi;
}

void TraceSpace::set_entry(std::uint32_t entry) {
  // Reset time is a safe point to re-arm run-ahead: no core has executed
  // anything of the new run yet, so a reloaded (rewritten) image starts
  // clean again until its first in-run code store.
  clean_ = true;
  if (have_entry_ && entry_ == entry) return;
  entry_ = entry;
  have_entry_ = true;
  // The certificate is derived from (entry, code); a new entry may certify
  // blocks the old one never reached. Compiled traces stay: their soundness
  // rests on the per-record flags and the attach-time hwloop guard, not on
  // which entry's analysis discovered them.
  cert_valid_ = false;
  cert_ = CodeCertificate{};
  for (Slot& s : slots_) {
    if (!s.trace) s.count = 0;  // let declined heads retry under the new entry
  }
}

void TraceSpace::invalidate_all() {
  for (Slot& s : slots_) {
    if (s.trace) {
      s.trace->valid = false;
      s.trace.reset();
      ++stats_.invalidated;
    }
    s.pc = 0;
    s.count = 0;
  }
  cert_valid_ = false;
  cert_ = CodeCertificate{};
}

void TraceSpace::on_write(std::uint32_t addr, std::uint32_t len) {
  // Any observed write lands inside the analyzed code range: the image
  // changed, so the cached certificate is stale no matter which byte moved.
  clean_ = false;
  cert_valid_ = false;
  cert_ = CodeCertificate{};
  const std::uint32_t lo = addr;
  const std::uint32_t hi = addr + len;
  for (Slot& s : slots_) {
    if (s.trace) {
      if (lo < s.trace->end && hi > s.trace->start) {
        s.trace->valid = false;
        s.trace.reset();
        s.count = 0;
        ++stats_.invalidated;
      }
    } else if (s.count != 0 && s.pc >= lo && s.pc < hi) {
      s.count = 0;  // overwritten head: drop hotness and any never-compile mark
    }
  }
}

bool TraceSpace::ensure_certificate() {
  if (cert_valid_) return cert_.ok;
  cert_valid_ = true;
  cert_ = CodeCertificate{};
  const CodeAnalyzer analyzer = code_analyzer();
  if (analyzer == nullptr || !have_entry_) return false;
  cert_ = analyzer(mem_, entry_, profile_);
  if (cert_.ok && !cert_.ranges.empty()) {
    std::sort(cert_.ranges.begin(), cert_.ranges.end());
    std::sort(cert_.loop_ends.begin(), cert_.loop_ends.end());
    // Watch the whole certified code span: every future trace lives inside
    // it, and stores above it (TCDM buffers, stacks) skip observer dispatch.
    watch_at_least(cert_.ranges.back().second);
  }
  return cert_.ok;
}

const std::shared_ptr<Trace>* TraceSpace::lookup(std::uint32_t pc,
                                                 DecodeCache& cache) {
  Slot& s = slot(pc);
  if (s.trace) {
    if (s.pc == pc) return &s.trace;
    return nullptr;  // direct-mapped collision: keep the compiled trace
  }
  if (s.pc != pc) {
    s.pc = pc;
    s.count = 1;
    return nullptr;
  }
  if (s.count == kNever) return nullptr;
  if (++s.count < kHotThreshold) return nullptr;
  std::shared_ptr<Trace> compiled = compile(pc, cache);
  if (!compiled) {
    s.count = kNever;
    ++stats_.declined;
    return nullptr;
  }
  s.trace = std::move(compiled);
  ++stats_.compiled;
  return &s.trace;
}

std::shared_ptr<Trace> TraceSpace::compile(std::uint32_t pc,
                                           DecodeCache& cache) {
  if (!ensure_certificate()) return nullptr;
  // Find the certified range containing pc; the trace may not cross its end.
  auto it = std::upper_bound(
      cert_.ranges.begin(), cert_.ranges.end(), pc,
      [](std::uint32_t v, const std::pair<std::uint32_t, std::uint32_t>& r) {
        return v < r.first;
      });
  if (it == cert_.ranges.begin()) return nullptr;
  --it;
  if (pc < it->first || pc >= it->second) return nullptr;
  const std::uint32_t range_end = it->second;

  std::vector<TraceOp> ops;
  std::vector<std::uint32_t> loop_ends;  // ends armed by in-trace lp.setup*
  std::uint32_t q = pc;
  for (; q < range_end && ops.size() < kMaxTraceOps; q += 4) {
    const DecodedEx* e = cache.try_entry(q);
    if (e == nullptr || e->status != DecodeCache::kOk) break;
    const Decoded& d = e->d;
    // Trace-terminating ops: ecall halts, jalr's target is data-dependent,
    // and p.clip with a degenerate shift would make the compile-time bound
    // computation undefined (the interpreter evaluates it lazily).
    if (d.op == Op::kEcall || d.op == Op::kJalr) break;
    if (d.op == Op::kPClip && (d.imm < 1 || d.imm > 31)) break;

    TraceOp t;
    t.op = d.op;
    t.rd = static_cast<std::uint8_t>(d.rd);
    t.rs1 = static_cast<std::uint8_t>(d.rs1);
    t.rs2 = static_cast<std::uint8_t>(d.rs2);
    t.rs3 = static_cast<std::uint8_t>(d.rs3);
    t.imm = d.imm;
    if (e->is_load) t.flags |= TraceOp::kIsLoad;
    if (e->cls == OpClass::kStore) t.flags |= TraceOp::kIsStore;
    t.base_cost = static_cast<std::int16_t>(e->base_cost);
    t.load_seq_extra = static_cast<std::int16_t>(e->load_seq_extra);
    t.load_dest = static_cast<std::int16_t>(e->load_dest);
    for (int r = 0; r < 3; ++r) t.reads[r] = static_cast<std::int16_t>(e->reads[r]);

    switch (d.op) {
      case Op::kLui:
        t.aux = u32(d.imm) << 12;
        break;
      case Op::kAuipc:
        t.aux = q + (u32(d.imm) << 12);
        break;
      case Op::kJal:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBltu:
      case Op::kBgeu:
        t.aux = q + u32(d.imm);
        break;
      case Op::kLpSetup:
      case Op::kLpSetupi:
        t.rs3 = static_cast<std::uint8_t>(d.extra & 1u);  // loop index
        t.aux = q + 4u * u32(d.imm2);
        loop_ends.push_back(t.aux);
        break;
      case Op::kPClip:
        t.aux = (1u << (u32(d.imm) - 1)) - 1u;  // hi bound; lo = -hi - 1
        break;
      case Op::kCsrrw:
      case Op::kCsrrs:
        t.aux = d.extra;
        break;
      default:
        break;
    }
    ops.push_back(t);
  }
  if (ops.size() < kMinTraceOps) return nullptr;

  auto trace = std::make_shared<Trace>();
  trace->start = pc;
  trace->end = pc + 4u * static_cast<std::uint32_t>(ops.size());

  // kMaybeLoopEnd: record i is flagged when the pc *after* it (start+4(i+1))
  // is a hardware-loop end known statically — from the whole-image analysis
  // or from an lp.setup/lp.setupi inside this very trace. The attach-time
  // guard in Core rejects attaching under an armed loop whose end is inside
  // the trace but unflagged (arming the analyzer could not see).
  std::vector<std::uint32_t> ends(cert_.loop_ends);
  ends.insert(ends.end(), loop_ends.begin(), loop_ends.end());
  std::sort(ends.begin(), ends.end());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::uint32_t next = pc + 4u * static_cast<std::uint32_t>(i + 1);
    if (std::binary_search(ends.begin(), ends.end(), next)) {
      ops[i].flags |= TraceOp::kMaybeLoopEnd;
    }
  }

  // Fold the sequential-entry cost: base plus the load-use stall implied by
  // the previous record's load destination and the back-to-back-load extra.
  // Record 0 is only ever entered dynamically, so its folded fields are
  // never consumed.
  for (std::size_t i = 1; i < ops.size(); ++i) {
    const TraceOp& prev = ops[i - 1];
    TraceOp& cur = ops[i];
    std::int32_t cost = cur.base_cost;
    if (prev.load_dest >= 0) {
      for (const std::int16_t r : cur.reads) {
        if (r == prev.load_dest) {
          cost += profile_.load_use_stall;
          cur.seq_stall = 1;
          break;
        }
      }
    }
    if ((prev.flags & TraceOp::kIsLoad) != 0) cost += cur.load_seq_extra;
    cur.seq_cost = static_cast<std::int16_t>(cost);
  }
  ops[0].seq_cost = ops[0].base_cost;

  trace->ops = std::move(ops);
  watch_at_least(trace->end);
  return trace;
}

std::vector<const Trace*> TraceSpace::traces() const {
  std::vector<const Trace*> out;
  for (const Slot& s : slots_) {
    if (s.trace && s.trace->valid) out.push_back(s.trace.get());
  }
  std::sort(out.begin(), out.end(), [](const Trace* a, const Trace* b) {
    return a->start < b->start;
  });
  return out;
}

}  // namespace iw::rv
