#include "rvsim/timing.hpp"

namespace iw::rv {

int TimingProfile::base_cost(OpClass cls) const {
  switch (cls) {
    case OpClass::kAlu: return alu;
    case OpClass::kMul: return mul;
    case OpClass::kDiv: return div;
    case OpClass::kLoad: return load;
    case OpClass::kStore: return store;
    case OpClass::kBranch: return branch;
    case OpClass::kJump: return jump;
    case OpClass::kCsr: return csr;
    case OpClass::kSystem: return system;
    case OpClass::kFpuAlu: return fpu_alu;
    case OpClass::kFpuMul: return fpu_mul;
    case OpClass::kFpuMadd: return fpu_madd;
    case OpClass::kFpuDiv: return fpu_div;
    case OpClass::kFpuCvt: return fpu_cvt;
    case OpClass::kFpuMove: return fpu_move;
    case OpClass::kFpuCmp: return fpu_cmp;
    case OpClass::kHwloop: return hwloop_setup;
    case OpClass::kSimd: return simd;
    case OpClass::kMac: return mac;
  }
  return 1;
}

bool TimingProfile::supports(Op op) const {
  if (is_fp(op)) return has_fpu;
  switch (op) {
    case Op::kLpSetup: case Op::kLpSetupi:
      return has_hwloop;
    case Op::kPLbPost: case Op::kPLhPost: case Op::kPLwPost:
    case Op::kPSbPost: case Op::kPShPost: case Op::kPSwPost:
      return has_postinc;
    case Op::kPMac:
      return has_mac;
    case Op::kPClip:
    case Op::kPAbs: case Op::kPMin: case Op::kPMax:
    case Op::kPExths: case Op::kPExtbs:
      // Available wherever the DSP extension set is (RI5CY); approximated as
      // tied to MAC support.
      return has_mac;
    case Op::kPvDotspH: case Op::kPvSdotspH:
      return has_simd;
    default:
      return true;
  }
}

ResolvedProfile resolve(const TimingProfile& profile) {
  ResolvedProfile r;
  // Op::kIllegal (index 0) stays unsupported with cost 0; decode() never
  // produces it.
  for (std::size_t i = 1; i < kOpCount; ++i) {
    const Op op = static_cast<Op>(i);
    r.base_cost[i] = static_cast<std::int16_t>(profile.base_cost(op_class(op)));
    r.supported[i] = profile.supports(op);
  }
  return r;
}

TimingProfile cortex_m4f() {
  TimingProfile p;
  p.name = "cortex-m4f";
  p.freq_hz = 64e6;
  p.mul = 1;
  p.div = 8;
  p.load = 2;
  p.load_nonpipelined_extra = -1;  // back-to-back loads pipeline: N loads cost N+1
  p.store = 1;
  p.branch_taken_extra = 2;
  p.jump = 2;
  p.fpu_alu = 1;
  p.fpu_mul = 1;
  p.fpu_madd = 3;
  p.fpu_div = 14;
  p.fpu_cvt = 1;
  p.has_postinc = true;  // ARM post-indexed addressing
  p.has_mac = true;      // MLA
  p.has_fpu = true;
  return p;
}

TimingProfile ibex() {
  TimingProfile p;
  p.name = "ibex";
  p.freq_hz = 100e6;
  p.mul = 2;  // small multi-cycle multiplier
  p.div = 37;
  p.load = 2;
  p.store = 2;
  p.branch_taken_extra = 1;  // 2-stage pipeline: taken branch costs 2 total
  p.jump = 2;
  return p;
}

TimingProfile ri5cy() {
  TimingProfile p;
  p.name = "ri5cy";
  p.freq_hz = 100e6;
  p.mul = 1;
  p.div = 35;
  p.load = 1;
  p.load_use_stall = 1;
  p.store = 1;
  p.branch_taken_extra = 3;
  p.jump = 3;
  p.has_hwloop = true;
  p.has_postinc = true;
  p.has_mac = true;
  p.has_simd = true;
  return p;
}

}  // namespace iw::rv
