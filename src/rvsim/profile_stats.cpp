#include "rvsim/profile_stats.hpp"

#include <algorithm>

namespace iw::rv {

std::uint64_t InstructionHistogram::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts_) sum += c;
  return sum;
}

std::uint64_t InstructionHistogram::class_count(OpClass cls) const {
  std::uint64_t sum = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {  // skip kIllegal
    if (counts_[i] != 0 && op_class(static_cast<Op>(i)) == cls) sum += counts_[i];
  }
  return sum;
}

double InstructionHistogram::class_fraction(OpClass cls) const {
  const std::uint64_t all = total();
  if (all == 0) return 0.0;
  return static_cast<double>(class_count(cls)) / static_cast<double>(all);
}

std::vector<std::pair<Op, std::uint64_t>> InstructionHistogram::sorted() const {
  std::vector<std::pair<Op, std::uint64_t>> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) out.emplace_back(static_cast<Op>(i), counts_[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void InstructionHistogram::write_report(std::ostream& os, std::size_t max_rows) const {
  const std::uint64_t all = total();
  os << "retired instructions: " << all << "\n";
  std::size_t row = 0;
  for (const auto& [op, count] : sorted()) {
    if (row++ >= max_rows) break;
    os << "  " << mnemonic(op) << ": " << count << " ("
       << (all ? 100.0 * static_cast<double>(count) / static_cast<double>(all) : 0.0)
       << "%)\n";
  }
}

}  // namespace iw::rv
