// BLE 5 radio energy model for the nRF52832.
//
// Section II motivates the dual-processor architecture with local end-to-end
// processing being cheaper (and more robust) than streaming raw sensor data
// over BLE. This model quantifies the radio side: a connection event costs a
// fixed overhead (crystal + radio startup + protocol exchange) plus airtime
// for the payload; sustained streaming energy follows from the event rate
// needed to carry the data.
#pragma once

namespace iw::ble {

struct BleRadioParams {
  double supply_v = 3.0;
  double tx_current_a = 5.3e-3;   // 0 dBm, DC/DC enabled (nRF52832 datasheet)
  double rx_current_a = 5.4e-3;
  double idle_current_a = 1.5e-6; // sleep with RTC for the connection timer
  /// Radio + HFXO startup and protocol turnaround per connection event.
  double event_overhead_s = 300e-6;
  double phy_rate_bps = 1e6;      // BLE 1M PHY
  double max_payload_bytes = 244.0;  // BLE 5 data length extension
  double protocol_overhead_bytes = 14.0;  // header + MIC + CRC per PDU
  double connection_interval_s = 0.030;
};

class BleLink {
 public:
  explicit BleLink(BleRadioParams params = {});

  /// Energy of one connection event carrying `payload_bytes` of application
  /// data (possibly split into multiple PDUs).
  double event_energy_j(double payload_bytes) const;

  /// Energy of an empty (keep-alive) connection event.
  double keepalive_event_energy_j() const { return event_energy_j(0.0); }

  /// Average radio power to sustain a raw stream of `bytes_per_s`.
  double streaming_power_w(double bytes_per_s) const;

  /// Energy to ship a single notification of `bytes` (one event).
  double notification_energy_j(double bytes) const;

  /// Average power when connected but idle (keep-alive events only).
  double idle_connection_power_w() const;

  const BleRadioParams& params() const { return params_; }

 private:
  BleRadioParams params_;
};

}  // namespace iw::ble
