#include "ble/ble.hpp"

#include <cmath>

#include "common/error.hpp"

namespace iw::ble {

BleLink::BleLink(BleRadioParams params) : params_(params) {
  ensure(params_.supply_v > 0.0 && params_.phy_rate_bps > 0.0 &&
             params_.connection_interval_s > 0.0 && params_.max_payload_bytes > 0.0,
         "BleLink: invalid parameters");
}

double BleLink::event_energy_j(double payload_bytes) const {
  ensure(payload_bytes >= 0.0, "BleLink: negative payload");
  const double pdus = std::max(1.0, std::ceil(payload_bytes / params_.max_payload_bytes));
  const double on_air_bytes =
      payload_bytes + pdus * params_.protocol_overhead_bytes;
  const double airtime_s = on_air_bytes * 8.0 / params_.phy_rate_bps;
  // TX the data, RX the acknowledgements (symmetric current to first order).
  const double active_s = params_.event_overhead_s + 2.0 * airtime_s;
  const double active_power =
      0.5 * (params_.tx_current_a + params_.rx_current_a) * params_.supply_v;
  return active_s * active_power;
}

double BleLink::streaming_power_w(double bytes_per_s) const {
  ensure(bytes_per_s >= 0.0, "BleLink: negative stream rate");
  const double bytes_per_event = bytes_per_s * params_.connection_interval_s;
  const double events_per_s = 1.0 / params_.connection_interval_s;
  return event_energy_j(bytes_per_event) * events_per_s +
         params_.idle_current_a * params_.supply_v;
}

double BleLink::notification_energy_j(double bytes) const {
  return event_energy_j(bytes);
}

double BleLink::idle_connection_power_w() const { return streaming_power_w(0.0); }

}  // namespace iw::ble
