#include "asmx/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "rvsim/encoding.hpp"
#include "rvsim/isa.hpp"

namespace iw::asmx {

namespace {

using rv::Decoded;
using rv::Op;

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string strip_comment(const std::string& line) {
  std::size_t end = line.size();
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '#' || c == ';') { end = i; break; }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') { end = i; break; }
  }
  return line.substr(0, end);
}

std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  for (char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string last = trim(current);
  if (!last.empty()) parts.push_back(last);
  return parts;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// One assembly item occupying a single 32-bit word in the output image.
struct Item {
  enum class Kind { kInstr, kWord } kind = Kind::kInstr;
  std::string mnemonic;
  std::vector<std::string> operands;
  std::string data_expr;  // for .word
  std::uint32_t addr = 0;
  int line = 0;
};

class Assembler {
 public:
  explicit Assembler(const std::string& source, std::uint32_t base) : base_(base) {
    std::istringstream stream(source);
    std::string line;
    int line_no = 0;
    while (std::getline(stream, line)) {
      ++line_no;
      try {
        parse_line(strip_comment(line), line_no);
      } catch (const Error& e) {
        fail("asm line " + std::to_string(line_no) + ": " + e.what());
      }
    }
    encode_all();
  }

  Program take() {
    Program p;
    p.base = base_;
    p.words = std::move(words_);
    p.symbols = std::move(symbols_);
    return p;
  }

 private:
  // ---- expression evaluation -------------------------------------------
  std::int64_t eval(const std::string& expr, bool allow_labels) const {
    std::size_t pos = 0;
    const std::int64_t v = eval_sum(expr, pos, allow_labels);
    skip_ws(expr, pos);
    if (pos != expr.size()) {
      fail("trailing characters in expression '" + expr + "'");
    }
    return v;
  }

  static void skip_ws(const std::string& s, std::size_t& pos) {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
  }

  std::int64_t eval_sum(const std::string& s, std::size_t& pos, bool labels) const {
    std::int64_t value = eval_product(s, pos, labels);
    for (;;) {
      skip_ws(s, pos);
      if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
        const char op = s[pos++];
        const std::int64_t rhs = eval_product(s, pos, labels);
        value = (op == '+') ? value + rhs : value - rhs;
      } else {
        return value;
      }
    }
  }

  std::int64_t eval_product(const std::string& s, std::size_t& pos, bool labels) const {
    std::int64_t value = eval_term(s, pos, labels);
    for (;;) {
      skip_ws(s, pos);
      if (pos < s.size() && s[pos] == '*') {
        ++pos;
        value *= eval_term(s, pos, labels);
      } else {
        return value;
      }
    }
  }

  std::int64_t eval_term(const std::string& s, std::size_t& pos, bool labels) const {
    skip_ws(s, pos);
    ensure(pos < s.size(), "empty expression");
    if (s[pos] == '-') {
      ++pos;
      return -eval_term(s, pos, labels);
    }
    if (std::isdigit(static_cast<unsigned char>(s[pos]))) {
      std::size_t used = 0;
      const std::int64_t v = std::stoll(s.substr(pos), &used, 0);
      pos += used;
      return v;
    }
    if (is_ident_start(s[pos])) {
      std::size_t end = pos;
      while (end < s.size() && is_ident_char(s[end])) ++end;
      const std::string name = s.substr(pos, end - pos);
      pos = end;
      const auto it = symbols_.find(name);
      if (it != symbols_.end()) return it->second;
      if (!labels) fail("undefined symbol '" + name + "' (labels not allowed here)");
      fail("undefined symbol '" + name + "'");
    }
    fail("cannot parse expression at '" + s.substr(pos) + "'");
  }

  // ---- pass 1: parsing & layout ----------------------------------------
  std::uint32_t pc() const {
    return base_ + static_cast<std::uint32_t>(4 * items_.size());
  }

  void parse_line(std::string text, int line_no) {
    text = trim(text);
    // Labels (possibly several) at the start of the line.
    for (;;) {
      const std::size_t colon = text.find(':');
      if (colon == std::string::npos) break;
      const std::string head = trim(text.substr(0, colon));
      bool is_label = !head.empty() && is_ident_start(head[0]);
      for (char c : head) {
        if (!is_ident_char(c)) { is_label = false; break; }
      }
      if (!is_label) break;
      define_symbol(head, pc());
      text = trim(text.substr(colon + 1));
    }
    if (text.empty()) return;

    // Mnemonic / directive and its operand string.
    std::size_t sp = 0;
    while (sp < text.size() && !std::isspace(static_cast<unsigned char>(text[sp]))) ++sp;
    std::string mnemonic = text.substr(0, sp);
    std::transform(mnemonic.begin(), mnemonic.end(), mnemonic.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    const std::vector<std::string> ops = split_operands(trim(text.substr(sp)));

    if (mnemonic == ".equ") {
      ensure(ops.size() == 2, ".equ needs name, value");
      define_symbol(ops[0], static_cast<std::uint32_t>(eval(ops[1], false)));
      return;
    }
    if (mnemonic == ".word") {
      ensure(!ops.empty(), ".word needs at least one value");
      for (const std::string& op : ops) emit_word_expr(op, line_no);
      return;
    }
    if (mnemonic == ".space") {
      ensure(ops.size() == 1, ".space needs a byte count");
      const std::int64_t bytes = eval(ops[0], false);
      ensure(bytes >= 0 && bytes % 4 == 0, ".space must be a non-negative multiple of 4");
      for (std::int64_t i = 0; i < bytes / 4; ++i) emit_word_expr("0", line_no);
      return;
    }
    if (mnemonic == ".align") {
      ensure(ops.size() == 1, ".align needs a byte alignment");
      const std::int64_t align = eval(ops[0], false);
      ensure(align > 0 && (align & (align - 1)) == 0 && align % 4 == 0,
             ".align must be a power-of-two multiple of 4");
      while (pc() % static_cast<std::uint32_t>(align) != 0) emit_word_expr("0", line_no);
      return;
    }
    ensure(mnemonic[0] != '.', "unknown directive " + mnemonic);

    expand_instruction(mnemonic, ops, line_no);
  }

  void define_symbol(const std::string& name, std::uint32_t value) {
    ensure(!name.empty() && is_ident_start(name[0]), "bad symbol name '" + name + "'");
    ensure(!symbols_.contains(name), "symbol redefined: " + name);
    ensure(rv::parse_reg(name) < 0, "symbol shadows register name: " + name);
    symbols_[name] = value;
  }

  void emit_word_expr(const std::string& expr, int line_no) {
    Item item;
    item.kind = Item::Kind::kWord;
    item.data_expr = expr;
    item.addr = pc();
    item.line = line_no;
    items_.push_back(std::move(item));
  }

  void emit(const std::string& mnemonic, std::vector<std::string> ops, int line_no) {
    Item item;
    item.mnemonic = mnemonic;
    item.operands = std::move(ops);
    item.addr = pc();
    item.line = line_no;
    items_.push_back(std::move(item));
  }

  void expand_instruction(const std::string& m, const std::vector<std::string>& ops,
                          int line_no) {
    const auto need = [&](std::size_t n) {
      // check-then-fail: no message allocation when the arity is right.
      if (ops.size() != n) fail(m + " expects " + std::to_string(n) + " operands");
    };
    if (m == "nop") { need(0); emit("addi", {"zero", "zero", "0"}, line_no); return; }
    if (m == "mv") { need(2); emit("addi", {ops[0], ops[1], "0"}, line_no); return; }
    if (m == "not") { need(2); emit("xori", {ops[0], ops[1], "-1"}, line_no); return; }
    if (m == "neg") { need(2); emit("sub", {ops[0], "zero", ops[1]}, line_no); return; }
    if (m == "j") { need(1); emit("jal", {"zero", ops[0]}, line_no); return; }
    if (m == "jr") { need(1); emit("jalr", {"zero", ops[0], "0"}, line_no); return; }
    if (m == "ret") { need(0); emit("jalr", {"zero", "ra", "0"}, line_no); return; }
    if (m == "call") { need(1); emit("jal", {"ra", ops[0]}, line_no); return; }
    if (m == "beqz") { need(2); emit("beq", {ops[0], "zero", ops[1]}, line_no); return; }
    if (m == "bnez") { need(2); emit("bne", {ops[0], "zero", ops[1]}, line_no); return; }
    if (m == "bltz") { need(2); emit("blt", {ops[0], "zero", ops[1]}, line_no); return; }
    if (m == "bgez") { need(2); emit("bge", {ops[0], "zero", ops[1]}, line_no); return; }
    if (m == "bgtz") { need(2); emit("blt", {"zero", ops[0], ops[1]}, line_no); return; }
    if (m == "blez") { need(2); emit("bge", {"zero", ops[0], ops[1]}, line_no); return; }
    if (m == "bgt") { need(3); emit("blt", {ops[1], ops[0], ops[2]}, line_no); return; }
    if (m == "ble") { need(3); emit("bge", {ops[1], ops[0], ops[2]}, line_no); return; }
    if (m == "bgtu") { need(3); emit("bltu", {ops[1], ops[0], ops[2]}, line_no); return; }
    if (m == "bleu") { need(3); emit("bgeu", {ops[1], ops[0], ops[2]}, line_no); return; }
    if (m == "fmv.s") { need(2); emit("fsgnj.s", {ops[0], ops[1], ops[1]}, line_no); return; }
    if (m == "fneg.s") { need(2); emit("fsgnjn.s", {ops[0], ops[1], ops[1]}, line_no); return; }
    if (m == "csrr") { need(2); emit("csrrs", {ops[0], ops[1], "zero"}, line_no); return; }
    if (m == "li") {
      need(2);
      // The immediate must be resolvable in pass 1 (literal or .equ), which
      // keeps item sizes fixed before labels are final.
      const std::int64_t v = eval(ops[1], false);
      ensure(v >= std::numeric_limits<std::int32_t>::min() &&
                 v <= std::numeric_limits<std::int64_t>::max() &&
                 v <= 0xFFFFFFFFll,
             "li immediate out of 32-bit range");
      const std::int32_t value = static_cast<std::int32_t>(v);
      if (value >= -2048 && value <= 2047) {
        emit("addi", {ops[0], "zero", std::to_string(value)}, line_no);
      } else {
        const std::int32_t hi = (value + 0x800) >> 12;
        const std::int32_t lo = value - (hi << 12);
        emit("lui", {ops[0], std::to_string(hi & 0xFFFFF)}, line_no);
        if (lo != 0) emit("addi", {ops[0], ops[0], std::to_string(lo)}, line_no);
        else emit("addi", {ops[0], ops[0], "0"}, line_no);
      }
      return;
    }
    if (m == "la") {
      need(2);
      emit("_la_hi", {ops[0], ops[1]}, line_no);
      emit("_la_lo", {ops[0], ops[1]}, line_no);
      return;
    }
    emit(m, ops, line_no);
  }

  // ---- pass 2: encoding --------------------------------------------------
  void encode_all() {
    words_.reserve(items_.size());
    for (const Item& item : items_) {
      try {
        if (item.kind == Item::Kind::kWord) {
          words_.push_back(static_cast<std::uint32_t>(eval(item.data_expr, true)));
        } else {
          words_.push_back(rv::encode(encode_item(item)));
        }
      } catch (const Error& e) {
        fail("asm line " + std::to_string(item.line) + ": " + e.what());
      }
    }
  }

  static std::uint8_t int_reg(const std::string& token) {
    const int r = rv::parse_reg(token);
    ensure(r >= 0 && r < 32, "expected integer register, got '" + token + "'");
    return static_cast<std::uint8_t>(r);
  }

  static std::uint8_t fp_reg(const std::string& token) {
    const int r = rv::parse_reg(token);
    ensure(r >= 32, "expected float register, got '" + token + "'");
    return static_cast<std::uint8_t>(r - 32);
  }

  /// Parses "imm(reg)" or "imm(reg!)"; returns {reg, imm, postinc}.
  struct MemOperand {
    std::uint8_t reg;
    std::int32_t imm;
    bool postinc;
  };
  MemOperand mem_operand(const std::string& token) const {
    const std::size_t open = token.find('(');
    const std::size_t close = token.rfind(')');
    ensure(open != std::string::npos && close != std::string::npos && close > open,
           "expected mem operand imm(reg), got '" + token + "'");
    std::string inner = trim(token.substr(open + 1, close - open - 1));
    bool postinc = false;
    if (!inner.empty() && inner.back() == '!') {
      postinc = true;
      inner = trim(inner.substr(0, inner.size() - 1));
    }
    const std::string imm_text = trim(token.substr(0, open));
    MemOperand out;
    out.reg = int_reg(inner);
    out.imm = imm_text.empty() ? 0 : static_cast<std::int32_t>(eval(imm_text, true));
    out.postinc = postinc;
    return out;
  }

  std::int32_t imm_of(const std::string& token) const {
    return static_cast<std::int32_t>(eval(token, true));
  }

  std::uint32_t csr_of(const std::string& token) const {
    if (token == "mhartid") return rv::kCsrMhartid;
    if (token == "mcycle") return rv::kCsrMcycle;
    return static_cast<std::uint32_t>(eval(token, false));
  }

  Decoded encode_item(const Item& item) const {
    const std::string& m = item.mnemonic;
    const std::vector<std::string>& ops = item.operands;
    const auto need = [&](std::size_t n) {
      // check-then-fail: no message allocation when the arity is right.
      if (ops.size() != n) fail(m + " expects " + std::to_string(n) + " operands");
    };
    Decoded d;

    // Internal la halves.
    if (m == "_la_hi" || m == "_la_lo") {
      need(2);
      const std::int32_t target = static_cast<std::int32_t>(eval(ops[1], true));
      const std::int32_t hi = (target + 0x800) >> 12;
      if (m == "_la_hi") {
        d.op = Op::kLui;
        d.rd = int_reg(ops[0]);
        d.imm = hi & 0xFFFFF;
      } else {
        d.op = Op::kAddi;
        d.rd = d.rs1 = int_reg(ops[0]);
        d.imm = target - (hi << 12);
      }
      return d;
    }

    struct RSpec { const char* name; Op op; };
    static constexpr RSpec kRTypes[] = {
        {"add", Op::kAdd}, {"sub", Op::kSub}, {"sll", Op::kSll}, {"slt", Op::kSlt},
        {"sltu", Op::kSltu}, {"xor", Op::kXor}, {"srl", Op::kSrl}, {"sra", Op::kSra},
        {"or", Op::kOr}, {"and", Op::kAnd}, {"mul", Op::kMul}, {"mulh", Op::kMulh},
        {"mulhsu", Op::kMulhsu}, {"mulhu", Op::kMulhu}, {"div", Op::kDiv},
        {"divu", Op::kDivu}, {"rem", Op::kRem}, {"remu", Op::kRemu},
        {"p.mac", Op::kPMac}, {"pv.dotsp.h", Op::kPvDotspH},
        {"pv.sdotsp.h", Op::kPvSdotspH}, {"p.min", Op::kPMin},
        {"p.max", Op::kPMax}};
    for (const RSpec& spec : kRTypes) {
      if (m == spec.name) {
        need(3);
        d.op = spec.op;
        d.rd = int_reg(ops[0]);
        d.rs1 = int_reg(ops[1]);
        d.rs2 = int_reg(ops[2]);
        return d;
      }
    }

    // Unary Xpulp ALU ops: rd, rs1.
    static constexpr RSpec kUnary[] = {
        {"p.abs", Op::kPAbs}, {"p.exths", Op::kPExths}, {"p.extbs", Op::kPExtbs}};
    for (const RSpec& spec : kUnary) {
      if (m == spec.name) {
        need(2);
        d.op = spec.op;
        d.rd = int_reg(ops[0]);
        d.rs1 = int_reg(ops[1]);
        return d;
      }
    }

    static constexpr RSpec kITypes[] = {
        {"addi", Op::kAddi}, {"slti", Op::kSlti}, {"sltiu", Op::kSltiu},
        {"xori", Op::kXori}, {"ori", Op::kOri}, {"andi", Op::kAndi},
        {"slli", Op::kSlli}, {"srli", Op::kSrli}, {"srai", Op::kSrai},
        {"p.clip", Op::kPClip}};
    for (const RSpec& spec : kITypes) {
      if (m == spec.name) {
        need(3);
        d.op = spec.op;
        d.rd = int_reg(ops[0]);
        d.rs1 = int_reg(ops[1]);
        d.imm = imm_of(ops[2]);
        return d;
      }
    }

    static constexpr RSpec kLoads[] = {
        {"lb", Op::kLb}, {"lh", Op::kLh}, {"lw", Op::kLw},
        {"lbu", Op::kLbu}, {"lhu", Op::kLhu}};
    for (const RSpec& spec : kLoads) {
      if (m == spec.name) {
        need(2);
        const MemOperand mem = mem_operand(ops[1]);
        ensure(!mem.postinc, m + " does not allow post-increment; use p." + m);
        d.op = spec.op;
        d.rd = int_reg(ops[0]);
        d.rs1 = mem.reg;
        d.imm = mem.imm;
        return d;
      }
    }
    static constexpr RSpec kPostLoads[] = {
        {"p.lb", Op::kPLbPost}, {"p.lh", Op::kPLhPost}, {"p.lw", Op::kPLwPost}};
    for (const RSpec& spec : kPostLoads) {
      if (m == spec.name) {
        need(2);
        const MemOperand mem = mem_operand(ops[1]);
        ensure(mem.postinc, m + " requires post-increment syntax imm(reg!)");
        d.op = spec.op;
        d.rd = int_reg(ops[0]);
        d.rs1 = mem.reg;
        d.imm = mem.imm;
        return d;
      }
    }
    static constexpr RSpec kStores[] = {{"sb", Op::kSb}, {"sh", Op::kSh}, {"sw", Op::kSw}};
    for (const RSpec& spec : kStores) {
      if (m == spec.name) {
        need(2);
        const MemOperand mem = mem_operand(ops[1]);
        ensure(!mem.postinc, m + " does not allow post-increment; use p." + m);
        d.op = spec.op;
        d.rs2 = int_reg(ops[0]);
        d.rs1 = mem.reg;
        d.imm = mem.imm;
        return d;
      }
    }
    static constexpr RSpec kPostStores[] = {
        {"p.sb", Op::kPSbPost}, {"p.sh", Op::kPShPost}, {"p.sw", Op::kPSwPost}};
    for (const RSpec& spec : kPostStores) {
      if (m == spec.name) {
        need(2);
        const MemOperand mem = mem_operand(ops[1]);
        ensure(mem.postinc, m + " requires post-increment syntax imm(reg!)");
        d.op = spec.op;
        d.rs2 = int_reg(ops[0]);
        d.rs1 = mem.reg;
        d.imm = mem.imm;
        return d;
      }
    }

    static constexpr RSpec kBranches[] = {
        {"beq", Op::kBeq}, {"bne", Op::kBne}, {"blt", Op::kBlt},
        {"bge", Op::kBge}, {"bltu", Op::kBltu}, {"bgeu", Op::kBgeu}};
    for (const RSpec& spec : kBranches) {
      if (m == spec.name) {
        need(3);
        d.op = spec.op;
        d.rs1 = int_reg(ops[0]);
        d.rs2 = int_reg(ops[1]);
        d.imm = imm_of(ops[2]) - static_cast<std::int32_t>(item.addr);
        return d;
      }
    }

    if (m == "lui" || m == "auipc") {
      need(2);
      d.op = (m == "lui") ? Op::kLui : Op::kAuipc;
      d.rd = int_reg(ops[0]);
      d.imm = imm_of(ops[1]);
      return d;
    }
    if (m == "jal") {
      ensure(ops.size() == 1 || ops.size() == 2, "jal expects [rd,] target");
      d.op = Op::kJal;
      d.rd = (ops.size() == 2) ? int_reg(ops[0]) : 1;
      d.imm = imm_of(ops.back()) - static_cast<std::int32_t>(item.addr);
      return d;
    }
    if (m == "jalr") {
      need(3);
      d.op = Op::kJalr;
      d.rd = int_reg(ops[0]);
      d.rs1 = int_reg(ops[1]);
      d.imm = imm_of(ops[2]);
      return d;
    }
    if (m == "ecall") {
      need(0);
      d.op = Op::kEcall;
      return d;
    }
    if (m == "csrrw" || m == "csrrs") {
      need(3);
      d.op = (m == "csrrw") ? Op::kCsrrw : Op::kCsrrs;
      d.rd = int_reg(ops[0]);
      d.extra = csr_of(ops[1]);
      d.rs1 = int_reg(ops[2]);
      return d;
    }
    if (m == "lp.setup" || m == "lp.setupi") {
      need(3);
      const std::int64_t loop = eval(ops[0], false);
      ensure(loop == 0 || loop == 1, "hardware loop index must be 0 or 1");
      const std::int32_t end = imm_of(ops[2]);
      const std::int32_t off = end - static_cast<std::int32_t>(item.addr);
      ensure(off > 0 && off % 4 == 0, "hardware loop end must follow the setup");
      d.extra = static_cast<std::uint32_t>(loop);
      d.imm2 = off / 4;
      if (m == "lp.setup") {
        d.op = Op::kLpSetup;
        d.rs1 = int_reg(ops[1]);
      } else {
        d.op = Op::kLpSetupi;
        d.imm = imm_of(ops[1]);
      }
      return d;
    }

    // Floating point.
    static constexpr RSpec kFp3[] = {
        {"fadd.s", Op::kFaddS}, {"fsub.s", Op::kFsubS}, {"fmul.s", Op::kFmulS},
        {"fdiv.s", Op::kFdivS}, {"fsgnj.s", Op::kFsgnjS}, {"fsgnjn.s", Op::kFsgnjnS}};
    for (const RSpec& spec : kFp3) {
      if (m == spec.name) {
        need(3);
        d.op = spec.op;
        d.rd = fp_reg(ops[0]);
        d.rs1 = fp_reg(ops[1]);
        d.rs2 = fp_reg(ops[2]);
        return d;
      }
    }
    static constexpr RSpec kFpCmp[] = {
        {"feq.s", Op::kFeqS}, {"flt.s", Op::kFltS}, {"fle.s", Op::kFleS}};
    for (const RSpec& spec : kFpCmp) {
      if (m == spec.name) {
        need(3);
        d.op = spec.op;
        d.rd = int_reg(ops[0]);
        d.rs1 = fp_reg(ops[1]);
        d.rs2 = fp_reg(ops[2]);
        return d;
      }
    }
    if (m == "fmadd.s") {
      need(4);
      d.op = Op::kFmaddS;
      d.rd = fp_reg(ops[0]);
      d.rs1 = fp_reg(ops[1]);
      d.rs2 = fp_reg(ops[2]);
      d.rs3 = fp_reg(ops[3]);
      return d;
    }
    if (m == "flw" || m == "fsw") {
      need(2);
      const MemOperand mem = mem_operand(ops[1]);
      ensure(!mem.postinc, m + " does not allow post-increment");
      if (m == "flw") {
        d.op = Op::kFlw;
        d.rd = fp_reg(ops[0]);
      } else {
        d.op = Op::kFsw;
        d.rs2 = fp_reg(ops[0]);
      }
      d.rs1 = mem.reg;
      d.imm = mem.imm;
      return d;
    }
    if (m == "fcvt.s.w") {
      need(2);
      d.op = Op::kFcvtSW;
      d.rd = fp_reg(ops[0]);
      d.rs1 = int_reg(ops[1]);
      return d;
    }
    if (m == "fcvt.w.s") {
      need(2);
      d.op = Op::kFcvtWS;
      d.rd = int_reg(ops[0]);
      d.rs1 = fp_reg(ops[1]);
      return d;
    }
    if (m == "fmv.x.w") {
      need(2);
      d.op = Op::kFmvXW;
      d.rd = int_reg(ops[0]);
      d.rs1 = fp_reg(ops[1]);
      return d;
    }
    if (m == "fmv.w.x") {
      need(2);
      d.op = Op::kFmvWX;
      d.rd = fp_reg(ops[0]);
      d.rs1 = int_reg(ops[1]);
      return d;
    }

    fail("unknown mnemonic '" + m + "'");
  }

  std::uint32_t base_;
  std::vector<Item> items_;
  std::vector<std::uint32_t> words_;
  std::map<std::string, std::uint32_t> symbols_;
};

}  // namespace

std::uint32_t Program::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  ensure(it != symbols.end(), "Program: unknown symbol " + name);
  return it->second;
}

Program assemble(const std::string& source, std::uint32_t base) {
  Assembler assembler(source, base);
  return assembler.take();
}

std::string disassemble_listing(std::span<const std::uint32_t> words,
                                std::uint32_t base,
                                const std::map<std::string, std::uint32_t>& symbols) {
  // Invert the symbol table for label annotation.
  std::map<std::uint32_t, std::string> labels;
  for (const auto& [name, addr] : symbols) labels[addr] = name;

  std::ostringstream os;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint32_t addr = base + static_cast<std::uint32_t>(4 * i);
    const auto label = labels.find(addr);
    if (label != labels.end()) os << label->second << ":\n";
    os << "  " << std::hex << std::setw(8) << std::setfill('0') << addr << "  "
       << std::setw(8) << words[i] << std::dec << std::setfill(' ') << "  ";
    try {
      os << rv::to_string(rv::decode(words[i]));
    } catch (const Error&) {
      os << ".word " << words[i];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace iw::asmx
