// Two-pass assembler for the simulated ISA.
//
// Syntax follows GNU-as conventions for RISC-V:
//
//   label:                     # define a label
//       addi  a0, a1, 42       # '#', '//' and ';' start comments
//       lw    t0, 8(sp)
//       p.lw  t0, 4(a1!)       # post-increment addressing
//       beq   a0, zero, done
//       lp.setupi 0, 16, loop_end   # hw loop 0, 16 iterations, body ends at label
//       .word 1, 2, 0x30       # data directives: .word, .space, .align
//       .equ  BUF, 0x1000      # compile-time constants
//
// Pseudo-instructions: nop, li, la, mv, not, neg, j, jr, ret, call,
// beqz/bnez/blez/bgez/bltz/bgtz, bgt/ble/bgtu/bleu, fmv.s, fneg.s.
//
// Immediate operands accept simple expressions: `sym`, `123`, `0x7f`,
// `sym+4`, `sym-8`, `4*25` (constant folding, left to right).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace iw::asmx {

/// Result of assembling one source: encoded words plus the symbol table.
struct Program {
  std::uint32_t base = 0;
  std::vector<std::uint32_t> words;
  std::map<std::string, std::uint32_t> symbols;

  std::uint32_t symbol(const std::string& name) const;
  std::uint32_t end_address() const {
    return base + static_cast<std::uint32_t>(4 * words.size());
  }
};

/// Assembles `source` with the first instruction placed at `base`.
/// Throws iw::Error with a line-numbered message on any syntax error.
Program assemble(const std::string& source, std::uint32_t base = 0);

/// Disassembly listing of encoded words: one line per word with address,
/// raw encoding, and the decoded instruction (or `.word` for data that does
/// not decode). Known symbol addresses are annotated as labels.
std::string disassemble_listing(std::span<const std::uint32_t> words,
                                std::uint32_t base = 0,
                                const std::map<std::string, std::uint32_t>& symbols = {});

}  // namespace iw::asmx
