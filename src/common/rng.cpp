#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace iw {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  for (auto& s : state_) s = splitmix64(seed);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng Rng::substream(std::uint64_t stream_id) const {
  // Hash (construction seed, stream id) into a child seed with two splitmix64
  // steps. Deliberately ignores the current draw position so that
  // substream(k) is stable no matter how the parent has been used.
  std::uint64_t x = seed_;
  std::uint64_t child = splitmix64(x);
  x += stream_id ^ 0x94d049bb133111ebULL;
  child ^= splitmix64(x);
  return Rng(child);
}

RngSnapshot Rng::snapshot() const {
  RngSnapshot snap;
  for (std::size_t i = 0; i < snap.state.size(); ++i) snap.state[i] = state_[i];
  snap.seed = seed_;
  snap.cached_normal = cached_normal_;
  snap.has_cached_normal = has_cached_normal_;
  return snap;
}

Rng Rng::from_snapshot(const RngSnapshot& snap) {
  Rng rng(snap.seed);
  for (std::size_t i = 0; i < snap.state.size(); ++i) rng.state_[i] = snap.state[i];
  rng.cached_normal_ = snap.cached_normal;
  rng.has_cached_normal_ = snap.has_cached_normal;
  return rng;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  ensure(n > 0, "Rng::uniform_int requires n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  ensure(rate > 0.0, "Rng::exponential requires rate > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_int(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace iw
