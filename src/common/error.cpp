#include "common/error.hpp"

namespace iw {

void fail(std::string_view message) { throw Error(std::string(message)); }

}  // namespace iw
