#include "common/error.hpp"

namespace iw {

void fail(std::string_view message) { throw Error(std::string(message)); }

void ensure(bool condition, std::string_view message) {
  if (!condition) fail(message);
}

}  // namespace iw
