// Byte-stable binary serialization primitives.
//
// The longitudinal fleet service persists simulation state (device
// checkpoints, streaming aggregates) and requires that checkpoint -> resume
// reproduces an uninterrupted run bit for bit. That only works if the
// serialized form is a pure function of the in-memory state: fixed
// little-endian layout regardless of host endianness, doubles stored as their
// exact IEEE-754 bit patterns (never printed and re-parsed), and reads that
// fail loudly on truncation instead of fabricating zeros.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace iw {

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Exact IEEE-754 bit pattern; round-trips NaN payloads and -0.0.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential little-endian reader over a caller-owned buffer. Every read
/// validates the remaining length (throws iw::Error on underflow), so a
/// truncated or mismatched checkpoint fails instead of yielding garbage.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  void bytes(void* out, std::size_t n) {
    need(n);
    auto* p = static_cast<std::uint8_t*>(out);
    for (std::size_t i = 0; i < n; ++i) p[i] = data_[pos_ + i];
    pos_ += n;
  }

  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    ensure(n <= data_.size() - pos_, "ByteReader: truncated input");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace iw
