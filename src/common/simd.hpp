// Portable explicit-SIMD wrapper and runtime tier dispatch.
//
// The simulation's bit-exactness contract allows vectorizing *across
// independent lanes only*: every lane must execute the same IEEE operations
// in the same order as the scalar kernel, so the wrapper exposes exactly the
// operations whose vector forms are correctly rounded per lane (add, sub,
// mul, div) plus compare/select primitives whose lane semantics are defined
// to match the scalar expressions they replace:
//
//   * stdmin(a, b) reproduces std::min(a, b) bit-for-bit including ties
//     (std::min returns `a` when neither operand is smaller; x86 MINPD
//     returns its *second* operand on ties, so stdmin(a, b) = MINPD(b, a)).
//   * select(m, a, b) is a bitwise merge of fully-set/fully-clear compare
//     masks — it returns exactly `a`'s bits where the mask is set and `b`'s
//     where it is clear, never a recomputed value.
//   * No fused multiply-add anywhere: the wrapper only offers separate mul
//     and add, and the kernel TUs are compiled with -ffp-contract=off so the
//     compiler cannot contract them behind our back (see DESIGN.md §15).
//
// Three pack types implement the same operation set:
//   * f64xn<W>  — scalar array fallback, portable to any target,
//   * f64x2     — SSE2 __m128d (baseline on x86-64),
//   * f64x4     — AVX2 __m256d (only defined in TUs compiled with -mavx2).
//
// Which kernels exist in a build is a compile-time fact (tier_compiled);
// which of those the host can run is probed once at startup (tier_usable);
// what actually runs is active_tier(): the widest usable tier, clamped by
// the IW_SIMD environment variable (off | array | sse2 | avx2) and by
// override_tier(), the test hook that lets one process compare tiers.
#pragma once

#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace iw::simd {

/// Execution tiers, ordered from "no explicit SIMD" to widest. kOff runs the
/// pre-SIMD scalar kernels unchanged; kArray runs the wrapper kernels on the
/// scalar-array pack (the portability tier, and proof the kernel itself is
/// lane-exact); kSse2/kAvx2 run the intrinsic packs.
enum class Tier : int { kOff = 0, kArray = 1, kSse2 = 2, kAvx2 = 3 };

/// Human-readable tier name ("off", "array", "sse2", "avx2").
const char* tier_name(Tier tier);

/// True when this build contains kernels for `tier` (CMake IW_SIMD plus
/// compiler/architecture support decide at build time).
bool tier_compiled(Tier tier);

/// True when `tier` is compiled in and the host CPU can execute it.
bool tier_usable(Tier tier);

/// The tier the dispatched kernels run: the widest usable tier, clamped by
/// the IW_SIMD environment variable and any override_tier() in effect.
/// Thread-safe; the environment is read once.
Tier active_tier();

/// Test hook: forces active_tier() to `tier` (which must be kOff or usable)
/// until clear_override(). Not for concurrent use with running kernels.
void override_tier(Tier tier);
void clear_override();

// ---------------------------------------------------------------------------
// Scalar-array pack: the portable fallback. Every operation is the scalar
// expression per lane, so it is trivially bit-exact with the scalar kernel;
// the intrinsic packs below must match *it*.
// ---------------------------------------------------------------------------

template <int W>
struct f64xn {
  static constexpr int kWidth = W;
  double v[W];

  struct Mask {
    bool m[W];
  };

  static f64xn load(const double* p) {
    f64xn r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(double* p, f64xn a) {
    for (int i = 0; i < W; ++i) p[i] = a.v[i];
  }
  static f64xn broadcast(double x) {
    f64xn r;
    for (int i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  friend f64xn operator+(f64xn a, f64xn b) {
    f64xn r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend f64xn operator-(f64xn a, f64xn b) {
    f64xn r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  friend f64xn operator*(f64xn a, f64xn b) {
    f64xn r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  friend f64xn operator/(f64xn a, f64xn b) {
    f64xn r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] / b.v[i];
    return r;
  }
  /// std::min(a, b) per lane (ties return `a`, exactly like std::min).
  static f64xn stdmin(f64xn a, f64xn b) {
    f64xn r;
    for (int i = 0; i < W; ++i) r.v[i] = b.v[i] < a.v[i] ? b.v[i] : a.v[i];
    return r;
  }
  static Mask lt(f64xn a, f64xn b) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] < b.v[i];
    return r;
  }
  static Mask le(f64xn a, f64xn b) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] <= b.v[i];
    return r;
  }
  static Mask gt(f64xn a, f64xn b) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] > b.v[i];
    return r;
  }
  static Mask ge(f64xn a, f64xn b) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] >= b.v[i];
    return r;
  }
  static Mask ne(f64xn a, f64xn b) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] != b.v[i];
    return r;
  }
  static Mask mask_and(Mask a, Mask b) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = a.m[i] && b.m[i];
    return r;
  }
  /// Lane bitmask (bit i set iff lane i's mask is set).
  static unsigned mask_bits(Mask a) {
    unsigned bits = 0;
    for (int i = 0; i < W; ++i) bits |= a.m[i] ? (1u << i) : 0u;
    return bits;
  }
  static Mask mask_from_bits(unsigned bits) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = (bits & (1u << i)) != 0;
    return r;
  }
  /// a where the mask is set, b elsewhere — exact bits, no recomputation.
  static f64xn select(Mask m, f64xn a, f64xn b) {
    f64xn r;
    for (int i = 0; i < W; ++i) r.v[i] = m.m[i] ? a.v[i] : b.v[i];
    return r;
  }
  /// a & ~b per lane.
  static Mask mask_andnot(Mask a, Mask b) {
    Mask r;
    for (int i = 0; i < W; ++i) r.m[i] = a.m[i] && !b.m[i];
    return r;
  }

  // Unsigned-64 companion pack for the kernels' stream counters (sequence
  // numbers, attempt/completion tallies). Integer adds are exact, so these
  // are bit-exact with the scalar per-lane updates by construction.
  struct U {
    std::uint64_t v[W];
  };

  static U uload(const std::uint64_t* p) {
    U r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static void ustore(std::uint64_t* p, U a) {
    for (int i = 0; i < W; ++i) p[i] = a.v[i];
  }
  /// a + 1 on every lane.
  static U uincr(U a) {
    U r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] + 1u;
    return r;
  }
  /// a + 1 on the mask's lanes, a elsewhere.
  static U uincr(U a, Mask m) {
    U r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] + (m.m[i] ? 1u : 0u);
    return r;
  }
  /// a's lanes where the mask is set, b's elsewhere.
  static U uselect(Mask m, U a, U b) {
    U r;
    for (int i = 0; i < W; ++i) r.v[i] = m.m[i] ? a.v[i] : b.v[i];
    return r;
  }
};

// ---------------------------------------------------------------------------
// SSE2 pack (baseline on x86-64). Compare masks are all-ones/all-zeros
// doubles, so bitwise select merges exact lane bits.
// ---------------------------------------------------------------------------

#if defined(__SSE2__)
struct f64x2 {
  static constexpr int kWidth = 2;
  __m128d v;

  struct Mask {
    __m128d m;
  };

  static f64x2 load(const double* p) { return {_mm_loadu_pd(p)}; }
  static void store(double* p, f64x2 a) { _mm_storeu_pd(p, a.v); }
  static f64x2 broadcast(double x) { return {_mm_set1_pd(x)}; }
  friend f64x2 operator+(f64x2 a, f64x2 b) { return {_mm_add_pd(a.v, b.v)}; }
  friend f64x2 operator-(f64x2 a, f64x2 b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend f64x2 operator*(f64x2 a, f64x2 b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend f64x2 operator/(f64x2 a, f64x2 b) { return {_mm_div_pd(a.v, b.v)}; }
  /// MINPD returns its second operand on ties; std::min(a, b) returns `a`
  /// unless b < a, so the operands swap.
  static f64x2 stdmin(f64x2 a, f64x2 b) { return {_mm_min_pd(b.v, a.v)}; }
  static Mask lt(f64x2 a, f64x2 b) { return {_mm_cmplt_pd(a.v, b.v)}; }
  static Mask le(f64x2 a, f64x2 b) { return {_mm_cmple_pd(a.v, b.v)}; }
  static Mask gt(f64x2 a, f64x2 b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
  static Mask ge(f64x2 a, f64x2 b) { return {_mm_cmpge_pd(a.v, b.v)}; }
  static Mask ne(f64x2 a, f64x2 b) { return {_mm_cmpneq_pd(a.v, b.v)}; }
  static Mask mask_and(Mask a, Mask b) { return {_mm_and_pd(a.m, b.m)}; }
  static unsigned mask_bits(Mask a) {
    return static_cast<unsigned>(_mm_movemask_pd(a.m));
  }
  static Mask mask_from_bits(unsigned bits) {
    const __m128i ones = _mm_set_epi64x((bits & 2u) ? -1 : 0, (bits & 1u) ? -1 : 0);
    return {_mm_castsi128_pd(ones)};
  }
  static f64x2 select(Mask m, f64x2 a, f64x2 b) {
    return {_mm_or_pd(_mm_and_pd(m.m, a.v), _mm_andnot_pd(m.m, b.v))};
  }
  static Mask mask_andnot(Mask a, Mask b) {
    return {_mm_andnot_pd(b.m, a.m)};
  }

  // Unsigned-64 companion pack (see f64xn::U). A set compare-mask lane is
  // the two's-complement -1, so "add 1 where the mask is set" is a single
  // psubq against the mask.
  struct U {
    __m128i v;
  };

  static U uload(const std::uint64_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static void ustore(std::uint64_t* p, U a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
  }
  static U uincr(U a) { return {_mm_sub_epi64(a.v, _mm_set1_epi64x(-1))}; }
  static U uincr(U a, Mask m) {
    return {_mm_sub_epi64(a.v, _mm_castpd_si128(m.m))};
  }
  static U uselect(Mask m, U a, U b) {
    const __m128i mi = _mm_castpd_si128(m.m);
    return {_mm_or_si128(_mm_and_si128(mi, a.v), _mm_andnot_si128(mi, b.v))};
  }
};
#endif  // __SSE2__

// ---------------------------------------------------------------------------
// AVX2 pack. Only TUs compiled with -mavx2 see this definition; the runtime
// dispatcher guarantees the code never executes on a host without AVX2.
// ---------------------------------------------------------------------------

#if defined(__AVX2__)
struct f64x4 {
  static constexpr int kWidth = 4;
  __m256d v;

  struct Mask {
    __m256d m;
  };

  static f64x4 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static void store(double* p, f64x4 a) { _mm256_storeu_pd(p, a.v); }
  static f64x4 broadcast(double x) { return {_mm256_set1_pd(x)}; }
  friend f64x4 operator+(f64x4 a, f64x4 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend f64x4 operator-(f64x4 a, f64x4 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend f64x4 operator*(f64x4 a, f64x4 b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend f64x4 operator/(f64x4 a, f64x4 b) { return {_mm256_div_pd(a.v, b.v)}; }
  static f64x4 stdmin(f64x4 a, f64x4 b) { return {_mm256_min_pd(b.v, a.v)}; }
  static Mask lt(f64x4 a, f64x4 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  static Mask le(f64x4 a, f64x4 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
  }
  static Mask gt(f64x4 a, f64x4 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  static Mask ge(f64x4 a, f64x4 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
  }
  static Mask ne(f64x4 a, f64x4 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_NEQ_UQ)};
  }
  static Mask mask_and(Mask a, Mask b) { return {_mm256_and_pd(a.m, b.m)}; }
  static unsigned mask_bits(Mask a) {
    return static_cast<unsigned>(_mm256_movemask_pd(a.m));
  }
  static Mask mask_from_bits(unsigned bits) {
    const __m256i ones =
        _mm256_set_epi64x((bits & 8u) ? -1 : 0, (bits & 4u) ? -1 : 0,
                          (bits & 2u) ? -1 : 0, (bits & 1u) ? -1 : 0);
    return {_mm256_castsi256_pd(ones)};
  }
  static f64x4 select(Mask m, f64x4 a, f64x4 b) {
    return {_mm256_blendv_pd(b.v, a.v, m.m)};
  }
  static Mask mask_andnot(Mask a, Mask b) {
    return {_mm256_andnot_pd(b.m, a.m)};
  }

  // Unsigned-64 companion pack (see f64xn::U and the f64x2 note on psubq
  // against the compare mask).
  struct U {
    __m256i v;
  };

  static U uload(const std::uint64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void ustore(std::uint64_t* p, U a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
  }
  static U uincr(U a) {
    return {_mm256_sub_epi64(a.v, _mm256_set1_epi64x(-1))};
  }
  static U uincr(U a, Mask m) {
    return {_mm256_sub_epi64(a.v, _mm256_castpd_si256(m.m))};
  }
  static U uselect(Mask m, U a, U b) {
    const __m256i mi = _mm256_castpd_si256(m.m);
    return {
        _mm256_or_si256(_mm256_and_si256(mi, a.v), _mm256_andnot_si256(mi, b.v))};
  }
};
#endif  // __AVX2__

}  // namespace iw::simd
