#include "common/hostinfo.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace iw::hostinfo {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  // VmHWM is the high-water mark of the resident set, in kB.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      unsigned long long kb = 0;
      if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
        std::fclose(f);
        return static_cast<std::uint64_t>(kb) * 1024u;
      }
    }
    std::fclose(f);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
#endif
  }
#endif
  return 0;
}

std::string cpu_model() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[512];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "model name", 10) == 0) {
        const char* colon = std::strchr(line, ':');
        if (colon != nullptr) {
          const char* s = colon + 1;
          while (*s == ' ' || *s == '\t') ++s;
          std::string model(s);
          while (!model.empty() && (model.back() == '\n' || model.back() == '\r')) {
            model.pop_back();
          }
          std::fclose(f);
          return model;
        }
      }
    }
    std::fclose(f);
  }
#endif
  return "unknown";
}

std::string cpu_simd_features() {
  std::string features;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  if (__builtin_cpu_supports("sse2")) features += "sse2";
  if (__builtin_cpu_supports("avx2")) {
    if (!features.empty()) features += ' ';
    features += "avx2";
  }
#endif
  return features.empty() ? "none" : features;
}

}  // namespace iw::hostinfo
