#include "common/fixed_point.hpp"

#include <algorithm>
#include <cmath>

namespace iw::fx {

namespace {
constexpr std::int64_t kMin32 = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kMax32 = std::numeric_limits<std::int32_t>::max();
}  // namespace

std::int32_t sat32(std::int64_t v) {
  return static_cast<std::int32_t>(std::clamp(v, kMin32, kMax32));
}

std::int32_t to_fixed(double value, QFormat q) {
  const double scaled = std::nearbyint(value * q.scale());
  if (scaled >= static_cast<double>(kMax32)) return static_cast<std::int32_t>(kMax32);
  if (scaled <= static_cast<double>(kMin32)) return static_cast<std::int32_t>(kMin32);
  return static_cast<std::int32_t>(scaled);
}

double to_double(std::int32_t value, QFormat q) {
  return static_cast<double>(value) / q.scale();
}

std::int32_t sat_add(std::int32_t a, std::int32_t b) {
  return sat32(static_cast<std::int64_t>(a) + b);
}

std::int32_t sat_sub(std::int32_t a, std::int32_t b) {
  return sat32(static_cast<std::int64_t>(a) - b);
}

std::int32_t mul(std::int32_t a, std::int32_t b, QFormat q) {
  const std::int64_t p = static_cast<std::int64_t>(a) * b;
  return sat32(p >> q.frac_bits);
}

std::int64_t mac(std::int64_t acc, std::int32_t a, std::int32_t b) {
  return acc + static_cast<std::int64_t>(a) * b;
}

std::int32_t reduce_acc(std::int64_t acc, QFormat q) {
  // Round-to-nearest before the arithmetic shift.
  const std::int64_t rounding = std::int64_t{1} << (q.frac_bits - 1);
  return sat32((acc + rounding) >> q.frac_bits);
}

std::int32_t clip(std::int32_t v, std::int32_t bound) {
  return std::clamp(v, -bound, bound);
}

}  // namespace iw::fx
