#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace iw {

double mean(std::span<const double> values) {
  ensure(!values.empty(), "mean of empty range");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - m) * (v - m);
  return sum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double rms(std::span<const double> values) {
  ensure(!values.empty(), "rms of empty range");
  double sum = 0.0;
  for (double v : values) sum += v * v;
  return std::sqrt(sum / static_cast<double>(values.size()));
}

double min_value(std::span<const double> values) {
  ensure(!values.empty(), "min of empty range");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  ensure(!values.empty(), "max of empty range");
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::vector<double> values, double p) {
  ensure(!values.empty(), "percentile of empty range");
  ensure(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace iw
