#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

// Build facts (what kernels exist) are decided by CMake: IW_SIMD_ENABLED is
// defined tree-wide when the IW_SIMD option is ON, and IW_SIMD_HAVE_AVX2 when
// the compiler accepted -mavx2 for the AVX2 kernel TUs. SSE2 presence is the
// x86-64 baseline, visible to this TU directly as __SSE2__.

namespace iw::simd {

namespace {

// -1 = no override; otherwise the forced tier.
std::atomic<int> g_override{-1};

Tier clamp_to_usable(Tier cap) {
  for (int t = static_cast<int>(cap); t > static_cast<int>(Tier::kOff); --t) {
    if (tier_usable(static_cast<Tier>(t))) return static_cast<Tier>(t);
  }
  return Tier::kOff;
}

Tier detect_tier() {
  Tier cap = Tier::kAvx2;
  if (const char* env = std::getenv("IW_SIMD")) {
    if (std::strcmp(env, "off") == 0) return Tier::kOff;
    if (std::strcmp(env, "array") == 0) {
      cap = Tier::kArray;
    } else if (std::strcmp(env, "sse2") == 0) {
      cap = Tier::kSse2;
    } else if (std::strcmp(env, "avx2") == 0) {
      cap = Tier::kAvx2;
    }
    // Any other value (including "on" / "auto") selects the widest tier.
  }
  return clamp_to_usable(cap);
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kOff:
      return "off";
    case Tier::kArray:
      return "array";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "?";
}

bool tier_compiled(Tier tier) {
  switch (tier) {
    case Tier::kOff:
      return true;
    case Tier::kArray:
#if defined(IW_SIMD_ENABLED)
      return true;
#else
      return false;
#endif
    case Tier::kSse2:
#if defined(IW_SIMD_ENABLED) && defined(__SSE2__)
      return true;
#else
      return false;
#endif
    case Tier::kAvx2:
#if defined(IW_SIMD_ENABLED) && defined(IW_SIMD_HAVE_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool tier_usable(Tier tier) {
  if (!tier_compiled(tier)) return false;
  switch (tier) {
    case Tier::kOff:
    case Tier::kArray:
      return true;
    case Tier::kSse2:
#if defined(__SSE2__)
      return true;  // x86-64 baseline: compiled in implies the host has it
#else
      return false;
#endif
    case Tier::kAvx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Tier active_tier() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Tier>(forced);
  static const Tier detected = detect_tier();
  return detected;
}

void override_tier(Tier tier) {
  ensure(tier == Tier::kOff || tier_usable(tier),
         "simd::override_tier: tier not usable in this build/host");
  g_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void clear_override() { g_override.store(-1, std::memory_order_relaxed); }

}  // namespace iw::simd
