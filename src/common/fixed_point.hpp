// Fixed-point arithmetic in the FANN style.
//
// FANN's fixed-point export represents every activation and weight of a
// network as a 32-bit integer with a single network-wide "decimal point"
// (number of fractional bits). The kernels running on the simulated cores
// (src/kernels) and the host-side reference implementation (src/nn) both use
// the operations defined here so their results match bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace iw::fx {

/// A Q-format descriptor: value = integer / 2^frac_bits.
struct QFormat {
  int frac_bits = 13;

  constexpr double scale() const { return static_cast<double>(1u << frac_bits); }
  /// One unit in the last place, expressed as a real value.
  constexpr double ulp() const { return 1.0 / scale(); }
  /// Largest representable real value.
  constexpr double max_value() const {
    return static_cast<double>(std::numeric_limits<std::int32_t>::max()) / scale();
  }
};

/// Saturating conversion from double to fixed point (round to nearest).
std::int32_t to_fixed(double value, QFormat q);

/// Conversion from fixed point back to double.
double to_double(std::int32_t value, QFormat q);

/// Saturating 32-bit addition.
std::int32_t sat_add(std::int32_t a, std::int32_t b);

/// Saturating 32-bit subtraction.
std::int32_t sat_sub(std::int32_t a, std::int32_t b);

/// Fixed-point multiply: (a * b) >> frac_bits with a 64-bit intermediate and
/// saturation of the final result.
std::int32_t mul(std::int32_t a, std::int32_t b, QFormat q);

/// Multiply-accumulate with a 64-bit accumulator: acc + a * b (no shift).
/// The caller shifts once per dot product, which is what the kernels do.
std::int64_t mac(std::int64_t acc, std::int32_t a, std::int32_t b);

/// Reduce a 64-bit accumulator of frac_bits*2 weighted products back to
/// Q(frac_bits), with rounding and saturation.
std::int32_t reduce_acc(std::int64_t acc, QFormat q);

/// Saturate a 64-bit value into int32 range.
std::int32_t sat32(std::int64_t v);

/// Clip to a symmetric range [-bound, bound].
std::int32_t clip(std::int32_t v, std::int32_t bound);

}  // namespace iw::fx
