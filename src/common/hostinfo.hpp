// Host observability helpers shared by the benchmarks and CLI tools:
// peak-RSS probing for memory reporting and CPU identification for
// committed benchmark metadata (perf numbers are only comparable across
// containers when the JSON records what silicon produced them).
#pragma once

#include <cstdint>
#include <string>

namespace iw::hostinfo {

/// Peak resident set size of this process in bytes. Linux: VmHWM from
/// /proc/self/status (falls back to getrusage); other POSIX: getrusage.
/// Returns 0 when no probe is available.
std::uint64_t peak_rss_bytes();

/// CPU model string ("model name" from /proc/cpuinfo on Linux), or "unknown".
std::string cpu_model();

/// Space-separated ISA feature summary relevant to the SIMD tiers, probed at
/// runtime (e.g. "sse2 avx2"); "none" when neither is available.
std::string cpu_simd_features();

}  // namespace iw::hostinfo
