// Small statistics helpers used by the feature extractors, the benchmark
// harnesses and the tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iw {

double mean(std::span<const double> values);
/// Sample variance (divides by n - 1); returns 0 for fewer than two samples.
double variance(std::span<const double> values);
double stddev(std::span<const double> values);
double rms(std::span<const double> values);
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linear-interpolation percentile, p in [0, 100].
double percentile(std::vector<double> values, double p);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace iw
