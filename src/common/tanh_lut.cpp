#include "common/tanh_lut.hpp"

#include <cmath>

#include "common/error.hpp"

namespace iw::fx {

namespace {
bool is_power_of_two(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

TanhTable::TanhTable(QFormat q, int log2_size, double range)
    : q_(q), log2_size_(log2_size), range_(range) {
  ensure(log2_size >= 4 && log2_size <= 16, "TanhTable: log2_size out of range");
  range_fixed_ = to_fixed(range, q);
  ensure(is_power_of_two(range_fixed_),
         "TanhTable: range must map to a power-of-two fixed value so the "
         "kernels can index with shifts");
  const std::int64_t span = 2 * static_cast<std::int64_t>(range_fixed_);
  const std::int64_t step = span >> log2_size;
  ensure(step >= 1, "TanhTable: table too fine for this Q format");
  step_fixed_ = static_cast<std::int32_t>(step);
  step_shift_ = 0;
  while ((std::int64_t{1} << step_shift_) < step) ++step_shift_;
  ensure((std::int64_t{1} << step_shift_) == step, "TanhTable: step not a power of two");

  const std::size_t size = std::size_t{1} << log2_size;
  samples_.resize(size + 1);
  for (std::size_t i = 0; i <= size; ++i) {
    const double x = -range + static_cast<double>(i) * (2.0 * range / static_cast<double>(size));
    samples_[i] = to_fixed(std::tanh(x), q);
  }
}

std::int32_t TanhTable::eval(std::int32_t x) const {
  if (x <= -range_fixed_) return samples_.front();
  if (x >= range_fixed_) return samples_.back();
  const std::int64_t offset = static_cast<std::int64_t>(x) + range_fixed_;
  const std::size_t index = static_cast<std::size_t>(offset >> step_shift_);
  const std::int32_t frac = static_cast<std::int32_t>(offset & (step_fixed_ - 1));
  const std::int32_t y0 = samples_[index];
  const std::int32_t y1 = samples_[index + 1];
  const std::int64_t delta = (static_cast<std::int64_t>(y1 - y0) * frac) >> step_shift_;
  return static_cast<std::int32_t>(y0 + delta);
}

double TanhTable::eval_real(double x) const {
  return to_double(eval(to_fixed(x, q_)), q_);
}

}  // namespace iw::fx
