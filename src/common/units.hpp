// Unit conventions and conversion helpers.
//
// The simulation stack carries physical quantities as doubles in SI units and
// encodes the unit in the variable name suffix: `_s` seconds, `_w` watts,
// `_j` joules, `_a` amperes, `_v` volts, `_hz` hertz, `_c` degrees Celsius,
// `_lx` lux. These helpers keep scale conversions readable at call sites.
#pragma once

namespace iw::units {

constexpr double from_mw(double mw) { return mw * 1e-3; }
constexpr double from_uw(double uw) { return uw * 1e-6; }
constexpr double to_mw(double w) { return w * 1e3; }
constexpr double to_uw(double w) { return w * 1e6; }

constexpr double from_mj(double mj) { return mj * 1e-3; }
constexpr double from_uj(double uj) { return uj * 1e-6; }
constexpr double to_mj(double j) { return j * 1e3; }
constexpr double to_uj(double j) { return j * 1e6; }

constexpr double from_ma(double ma) { return ma * 1e-3; }
constexpr double from_ua(double ua) { return ua * 1e-6; }
constexpr double to_ma(double a) { return a * 1e3; }
constexpr double to_ua(double a) { return a * 1e6; }

constexpr double from_mhz(double mhz) { return mhz * 1e6; }
constexpr double from_khz(double khz) { return khz * 1e3; }

constexpr double from_ms(double ms) { return ms * 1e-3; }
constexpr double from_us(double us) { return us * 1e-6; }
constexpr double to_ms(double s) { return s * 1e3; }
constexpr double to_us(double s) { return s * 1e6; }

constexpr double hours_to_s(double h) { return h * 3600.0; }
constexpr double s_to_hours(double s) { return s / 3600.0; }

/// Energy of a constant power draw over a duration.
constexpr double energy_j(double power_w, double duration_s) { return power_w * duration_s; }

/// mAh of charge at a given current in amps over seconds.
constexpr double coulombs_to_mah(double c) { return c / 3.6; }
constexpr double mah_to_coulombs(double mah) { return mah * 3.6; }

}  // namespace iw::units
