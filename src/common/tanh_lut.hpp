// Fixed-point tanh activation via lookup table with linear interpolation.
//
// FANN approximates sigmoidal activations with a piecewise-linear function in
// fixed-point mode. We use a uniformly sampled tanh table over [-range, range]
// with linear interpolation between samples; inputs outside the range saturate
// to +/-1. The table layout is chosen so the assembly kernels (src/kernels)
// can evaluate it with shifts, one load pair and one multiply.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"

namespace iw::fx {

/// Precomputed tanh table in a given Q format.
class TanhTable {
 public:
  /// Builds a table of `size + 1` samples (size must be a power of two)
  /// covering [-range, range].
  TanhTable(QFormat q, int log2_size = 9, double range = 4.0);

  /// Evaluates tanh(x) for a fixed-point x in the table's Q format.
  std::int32_t eval(std::int32_t x) const;

  /// Reference double-precision evaluation of the same approximation (used by
  /// property tests to bound the approximation error).
  double eval_real(double x) const;

  QFormat format() const { return q_; }
  int log2_size() const { return log2_size_; }
  double range() const { return range_; }
  const std::vector<std::int32_t>& samples() const { return samples_; }

  /// Fixed-point value of `range` (the saturation threshold).
  std::int32_t range_fixed() const { return range_fixed_; }
  /// Number of input ulps covered by one table step.
  std::int32_t step_fixed() const { return step_fixed_; }

 private:
  QFormat q_;
  int log2_size_;
  double range_;
  std::int32_t range_fixed_;
  std::int32_t step_fixed_;
  int step_shift_;
  std::vector<std::int32_t> samples_;
};

}  // namespace iw::fx
