// Deterministic pseudo-random number generation.
//
// All stochastic parts of the simulation stack (synthetic biosignals, noise
// injection, weight initialization) draw from this xoshiro256** generator so
// that experiments are reproducible bit-for-bit across runs given a seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace iw {

/// Complete draw-position state of an Rng ("RNG cursor"). Restoring a
/// snapshot resumes the stream mid-sequence with every subsequent draw
/// bit-identical — including a Box-Muller pair split across the snapshot
/// (the cached second variate travels with the state). This is what lets a
/// fleet checkpoint cut a device's multi-month random stream at a day
/// boundary and splice it back together on resume.
struct RngSnapshot {
  std::array<std::uint64_t, 4> state{};
  std::uint64_t seed = 0;
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies UniformRandomBitGenerator so it can also drive <random>
/// distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1f2e3d4c5b6a7988ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// The seed this generator was constructed from.
  std::uint64_t seed() const { return seed_; }

  /// Child generator for an independent stream. The child seed is derived
  /// (via splitmix64) from the *construction* seed and `stream_id` only, so
  /// substreams do not depend on how many values were drawn from the parent,
  /// and distinct stream ids give decorrelated sequences. This is what makes
  /// per-device RNG in the fleet engine independent of worker scheduling.
  Rng substream(std::uint64_t stream_id) const;

  /// Captures the full generator state at the current draw position.
  RngSnapshot snapshot() const;
  /// Reconstructs a generator that continues exactly where `snap` was taken.
  static Rng from_snapshot(const RngSnapshot& snap);

  /// Raw 64 random bits.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given rate (events per unit time). Requires rate > 0.
  double exponential(double rate);
  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace iw
