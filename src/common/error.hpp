// Error-handling primitives shared by every InfiniWolf module.
//
// The library follows the C++ Core Guidelines' error model: recoverable
// errors throw exceptions derived from std::runtime_error; programming
// errors (broken preconditions) also throw so that tests can observe them.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace iw {

/// Base class for all errors raised by the InfiniWolf libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws iw::Error with the given message. Marked noreturn so callers can
/// use it in value-returning control flow.
[[noreturn]] void fail(std::string_view message);

/// Precondition/invariant check: throws iw::Error when `condition` is false.
/// Inline so that hot loops (the battery ops and the day kernel run it tens of
/// thousands of times per simulated device-day) pay one predicted branch, not
/// an out-of-line call.
inline void ensure(bool condition, std::string_view message) {
  if (!condition) [[unlikely]] fail(message);
}

}  // namespace iw
