// Batched, allocation-free inference for all three arithmetic paths.
//
// The per-sample entry points (Network::infer, QuantizedNetwork::infer_fixed,
// QuantizedNetwork16::infer_fixed) heap-allocate activation vectors on every
// call and stream the full weight matrix from memory once per sample. At fleet
// scale the classifier dominates, so this module provides one batch engine per
// arithmetic path with workspaces preallocated at construction:
//
//   * Samples are processed in tiles of `tile` rows. Inside a tile the
//     activations are stored column-major (feature-major: entry `i * tile + s`
//     for sample s), so the innermost loop runs over contiguous samples and
//     each weight row is streamed once per tile instead of once per sample —
//     the cache-blocking scheme that makes large networks (Network B's 81k
//     weights) batch-friendly.
//   * Per sample, the arithmetic sequence is identical to the per-sample
//     reference: accumulate in input order (one shift per product on the
//     32-bit path, packed pairs on the 16-bit path), add bias, clip, LUT.
//     The fixed-point engines are therefore bit-exact with infer_fixed,
//     including the Q16 even-pair padding semantics; tests/nn/test_batch.cpp
//     asserts this across shapes and batch sizes.
//   * After construction, infer/classify perform no heap allocation.
//
// All engines keep a pointer to their network, which must outlive them and
// must not be mutated while the engine is in use.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"

namespace iw::nn {

/// Samples per tile when the caller does not choose: 8 accumulators fit the
/// host's vector registers on every path (8 doubles, 8 int64, 8 int32).
inline constexpr std::size_t kDefaultBatchTile = 8;
/// Hard cap on the tile size (accumulators live in a fixed on-stack array).
inline constexpr std::size_t kMaxBatchTile = 16;
/// Default tile for the 16-bit engine: 16 int16 lanes fill a whole vector
/// register before widening, which measures fastest on the Q16 path.
inline constexpr std::size_t kDefaultBatchTile16 = kMaxBatchTile;

/// Float batch engine, bit-exact with Network::infer.
class FloatBatch {
 public:
  explicit FloatBatch(const Network& net, std::size_t tile = kDefaultBatchTile);

  const Network& network() const { return *net_; }
  std::size_t tile() const { return tile_; }

  /// `inputs` holds n input rows packed row-major (n * num_inputs() floats);
  /// fills `outputs` (n * num_outputs() floats).
  void infer(std::span<const float> inputs, std::span<float> outputs);
  /// Scattered input rows, each pointing at num_inputs() floats.
  void infer(std::span<const float* const> rows, std::span<float> outputs);
  /// Argmax classification of scattered rows into `labels` (one per row).
  void classify(std::span<const float* const> rows, std::span<std::size_t> labels);

 private:
  const float* run_tile(std::size_t t);

  const Network* net_;
  std::size_t tile_;
  std::size_t stride_;  // widest layer, in activations
  std::vector<float> in_, out_;  // ping-pong tiles, stride_ * tile_ each
};

/// 32-bit fixed-point batch engine, bit-exact with
/// QuantizedNetwork::infer_fixed (same accumulate-shift order, bias add,
/// clip and tanh-LUT evaluation per neuron).
class FixedBatch {
 public:
  explicit FixedBatch(const QuantizedNetwork& net,
                      std::size_t tile = kDefaultBatchTile);

  const QuantizedNetwork& network() const { return *net_; }
  std::size_t tile() const { return tile_; }

  /// `inputs` holds n quantized rows packed row-major; fills `outputs`
  /// (n * num_outputs() fixed values).
  void infer_fixed(std::span<const std::int32_t> inputs,
                   std::span<std::int32_t> outputs);
  /// Quantizes each float row exactly like QuantizedNetwork::quantize_input
  /// (clamp to [-1, 1], round to nearest), runs the fixed pipeline, and takes
  /// the argmax on the fixed outputs — no dequantization anywhere.
  void classify(std::span<const float* const> rows, std::span<std::size_t> labels);

 private:
  const std::int32_t* run_tile(std::size_t t);
  void load_rows(std::span<const float* const> rows, std::size_t base,
                 std::size_t t);

  const QuantizedNetwork* net_;
  std::size_t tile_;
  std::size_t stride_;
  std::vector<std::int32_t> in_, out_;
};

/// 16-bit packed-SIMD batch engine, bit-exact with
/// QuantizedNetwork16::infer_fixed including the even-pair padding: rows are
/// consumed as whole pairs, odd widths carry a zero pad activation.
class Fixed16Batch {
 public:
  explicit Fixed16Batch(const QuantizedNetwork16& net,
                        std::size_t tile = kDefaultBatchTile16);

  const QuantizedNetwork16& network() const { return *net_; }
  std::size_t tile() const { return tile_; }

  /// `inputs` holds n quantized rows packed row-major (n * num_inputs(),
  /// unpadded); fills `outputs` (n * num_outputs() values, unpadded).
  void infer_fixed(std::span<const std::int16_t> inputs,
                   std::span<std::int16_t> outputs);
  /// Quantize + infer + argmax on the int16 outputs.
  void classify(std::span<const float* const> rows, std::span<std::size_t> labels);

 private:
  const std::int16_t* run_tile(std::size_t t);
  void load_rows(std::span<const float* const> rows, std::size_t base,
                 std::size_t t);

  const QuantizedNetwork16* net_;
  std::size_t tile_;
  std::size_t stride_;  // widest *padded* layer width
  std::vector<std::int16_t> in_, out_;
};

}  // namespace iw::nn
