// SSE2 tier of the packed 16-bit batch MAC: 16 lanes per tile held in four
// 128-bit int32 accumulators. See batch_simd.hpp for the bit-exactness
// argument; the statement-level mapping to run_fixed16_tile<16> is annotated
// inline.
#include "nn/batch_simd.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <algorithm>
#include <cstddef>

#include "nn/quantize16.hpp"

namespace iw::nn::detail {

namespace {
constexpr std::size_t kT = 16;  // kDefaultBatchTile16: one tile = 16 lanes

inline __m128i load8(const std::int16_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
}  // namespace

const std::int16_t* run_fixed16_tile16_sse2(const QuantizedNetwork16& net,
                                            std::int16_t* cur,
                                            std::int16_t* nxt) {
  const std::int32_t range = net.tanh_table().range_fixed();
  const int frac = net.frac_bits();
  for (const QuantizedLayer16& layer : net.layers()) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int16_t* row = layer.weights.data() + o * 2 * layer.row_pairs;
      // acc[s] = 0 — lanes 0..3 / 4..7 / 8..11 / 12..15.
      __m128i acc0 = _mm_setzero_si128();
      __m128i acc1 = _mm_setzero_si128();
      __m128i acc2 = _mm_setzero_si128();
      __m128i acc3 = _mm_setzero_si128();
      for (std::size_t p = 0; p < layer.row_pairs; ++p) {
        // Weight pair broadcast as one int32: w0 in the low half, w1 high,
        // matching madd's (even, odd) element pairing after the unpacks.
        const std::uint32_t pair =
            (static_cast<std::uint32_t>(static_cast<std::uint16_t>(
                 row[2 * p + 1]))
             << 16) |
            static_cast<std::uint16_t>(row[2 * p]);
        const __m128i wv = _mm_set1_epi32(static_cast<int>(pair));
        const std::int16_t* col0 = cur + (2 * p) * kT;
        const std::int16_t* col1 = cur + (2 * p + 1) * kT;
        const __m128i a0 = load8(col0);      // col0 lanes 0..7
        const __m128i a1 = load8(col0 + 8);  // col0 lanes 8..15
        const __m128i b0 = load8(col1);      // col1 lanes 0..7
        const __m128i b1 = load8(col1 + 8);  // col1 lanes 8..15
        // unpack interleaves (col0[s], col1[s]); madd then yields
        // w0*col0[s] + w1*col1[s] per int32 lane — the scalar kernel's two
        // adds folded into one exact mod-2^32 sum.
        acc0 = _mm_add_epi32(acc0, _mm_madd_epi16(_mm_unpacklo_epi16(a0, b0), wv));
        acc1 = _mm_add_epi32(acc1, _mm_madd_epi16(_mm_unpackhi_epi16(a0, b0), wv));
        acc2 = _mm_add_epi32(acc2, _mm_madd_epi16(_mm_unpacklo_epi16(a1, b1), wv));
        acc3 = _mm_add_epi32(acc3, _mm_madd_epi16(_mm_unpackhi_epi16(a1, b1), wv));
      }
      alignas(16) std::int32_t acc[kT];
      _mm_store_si128(reinterpret_cast<__m128i*>(acc + 0), acc0);
      _mm_store_si128(reinterpret_cast<__m128i*>(acc + 4), acc1);
      _mm_store_si128(reinterpret_cast<__m128i*>(acc + 8), acc2);
      _mm_store_si128(reinterpret_cast<__m128i*>(acc + 12), acc3);
      // Scalar tail, verbatim from run_fixed16_tile: the tanh table lookup is
      // a gather, so vectorizing the shift/clamp alone buys nothing.
      const std::int32_t bias = layer.biases[o];
      std::int16_t* dst = nxt + o * kT;
      for (std::size_t s = 0; s < kT; ++s) {
        const std::int32_t shifted = (acc[s] + bias) >> frac;
        const std::int32_t clamped = std::clamp(shifted, -range, range - 1);
        dst[s] = static_cast<std::int16_t>(net.tanh_table().eval(clamped));
      }
    }
    if (layer.n_out % 2 != 0) {
      std::int16_t* pad = nxt + layer.n_out * kT;
      for (std::size_t s = 0; s < kT; ++s) pad[s] = 0;
    }
    std::swap(cur, nxt);
  }
  return cur;
}

}  // namespace iw::nn::detail

#else

namespace iw::nn::detail {
// Non-x86 target: the dispatcher never selects this tier (tier_usable is
// false), but the symbol must exist.
const std::int16_t* run_fixed16_tile16_sse2(const QuantizedNetwork16&,
                                            std::int16_t*, std::int16_t*) {
  return nullptr;
}
}  // namespace iw::nn::detail

#endif
