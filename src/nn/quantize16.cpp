#include "nn/quantize16.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace iw::nn {

int select_frac_bits16(const Network& net, int max_frac_bits) {
  ensure(max_frac_bits >= 4 && max_frac_bits <= 14, "select_frac_bits16: bad cap");
  const double wmax = std::max(1.0, static_cast<double>(net.max_abs_weight()));
  const double row = std::max(1.0, static_cast<double>(net.max_row_abs_sum()));
  for (int f = max_frac_bits; f >= 4; --f) {
    const double scale = std::ldexp(1.0, f);
    const bool weight_fits = wmax * scale < 32767.0;
    // Whole-row accumulation in Q(2f) plus the bias, with 2x margin.
    const bool acc_ok = (row + wmax) * scale * scale * 2.0 < 2147483648.0;
    if (weight_fits && acc_ok) return f;
  }
  fail("select_frac_bits16: weights too large for the 16-bit format");
}

std::int16_t to_fixed16(double value, int frac_bits) {
  const double scaled = std::nearbyint(value * std::ldexp(1.0, frac_bits));
  const double clamped = std::clamp(scaled, -32768.0, 32767.0);
  return static_cast<std::int16_t>(clamped);
}

QuantizedNetwork16 QuantizedNetwork16::from(const Network& net, int max_frac_bits,
                                            int tanh_log2_size) {
  for (const Layer& layer : net.layers()) {
    ensure(layer.activation == Activation::kTanh,
           "QuantizedNetwork16: only tanh activations are supported");
  }
  const int frac = select_frac_bits16(net, max_frac_bits);
  QuantizedNetwork16 qn(fx::QFormat{frac}, tanh_log2_size);
  qn.layers_.reserve(net.num_layers());
  const double bias_scale = std::ldexp(1.0, 2 * frac);
  for (const Layer& layer : net.layers()) {
    QuantizedLayer16 ql;
    ql.n_in = layer.n_in;
    ql.n_out = layer.n_out;
    ql.row_pairs = (layer.n_in + 1) / 2;
    ql.weights.assign(2 * ql.row_pairs * layer.n_out, 0);
    ql.biases.resize(layer.n_out);
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      for (std::size_t i = 0; i < layer.n_in; ++i) {
        ql.weights[o * 2 * ql.row_pairs + i] = to_fixed16(layer.weight(o, i), frac);
      }
      ql.biases[o] = static_cast<std::int32_t>(
          std::nearbyint(static_cast<double>(layer.bias(o)) * bias_scale));
    }
    qn.layers_.push_back(std::move(ql));
  }
  return qn;
}

std::vector<std::int16_t> QuantizedNetwork16::quantize_input(
    std::span<const float> input) const {
  ensure(input.size() == num_inputs(), "QuantizedNetwork16: input width mismatch");
  std::vector<std::int16_t> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out[i] = to_fixed16(std::clamp(input[i], -1.0f, 1.0f), q_.frac_bits);
  }
  return out;
}

std::vector<std::int16_t> QuantizedNetwork16::infer_fixed(
    std::span<const std::int16_t> input) const {
  ensure(input.size() == num_inputs(), "QuantizedNetwork16: input width mismatch");
  const std::int32_t range = tanh_.range_fixed();
  std::vector<std::int16_t> current(input.begin(), input.end());
  // Pad to an even length so pairs are always complete (pad weights are 0).
  if (current.size() % 2 != 0) current.push_back(0);

  std::vector<std::int16_t> next;
  for (const QuantizedLayer16& layer : layers_) {
    next.assign(layer.n_out % 2 == 0 ? layer.n_out : layer.n_out + 1, 0);
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int16_t* row = layer.weights.data() + o * 2 * layer.row_pairs;
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < layer.row_pairs; ++p) {
        // Mirrors pv.sdotsp.h: two int16 products accumulated in int32.
        acc += static_cast<std::int32_t>(row[2 * p]) * current[2 * p];
        acc += static_cast<std::int32_t>(row[2 * p + 1]) * current[2 * p + 1];
      }
      acc += layer.biases[o];
      const std::int32_t shifted = acc >> q_.frac_bits;
      const std::int32_t clamped = std::clamp(shifted, -range, range - 1);
      next[o] = static_cast<std::int16_t>(tanh_.eval(clamped));
    }
    current.swap(next);
  }
  current.resize(num_outputs());
  return current;
}

std::size_t QuantizedNetwork16::classify(std::span<const float> input) const {
  const std::vector<std::int16_t> fixed = infer_fixed(quantize_input(input));
  return argmax(std::span<const std::int16_t>(fixed));
}

std::vector<float> QuantizedNetwork16::infer(std::span<const float> input) const {
  const auto fixed = infer_fixed(quantize_input(input));
  std::vector<float> out(fixed.size());
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    out[i] = static_cast<float>(fx::to_double(fixed[i], q_));
  }
  return out;
}

}  // namespace iw::nn
