// 16-bit packed-SIMD quantization (the pv.sdotsp.h path).
//
// Mr. Wolf's RI5CY cores offer packed 16-bit dot-product instructions that
// retire two MACs per cycle. This module provides the matching export: all
// weights and activations as int16 in one Q format, bias pre-shifted into
// the accumulator domain, rows padded to an even number of entries so the
// kernel can always consume whole 32-bit pairs (pad weights are zero, so the
// paired garbage activation contributes nothing).
//
// Kernel/neuron semantics (mirrored bit-exactly by infer_fixed):
//   acc32  = sum over pairs of (w0*x0 + w1*x1)   -- int16 x int16 products
//   acc32 += bias_q2f                            -- bias in Q(2*frac)
//   y16    = tanh_lut(clip(acc32 >> frac))
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/tanh_lut.hpp"
#include "nn/network.hpp"

namespace iw::nn {

struct QuantizedLayer16 {
  std::size_t n_in = 0;
  std::size_t n_out = 0;
  std::size_t row_pairs = 0;  // ceil(n_in / 2)
  /// Row-major per output neuron, padded with zeros to 2*row_pairs entries.
  std::vector<std::int16_t> weights;
  /// Per-neuron bias in Q(2*frac_bits).
  std::vector<std::int32_t> biases;
};

class QuantizedNetwork16 {
 public:
  /// Quantizes a tanh network for the 16-bit SIMD path. The format is
  /// narrower than the 32-bit export because the whole row accumulates
  /// before the shift (see select_frac_bits16).
  static QuantizedNetwork16 from(const Network& net, int max_frac_bits = 12,
                                 int tanh_log2_size = 9);

  int frac_bits() const { return q_.frac_bits; }
  fx::QFormat format() const { return q_; }
  const fx::TanhTable& tanh_table() const { return tanh_; }
  const std::vector<QuantizedLayer16>& layers() const { return layers_; }
  std::size_t num_inputs() const { return layers_.front().n_in; }
  std::size_t num_outputs() const { return layers_.back().n_out; }

  /// Clamps to [-1, 1] and converts to int16 in the network's Q format.
  std::vector<std::int16_t> quantize_input(std::span<const float> input) const;

  /// Host reference, bit-exact with the SIMD kernel.
  std::vector<std::int16_t> infer_fixed(std::span<const std::int16_t> input) const;

  /// Convenience float-in/float-out inference.
  std::vector<float> infer(std::span<const float> input) const;

  /// Argmax classification: quantizes, runs the fixed pipeline, and takes the
  /// argmax directly on the int16 outputs (dequantization is monotonic, so
  /// converting back to float first could never change the decision).
  std::size_t classify(std::span<const float> input) const;

 private:
  QuantizedNetwork16(fx::QFormat q, int tanh_log2_size) : q_(q), tanh_(q, tanh_log2_size) {}

  fx::QFormat q_;
  fx::TanhTable tanh_;
  std::vector<QuantizedLayer16> layers_;
};

/// Largest f <= max_frac_bits such that (a) every weight fits int16 and
/// (b) a full row accumulation plus bias stays within int32 with 2x margin.
int select_frac_bits16(const Network& net, int max_frac_bits = 12);

/// Round-to-nearest conversion to int16 in Q(frac_bits), saturating at the
/// int16 limits. This is the quantizer used for both weights and activations
/// on the 16-bit path; the batch engine reuses it so batched quantization is
/// bit-identical to quantize_input.
std::int16_t to_fixed16(double value, int frac_bits);

}  // namespace iw::nn
