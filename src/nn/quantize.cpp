#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "common/error.hpp"

namespace iw::nn {

int select_frac_bits(const Network& net, int max_frac_bits) {
  ensure(max_frac_bits >= 4 && max_frac_bits <= 24, "select_frac_bits: bad cap");
  const double wmax = std::max(1.0, static_cast<double>(net.max_abs_weight()));
  const double row = std::max(1.0, static_cast<double>(net.max_row_abs_sum()));
  for (int f = max_frac_bits; f >= 4; --f) {
    const double scale = std::ldexp(1.0, f);
    // Margin factor 2 keeps headroom for rounding and the +1 input bound.
    const bool product_ok = wmax * scale * scale * 2.0 < 2147483648.0;
    const bool sum_ok = row * scale * 2.0 < 2147483648.0;
    if (product_ok && sum_ok) return f;
  }
  fail("select_frac_bits: weights too large for 32-bit fixed point");
}

QuantizedNetwork QuantizedNetwork::from(const Network& net, int max_frac_bits,
                                        int tanh_log2_size) {
  for (const Layer& layer : net.layers()) {
    ensure(layer.activation == Activation::kTanh,
           "QuantizedNetwork: only tanh activations are supported in fixed point");
  }
  const int frac = select_frac_bits(net, max_frac_bits);
  QuantizedNetwork qn(fx::QFormat{frac}, tanh_log2_size);
  qn.layers_.reserve(net.num_layers());
  for (const Layer& layer : net.layers()) {
    QuantizedLayer ql;
    ql.n_in = layer.n_in;
    ql.n_out = layer.n_out;
    ql.weights.resize(layer.weights.size());
    for (std::size_t i = 0; i < layer.weights.size(); ++i) {
      ql.weights[i] = fx::to_fixed(layer.weights[i], qn.q_);
    }
    qn.layers_.push_back(std::move(ql));
  }
  return qn;
}

std::size_t QuantizedNetwork::num_weights() const {
  std::size_t n = 0;
  for (const QuantizedLayer& layer : layers_) n += layer.weights.size();
  return n;
}

std::vector<std::int32_t> QuantizedNetwork::quantize_input(
    std::span<const float> input) const {
  ensure(input.size() == num_inputs(), "quantize_input: width mismatch");
  std::vector<std::int32_t> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float clamped = std::clamp(input[i], -1.0f, 1.0f);
    out[i] = fx::to_fixed(clamped, q_);
  }
  return out;
}

std::vector<std::int32_t> QuantizedNetwork::infer_fixed(
    std::span<const std::int32_t> input) const {
  ensure(input.size() == num_inputs(), "infer_fixed: width mismatch");
  std::vector<std::int32_t> current(input.begin(), input.end());
  std::vector<std::int32_t> next;
  const std::int32_t range = tanh_.range_fixed();
  for (const QuantizedLayer& layer : layers_) {
    next.assign(layer.n_out, 0);
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int32_t* row = layer.weights.data() + o * (layer.n_in + 1);
      std::int64_t acc = 0;
      for (std::size_t i = 0; i < layer.n_in; ++i) {
        // Mirror the kernel exactly: 32-bit product, arithmetic shift.
        const std::int64_t prod =
            static_cast<std::int64_t>(row[i]) * static_cast<std::int64_t>(current[i]);
        ensure(prod >= std::numeric_limits<std::int32_t>::min() &&
                   prod <= std::numeric_limits<std::int32_t>::max(),
               "infer_fixed: 32-bit product overflow (format selection bug)");
        acc += prod >> q_.frac_bits;
      }
      acc += row[layer.n_in];  // bias weight times 1.0
      ensure(acc >= std::numeric_limits<std::int32_t>::min() &&
                 acc <= std::numeric_limits<std::int32_t>::max(),
             "infer_fixed: accumulator overflow (format selection bug)");
      // Kernel clamp: p.clip to [-range, range - 1], then table lookup.
      const std::int32_t clamped = std::clamp(
          static_cast<std::int32_t>(acc), -range, range - 1);
      next[o] = tanh_.eval(clamped);
    }
    current.swap(next);
  }
  return current;
}

std::vector<float> QuantizedNetwork::infer(std::span<const float> input) const {
  const std::vector<std::int32_t> fixed = infer_fixed(quantize_input(input));
  std::vector<float> out(fixed.size());
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    out[i] = static_cast<float>(fx::to_double(fixed[i], q_));
  }
  return out;
}

std::size_t QuantizedNetwork::classify_fixed(
    std::span<const std::int32_t> input) const {
  const std::vector<std::int32_t> out = infer_fixed(input);
  return argmax(std::span<const std::int32_t>(out));
}

std::size_t QuantizedNetwork::classify(std::span<const float> input) const {
  return classify_fixed(quantize_input(input));
}

void QuantizedNetwork::save(std::ostream& os) const {
  os << "IWNNQ1\n";
  os << q_.frac_bits << ' ' << tanh_.log2_size() << '\n';
  os << layers_.size() << '\n';
  for (const QuantizedLayer& layer : layers_) {
    os << layer.n_in << ' ' << layer.n_out << '\n';
    for (std::size_t i = 0; i < layer.weights.size(); ++i) {
      os << layer.weights[i] << ((i + 1 == layer.weights.size()) ? '\n' : ' ');
    }
  }
}

QuantizedNetwork QuantizedNetwork::load(std::istream& is) {
  std::string magic;
  is >> magic;
  ensure(magic == "IWNNQ1", "QuantizedNetwork::load: bad magic");
  int frac = 0, log2_size = 0;
  std::size_t n_layers = 0;
  is >> frac >> log2_size >> n_layers;
  ensure(is.good() && frac >= 4 && frac <= 24, "QuantizedNetwork::load: bad format");
  ensure(n_layers >= 1 && n_layers < 1000, "QuantizedNetwork::load: bad layer count");
  QuantizedNetwork qn(fx::QFormat{frac}, log2_size);
  qn.layers_.resize(n_layers);
  for (QuantizedLayer& layer : qn.layers_) {
    is >> layer.n_in >> layer.n_out;
    ensure(is.good() && layer.n_in > 0 && layer.n_out > 0,
           "QuantizedNetwork::load: bad layer header");
    layer.weights.resize((layer.n_in + 1) * layer.n_out);
    for (std::int32_t& w : layer.weights) is >> w;
    ensure(is.good() || is.eof(), "QuantizedNetwork::load: truncated weights");
  }
  for (std::size_t l = 1; l < qn.layers_.size(); ++l) {
    ensure(qn.layers_[l].n_in == qn.layers_[l - 1].n_out,
           "QuantizedNetwork::load: layer size chain");
  }
  return qn;
}

}  // namespace iw::nn
