#include "nn/network.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace iw::nn {

std::string to_string(Activation a) {
  switch (a) {
    case Activation::kTanh: return "tanh";
    case Activation::kLinear: return "linear";
  }
  return "?";
}

double activate(Activation a, double x) {
  switch (a) {
    case Activation::kTanh: return std::tanh(x);
    case Activation::kLinear: return x;
  }
  fail("activate: bad activation");
}

double activate_derivative_from_output(Activation a, double y) {
  switch (a) {
    case Activation::kTanh: return 1.0 - y * y;
    case Activation::kLinear: return 1.0;
  }
  fail("activate_derivative_from_output: bad activation");
}

Network Network::create(const std::vector<std::size_t>& layer_sizes, Rng& rng,
                        Activation hidden, Activation output, float init_range) {
  ensure(layer_sizes.size() >= 2, "Network::create: need at least input and output");
  ensure(init_range > 0.0f, "Network::create: init_range must be positive");
  for (std::size_t s : layer_sizes) ensure(s > 0, "Network::create: empty layer");

  std::vector<Layer> layers;
  layers.reserve(layer_sizes.size() - 1);
  for (std::size_t l = 1; l < layer_sizes.size(); ++l) {
    Layer layer;
    layer.n_in = layer_sizes[l - 1];
    layer.n_out = layer_sizes[l];
    layer.activation = (l + 1 == layer_sizes.size()) ? output : hidden;
    layer.weights.resize((layer.n_in + 1) * layer.n_out);
    for (float& w : layer.weights) {
      w = static_cast<float>(rng.uniform(-init_range, init_range));
    }
    layers.push_back(std::move(layer));
  }
  return Network(std::move(layers));
}

std::size_t Network::num_neurons() const {
  std::size_t n = num_inputs();
  for (const Layer& layer : layers_) n += layer.n_out;
  return n;
}

std::size_t Network::num_weights() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) n += layer.weights.size();
  return n;
}

std::size_t Network::memory_footprint_bytes() const {
  // FANN stores 4 ints per neuron, 4 bytes per weight and 2 ints per layer
  // record; the input layer also counts as a layer record.
  return 16 * num_neurons() + 4 * num_weights() + 8 * (layers_.size() + 1);
}

std::vector<float> Network::infer(std::span<const float> input) const {
  ensure(input.size() == num_inputs(), "Network::infer: input size mismatch");
  std::vector<float> current(input.begin(), input.end());
  std::vector<float> next;
  for (const Layer& layer : layers_) {
    next.assign(layer.n_out, 0.0f);
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      double acc = layer.bias(o);
      for (std::size_t i = 0; i < layer.n_in; ++i) {
        acc += static_cast<double>(layer.weight(o, i)) * current[i];
      }
      next[o] = static_cast<float>(activate(layer.activation, acc));
    }
    current.swap(next);
  }
  return current;
}

std::size_t Network::classify(std::span<const float> input) const {
  const std::vector<float> out = infer(input);
  return argmax(std::span<const float>(out));
}

float Network::max_abs_weight() const {
  float best = 0.0f;
  for (const Layer& layer : layers_) {
    for (float w : layer.weights) best = std::max(best, std::abs(w));
  }
  return best;
}

float Network::max_row_abs_sum() const {
  float best = 0.0f;
  for (const Layer& layer : layers_) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      float sum = 0.0f;
      for (std::size_t i = 0; i <= layer.n_in; ++i) {
        sum += std::abs(layer.weights[o * (layer.n_in + 1) + i]);
      }
      best = std::max(best, sum);
    }
  }
  return best;
}

void Network::save(std::ostream& os) const {
  os << "IWNN1\n";
  os << layers_.size() << '\n';
  for (const Layer& layer : layers_) {
    os << layer.n_in << ' ' << layer.n_out << ' ' << to_string(layer.activation)
       << '\n';
    for (std::size_t i = 0; i < layer.weights.size(); ++i) {
      os << layer.weights[i] << (i + 1 == layer.weights.size() ? '\n' : ' ');
    }
  }
}

Network Network::load(std::istream& is) {
  std::string magic;
  is >> magic;
  ensure(magic == "IWNN1", "Network::load: bad magic");
  std::size_t n_layers = 0;
  is >> n_layers;
  ensure(is.good() && n_layers >= 1 && n_layers < 1000, "Network::load: bad layer count");
  std::vector<Layer> layers(n_layers);
  for (Layer& layer : layers) {
    std::string act;
    is >> layer.n_in >> layer.n_out >> act;
    ensure(is.good() && layer.n_in > 0 && layer.n_out > 0, "Network::load: bad layer");
    if (act == "tanh") layer.activation = Activation::kTanh;
    else if (act == "linear") layer.activation = Activation::kLinear;
    else fail("Network::load: bad activation " + act);
    layer.weights.resize((layer.n_in + 1) * layer.n_out);
    for (float& w : layer.weights) is >> w;
    ensure(is.good() || is.eof(), "Network::load: truncated weights");
  }
  for (std::size_t l = 1; l < layers.size(); ++l) {
    ensure(layers[l].n_in == layers[l - 1].n_out, "Network::load: layer size chain");
  }
  return Network(std::move(layers));
}

}  // namespace iw::nn
