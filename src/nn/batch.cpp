#include "nn/batch.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/fixed_point.hpp"
#include "nn/batch_simd.hpp"

namespace iw::nn {

namespace {

std::size_t check_rows(std::size_t inputs_size, std::size_t n_in,
                       std::size_t outputs_size, std::size_t n_out,
                       const char* who) {
  ensure(n_in > 0 && inputs_size % n_in == 0,
         std::string(who) + ": inputs are not a whole number of rows");
  const std::size_t n = inputs_size / n_in;
  ensure(outputs_size == n * n_out,
         std::string(who) + ": output span does not match the batch size");
  return n;
}

// The layer kernels below exist twice: templated on a compile-time tile width
// T (the hot path — constant trip counts let the compiler keep the per-lane
// accumulators in registers and vectorize the sample loops), and with a
// runtime width for odd user-chosen tiles. Both run the per-sample arithmetic
// sequence unchanged, so they are interchangeable bit for bit.
//
// The fixed-width kernels always compute all T lanes. On a partial tile the
// caller zeroes the unused input lanes first, making every lane's arithmetic
// defined (a zero input row cannot overflow any accumulator — each product is
// zero and the bias alone is in range); the unused lanes are simply never
// scattered out.

template <std::size_t T>
const float* run_float_tile(const Network& net, float* cur, float* nxt) {
  for (const Layer& layer : net.layers()) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const float* row = layer.weights.data() + o * (layer.n_in + 1);
      // Per sample this is exactly Network::infer's neuron: a double
      // accumulator seeded with the bias, products added in input order.
      double acc[T];
      const double bias = row[layer.n_in];
      for (std::size_t s = 0; s < T; ++s) acc[s] = bias;
      for (std::size_t i = 0; i < layer.n_in; ++i) {
        const double w = row[i];
        const float* col = cur + i * T;
        // Keep this a loop (no early full unroll) so the loop vectorizer can
        // emit float->double widening vector ops. Lane order is untouched:
        // each sample's accumulation chain stays in input order, so this is
        // still bit-exact with Network::infer.
#pragma GCC unroll 1
        for (std::size_t s = 0; s < T; ++s) acc[s] += w * col[s];
      }
      float* dst = nxt + o * T;
      for (std::size_t s = 0; s < T; ++s) {
        dst[s] = static_cast<float>(activate(layer.activation, acc[s]));
      }
    }
    std::swap(cur, nxt);
  }
  return cur;
}

template <std::size_t T>
const std::int32_t* run_fixed_tile(const QuantizedNetwork& net,
                                   std::int32_t* cur, std::int32_t* nxt) {
  constexpr std::int64_t kMin32 = std::numeric_limits<std::int32_t>::min();
  constexpr std::int64_t kMax32 = std::numeric_limits<std::int32_t>::max();
  const std::int32_t range = net.tanh_table().range_fixed();
  const int frac = net.format().frac_bits;
  for (const QuantizedLayer& layer : net.layers()) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int32_t* row = layer.weights.data() + o * (layer.n_in + 1);
      std::int64_t acc[T];
      for (std::size_t s = 0; s < T; ++s) acc[s] = 0;
      // Per-sample semantics: 32-bit product, one arithmetic shift per
      // product, accumulated in input order. The overflow guard is folded
      // into a mask so the loop stays branch-free; a tripped mask throws just
      // like the per-sample path (no outputs are produced either way).
      std::int64_t overflow = 0;
      for (std::size_t i = 0; i < layer.n_in; ++i) {
        const std::int64_t w = row[i];
        const std::int32_t* col = cur + i * T;
        for (std::size_t s = 0; s < T; ++s) {
          const std::int64_t prod = w * static_cast<std::int64_t>(col[s]);
          overflow |=
              prod - static_cast<std::int64_t>(static_cast<std::int32_t>(prod));
          acc[s] += prod >> frac;
        }
      }
      ensure(overflow == 0,
             "FixedBatch: 32-bit product overflow (format selection bug)");
      std::int32_t* dst = nxt + o * T;
      for (std::size_t s = 0; s < T; ++s) {
        const std::int64_t a = acc[s] + row[layer.n_in];  // bias weight * 1.0
        ensure(a >= kMin32 && a <= kMax32,
               "FixedBatch: accumulator overflow (format selection bug)");
        const std::int32_t clamped =
            std::clamp(static_cast<std::int32_t>(a), -range, range - 1);
        dst[s] = net.tanh_table().eval(clamped);
      }
    }
    std::swap(cur, nxt);
  }
  return cur;
}

template <std::size_t T>
const std::int16_t* run_fixed16_tile(const QuantizedNetwork16& net,
                                     std::int16_t* cur, std::int16_t* nxt) {
  const std::int32_t range = net.tanh_table().range_fixed();
  const int frac = net.frac_bits();
  for (const QuantizedLayer16& layer : net.layers()) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int16_t* row = layer.weights.data() + o * 2 * layer.row_pairs;
      std::int32_t acc[T];
      for (std::size_t s = 0; s < T; ++s) acc[s] = 0;
      for (std::size_t p = 0; p < layer.row_pairs; ++p) {
        // Mirrors pv.sdotsp.h: two int16 products accumulated in int32. Both
        // multiply operands stay int16 so the compiler sees a widening
        // 16x16->32 multiply (vectorizable on baseline SSE2, unlike 32x32).
        const std::int16_t w0 = row[2 * p];
        const std::int16_t w1 = row[2 * p + 1];
        const std::int16_t* col0 = cur + (2 * p) * T;
        const std::int16_t* col1 = cur + (2 * p + 1) * T;
        // Keep this a loop (no early full unroll): the loop vectorizer turns
        // it into widening-multiply vector ops, which the straight-line SLP
        // vectorizer cannot.
#pragma GCC unroll 1
        for (std::size_t s = 0; s < T; ++s) {
          acc[s] += static_cast<std::int32_t>(w0) * col0[s];
          acc[s] += static_cast<std::int32_t>(w1) * col1[s];
        }
      }
      const std::int32_t bias = layer.biases[o];
      std::int16_t* dst = nxt + o * T;
      for (std::size_t s = 0; s < T; ++s) {
        const std::int32_t shifted = (acc[s] + bias) >> frac;
        const std::int32_t clamped = std::clamp(shifted, -range, range - 1);
        dst[s] = static_cast<std::int16_t>(net.tanh_table().eval(clamped));
      }
    }
    // Zero the pad activation of odd-width outputs; the next layer consumes
    // it as the second half of its last pair (with a zero pad weight).
    if (layer.n_out % 2 != 0) {
      std::int16_t* pad = nxt + layer.n_out * T;
      for (std::size_t s = 0; s < T; ++s) pad[s] = 0;
    }
    std::swap(cur, nxt);
  }
  return cur;
}

/// Zeroes the unused lanes [t, tile) of every input column so the fixed-width
/// kernels can compute all lanes of a partial tile.
template <typename V>
void zero_lane_tail(V* in, std::size_t width, std::size_t tile, std::size_t t) {
  for (std::size_t i = 0; i < width; ++i) {
    for (std::size_t s = t; s < tile; ++s) in[i * tile + s] = V{0};
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Float path
// ---------------------------------------------------------------------------

FloatBatch::FloatBatch(const Network& net, std::size_t tile)
    : net_(&net), tile_(tile) {
  ensure(tile_ >= 1 && tile_ <= kMaxBatchTile, "FloatBatch: tile out of range");
  stride_ = net.num_inputs();
  for (const Layer& layer : net.layers()) stride_ = std::max(stride_, layer.n_out);
  in_.assign(stride_ * tile_, 0.0f);
  out_.assign(stride_ * tile_, 0.0f);
}

const float* FloatBatch::run_tile(std::size_t t) {
  if (tile_ == kDefaultBatchTile || tile_ == kMaxBatchTile) {
    if (t < tile_) zero_lane_tail(in_.data(), net_->num_inputs(), tile_, t);
    return tile_ == kDefaultBatchTile
               ? run_float_tile<kDefaultBatchTile>(*net_, in_.data(), out_.data())
               : run_float_tile<kMaxBatchTile>(*net_, in_.data(), out_.data());
  }
  // Runtime-width fallback for unusual tile choices; same arithmetic, only
  // the loop bound differs.
  float* cur = in_.data();
  float* nxt = out_.data();
  for (const Layer& layer : net_->layers()) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const float* row = layer.weights.data() + o * (layer.n_in + 1);
      double acc[kMaxBatchTile];
      const double bias = row[layer.n_in];
      for (std::size_t s = 0; s < t; ++s) acc[s] = bias;
      for (std::size_t i = 0; i < layer.n_in; ++i) {
        const double w = row[i];
        const float* col = cur + i * tile_;
        for (std::size_t s = 0; s < t; ++s) acc[s] += w * col[s];
      }
      float* dst = nxt + o * tile_;
      for (std::size_t s = 0; s < t; ++s) {
        dst[s] = static_cast<float>(activate(layer.activation, acc[s]));
      }
    }
    std::swap(cur, nxt);
  }
  return cur;
}

void FloatBatch::infer(std::span<const float> inputs, std::span<float> outputs) {
  const std::size_t n_in = net_->num_inputs();
  const std::size_t n_out = net_->num_outputs();
  const std::size_t n =
      check_rows(inputs.size(), n_in, outputs.size(), n_out, "FloatBatch::infer");
  for (std::size_t base = 0; base < n; base += tile_) {
    const std::size_t t = std::min(tile_, n - base);
    for (std::size_t s = 0; s < t; ++s) {
      const float* src = inputs.data() + (base + s) * n_in;
      for (std::size_t i = 0; i < n_in; ++i) in_[i * tile_ + s] = src[i];
    }
    const float* result = run_tile(t);
    for (std::size_t s = 0; s < t; ++s) {
      float* dst = outputs.data() + (base + s) * n_out;
      for (std::size_t o = 0; o < n_out; ++o) dst[o] = result[o * tile_ + s];
    }
  }
}

void FloatBatch::infer(std::span<const float* const> rows,
                       std::span<float> outputs) {
  const std::size_t n_in = net_->num_inputs();
  const std::size_t n_out = net_->num_outputs();
  ensure(outputs.size() == rows.size() * n_out,
         "FloatBatch::infer: output span does not match the batch size");
  for (std::size_t base = 0; base < rows.size(); base += tile_) {
    const std::size_t t = std::min(tile_, rows.size() - base);
    for (std::size_t s = 0; s < t; ++s) {
      const float* src = rows[base + s];
      for (std::size_t i = 0; i < n_in; ++i) in_[i * tile_ + s] = src[i];
    }
    const float* result = run_tile(t);
    for (std::size_t s = 0; s < t; ++s) {
      float* dst = outputs.data() + (base + s) * n_out;
      for (std::size_t o = 0; o < n_out; ++o) dst[o] = result[o * tile_ + s];
    }
  }
}

void FloatBatch::classify(std::span<const float* const> rows,
                          std::span<std::size_t> labels) {
  const std::size_t n_in = net_->num_inputs();
  const std::size_t n_out = net_->num_outputs();
  ensure(labels.size() == rows.size(),
         "FloatBatch::classify: one label slot per row required");
  for (std::size_t base = 0; base < rows.size(); base += tile_) {
    const std::size_t t = std::min(tile_, rows.size() - base);
    for (std::size_t s = 0; s < t; ++s) {
      const float* src = rows[base + s];
      for (std::size_t i = 0; i < n_in; ++i) in_[i * tile_ + s] = src[i];
    }
    const float* result = run_tile(t);
    for (std::size_t s = 0; s < t; ++s) {
      std::size_t best = 0;
      for (std::size_t o = 1; o < n_out; ++o) {
        if (result[o * tile_ + s] > result[best * tile_ + s]) best = o;
      }
      labels[base + s] = best;
    }
  }
}

// ---------------------------------------------------------------------------
// 32-bit fixed path
// ---------------------------------------------------------------------------

FixedBatch::FixedBatch(const QuantizedNetwork& net, std::size_t tile)
    : net_(&net), tile_(tile) {
  ensure(tile_ >= 1 && tile_ <= kMaxBatchTile, "FixedBatch: tile out of range");
  stride_ = net.num_inputs();
  for (const QuantizedLayer& layer : net.layers()) {
    stride_ = std::max(stride_, layer.n_out);
  }
  in_.assign(stride_ * tile_, 0);
  out_.assign(stride_ * tile_, 0);
}

const std::int32_t* FixedBatch::run_tile(std::size_t t) {
  if (tile_ == kDefaultBatchTile || tile_ == kMaxBatchTile) {
    if (t < tile_) zero_lane_tail(in_.data(), net_->num_inputs(), tile_, t);
    return tile_ == kDefaultBatchTile
               ? run_fixed_tile<kDefaultBatchTile>(*net_, in_.data(), out_.data())
               : run_fixed_tile<kMaxBatchTile>(*net_, in_.data(), out_.data());
  }
  constexpr std::int64_t kMin32 = std::numeric_limits<std::int32_t>::min();
  constexpr std::int64_t kMax32 = std::numeric_limits<std::int32_t>::max();
  std::int32_t* cur = in_.data();
  std::int32_t* nxt = out_.data();
  const std::int32_t range = net_->tanh_table().range_fixed();
  const int frac = net_->format().frac_bits;
  for (const QuantizedLayer& layer : net_->layers()) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int32_t* row = layer.weights.data() + o * (layer.n_in + 1);
      std::int64_t acc[kMaxBatchTile];
      for (std::size_t s = 0; s < t; ++s) acc[s] = 0;
      std::int64_t overflow = 0;
      for (std::size_t i = 0; i < layer.n_in; ++i) {
        const std::int64_t w = row[i];
        const std::int32_t* col = cur + i * tile_;
        for (std::size_t s = 0; s < t; ++s) {
          const std::int64_t prod = w * static_cast<std::int64_t>(col[s]);
          overflow |= prod - static_cast<std::int64_t>(static_cast<std::int32_t>(prod));
          acc[s] += prod >> frac;
        }
      }
      ensure(overflow == 0,
             "FixedBatch: 32-bit product overflow (format selection bug)");
      std::int32_t* dst = nxt + o * tile_;
      for (std::size_t s = 0; s < t; ++s) {
        const std::int64_t a = acc[s] + row[layer.n_in];  // bias weight * 1.0
        ensure(a >= kMin32 && a <= kMax32,
               "FixedBatch: accumulator overflow (format selection bug)");
        const std::int32_t clamped =
            std::clamp(static_cast<std::int32_t>(a), -range, range - 1);
        dst[s] = net_->tanh_table().eval(clamped);
      }
    }
    std::swap(cur, nxt);
  }
  return cur;
}

void FixedBatch::load_rows(std::span<const float* const> rows, std::size_t base,
                           std::size_t t) {
  const std::size_t n_in = net_->num_inputs();
  const fx::QFormat q = net_->format();
  for (std::size_t s = 0; s < t; ++s) {
    const float* src = rows[base + s];
    for (std::size_t i = 0; i < n_in; ++i) {
      const float clamped = std::clamp(src[i], -1.0f, 1.0f);
      in_[i * tile_ + s] = fx::to_fixed(clamped, q);
    }
  }
}

void FixedBatch::infer_fixed(std::span<const std::int32_t> inputs,
                             std::span<std::int32_t> outputs) {
  const std::size_t n_in = net_->num_inputs();
  const std::size_t n_out = net_->num_outputs();
  const std::size_t n = check_rows(inputs.size(), n_in, outputs.size(), n_out,
                                   "FixedBatch::infer_fixed");
  for (std::size_t base = 0; base < n; base += tile_) {
    const std::size_t t = std::min(tile_, n - base);
    for (std::size_t s = 0; s < t; ++s) {
      const std::int32_t* src = inputs.data() + (base + s) * n_in;
      for (std::size_t i = 0; i < n_in; ++i) in_[i * tile_ + s] = src[i];
    }
    const std::int32_t* result = run_tile(t);
    for (std::size_t s = 0; s < t; ++s) {
      std::int32_t* dst = outputs.data() + (base + s) * n_out;
      for (std::size_t o = 0; o < n_out; ++o) dst[o] = result[o * tile_ + s];
    }
  }
}

void FixedBatch::classify(std::span<const float* const> rows,
                          std::span<std::size_t> labels) {
  const std::size_t n_out = net_->num_outputs();
  ensure(labels.size() == rows.size(),
         "FixedBatch::classify: one label slot per row required");
  for (std::size_t base = 0; base < rows.size(); base += tile_) {
    const std::size_t t = std::min(tile_, rows.size() - base);
    load_rows(rows, base, t);
    const std::int32_t* result = run_tile(t);
    for (std::size_t s = 0; s < t; ++s) {
      std::size_t best = 0;
      for (std::size_t o = 1; o < n_out; ++o) {
        if (result[o * tile_ + s] > result[best * tile_ + s]) best = o;
      }
      labels[base + s] = best;
    }
  }
}

// ---------------------------------------------------------------------------
// 16-bit packed path
// ---------------------------------------------------------------------------

Fixed16Batch::Fixed16Batch(const QuantizedNetwork16& net, std::size_t tile)
    : net_(&net), tile_(tile) {
  ensure(tile_ >= 1 && tile_ <= kMaxBatchTile, "Fixed16Batch: tile out of range");
  // Widths are padded to even (whole pairs), exactly like the per-sample
  // path's padded activation vectors.
  stride_ = net.num_inputs() + (net.num_inputs() % 2);
  for (const QuantizedLayer16& layer : net.layers()) {
    stride_ = std::max(stride_, layer.n_out + (layer.n_out % 2));
  }
  in_.assign(stride_ * tile_, 0);
  out_.assign(stride_ * tile_, 0);
}

const std::int16_t* Fixed16Batch::run_tile(std::size_t t) {
  if (tile_ == kDefaultBatchTile || tile_ == kMaxBatchTile) {
    if (t < tile_) {
      const std::size_t padded = net_->num_inputs() + (net_->num_inputs() % 2);
      zero_lane_tail(in_.data(), padded, tile_, t);
    }
    if (tile_ == kMaxBatchTile) {
      // 16 lanes is the SIMD tier's tile width; nullptr means the active
      // tier has no dedicated kernel (bit-exact either way — see
      // batch_simd.hpp).
      if (const std::int16_t* r =
              detail::run_fixed16_tile16_simd(*net_, in_.data(), out_.data())) {
        return r;
      }
      return run_fixed16_tile<kMaxBatchTile>(*net_, in_.data(), out_.data());
    }
    return run_fixed16_tile<kDefaultBatchTile>(*net_, in_.data(), out_.data());
  }
  std::int16_t* cur = in_.data();
  std::int16_t* nxt = out_.data();
  const std::int32_t range = net_->tanh_table().range_fixed();
  const int frac = net_->frac_bits();
  for (const QuantizedLayer16& layer : net_->layers()) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int16_t* row = layer.weights.data() + o * 2 * layer.row_pairs;
      std::int32_t acc[kMaxBatchTile];
      for (std::size_t s = 0; s < t; ++s) acc[s] = 0;
      for (std::size_t p = 0; p < layer.row_pairs; ++p) {
        const std::int32_t w0 = row[2 * p];
        const std::int32_t w1 = row[2 * p + 1];
        const std::int16_t* col0 = cur + (2 * p) * tile_;
        const std::int16_t* col1 = cur + (2 * p + 1) * tile_;
        for (std::size_t s = 0; s < t; ++s) {
          acc[s] += w0 * col0[s];
          acc[s] += w1 * col1[s];
        }
      }
      const std::int32_t bias = layer.biases[o];
      std::int16_t* dst = nxt + o * tile_;
      for (std::size_t s = 0; s < t; ++s) {
        const std::int32_t shifted = (acc[s] + bias) >> frac;
        const std::int32_t clamped = std::clamp(shifted, -range, range - 1);
        dst[s] = static_cast<std::int16_t>(net_->tanh_table().eval(clamped));
      }
    }
    if (layer.n_out % 2 != 0) {
      std::int16_t* pad = nxt + layer.n_out * tile_;
      for (std::size_t s = 0; s < t; ++s) pad[s] = 0;
    }
    std::swap(cur, nxt);
  }
  return cur;
}

void Fixed16Batch::load_rows(std::span<const float* const> rows,
                             std::size_t base, std::size_t t) {
  const std::size_t n_in = net_->num_inputs();
  const int frac = net_->frac_bits();
  for (std::size_t s = 0; s < t; ++s) {
    const float* src = rows[base + s];
    for (std::size_t i = 0; i < n_in; ++i) {
      in_[i * tile_ + s] = to_fixed16(std::clamp(src[i], -1.0f, 1.0f), frac);
    }
  }
  if (n_in % 2 != 0) {
    for (std::size_t s = 0; s < t; ++s) in_[n_in * tile_ + s] = 0;
  }
}

void Fixed16Batch::infer_fixed(std::span<const std::int16_t> inputs,
                               std::span<std::int16_t> outputs) {
  const std::size_t n_in = net_->num_inputs();
  const std::size_t n_out = net_->num_outputs();
  const std::size_t n = check_rows(inputs.size(), n_in, outputs.size(), n_out,
                                   "Fixed16Batch::infer_fixed");
  for (std::size_t base = 0; base < n; base += tile_) {
    const std::size_t t = std::min(tile_, n - base);
    for (std::size_t s = 0; s < t; ++s) {
      const std::int16_t* src = inputs.data() + (base + s) * n_in;
      for (std::size_t i = 0; i < n_in; ++i) in_[i * tile_ + s] = src[i];
    }
    if (n_in % 2 != 0) {
      for (std::size_t s = 0; s < t; ++s) in_[n_in * tile_ + s] = 0;
    }
    const std::int16_t* result = run_tile(t);
    for (std::size_t s = 0; s < t; ++s) {
      std::int16_t* dst = outputs.data() + (base + s) * n_out;
      for (std::size_t o = 0; o < n_out; ++o) dst[o] = result[o * tile_ + s];
    }
  }
}

void Fixed16Batch::classify(std::span<const float* const> rows,
                            std::span<std::size_t> labels) {
  const std::size_t n_out = net_->num_outputs();
  ensure(labels.size() == rows.size(),
         "Fixed16Batch::classify: one label slot per row required");
  for (std::size_t base = 0; base < rows.size(); base += tile_) {
    const std::size_t t = std::min(tile_, rows.size() - base);
    load_rows(rows, base, t);
    const std::int16_t* result = run_tile(t);
    for (std::size_t s = 0; s < t; ++s) {
      std::size_t best = 0;
      for (std::size_t o = 1; o < n_out; ++o) {
        if (result[o * tile_ + s] > result[best * tile_ + s]) best = o;
      }
      labels[base + s] = best;
    }
  }
}

}  // namespace iw::nn
