// Runtime dispatcher for the packed 16-bit batch kernel's SIMD tiers.
#include "nn/batch_simd.hpp"

#include "common/simd.hpp"

namespace iw::nn::detail {

const std::int16_t* run_fixed16_tile16_simd(const QuantizedNetwork16& net,
                                            std::int16_t* cur,
                                            std::int16_t* nxt) {
#if defined(IW_SIMD_ENABLED)
  switch (simd::active_tier()) {
    case simd::Tier::kAvx2:
      return run_fixed16_tile16_avx2(net, cur, nxt);
    case simd::Tier::kSse2:
      return run_fixed16_tile16_sse2(net, cur, nxt);
    case simd::Tier::kArray:
    case simd::Tier::kOff:
      break;
  }
#else
  (void)net;
  (void)cur;
  (void)nxt;
#endif
  return nullptr;
}

}  // namespace iw::nn::detail
