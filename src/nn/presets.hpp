// The two network architectures evaluated in the paper (Section III, Fig. 3).
//
// Network A: 5 inputs (RMSSD, SDSD, NN50, GSRL, GSRH), two hidden layers of
// 50 tanh units, 3 outputs (stress / medium stress / no stress).
// Paper counts: 108 neurons, 3003 weights, ~14 kB.
//
// Network B: 100 inputs, 24 hidden layers in pairs of increasing width
// (8, 8, 16, 16, ..., 96, 96), 8 outputs. Paper counts: 1356 neurons,
// 81032 weights, ~353 kB — all reproduced exactly by this topology.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/network.hpp"

namespace iw::nn {

/// Layer sizes for Network A: {5, 50, 50, 3}.
std::vector<std::size_t> topology_network_a();

/// Layer sizes for Network B: {100, 8, 8, 16, 16, ..., 96, 96, 8}.
std::vector<std::size_t> topology_network_b();

/// Builds Network A with random initial weights.
Network make_network_a(Rng& rng);

/// Builds Network B with random weights. The paper measures Network B's
/// runtime/energy only (not task accuracy), so random weights suffice; they
/// are drawn small so fixed-point conversion keeps a fine format.
Network make_network_b(Rng& rng);

/// Neuron/weight counts the paper quotes, used by tests and benches.
struct PaperNetworkCounts {
  std::size_t neurons;
  std::size_t weights;
  double memory_kb;
};
PaperNetworkCounts paper_counts_network_a();
PaperNetworkCounts paper_counts_network_b();

}  // namespace iw::nn
