#include "nn/train.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "nn/batch.hpp"

namespace iw::nn {

void Dataset::add(std::vector<float> in, std::vector<float> target) {
  if (!inputs.empty()) {
    ensure(in.size() == inputs.front().size(), "Dataset::add: input width mismatch");
    ensure(target.size() == targets.front().size(), "Dataset::add: target width mismatch");
  }
  inputs.push_back(std::move(in));
  targets.push_back(std::move(target));
}

std::vector<float> Dataset::one_hot(std::size_t label, std::size_t n_classes) {
  ensure(label < n_classes, "Dataset::one_hot: label out of range");
  std::vector<float> t(n_classes, -1.0f);
  t[label] = 1.0f;
  return t;
}

namespace {

/// Reusable forward/backward buffers, sized once per network. The seed
/// version built fresh activation and delta vectors for every sample of every
/// epoch; with the workspace the per-sample training loop performs no heap
/// allocation. The arithmetic (double accumulation in input order) is
/// unchanged, so trained weights are bit-identical.
struct TrainWorkspace {
  explicit TrainWorkspace(const Network& net) {
    activations.resize(net.num_layers() + 1);
    activations[0].resize(net.num_inputs());
    std::size_t max_width = net.num_inputs();
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const std::size_t n_out = net.layers()[l].n_out;
      activations[l + 1].resize(n_out);
      max_width = std::max(max_width, n_out);
    }
    delta.resize(max_width);
    delta_scratch.resize(max_width);
  }

  std::vector<std::vector<double>> activations;  // [0] = input, then per layer
  std::vector<double> delta, delta_scratch;
};

void forward(const Network& net, std::span<const float> input, TrainWorkspace& ws) {
  std::vector<double>& first = ws.activations[0];
  for (std::size_t i = 0; i < input.size(); ++i) first[i] = input[i];
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    const Layer& layer = net.layers()[l];
    const std::vector<double>& in = ws.activations[l];
    std::vector<double>& out = ws.activations[l + 1];
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      double acc = layer.bias(o);
      for (std::size_t i = 0; i < layer.n_in; ++i) acc += layer.weight(o, i) * in[i];
      out[o] = activate(layer.activation, acc);
    }
  }
}

/// Accumulates batch gradients; layout mirrors Layer::weights.
void backward(const Network& net, TrainWorkspace& ws,
              std::span<const float> target,
              std::vector<std::vector<double>>& grads, double& mse_sum) {
  const std::size_t n_layers = net.num_layers();
  const std::vector<double>& output = ws.activations.back();
  std::vector<double>& delta = ws.delta;
  for (std::size_t o = 0; o < output.size(); ++o) {
    const double err = output[o] - target[o];
    mse_sum += err * err;
    delta[o] = err * activate_derivative_from_output(
                         net.layers().back().activation, output[o]);
  }
  for (std::size_t l = n_layers; l-- > 0;) {
    const Layer& layer = net.layers()[l];
    const std::vector<double>& in = ws.activations[l];
    std::vector<double>& g = grads[l];
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::size_t row = o * (layer.n_in + 1);
      for (std::size_t i = 0; i < layer.n_in; ++i) g[row + i] += delta[o] * in[i];
      g[row + layer.n_in] += delta[o];  // bias
    }
    if (l == 0) break;
    const Layer& prev = net.layers()[l - 1];
    std::vector<double>& prev_delta = ws.delta_scratch;
    for (std::size_t i = 0; i < layer.n_in; ++i) {
      double sum = 0.0;
      for (std::size_t o = 0; o < layer.n_out; ++o) sum += layer.weight(o, i) * delta[o];
      prev_delta[i] =
          sum * activate_derivative_from_output(prev.activation, in[i]);
    }
    delta.swap(prev_delta);
  }
}

double sign(double v) { return v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : 0.0); }

void check_dimensions(const Network& net, const Dataset& data, const char* who) {
  ensure(data.size() > 0, std::string(who) + ": empty dataset");
  ensure(data.inputs.front().size() == net.num_inputs(),
         std::string(who) + ": input width mismatch");
  ensure(data.targets.front().size() == net.num_outputs(),
         std::string(who) + ": target width mismatch");
}

/// Stateful iRPROP- stepper so early stopping can drive epochs one by one.
class RpropState {
 public:
  RpropState(Network& net, const TrainConfig& config)
      : net_(net), config_(config), ws_(net) {
    const std::size_t n_layers = net.num_layers();
    grads_.resize(n_layers);
    prev_grads_.resize(n_layers);
    deltas_.resize(n_layers);
    for (std::size_t l = 0; l < n_layers; ++l) {
      const std::size_t n = net.layers()[l].weights.size();
      grads_[l].assign(n, 0.0);
      prev_grads_[l].assign(n, 0.0);
      deltas_[l].assign(n, config.delta_zero);
    }
  }

  /// Computes the batch gradient and MSE without touching the weights.
  double measure(const Dataset& data) {
    for (auto& g : grads_) std::fill(g.begin(), g.end(), 0.0);
    double mse_sum = 0.0;
    for (std::size_t s = 0; s < data.size(); ++s) {
      forward(net_, data.inputs[s], ws_);
      backward(net_, ws_, data.targets[s], grads_, mse_sum);
    }
    return mse_sum / (static_cast<double>(data.size()) *
                      static_cast<double>(net_.num_outputs()));
  }

  /// Applies the iRPROP- update for the gradients of the last measure().
  void apply() {
    for (std::size_t l = 0; l < net_.num_layers(); ++l) {
      Layer& layer = net_.layers()[l];
      for (std::size_t w = 0; w < layer.weights.size(); ++w) {
        const double g = grads_[l][w];
        const double prod = prev_grads_[l][w] * g;
        if (prod > 0.0) {
          deltas_[l][w] = std::min(deltas_[l][w] * config_.eta_plus, config_.delta_max);
        } else if (prod < 0.0) {
          deltas_[l][w] = std::max(deltas_[l][w] * config_.eta_minus, config_.delta_min);
          prev_grads_[l][w] = 0.0;
          continue;  // iRPROP-: skip the update after a sign change
        }
        layer.weights[w] -= static_cast<float>(sign(g) * deltas_[l][w]);
        prev_grads_[l][w] = g;
      }
    }
  }

 private:
  Network& net_;
  const TrainConfig& config_;
  TrainWorkspace ws_;
  std::vector<std::vector<double>> grads_, prev_grads_, deltas_;
};

std::vector<std::vector<float>> snapshot_weights(const Network& net) {
  std::vector<std::vector<float>> snap;
  for (const Layer& layer : net.layers()) snap.push_back(layer.weights);
  return snap;
}

void restore_weights(Network& net, const std::vector<std::vector<float>>& snap) {
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    net.layers()[l].weights = snap[l];
  }
}

}  // namespace

TrainResult train_rprop(Network& net, const Dataset& data, const TrainConfig& config) {
  check_dimensions(net, data, "train_rprop");
  RpropState state(net, config);
  TrainResult result;
  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    const double mse = state.measure(data);
    result.mse_history.push_back(mse);
    result.final_mse = mse;
    result.epochs = epoch + 1;
    if (config.verbose && epoch % 50 == 0) {
      std::cerr << "epoch " << epoch << " mse " << mse << '\n';
    }
    if (mse <= config.target_mse) break;
    state.apply();
  }
  return result;
}

TrainResult train_rprop_early_stopping(Network& net, const Dataset& train,
                                       const Dataset& validation,
                                       const TrainConfig& config,
                                       std::size_t patience) {
  check_dimensions(net, train, "train_rprop_early_stopping");
  check_dimensions(net, validation, "train_rprop_early_stopping");
  ensure(patience >= 1, "train_rprop_early_stopping: patience must be >= 1");

  RpropState state(net, config);
  TrainResult result;
  double best_validation = std::numeric_limits<double>::infinity();
  std::vector<std::vector<float>> best_weights = snapshot_weights(net);
  std::size_t since_best = 0;
  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    state.measure(train);
    state.apply();
    const double val_mse = evaluate_mse(net, validation);
    result.mse_history.push_back(val_mse);
    result.epochs = epoch + 1;
    if (val_mse < best_validation) {
      best_validation = val_mse;
      best_weights = snapshot_weights(net);
      since_best = 0;
    } else if (++since_best >= patience) {
      break;
    }
    if (val_mse <= config.target_mse) break;
  }
  restore_weights(net, best_weights);
  result.final_mse = best_validation;
  return result;
}

TrainResult train_sgd(Network& net, const Dataset& data, const SgdConfig& config) {
  check_dimensions(net, data, "train_sgd");
  ensure(config.batch_size >= 1, "train_sgd: batch size must be >= 1");
  ensure(config.learning_rate > 0.0, "train_sgd: learning rate must be positive");
  ensure(config.momentum >= 0.0 && config.momentum < 1.0, "train_sgd: bad momentum");

  const std::size_t n_layers = net.num_layers();
  std::vector<std::vector<double>> grads(n_layers), velocity(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    grads[l].assign(net.layers()[l].weights.size(), 0.0);
    velocity[l].assign(net.layers()[l].weights.size(), 0.0);
  }

  Rng rng(config.shuffle_seed);
  TrainWorkspace ws(net);
  TrainResult result;
  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    const std::vector<std::size_t> order = rng.permutation(data.size());
    double mse_sum = 0.0;
    for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
      const std::size_t end = std::min(order.size(), start + config.batch_size);
      for (auto& g : grads) std::fill(g.begin(), g.end(), 0.0);
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t s = order[k];
        forward(net, data.inputs[s], ws);
        backward(net, ws, data.targets[s], grads, mse_sum);
      }
      const double scale = config.learning_rate / static_cast<double>(end - start);
      for (std::size_t l = 0; l < n_layers; ++l) {
        Layer& layer = net.layers()[l];
        for (std::size_t w = 0; w < layer.weights.size(); ++w) {
          velocity[l][w] = config.momentum * velocity[l][w] - scale * grads[l][w];
          layer.weights[w] += static_cast<float>(velocity[l][w]);
        }
      }
    }
    const double mse = mse_sum / (static_cast<double>(data.size()) *
                                  static_cast<double>(net.num_outputs()));
    result.mse_history.push_back(mse);
    result.final_mse = mse;
    result.epochs = epoch + 1;
    if (mse <= config.target_mse) break;
  }
  return result;
}

namespace {

std::vector<const float*> row_pointers(const Dataset& data) {
  std::vector<const float*> rows(data.size());
  for (std::size_t s = 0; s < data.size(); ++s) rows[s] = data.inputs[s].data();
  return rows;
}

}  // namespace

double evaluate_mse(const Network& net, const Dataset& data) {
  ensure(data.size() > 0, "evaluate_mse: empty dataset");
  // Batched sweep: bit-exact with per-sample Network::infer, so the reported
  // MSE is unchanged — just without one heap-allocated output vector per row.
  FloatBatch batch(net);
  const std::vector<const float*> rows = row_pointers(data);
  std::vector<float> outputs(data.size() * net.num_outputs());
  batch.infer(rows, outputs);
  double sum = 0.0;
  for (std::size_t s = 0; s < data.size(); ++s) {
    const float* out = outputs.data() + s * net.num_outputs();
    for (std::size_t o = 0; o < net.num_outputs(); ++o) {
      const double e = out[o] - data.targets[s][o];
      sum += e * e;
    }
  }
  return sum / (static_cast<double>(data.size()) *
                static_cast<double>(net.num_outputs()));
}

double evaluate_accuracy(const Network& net, const Dataset& data) {
  ensure(data.size() > 0, "evaluate_accuracy: empty dataset");
  FloatBatch batch(net);
  const std::vector<const float*> rows = row_pointers(data);
  std::vector<std::size_t> labels(data.size());
  batch.classify(rows, labels);
  std::size_t correct = 0;
  for (std::size_t s = 0; s < data.size(); ++s) {
    const auto& t = data.targets[s];
    const std::size_t want = argmax(std::span<const float>(t));
    correct += labels[s] == want ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::pair<Dataset, Dataset> split(const Dataset& data, double test_fraction, Rng& rng) {
  ensure(test_fraction >= 0.0 && test_fraction <= 1.0, "split: bad fraction");
  const std::vector<std::size_t> perm = rng.permutation(data.size());
  const std::size_t n_test = static_cast<std::size_t>(
      test_fraction * static_cast<double>(data.size()));
  Dataset train, test;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    Dataset& dst = (i < n_test) ? test : train;
    dst.add(data.inputs[perm[i]], data.targets[perm[i]]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace iw::nn
