// Explicit SIMD tier for the packed 16-bit batch kernel (DESIGN.md §15).
//
// The Fixed16Batch tile kernel's hot loop is a widening int16 MAC: two int16
// products accumulated into an int32 per lane, mirroring pv.sdotsp.h. That is
// exactly the shape of PMADDWD: interleaving the two pair columns with
// unpacklo/hi_epi16 and broadcasting the weight pair as a packed int32 makes
// one madd_epi16 compute `w0*col0[s] + w1*col1[s]` for every lane.
//
// Bit-exactness is by construction: integer addition is associative mod 2^32,
// so folding the scalar kernel's two separate `acc += w*c` statements into
// one `acc += (w0*c0 + w1*c1)` cannot change any accumulator bit (the format
// selection in quantize16.cpp guarantees the scalar chain never overflows, so
// madd's lone saturation case — all four operands -32768 — cannot arise with
// a live accumulator near the rail either; even there PMADDWD's 0x80000000
// equals the mod-2^32 sum). The bias/shift/clamp/tanh tail stays scalar: the
// tanh table lookup is a gather, and running the tail verbatim keeps the
// whole output path the same arithmetic statement for statement.
//
// Per-tier translation units follow the cohort kernel's pattern
// (platform/cohort_simd.hpp): the AVX2 body lives in its own TU compiled with
// -mavx2 so the baseline TUs stay uncontaminated, and a tier compiled on a
// target lacking the ISA defines its symbol as a nullptr stub the dispatcher
// never selects.
#pragma once

#include <cstdint>

namespace iw::nn {

class QuantizedNetwork16;

namespace detail {

/// Runs the whole network for one 16-lane tile (the Fixed16Batch default)
/// through the widest active SIMD tier. Returns the output buffer (`cur` or
/// `nxt`, like run_fixed16_tile), or nullptr when the active tier has no
/// dedicated kernel — the caller then falls back to the scalar template. The
/// array tier maps to nullptr on purpose: the portable proof form of an
/// integer MAC *is* the scalar template (no FP ordering to pin down).
const std::int16_t* run_fixed16_tile16_simd(const QuantizedNetwork16& net,
                                            std::int16_t* cur,
                                            std::int16_t* nxt);

/// Per-tier entry points (one TU each; see src/nn/CMakeLists.txt).
const std::int16_t* run_fixed16_tile16_sse2(const QuantizedNetwork16& net,
                                            std::int16_t* cur,
                                            std::int16_t* nxt);
const std::int16_t* run_fixed16_tile16_avx2(const QuantizedNetwork16& net,
                                            std::int16_t* cur,
                                            std::int16_t* nxt);

}  // namespace detail
}  // namespace iw::nn
