// FANN-style multi-layer perceptron.
//
// The paper trains its stress-detection MLP with the FANN library and deploys
// it in fixed point on the target cores. This module reimplements the
// relevant subset: fully-connected layers with a bias input per layer,
// tanh (symmetric sigmoid) activations, float inference, and the same
// neuron/weight/memory accounting FANN reports (which the paper quotes:
// Network A has 108 neurons, 3003 weights, ~14 kB).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace iw::nn {

/// Index of the largest element, ties resolved to the lowest index (the
/// std::max_element convention). Shared by every classification path — float,
/// fixed point and the batch engines — so their decisions agree by
/// construction. Works on any ordered element type; in particular the argmax
/// of fixed-point outputs equals the argmax of their dequantized values
/// because dequantization is strictly monotonic.
template <typename T>
std::size_t argmax(std::span<const T> values) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return best;
}

enum class Activation { kTanh, kLinear };

std::string to_string(Activation a);

/// One fully-connected layer: `out = act(W * [in; 1])`.
/// Weights are stored row-major per output neuron, the bias weight last in
/// each row (FANN's layout), i.e. row stride = inputs() + 1.
struct Layer {
  std::size_t n_in = 0;
  std::size_t n_out = 0;
  Activation activation = Activation::kTanh;
  std::vector<float> weights;  // (n_in + 1) * n_out

  float weight(std::size_t out, std::size_t in) const {
    return weights[out * (n_in + 1) + in];
  }
  float bias(std::size_t out) const { return weights[out * (n_in + 1) + n_in]; }
};

/// A feed-forward MLP in the FANN style.
class Network {
 public:
  /// Builds a network with the given layer sizes (first entry = inputs) and
  /// uniform random weights in [-w, w] (FANN's default init range is 0.1 but
  /// the paper's nets train better from 0.5).
  static Network create(const std::vector<std::size_t>& layer_sizes, Rng& rng,
                        Activation hidden = Activation::kTanh,
                        Activation output = Activation::kTanh,
                        float init_range = 0.5f);

  std::size_t num_inputs() const { return layers_.front().n_in; }
  std::size_t num_outputs() const { return layers_.back().n_out; }
  std::size_t num_layers() const { return layers_.size(); }

  /// Neuron count as the paper reports it: inputs + all layer outputs
  /// (bias units not counted). Network A: 5+50+50+3 = 108.
  std::size_t num_neurons() const;
  /// Connection count including bias weights. Network A: 3003.
  std::size_t num_weights() const;
  /// FANN-style estimated memory footprint in bytes: 16 B per neuron,
  /// 4 B per weight, 8 B per layer record.
  std::size_t memory_footprint_bytes() const;

  const std::vector<Layer>& layers() const { return layers_; }
  std::vector<Layer>& layers() { return layers_; }

  /// Float inference.
  std::vector<float> infer(std::span<const float> input) const;
  /// Index of the largest output (classification decision).
  std::size_t classify(std::span<const float> input) const;

  /// Largest |weight| over the whole network (drives the fixed-point format).
  float max_abs_weight() const;
  /// Largest per-neuron sum of |weights| (bounds the fixed accumulator).
  float max_row_abs_sum() const;

  /// Text serialization (FANN-like .net format, simplified).
  void save(std::ostream& os) const;
  static Network load(std::istream& is);

 private:
  explicit Network(std::vector<Layer> layers) : layers_(std::move(layers)) {}
  std::vector<Layer> layers_;
};

/// Applies the activation function in double precision.
double activate(Activation a, double x);
/// Derivative of the activation with respect to its input, given the output y.
double activate_derivative_from_output(Activation a, double y);

}  // namespace iw::nn
