// C-source deployment export, in the spirit of FANNCORTEXM (the paper's
// reference [19]: "an open source toolkit for deployment of multi-layer
// neural networks on ARM Cortex-M family microcontrollers").
//
// export_c_source() emits a single self-contained C file with the quantized
// weights, the tanh lookup table, the layer descriptors, and a portable
// fixed-point inference routine whose arithmetic matches the simulator
// kernels (per-product shift, clip, interpolated LUT). The generated code
// has no dependencies beyond <stdint.h> and can be compiled for any MCU.
#pragma once

#include <ostream>
#include <string>

#include "nn/quantize.hpp"

namespace iw::nn {

struct ExportOptions {
  /// Prefix for all generated symbols (e.g. "net_a" -> net_a_infer()).
  std::string symbol_prefix = "iwnet";
  /// Emit a main() running one inference on zero input (for smoke tests).
  bool emit_test_main = false;
};

/// Writes the complete C translation unit to `os`.
void export_c_source(const QuantizedNetwork& net, const ExportOptions& options,
                     std::ostream& os);

}  // namespace iw::nn
