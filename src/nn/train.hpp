// Training for the FANN-style MLP: batch backpropagation and iRPROP-.
//
// FANN's default training algorithm is RPROP; the paper's stress network is
// trained with it. iRPROP- adapts a per-weight step size from the sign of the
// batch gradient, which converges quickly on the small feature datasets used
// here without a learning-rate search.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/network.hpp"

namespace iw::nn {

/// Supervised dataset: one row of inputs and targets per sample.
struct Dataset {
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> targets;

  std::size_t size() const { return inputs.size(); }
  void add(std::vector<float> in, std::vector<float> target);
  /// Encodes a class label as a one-of-N target with +1 / -1 levels (tanh
  /// output convention).
  static std::vector<float> one_hot(std::size_t label, std::size_t n_classes);
};

struct TrainConfig {
  std::size_t max_epochs = 500;
  double target_mse = 1e-3;
  // iRPROP- parameters (FANN defaults).
  double delta_zero = 0.1;
  double delta_min = 1e-6;
  double delta_max = 50.0;
  double eta_plus = 1.2;
  double eta_minus = 0.5;
  /// Report MSE every `report_every` epochs via stderr when verbose.
  bool verbose = false;
};

struct TrainResult {
  std::size_t epochs = 0;
  double final_mse = 0.0;
  std::vector<double> mse_history;
};

/// Trains `net` in place with iRPROP- on the full batch.
TrainResult train_rprop(Network& net, const Dataset& data, const TrainConfig& config);

/// Mini-batch stochastic gradient descent with classical momentum, as an
/// alternative to RPROP (useful for larger, noisier datasets).
struct SgdConfig {
  std::size_t max_epochs = 200;
  std::size_t batch_size = 16;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double target_mse = 1e-3;
  std::uint64_t shuffle_seed = 1;
};
TrainResult train_sgd(Network& net, const Dataset& data, const SgdConfig& config);

/// iRPROP- with early stopping: trains on `train`, monitors MSE on
/// `validation` every epoch, stops after `patience` epochs without
/// improvement and restores the best-validation weights. Returns the history
/// of *validation* MSE.
TrainResult train_rprop_early_stopping(Network& net, const Dataset& train,
                                       const Dataset& validation,
                                       const TrainConfig& config,
                                       std::size_t patience = 25);

/// Mean squared error of the network over a dataset.
double evaluate_mse(const Network& net, const Dataset& data);

/// Classification accuracy in [0,1]: argmax(output) vs argmax(target).
double evaluate_accuracy(const Network& net, const Dataset& data);

/// Splits a dataset into train/test with the given test fraction,
/// deterministically shuffled.
std::pair<Dataset, Dataset> split(const Dataset& data, double test_fraction, Rng& rng);

}  // namespace iw::nn
