#include "nn/presets.hpp"

namespace iw::nn {

std::vector<std::size_t> topology_network_a() { return {5, 50, 50, 3}; }

std::vector<std::size_t> topology_network_b() {
  std::vector<std::size_t> sizes;
  sizes.push_back(100);
  // 12 pairs of hidden layers: 8, 8, 16, 16, ..., 96, 96.
  for (std::size_t width = 8; width <= 96; width += 8) {
    sizes.push_back(width);
    sizes.push_back(width);
  }
  sizes.push_back(8);
  return sizes;
}

Network make_network_a(Rng& rng) {
  return Network::create(topology_network_a(), rng);
}

Network make_network_b(Rng& rng) {
  return Network::create(topology_network_b(), rng, Activation::kTanh,
                         Activation::kTanh, 0.25f);
}

PaperNetworkCounts paper_counts_network_a() { return {108, 3003, 14.0}; }
PaperNetworkCounts paper_counts_network_b() { return {1356, 81032, 353.0}; }

}  // namespace iw::nn
