// Fixed-point conversion of a trained network, FANN style.
//
// FANN's fixed-point export chooses one "decimal point" (fraction-bit count)
// for the whole network such that the integer arithmetic cannot overflow,
// then stores every weight as a 32-bit integer. The deployed kernel computes
// each neuron as
//
//     acc = sum_i ((w_i * x_i) >> frac_bits) + w_bias;   y = tanh_lut(acc)
//
// with 32-bit registers, i.e. one arithmetic shift per product. This module
// picks the fraction-bit count from the trained weights (bounded by both the
// 32-bit product and the accumulation worst case), quantizes the weights, and
// provides a host-side inference that is bit-exact with the assembly kernels
// in src/kernels (verified by integration tests).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/tanh_lut.hpp"
#include "nn/network.hpp"

namespace iw::nn {

struct QuantizedLayer {
  std::size_t n_in = 0;
  std::size_t n_out = 0;
  /// Row-major per output neuron, bias last: (n_in + 1) * n_out entries.
  std::vector<std::int32_t> weights;
};

class QuantizedNetwork {
 public:
  /// Quantizes a trained float network. All activations must be tanh (the
  /// fixed-point pipeline relies on |activation| <= 1). Inputs are expected
  /// in [-1, 1] and are clamped at quantization.
  static QuantizedNetwork from(const Network& net, int max_frac_bits = 13,
                               int tanh_log2_size = 9);

  fx::QFormat format() const { return q_; }
  const fx::TanhTable& tanh_table() const { return tanh_; }
  const std::vector<QuantizedLayer>& layers() const { return layers_; }
  std::size_t num_inputs() const { return layers_.front().n_in; }
  std::size_t num_outputs() const { return layers_.back().n_out; }
  std::size_t num_weights() const;

  /// Clamps to [-1, 1] and converts to the network's Q format.
  std::vector<std::int32_t> quantize_input(std::span<const float> input) const;

  /// Fixed-point inference, bit-exact with the deployed kernels. Throws if
  /// the accumulator would overflow 32 bits (the format selection makes this
  /// impossible for inputs in [-1, 1]).
  std::vector<std::int32_t> infer_fixed(std::span<const std::int32_t> input) const;

  /// Convenience: quantize input, run fixed inference, convert back.
  std::vector<float> infer(std::span<const float> input) const;

  /// Argmax of the fixed-point outputs for an already-quantized input. No
  /// dequantization: fixed-to-float conversion is strictly monotonic, so the
  /// argmax is taken on the raw int32 outputs.
  std::size_t classify_fixed(std::span<const std::int32_t> input) const;
  /// Quantizes the input and classifies via classify_fixed (the float `infer`
  /// detour — allocate, dequantize, argmax — is gone).
  std::size_t classify(std::span<const float> input) const;

  /// Text serialization of the deployment artifact (weights are integers, so
  /// the round trip is lossless).
  void save(std::ostream& os) const;
  static QuantizedNetwork load(std::istream& is);

 private:
  QuantizedNetwork(fx::QFormat q, int tanh_log2_size)
      : q_(q), tanh_(q, tanh_log2_size) {}

  fx::QFormat q_;
  fx::TanhTable tanh_;
  std::vector<QuantizedLayer> layers_;
};

/// The fraction-bit count FANN-style export would pick for this network:
/// the largest f <= max_frac_bits such that neither a single 32-bit product
/// (|w| * 2^f) * 2^f nor a worst-case row accumulation sum|w| * 2^f can
/// overflow int32.
int select_frac_bits(const Network& net, int max_frac_bits = 13);

}  // namespace iw::nn
