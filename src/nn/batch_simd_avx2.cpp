// AVX2 tier of the packed 16-bit batch MAC: 16 lanes per tile held in two
// 256-bit int32 accumulators. See batch_simd.hpp for the bit-exactness
// argument; the statement-level mapping to run_fixed16_tile<16> is annotated
// inline. Compiled with -mavx2 in its own TU (see src/nn/CMakeLists.txt).
#include "nn/batch_simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

#include "nn/quantize16.hpp"

namespace iw::nn::detail {

namespace {
constexpr std::size_t kT = 16;  // kDefaultBatchTile16: one tile = 16 lanes
}  // namespace

const std::int16_t* run_fixed16_tile16_avx2(const QuantizedNetwork16& net,
                                            std::int16_t* cur,
                                            std::int16_t* nxt) {
  const std::int32_t range = net.tanh_table().range_fixed();
  const int frac = net.frac_bits();
  for (const QuantizedLayer16& layer : net.layers()) {
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int16_t* row = layer.weights.data() + o * 2 * layer.row_pairs;
      // acc[s] = 0. vpunpck interleaves within each 128-bit half, so the
      // int32 lane order is permuted until the end of the row:
      //   acc_lo holds lanes {0..3, 8..11}, acc_hi holds {4..7, 12..15}.
      __m256i acc_lo = _mm256_setzero_si256();
      __m256i acc_hi = _mm256_setzero_si256();
      for (std::size_t p = 0; p < layer.row_pairs; ++p) {
        // Weight pair broadcast as one int32: w0 in the low half, w1 high,
        // matching madd's (even, odd) element pairing after the unpacks.
        const std::uint32_t pair =
            (static_cast<std::uint32_t>(static_cast<std::uint16_t>(
                 row[2 * p + 1]))
             << 16) |
            static_cast<std::uint16_t>(row[2 * p]);
        const __m256i wv = _mm256_set1_epi32(static_cast<int>(pair));
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cur + (2 * p) * kT));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cur + (2 * p + 1) * kT));
        // unpack interleaves (col0[s], col1[s]); madd then yields
        // w0*col0[s] + w1*col1[s] per int32 lane — the scalar kernel's two
        // adds folded into one exact mod-2^32 sum.
        acc_lo = _mm256_add_epi32(
            acc_lo, _mm256_madd_epi16(_mm256_unpacklo_epi16(a, b), wv));
        acc_hi = _mm256_add_epi32(
            acc_hi, _mm256_madd_epi16(_mm256_unpackhi_epi16(a, b), wv));
      }
      // Undo the half-lane permutation once per output row.
      alignas(32) std::int32_t acc[kT];
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 0),
                         _mm256_permute2x128_si256(acc_lo, acc_hi, 0x20));
      _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 8),
                         _mm256_permute2x128_si256(acc_lo, acc_hi, 0x31));
      // Scalar tail, verbatim from run_fixed16_tile: the tanh table lookup is
      // a gather, so vectorizing the shift/clamp alone buys nothing.
      const std::int32_t bias = layer.biases[o];
      std::int16_t* dst = nxt + o * kT;
      for (std::size_t s = 0; s < kT; ++s) {
        const std::int32_t shifted = (acc[s] + bias) >> frac;
        const std::int32_t clamped = std::clamp(shifted, -range, range - 1);
        dst[s] = static_cast<std::int16_t>(net.tanh_table().eval(clamped));
      }
    }
    if (layer.n_out % 2 != 0) {
      std::int16_t* pad = nxt + layer.n_out * kT;
      for (std::size_t s = 0; s < kT; ++s) pad[s] = 0;
    }
    std::swap(cur, nxt);
  }
  return cur;
}

}  // namespace iw::nn::detail

#else

namespace iw::nn::detail {
// Built without -mavx2 (compiler lacks the flag): the dispatcher never
// selects this tier (tier_compiled is false), but the symbol must exist.
const std::int16_t* run_fixed16_tile16_avx2(const QuantizedNetwork16&,
                                            std::int16_t*, std::int16_t*) {
  return nullptr;
}
}  // namespace iw::nn::detail

#endif
