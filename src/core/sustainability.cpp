#include "core/sustainability.hpp"

#include "common/error.hpp"

namespace iw::core {

SustainabilityReport analyze_sustainability(const hv::DualSourceHarvester& harvester,
                                            const hv::DayProfile& profile,
                                            const platform::DetectionCost& cost) {
  ensure(cost.total_j() > 0.0, "analyze_sustainability: zero detection cost");
  const double duration = hv::profile_duration_s(profile);
  ensure(duration > 0.0, "analyze_sustainability: empty profile");

  SustainabilityReport report;
  for (const hv::EnvironmentSegment& seg : profile) {
    report.solar_j_per_day += harvester.solar_intake_w(seg.env) * seg.duration_s;
    report.teg_j_per_day += harvester.teg_intake_w(seg.env) * seg.duration_s;
  }
  // Normalize to one day when the profile is not exactly 24 h.
  const double day_scale = 86400.0 / duration;
  report.solar_j_per_day *= day_scale;
  report.teg_j_per_day *= day_scale;
  report.harvested_j_per_day = report.solar_j_per_day + report.teg_j_per_day;

  report.energy_per_detection_j = cost.total_j();
  report.detections_per_day = report.harvested_j_per_day / cost.total_j();
  report.detections_per_minute = report.detections_per_day / (24.0 * 60.0);
  return report;
}

SustainabilityReport paper_sustainability_scenario() {
  const hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
  const hv::DayProfile day = hv::paper_worst_case_day();
  // Paper's best case: classification on the 8-core cluster, Table IV cycle
  // count, no BLE notification.
  platform::DetectionCostParams params;
  const platform::DetectionCost cost = platform::make_detection_cost(params);
  return analyze_sustainability(harvester, day, cost);
}

}  // namespace iw::core
