// Subject-independent evaluation of the stress classifier.
//
// The paper's dataset (drivedb) is multi-subject; the honest generalization
// measure for a wearable is leave-one-subject-out (LOSO) cross-validation:
// train on all subjects but one, test on the held-out subject, with the
// feature normalizer fitted on the training subjects only (no leakage).
#pragma once

#include <cstdint>
#include <vector>

#include "bio/dataset.hpp"
#include "nn/train.hpp"

namespace iw::core {

struct LosoFoldResult {
  int held_out_subject = 0;
  double accuracy = 0.0;
  std::size_t test_windows = 0;
};

struct LosoResult {
  std::vector<LosoFoldResult> folds;
  double mean_accuracy = 0.0;
  double worst_accuracy = 1.0;
};

/// Runs LOSO cross-validation over the subjects in `dataset` with a fresh
/// network per fold (topology given as layer sizes, input/output widths
/// fixed by the task: 5 features, 3 classes).
LosoResult leave_one_subject_out(const bio::StressDataset& dataset,
                                 const nn::TrainConfig& training,
                                 std::uint64_t seed = 1,
                                 std::size_t hidden_units = 16);

}  // namespace iw::core
