#include "core/app.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/comparison.hpp"
#include "nn/batch.hpp"
#include "nn/presets.hpp"

namespace iw::core {

namespace {

double fixed_accuracy(const nn::QuantizedNetwork& qn, const nn::Dataset& data) {
  ensure(data.size() > 0, "fixed_accuracy: empty dataset");
  // The deployment test-set sweep runs through the batch engine: bit-exact
  // with per-sample classify, one workspace for the whole sweep.
  nn::FixedBatch batch(qn);
  std::vector<const float*> rows(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) rows[i] = data.inputs[i].data();
  std::vector<std::size_t> labels(data.size());
  batch.classify(rows, labels);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::size_t want = nn::argmax(std::span<const float>(data.targets[i]));
    if (labels[i] == want) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace

StressDetectionApp StressDetectionApp::build(const AppConfig& config) {
  StressDetectionApp app;
  app.dataset_ = bio::build_stress_dataset(config.dataset);

  Rng rng(config.seed);
  auto [train, test] = nn::split(app.dataset_.data, config.test_fraction, rng);
  app.train_ = std::move(train);
  app.test_ = std::move(test);
  ensure(app.train_.size() > 0 && app.test_.size() > 0,
         "StressDetectionApp: dataset too small to split");

  // Network A exactly as in the paper: 5-50-50-3, tanh.
  app.network_ = std::make_unique<nn::Network>(nn::make_network_a(rng));
  nn::train_rprop(*app.network_, app.train_, config.training);
  app.quantized_ = std::make_unique<nn::QuantizedNetwork>(
      nn::QuantizedNetwork::from(*app.network_, config.max_frac_bits));

  app.float_accuracy_ = nn::evaluate_accuracy(*app.network_, app.test_);
  app.fixed_accuracy_ = fixed_accuracy(*app.quantized_, app.test_);
  return app;
}

bio::StressLevel StressDetectionApp::classify_host(const bio::RawFeatures& raw) const {
  const std::vector<float> features = normalizer().apply(raw);
  return static_cast<bio::StressLevel>(network_->classify(features));
}

bio::StressLevel StressDetectionApp::classify_fixed(const bio::RawFeatures& raw) const {
  const std::vector<float> features = normalizer().apply(raw);
  return static_cast<bio::StressLevel>(quantized_->classify(features));
}

StressDetectionApp::TargetClassification StressDetectionApp::classify_on_target(
    const bio::RawFeatures& raw, kernels::Target target) const {
  const std::vector<float> features = normalizer().apply(raw);
  const auto input = quantized_->quantize_input(features);
  const kernels::KernelRunResult run = kernels::run_fixed_mlp(*quantized_, input, target);

  TargetClassification result;
  std::size_t best = 0;
  for (std::size_t i = 1; i < run.outputs_fixed.size(); ++i) {
    if (run.outputs_fixed[i] > run.outputs_fixed[best]) best = i;
  }
  result.level = static_cast<bio::StressLevel>(best);
  result.cycles = run.cycles;
  const pwr::ProcessorPowerModel power = power_model_for(target);
  result.time_s = power.time_s(run.cycles);
  result.energy_j = power.energy_j(run.cycles);
  return result;
}

}  // namespace iw::core
