// Processor comparison harness: regenerates the rows of Tables III and IV.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernels/runner.hpp"
#include "nn/quantize.hpp"
#include "power/processor_power.hpp"

namespace iw::core {

/// Power model matching an execution target (calibration in power/).
pwr::ProcessorPowerModel power_model_for(kernels::Target target);

struct TargetResult {
  kernels::Target target;
  std::string name;
  std::uint64_t cycles = 0;
  double time_s = 0.0;
  double energy_j = 0.0;
  std::uint64_t bank_conflict_stalls = 0;
  std::uint64_t barrier_wait_cycles = 0;
};

struct NetworkComparison {
  std::string network_name;
  std::vector<TargetResult> rows;  // M4, IBEX, 1x RI5CY, 8x RI5CY
};

/// Runs fixed-point inference of `qn` on all four targets and derives
/// time/energy from the calibrated power models.
NetworkComparison compare_targets(const std::string& network_name,
                                  const nn::QuantizedNetwork& qn,
                                  std::span<const std::int32_t> input);

/// Float-vs-fixed comparison on the Cortex-M4F (Section IV's first result).
struct FloatFixedComparison {
  std::uint64_t float_cycles = 0;
  std::uint64_t fixed_cycles = 0;
  double speedup() const {
    return static_cast<double>(float_cycles) / static_cast<double>(fixed_cycles);
  }
};
FloatFixedComparison compare_float_fixed_m4(const nn::Network& net,
                                            const nn::QuantizedNetwork& qn,
                                            std::span<const float> input);

}  // namespace iw::core
