// Self-sustainability analysis (Section IV-A of the paper).
//
// The paper's argument: with 6 h/day of challenging indoor light plus
// worst-case body-heat harvesting, InfiniWolf collects ~21.44 J/day; at
// 602.2 uJ per stress detection that supports up to ~24 detections per
// minute indefinitely, i.e. the watch is self-sustainable for this workload.
#pragma once

#include "harvest/harvester.hpp"
#include "platform/detection_cost.hpp"

namespace iw::core {

struct SustainabilityReport {
  double harvested_j_per_day = 0.0;
  double solar_j_per_day = 0.0;
  double teg_j_per_day = 0.0;
  double energy_per_detection_j = 0.0;
  double detections_per_day = 0.0;
  double detections_per_minute = 0.0;

  /// True when the harvest budget covers the requested detection rate.
  bool sustainable_at(double detections_per_minute_target) const {
    return detections_per_minute >= detections_per_minute_target;
  }
};

/// Integrates harvest intake over the profile and divides by the
/// per-detection energy.
SustainabilityReport analyze_sustainability(const hv::DualSourceHarvester& harvester,
                                            const hv::DayProfile& profile,
                                            const platform::DetectionCost& cost);

/// The paper's exact scenario: calibrated harvesters, the 6 h/700 lx +
/// worst-case-TEG day, and the best-case detection cost (8x RI5CY
/// classification).
SustainabilityReport paper_sustainability_scenario();

}  // namespace iw::core
