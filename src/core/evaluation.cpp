#include "core/evaluation.hpp"

#include <set>

#include "common/error.hpp"

namespace iw::core {

LosoResult leave_one_subject_out(const bio::StressDataset& dataset,
                                 const nn::TrainConfig& training,
                                 std::uint64_t seed, std::size_t hidden_units) {
  ensure(!dataset.windows.empty(), "leave_one_subject_out: empty dataset");
  ensure(hidden_units >= 1, "leave_one_subject_out: need hidden units");

  std::set<int> subjects;
  for (const bio::LabeledWindow& w : dataset.windows) subjects.insert(w.subject);
  ensure(subjects.size() >= 2, "leave_one_subject_out: need at least two subjects");

  LosoResult result;
  double accuracy_sum = 0.0;
  for (int held_out : subjects) {
    // Split raw windows by subject.
    std::vector<bio::RawFeatures> train_raw;
    std::vector<const bio::LabeledWindow*> train_windows, test_windows;
    for (const bio::LabeledWindow& w : dataset.windows) {
      if (w.subject == held_out) {
        test_windows.push_back(&w);
      } else {
        train_windows.push_back(&w);
        train_raw.push_back(w.raw);
      }
    }
    ensure(!train_windows.empty() && !test_windows.empty(),
           "leave_one_subject_out: degenerate fold");

    // Normalizer fitted on training subjects only (no leakage).
    const bio::FeatureNormalizer norm = bio::FeatureNormalizer::fit(train_raw);
    nn::Dataset train, test;
    for (const bio::LabeledWindow* w : train_windows) {
      train.add(norm.apply(w->raw),
                nn::Dataset::one_hot(static_cast<std::size_t>(w->level), 3));
    }
    for (const bio::LabeledWindow* w : test_windows) {
      test.add(norm.apply(w->raw),
               nn::Dataset::one_hot(static_cast<std::size_t>(w->level), 3));
    }

    Rng rng(seed * 7919 + static_cast<std::uint64_t>(held_out));
    nn::Network net =
        nn::Network::create({bio::kNumFeatures, hidden_units, 3}, rng);
    nn::train_rprop(net, train, training);

    LosoFoldResult fold;
    fold.held_out_subject = held_out;
    fold.accuracy = nn::evaluate_accuracy(net, test);
    fold.test_windows = test.size();
    accuracy_sum += fold.accuracy;
    result.worst_accuracy = std::min(result.worst_accuracy, fold.accuracy);
    result.folds.push_back(fold);
  }
  result.mean_accuracy = accuracy_sum / static_cast<double>(result.folds.size());
  return result;
}

}  // namespace iw::core
