// End-to-end stress-detection application (the paper's use case).
//
// Pipeline: synthetic multi-subject ECG + GSR recordings -> windowed
// 5-feature extraction -> FANN-style training of Network A (5-50-50-3) ->
// fixed-point conversion -> deployment on a simulated execution target.
// The same feature vector can be classified on the host float network, the
// host fixed-point reference, or the instruction-set simulator, and the ISS
// result is bit-exact with the host fixed-point reference.
#pragma once

#include <cstdint>
#include <memory>

#include "bio/dataset.hpp"
#include "kernels/runner.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/train.hpp"

namespace iw::core {

struct AppConfig {
  bio::StressDatasetConfig dataset;
  nn::TrainConfig training{.max_epochs = 600, .target_mse = 2e-3};
  double test_fraction = 0.3;
  std::uint64_t seed = 42;
  int max_frac_bits = 13;
};

class StressDetectionApp {
 public:
  /// Builds the full pipeline: dataset, training, quantization, evaluation.
  static StressDetectionApp build(const AppConfig& config = {});

  const nn::Network& network() const { return *network_; }
  const nn::QuantizedNetwork& quantized() const { return *quantized_; }
  const bio::FeatureNormalizer& normalizer() const { return dataset_.normalizer; }
  const nn::Dataset& test_set() const { return test_; }

  double float_test_accuracy() const { return float_accuracy_; }
  double fixed_test_accuracy() const { return fixed_accuracy_; }

  /// Host float classification of a raw feature vector.
  bio::StressLevel classify_host(const bio::RawFeatures& raw) const;
  /// Host fixed-point reference classification.
  bio::StressLevel classify_fixed(const bio::RawFeatures& raw) const;

  struct TargetClassification {
    bio::StressLevel level = bio::StressLevel::kNone;
    std::uint64_t cycles = 0;
    double time_s = 0.0;
    double energy_j = 0.0;
  };
  /// Classification executed on the instruction-set simulator.
  TargetClassification classify_on_target(const bio::RawFeatures& raw,
                                          kernels::Target target) const;

 private:
  StressDetectionApp() = default;

  bio::StressDataset dataset_;
  nn::Dataset train_;
  nn::Dataset test_;
  std::unique_ptr<nn::Network> network_;
  std::unique_ptr<nn::QuantizedNetwork> quantized_;
  double float_accuracy_ = 0.0;
  double fixed_accuracy_ = 0.0;
};

}  // namespace iw::core
