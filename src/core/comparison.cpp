#include "core/comparison.hpp"

#include "common/error.hpp"

namespace iw::core {

pwr::ProcessorPowerModel power_model_for(kernels::Target target) {
  switch (target) {
    case kernels::Target::kCortexM4: return pwr::nordic_m4();
    case kernels::Target::kIbex: return pwr::mr_wolf_ibex();
    case kernels::Target::kRi5cySingle: return pwr::mr_wolf_cluster_single();
    case kernels::Target::kRi5cyMulti: return pwr::mr_wolf_cluster_multi8();
  }
  fail("power_model_for: bad target");
}

NetworkComparison compare_targets(const std::string& network_name,
                                  const nn::QuantizedNetwork& qn,
                                  std::span<const std::int32_t> input) {
  NetworkComparison comparison;
  comparison.network_name = network_name;
  for (kernels::Target target :
       {kernels::Target::kCortexM4, kernels::Target::kIbex,
        kernels::Target::kRi5cySingle, kernels::Target::kRi5cyMulti}) {
    const kernels::KernelRunResult run = kernels::run_fixed_mlp(qn, input, target);
    const pwr::ProcessorPowerModel power = power_model_for(target);
    TargetResult row;
    row.target = target;
    row.name = kernels::target_name(target);
    row.cycles = run.cycles;
    row.time_s = power.time_s(run.cycles);
    row.energy_j = power.energy_j(run.cycles);
    row.bank_conflict_stalls = run.bank_conflict_stalls;
    row.barrier_wait_cycles = run.barrier_wait_cycles;
    comparison.rows.push_back(row);
  }
  return comparison;
}

FloatFixedComparison compare_float_fixed_m4(const nn::Network& net,
                                            const nn::QuantizedNetwork& qn,
                                            std::span<const float> input) {
  FloatFixedComparison result;
  result.float_cycles = kernels::run_float_mlp(net, input).cycles;
  result.fixed_cycles =
      kernels::run_fixed_mlp(qn, qn.quantize_input(input), kernels::Target::kCortexM4)
          .cycles;
  return result;
}

}  // namespace iw::core
