// Static energy certification of the kernel suite (`iw_lint --wcet`).
//
// For every shipped kernel this module runs the static analyzer's
// interprocedural WCET pass next to one dynamic reference execution and
// reports the certified sandwich
//
//     floor (static min) <= dynamic cycles <= ceiling (static WCET)
//
// plus the composed maximum stack depth. The ceiling is what turns the
// paper's per-classification energies (1.2-5.1 uJ, Table IV) from point
// measurements into certified upper bounds: ceiling_cycles x the target
// processor's energy-per-cycle bounds the energy of *every* execution, not
// just the measured one. Rows whose sandwich fails (or whose intended
// profile produces error diagnostics) are marked unsound and fail the
// check.sh gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iw::kernels {

/// One certified kernel: the static sandwich around a reference execution.
struct WcetRow {
  std::string name;          // kernel name (matches reference_kernel_images)
  std::string profile_name;  // intended timing profile
  std::uint64_t floor_cycles = 0;    // static min
  std::uint64_t dynamic_cycles = 0;  // one reference execution
  std::uint64_t ceiling_cycles = 0;  // static WCET (kUnboundedCycles = none)
  std::uint64_t stack_bytes = 0;     // composed max stack depth
  bool sound = false;  // floor <= dynamic <= ceiling, ceiling finite
};

/// Certifies the whole reference kernel suite: the seven generated MLP
/// kernels (representative small network) plus the HRV/GSR feature kernels,
/// each executed once under its intended profile. Deterministic.
std::vector<WcetRow> certified_kernel_rows();

/// Human-readable certification table.
std::string wcet_table_text(const std::vector<WcetRow>& rows);
/// Machine-readable certification table (stable keys, one JSON object).
std::string wcet_table_json(const std::vector<WcetRow>& rows);
/// True when every row is sound.
bool all_sound(const std::vector<WcetRow>& rows);

/// Static certificate for the paper's Network A (5-50-50-3) classification
/// kernel on one execution target, for the platform energy budget:
/// floor <= dynamic <= ceiling always holds on the reproduced kernels.
struct NetACertificate {
  std::uint64_t floor_cycles = 0;
  std::uint64_t dynamic_cycles = 0;
  std::uint64_t ceiling_cycles = 0;
};

/// Network A on the 8-core RI5CY cluster (the paper's 6126-cycle / 1.2 uJ
/// operating point).
NetACertificate certify_net_a_multi8();
/// Network A on the Cortex-M4 (the paper's 30210-cycle / 5.1 uJ baseline).
NetACertificate certify_net_a_m4();

}  // namespace iw::kernels
