#include "kernels/feature_kernel.hpp"

#include <algorithm>
#include <string>

#include "asmx/assembler.hpp"
#include "common/error.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/machine.hpp"

namespace iw::kernels {

namespace {

/// Exact floor(sqrt(x)) via the restoring bitwise algorithm (matches the
/// kernel's isqrt routine bit for bit).
std::int32_t isqrt(std::uint32_t x) {
  std::uint32_t res = 0;
  std::uint32_t bit = 1u << 30;
  while (bit > x) bit >>= 2;
  while (bit != 0) {
    if (x >= res + bit) {
      x -= res + bit;
      res = (res >> 1) + bit;
    } else {
      res >>= 1;
    }
    bit >>= 2;
  }
  return static_cast<std::int32_t>(res);
}

constexpr std::uint32_t kRrAddr = 0x1000;
constexpr std::uint32_t kCountAddr = 0x0F00;
constexpr std::uint32_t kOutAddr = 0x0F10;

const char* kKernelSource = R"(
    .equ RR, 0x1000
    .equ COUNT, 0xF00
    .equ OUT, 0xF10
main:
    li s0, RR
    li t5, COUNT
    lw s1, 0(t5)
    addi s1, s1, -1         # m = n - 1 successive differences
    li t0, 0                # sum of squared differences
    li t1, 0                # sum of differences
    li s3, 0                # nn50 count
    li s2, 50               # NN50 threshold (ms)
    lw t2, 0(s0)            # previous interval
    addi s0, s0, 4
    lp.setup 0, s1, diff_end
    p.lw t3, 4(s0!)
    sub t4, t3, t2          # d = rr[i] - rr[i-1]
    mv t2, t3
    add t1, t1, t4
    mul t6, t4, t4
    add t0, t0, t6
    p.abs a3, t4            # |d| (Xpulp single-cycle abs)
    slt a4, s2, a3          # 1 when |d| > 50
    add s3, s3, a4
diff_end:
    div a0, t0, s1          # mean of squares
    slli a0, a0, 8
    call isqrt              # rmssd in Q4 ms
    mv s4, a0
    div a0, t0, s1
    div a1, t1, s1          # mean difference
    mul a1, a1, a1
    sub a0, a0, a1          # variance (integer approximation)
    bgez a0, var_ok
    li a0, 0
var_ok:
    slli a0, a0, 8
    call isqrt              # sdsd in Q4 ms
    li t5, OUT
    sw s4, 0(t5)
    sw a0, 4(t5)
    sw s3, 8(t5)
    ecall

# restoring integer square root: a0 = floor(sqrt(a0)) * 16 for Q8 inputs
isqrt:
    li t3, 0                # result
    li t2, 0x40000000       # bit
isqrt_adjust:
    bleu t2, a0, isqrt_loop
    srli t2, t2, 2
    bnez t2, isqrt_adjust
isqrt_loop:
    beqz t2, isqrt_done
    add t4, t3, t2
    bltu a0, t4, isqrt_skip
    sub a0, a0, t4
    srli t3, t3, 1
    add t3, t3, t2
    j isqrt_next
isqrt_skip:
    srli t3, t3, 1
isqrt_next:
    srli t2, t2, 2
    bnez t2, isqrt_loop
isqrt_done:
    mv a0, t3
    ret
)";

}  // namespace

std::string hrv_kernel_source() { return kKernelSource; }

HrvFixedValues hrv_fixed_reference(std::span<const std::int32_t> rr_ms) {
  ensure(rr_ms.size() >= 2, "hrv_fixed_reference: need at least two intervals");
  const std::int32_t m = static_cast<std::int32_t>(rr_ms.size()) - 1;
  std::int32_t sumsq = 0;
  std::int32_t sumd = 0;
  std::int32_t nn50 = 0;
  for (std::size_t i = 1; i < rr_ms.size(); ++i) {
    const std::int32_t d = rr_ms[i] - rr_ms[i - 1];
    sumd += d;
    sumsq += d * d;
    if (std::abs(d) > 50) ++nn50;
  }
  HrvFixedValues out;
  const std::int32_t mean_sq = sumsq / m;
  out.rmssd_q4_ms = isqrt(static_cast<std::uint32_t>(mean_sq) << 8);
  const std::int32_t mean_d = sumd / m;
  const std::int32_t variance = std::max(0, mean_sq - mean_d * mean_d);
  out.sdsd_q4_ms = isqrt(static_cast<std::uint32_t>(variance) << 8);
  out.nn50 = nn50;
  return out;
}

HrvKernelResult run_hrv_kernel(std::span<const std::int32_t> rr_ms) {
  ensure(rr_ms.size() >= 2, "run_hrv_kernel: need at least two intervals");
  ensure(rr_ms.size() <= 2000, "run_hrv_kernel: RR series too long for the layout");
  for (std::int32_t v : rr_ms) {
    ensure(v >= 0 && v <= 5000, "run_hrv_kernel: implausible RR interval (ms)");
  }
  const asmx::Program program = asmx::assemble(kKernelSource);
  ensure(program.end_address() <= kCountAddr, "run_hrv_kernel: program overflows layout");

  rv::Machine machine(rv::ri5cy(), 1 << 16);
  machine.load_program(program.words);
  machine.memory().store32(kCountAddr, static_cast<std::uint32_t>(rr_ms.size()));
  machine.memory().write_words(kRrAddr,
                               std::span<const std::int32_t>(rr_ms.data(), rr_ms.size()));
  rv::analysis::install_load_verifier();
  machine.set_verify_on_load(true);

  HrvKernelResult result;
  {
    // The difference loop runs exactly n-1 times; the isqrt loops bound
    // themselves (shift-countdown pattern).
    rv::analysis::AnalyzeOptions options;
    options.loop_bounds[program.symbol("diff_end")] =
        static_cast<std::uint64_t>(rr_ms.size()) - 1;
    const rv::analysis::AnalysisReport report = rv::analysis::analyze(
        machine.memory(), program.symbol("main"), machine.core().profile(), options);
    ensure(report.ok(), "run_hrv_kernel: static analysis rejected the kernel");
    result.static_min_cycles = report.min_cycles;
    result.static_max_cycles = report.max_cycles;
    result.static_stack_bytes = report.stack_bytes;
  }
  const rv::RunResult run = machine.run(program.symbol("main"));

  result.values.rmssd_q4_ms = static_cast<std::int32_t>(machine.memory().load32(kOutAddr));
  result.values.sdsd_q4_ms =
      static_cast<std::int32_t>(machine.memory().load32(kOutAddr + 4));
  result.values.nn50 = static_cast<std::int32_t>(machine.memory().load32(kOutAddr + 8));
  result.cycles = run.cycles;
  result.instructions = run.instructions;
  return result;
}

namespace {

constexpr std::uint32_t kGsrCountAddr = 0x0F00;
constexpr std::uint32_t kGsrMinAddr = 0x0F04;
constexpr std::uint32_t kGsrEpsAddr = 0x0F08;
constexpr std::uint32_t kGsrOutAddr = 0x0F10;
constexpr std::uint32_t kGsrDataAddr = 0x1000;

// Register use: s0 sample ptr, s1 loop counter, s5 boxcar sum, s6 prev
// smoothed value, s7 eps, s8 in-rise flag, s9 rise start, s10 min height,
// s11 run length; a0/a1/a2 = count / total height / total length.
const char* kGsrKernelSource = R"(
    .equ DATA, 0x1000
    .equ COUNT, 0xF00
    .equ MIN_H, 0xF04
    .equ EPS, 0xF08
    .equ OUT, 0xF10
main:
    li s0, DATA
    li t0, COUNT
    lw s1, 0(t0)
    lw s10, MIN_H-COUNT(t0)
    lw s7, EPS-COUNT(t0)
    # Prime the 4-sample boxcar with samples 0..3.
    p.lw t2, 4(s0!)
    mv s5, t2
    p.lw t2, 4(s0!)
    add s5, s5, t2
    p.lw t2, 4(s0!)
    add s5, s5, t2
    p.lw t2, 4(s0!)
    add s5, s5, t2
    srai s6, s5, 2          # prev = smooth[3]
    addi s1, s1, -4         # remaining samples
    li s8, 0
    li s9, 0
    li s11, 0
    li a0, 0
    li a1, 0
    li a2, 0
    beqz s1, finish
sample_loop:
    p.lw t2, 4(s0!)         # x[i]
    add s5, s5, t2
    lw t3, -20(s0)          # x[i-4] leaves the window
    sub s5, s5, t3
    srai t4, s5, 2          # cur = smooth[i]
    sub t5, t4, s6          # derivative
    blt s7, t5, rising      # d > eps ?
    beqz s8, advance        # not in a rise: nothing to close
    sub t6, s6, s9          # height of the finished rise
    blt t6, s10, rise_clear
    addi a0, a0, 1
    add a1, a1, t6
    add a2, a2, s11
rise_clear:
    li s8, 0
    j advance
rising:
    bnez s8, rise_cont
    li s8, 1
    mv s9, s6               # rise starts at the previous value
    li s11, 0
rise_cont:
    addi s11, s11, 1
advance:
    mv s6, t4
    addi s1, s1, -1
    bnez s1, sample_loop
finish:
    beqz s8, store          # close a rise still open at stream end
    sub t6, s6, s9
    blt t6, s10, store
    addi a0, a0, 1
    add a1, a1, t6
    add a2, a2, s11
store:
    li t0, OUT
    sw a0, 0(t0)
    sw a1, 4(t0)
    sw a2, 8(t0)
    ecall
)";

}  // namespace

std::string gsr_kernel_source() { return kGsrKernelSource; }

GsrFixedValues gsr_fixed_reference(std::span<const std::int32_t> samples_q8,
                                   std::int32_t min_height_q8,
                                   std::int32_t eps_q8) {
  ensure(samples_q8.size() >= 5, "gsr_fixed_reference: need at least 5 samples");
  GsrFixedValues out;
  std::int32_t sum = samples_q8[0] + samples_q8[1] + samples_q8[2] + samples_q8[3];
  std::int32_t prev = sum >> 2;
  bool in_rise = false;
  std::int32_t start = 0;
  std::int32_t run_len = 0;
  const auto close_rise = [&] {
    const std::int32_t height = prev - start;
    if (height >= min_height_q8) {
      ++out.slope_count;
      out.total_height_q8 += height;
      out.total_length_samples += run_len;
    }
    in_rise = false;
  };
  for (std::size_t i = 4; i < samples_q8.size(); ++i) {
    sum += samples_q8[i] - samples_q8[i - 4];
    const std::int32_t cur = sum >> 2;
    const std::int32_t d = cur - prev;
    if (d > eps_q8) {
      if (!in_rise) {
        in_rise = true;
        start = prev;
        run_len = 0;
      }
      ++run_len;
    } else if (in_rise) {
      close_rise();
    }
    prev = cur;
  }
  if (in_rise) close_rise();
  return out;
}

GsrKernelResult run_gsr_kernel(std::span<const std::int32_t> samples_q8,
                               std::int32_t min_height_q8, std::int32_t eps_q8) {
  ensure(samples_q8.size() >= 5, "run_gsr_kernel: need at least 5 samples");
  ensure(samples_q8.size() <= 12000, "run_gsr_kernel: series too long for the layout");
  for (std::int32_t v : samples_q8) {
    ensure(v >= 0 && v <= (50 << 8), "run_gsr_kernel: implausible conductance");
  }
  const asmx::Program program = asmx::assemble(kGsrKernelSource);
  ensure(program.end_address() <= kGsrCountAddr,
         "run_gsr_kernel: program overflows layout");

  rv::Machine machine(rv::ri5cy(), 1 << 16);
  machine.load_program(program.words);
  machine.memory().store32(kGsrCountAddr, static_cast<std::uint32_t>(samples_q8.size()));
  machine.memory().store32(kGsrMinAddr, static_cast<std::uint32_t>(min_height_q8));
  machine.memory().store32(kGsrEpsAddr, static_cast<std::uint32_t>(eps_q8));
  machine.memory().write_words(
      kGsrDataAddr, std::span<const std::int32_t>(samples_q8.data(), samples_q8.size()));
  rv::analysis::install_load_verifier();
  machine.set_verify_on_load(true);

  GsrKernelResult result;
  {
    // The sample loop runs exactly n-4 times (the first four samples prime
    // the boxcar before the loop is entered).
    rv::analysis::AnalyzeOptions options;
    options.loop_bounds[program.symbol("sample_loop")] =
        static_cast<std::uint64_t>(samples_q8.size()) - 4;
    const rv::analysis::AnalysisReport report = rv::analysis::analyze(
        machine.memory(), program.symbol("main"), machine.core().profile(), options);
    ensure(report.ok(), "run_gsr_kernel: static analysis rejected the kernel");
    result.static_min_cycles = report.min_cycles;
    result.static_max_cycles = report.max_cycles;
    result.static_stack_bytes = report.stack_bytes;
  }
  const rv::RunResult run = machine.run(program.symbol("main"));

  result.values.slope_count =
      static_cast<std::int32_t>(machine.memory().load32(kGsrOutAddr));
  result.values.total_height_q8 =
      static_cast<std::int32_t>(machine.memory().load32(kGsrOutAddr + 4));
  result.values.total_length_samples =
      static_cast<std::int32_t>(machine.memory().load32(kGsrOutAddr + 8));
  result.cycles = run.cycles;
  result.instructions = run.instructions;
  return result;
}

}  // namespace iw::kernels
