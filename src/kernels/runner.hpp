// Executes the MLP kernels on the simulated cores and reports cycle counts.
//
// This is the measurement harness behind Table III: it lays a (quantized)
// network out in simulated memory, generates + assembles the right kernel for
// the requested execution target, runs it to completion, and returns both the
// network outputs (for bit-exactness checks against nn::QuantizedNetwork) and
// the cycle/instruction counts (for the runtime and energy tables).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "asmx/assembler.hpp"
#include "kernels/kernel_source.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/profile_stats.hpp"
#include "rvsim/timing.hpp"

namespace iw::kernels {

/// The four execution targets of Table III.
enum class Target { kCortexM4, kIbex, kRi5cySingle, kRi5cyMulti };

/// Timing profile used for a target.
rv::TimingProfile profile_for(Target target);
/// Human-readable target name as the paper prints it.
std::string target_name(Target target);

struct KernelRunResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::vector<std::int32_t> outputs_fixed;
  std::vector<std::int16_t> outputs_fixed16;
  std::vector<float> outputs_float;
  // Multi-core diagnostics (zero for single-core runs).
  std::uint64_t bank_conflict_stalls = 0;
  std::uint64_t barrier_wait_cycles = 0;
  /// Retired-instruction mix (aggregated over all cores for cluster runs).
  rv::InstructionHistogram histogram;
  /// Whole-program static cycle lower bound from iw_rvsim_analysis, computed
  /// on the loaded image before the run. Always <= cycles.
  std::uint64_t static_min_cycles = 0;
  /// Whole-program static cycle upper bound (WCET) from the same analysis,
  /// using the kernel generator's own loop-bound annotations (layer sizes)
  /// and, for cluster runs, the cluster's bank/barrier pessimism. Always
  /// >= cycles, or rv::analysis::kUnboundedCycles when no finite bound
  /// exists.
  std::uint64_t static_max_cycles = rv::analysis::kUnboundedCycles;
  /// Static maximum stack depth in bytes (the kernels are stackless, so 0),
  /// or rv::analysis::kUnboundedCycles when the stack pointer is untracked.
  std::uint64_t static_stack_bytes = 0;
};

/// Runs fixed-point inference of `net` on `target`. `input` must already be
/// in the network's Q format (see QuantizedNetwork::quantize_input).
KernelRunResult run_fixed_mlp(const nn::QuantizedNetwork& net,
                              std::span<const std::int32_t> input, Target target);

/// Runs float inference on the Cortex-M4F (FPU) target.
KernelRunResult run_float_mlp(const nn::Network& net, std::span<const float> input);

/// Ablation harness: runs the single-core fixed kernel of `flavor` on an
/// arbitrary timing profile (e.g. the generic RV32IM kernel on RI5CY timing
/// to isolate the value of the Xpulp extensions). The profile must support
/// every instruction the flavor emits.
KernelRunResult run_fixed_mlp_custom(const nn::QuantizedNetwork& net,
                                     std::span<const std::int32_t> input,
                                     Flavor flavor, const rv::TimingProfile& profile);

/// Ablation harness: parallel RI5CY kernel on a cluster of `num_cores`
/// (1, 2, 4 or 8) for the scaling study.
KernelRunResult run_fixed_mlp_parallel(const nn::QuantizedNetwork& net,
                                       std::span<const std::int32_t> input,
                                       int num_cores);

/// Packed 16-bit SIMD inference on a single RI5CY core (pv.sdotsp.h path).
/// `input` must come from QuantizedNetwork16::quantize_input.
KernelRunResult run_simd_mlp(const nn::QuantizedNetwork16& net,
                             std::span<const std::int16_t> input);

/// Multi-core 16-bit SIMD inference: the cluster's peak configuration
/// (num_cores cores, two MACs per core-cycle).
KernelRunResult run_simd_mlp_parallel(const nn::QuantizedNetwork16& net,
                                      std::span<const std::int16_t> input,
                                      int num_cores = 8);

/// One assembled kernel image plus the timing profile it is meant to execute
/// on — the unit `tools/iw_lint --kernels` and scripts/check.sh feed to the
/// static analyzer.
struct KernelImage {
  std::string name;
  rv::TimingProfile profile;
  asmx::Program program;
  std::uint32_t entry = 0;
  std::size_t mem_bytes = Layout::kMemBytes;
  /// Uses extensions the IBEX profile lacks; the analyzer must reject the
  /// image there with an unsupported-instruction diagnostic.
  bool expect_reject_on_ibex = false;
  /// Analysis options for a WCET pass under the intended profile: the
  /// generator's loop-bound annotations plus cluster pessimism for the
  /// parallel kernels. Lint-only passes can ignore this.
  rv::analysis::AnalyzeOptions analyze_options;
};

/// Assembles every kernel shipped in src/kernels — the Table-III MLP kernels
/// (for a representative small network) plus the HRV/GSR feature-extraction
/// kernels — paired with their intended profiles.
std::vector<KernelImage> reference_kernel_images();

}  // namespace iw::kernels
