#include "kernels/runner.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "asmx/assembler.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/feature_kernel.hpp"
#include "kernels/kernel_source.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/cluster.hpp"
#include "rvsim/machine.hpp"

namespace iw::kernels {

namespace {

/// Per-layer placement of weights and ping-pong activation buffers.
struct Placement {
  std::string layer_table;  // .word lines for the kernel source
  std::vector<std::uint32_t> weight_addrs;
  std::uint32_t output_addr = 0;
  std::size_t n_outputs = 0;
};

template <typename LayerRange>
Placement place_layers(const LayerRange& layers) {
  Placement p;
  std::ostringstream table;
  std::uint32_t w_addr = Layout::kWeights;
  std::uint32_t in_addr = Layout::kAct0;
  std::uint32_t out_addr = Layout::kAct1;
  for (const auto& layer : layers) {
    p.weight_addrs.push_back(w_addr);
    table << "    .word " << layer.n_in << ", " << layer.n_out << ", " << w_addr
          << ", " << in_addr << ", " << out_addr << "\n";
    w_addr += static_cast<std::uint32_t>(4 * (layer.n_in + 1) * layer.n_out);
    std::swap(in_addr, out_addr);
    p.output_addr = in_addr;  // the buffer the layer just wrote
    p.n_outputs = layer.n_out;
  }
  ensure(w_addr <= Layout::kAct0, "kernel runner: network weights do not fit the layout");
  p.layer_table = table.str();
  return p;
}

FixedKernelParams fixed_params(const nn::QuantizedNetwork& net) {
  FixedKernelParams params;
  params.frac_bits = net.format().frac_bits;
  const fx::TanhTable& table = net.tanh_table();
  params.range_fixed = table.range_fixed();
  params.step_mask = table.step_fixed() - 1;
  params.step_shift = 0;
  while ((1 << params.step_shift) < table.step_fixed()) ++params.step_shift;
  params.n_layers = static_cast<int>(net.layers().size());
  return params;
}

void write_tanh_table(rv::Memory& mem, const fx::TanhTable& table) {
  mem.write_words(Layout::kTanhTable, std::span<const std::int32_t>(table.samples()));
}

void write_fixed_network(rv::Memory& mem, const nn::QuantizedNetwork& net,
                         const Placement& placement) {
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    mem.write_words(placement.weight_addrs[l],
                    std::span<const std::int32_t>(net.layers()[l].weights));
  }
  write_tanh_table(mem, net.tanh_table());
}

Flavor flavor_for(Target target) {
  switch (target) {
    case Target::kCortexM4: return Flavor::kM4;
    case Target::kIbex: return Flavor::kGeneric;
    case Target::kRi5cySingle: return Flavor::kRi5cy;
    case Target::kRi5cyMulti: return Flavor::kRi5cy;
  }
  fail("flavor_for: bad target");
}

/// Arms the Machine/Cluster load-time verification gate and records the
/// image's static cycle floor, WCET ceiling and stack bound in `result`. The
/// explicit analyze() call harvests the bounds; run() then re-verifies
/// through the verify_on_load hook so the gate itself stays exercised on
/// every kernel run.
void arm_verifier_and_bounds(rv::Memory& mem, std::uint32_t entry,
                             const rv::TimingProfile& profile,
                             const rv::analysis::AnalyzeOptions& options,
                             KernelRunResult& result) {
  rv::analysis::install_load_verifier();
  const rv::analysis::AnalysisReport report =
      rv::analysis::analyze(mem, entry, profile, options);
  ensure(report.ok(), "kernel runner: static analysis rejected the kernel image");
  result.static_min_cycles = report.min_cycles;
  result.static_max_cycles = report.max_cycles;
  result.static_stack_bytes = report.stack_bytes;
}

/// Loop-bound annotations for a generated MLP kernel: the dot-product inner
/// loop ("inner" in the branchy flavors, "inner_end" for the hardware-loop
/// flavors) and the per-layer neuron loop, both data-dependent (counts are
/// loaded from the layer table), bounded by the largest layer. The outer
/// layer loop needs no annotation: its `li NLAYERS` countdown is proven by
/// the analyzer's constant propagation.
std::map<std::uint32_t, std::uint64_t> mlp_loop_bounds(const asmx::Program& program,
                                                       std::uint64_t inner_iters,
                                                       std::uint64_t neuron_iters) {
  std::map<std::uint32_t, std::uint64_t> bounds;
  if (program.symbols.count("inner")) bounds[program.symbol("inner")] = inner_iters;
  if (program.symbols.count("inner_end")) {
    bounds[program.symbol("inner_end")] = inner_iters;
  }
  bounds[program.symbol("neuron_loop")] = neuron_iters;
  return bounds;
}

/// Length of one dot-product pass for a layer: word count for the 32-bit
/// kernels, packed pair count for the SIMD ones.
std::uint64_t loop_rows(const nn::Layer& layer) { return layer.n_in; }
std::uint64_t loop_rows(const nn::QuantizedLayer& layer) { return layer.n_in; }
std::uint64_t loop_rows(const nn::QuantizedLayer16& layer) { return layer.row_pairs; }

/// Largest dot-product length (n_in or row_pairs) and neuron count over the
/// network's layers; `cores` > 1 divides the neuron count the way the
/// parallel kernels split rows (ceil(n_out / cores)).
template <typename LayerRange>
std::pair<std::uint64_t, std::uint64_t> mlp_loop_iters(const LayerRange& layers,
                                                       int cores = 1) {
  std::uint64_t inner = 1;
  std::uint64_t neurons = 1;
  for (const auto& layer : layers) {
    const std::uint64_t rows = loop_rows(layer);
    const std::uint64_t n_out = static_cast<std::uint64_t>(layer.n_out);
    inner = std::max(inner, rows);
    neurons = std::max(
        neurons, (n_out + static_cast<std::uint64_t>(cores) - 1) /
                     static_cast<std::uint64_t>(cores));
  }
  return {inner, neurons};
}

rv::analysis::AnalyzeOptions cluster_analyze_options(const rv::ClusterConfig& cfg) {
  rv::analysis::AnalyzeOptions options;
  options.cluster_cores = cfg.num_cores;
  options.barrier_wakeup_cycles = cfg.barrier_wakeup_cycles;
  return options;
}

rv::ClusterConfig cluster_config(int num_cores = Layout::kClusterCores) {
  rv::ClusterConfig cfg;
  cfg.num_cores = num_cores;
  cfg.mem_bytes = Layout::kMemBytes;
  cfg.tcdm_base = Layout::kTanhTable;
  cfg.tcdm_size = static_cast<std::uint32_t>(Layout::kMemBytes) - Layout::kTanhTable;
  cfg.num_banks = 8;  // Mr. Wolf-style word-interleaved shared L1
  cfg.barrier_addr = Layout::kBarrier;
  cfg.stack_bytes = 0x1000;  // kernels do not touch the stack
  return cfg;
}

}  // namespace

rv::TimingProfile profile_for(Target target) {
  switch (target) {
    case Target::kCortexM4: return rv::cortex_m4f();
    case Target::kIbex: return rv::ibex();
    case Target::kRi5cySingle: return rv::ri5cy();
    case Target::kRi5cyMulti: return rv::ri5cy();
  }
  fail("profile_for: bad target");
}

std::string target_name(Target target) {
  switch (target) {
    case Target::kCortexM4: return "ARM Cortex-M4";
    case Target::kIbex: return "Mr. Wolf IBEX";
    case Target::kRi5cySingle: return "Mr. Wolf single RI5CY";
    case Target::kRi5cyMulti: return "Mr. Wolf multi RI5CY (8 cores)";
  }
  fail("target_name: bad target");
}

KernelRunResult run_fixed_mlp(const nn::QuantizedNetwork& net,
                              std::span<const std::int32_t> input, Target target) {
  ensure(input.size() == net.num_inputs(), "run_fixed_mlp: input width mismatch");
  const Placement placement = place_layers(net.layers());
  const FixedKernelParams params = fixed_params(net);

  const std::string source =
      (target == Target::kRi5cyMulti)
          ? parallel_kernel_source(params, placement.layer_table)
          : fixed_kernel_source(flavor_for(target), params, placement.layer_table);
  const asmx::Program program = asmx::assemble(source);
  ensure(program.end_address() <= Layout::kTanhTable,
         "run_fixed_mlp: program overflows layout");

  KernelRunResult result;
  if (target == Target::kRi5cyMulti) {
    const rv::ClusterConfig cfg = cluster_config();
    rv::Cluster cluster(profile_for(target), cfg);
    cluster.load_program(program.words);
    write_fixed_network(cluster.memory(), net, placement);
    cluster.memory().write_words(Layout::kAct0,
                                 std::span<const std::int32_t>(input.data(), input.size()));
    for (int c = 0; c < Layout::kClusterCores; ++c) {
      cluster.core(c).set_histogram(&result.histogram);
    }
    cluster.set_verify_on_load(true);
    rv::analysis::AnalyzeOptions options = cluster_analyze_options(cfg);
    const auto [inner, neurons] = mlp_loop_iters(net.layers(), cfg.num_cores);
    options.loop_bounds = mlp_loop_bounds(program, inner, neurons);
    arm_verifier_and_bounds(cluster.memory(), program.symbol("main"),
                            cluster.core(0).profile(), options, result);
    const rv::ClusterRunResult run = cluster.run(program.symbol("main"));
    result.cycles = run.cycles;
    result.instructions = run.total_instructions;
    result.bank_conflict_stalls = run.bank_conflict_stalls;
    result.barrier_wait_cycles = run.barrier_wait_cycles;
    result.outputs_fixed =
        cluster.memory().read_words_i32(placement.output_addr, placement.n_outputs);
  } else {
    rv::Machine machine(profile_for(target), Layout::kMemBytes);
    machine.load_program(program.words);
    write_fixed_network(machine.memory(), net, placement);
    machine.memory().write_words(Layout::kAct0,
                                 std::span<const std::int32_t>(input.data(), input.size()));
    machine.core().set_histogram(&result.histogram);
    machine.set_verify_on_load(true);
    rv::analysis::AnalyzeOptions options;
    const auto [inner, neurons] = mlp_loop_iters(net.layers());
    options.loop_bounds = mlp_loop_bounds(program, inner, neurons);
    arm_verifier_and_bounds(machine.memory(), program.symbol("main"),
                            machine.core().profile(), options, result);
    const rv::RunResult run = machine.run(program.symbol("main"));
    result.cycles = run.cycles;
    result.instructions = run.instructions;
    result.outputs_fixed =
        machine.memory().read_words_i32(placement.output_addr, placement.n_outputs);
  }
  return result;
}

KernelRunResult run_fixed_mlp_custom(const nn::QuantizedNetwork& net,
                                     std::span<const std::int32_t> input,
                                     Flavor flavor, const rv::TimingProfile& profile) {
  ensure(input.size() == net.num_inputs(), "run_fixed_mlp_custom: input width mismatch");
  const Placement placement = place_layers(net.layers());
  const FixedKernelParams params = fixed_params(net);
  const asmx::Program program =
      asmx::assemble(fixed_kernel_source(flavor, params, placement.layer_table));
  ensure(program.end_address() <= Layout::kTanhTable,
         "run_fixed_mlp_custom: program overflows layout");

  rv::Machine machine(profile, Layout::kMemBytes);
  machine.load_program(program.words);
  write_fixed_network(machine.memory(), net, placement);
  machine.memory().write_words(Layout::kAct0,
                               std::span<const std::int32_t>(input.data(), input.size()));
  KernelRunResult result;
  machine.core().set_histogram(&result.histogram);
  machine.set_verify_on_load(true);
  rv::analysis::AnalyzeOptions options;
  const auto [inner, neurons] = mlp_loop_iters(net.layers());
  options.loop_bounds = mlp_loop_bounds(program, inner, neurons);
  arm_verifier_and_bounds(machine.memory(), program.symbol("main"),
                          machine.core().profile(), options, result);
  const rv::RunResult run = machine.run(program.symbol("main"));

  result.cycles = run.cycles;
  result.instructions = run.instructions;
  result.outputs_fixed =
      machine.memory().read_words_i32(placement.output_addr, placement.n_outputs);
  return result;
}

KernelRunResult run_fixed_mlp_parallel(const nn::QuantizedNetwork& net,
                                       std::span<const std::int32_t> input,
                                       int num_cores) {
  ensure(input.size() == net.num_inputs(), "run_fixed_mlp_parallel: input width mismatch");
  const Placement placement = place_layers(net.layers());
  FixedKernelParams params = fixed_params(net);
  params.num_cores = num_cores;
  const asmx::Program program =
      asmx::assemble(parallel_kernel_source(params, placement.layer_table));
  ensure(program.end_address() <= Layout::kTanhTable,
         "run_fixed_mlp_parallel: program overflows layout");

  const rv::ClusterConfig cfg = cluster_config(num_cores);
  rv::Cluster cluster(rv::ri5cy(), cfg);
  cluster.load_program(program.words);
  write_fixed_network(cluster.memory(), net, placement);
  cluster.memory().write_words(Layout::kAct0,
                               std::span<const std::int32_t>(input.data(), input.size()));
  KernelRunResult result;
  for (int c = 0; c < num_cores; ++c) cluster.core(c).set_histogram(&result.histogram);
  cluster.set_verify_on_load(true);
  rv::analysis::AnalyzeOptions options = cluster_analyze_options(cfg);
  const auto [inner, neurons] = mlp_loop_iters(net.layers(), num_cores);
  options.loop_bounds = mlp_loop_bounds(program, inner, neurons);
  arm_verifier_and_bounds(cluster.memory(), program.symbol("main"),
                          cluster.core(0).profile(), options, result);
  const rv::ClusterRunResult run = cluster.run(program.symbol("main"));

  result.cycles = run.cycles;
  result.instructions = run.total_instructions;
  result.bank_conflict_stalls = run.bank_conflict_stalls;
  result.barrier_wait_cycles = run.barrier_wait_cycles;
  result.outputs_fixed =
      cluster.memory().read_words_i32(placement.output_addr, placement.n_outputs);
  return result;
}

namespace {

/// Layout of a 16-bit network: per layer, n_out rows of (row_pairs packed
/// int16 words + one int32 bias word); int16 ping-pong activation buffers.
struct SimdPlacement {
  std::string layer_table;
  std::vector<std::uint32_t> weight_addrs;
  std::uint32_t final_out = 0;
};

SimdPlacement place_simd_layers(const nn::QuantizedNetwork16& net) {
  SimdPlacement p;
  std::ostringstream table;
  std::uint32_t w_addr = Layout::kWeights;
  std::uint32_t in_addr = Layout::kAct0;
  std::uint32_t out_addr = Layout::kAct1;
  p.final_out = in_addr;
  for (const nn::QuantizedLayer16& layer : net.layers()) {
    p.weight_addrs.push_back(w_addr);
    table << "    .word " << layer.row_pairs << ", " << layer.n_out << ", "
          << w_addr << ", " << in_addr << ", " << out_addr << "\n";
    w_addr += static_cast<std::uint32_t>((4 * layer.row_pairs + 4) * layer.n_out);
    std::swap(in_addr, out_addr);
    p.final_out = in_addr;
  }
  ensure(w_addr <= Layout::kAct0, "simd runner: network does not fit the layout");
  p.layer_table = table.str();
  return p;
}

FixedKernelParams simd_params(const nn::QuantizedNetwork16& net) {
  FixedKernelParams params;
  params.frac_bits = net.frac_bits();
  const fx::TanhTable& tanh = net.tanh_table();
  params.range_fixed = tanh.range_fixed();
  params.step_mask = tanh.step_fixed() - 1;
  params.step_shift = 0;
  while ((1 << params.step_shift) < tanh.step_fixed()) ++params.step_shift;
  params.n_layers = static_cast<int>(net.layers().size());
  return params;
}

void write_simd_network(rv::Memory& mem, const nn::QuantizedNetwork16& net,
                        const SimdPlacement& placement,
                        std::span<const std::int16_t> input) {
  write_tanh_table(mem, net.tanh_table());
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const nn::QuantizedLayer16& layer = net.layers()[l];
    std::uint32_t addr = placement.weight_addrs[l];
    for (std::size_t o = 0; o < layer.n_out; ++o) {
      const std::int16_t* row = layer.weights.data() + o * 2 * layer.row_pairs;
      for (std::size_t pair = 0; pair < layer.row_pairs; ++pair) {
        mem.store16(addr, static_cast<std::uint16_t>(row[2 * pair]));
        mem.store16(addr + 2, static_cast<std::uint16_t>(row[2 * pair + 1]));
        addr += 4;
      }
      mem.store32(addr, static_cast<std::uint32_t>(layer.biases[o]));
      addr += 4;
    }
  }
  for (std::size_t i = 0; i < input.size(); ++i) {
    mem.store16(Layout::kAct0 + static_cast<std::uint32_t>(2 * i),
                static_cast<std::uint16_t>(input[i]));
  }
  if (input.size() % 2 != 0) {
    mem.store16(Layout::kAct0 + static_cast<std::uint32_t>(2 * input.size()), 0);
  }
}

std::vector<std::int16_t> read_simd_outputs(const rv::Memory& mem,
                                            const SimdPlacement& placement,
                                            std::size_t n_outputs) {
  std::vector<std::int16_t> out(n_outputs);
  for (std::size_t i = 0; i < n_outputs; ++i) {
    out[i] = static_cast<std::int16_t>(
        mem.load16(placement.final_out + static_cast<std::uint32_t>(2 * i)));
  }
  return out;
}

}  // namespace

KernelRunResult run_simd_mlp(const nn::QuantizedNetwork16& net,
                             std::span<const std::int16_t> input) {
  ensure(input.size() == net.num_inputs(), "run_simd_mlp: input width mismatch");
  const SimdPlacement placement = place_simd_layers(net);
  const asmx::Program program = asmx::assemble(
      simd_kernel_source(simd_params(net), placement.layer_table));
  ensure(program.end_address() <= Layout::kTanhTable,
         "run_simd_mlp: program overflows layout");

  rv::Machine machine(rv::ri5cy(), Layout::kMemBytes);
  machine.load_program(program.words);
  write_simd_network(machine.memory(), net, placement, input);

  KernelRunResult result;
  machine.core().set_histogram(&result.histogram);
  machine.set_verify_on_load(true);
  rv::analysis::AnalyzeOptions options;
  const auto [inner, neurons] = mlp_loop_iters(net.layers());
  options.loop_bounds = mlp_loop_bounds(program, inner, neurons);
  arm_verifier_and_bounds(machine.memory(), program.symbol("main"),
                          machine.core().profile(), options, result);
  const rv::RunResult run = machine.run(program.symbol("main"));

  result.cycles = run.cycles;
  result.instructions = run.instructions;
  result.outputs_fixed16 = read_simd_outputs(machine.memory(), placement,
                                             net.num_outputs());
  return result;
}

KernelRunResult run_simd_mlp_parallel(const nn::QuantizedNetwork16& net,
                                      std::span<const std::int16_t> input,
                                      int num_cores) {
  ensure(input.size() == net.num_inputs(),
         "run_simd_mlp_parallel: input width mismatch");
  const SimdPlacement placement = place_simd_layers(net);
  FixedKernelParams params = simd_params(net);
  params.num_cores = num_cores;
  const asmx::Program program = asmx::assemble(
      parallel_simd_kernel_source(params, placement.layer_table));
  ensure(program.end_address() <= Layout::kTanhTable,
         "run_simd_mlp_parallel: program overflows layout");

  const rv::ClusterConfig cfg = cluster_config(num_cores);
  rv::Cluster cluster(rv::ri5cy(), cfg);
  cluster.load_program(program.words);
  write_simd_network(cluster.memory(), net, placement, input);

  KernelRunResult result;
  for (int c = 0; c < num_cores; ++c) cluster.core(c).set_histogram(&result.histogram);
  cluster.set_verify_on_load(true);
  rv::analysis::AnalyzeOptions options = cluster_analyze_options(cfg);
  const auto [inner, neurons] = mlp_loop_iters(net.layers(), num_cores);
  options.loop_bounds = mlp_loop_bounds(program, inner, neurons);
  arm_verifier_and_bounds(cluster.memory(), program.symbol("main"),
                          cluster.core(0).profile(), options, result);
  const rv::ClusterRunResult run = cluster.run(program.symbol("main"));

  result.cycles = run.cycles;
  result.instructions = run.total_instructions;
  result.bank_conflict_stalls = run.bank_conflict_stalls;
  result.barrier_wait_cycles = run.barrier_wait_cycles;
  result.outputs_fixed16 = read_simd_outputs(cluster.memory(), placement,
                                             net.num_outputs());
  return result;
}

KernelRunResult run_float_mlp(const nn::Network& net, std::span<const float> input) {
  ensure(input.size() == net.num_inputs(), "run_float_mlp: input width mismatch");
  const Placement placement = place_layers(net.layers());
  const std::string source = float_kernel_source(
      static_cast<int>(net.num_layers()), placement.layer_table);
  const asmx::Program program = asmx::assemble(source);
  ensure(program.end_address() <= Layout::kTanhTable,
         "run_float_mlp: program overflows layout");

  rv::Machine machine(rv::cortex_m4f(), Layout::kMemBytes);
  machine.load_program(program.words);
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    machine.memory().write_words_f32(placement.weight_addrs[l],
                                     std::span<const float>(net.layers()[l].weights));
  }
  machine.memory().write_words_f32(Layout::kAct0,
                                   std::span<const float>(input.data(), input.size()));
  KernelRunResult result;
  machine.core().set_histogram(&result.histogram);
  machine.set_verify_on_load(true);
  rv::analysis::AnalyzeOptions options;
  const auto [inner, neurons] = mlp_loop_iters(net.layers());
  options.loop_bounds = mlp_loop_bounds(program, inner, neurons);
  arm_verifier_and_bounds(machine.memory(), program.symbol("main"),
                          machine.core().profile(), options, result);
  const rv::RunResult run = machine.run(program.symbol("main"));

  result.cycles = run.cycles;
  result.instructions = run.instructions;
  result.outputs_float =
      machine.memory().read_words_f32(placement.output_addr, placement.n_outputs);
  return result;
}

std::vector<KernelImage> reference_kernel_images() {
  // A small representative network: lint verdicts depend on the generated
  // code shape, not the layer sizes, and every generator is exercised.
  Rng rng(5);
  const nn::Network net = nn::Network::create({4, 6, 2}, rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const nn::QuantizedNetwork16 qn16 = nn::QuantizedNetwork16::from(net);

  const Placement placement = place_layers(qn.layers());
  const FixedKernelParams params = fixed_params(qn);
  const SimdPlacement simd_placement = place_simd_layers(qn16);
  const FixedKernelParams sparams = simd_params(qn16);

  const auto [fixed_inner, fixed_neurons] = mlp_loop_iters(qn.layers());
  const auto [par_inner, par_neurons] =
      mlp_loop_iters(qn.layers(), Layout::kClusterCores);
  const auto [simd_inner, simd_neurons] = mlp_loop_iters(qn16.layers());
  const auto [simd_par_inner, simd_par_neurons] =
      mlp_loop_iters(qn16.layers(), Layout::kClusterCores);

  std::vector<KernelImage> images;
  const auto add = [&images](std::string name, rv::TimingProfile profile,
                             const std::string& source, std::size_t mem_bytes,
                             bool xpulp, std::uint64_t inner_iters,
                             std::uint64_t neuron_iters, bool cluster = false) {
    KernelImage image;
    image.name = std::move(name);
    image.profile = std::move(profile);
    image.program = asmx::assemble(source);
    image.entry = image.program.symbol("main");
    image.mem_bytes = mem_bytes;
    image.expect_reject_on_ibex = xpulp;
    image.analyze_options.loop_bounds =
        mlp_loop_bounds(image.program, inner_iters, neuron_iters);
    if (cluster) {
      const rv::analysis::AnalyzeOptions cluster_opts =
          cluster_analyze_options(cluster_config());
      image.analyze_options.cluster_cores = cluster_opts.cluster_cores;
      image.analyze_options.barrier_wakeup_cycles =
          cluster_opts.barrier_wakeup_cycles;
    }
    images.push_back(std::move(image));
  };

  add("mlp-fixed-generic", rv::ibex(),
      fixed_kernel_source(Flavor::kGeneric, params, placement.layer_table),
      Layout::kMemBytes, false, fixed_inner, fixed_neurons);
  add("mlp-fixed-m4", rv::cortex_m4f(),
      fixed_kernel_source(Flavor::kM4, params, placement.layer_table),
      Layout::kMemBytes, true, fixed_inner, fixed_neurons);
  add("mlp-fixed-ri5cy", rv::ri5cy(),
      fixed_kernel_source(Flavor::kRi5cy, params, placement.layer_table),
      Layout::kMemBytes, true, fixed_inner, fixed_neurons);
  add("mlp-fixed-parallel", rv::ri5cy(),
      parallel_kernel_source(params, placement.layer_table), Layout::kMemBytes,
      true, par_inner, par_neurons, /*cluster=*/true);
  add("mlp-float-m4f", rv::cortex_m4f(),
      float_kernel_source(static_cast<int>(net.num_layers()), placement.layer_table),
      Layout::kMemBytes, true, fixed_inner, fixed_neurons);
  add("mlp-simd-ri5cy", rv::ri5cy(),
      simd_kernel_source(sparams, simd_placement.layer_table), Layout::kMemBytes,
      true, simd_inner, simd_neurons);
  add("mlp-simd-parallel", rv::ri5cy(),
      parallel_simd_kernel_source(sparams, simd_placement.layer_table),
      Layout::kMemBytes, true, simd_par_inner, simd_par_neurons, /*cluster=*/true);

  // The feature kernels' data-dependent loops are annotated at the runner's
  // layout caps (<= 2000 RR intervals, <= 12000 GSR samples).
  {
    KernelImage image;
    image.name = "hrv-ri5cy";
    image.profile = rv::ri5cy();
    image.program = asmx::assemble(hrv_kernel_source());
    image.entry = image.program.symbol("main");
    image.mem_bytes = std::size_t{1} << 16;
    image.expect_reject_on_ibex = true;
    image.analyze_options.loop_bounds[image.program.symbol("diff_end")] = 1999;
    images.push_back(std::move(image));
  }
  {
    KernelImage image;
    image.name = "gsr-ri5cy";
    image.profile = rv::ri5cy();
    image.program = asmx::assemble(gsr_kernel_source());
    image.entry = image.program.symbol("main");
    image.mem_bytes = std::size_t{1} << 16;
    image.expect_reject_on_ibex = true;
    image.analyze_options.loop_bounds[image.program.symbol("sample_loop")] = 11996;
    images.push_back(std::move(image));
  }
  return images;
}

}  // namespace iw::kernels
