// On-device HRV feature extraction kernel.
//
// The paper extracts the five features on the watch in 50 us (1 uJ at
// 20 mW). This kernel implements the ECG-side features — RMSSD, SDSD, NN50
// over integer-millisecond RR intervals — in assembly for the RI5CY core:
// one hardware-loop pass over the successive differences (branch-free NN50
// via slt) followed by integer square roots (bitwise restoring algorithm).
//
// RMSSD and SDSD are returned in Q4 milliseconds (value = ms * 16), computed
// as isqrt(mean << 8). The host reference performs the identical integer
// arithmetic so results are bit-exact; tests additionally bound the error
// against the floating-point definitions in bio/hrv.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace iw::kernels {

/// Assembly sources of the feature kernels, exposed so tools/iw_lint and the
/// static-analysis tests can lint the exact programs the runners execute.
std::string hrv_kernel_source();
std::string gsr_kernel_source();

struct HrvFixedValues {
  std::int32_t rmssd_q4_ms = 0;  // RMSSD in milliseconds, Q4
  std::int32_t sdsd_q4_ms = 0;   // SDSD in milliseconds, Q4
  std::int32_t nn50 = 0;
};

/// Host golden model: bit-exact integer arithmetic of the kernel.
/// Requires at least two RR intervals.
HrvFixedValues hrv_fixed_reference(std::span<const std::int32_t> rr_ms);

struct HrvKernelResult {
  HrvFixedValues values;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  /// Static cycle bounds from iw_rvsim_analysis, with the difference loop
  /// annotated at the actual input length: min <= cycles <= max.
  std::uint64_t static_min_cycles = 0;
  std::uint64_t static_max_cycles = 0;
  /// Static maximum stack depth in bytes (the kernel is stackless: 0).
  std::uint64_t static_stack_bytes = 0;
  /// Wall-clock at the cluster's 100 MHz operating point.
  double time_s(double freq_hz = 100e6) const {
    return static_cast<double>(cycles) / freq_hz;
  }
};

/// Runs the assembly kernel on a single RI5CY core.
HrvKernelResult run_hrv_kernel(std::span<const std::int32_t> rr_ms);

// --- GSR slope features on-device ----------------------------------------
//
// The embedded GSR path: samples arrive as fixed-point microsiemens in Q8.
// The kernel smooths with a 4-sample boxcar, walks rising runs where the
// smoothed derivative exceeds `eps_q8`, and accumulates count / total height
// / total length of the runs whose height reaches `min_height_q8`. GSRH and
// GSRL are then height/count and length/(count*fs) on the host (or FC).
// This is the integer re-formulation of bio::detect_gsr_slopes; real
// firmware runs it incrementally during the 3 s acquisition window.

struct GsrFixedValues {
  std::int32_t slope_count = 0;
  std::int32_t total_height_q8 = 0;   // microsiemens, Q8
  std::int32_t total_length_samples = 0;
};

/// Host golden model, bit-exact with the kernel. Requires >= 5 samples.
GsrFixedValues gsr_fixed_reference(std::span<const std::int32_t> samples_q8,
                                   std::int32_t min_height_q8,
                                   std::int32_t eps_q8);

struct GsrKernelResult {
  GsrFixedValues values;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  /// Static cycle bounds from iw_rvsim_analysis, with the sample loop
  /// annotated at the actual input length: min <= cycles <= max.
  std::uint64_t static_min_cycles = 0;
  std::uint64_t static_max_cycles = 0;
  /// Static maximum stack depth in bytes (the kernel is stackless: 0).
  std::uint64_t static_stack_bytes = 0;
  double time_s(double freq_hz = 100e6) const {
    return static_cast<double>(cycles) / freq_hz;
  }
};

/// Runs the assembly kernel on a single RI5CY core.
GsrKernelResult run_gsr_kernel(std::span<const std::int32_t> samples_q8,
                               std::int32_t min_height_q8 = 13,  // ~0.05 uS
                               std::int32_t eps_q8 = 1);

}  // namespace iw::kernels
