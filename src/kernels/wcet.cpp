#include "kernels/wcet.hpp"

#include <iomanip>
#include <sstream>

#include "common/rng.hpp"
#include "kernels/feature_kernel.hpp"
#include "kernels/runner.hpp"
#include "nn/network.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/timing.hpp"

namespace iw::kernels {

namespace {

using rv::analysis::kUnboundedCycles;

WcetRow make_row(std::string name, std::string profile_name,
                 std::uint64_t floor_cycles, std::uint64_t dynamic_cycles,
                 std::uint64_t ceiling_cycles, std::uint64_t stack_bytes) {
  WcetRow row;
  row.name = std::move(name);
  row.profile_name = std::move(profile_name);
  row.floor_cycles = floor_cycles;
  row.dynamic_cycles = dynamic_cycles;
  row.ceiling_cycles = ceiling_cycles;
  row.stack_bytes = stack_bytes;
  row.sound = floor_cycles > 0 && floor_cycles <= dynamic_cycles &&
              ceiling_cycles != kUnboundedCycles &&
              dynamic_cycles <= ceiling_cycles;
  return row;
}

WcetRow row_of(std::string name, std::string profile_name,
               const KernelRunResult& r) {
  return make_row(std::move(name), std::move(profile_name), r.static_min_cycles,
                  r.cycles, r.static_max_cycles, r.static_stack_bytes);
}

std::vector<float> deterministic_input(std::size_t n, std::uint64_t seed) {
  iw::Rng rng(seed);
  std::vector<float> input(n);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return input;
}

}  // namespace

std::vector<WcetRow> certified_kernel_rows() {
  // The same representative network reference_kernel_images() assembles, so
  // the certified images match the linted ones.
  iw::Rng rng(5);
  const nn::Network net = nn::Network::create({4, 6, 2}, rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const nn::QuantizedNetwork16 qn16 = nn::QuantizedNetwork16::from(net);
  const std::vector<float> in = deterministic_input(4, 17);
  const auto input = qn.quantize_input(in);
  const auto input16 = qn16.quantize_input(in);

  std::vector<WcetRow> rows;
  rows.push_back(row_of("mlp-fixed-generic", rv::ibex().name,
                        run_fixed_mlp(qn, input, Target::kIbex)));
  rows.push_back(row_of("mlp-fixed-m4", rv::cortex_m4f().name,
                        run_fixed_mlp(qn, input, Target::kCortexM4)));
  rows.push_back(row_of("mlp-fixed-ri5cy", rv::ri5cy().name,
                        run_fixed_mlp(qn, input, Target::kRi5cySingle)));
  rows.push_back(row_of("mlp-fixed-parallel", rv::ri5cy().name,
                        run_fixed_mlp(qn, input, Target::kRi5cyMulti)));
  rows.push_back(
      row_of("mlp-float-m4f", rv::cortex_m4f().name, run_float_mlp(net, in)));
  rows.push_back(
      row_of("mlp-simd-ri5cy", rv::ri5cy().name, run_simd_mlp(qn16, input16)));
  rows.push_back(row_of("mlp-simd-parallel", rv::ri5cy().name,
                        run_simd_mlp_parallel(qn16, input16, 8)));

  {
    iw::Rng hrv_rng(23);
    std::vector<std::int32_t> rr(64);
    for (std::int32_t& v : rr) {
      v = 700 + static_cast<std::int32_t>(hrv_rng.uniform(0.0, 200.0));
    }
    const HrvKernelResult hrv = run_hrv_kernel(rr);
    rows.push_back(make_row("hrv-ri5cy", rv::ri5cy().name, hrv.static_min_cycles,
                            hrv.cycles, hrv.static_max_cycles,
                            hrv.static_stack_bytes));
  }
  {
    iw::Rng gsr_rng(29);
    std::vector<std::int32_t> samples(256);
    std::int32_t level = 2 << 8;
    for (std::int32_t& v : samples) {
      level += static_cast<std::int32_t>(gsr_rng.uniform(-8.0, 10.0));
      v = level;
    }
    const GsrKernelResult gsr = run_gsr_kernel(samples);
    rows.push_back(make_row("gsr-ri5cy", rv::ri5cy().name, gsr.static_min_cycles,
                            gsr.cycles, gsr.static_max_cycles,
                            gsr.static_stack_bytes));
  }
  return rows;
}

std::string wcet_table_text(const std::vector<WcetRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(20) << "kernel" << std::setw(12) << "profile"
     << std::right << std::setw(10) << "floor" << std::setw(10) << "dynamic"
     << std::setw(12) << "ceiling" << std::setw(8) << "stack"
     << "  verdict\n";
  for (const WcetRow& row : rows) {
    os << std::left << std::setw(20) << row.name << std::setw(12)
       << row.profile_name << std::right << std::setw(10) << row.floor_cycles
       << std::setw(10) << row.dynamic_cycles << std::setw(12);
    if (row.ceiling_cycles == kUnboundedCycles) {
      os << "unbounded";
    } else {
      os << row.ceiling_cycles;
    }
    os << std::setw(8);
    if (row.stack_bytes == kUnboundedCycles) {
      os << "?";
    } else {
      os << row.stack_bytes;
    }
    os << "  " << (row.sound ? "certified" : "UNSOUND") << "\n";
  }
  return os.str();
}

std::string wcet_table_json(const std::vector<WcetRow>& rows) {
  std::ostringstream os;
  os << "{\"rows\":[";
  bool first = true;
  for (const WcetRow& row : rows) {
    if (!first) os << ',';
    first = false;
    os << "{\"kernel\":\"" << row.name << "\",\"profile\":\"" << row.profile_name
       << "\",\"floor_cycles\":" << row.floor_cycles
       << ",\"dynamic_cycles\":" << row.dynamic_cycles << ",\"ceiling_cycles\":";
    if (row.ceiling_cycles == kUnboundedCycles) {
      os << "null";
    } else {
      os << row.ceiling_cycles;
    }
    os << ",\"stack_bytes\":";
    if (row.stack_bytes == kUnboundedCycles) {
      os << "null";
    } else {
      os << row.stack_bytes;
    }
    os << ",\"sound\":" << (row.sound ? "true" : "false") << "}";
  }
  os << "],\"all_sound\":" << (all_sound(rows) ? "true" : "false") << "}";
  return os.str();
}

bool all_sound(const std::vector<WcetRow>& rows) {
  if (rows.empty()) return false;
  for (const WcetRow& row : rows) {
    if (!row.sound) return false;
  }
  return true;
}

namespace {

NetACertificate certify_net_a(Target target) {
  // The exact Network A reproduction the Table III regression pins:
  // seed 1 for the weights, seed 2020 for the input.
  iw::Rng rng(1);
  const nn::Network net = nn::make_network_a(rng);
  const nn::QuantizedNetwork qn = nn::QuantizedNetwork::from(net);
  const auto fixed = qn.quantize_input(deterministic_input(5, 2020));
  const KernelRunResult r = run_fixed_mlp(qn, fixed, target);
  NetACertificate cert;
  cert.floor_cycles = r.static_min_cycles;
  cert.dynamic_cycles = r.cycles;
  cert.ceiling_cycles = r.static_max_cycles;
  return cert;
}

}  // namespace

NetACertificate certify_net_a_multi8() {
  return certify_net_a(Target::kRi5cyMulti);
}

NetACertificate certify_net_a_m4() { return certify_net_a(Target::kCortexM4); }

}  // namespace iw::kernels
