#include "kernels/kernel_source.hpp"

#include <sstream>

#include "common/error.hpp"

namespace iw::kernels {

namespace {

/// Common .equ header for the fixed-point kernels.
void emit_fixed_header(std::ostream& os, const FixedKernelParams& p) {
  ensure(p.n_layers >= 1, "kernel: need at least one layer");
  ensure(p.range_fixed > 0 && p.step_shift > 0, "kernel: bad tanh parameters");
  os << "    .equ FRAC, " << p.frac_bits << "\n"
     << "    .equ RANGE, " << p.range_fixed << "\n"
     << "    .equ STEP_SHIFT, " << p.step_shift << "\n"
     << "    .equ STEP_MASK, " << p.step_mask << "\n"
     << "    .equ NLAYERS, " << p.n_layers << "\n"
     << "    .equ TANH, " << Layout::kTanhTable << "\n";
}

/// Emits the tanh lookup: clamps a0 to [-RANGE, RANGE-1], then interpolates.
/// Uses t2, t3, t4, t6 as temporaries; s5 = TANH base, s6 = RANGE.
/// On RI5CY the clamp is a single p.clip; elsewhere it is branchy (s7 = -RANGE
/// precomputed in the prologue).
void emit_tanh(std::ostream& os, Flavor flavor, int clip_bits, int label_id) {
  if (flavor == Flavor::kRi5cy) {
    os << "    p.clip a0, a0, " << clip_bits << "\n";
  } else {
    os << "    blt a0, s6, tanh_lo_ok_" << label_id << "\n"
       << "    addi a0, s6, -1\n"
       << "tanh_lo_ok_" << label_id << ":\n"
       << "    bge a0, s7, tanh_hi_ok_" << label_id << "\n"
       << "    mv a0, s7\n"
       << "tanh_hi_ok_" << label_id << ":\n";
  }
  os << "    add t6, a0, s6\n"            // offset into the table
     << "    srai t2, t6, STEP_SHIFT\n"   // sample index
     << "    slli t2, t2, 2\n"
     << "    add t2, t2, s5\n"
     << "    lw t3, 0(t2)\n"              // y0
     << "    lw t4, 4(t2)\n"              // y1
     << "    sub t4, t4, t3\n"
     << "    andi t6, t6, STEP_MASK\n"    // fractional position
     << "    mul t4, t4, t6\n"
     << "    srai t4, t4, STEP_SHIFT\n"
     << "    add a0, t3, t4\n";
}

/// Emits the dot-product inner loop for one neuron: accumulates
/// sum((w*x) >> FRAC) into a0, weight pointer s2, input pointer s3,
/// input count t0.
void emit_inner_loop(std::ostream& os, Flavor flavor) {
  switch (flavor) {
    case Flavor::kRi5cy:
      os << "    lp.setup 0, t0, inner_end\n"
         << "    p.lw t2, 4(s2!)\n"
         << "    p.lw t3, 4(s3!)\n"
         << "    mul t4, t2, t3\n"
         << "    srai t4, t4, FRAC\n"
         << "    add a0, a0, t4\n"
         << "inner_end:\n";
      break;
    case Flavor::kM4:
      os << "    mv t5, t0\n"
         << "inner:\n"
         << "    p.lw t2, 4(s2!)\n"
         << "    p.lw t3, 4(s3!)\n"
         << "    mul t4, t2, t3\n"
         << "    srai t4, t4, FRAC\n"
         << "    add a0, a0, t4\n"
         << "    addi t5, t5, -1\n"
         << "    bnez t5, inner\n";
      break;
    case Flavor::kGeneric:
      os << "    mv t5, t0\n"
         << "inner:\n"
         << "    lw t2, 0(s2)\n"
         << "    lw t3, 0(s3)\n"
         << "    addi s2, s2, 4\n"
         << "    addi s3, s3, 4\n"
         << "    mul t4, t2, t3\n"
         << "    srai t4, t4, FRAC\n"
         << "    add a0, a0, t4\n"
         << "    addi t5, t5, -1\n"
         << "    bnez t5, inner\n";
      break;
  }
}

}  // namespace

std::string fixed_kernel_source(Flavor flavor, const FixedKernelParams& p,
                                const std::string& layer_table) {
  std::ostringstream os;
  emit_fixed_header(os, p);
  const int clip_bits = p.frac_bits + 3;  // RANGE = 4.0 = 2^(frac+2)
  const bool postinc = flavor != Flavor::kGeneric;

  os << "main:\n"
     << "    la s0, layer_table\n"
     << "    li s1, NLAYERS\n"
     << "    li s5, TANH\n"
     << "    li s6, RANGE\n";
  if (flavor != Flavor::kRi5cy) os << "    neg s7, s6\n";

  os << "layer_loop:\n"
     << "    lw t0, 0(s0)\n"    // n_in
     << "    lw t1, 4(s0)\n"    // n_out (neuron counter)
     << "    lw s2, 8(s0)\n"    // weight pointer
     << "    lw s4, 16(s0)\n"   // output pointer
     << "neuron_loop:\n"
     << "    lw s3, 12(s0)\n"   // input pointer, rewound per neuron
     << "    li a0, 0\n";
  emit_inner_loop(os, flavor);
  // Bias weight (input fixed 1.0 -> contributes the raw weight).
  if (postinc) {
    os << "    p.lw t2, 4(s2!)\n";
  } else {
    os << "    lw t2, 0(s2)\n"
       << "    addi s2, s2, 4\n";
  }
  os << "    add a0, a0, t2\n";
  emit_tanh(os, flavor, clip_bits, 0);
  if (postinc) {
    os << "    p.sw a0, 4(s4!)\n";
  } else {
    os << "    sw a0, 0(s4)\n"
       << "    addi s4, s4, 4\n";
  }
  os << "    addi t1, t1, -1\n"
     << "    bnez t1, neuron_loop\n"
     << "    addi s0, s0, 20\n"
     << "    addi s1, s1, -1\n"
     << "    bnez s1, layer_loop\n"
     << "    ecall\n"
     << "layer_table:\n"
     << layer_table;
  return os.str();
}

std::string parallel_kernel_source(const FixedKernelParams& p,
                                   const std::string& layer_table) {
  std::ostringstream os;
  emit_fixed_header(os, p);
  ensure(p.num_cores >= 1 && p.num_cores <= Layout::kClusterCores &&
             (p.num_cores & (p.num_cores - 1)) == 0,
         "parallel kernel: core count must be a power of two <= 8");
  int log2_cores = 0;
  while ((1 << log2_cores) < p.num_cores) ++log2_cores;
  os << "    .equ BARRIER, " << Layout::kBarrier << "\n"
     << "    .equ NCORES, " << p.num_cores << "\n"
     << "    .equ FORK_SPINS, " << p.fork_spins << "\n";
  const int clip_bits = p.frac_bits + 3;

  os << "main:\n"
     << "    csrr s8, mhartid\n"
     << "    la s0, layer_table\n"
     << "    li s1, NLAYERS\n"
     << "    li s5, TANH\n"
     << "    li s6, RANGE\n"
     << "    li s11, BARRIER\n"
     << "layer_loop:\n"
     // Fork: the master core performs the runtime's per-region dispatch
     // bookkeeping while the workers wait at the barrier, modeling the
     // OpenMP-style offload overhead of PULP cluster deployments.
     << "    bnez s8, fork_done\n"
     << "    li t6, FORK_SPINS\n"
     << "fork_spin:\n"
     << "    addi t6, t6, -1\n"
     << "    bnez t6, fork_spin\n"
     << "fork_done:\n"
     << "    sw zero, 0(s11)\n"
     << "    lw t0, 0(s0)\n"      // n_in
     << "    lw t1, 4(s0)\n"      // n_out
     << "    lw s2, 8(s0)\n"      // weight base
     << "    lw s4, 16(s0)\n"     // output base
     // Offset this core's weight pointer to row `hartid` and its output
     // pointer to slot `hartid`.
     << "    addi t2, t0, 1\n"    // row length in words
     << "    mul t3, t2, s8\n"
     << "    slli t3, t3, 2\n"
     << "    add s2, s2, t3\n"
     << "    slli t3, s8, 2\n"
     << "    add s4, s4, t3\n"
     // Stride to skip the other cores' rows after consuming one row.
     << "    slli t3, t2, 2\n"
     << "    li t4, NCORES-1\n"
     << "    mul s9, t3, t4\n"
     // Number of rows this core owns: ceil((n_out - hartid) / NCORES).
     << "    sub t3, t1, s8\n"
     << "    addi t3, t3, NCORES-1\n"
     << "    srai a2, t3, " << log2_cores << "\n"
     << "    blez a2, layer_done\n"
     << "neuron_loop:\n"
     << "    lw s3, 12(s0)\n"
     << "    li a0, 0\n";
  emit_inner_loop(os, Flavor::kRi5cy);
  os << "    p.lw t2, 4(s2!)\n"   // bias
     << "    add a0, a0, t2\n"
     << "    add s2, s2, s9\n";   // skip other cores' rows
  emit_tanh(os, Flavor::kRi5cy, clip_bits, 0);
  os << "    p.sw a0, NCORES*4(s4!)\n"
     << "    addi a2, a2, -1\n"
     << "    bnez a2, neuron_loop\n"
     << "layer_done:\n"
     << "    sw zero, 0(s11)\n"   // hardware barrier: wait for all cores
     << "    addi s0, s0, 20\n"
     << "    addi s1, s1, -1\n"
     << "    bnez s1, layer_loop\n"
     << "    ecall\n"
     << "layer_table:\n"
     << layer_table;
  return os.str();
}

std::string simd_kernel_source(const FixedKernelParams& p,
                               const std::string& layer_table) {
  std::ostringstream os;
  emit_fixed_header(os, p);
  const int clip_bits = p.frac_bits + 3;
  os << "main:\n"
     << "    la s0, layer_table\n"
     << "    li s1, NLAYERS\n"
     << "    li s5, TANH\n"
     << "    li s6, RANGE\n"
     << "layer_loop:\n"
     << "    lw t0, 0(s0)\n"    // row pair count
     << "    lw t1, 4(s0)\n"    // n_out
     << "    lw s2, 8(s0)\n"    // weight pointer
     << "    lw s4, 16(s0)\n"   // output pointer (int16)
     << "neuron_loop:\n"
     << "    lw s3, 12(s0)\n"   // input pointer (packed int16 pairs)
     << "    li a0, 0\n"
     << "    lp.setup 0, t0, inner_end\n"
     << "    p.lw t2, 4(s2!)\n"         // two weights
     << "    p.lw t3, 4(s3!)\n"         // two activations
     << "    pv.sdotsp.h a0, t2, t3\n"  // acc += w0*x0 + w1*x1
     << "inner_end:\n"
     << "    p.lw t2, 4(s2!)\n"  // bias, already in Q(2*frac)
     << "    add a0, a0, t2\n"
     << "    srai a0, a0, FRAC\n";
  emit_tanh(os, Flavor::kRi5cy, clip_bits, 0);
  os << "    p.sh a0, 2(s4!)\n"
     << "    addi t1, t1, -1\n"
     << "    bnez t1, neuron_loop\n"
     // Zero the pad slot when n_out is odd so the next layer's last pair
     // reads a clean value.
     << "    lw t1, 4(s0)\n"
     << "    andi t1, t1, 1\n"
     << "    beqz t1, no_pad\n"
     << "    p.sh zero, 2(s4!)\n"
     << "no_pad:\n"
     << "    addi s0, s0, 20\n"
     << "    addi s1, s1, -1\n"
     << "    bnez s1, layer_loop\n"
     << "    ecall\n"
     << "layer_table:\n"
     << layer_table;
  return os.str();
}

std::string parallel_simd_kernel_source(const FixedKernelParams& p,
                                        const std::string& layer_table) {
  ensure(p.num_cores >= 1 && p.num_cores <= Layout::kClusterCores &&
             (p.num_cores & (p.num_cores - 1)) == 0,
         "parallel simd kernel: core count must be a power of two <= 8");
  int log2_cores = 0;
  while ((1 << log2_cores) < p.num_cores) ++log2_cores;
  std::ostringstream os;
  emit_fixed_header(os, p);
  os << "    .equ BARRIER, " << Layout::kBarrier << "\n"
     << "    .equ NCORES, " << p.num_cores << "\n"
     << "    .equ FORK_SPINS, " << p.fork_spins << "\n";
  const int clip_bits = p.frac_bits + 3;

  os << "main:\n"
     << "    csrr s8, mhartid\n"
     << "    la s0, layer_table\n"
     << "    li s1, NLAYERS\n"
     << "    li s5, TANH\n"
     << "    li s6, RANGE\n"
     << "    li s11, BARRIER\n"
     << "layer_loop:\n"
     << "    bnez s8, fork_done\n"
     << "    li t6, FORK_SPINS\n"
     << "fork_spin:\n"
     << "    addi t6, t6, -1\n"
     << "    bnez t6, fork_spin\n"
     << "fork_done:\n"
     << "    sw zero, 0(s11)\n"
     << "    lw t0, 0(s0)\n"      // row pair count
     << "    lw t1, 4(s0)\n"      // n_out
     << "    lw s2, 8(s0)\n"      // weight base
     << "    lw s4, 16(s0)\n"     // output base (int16)
     // Row stride in bytes: pairs*4 + 4 (bias word).
     << "    slli t2, t0, 2\n"
     << "    addi t2, t2, 4\n"
     << "    mul t3, t2, s8\n"    // this core's first-row offset
     << "    add s2, s2, t3\n"
     << "    slli t3, s8, 1\n"    // output slot offset (2 bytes each)
     << "    add s4, s4, t3\n"
     << "    li t4, NCORES-1\n"
     << "    mul s9, t2, t4\n"    // skip stride after consuming one row
     << "    sub t3, t1, s8\n"
     << "    addi t3, t3, NCORES-1\n"
     << "    srai a2, t3, " << log2_cores << "\n"
     << "    blez a2, layer_done\n"
     << "neuron_loop:\n"
     << "    lw s3, 12(s0)\n"
     << "    li a0, 0\n"
     << "    lp.setup 0, t0, inner_end\n"
     << "    p.lw t2, 4(s2!)\n"
     << "    p.lw t3, 4(s3!)\n"
     << "    pv.sdotsp.h a0, t2, t3\n"
     << "inner_end:\n"
     << "    p.lw t2, 4(s2!)\n"   // bias in Q(2*frac)
     << "    add a0, a0, t2\n"
     << "    add s2, s2, s9\n"    // skip the other cores' rows
     << "    srai a0, a0, FRAC\n";
  emit_tanh(os, Flavor::kRi5cy, clip_bits, 0);
  os << "    p.sh a0, NCORES*2(s4!)\n"
     << "    addi a2, a2, -1\n"
     << "    bnez a2, neuron_loop\n"
     << "layer_done:\n"
     // Core 0 zeroes the pad slot of odd-width layers so the next layer's
     // final pair reads a clean value.
     << "    bnez s8, pad_done\n"
     << "    lw t1, 4(s0)\n"
     << "    andi t2, t1, 1\n"
     << "    beqz t2, pad_done\n"
     << "    lw t3, 16(s0)\n"
     << "    slli t4, t1, 1\n"
     << "    add t3, t3, t4\n"
     << "    sh zero, 0(t3)\n"
     << "pad_done:\n"
     << "    sw zero, 0(s11)\n"   // join barrier
     << "    addi s0, s0, 20\n"
     << "    addi s1, s1, -1\n"
     << "    bnez s1, layer_loop\n"
     << "    ecall\n"
     << "layer_table:\n"
     << layer_table;
  return os.str();
}

std::string float_kernel_source(int n_layers, const std::string& layer_table) {
  ensure(n_layers >= 1, "kernel: need at least one layer");
  std::ostringstream os;
  os << "    .equ NLAYERS, " << n_layers << "\n";
  // The float kernel mirrors FANN's float build: accumulate with FPU
  // multiply/add, then call a libm-style tanhf per neuron:
  //   tanh(x) = 1 - 2 / (exp(2x) + 1)
  // with exp(z) = 2^k * P(r), k = trunc(z * log2e), r = z - k * ln2,
  // P a degree-5 Taylor polynomial.
  os << "main:\n"
     << "    la s0, layer_table\n"
     << "    li s1, NLAYERS\n"
     << "    la t2, float_consts\n"
     << "    flw f3, 0(t2)\n"     // 4.0 (saturation threshold)
     << "    flw f4, 4(t2)\n"     // -4.0
     << "    flw f5, 8(t2)\n"     // 1.0
     << "    flw f6, 12(t2)\n"    // -1.0
     << "    flw f8, 16(t2)\n"    // log2(e)
     << "    flw f9, 20(t2)\n"    // ln(2)
     << "    flw f10, 24(t2)\n"   // 1/2
     << "    flw f15, 28(t2)\n"   // 1/6
     << "    flw f16, 32(t2)\n"   // 1/24
     << "    flw f17, 36(t2)\n"   // 1/120
     << "layer_loop:\n"
     << "    lw t0, 0(s0)\n"
     << "    lw t1, 4(s0)\n"
     << "    lw s2, 8(s0)\n"
     << "    lw s4, 16(s0)\n"
     << "neuron_loop:\n"
     << "    lw s3, 12(s0)\n"
     << "    fsub.s f0, f0, f0\n"   // acc = 0.0 (f0 - f0, always finite here)
     << "    mv t5, t0\n"
     << "inner:\n"
     << "    flw f1, 0(s2)\n"
     << "    flw f2, 0(s3)\n"
     << "    addi s2, s2, 4\n"
     << "    addi s3, s3, 4\n"
     << "    fmul.s f7, f1, f2\n"
     << "    fadd.s f0, f0, f7\n"
     << "    addi t5, t5, -1\n"
     << "    bnez t5, inner\n"
     << "    flw f1, 0(s2)\n"      // bias
     << "    addi s2, s2, 4\n"
     << "    fadd.s f0, f0, f1\n"
     // tanh(f0):
     << "    flt.s t3, f3, f0\n"
     << "    bnez t3, tanh_sat_hi\n"
     << "    flt.s t3, f0, f4\n"
     << "    bnez t3, tanh_sat_lo\n"
     << "    fadd.s f7, f0, f0\n"      // z = 2x
     << "    fmul.s f11, f7, f8\n"     // z * log2e
     << "    fcvt.w.s t3, f11\n"       // k
     << "    fcvt.s.w f12, t3\n"
     << "    fmul.s f13, f12, f9\n"    // k * ln2
     << "    fsub.s f13, f7, f13\n"    // r
     // P(r) = 1 + r(1 + r(1/2 + r(1/6 + r(1/24 + r/120))))
     << "    fmadd.s f14, f13, f17, f16\n"
     << "    fmadd.s f14, f13, f14, f15\n"
     << "    fmadd.s f14, f13, f14, f10\n"
     << "    fmadd.s f14, f13, f14, f5\n"
     << "    fmadd.s f14, f13, f14, f5\n"
     // 2^k via exponent-field construction.
     << "    addi t3, t3, 127\n"
     << "    slli t3, t3, 23\n"
     << "    fmv.w.x f12, t3\n"
     << "    fmul.s f14, f14, f12\n"   // exp(z)
     << "    fadd.s f14, f14, f5\n"    // exp(z) + 1
     << "    fdiv.s f14, f5, f14\n"    // 1 / (exp(z)+1)
     << "    fadd.s f14, f14, f14\n"   // 2 / (exp(z)+1)
     << "    fsub.s f0, f5, f14\n"     // tanh
     << "    j tanh_done\n"
     << "tanh_sat_hi:\n"
     << "    fmv.s f0, f5\n"
     << "    j tanh_done\n"
     << "tanh_sat_lo:\n"
     << "    fmv.s f0, f6\n"
     << "tanh_done:\n"
     << "    fsw f0, 0(s4)\n"
     << "    addi s4, s4, 4\n"
     << "    addi t1, t1, -1\n"
     << "    bnez t1, neuron_loop\n"
     << "    addi s0, s0, 20\n"
     << "    addi s1, s1, -1\n"
     << "    bnez s1, layer_loop\n"
     << "    ecall\n"
     << "float_consts:\n"
     << "    .word 0x40800000\n"   // 4.0f
     << "    .word 0xC0800000\n"   // -4.0f
     << "    .word 0x3F800000\n"   // 1.0f
     << "    .word 0xBF800000\n"   // -1.0f
     << "    .word 0x3FB8AA3B\n"   // log2(e)
     << "    .word 0x3F317218\n"   // ln(2)
     << "    .word 0x3F000000\n"   // 0.5f
     << "    .word 0x3E2AAAAB\n"   // 1/6
     << "    .word 0x3D2AAAAB\n"   // 1/24
     << "    .word 0x3C088889\n"   // 1/120
     << "layer_table:\n"
     << layer_table;
  return os.str();
}

}  // namespace iw::kernels
