// Assembly source generators for the MLP inference kernels.
//
// Table III of the paper compares one workload (MLP inference) across four
// execution targets. We generate one kernel per target flavor, exercising
// exactly the ISA features that distinguish them:
//
//  * kGeneric  (IBEX):      plain RV32IM, software loops, indexed addressing.
//  * kM4       (Cortex-M4): post-increment addressing and single-cycle MAC
//                           class, software loops (no hardware loops on ARM).
//  * kRi5cy    (RI5CY):     hardware loops + post-increment + p.clip.
//  * kM4Float  (Cortex-M4F): FPU kernel with a libm-style exp-based tanh
//                           (FANN's float build calls tanhf per neuron).
//  * parallel RI5CY kernel: 8 cores, interleaved output-neuron partitioning,
//                           hardware barrier per layer.
//
// The kernels read a layer table emitted as data words at the end of the
// program; weights, activations and the tanh LUT live at fixed addresses
// written by the runner (see kernel layout constants below).
#pragma once

#include <cstdint>
#include <string>

namespace iw::kernels {

/// Single-core kernel flavor.
enum class Flavor { kGeneric, kM4, kRi5cy };

/// Fixed memory layout shared between the source generators and the runner.
struct Layout {
  // The tanh LUT sits inside the TCDM region so the cluster cores contend for
  // it like real shared L1 data.
  static constexpr std::uint32_t kTanhTable = 0x20000;
  static constexpr std::uint32_t kWeights = 0x21000;
  static constexpr std::uint32_t kAct0 = 0xC0000;
  static constexpr std::uint32_t kAct1 = 0xC2000;
  static constexpr std::uint32_t kBarrier = 0xFFFC;
  static constexpr std::size_t kMemBytes = 1u << 20;
  static constexpr int kClusterCores = 8;
};

/// Parameters the generators bake into the source as .equ constants.
struct FixedKernelParams {
  int frac_bits = 13;
  std::int32_t range_fixed = 0;  // tanh table saturation bound
  int step_shift = 0;            // log2 of the table step in fixed ulps
  std::int32_t step_mask = 0;    // step - 1
  int n_layers = 0;
  /// Parallel kernel only: spin iterations (~5 cycles each) the master core
  /// spends per layer on runtime dispatch bookkeeping before releasing the
  /// workers, modeling the fork/offload overhead of OpenMP-style deployments
  /// on PULP clusters.
  int fork_spins = 200;
  /// Parallel kernel only: number of cluster cores (power of two, <= 8).
  int num_cores = Layout::kClusterCores;
};

/// Fixed-point single-core kernel for the given flavor. `layer_table` holds
/// the .word lines describing each layer (n_in, n_out, weight address, input
/// address, output address), emitted by the runner.
std::string fixed_kernel_source(Flavor flavor, const FixedKernelParams& params,
                                const std::string& layer_table);

/// Fixed-point 8-core RI5CY kernel (interleaved rows, barrier per layer).
std::string parallel_kernel_source(const FixedKernelParams& params,
                                   const std::string& layer_table);

/// Float kernel for the Cortex-M4F (FPU) target.
std::string float_kernel_source(int n_layers, const std::string& layer_table);

/// Packed 16-bit SIMD kernel (RI5CY pv.sdotsp.h): two MACs per cycle.
/// Layer-table entries carry the pair count instead of n_in; weight rows are
/// packed int16 pairs followed by one int32 bias in Q(2*frac).
std::string simd_kernel_source(const FixedKernelParams& params,
                               const std::string& layer_table);

/// Multi-core SIMD kernel: interleaved-row partitioning + barriers like the
/// parallel kernel, with the packed 16-bit inner loop. The cluster's peak
/// configuration (params.num_cores cores x 2 MACs/cycle).
std::string parallel_simd_kernel_source(const FixedKernelParams& params,
                                        const std::string& layer_table);

}  // namespace iw::kernels
