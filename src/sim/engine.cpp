#include "sim/engine.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"

namespace iw::sim {

EventHandle Engine::schedule_at(Time at, std::function<void()> action) {
  ensure(at >= now_, "Engine::schedule_at: cannot schedule in the past");
  ensure(static_cast<bool>(action), "Engine::schedule_at: empty action");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(action)});
  return EventHandle(id);
}

EventHandle Engine::schedule_in(Time delay, std::function<void()> action) {
  ensure(delay >= 0.0, "Engine::schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

EventHandle Engine::schedule_every(Time period, std::function<bool()> action) {
  ensure(period > 0.0, "Engine::schedule_every: period must be positive");
  ensure(static_cast<bool>(action), "Engine::schedule_every: empty action");
  // The periodic wrapper reschedules itself under the same handle id so the
  // caller can cancel the whole series with one handle. Each firing enqueues
  // a fresh *copy* of the wrapper rather than a self-referencing closure — a
  // closure holding its own shared_ptr is an ownership cycle that never
  // frees. The user's action sits behind one shared_ptr so copies are cheap.
  const std::uint64_t id = next_id_++;
  struct Periodic {
    Engine* engine;
    std::uint64_t id;
    Time period;
    std::shared_ptr<std::function<bool()>> action;
    void operator()() const {
      if (!(*action)()) return;
      engine->queue_.push(
          Event{engine->now_ + period, engine->next_seq_++, id, *this});
    }
  };
  const Periodic tick{this, id, period,
                      std::make_shared<std::function<bool()>>(std::move(action))};
  queue_.push(Event{now_ + period, next_seq_++, id, tick});
  return EventHandle(id);
}

void Engine::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  cancelled_.push_back(handle.id_);
  ++cancelled_pending_;
}

bool Engine::pop_and_execute() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) continue;  // skip cancelled events
    now_ = ev.at;
    ++executed_;
    ev.action();
    return true;
  }
  return false;
}

void Engine::run_until(Time until) {
  ensure(until >= now_, "Engine::run_until: target time in the past");
  while (!queue_.empty() && queue_.top().at <= until) {
    if (!pop_and_execute()) break;
  }
  now_ = until;
}

void Engine::run() {
  while (pop_and_execute()) {
  }
}

std::size_t Engine::events_pending() const {
  return queue_.size() >= cancelled_pending_ ? queue_.size() - cancelled_pending_ : 0;
}

}  // namespace iw::sim
