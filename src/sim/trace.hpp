// Time-series recording for simulation runs.
//
// Components log named samples (power draw, state of charge, harvest intake)
// into a TraceRecorder; benches and examples query summaries or dump CSV.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/engine.hpp"

namespace iw::sim {

/// A single named channel of (time, value) samples.
struct TraceChannel {
  std::string name;
  std::vector<Time> times;
  std::vector<double> values;

  /// Trapezoidal integral of the channel over its recorded span (e.g. power
  /// samples -> energy).
  double integrate() const;
};

class TraceRecorder {
 public:
  /// Appends a sample to the named channel. Samples must be recorded in
  /// non-decreasing time order per channel.
  void record(const std::string& channel, Time t, double value);

  bool has_channel(const std::string& channel) const;
  const TraceChannel& channel(const std::string& name) const;
  std::vector<std::string> channel_names() const;

  /// Summary statistics over a channel's values.
  RunningStats summarize(const std::string& channel) const;

  /// Writes all channels as long-format CSV: channel,time_s,value.
  void write_csv(std::ostream& os) const;

 private:
  std::map<std::string, TraceChannel> channels_;
};

}  // namespace iw::sim
