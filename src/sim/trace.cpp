#include "sim/trace.hpp"

#include "common/error.hpp"

namespace iw::sim {

double TraceChannel::integrate() const {
  double total = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double dt = times[i] - times[i - 1];
    total += 0.5 * (values[i] + values[i - 1]) * dt;
  }
  return total;
}

void TraceRecorder::record(const std::string& channel, Time t, double value) {
  TraceChannel& ch = channels_[channel];
  if (ch.name.empty()) ch.name = channel;
  ensure(ch.times.empty() || t >= ch.times.back(),
         "TraceRecorder::record: samples must be time-ordered");
  ch.times.push_back(t);
  ch.values.push_back(value);
}

bool TraceRecorder::has_channel(const std::string& channel) const {
  return channels_.contains(channel);
}

const TraceChannel& TraceRecorder::channel(const std::string& name) const {
  const auto it = channels_.find(name);
  if (it == channels_.end()) fail("TraceRecorder: unknown channel " + name);
  return it->second;
}

std::vector<std::string> TraceRecorder::channel_names() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, ch] : channels_) names.push_back(name);
  return names;
}

RunningStats TraceRecorder::summarize(const std::string& channel_name) const {
  RunningStats stats;
  for (double v : channel(channel_name).values) stats.add(v);
  return stats;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "channel,time_s,value\n";
  for (const auto& [name, ch] : channels_) {
    for (std::size_t i = 0; i < ch.times.size(); ++i) {
      os << name << ',' << ch.times[i] << ',' << ch.values[i] << '\n';
    }
  }
}

}  // namespace iw::sim
