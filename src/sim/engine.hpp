// Discrete-event simulation kernel.
//
// The full-device experiments (day-long harvesting scenarios, firmware duty
// cycles) run on this engine: components schedule callbacks at absolute or
// relative simulated times, and the engine executes them in time order.
// Events scheduled at equal times run in scheduling order (FIFO), which keeps
// runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace iw::sim {

/// Simulated time in seconds.
using Time = double;

class Engine;

/// Handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Engine;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Event-driven simulation engine.
class Engine {
 public:
  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(Time at, std::function<void()> action);

  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(Time delay, std::function<void()> action);

  /// Schedules `action` every `period` seconds starting at now() + period,
  /// until `action` returns false or the event is cancelled.
  EventHandle schedule_every(Time period, std::function<bool()> action);

  /// Cancels a pending event. Cancelling an already-fired or invalid handle
  /// is a no-op.
  void cancel(EventHandle handle);

  /// Runs events until the queue is empty or `until` is reached; time then
  /// advances to `until` even if the queue drained earlier.
  void run_until(Time until);

  /// Runs until the event queue is empty.
  void run();

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }
  /// Number of events currently pending.
  std::size_t events_pending() const;

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_and_execute();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t cancelled_pending_ = 0;
};

}  // namespace iw::sim
