#include "power/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "power/processor_power.hpp"

namespace iw::pwr {

MrWolfDvfsModel::MrWolfDvfsModel(DvfsParams params) : params_(params) {
  ensure(params_.v_floor > 0.0 && params_.v_max >= params_.v_floor,
         "MrWolfDvfsModel: bad voltage range");
  ensure(params_.f_knee_hz > 0.0 && params_.f_max_hz > params_.f_knee_hz,
         "MrWolfDvfsModel: bad frequency range");
  ensure(params_.dynamic_coeff > 0.0 && params_.leakage_floor_w >= 0.0,
         "MrWolfDvfsModel: bad power coefficients");
}

MrWolfDvfsModel MrWolfDvfsModel::calibrated_cluster() {
  DvfsParams p;
  // Calibrate the dynamic coefficient so total power at the paper's
  // operating point (100 MHz, voltage floor) matches the published ~19.6 mW.
  const double target_w = mr_wolf_cluster_multi8().active_power_w;
  const double dynamic_w = target_w - p.leakage_floor_w;
  p.dynamic_coeff = dynamic_w / (p.f_knee_hz * p.v_floor * p.v_floor);
  return MrWolfDvfsModel(p);
}

double MrWolfDvfsModel::voltage_v(double freq_hz) const {
  ensure(freq_hz >= 0.0 && freq_hz <= params_.f_max_hz,
         "MrWolfDvfsModel: frequency out of range");
  if (freq_hz <= params_.f_knee_hz) return params_.v_floor;
  const double frac =
      (freq_hz - params_.f_knee_hz) / (params_.f_max_hz - params_.f_knee_hz);
  return params_.v_floor + frac * (params_.v_max - params_.v_floor);
}

double MrWolfDvfsModel::power_w(double freq_hz) const {
  const double v = voltage_v(freq_hz);
  const double dynamic = params_.dynamic_coeff * freq_hz * v * v;
  const double v_ratio = v / params_.v_floor;
  const double leakage = params_.leakage_floor_w * v_ratio * v_ratio * v_ratio;
  return dynamic + leakage;
}

double MrWolfDvfsModel::energy_per_cycle_j(double freq_hz) const {
  ensure(freq_hz > 0.0, "MrWolfDvfsModel: frequency must be positive");
  return power_w(freq_hz) / freq_hz;
}

double MrWolfDvfsModel::most_efficient_frequency_hz(double f_min_hz) const {
  ensure(f_min_hz > 0.0 && f_min_hz < params_.f_max_hz,
         "MrWolfDvfsModel: bad search range");
  double best_f = f_min_hz;
  double best_e = energy_per_cycle_j(f_min_hz);
  for (double f = f_min_hz; f <= params_.f_max_hz; f += 1e6) {
    const double e = energy_per_cycle_j(f);
    if (e < best_e) {
      best_e = e;
      best_f = f;
    }
  }
  return best_f;
}

}  // namespace iw::pwr
