#include "power/domains.hpp"

#include "common/error.hpp"
#include "common/units.hpp"
#include "power/processor_power.hpp"

namespace iw::pwr {

PowerDomain::PowerDomain(Params params) : params_(std::move(params)) {
  ensure(params_.active_power_w >= params_.idle_power_w &&
             params_.idle_power_w >= 0.0,
         "PowerDomain: inconsistent powers");
  ensure(params_.wake_energy_j >= 0.0 && params_.wake_latency_s >= 0.0,
         "PowerDomain: negative wake costs");
}

double PowerDomain::set_state(DomainState next) {
  double latency = 0.0;
  if (state_ == DomainState::kOff && next != DomainState::kOff) {
    consumed_j_ += params_.wake_energy_j;
    latency = params_.wake_latency_s;
  }
  state_ = next;
  return latency;
}

void PowerDomain::run_for(double duration_s) {
  ensure(duration_s >= 0.0, "PowerDomain::run_for: negative duration");
  switch (state_) {
    case DomainState::kOff: break;
    case DomainState::kIdle: consumed_j_ += params_.idle_power_w * duration_s; break;
    case DomainState::kActive: consumed_j_ += params_.active_power_w * duration_s; break;
  }
}

PowerDomain::Params mr_wolf_soc_domain() {
  PowerDomain::Params p;
  p.name = "Mr. Wolf SoC domain";
  p.active_power_w = mr_wolf_ibex().active_power_w;
  p.idle_power_w = units::from_uw(80.0);
  p.wake_energy_j = units::from_uj(0.05);
  p.wake_latency_s = units::from_us(20.0);
  return p;
}

PowerDomain::Params mr_wolf_cluster_domain() {
  PowerDomain::Params p;
  p.name = "Mr. Wolf cluster domain";
  // Cluster-on adds (12.7 - 3.2) mW for one active core over the SoC alone.
  p.active_power_w = mr_wolf_cluster_single().active_power_w -
                     mr_wolf_ibex().active_power_w;
  p.idle_power_w = units::from_uw(150.0);
  // Rail ramp + TCDM wake; tens of microseconds and a fraction of a uJ,
  // enough to make short cluster offloads unattractive (Table IV: IBEX
  // 1.3 uJ beats single RI5CY 2.9 uJ for Network A).
  p.wake_energy_j = units::from_uj(0.4);
  p.wake_latency_s = units::from_us(50.0);
  return p;
}

DomainAwareRun domain_aware_energy(std::uint64_t cycles, double freq_hz,
                                   bool use_cluster, double cluster_power_w) {
  ensure(freq_hz > 0.0, "domain_aware_energy: bad frequency");
  DomainAwareRun run;
  const double duration = static_cast<double>(cycles) / freq_hz;
  if (!use_cluster) {
    run.soc_energy_j = mr_wolf_ibex().active_power_w * duration;
    return run;
  }
  // Fabric controller orchestrates while the cluster computes.
  run.soc_energy_j = mr_wolf_ibex().active_power_w * duration;
  run.cluster_wake_j = mr_wolf_cluster_domain().wake_energy_j;
  run.cluster_active_j =
      (cluster_power_w - mr_wolf_ibex().active_power_w) * duration;
  ensure(run.cluster_active_j >= 0.0, "domain_aware_energy: cluster power too low");
  return run;
}

}  // namespace iw::pwr
