#include "power/fuel_gauge.hpp"

#include <cmath>

#include "common/error.hpp"

namespace iw::pwr {

Bq27441FuelGauge::Bq27441FuelGauge(const LipoBattery& battery)
    : battery_(battery), last_charge_mah_(battery.charge_mah()) {}

int Bq27441FuelGauge::state_of_charge_pct() const {
  return static_cast<int>(std::lround(battery_.soc() * 100.0));
}

int Bq27441FuelGauge::remaining_capacity_mah() const {
  return static_cast<int>(std::floor(battery_.charge_mah()));
}

int Bq27441FuelGauge::voltage_mv() const {
  return static_cast<int>(std::lround(battery_.voltage_v() * 1000.0));
}

double Bq27441FuelGauge::update_average_current_ma(double elapsed_s) {
  ensure(elapsed_s > 0.0, "Bq27441FuelGauge: elapsed time must be positive");
  const double now_mah = battery_.charge_mah();
  const double delta_mah = now_mah - last_charge_mah_;
  last_charge_mah_ = now_mah;
  // mAh over hours -> mA; exponential smoothing like the gauge's filter.
  const double instant_ma = delta_mah / (elapsed_s / 3600.0);
  average_current_ma_ = 0.7 * average_current_ma_ + 0.3 * instant_ma;
  return average_current_ma_;
}

}  // namespace iw::pwr
