// Power-domain model for Mr. Wolf's two-domain architecture.
//
// Mr. Wolf has a SoC domain (IBEX fabric controller, always needed) and a
// gated Cluster domain (8x RI5CY). Section IV of the paper: "the activation
// of the cluster domain costs more energy" — which is why the IBEX row of
// Table IV beats the single-RI5CY row despite needing more cycles. This
// model makes that explicit: domains have off/idle/active states, and
// powering a domain on costs transition energy and latency (voltage ramp,
// clock ungating, TCDM wake).
#pragma once

#include <cstdint>
#include <string>

namespace iw::pwr {

enum class DomainState { kOff, kIdle, kActive };

/// One gated power domain with transition costs.
class PowerDomain {
 public:
  struct Params {
    std::string name;
    double active_power_w = 0.0;
    double idle_power_w = 0.0;
    /// Energy to bring the domain from off to idle (rail ramp, resets).
    double wake_energy_j = 0.0;
    /// Latency of that transition.
    double wake_latency_s = 0.0;
  };

  explicit PowerDomain(Params params);

  const std::string& name() const { return params_.name; }
  DomainState state() const { return state_; }
  /// Total energy charged to this domain so far.
  double consumed_j() const { return consumed_j_; }

  /// Transitions to the requested state, charging wake energy when coming
  /// out of off. Returns the transition latency.
  double set_state(DomainState next);

  /// Spends `duration_s` in the current state and charges the energy.
  void run_for(double duration_s);

  const Params& params() const { return params_; }

 private:
  Params params_;
  DomainState state_ = DomainState::kOff;
  double consumed_j_ = 0.0;
};

/// Mr. Wolf SoC domain (IBEX + L2 + peripherals).
PowerDomain::Params mr_wolf_soc_domain();
/// Mr. Wolf cluster domain (8x RI5CY + TCDM); wake cost calibrated so that a
/// cluster classification of Network A (cycles + wake) still beats the M4
/// but exceeds the pure-IBEX energy, as Table IV shows.
PowerDomain::Params mr_wolf_cluster_domain();

/// Energy of one classification run including domain management: the SoC
/// domain is always active; using the cluster additionally pays the cluster
/// wake energy and the cluster's active power for the runtime.
struct DomainAwareRun {
  double soc_energy_j = 0.0;
  double cluster_wake_j = 0.0;
  double cluster_active_j = 0.0;
  double total_j() const { return soc_energy_j + cluster_wake_j + cluster_active_j; }
};

/// Decomposes a run of `cycles` at `freq_hz` executed on the cluster
/// (`use_cluster`) or on the fabric controller alone.
DomainAwareRun domain_aware_energy(std::uint64_t cycles, double freq_hz,
                                   bool use_cluster, double cluster_power_w);

}  // namespace iw::pwr
