// LiPo battery model with coulomb counting and an OCV curve.
//
// InfiniWolf buffers harvested energy in a 120 mAh LiPo cell. The model
// tracks state of charge by coulomb counting, applies a charge efficiency,
// and exposes an open-circuit-voltage curve so the fuel gauge has something
// realistic to read.
#pragma once

namespace iw::pwr {

class LipoBattery {
 public:
  struct Params {
    double capacity_mah = 120.0;       // paper: 120 mAh LiPo
    double charge_efficiency = 0.95;   // coulombic efficiency while charging
    double self_discharge_per_day = 5e-4;  // fraction of capacity per day
  };

  explicit LipoBattery(double initial_soc = 0.5) : LipoBattery(Params{}, initial_soc) {}
  LipoBattery(Params params, double initial_soc);

  /// State of charge in [0, 1].
  double soc() const { return soc_; }
  /// Remaining charge in mAh.
  double charge_mah() const { return soc_ * params_.capacity_mah; }
  /// Open-circuit voltage from the SoC curve.
  double voltage_v() const;
  /// Stored energy estimate (integrates the OCV curve over charge).
  double stored_energy_j() const;
  /// Energy capacity when full.
  double full_energy_j() const;

  bool empty() const { return soc_ <= 0.0; }
  bool full() const { return soc_ >= 1.0; }

  /// Pushes charging power in for a duration; the charge efficiency is
  /// applied and SoC clamps at 1. Returns the energy actually stored.
  double charge(double power_w, double duration_s);

  /// Draws load power for a duration. Returns the energy actually delivered
  /// (less than requested if the battery runs empty).
  double discharge(double power_w, double duration_s);

  /// Applies self-discharge over a time span.
  void age(double duration_s);

  const Params& params() const { return params_; }

 private:
  Params params_;
  double soc_;
};

}  // namespace iw::pwr
