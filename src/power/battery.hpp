// LiPo battery model with coulomb counting and an OCV curve.
//
// InfiniWolf buffers harvested energy in a 120 mAh LiPo cell. The model
// tracks state of charge by coulomb counting, applies a charge efficiency,
// and exposes an open-circuit-voltage curve so the fuel gauge has something
// realistic to read.
//
// The per-operation hot path (voltage_v / charge / discharge) is defined
// inline here so the day kernel's tick and detection sequences compile to
// straight-line arithmetic. This does not weaken the simulator's single-
// translation-unit bit-exactness policy: every simulation driver mutates
// battery state exclusively through the DayState member functions in
// device.cpp, so the inline bodies used by the simulation are instantiated
// in that one TU — other TUs calling the battery directly (tests, examples)
// get their own instantiations of the same single definition, which the
// pinned bit-exactness suites hold to the same values.
#pragma once

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "common/units.hpp"

namespace iw::pwr {

namespace detail {

struct OcvPoint {
  double soc;
  double voltage;
};

// Typical single-cell LiPo discharge curve.
inline constexpr std::array<OcvPoint, 7> kOcvCurve{{{0.0, 3.00},
                                                    {0.10, 3.55},
                                                    {0.30, 3.65},
                                                    {0.50, 3.70},
                                                    {0.70, 3.80},
                                                    {0.90, 4.00},
                                                    {1.00, 4.20}}};

inline double lipo_ocv_at(double soc) {
  soc = std::clamp(soc, 0.0, 1.0);
  // Branchless bracket selection: the index of the first curve point with
  // soc <= point.soc is 1 + (number of interior points strictly below soc).
  // Identical bracket — and therefore bit-identical interpolation — to the
  // scan this replaces, without the data-dependent branches the day kernel's
  // per-tick charge path kept mispredicting.
  const std::size_t i = 1 + static_cast<std::size_t>(soc > kOcvCurve[1].soc) +
                        static_cast<std::size_t>(soc > kOcvCurve[2].soc) +
                        static_cast<std::size_t>(soc > kOcvCurve[3].soc) +
                        static_cast<std::size_t>(soc > kOcvCurve[4].soc) +
                        static_cast<std::size_t>(soc > kOcvCurve[5].soc);
  const double frac =
      (soc - kOcvCurve[i - 1].soc) / (kOcvCurve[i].soc - kOcvCurve[i - 1].soc);
  return kOcvCurve[i - 1].voltage +
         frac * (kOcvCurve[i].voltage - kOcvCurve[i - 1].voltage);
}

}  // namespace detail

class LipoBattery {
 public:
  struct Params {
    double capacity_mah = 120.0;       // paper: 120 mAh LiPo
    double charge_efficiency = 0.95;   // coulombic efficiency while charging
    double self_discharge_per_day = 5e-4;  // fraction of capacity per day
  };

  explicit LipoBattery(double initial_soc = 0.5) : LipoBattery(Params{}, initial_soc) {}
  LipoBattery(Params params, double initial_soc);

  /// State of charge in [0, 1].
  double soc() const { return soc_; }
  /// Remaining charge in mAh.
  double charge_mah() const { return soc_ * params_.capacity_mah; }

  /// Open-circuit voltage from the SoC curve.
  double voltage_v() const {
    // charge()/discharge() evaluate the OCV at their entry SoC — exactly
    // where the previous operation left the cell — so a one-entry memo halves
    // the curve evaluations on the day kernel's tick/detection interleave.
    // lipo_ocv_at is pure, so replaying the memoized value is bit-identical.
    if (memo_valid_ && soc_ == memo_soc_) return memo_v_;
    memo_soc_ = soc_;
    memo_v_ = detail::lipo_ocv_at(soc_);
    memo_valid_ = true;
    return memo_v_;
  }

  /// Stored energy estimate (integrates the OCV curve over charge).
  double stored_energy_j() const;
  /// Energy capacity when full.
  double full_energy_j() const;

  bool empty() const { return soc_ <= 0.0; }
  bool full() const { return soc_ >= 1.0; }

  /// Pushes charging power in for a duration; the charge efficiency is
  /// applied and SoC clamps at 1. Returns the energy actually stored.
  double charge(double power_w, double duration_s) {
    ensure(power_w >= 0.0 && duration_s >= 0.0, "LipoBattery::charge: bad inputs");
    // Pinned-full fast path. With soc_ == 1 the general path computes
    // new_soc = min(1, 1 + delta) = 1, stores (1 - 1) * capacity = 0 coulombs
    // and returns 0 * voltage = +0.0 — the SoC and the return value are
    // bit-identical to skipping the arithmetic, so skip it (bright days pin
    // the cell at full for hours of ticks).
    if (soc_ >= 1.0) return 0.0;
    const double capacity_c = units::mah_to_coulombs(params_.capacity_mah);
    const double current_a = power_w / voltage_v();
    const double delta_c = current_a * duration_s * params_.charge_efficiency;
    const double new_soc = std::min(1.0, soc_ + delta_c / capacity_c);
    const double stored_c = (new_soc - soc_) * capacity_c;
    soc_ = new_soc;
    return stored_c * voltage_v();
  }

  /// Draws load power for a duration. Returns the energy actually delivered
  /// (less than requested if the battery runs empty).
  double discharge(double power_w, double duration_s) {
    ensure(power_w >= 0.0 && duration_s >= 0.0,
           "LipoBattery::discharge: bad inputs");
    const double capacity_c = units::mah_to_coulombs(params_.capacity_mah);
    const double current_a = power_w / voltage_v();
    const double want_c = current_a * duration_s;
    const double have_c = soc_ * capacity_c;
    const double delta_c = std::min(want_c, have_c);
    soc_ -= delta_c / capacity_c;
    return delta_c * voltage_v();
  }

  /// Rebinds the cell to an SoC produced by an external replay of the inline
  /// charge()/discharge() arithmetic above (the cohort day kernel keeps SoC
  /// in a register across a whole simulated day and writes it back here).
  /// Deliberately unvalidated: a fully-draining discharge can leave the SoC a
  /// rounding ulp below zero — exactly as discharge() itself can leave soc_ —
  /// and the value must round-trip bit-exactly.
  void restore_soc(double soc) {
    soc_ = soc;
    memo_valid_ = false;
  }

  /// Applies self-discharge over a time span.
  void age(double duration_s);

  const Params& params() const { return params_; }

 private:
  Params params_;
  double soc_;
  /// One-entry memo for voltage_v(); see voltage_v. Keyed on the exact SoC.
  mutable double memo_soc_ = -1.0;
  mutable double memo_v_ = 0.0;
  mutable bool memo_valid_ = false;
};

}  // namespace iw::pwr
