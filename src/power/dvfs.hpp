// Voltage/frequency scaling model for Mr. Wolf.
//
// The paper (citing Pullini et al., ESSCIRC'18) states Mr. Wolf "can run up
// to 450 MHz, with the most energy-efficient point being at 100 MHz, which
// has been used in this evaluation". This model reproduces that trade-off:
// below the knee frequency the core runs at its near-threshold voltage floor
// and leakage dominates energy per cycle (higher f amortizes it better);
// above the knee the required voltage rises roughly linearly and dynamic
// energy per cycle grows as V^2 — creating an energy-per-operation minimum
// at the knee.
#pragma once

namespace iw::pwr {

struct DvfsParams {
  double v_floor = 0.8;          // near-threshold operating voltage
  double v_max = 1.1;            // voltage at f_max
  double f_knee_hz = 100e6;      // highest frequency at the voltage floor
  double f_max_hz = 450e6;       // paper: up to 450 MHz
  /// Dynamic power coefficient (W per Hz per V^2); calibrated so the cluster
  /// draws its published ~19.6 mW at the 100 MHz / v_floor point.
  double dynamic_coeff = 0.0;
  /// Leakage power at the voltage floor; grows ~cubically with voltage.
  double leakage_floor_w = 2.0e-3;
};

class MrWolfDvfsModel {
 public:
  /// Calibrated to the 8-core cluster's 19.6 mW @ 100 MHz operating point.
  static MrWolfDvfsModel calibrated_cluster();

  explicit MrWolfDvfsModel(DvfsParams params);

  /// Required supply voltage at a frequency (clamped to [0, f_max]).
  double voltage_v(double freq_hz) const;
  /// Total power (dynamic + leakage) at a frequency.
  double power_w(double freq_hz) const;
  /// Energy per clock cycle at a frequency — the efficiency metric.
  double energy_per_cycle_j(double freq_hz) const;
  /// Frequency minimizing energy per cycle (grid search over [f_min, f_max]).
  double most_efficient_frequency_hz(double f_min_hz = 20e6) const;

  const DvfsParams& params() const { return params_; }

 private:
  DvfsParams params_;
};

}  // namespace iw::pwr
