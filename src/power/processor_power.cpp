#include "power/processor_power.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace iw::pwr {

double ProcessorPowerModel::time_s(std::uint64_t cycles) const {
  ensure(freq_hz > 0.0, "ProcessorPowerModel: no frequency set");
  return static_cast<double>(cycles) / freq_hz;
}

double ProcessorPowerModel::energy_j(std::uint64_t cycles) const {
  return time_s(cycles) * active_power_w;
}

double ProcessorPowerModel::energy_per_cycle_j() const {
  ensure(freq_hz > 0.0, "ProcessorPowerModel: no frequency set");
  return active_power_w / freq_hz;
}

ProcessorPowerModel nordic_m4() {
  return {"nRF52832 Cortex-M4 @ 64 MHz", 64e6, units::from_mw(10.8),
          units::from_uw(3.0)};
}

ProcessorPowerModel mr_wolf_ibex() {
  return {"Mr. Wolf IBEX @ 100 MHz", 100e6, units::from_mw(3.2),
          units::from_uw(8.0)};
}

ProcessorPowerModel mr_wolf_cluster_single() {
  return {"Mr. Wolf 1x RI5CY @ 100 MHz", 100e6, units::from_mw(12.7),
          units::from_uw(8.0)};
}

ProcessorPowerModel mr_wolf_cluster_multi8() {
  return {"Mr. Wolf 8x RI5CY @ 100 MHz", 100e6, units::from_mw(19.6),
          units::from_uw(8.0)};
}

}  // namespace iw::pwr
