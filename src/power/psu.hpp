// Power-supply unit: LDO model and per-component energy accounting.
#pragma once

#include <map>
#include <ostream>
#include <string>

namespace iw::pwr {

/// Linear regulator: efficiency = Vout/Vin plus a quiescent drain.
struct LdoModel {
  std::string name = "LDO 1.8V";
  double vin_v = 3.7;
  double vout_v = 1.8;
  double quiescent_a = 1e-6;

  /// Input power drawn from the battery to deliver `load_w` at the output.
  double input_power_w(double load_w) const;
  /// Conversion efficiency at the given load (0 when unloaded).
  double efficiency(double load_w) const;
};

/// Tracks energy consumed/harvested per named component over a run.
class EnergyLedger {
 public:
  void add(const std::string& component, double energy_j);
  double total_j() const;
  double component_j(const std::string& component) const;
  const std::map<std::string, double>& entries() const { return entries_; }
  void write_report(std::ostream& os) const;

 private:
  std::map<std::string, double> entries_;
};

}  // namespace iw::pwr
