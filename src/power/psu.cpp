#include "power/psu.hpp"

#include "common/error.hpp"

namespace iw::pwr {

double LdoModel::input_power_w(double load_w) const {
  ensure(load_w >= 0.0, "LdoModel: negative load");
  ensure(vout_v > 0.0 && vin_v >= vout_v, "LdoModel: invalid rail voltages");
  // An LDO draws the load current at the input voltage plus quiescent.
  const double load_current_a = load_w / vout_v;
  return load_current_a * vin_v + quiescent_a * vin_v;
}

double LdoModel::efficiency(double load_w) const {
  if (load_w <= 0.0) return 0.0;
  return load_w / input_power_w(load_w);
}

void EnergyLedger::add(const std::string& component, double energy_j) {
  ensure(energy_j >= 0.0, "EnergyLedger: negative energy");
  entries_[component] += energy_j;
}

double EnergyLedger::total_j() const {
  double total = 0.0;
  for (const auto& [name, e] : entries_) total += e;
  return total;
}

double EnergyLedger::component_j(const std::string& component) const {
  const auto it = entries_.find(component);
  return it == entries_.end() ? 0.0 : it->second;
}

void EnergyLedger::write_report(std::ostream& os) const {
  for (const auto& [name, e] : entries_) {
    os << name << ": " << e * 1e6 << " uJ\n";
  }
  os << "total: " << total_j() * 1e6 << " uJ\n";
}

}  // namespace iw::pwr
