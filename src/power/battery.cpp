#include "power/battery.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace iw::pwr {

LipoBattery::LipoBattery(Params params, double initial_soc)
    : params_(params), soc_(initial_soc) {
  ensure(params_.capacity_mah > 0.0, "LipoBattery: capacity must be positive");
  ensure(params_.charge_efficiency > 0.0 && params_.charge_efficiency <= 1.0,
         "LipoBattery: bad charge efficiency");
  ensure(initial_soc >= 0.0 && initial_soc <= 1.0, "LipoBattery: bad initial SoC");
}

double LipoBattery::stored_energy_j() const {
  // Integrate OCV over charge in small SoC steps. Stays out-of-line: its only
  // hot callers are the detection-gate bisection (cached per battery spec)
  // and attempts landing inside the gate window, so one instantiation keeps
  // every caller — simulation drivers and tests alike — on identical code.
  const double capacity_c = units::mah_to_coulombs(params_.capacity_mah);
  double energy = 0.0;
  const int steps = 100;
  for (int i = 0; i < steps; ++i) {
    const double s = soc_ * (static_cast<double>(i) + 0.5) / steps;
    energy += detail::lipo_ocv_at(s) * capacity_c * soc_ / steps;
  }
  return energy;
}

double LipoBattery::full_energy_j() const {
  LipoBattery full_copy(params_, 1.0);
  return full_copy.stored_energy_j();
}

void LipoBattery::age(double duration_s) {
  ensure(duration_s >= 0.0, "LipoBattery::age: negative duration");
  const double days = duration_s / 86400.0;
  soc_ = std::max(0.0, soc_ - params_.self_discharge_per_day * days);
}

}  // namespace iw::pwr
