#include "power/battery.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "common/units.hpp"

namespace iw::pwr {

namespace {

struct OcvPoint {
  double soc;
  double voltage;
};

// Typical single-cell LiPo discharge curve.
constexpr std::array<OcvPoint, 7> kOcvCurve{{{0.0, 3.00},
                                             {0.10, 3.55},
                                             {0.30, 3.65},
                                             {0.50, 3.70},
                                             {0.70, 3.80},
                                             {0.90, 4.00},
                                             {1.00, 4.20}}};

double ocv_at(double soc) {
  soc = std::clamp(soc, 0.0, 1.0);
  for (std::size_t i = 1; i < kOcvCurve.size(); ++i) {
    if (soc <= kOcvCurve[i].soc) {
      const double frac =
          (soc - kOcvCurve[i - 1].soc) / (kOcvCurve[i].soc - kOcvCurve[i - 1].soc);
      return kOcvCurve[i - 1].voltage +
             frac * (kOcvCurve[i].voltage - kOcvCurve[i - 1].voltage);
    }
  }
  return kOcvCurve.back().voltage;
}

}  // namespace

LipoBattery::LipoBattery(Params params, double initial_soc)
    : params_(params), soc_(initial_soc) {
  ensure(params_.capacity_mah > 0.0, "LipoBattery: capacity must be positive");
  ensure(params_.charge_efficiency > 0.0 && params_.charge_efficiency <= 1.0,
         "LipoBattery: bad charge efficiency");
  ensure(initial_soc >= 0.0 && initial_soc <= 1.0, "LipoBattery: bad initial SoC");
}

double LipoBattery::voltage_v() const { return ocv_at(soc_); }

double LipoBattery::stored_energy_j() const {
  // Integrate OCV over charge in small SoC steps.
  const double capacity_c = units::mah_to_coulombs(params_.capacity_mah);
  double energy = 0.0;
  const int steps = 100;
  for (int i = 0; i < steps; ++i) {
    const double s = soc_ * (static_cast<double>(i) + 0.5) / steps;
    energy += ocv_at(s) * capacity_c * soc_ / steps;
  }
  return energy;
}

double LipoBattery::full_energy_j() const {
  LipoBattery full_copy(params_, 1.0);
  return full_copy.stored_energy_j();
}

double LipoBattery::charge(double power_w, double duration_s) {
  ensure(power_w >= 0.0 && duration_s >= 0.0, "LipoBattery::charge: bad inputs");
  const double capacity_c = units::mah_to_coulombs(params_.capacity_mah);
  const double current_a = power_w / voltage_v();
  const double delta_c = current_a * duration_s * params_.charge_efficiency;
  const double new_soc = std::min(1.0, soc_ + delta_c / capacity_c);
  const double stored_c = (new_soc - soc_) * capacity_c;
  soc_ = new_soc;
  return stored_c * voltage_v();
}

double LipoBattery::discharge(double power_w, double duration_s) {
  ensure(power_w >= 0.0 && duration_s >= 0.0, "LipoBattery::discharge: bad inputs");
  const double capacity_c = units::mah_to_coulombs(params_.capacity_mah);
  const double current_a = power_w / voltage_v();
  const double want_c = current_a * duration_s;
  const double have_c = soc_ * capacity_c;
  const double delta_c = std::min(want_c, have_c);
  soc_ -= delta_c / capacity_c;
  return delta_c * voltage_v();
}

void LipoBattery::age(double duration_s) {
  ensure(duration_s >= 0.0, "LipoBattery::age: negative duration");
  const double days = duration_s / 86400.0;
  soc_ = std::max(0.0, soc_ - params_.self_discharge_per_day * days);
}

}  // namespace iw::pwr
