// BQ27441 fuel-gauge model.
//
// The nRF52832 reads the battery state over I2C from a BQ27441 (Fig. 1).
// The gauge quantizes what the battery model knows (integer percent SoC,
// 1 mAh capacity granularity), estimates average current from consecutive
// readings, and itself draws a small quiescent current.
#pragma once

#include "power/battery.hpp"

namespace iw::pwr {

class Bq27441FuelGauge {
 public:
  explicit Bq27441FuelGauge(const LipoBattery& battery);

  /// State of charge in integer percent, as the gauge register reports it.
  int state_of_charge_pct() const;
  /// Remaining capacity quantized to 1 mAh.
  int remaining_capacity_mah() const;
  /// Battery voltage quantized to 1 mV.
  int voltage_mv() const;

  /// Updates the average-current estimate; `elapsed_s` is the time since the
  /// previous call. Returns the estimated average current in mA (negative
  /// while discharging).
  double update_average_current_ma(double elapsed_s);

  /// Gauge supply draw.
  double quiescent_power_w() const { return 9e-6 * 3.7; }  // ~9 uA at VBAT

 private:
  const LipoBattery& battery_;
  double last_charge_mah_;
  double average_current_ma_ = 0.0;
};

}  // namespace iw::pwr
