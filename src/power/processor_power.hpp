// Calibrated processor power models (the basis of Table IV).
//
// The paper measures energy per classification with an SMU; we cannot
// measure silicon, so each execution target gets an active-power constant
// derived from the paper's own published numbers (energy / (cycles / f)):
//
//   Nordic nRF52832 (Cortex-M4 @ 64 MHz):  5.1 uJ / 472 us  = ~10.8 mW
//   Mr. Wolf SoC domain (IBEX @ 100 MHz):  1.3 uJ / 407 us  = ~3.2 mW
//   Mr. Wolf cluster, 1 RI5CY @ 100 MHz:   2.9 uJ / 228 us  = ~12.7 mW
//   Mr. Wolf cluster, 8 RI5CY @ 100 MHz:   1.2 uJ / 61 us   = ~19.6 mW
//
// The 8-core figure matches the paper's "Mr. Wolf consuming 20 mW in
// parallel execution". Energy for any kernel is then cycles / f * P.
#pragma once

#include <cstdint>
#include <string>

namespace iw::pwr {

struct ProcessorPowerModel {
  std::string name;
  double freq_hz = 0.0;
  double active_power_w = 0.0;
  double sleep_power_w = 0.0;

  /// Wall-clock time of a run.
  double time_s(std::uint64_t cycles) const;
  /// Active energy of a run.
  double energy_j(std::uint64_t cycles) const;
  /// Active energy of a single cycle (active_power_w / freq_hz). The unit
  /// factor that turns a static cycle bound into a certified energy bound.
  double energy_per_cycle_j() const;
};

/// Nordic nRF52832, ARM Cortex-M4F @ 64 MHz.
ProcessorPowerModel nordic_m4();
/// Mr. Wolf SoC domain (IBEX fabric controller) @ 100 MHz, cluster off.
ProcessorPowerModel mr_wolf_ibex();
/// Mr. Wolf cluster with one RI5CY core active @ 100 MHz.
ProcessorPowerModel mr_wolf_cluster_single();
/// Mr. Wolf cluster with all 8 RI5CY cores active @ 100 MHz.
ProcessorPowerModel mr_wolf_cluster_multi8();

}  // namespace iw::pwr
