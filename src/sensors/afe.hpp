// Sensor / analog-front-end device models with power states.
//
// The smartwatch integrates the sensors listed in Fig. 1 of the paper. For
// the energy analysis only their power draw and data rate matter; each model
// carries active/sleep power (paper or datasheet values) and sampling
// parameters. The two devices the stress-detection application uses are the
// MAX30001 ECG AFE (171 uW active, from the paper) and the GSR front end
// (30 uW active, from the paper).
#pragma once

#include <string>

namespace iw::sensors {

enum class PowerState { kOff, kSleep, kActive };

/// A sensor device described by its power states and output data rate.
struct SensorDevice {
  std::string name;
  double active_power_w = 0.0;
  double sleep_power_w = 0.0;
  double sample_rate_hz = 0.0;
  double bytes_per_sample = 0.0;

  /// Power draw in the given state.
  double power_w(PowerState state) const;
  /// Output data rate in bytes per second while active.
  double data_rate_bps() const { return sample_rate_hz * bytes_per_sample; }
  /// Energy to keep the sensor active for a duration.
  double acquisition_energy_j(double duration_s) const;
};

/// MAX30001 ECG/bioimpedance AFE: 171 uW active (paper, Section IV).
SensorDevice max30001_ecg();
/// Low-power galvanic skin response front end: 30 uW active (paper).
SensorDevice gsr_frontend();
/// ICM-20948 9-axis motion sensor (datasheet-order values).
SensorDevice icm20948_imu();
/// BMP280 pressure sensor.
SensorDevice bmp280_pressure();
/// ICS-43434 digital MEMS microphone.
SensorDevice ics43434_microphone();

}  // namespace iw::sensors
