#include "sensors/bus.hpp"

#include "common/error.hpp"

namespace iw::sensors {

BusConfig spi_8mhz() {
  BusConfig b;
  b.name = "SPI @ 8 MHz";
  b.clock_hz = 8e6;
  b.bits_per_byte = 8.0;
  b.transaction_overhead_s = 2e-6;
  b.active_power_w = 180e-6;
  return b;
}

BusConfig i2c_400khz() {
  BusConfig b;
  b.name = "I2C @ 400 kHz";
  b.clock_hz = 400e3;
  b.bits_per_byte = 9.0;  // 8 data + ack
  b.transaction_overhead_s = 30e-6;  // start + address + stop
  b.active_power_w = 120e-6;
  return b;
}

BusConfig i2s_audio() {
  BusConfig b;
  b.name = "I2S audio";
  b.clock_hz = 1.024e6;  // 16 kHz x 32 bit x 2 channels
  b.bits_per_byte = 8.0;
  b.transaction_overhead_s = 0.0;  // continuous stream
  b.active_power_w = 200e-6;
  return b;
}

double transaction_time_s(const BusConfig& bus, double bytes) {
  ensure(bytes >= 0.0, "transaction_time_s: negative byte count");
  ensure(bus.clock_hz > 0.0, "transaction_time_s: bad clock");
  return bus.transaction_overhead_s + bytes * bus.bits_per_byte / bus.clock_hz;
}

double transaction_energy_j(const BusConfig& bus, double bytes) {
  return transaction_time_s(bus, bytes) * bus.active_power_w;
}

double max_throughput_bps(const BusConfig& bus, double bytes) {
  ensure(bytes > 0.0, "max_throughput_bps: need positive transaction size");
  return bytes / transaction_time_s(bus, bytes);
}

}  // namespace iw::sensors
