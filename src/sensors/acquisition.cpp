#include "sensors/acquisition.hpp"

#include "common/error.hpp"

namespace iw::sensors {

double AcquisitionPlan::power_w() const {
  double p = 0.0;
  for (const SensorDevice& s : sensors) p += s.active_power_w;
  return p;
}

double AcquisitionPlan::energy_j() const {
  ensure(duration_s >= 0.0, "AcquisitionPlan: negative duration");
  return power_w() * duration_s;
}

double AcquisitionPlan::bytes() const {
  double b = 0.0;
  for (const SensorDevice& s : sensors) b += s.data_rate_bps() * duration_s;
  return b;
}

AcquisitionPlan stress_detection_acquisition() {
  AcquisitionPlan plan;
  plan.sensors = {max30001_ecg(), gsr_frontend()};
  plan.duration_s = 3.0;
  return plan;
}

}  // namespace iw::sensors
