// Acquisition-phase model for the stress-detection application.
//
// Section IV of the paper: one detection acquires ECG + GSR for 3 seconds
// (171 uW + 30 uW -> ~600 uJ), then extracts features in 50 us.
#pragma once

#include <vector>

#include "sensors/afe.hpp"

namespace iw::sensors {

struct AcquisitionPlan {
  std::vector<SensorDevice> sensors;
  double duration_s = 3.0;

  /// Total energy of the acquisition window.
  double energy_j() const;
  /// Combined active power.
  double power_w() const;
  /// Total bytes produced.
  double bytes() const;
};

/// The paper's stress-detection acquisition: ECG + GSR for 3 s.
AcquisitionPlan stress_detection_acquisition();

}  // namespace iw::sensors
