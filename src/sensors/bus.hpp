// Serial-bus transaction cost models (SPI, I2C, I2S).
//
// The sensors connect to the MCUs over SPI/I2C/I2S (Fig. 1). For the system
// energy analysis a transaction costs time = overhead + bits/clock and energy
// = time * (master + slave interface power). These models let the platform
// simulation charge realistic transfer costs for sensor readout.
#pragma once

#include <string>

namespace iw::sensors {

struct BusConfig {
  std::string name;
  double clock_hz = 1e6;
  /// Protocol bits per payload byte (start/stop/ack framing).
  double bits_per_byte = 8.0;
  /// Fixed per-transaction overhead (addressing, CS setup), seconds.
  double transaction_overhead_s = 5e-6;
  /// Interface power while clocking (master + slave pads).
  double active_power_w = 150e-6;
};

/// 8 MHz SPI (sensor readout on the nRF52832).
BusConfig spi_8mhz();
/// 400 kHz I2C (fuel gauge, pressure sensor).
BusConfig i2c_400khz();
/// I2S at audio rates (microphone).
BusConfig i2s_audio();

/// Time to move `bytes` in one transaction.
double transaction_time_s(const BusConfig& bus, double bytes);
/// Energy for one transaction of `bytes`.
double transaction_energy_j(const BusConfig& bus, double bytes);
/// Sustained throughput limit in bytes/second for back-to-back transactions
/// of size `bytes`.
double max_throughput_bps(const BusConfig& bus, double bytes);

}  // namespace iw::sensors
