#include "sensors/afe.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace iw::sensors {

using units::from_ua;
using units::from_uw;

double SensorDevice::power_w(PowerState state) const {
  switch (state) {
    case PowerState::kOff: return 0.0;
    case PowerState::kSleep: return sleep_power_w;
    case PowerState::kActive: return active_power_w;
  }
  fail("SensorDevice::power_w: bad state");
}

double SensorDevice::acquisition_energy_j(double duration_s) const {
  ensure(duration_s >= 0.0, "acquisition_energy_j: negative duration");
  return active_power_w * duration_s;
}

SensorDevice max30001_ecg() {
  SensorDevice d;
  d.name = "MAX30001 ECG AFE";
  d.active_power_w = from_uw(171.0);  // paper, Section IV
  d.sleep_power_w = from_uw(1.0);
  d.sample_rate_hz = 256.0;
  d.bytes_per_sample = 3.0;  // 18-bit samples in 24-bit words
  return d;
}

SensorDevice gsr_frontend() {
  SensorDevice d;
  d.name = "GSR front end";
  d.active_power_w = from_uw(30.0);  // paper, Section IV
  d.sleep_power_w = from_uw(0.3);
  d.sample_rate_hz = 32.0;
  d.bytes_per_sample = 2.0;
  return d;
}

SensorDevice icm20948_imu() {
  SensorDevice d;
  d.name = "ICM-20948 9-axis IMU";
  // 9-axis DMP-off mode at 1.8 V: ~3.1 mA accel+gyro+mag.
  d.active_power_w = from_ua(3100.0) * 1.8;
  d.sleep_power_w = from_ua(8.0) * 1.8;
  d.sample_rate_hz = 100.0;
  d.bytes_per_sample = 18.0;  // 9 axes x 16 bit
  return d;
}

SensorDevice bmp280_pressure() {
  SensorDevice d;
  d.name = "BMP280 pressure";
  d.active_power_w = from_ua(4.2) * 1.8;  // 1 Hz ultra-low-power mode
  d.sleep_power_w = from_ua(0.1) * 1.8;
  d.sample_rate_hz = 1.0;
  d.bytes_per_sample = 6.0;
  return d;
}

SensorDevice ics43434_microphone() {
  SensorDevice d;
  d.name = "ICS-43434 microphone";
  d.active_power_w = from_ua(490.0) * 1.8;
  d.sleep_power_w = from_ua(0.9) * 1.8;
  d.sample_rate_hz = 16000.0;
  d.bytes_per_sample = 3.0;  // 24-bit I2S
  return d;
}

}  // namespace iw::sensors
