// Photovoltaic harvesting chain, calibrated against Table I of the paper.
//
// Chain: illuminance -> irradiance -> thin-film panel MPP power (with an
// illuminance-dependent efficiency typical of amorphous-silicon cells, which
// are relatively *more* efficient under weak diffuse light) -> BQ25570 boost
// conversion -> net intake into the battery.
//
// The paper reports two measured intake points (0.9 mW @ 700 lx indoor,
// 24.711 mW @ 30 klx outdoor), measured including all converter losses and
// the sleeping system's quiescent draw. `SolarHarvester::calibrated()`
// solves the panel's reference efficiency and saturation exponent so the
// full chain reproduces both points.
#pragma once

#include "harvest/converters.hpp"

namespace iw::hv {

struct PvPanelParams {
  /// Two Flexsolarcells SP3-12-class thin-film panels on the watch top.
  double area_m2 = 2.0 * 24.2e-4;
  /// Luminous efficacy used to convert lux -> W/m^2.
  double lux_per_wm2 = 120.0;
  /// Panel efficiency at the indoor reference illuminance (700 lx).
  double reference_efficiency = 0.05;
  /// Reference illuminance for the efficiency law.
  double reference_lux = 700.0;
  /// Efficiency scales as (lux / reference_lux)^saturation_exponent;
  /// negative values model high-light saturation / thermal derating.
  double saturation_exponent = 0.0;
};

class SolarHarvester {
 public:
  SolarHarvester(PvPanelParams panel, ConverterModel converter);

  /// Chain calibrated to reproduce Table I: 0.9 mW @ 700 lx and
  /// 24.711 mW @ 30 klx net intake.
  static SolarHarvester calibrated();

  /// Plane-of-panel irradiance for an illuminance.
  double irradiance_wm2(double lux) const;
  /// Panel maximum-power-point output before conversion.
  double panel_power_w(double lux) const;
  /// Net intake into the battery (after the BQ25570), what Table I reports.
  double net_intake_w(double lux) const;

  const PvPanelParams& panel() const { return panel_; }

 private:
  PvPanelParams panel_;
  ConverterModel converter_;
};

}  // namespace iw::hv
