// Thermoelectric harvesting on the wrist, calibrated against Table II.
//
// Thermal network: skin --R_contact--> TEG hot plate --R_teg--> cold plate
// --R_sink(wind)--> ambient air. Only the fraction of the skin-to-air
// temperature difference that drops across the TEG itself generates power:
//
//   dT_teg = (T_skin - T_ambient) * R_teg / (R_contact + R_teg + R_sink(v))
//   P_raw  = (S * dT_teg)^2 / (4 R_internal)          (matched load)
//   intake = BQ25505(P_raw)
//
// The sink-to-air convection coefficient rises with wind speed,
// h(v) = h0 * (1 + c * sqrt(v)), which is why the paper's 42 km/h wind row
// nearly triples the harvested power. `TegHarvester::calibrated()` solves
// the Seebeck coefficient and wind coefficient against Table II's first and
// third rows; the second row is then a genuine prediction (the dT^2 law).
#pragma once

#include "harvest/converters.hpp"

namespace iw::hv {

struct TegParams {
  double r_contact_k_per_w = 5.0;   // skin to hot plate
  double r_teg_k_per_w = 5.0;       // across the module
  double sink_area_m2 = 6.0e-4;     // watch-back heat spreader
  double h0_w_per_m2k = 10.0;       // natural convection
  double wind_coeff = 0.2;          // h = h0 * (1 + c * sqrt(v))
  double seebeck_v_per_k = 0.06;    // module Seebeck coefficient
  double r_internal_ohm = 2.0;      // module electrical resistance
};

class TegHarvester {
 public:
  TegHarvester(TegParams params, ConverterModel converter);

  /// Calibrated to Table II: 24.0 uW @ (32C skin / 22C room, no wind) and
  /// 155.4 uW @ (30C skin / 15C room, 42 km/h wind). The middle row
  /// (55.5 uW @ 15C room, no wind) is a model prediction.
  static TegHarvester calibrated();

  /// Convection coefficient at a given wind speed (m/s).
  double h_w_per_m2k(double wind_mps) const;
  /// Temperature drop across the TEG module.
  double delta_t_teg_k(double skin_c, double ambient_c, double wind_mps) const;
  /// Matched-load electrical power before conversion.
  double raw_power_w(double skin_c, double ambient_c, double wind_mps) const;
  /// Net intake into the battery (after the BQ25505), what Table II reports.
  double net_intake_w(double skin_c, double ambient_c, double wind_mps) const;

  const TegParams& params() const { return params_; }

 private:
  TegParams params_;
  ConverterModel converter_;
};

}  // namespace iw::hv
