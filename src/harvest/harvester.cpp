#include "harvest/harvester.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace iw::hv {

double profile_duration_s(const DayProfile& profile) {
  double total = 0.0;
  for (const EnvironmentSegment& seg : profile) {
    ensure(seg.duration_s >= 0.0, "profile: negative segment duration");
    total += seg.duration_s;
  }
  return total;
}

double harvested_energy_j(const DualSourceHarvester& harvester,
                          const DayProfile& profile) {
  double energy = 0.0;
  for (const EnvironmentSegment& seg : profile) {
    energy += harvester.intake_w(seg.env) * seg.duration_s;
  }
  return energy;
}

DayProfile paper_worst_case_day() {
  Environment lit;
  lit.lux = 700.0;
  lit.skin_c = 32.0;
  lit.ambient_c = 22.0;
  lit.wind_mps = 0.0;

  Environment dark = lit;
  dark.lux = 0.0;

  return DayProfile{
      {units::hours_to_s(6.0), lit},
      {units::hours_to_s(18.0), dark},
  };
}

}  // namespace iw::hv
