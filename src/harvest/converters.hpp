// Energy-harvesting converter models (TI BQ25570 and BQ25505).
//
// Both parts are boost-converter harvesters with MPPT; for system-level
// energy analysis the relevant behaviour is the input-power-dependent
// conversion efficiency and the cold-start threshold. Efficiency is modeled
// as a piecewise-linear curve over log10(input power), matching the shape of
// the datasheet efficiency plots.
#pragma once

#include <string>
#include <vector>

namespace iw::hv {

/// Piecewise-linear efficiency over log10(input watts).
class EfficiencyCurve {
 public:
  struct Point {
    double input_w;
    double efficiency;
  };

  explicit EfficiencyCurve(std::vector<Point> points);

  /// Interpolated efficiency at the given input power (clamped to the ends).
  double at(double input_w) const;

 private:
  std::vector<Point> points_;  // sorted by input power
};

struct ConverterModel {
  std::string name;
  EfficiencyCurve efficiency;
  /// Below this input power the converter cannot sustain operation.
  double min_input_w = 1e-6;
  /// Cold-start: minimum input to start from a depleted storage element.
  double cold_start_min_w = 15e-6;
  /// Controller quiescent drain charged against the output.
  double quiescent_w = 0.5e-6;

  /// Net output power into the battery for a given harvested input power.
  double output_power_w(double input_w) const;
};

/// BQ25570 (solar path): higher-power optimized curve.
ConverterModel bq25570();
/// BQ25505 (TEG path): ultra-low-power optimized curve.
ConverterModel bq25505();

}  // namespace iw::hv
