#include "harvest/teg.hpp"

#include <cmath>

#include "common/error.hpp"

namespace iw::hv {

namespace {
// Table II of the paper.
constexpr double kCalmSkinC = 32.0, kCalmAmbientC = 22.0, kCalmIntakeW = 24.0e-6;
constexpr double kWindSkinC = 30.0, kWindAmbientC = 15.0;
constexpr double kWindSpeedMps = 42.0 / 3.6;  // 42 km/h
constexpr double kWindIntakeW = 155.4e-6;
}  // namespace

TegHarvester::TegHarvester(TegParams params, ConverterModel converter)
    : params_(params), converter_(std::move(converter)) {
  ensure(params_.r_contact_k_per_w > 0.0 && params_.r_teg_k_per_w > 0.0 &&
             params_.sink_area_m2 > 0.0 && params_.h0_w_per_m2k > 0.0 &&
             params_.seebeck_v_per_k > 0.0 && params_.r_internal_ohm > 0.0,
         "TegHarvester: invalid parameters");
}

double TegHarvester::h_w_per_m2k(double wind_mps) const {
  ensure(wind_mps >= 0.0, "TegHarvester: negative wind speed");
  return params_.h0_w_per_m2k * (1.0 + params_.wind_coeff * std::sqrt(wind_mps));
}

double TegHarvester::delta_t_teg_k(double skin_c, double ambient_c,
                                   double wind_mps) const {
  const double dt_total = skin_c - ambient_c;
  if (dt_total <= 0.0) return 0.0;  // no gradient, no harvest
  const double r_sink = 1.0 / (h_w_per_m2k(wind_mps) * params_.sink_area_m2);
  const double r_total = params_.r_contact_k_per_w + params_.r_teg_k_per_w + r_sink;
  return dt_total * params_.r_teg_k_per_w / r_total;
}

double TegHarvester::raw_power_w(double skin_c, double ambient_c,
                                 double wind_mps) const {
  const double dt = delta_t_teg_k(skin_c, ambient_c, wind_mps);
  const double v_open = params_.seebeck_v_per_k * dt;
  return v_open * v_open / (4.0 * params_.r_internal_ohm);
}

double TegHarvester::net_intake_w(double skin_c, double ambient_c,
                                  double wind_mps) const {
  return converter_.output_power_w(raw_power_w(skin_c, ambient_c, wind_mps));
}

TegHarvester TegHarvester::calibrated() {
  const ConverterModel converter = bq25505();

  // Two-unknown fit: the Seebeck coefficient sets the calm-row power and the
  // wind coefficient sets the windy row. Nested bisections (both responses
  // are monotone in their parameter).
  const auto intake = [&](double seebeck, double wind_coeff, double skin,
                          double ambient, double wind) {
    TegParams p;
    p.seebeck_v_per_k = seebeck;
    p.wind_coeff = wind_coeff;
    const TegHarvester h(p, converter);
    return h.net_intake_w(skin, ambient, wind);
  };
  const auto solve_seebeck = [&](double wind_coeff) {
    double lo = 1e-3, hi = 1.0;
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (intake(mid, wind_coeff, kCalmSkinC, kCalmAmbientC, 0.0) < kCalmIntakeW) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  };

  double c_lo = 0.01, c_hi = 3.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (c_lo + c_hi);
    const double s = solve_seebeck(mid);
    if (intake(s, mid, kWindSkinC, kWindAmbientC, kWindSpeedMps) < kWindIntakeW) {
      c_lo = mid;
    } else {
      c_hi = mid;
    }
  }
  const double wind_coeff = 0.5 * (c_lo + c_hi);

  TegParams p;
  p.wind_coeff = wind_coeff;
  p.seebeck_v_per_k = solve_seebeck(wind_coeff);
  return TegHarvester(p, converter);
}

}  // namespace iw::hv
