// Dual-source harvesting aggregate and day-profile integration.
//
// The self-sustainability analysis (Section IV-A) integrates the intake of
// both harvesters over a day: 6 hours of challenging indoor light plus
// worst-case body-heat harvesting around the clock, giving 21.44 J/day.
#pragma once

#include <vector>

#include "harvest/solar.hpp"
#include "harvest/teg.hpp"

namespace iw::hv {

/// Environmental conditions the watch sees at some moment.
struct Environment {
  double lux = 0.0;
  double skin_c = 32.0;
  double ambient_c = 22.0;
  double wind_mps = 0.0;
  bool worn = true;  // TEG only harvests while on the wrist
};

class DualSourceHarvester {
 public:
  DualSourceHarvester(SolarHarvester solar, TegHarvester teg)
      : solar_(std::move(solar)), teg_(std::move(teg)) {}

  static DualSourceHarvester calibrated() {
    return DualSourceHarvester(SolarHarvester::calibrated(), TegHarvester::calibrated());
  }

  double solar_intake_w(const Environment& env) const {
    return solar_.net_intake_w(env.lux);
  }
  double teg_intake_w(const Environment& env) const {
    if (!env.worn) return 0.0;
    return teg_.net_intake_w(env.skin_c, env.ambient_c, env.wind_mps);
  }
  double intake_w(const Environment& env) const {
    return solar_intake_w(env) + teg_intake_w(env);
  }

  const SolarHarvester& solar() const { return solar_; }
  const TegHarvester& teg() const { return teg_; }

 private:
  SolarHarvester solar_;
  TegHarvester teg_;
};

/// A day is a sequence of constant-condition segments.
struct EnvironmentSegment {
  double duration_s = 0.0;
  Environment env;
};
using DayProfile = std::vector<EnvironmentSegment>;

/// Total duration of a profile.
double profile_duration_s(const DayProfile& profile);

/// Energy harvested over a profile.
double harvested_energy_j(const DualSourceHarvester& harvester,
                          const DayProfile& profile);

/// The paper's self-sustainability scenario: 6 h of 700 lx indoor light,
/// 18 h dark, and worst-case TEG conditions (32 C skin, 22 C room, no wind)
/// around the clock.
DayProfile paper_worst_case_day();

}  // namespace iw::hv
