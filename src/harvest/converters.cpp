#include "harvest/converters.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace iw::hv {

EfficiencyCurve::EfficiencyCurve(std::vector<Point> points) : points_(std::move(points)) {
  ensure(points_.size() >= 2, "EfficiencyCurve: need at least two points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    ensure(points_[i].input_w > points_[i - 1].input_w,
           "EfficiencyCurve: points must be strictly increasing in power");
  }
  for (const Point& p : points_) {
    ensure(p.input_w > 0.0 && p.efficiency > 0.0 && p.efficiency <= 1.0,
           "EfficiencyCurve: invalid point");
  }
}

double EfficiencyCurve::at(double input_w) const {
  ensure(input_w >= 0.0, "EfficiencyCurve::at: negative power");
  if (input_w <= points_.front().input_w) return points_.front().efficiency;
  if (input_w >= points_.back().input_w) return points_.back().efficiency;
  const double x = std::log10(input_w);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (input_w <= points_[i].input_w) {
      const double x0 = std::log10(points_[i - 1].input_w);
      const double x1 = std::log10(points_[i].input_w);
      const double frac = (x - x0) / (x1 - x0);
      return points_[i - 1].efficiency +
             frac * (points_[i].efficiency - points_[i - 1].efficiency);
    }
  }
  return points_.back().efficiency;
}

double ConverterModel::output_power_w(double input_w) const {
  ensure(input_w >= 0.0, "ConverterModel: negative input power");
  if (input_w < min_input_w) return 0.0;
  const double out = efficiency.at(input_w) * input_w - quiescent_w;
  return std::max(0.0, out);
}

ConverterModel bq25570() {
  return ConverterModel{
      "BQ25570",
      EfficiencyCurve({{1e-6, 0.30},
                       {10e-6, 0.55},
                       {100e-6, 0.75},
                       {1e-3, 0.85},
                       {10e-3, 0.90},
                       {100e-3, 0.88}}),
      /*min_input_w=*/1e-6,
      /*cold_start_min_w=*/15e-6,
      /*quiescent_w=*/0.5e-6,
  };
}

ConverterModel bq25505() {
  return ConverterModel{
      "BQ25505",
      EfficiencyCurve({{1e-6, 0.40},
                       {10e-6, 0.60},
                       {100e-6, 0.72},
                       {1e-3, 0.80},
                       {10e-3, 0.82}}),
      /*min_input_w=*/0.5e-6,
      /*cold_start_min_w=*/10e-6,
      /*quiescent_w=*/0.325e-6,
  };
}

}  // namespace iw::hv
