#include "harvest/solar.hpp"

#include <cmath>

#include "common/error.hpp"

namespace iw::hv {

namespace {
// Table I of the paper.
constexpr double kIndoorLux = 700.0;
constexpr double kIndoorIntakeW = 0.9e-3;
constexpr double kOutdoorLux = 30000.0;
constexpr double kOutdoorIntakeW = 24.711e-3;
}  // namespace

SolarHarvester::SolarHarvester(PvPanelParams panel, ConverterModel converter)
    : panel_(panel), converter_(std::move(converter)) {
  ensure(panel_.area_m2 > 0.0 && panel_.lux_per_wm2 > 0.0 &&
             panel_.reference_efficiency > 0.0 && panel_.reference_lux > 0.0,
         "SolarHarvester: invalid panel parameters");
}

double SolarHarvester::irradiance_wm2(double lux) const {
  ensure(lux >= 0.0, "SolarHarvester: negative illuminance");
  return lux / panel_.lux_per_wm2;
}

double SolarHarvester::panel_power_w(double lux) const {
  if (lux <= 0.0) return 0.0;
  const double efficiency =
      panel_.reference_efficiency *
      std::pow(lux / panel_.reference_lux, panel_.saturation_exponent);
  return irradiance_wm2(lux) * panel_.area_m2 * efficiency;
}

double SolarHarvester::net_intake_w(double lux) const {
  return converter_.output_power_w(panel_power_w(lux));
}

SolarHarvester SolarHarvester::calibrated() {
  const ConverterModel converter = bq25570();

  // Two-unknown fit (reference efficiency, saturation exponent) against the
  // two measured intake points. For a trial exponent, the reference
  // efficiency is solved so the indoor point matches exactly (bisection on a
  // monotone function); the exponent is then adjusted by a secant iteration
  // until the outdoor point matches.
  const auto chain_with = [&](double eff, double exponent, double lux) {
    PvPanelParams p;
    p.reference_efficiency = eff;
    p.saturation_exponent = exponent;
    const SolarHarvester h(p, converter);
    return h.net_intake_w(lux);
  };
  const auto solve_eff = [&](double exponent) {
    double lo = 1e-4, hi = 0.5;
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (chain_with(mid, exponent, kIndoorLux) < kIndoorIntakeW) lo = mid;
      else hi = mid;
    }
    return 0.5 * (lo + hi);
  };

  double exponent = -0.1, prev_exponent = -0.3;
  double prev_err = chain_with(solve_eff(prev_exponent), prev_exponent, kOutdoorLux) -
                    kOutdoorIntakeW;
  for (int iter = 0; iter < 60; ++iter) {
    const double eff = solve_eff(exponent);
    const double err = chain_with(eff, exponent, kOutdoorLux) - kOutdoorIntakeW;
    if (std::abs(err) < 1e-9 || exponent == prev_exponent) break;
    const double slope = (err - prev_err) / (exponent - prev_exponent);
    prev_exponent = exponent;
    prev_err = err;
    exponent -= err / slope;
  }

  PvPanelParams p;
  p.saturation_exponent = exponent;
  p.reference_efficiency = solve_eff(exponent);
  return SolarHarvester(p, converter);
}

}  // namespace iw::hv
